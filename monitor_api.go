package p2psize

// Public continuous-monitoring surface: run estimators on a cadence
// against an overlay evolving under a churn Trace and get tracking
// series plus error/staleness/budget metrics. Thin wrapper over
// internal/monitor; see that package for the semantics.

import (
	"errors"
	"fmt"
	"strings"

	"p2psize/internal/monitor"
	"p2psize/internal/xrand"
)

// SmoothingPolicy selects how a monitor folds raw estimates into the
// value it serves.
type SmoothingPolicy int

const (
	// NoSmoothing serves each raw estimate as-is (the paper's oneShot).
	NoSmoothing SmoothingPolicy = iota
	// WindowSmoothing serves the mean of the last Window raw estimates
	// (the paper's lastKruns).
	WindowSmoothing
	// EWMASmoothing serves an exponentially weighted moving average.
	EWMASmoothing
)

// MonitorOptions configures RunMonitor.
type MonitorOptions struct {
	// Cadence is the simulated time between estimations for every
	// estimator without its own entry in Cadences. Required unless
	// every estimator has one.
	Cadence float64
	// Cadences optionally gives estimator k (matching the estimators
	// slice) its own sampling cadence; 0 entries inherit Cadence. The
	// result's time grid is the union of all schedules: estimators hold
	// their last served value between their own samples, trading
	// message budget against staleness inside one run. Like the shard
	// count, cadences are part of the output, not a scheduling knob.
	Cadences []float64
	// Policy selects the smoothing (default NoSmoothing).
	Policy SmoothingPolicy
	// Window is the WindowSmoothing length (default 10).
	Window int
	// Alpha is the EWMASmoothing weight in (0, 1] (default 0.3).
	Alpha float64
	// RestartJump > 0 restarts the smoothing state when a raw estimate
	// deviates from the served value by more than this relative
	// fraction — fast re-convergence after shocks.
	RestartJump float64
	// ReplaySeed drives the replay's join wiring (default: the zero
	// stream). Equal seeds give byte-identical runs.
	ReplaySeed uint64
	// Replay selects how instances map onto overlay clones:
	// "perinstance" (or "", the default) replays the trace once per
	// estimator on a private clone; "shared" folds observe-only
	// estimators with equal cadences onto one clone and one replay each,
	// cutting replay work and clone memory from O(estimators) to
	// O(groups). Estimators that may rewire the overlay — including any
	// custom estimator that does not declare otherwise — always keep a
	// private clone. Both spellings produce bit-identical results; see
	// Groups for the mapping the run actually used.
	Replay string
	// Workers caps the pool that fans estimator instances across cores
	// (0 = all CPUs); output is identical at every setting.
	Workers int
}

// MonitorMetrics summarizes one estimator's tracking performance.
type MonitorMetrics struct {
	// Name of the estimator instance.
	Name string
	// Cadence the instance actually sampled at.
	Cadence float64
	// Estimations is the number of samples its own schedule held.
	Estimations int
	// MAE is the mean absolute error |served − true| in peers.
	MAE float64
	// MAPE is the mean absolute percentage error |served/true − 1|·100.
	MAPE float64
	// Staleness is the mean age, in simulated time, of the data behind
	// the served values.
	Staleness float64
	// MsgsPerTimeUnit is the metered protocol traffic per simulated
	// time unit.
	MsgsPerTimeUnit float64
	// Failures counts estimations that returned an error.
	Failures int
	// Restarts counts restart-on-shock resets.
	Restarts int
}

// MonitorResult holds the tracking series and metrics of a RunMonitor
// call.
type MonitorResult struct {
	res *monitor.Result
}

// Times returns the sample times.
func (r *MonitorResult) Times() []float64 { return r.res.Times }

// TrueSizes returns the real overlay size at each sample.
func (r *MonitorResult) TrueSizes() []float64 { return r.res.TrueSizes }

// Names returns the estimator names, in instance order.
func (r *MonitorResult) Names() []string { return r.res.Names }

// Groups returns how many replay groups the run used: one clone and
// one trace replay per group. Equal to the estimator count under
// per-instance replay; at most that under MonitorOptions.Replay
// "shared", where observe-only estimators sharing a cadence share a
// group.
func (r *MonitorResult) Groups() int { return r.res.Groups }

// check validates an instance index before it reaches the internal
// slices, so a caller iterating the wrong roster gets a p2psize-
// attributed message instead of a bare runtime bounds panic.
func (r *MonitorResult) check(k int) {
	if k < 0 || k >= len(r.res.Names) {
		panic(fmt.Sprintf("p2psize: estimator index %d out of range [0, %d)", k, len(r.res.Names)))
	}
}

// Estimates returns instance k's served (smoothed) values per sample;
// NaN before its first success. Panics if k is out of range.
func (r *MonitorResult) Estimates(k int) []float64 {
	r.check(k)
	return r.res.Smoothed[k]
}

// RawEstimates returns instance k's raw values per sample; NaN on
// failed estimations. Panics if k is out of range.
func (r *MonitorResult) RawEstimates(k int) []float64 {
	r.check(k)
	return r.res.Raw[k]
}

// Tracking returns instance k's summary metrics. Panics if k is out of
// range.
func (r *MonitorResult) Tracking(k int) MonitorMetrics {
	r.check(k)
	return MonitorMetrics{
		Name:            r.res.Names[k],
		Cadence:         r.res.Cadences[k],
		Estimations:     r.res.Scheduled[k],
		MAE:             r.res.MAE(k),
		MAPE:            r.res.MAPE(k),
		Staleness:       r.res.MeanStaleness(k),
		MsgsPerTimeUnit: r.res.MsgsPerTime(k),
		Failures:        r.res.Failures[k],
		Restarts:        r.res.Restarts[k],
	}
}

// String renders a per-estimator tracking table.
func (r *MonitorResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %8s %10s %8s %10s %12s %9s %9s\n",
		"estimator", "cadence", "MAE", "MAPE%", "staleness", "msgs/time", "failures", "restarts")
	for k := range r.res.Names {
		m := r.Tracking(k)
		fmt.Fprintf(&b, "%-28s %8g %10.0f %8.1f %10.1f %12.0f %9d %9d\n",
			m.Name, m.Cadence, m.MAE, m.MAPE, m.Staleness, m.MsgsPerTimeUnit, m.Failures, m.Restarts)
	}
	return b.String()
}

// RunMonitor replays the trace on a per-estimator clone of net and
// samples every estimator each opts.Cadence time units under the chosen
// smoothing policy. The network must hold exactly tr.InitialNodes()
// peers. Instances fan out across a worker pool; equal seeds give
// byte-identical results at every worker count. The network itself is
// left unmutated, with all metered traffic merged into Messages().
func RunMonitor(net *Network, tr *Trace, estimators []Estimator, opts MonitorOptions) (*MonitorResult, error) {
	if len(estimators) == 0 {
		return nil, errors.New("p2psize: RunMonitor needs at least one estimator")
	}
	var smoothing monitor.Smoothing
	switch opts.Policy {
	case NoSmoothing:
		smoothing = monitor.None
	case WindowSmoothing:
		smoothing = monitor.Window
	case EWMASmoothing:
		smoothing = monitor.EWMA
	default:
		return nil, fmt.Errorf("p2psize: unknown smoothing policy %d", int(opts.Policy))
	}
	if len(opts.Cadences) != 0 && len(opts.Cadences) != len(estimators) {
		return nil, fmt.Errorf("p2psize: MonitorOptions.Cadences has %d entries for %d estimators",
			len(opts.Cadences), len(estimators))
	}
	replay, err := monitor.ParseReplayMode(opts.Replay)
	if err != nil {
		return nil, fmt.Errorf("p2psize: %w", err)
	}
	instances := make([]monitor.Instance, len(estimators))
	for k, e := range estimators {
		instances[k] = monitor.Instance{Estimator: toCore(e)}
		if len(opts.Cadences) != 0 {
			instances[k].Cadence = opts.Cadences[k]
		}
	}
	res, err := monitor.RunScheduled(instances, net.net, tr.tr, monitor.Config{
		Cadence: opts.Cadence,
		Policy: monitor.Policy{
			Smoothing:   smoothing,
			Window:      opts.Window,
			Alpha:       opts.Alpha,
			RestartJump: opts.RestartJump,
		},
		Replay: replay,
	}, func() *xrand.Rand { return xrand.New(opts.ReplaySeed) }, opts.Workers)
	if err != nil {
		return nil, err
	}
	return &MonitorResult{res: res}, nil
}
