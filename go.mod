module p2psize

go 1.24
