package p2psize

// Public churn-trace surface: generate realistic workloads (heavy-tailed
// sessions, diurnal load, flash crowds, mass failures), load empirical
// traces from JSON/CSV, and feed them to RunMonitor. Thin wrappers over
// internal/trace; see that package for the semantics.

import (
	"errors"
	"fmt"
	"io"

	"p2psize/internal/trace"
	"p2psize/internal/xrand"
)

// SessionModel selects the session-length distribution family of a
// generated trace.
type SessionModel int

const (
	// ExponentialSessions is the memoryless baseline.
	ExponentialSessions SessionModel = iota
	// WeibullSessions with Shape < 1 match the heavy-tailed session
	// lengths measured in deployed peer-to-peer systems.
	WeibullSessions
	// LogNormalSessions are the other common empirical fit.
	LogNormalSessions
	// ParetoSessions have a power-law tail; Shape (the tail index) must
	// exceed 1.
	ParetoSessions
)

func (m SessionModel) kind() (trace.SessionKind, error) {
	switch m {
	case ExponentialSessions:
		return trace.Exponential, nil
	case WeibullSessions:
		return trace.Weibull, nil
	case LogNormalSessions:
		return trace.LogNormal, nil
	case ParetoSessions:
		return trace.Pareto, nil
	default:
		return 0, fmt.Errorf("p2psize: unknown session model %d", int(m))
	}
}

// TraceOptions configures GenerateTrace.
type TraceOptions struct {
	// Nodes is the population at time 0. Required.
	Nodes int
	// Horizon is the trace duration in simulated time units. Required.
	Horizon float64
	// Sessions selects the session-length family (default
	// ExponentialSessions).
	Sessions SessionModel
	// MeanSession is the expected session duration (default Horizon).
	MeanSession float64
	// Shape is the family's tail parameter: Weibull shape (default 0.5),
	// LogNormal sigma (default 1.5), Pareto tail index (default 2).
	Shape float64
	// ArrivalRate is the expected joins per time unit; 0 means the
	// stationary rate Nodes/MeanSession.
	ArrivalRate float64
	// DiurnalAmplitude in [0, 1) adds a day/night swing to arrivals.
	DiurnalAmplitude float64
	// DiurnalPeriod is the swing period (default Horizon/2).
	DiurnalPeriod float64
	// Seed drives generation; equal options give identical traces.
	Seed uint64
	// Name labels the trace in reports (default: the session family).
	Name string
	// Workers selects the parallel generator: per-session random
	// streams fanned across up to Workers goroutines and merged
	// deterministically, ~3x faster on million-session traces and
	// byte-identical at every positive setting. 0 keeps the sequential
	// reference generator — a different (equally distributed) draw
	// scheme, so the two settings produce different traces for the same
	// seed; pick one and stay with it.
	Workers int
}

// Trace is a timestamped join/leave workload, either generated or loaded
// from an empirical measurement. Replay it with RunMonitor.
type Trace struct {
	tr *trace.Trace
}

// GenerateTrace builds a synthetic churn trace per the options.
func GenerateTrace(opts TraceOptions) (*Trace, error) {
	if opts.Nodes < 1 {
		return nil, errors.New("p2psize: TraceOptions.Nodes must be >= 1")
	}
	if opts.Horizon <= 0 {
		return nil, errors.New("p2psize: TraceOptions.Horizon must be positive")
	}
	kind, err := opts.Sessions.kind()
	if err != nil {
		return nil, err
	}
	mean := opts.MeanSession
	if mean == 0 {
		mean = opts.Horizon
	}
	shape := opts.Shape
	if shape == 0 {
		switch kind {
		case trace.Weibull:
			shape = 0.5
		case trace.LogNormal:
			shape = 1.5
		case trace.Pareto:
			shape = 2
		}
	}
	cfg := trace.Config{
		Name:             opts.Name,
		Initial:          opts.Nodes,
		Horizon:          opts.Horizon,
		ArrivalRate:      opts.ArrivalRate,
		Session:          trace.SessionDist{Kind: kind, Mean: mean, Shape: shape},
		DiurnalAmplitude: opts.DiurnalAmplitude,
		DiurnalPeriod:    opts.DiurnalPeriod,
	}
	var tr *trace.Trace
	if opts.Workers != 0 {
		tr, err = trace.GenerateParallel(cfg, opts.Seed, opts.Workers)
	} else {
		tr, err = trace.Generate(cfg, xrand.New(opts.Seed))
	}
	if err != nil {
		return nil, err
	}
	return &Trace{tr: tr}, nil
}

// AddFlashCrowd composes count short-lived visitors joining together at
// time at. meanStay is their expected session length (0 = 1/20 of the
// horizon); lifetimes are drawn Pareto with tail index 1.5, the typical
// flash-crowd profile. Seed makes the composition deterministic.
func (t *Trace) AddFlashCrowd(at float64, count int, meanStay float64, seed uint64) error {
	if meanStay == 0 {
		meanStay = t.tr.Horizon / 20
	}
	d := trace.SessionDist{Kind: trace.Pareto, Mean: meanStay, Shape: 1.5}
	return t.tr.AddFlashCrowd(at, count, d, xrand.New(seed))
}

// AddMassFailure makes the given fraction of the peers alive at time at
// leave at that instant — a correlated failure.
func (t *Trace) AddMassFailure(at, fraction float64, seed uint64) error {
	return t.tr.AddMassFailure(at, fraction, xrand.New(seed))
}

// AddPartitionHeal splits the given fraction of the peers alive at
// splitAt off the monitored component until healAt: from the majority's
// point of view the victims depart at the split and the survivors among
// them rejoin as fresh sessions at the heal. Victims whose own session
// would have ended inside the partition window never come back. Seed
// makes the victim draw deterministic.
func (t *Trace) AddPartitionHeal(splitAt, healAt, fraction float64, seed uint64) error {
	return t.tr.AddPartitionHeal(splitAt, healAt, fraction, xrand.New(seed))
}

// InitialNodes returns the population at time 0.
func (t *Trace) InitialNodes() int { return t.tr.Initial }

// Horizon returns the trace duration.
func (t *Trace) Horizon() float64 { return t.tr.Horizon }

// Name returns the trace label.
func (t *Trace) Name() string { return t.tr.Name }

// Joins returns the number of arrivals in the trace.
func (t *Trace) Joins() int { return t.tr.Joins() }

// Leaves returns the number of departures in the trace.
func (t *Trace) Leaves() int { return t.tr.Leaves() }

// SizeAt returns the population after all events up to time at.
func (t *Trace) SizeAt(at float64) int { return t.tr.SizeAt(at) }

// WriteJSON serializes the trace in the p2psize-trace/v1 JSON format.
func (t *Trace) WriteJSON(w io.Writer) error { return t.tr.WriteJSON(w) }

// WriteCSV serializes the trace as "t,session,op" CSV with "#key value"
// metadata headers.
func (t *Trace) WriteCSV(w io.Writer) error { return t.tr.WriteCSV(w) }

// ReadTraceJSON loads a trace written by WriteJSON (or authored from an
// empirical measurement).
func ReadTraceJSON(r io.Reader) (*Trace, error) {
	tr, err := trace.ReadJSON(r)
	if err != nil {
		return nil, err
	}
	return &Trace{tr: tr}, nil
}

// ReadTraceCSV loads a trace written by WriteCSV.
func ReadTraceCSV(r io.Reader) (*Trace, error) {
	tr, err := trace.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	return &Trace{tr: tr}, nil
}

// ReadTraceFile loads a trace from a file, dispatching on the
// extension: ".csv" (any case) reads the CSV form, everything else the
// JSON form.
func ReadTraceFile(path string) (*Trace, error) {
	tr, err := trace.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Trace{tr: tr}, nil
}
