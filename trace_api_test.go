package p2psize

import (
	"bytes"
	"math"
	"testing"
)

func TestGenerateTraceAndMonitor(t *testing.T) {
	const n = 500
	tr, err := GenerateTrace(TraceOptions{
		Nodes:    n,
		Horizon:  200,
		Sessions: WeibullSessions,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.InitialNodes() != n || tr.Horizon() != 200 {
		t.Fatalf("trace metadata: %d nodes, horizon %g", tr.InitialNodes(), tr.Horizon())
	}
	if err := tr.AddFlashCrowd(60, 100, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddMassFailure(140, 0.3, 3); err != nil {
		t.Fatal(err)
	}

	net, err := NewNetwork(NetworkOptions{Nodes: n, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ests := []Estimator{
		NewSampleCollide(SampleCollideOptions{L: 50, Seed: 5}),
		NewHopsSampling(HopsSamplingOptions{Seed: 6}),
	}
	res, err := RunMonitor(net, tr, ests, MonitorOptions{
		Cadence:     20,
		Policy:      WindowSmoothing,
		Window:      5,
		RestartJump: 0.5,
		ReplaySeed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times()) != 10 {
		t.Fatalf("samples = %d, want 10", len(res.Times()))
	}
	if got := res.TrueSizes()[2]; got != float64(tr.SizeAt(60)) {
		t.Fatalf("true size at t=60 is %g, trace says %d", got, tr.SizeAt(60))
	}
	for k, name := range res.Names() {
		if name != ests[k].Name() {
			t.Fatalf("instance %d name %q != %q", k, name, ests[k].Name())
		}
		m := res.Tracking(k)
		if math.IsNaN(m.MAPE) || m.MAPE > 100 {
			t.Fatalf("%s MAPE = %g, implausible", name, m.MAPE)
		}
		if m.MsgsPerTimeUnit <= 0 {
			t.Fatalf("%s metered no traffic", name)
		}
	}
	if net.Size() != n {
		t.Fatalf("RunMonitor mutated the network: size %d", net.Size())
	}
	if net.Messages() == 0 {
		t.Fatal("per-instance traffic not merged into the network meter")
	}
	if res.String() == "" {
		t.Fatal("empty tracking table")
	}
}

func TestMonitorWorkerInvariance(t *testing.T) {
	run := func(workers int) *MonitorResult {
		tr, err := GenerateTrace(TraceOptions{Nodes: 300, Horizon: 100, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		net, err := NewNetwork(NetworkOptions{Nodes: 300, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		ests := []Estimator{
			NewSampleCollide(SampleCollideOptions{L: 30, Seed: 10}),
			NewSampleCollide(SampleCollideOptions{L: 30, Seed: 11}),
			NewSampleCollide(SampleCollideOptions{L: 30, Seed: 12}),
		}
		res, err := RunMonitor(net, tr, ests, MonitorOptions{
			Cadence: 10, ReplaySeed: 13, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	for k := range a.Names() {
		ea, eb := a.Estimates(k), b.Estimates(k)
		for i := range ea {
			if math.Float64bits(ea[i]) != math.Float64bits(eb[i]) {
				t.Fatalf("instance %d sample %d differs: %g vs %g", k, i, ea[i], eb[i])
			}
		}
	}
}

func TestTracePublicIORoundTrip(t *testing.T) {
	tr, err := GenerateTrace(TraceOptions{Nodes: 100, Horizon: 50, Sessions: ParetoSessions, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	var jsonBuf, csvBuf bytes.Buffer
	if err := tr.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadTraceJSON(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadTraceCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	for _, back := range []*Trace{fromJSON, fromCSV} {
		if back.InitialNodes() != tr.InitialNodes() || back.Joins() != tr.Joins() ||
			back.Leaves() != tr.Leaves() || back.Horizon() != tr.Horizon() {
			t.Fatalf("round trip changed the trace: %d/%d/%d/%g vs %d/%d/%d/%g",
				back.InitialNodes(), back.Joins(), back.Leaves(), back.Horizon(),
				tr.InitialNodes(), tr.Joins(), tr.Leaves(), tr.Horizon())
		}
	}
}

func TestGenerateTraceRejectsBadOptions(t *testing.T) {
	if _, err := GenerateTrace(TraceOptions{Horizon: 10}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := GenerateTrace(TraceOptions{Nodes: 10}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := GenerateTrace(TraceOptions{Nodes: 10, Horizon: 10, Sessions: SessionModel(99)}); err == nil {
		t.Fatal("unknown session model accepted")
	}
}
