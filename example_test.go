package p2psize_test

import (
	"fmt"
	"log"

	"p2psize"
)

// The basic loop: build an overlay, estimate its size, read the cost.
func ExampleNewNetwork() {
	net, err := p2psize.NewNetwork(p2psize.NetworkOptions{Nodes: 5000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peers: %d\n", net.Size())
	fmt.Printf("connected: %v\n", net.IsConnected())
	// Output:
	// peers: 5000
	// connected: true
}

// Aggregation converges to the exact size, at N·rounds·2 message cost.
func ExampleNewAggregation() {
	net, err := p2psize.NewNetwork(p2psize.NetworkOptions{Nodes: 2000, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	est := p2psize.NewAggregation(p2psize.AggregationOptions{Rounds: 50, Seed: 5})
	size, err := est.Estimate(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate %.0f of %d peers\n", size, net.Size())
	fmt.Printf("messages: %d (= N·rounds·2)\n", net.Messages())
	// Output:
	// estimate 2000 of 2000 peers
	// messages: 200000 (= N·rounds·2)
}

// The lastKruns heuristic smooths noisy one-shot estimators.
func ExampleSmoothed() {
	net, err := p2psize.NewNetwork(p2psize.NetworkOptions{Nodes: 3000, Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	raw := p2psize.NewSampleCollide(p2psize.SampleCollideOptions{L: 50, Seed: 7})
	smooth := p2psize.Smoothed(raw, 10)
	fmt.Println(smooth.Name())
	if _, err := p2psize.RunRepeated(smooth, net, 10); err != nil {
		log.Fatal(err)
	}
	// Output:
	// sample&collide(l=50)/last10runs
}

// Churn operations model the paper's dynamic scenarios.
func ExampleNetwork_LeaveFraction() {
	net, err := p2psize.NewNetwork(p2psize.NetworkOptions{Nodes: 1000, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	removed := net.LeaveFraction(0.25) // catastrophic failure
	fmt.Printf("removed %d peers, %d remain\n", removed, net.Size())
	// Output:
	// removed 250 peers, 750 remain
}
