package p2psize

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating its data at a reduced scale and reporting the
// measured message overhead and accuracy as custom metrics), plus
// ablation benchmarks for the design choices called out in DESIGN.md §4.
//
// Run everything:  go test -bench=. -benchmem
// One experiment:  go test -bench=BenchmarkFig05 -benchtime=1x

import (
	"math"
	"testing"

	"p2psize/internal/aggregation"
	"p2psize/internal/churn"
	"p2psize/internal/cyclon"
	"p2psize/internal/experiments"
	"p2psize/internal/graph"
	"p2psize/internal/hopssampling"
	"p2psize/internal/overlay"
	"p2psize/internal/parallel"
	"p2psize/internal/pushsum"
	"p2psize/internal/samplecollide"
	"p2psize/internal/sim"
	"p2psize/internal/xrand"
)

// benchParams runs the experiments at bench scale: large enough that the
// paper's shapes hold (the S&C estimator needs l << N), small enough for
// go test -bench to finish in minutes.
func benchParams() experiments.Params {
	p := experiments.Scaled(10) // N100k=10000, N1M=100000
	p.SCRuns = 20
	p.SCRuns1M = 5
	p.HopsRuns = 20
	p.HopsRuns1M = 5
	p.Fig18Runs = 20
	p.TableRuns = 10
	p.AggHorizon = 1000
	p.TraceHorizon = 300 // 30 monitor samples per trace experiment
	return p
}

// benchFigure runs one registered experiment per iteration and reports
// the mean |error|% of its last series when derivable.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	p := benchParams()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		fig, err := experiments.Run(id, p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(fig.Series) > 0 {
			reportQuality(b, fig)
		}
	}
}

func reportQuality(b *testing.B, fig *experiments.Figure) {
	// Quality figures have truth normalized to 100; report the mean
	// |Y-100| of the first series' second half (past any convergence
	// transient). Other figures (sizes, latencies, view health) have no
	// comparable scalar, so nothing is reported for them.
	if fig.YLabel != "Quality %" {
		return
	}
	s := fig.Series[0]
	if s.Len() == 0 {
		return
	}
	sum := 0.0
	n := 0
	for _, y := range s.Y[s.Len()/2:] {
		if !math.IsNaN(y) {
			sum += math.Abs(y - 100)
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "err%")
	}
}

// BenchmarkSuite runs the whole registered experiment set through the
// parallel suite runner at bench scale and writes BENCH_results.json —
// the same schema cmd/figures emits as REPORT.json (per-experiment wall
// time, message counts, series checksums) — so the perf trajectory is
// tracked PR-over-PR; CI uploads the file as an artifact.
func BenchmarkSuite(b *testing.B) {
	p := benchParams()
	// Schedule from the previous run's measured wall times when its
	// report is still on disk (static costHint fallback otherwise);
	// scheduling never changes the report's deterministic fields.
	p.CostModel = experiments.LoadCostModel("BENCH_results.json")
	for i := 0; i < b.N; i++ {
		report, _, err := experiments.RunSuite(nil, p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if err := report.WriteFile("BENCH_results.json"); err != nil {
				b.Fatal(err)
			}
			var msgs uint64
			for _, e := range report.Experiments {
				msgs += e.Messages
			}
			b.ReportMetric(float64(msgs), "msgs-total")
		}
	}
}

func BenchmarkFig01SampleCollide100k(b *testing.B) { benchFigure(b, "fig01") }
func BenchmarkFig02SampleCollide1M(b *testing.B)   { benchFigure(b, "fig02") }
func BenchmarkFig03Hops100k(b *testing.B)          { benchFigure(b, "fig03") }
func BenchmarkFig04Hops1M(b *testing.B)            { benchFigure(b, "fig04") }
func BenchmarkFig05Agg100k(b *testing.B)           { benchFigure(b, "fig05") }
func BenchmarkFig06Agg1M(b *testing.B)             { benchFigure(b, "fig06") }
func BenchmarkFig07ScaleFreeDegree(b *testing.B)   { benchFigure(b, "fig07") }
func BenchmarkFig08ScaleFreeCompare(b *testing.B)  { benchFigure(b, "fig08") }
func BenchmarkFig09SCCatastrophic(b *testing.B)    { benchFigure(b, "fig09") }
func BenchmarkFig10SCGrowing(b *testing.B)         { benchFigure(b, "fig10") }
func BenchmarkFig11SCShrinking(b *testing.B)       { benchFigure(b, "fig11") }
func BenchmarkFig12HopsCatastrophic(b *testing.B)  { benchFigure(b, "fig12") }
func BenchmarkFig13HopsGrowing(b *testing.B)       { benchFigure(b, "fig13") }
func BenchmarkFig14HopsShrinking(b *testing.B)     { benchFigure(b, "fig14") }
func BenchmarkFig15AggCatastrophic(b *testing.B)   { benchFigure(b, "fig15") }
func BenchmarkFig16AggGrowing(b *testing.B)        { benchFigure(b, "fig16") }
func BenchmarkFig17AggShrinking(b *testing.B)      { benchFigure(b, "fig17") }
func BenchmarkFig18SCl10(b *testing.B)             { benchFigure(b, "fig18") }

// BenchmarkTableIOverhead regenerates Table I and reports the measured
// per-estimation overheads as custom metrics.
func BenchmarkTableIOverhead(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		rows, _, err := experiments.TableIRows(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				switch r.Algorithm + "/" + r.Heuristic {
				case "Sample&Collide (l=200)/oneShot":
					b.ReportMetric(r.OverheadPerEstimate, "sc-msgs")
				case "HopsSampling/last10runs":
					b.ReportMetric(r.OverheadPerEstimate, "hops-msgs")
				case "Aggregation/50 rounds":
					b.ReportMetric(r.OverheadPerEstimate, "agg-msgs")
				}
			}
		}
	}
}

// --- Ablation benches (DESIGN.md §4) -----------------------------------

func benchNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

// BenchmarkAblationSCEstimator compares the paper's X²/(2l) formula with
// the MLE refinement: same sampling cost, different accuracy when
// l is large relative to N (here l=500 on 10k nodes, where the basic
// estimator saturates).
func BenchmarkAblationSCEstimator(b *testing.B) {
	for _, kind := range []struct {
		name string
		k    samplecollide.EstimatorKind
	}{{"basic", samplecollide.Basic}, {"mle", samplecollide.MLE}} {
		b.Run(kind.name, func(b *testing.B) {
			net := benchNet(10000, 1)
			e := samplecollide.New(samplecollide.Config{T: 10, L: 500, Kind: kind.k}, xrand.New(2))
			sumErr := 0.0
			for i := 0; i < b.N; i++ {
				est, err := e.Estimate(net)
				if err != nil {
					b.Fatal(err)
				}
				sumErr += math.Abs(est/10000-1) * 100
			}
			b.ReportMetric(sumErr/float64(b.N), "err%")
		})
	}
}

// BenchmarkAblationHopsReply compares direct replies (paper text, O(2N))
// with replies routed back along gossip parents (Table I accounting).
func BenchmarkAblationHopsReply(b *testing.B) {
	for _, mode := range []struct {
		name   string
		routed bool
	}{{"direct", false}, {"routed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			net := benchNet(10000, 3)
			cfg := hopssampling.Default()
			cfg.RoutedReplies = mode.routed
			e := hopssampling.New(cfg, xrand.New(4))
			for i := 0; i < b.N; i++ {
				if _, err := e.Estimate(net); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(net.Counter().Total())/float64(b.N), "msgs/est")
		})
	}
}

// BenchmarkAblationAdjacency compares the slice-backed O(1) neighbor
// sampling the graph uses against a map-backed neighbor set, the obvious
// alternative representation.
func BenchmarkAblationAdjacency(b *testing.B) {
	g := graph.Heterogeneous(10000, 10, xrand.New(5))
	b.Run("slice", func(b *testing.B) {
		rng := xrand.New(6)
		var sink graph.NodeID
		for i := 0; i < b.N; i++ {
			id := g.AliveAt(i % g.NumAlive())
			if v, ok := g.RandomNeighbor(id, rng); ok {
				sink = v
			}
		}
		_ = sink
	})
	b.Run("map", func(b *testing.B) {
		// Build the map-backed equivalent once.
		adj := make([]map[graph.NodeID]struct{}, g.NumIDs())
		g.ForEachAlive(func(id graph.NodeID) {
			m := make(map[graph.NodeID]struct{}, g.Degree(id))
			for _, v := range g.Neighbors(id) {
				m[v] = struct{}{}
			}
			adj[id] = m
		})
		rng := xrand.New(6)
		b.ResetTimer()
		var sink graph.NodeID
		for i := 0; i < b.N; i++ {
			id := g.AliveAt(i % g.NumAlive())
			m := adj[id]
			if len(m) == 0 {
				continue
			}
			k := rng.Intn(len(m))
			for v := range m {
				if k == 0 {
					sink = v
					break
				}
				k--
			}
		}
		_ = sink
	})
}

// BenchmarkAblationEventVsSweep measures why round-based protocols use
// synchronous sweeps instead of per-message heap events: one aggregation
// round on 10k nodes, both ways.
func BenchmarkAblationEventVsSweep(b *testing.B) {
	const n = 10000
	b.Run("sweep", func(b *testing.B) {
		net := benchNet(n, 7)
		p := aggregation.New(aggregation.Default(), xrand.New(8))
		if err := p.StartEpoch(net); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.RunRound(net)
		}
	})
	b.Run("event-heap", func(b *testing.B) {
		net := benchNet(n, 7)
		rng := xrand.New(8)
		g := net.Graph()
		values := make([]float64, g.NumIDs())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var e sim.Engine
			// One event per node exchange, as an event-driven simulator
			// would schedule a round.
			for j := 0; j < g.NumAlive(); j++ {
				u := g.AliveAt(j)
				e.Schedule(sim.Time(j), func() {
					if v, ok := g.RandomNeighbor(u, rng); ok {
						avg := (values[u] + values[v]) / 2
						values[u], values[v] = avg, avg
					}
				})
			}
			e.Run()
		}
	})
}

// --- Sharded-round benches ----------------------------------------------

// roundBenchSizes are the tentpole's reference scales: the paper's
// 100,000 and 1,000,000 node networks plus a 10M tier beyond it, not
// the reduced bench scale — the sharded sweep exists exactly for these
// sizes. The 10M tier runs only where the benchmark declares it
// affordable (see the skip rules at each site): a 10M heterogeneous
// overlay is ~1.7 GB of adjacency, so only the best-scaling mode of
// the cheap-state families carries it.
var roundBenchSizes = []struct {
	name string
	n    int
}{{"100k", 100000}, {"1M", 1000000}, {"10M", 10000000}}

// roundBenchModes are the shared mode columns of the per-family round
// benchmarks: the sequential baseline, the sharded sweep in frozen
// global-shuffle order (still pays the serial O(N) Fisher–Yates prefix
// every round), and the sharded sweep with per-shard local shuffles
// (the Amdahl fix — no serial prefix at all).
var roundBenchModes = []struct {
	name            string
	shards, workers int
	shuffle         parallel.ShuffleMode
}{
	{"seq", 1, 1, parallel.ShuffleGlobal},
	{"shard-global", 0, 0, parallel.ShuffleGlobal},
	{"shard-local", 0, 0, parallel.ShuffleLocal},
}

// BenchmarkAggregationRound compares one sequential round sweep against
// the sharded sweep (auto shard count, all CPUs) under both shuffle
// modes at 100k and 1M nodes. On >= 4 cores shard-local wins at 1M;
// BENCH_results.json tracks the same comparisons as the
// perf-agg-{seq,shard} and perf-engine-{global,local} suite experiments.
func BenchmarkAggregationRound(b *testing.B) {
	for _, size := range roundBenchSizes {
		for _, mode := range roundBenchModes {
			b.Run(size.name+"/"+mode.name, func(b *testing.B) {
				if size.n > 1000000 && mode.name != "shard-local" {
					b.Skip("10M tier runs only in the best-scaling shard-local mode")
				}
				net := benchNet(size.n, 30)
				p := aggregation.New(aggregation.Config{
					RoundsPerEpoch: 50, Shards: mode.shards, Workers: mode.workers, Shuffle: mode.shuffle,
				}, xrand.New(31))
				if err := p.StartEpoch(net); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.RunRound(net)
				}
			})
		}
	}
}

// BenchmarkPushSumRound is the same mode matrix for the push-sum round
// sweep, the third family riding the shared round engine.
func BenchmarkPushSumRound(b *testing.B) {
	for _, size := range roundBenchSizes {
		for _, mode := range roundBenchModes {
			b.Run(size.name+"/"+mode.name, func(b *testing.B) {
				if size.n > 1000000 && mode.name != "shard-local" {
					b.Skip("10M tier runs only in the best-scaling shard-local mode")
				}
				net := benchNet(size.n, 35)
				cfg := pushsum.Default()
				cfg.Shards = mode.shards
				cfg.Workers = mode.workers
				cfg.Shuffle = mode.shuffle
				p := pushsum.New(cfg, xrand.New(36))
				if err := p.StartEpoch(net); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.RunRound(net)
				}
			})
		}
	}
}

// BenchmarkCyclonRound is the same matrix for the CYCLON shuffle rounds,
// after 30% departures so stale-entry eviction is part of the workload.
func BenchmarkCyclonRound(b *testing.B) {
	for _, size := range roundBenchSizes {
		for _, mode := range roundBenchModes {
			b.Run(size.name+"/"+mode.name, func(b *testing.B) {
				if size.n > 1000000 {
					// CYCLON's per-node views (~160 B each on top of the
					// adjacency) put the 10M tier past the CI runners'
					// memory; the aggregation/push-sum 10M rows cover the
					// round engine at that scale.
					b.Skip("10M tier exceeds CYCLON's view-state budget")
				}
				g := graph.Heterogeneous(size.n, 10, xrand.New(32))
				cfg := cyclon.Default()
				cfg.Shards = mode.shards
				cfg.Workers = mode.workers
				cfg.Shuffle = mode.shuffle
				p := cyclon.New(cfg, xrand.New(33), nil)
				p.Bootstrap(g)
				rng := xrand.New(34)
				alive := g.AliveIDs()
				rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
				for _, id := range alive[:size.n*3/10] {
					p.Leave(id)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.RunRound()
				}
			})
		}
	}
}

// --- Extension benches ---------------------------------------------------

// BenchmarkExtRandomTourVsSampleCollide regenerates the §II background
// claim that Sample&Collide's overhead is much lower than Random Tour's.
func BenchmarkExtRandomTourVsSampleCollide(b *testing.B) { benchFigure(b, "ext-walks") }

// BenchmarkExtClasses runs one representative of all five counting
// classes on one overlay.
func BenchmarkExtClasses(b *testing.B) { benchFigure(b, "ext-classes") }

// BenchmarkExtDelay measures the §V delay conjecture under the
// physical-network model (the paper's future-work item).
func BenchmarkExtDelay(b *testing.B) { benchFigure(b, "ext-delay") }

// BenchmarkExtCyclon measures churn recovery on a CYCLON-maintained
// overlay.
func BenchmarkExtCyclon(b *testing.B) { benchFigure(b, "ext-cyclon") }

// BenchmarkTraceWeibull monitors all four estimators under heavy-tailed
// (Weibull k=0.5) session churn.
func BenchmarkTraceWeibull(b *testing.B) { benchFigure(b, "trace-weibull") }

// BenchmarkTraceDiurnal monitors under diurnally modulated arrivals
// with lognormal sessions, EWMA-smoothed.
func BenchmarkTraceDiurnal(b *testing.B) { benchFigure(b, "trace-diurnal") }

// BenchmarkTraceFlashcrowd monitors through a +50% flash crowd and a
// -25% mass failure with restart-on-shock smoothing.
func BenchmarkTraceFlashcrowd(b *testing.B) { benchFigure(b, "trace-flashcrowd") }

// BenchmarkTraceIPFS monitors the checked-in IPFS-calibrated empirical
// trace (fixed 1,000-node workload; Params scaling does not change it).
func BenchmarkTraceIPFS(b *testing.B) { benchFigure(b, "trace-ipfs") }

// BenchmarkStaticNew compares the PR-5 families (push-sum,
// capture–recapture, DHT density) against Sample&Collide on the static
// 100k-scale overlay.
func BenchmarkStaticNew(b *testing.B) { benchFigure(b, "static-new") }

// BenchmarkTraceIPFSAll monitors the IPFS workload with every
// monitoring-capable family at once — the widest roster in the suite.
func BenchmarkTraceIPFSAll(b *testing.B) { benchFigure(b, "trace-ipfs-all") }

// BenchmarkAblationChurnRepair quantifies the paper's no-re-linking rule:
// shrink an overlay by 50% with and without neighbor repair and report
// the surviving largest-component fraction (the mechanism behind
// Aggregation's failure in the shrinking scenario).
func BenchmarkAblationChurnRepair(b *testing.B) {
	for _, mode := range []struct {
		name   string
		repair bool
	}{{"paper-no-repair", false}, {"repair", true}} {
		b.Run(mode.name, func(b *testing.B) {
			frac := 0.0
			for i := 0; i < b.N; i++ {
				net := benchNet(5000, uint64(9+i))
				s := churn.Shrinking(5000, 100, 0.5)
				s.Repair = mode.repair
				r := churn.NewRunner(s, xrand.New(uint64(10+i)))
				for step := 0; step < s.TotalSteps; step++ {
					r.Step(net, step)
				}
				frac += float64(graph.LargestComponent(net.Graph())) / float64(net.Size())
			}
			b.ReportMetric(100*frac/float64(b.N), "largest-comp%")
		})
	}
}
