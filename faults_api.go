package p2psize

// Public fault-injection surface: describe a degraded-network scenario
// (lossy links, inflated delay, duplicated traffic, misbehaving peers)
// and run any estimator — built-in or custom — under it. Thin wrapper
// over internal/fault; see that package for the transport semantics
// (request/response traffic retransmits on loss, epidemic push/pull
// traffic loses its payload).

import (
	"fmt"

	"p2psize/internal/fault"
	"p2psize/internal/xrand"
)

// FaultOptions describes one fault scenario. The zero value is the
// benign no-fault scenario; fields compose freely.
//
// Drop, DelayFactor, Dup, LieScale and LieFrac are message-level faults,
// enforced by the injector ApplyFaults (or EstimatorConfig.Faults)
// installs: they apply to any estimator on any overlay. SilentFrac and
// SybilFrac reshape the overlay itself — apply them with
// Network.ApplyAdversary. PartitionFrac and its window need a run
// timeline to split and heal across; the robustness-* experiments and
// the "partition" trace workload realize them.
type FaultOptions struct {
	// Drop is the per-message loss probability in [0, 1).
	Drop float64
	// DelayFactor multiplies every message delay (latency pricing only;
	// 0 means the neutral 1x).
	DelayFactor float64
	// Dup is the per-message duplication probability in [0, 1]:
	// duplicated messages are metered again but carry no new payload.
	Dup float64
	// PartitionFrac is the fraction of peers split into the minority
	// component during the partition window (0 = no partition).
	PartitionFrac float64
	// PartitionLo and PartitionHi bound the partition window as
	// fractions of the run sequence (or trace horizon) in [0, 1].
	PartitionLo, PartitionHi float64
	// LieScale is the factor by which lying aggregators scale the sums
	// they report (0 = no liars; honest is 1).
	LieScale float64
	// LieFrac is the fraction of peers that lie.
	LieFrac float64
	// SilentFrac is the fraction of peers that silently stop responding
	// without leaving, so they still count toward the true size.
	SilentFrac float64
	// SybilFrac inflates the overlay with SybilFrac × N phantom peers.
	SybilFrac float64
	// NATFrac is the fraction of peers behind asymmetric (NAT-limited)
	// connectivity: inbound requests to them fail while their own
	// outbound sends still work. A message-level fault, enforced by the
	// same injector as Drop (the protocols consult the fated set for the
	// peers they target).
	NATFrac float64
}

func (f FaultOptions) spec() fault.Spec {
	return fault.Spec{
		Drop:          f.Drop,
		DelayFactor:   f.DelayFactor,
		Dup:           f.Dup,
		PartitionFrac: f.PartitionFrac,
		PartitionLo:   f.PartitionLo,
		PartitionHi:   f.PartitionHi,
		LieScale:      f.LieScale,
		LieFrac:       f.LieFrac,
		SilentFrac:    f.SilentFrac,
		SybilFrac:     f.SybilFrac,
		NATFrac:       f.NATFrac,
	}
}

func faultOptions(s fault.Spec) FaultOptions {
	return FaultOptions{
		Drop:          s.Drop,
		DelayFactor:   s.DelayFactor,
		Dup:           s.Dup,
		PartitionFrac: s.PartitionFrac,
		PartitionLo:   s.PartitionLo,
		PartitionHi:   s.PartitionHi,
		LieScale:      s.LieScale,
		LieFrac:       s.LieFrac,
		SilentFrac:    s.SilentFrac,
		SybilFrac:     s.SybilFrac,
		NATFrac:       s.NATFrac,
	}
}

// Enabled reports whether the options request any fault at all.
func (f FaultOptions) Enabled() bool { return f != FaultOptions{} }

// MessageFaults reports whether the options carry message-level faults
// ApplyFaults enforces (drop, delay, duplicate, lying).
func (f FaultOptions) MessageFaults() bool { return f.spec().MessageFaults() }

// Validate checks field ranges; the zero value is valid.
func (f FaultOptions) Validate() error { return f.spec().Validate() }

// String renders the options in the ParseFaults grammar (empty for the
// benign scenario). ParseFaults(f.String()) round-trips.
func (f FaultOptions) String() string { return f.spec().String() }

// ParseFaults parses the comma-separated fault scenario grammar both
// CLIs accept:
//
//	drop=0.05            5% of messages are lost
//	delay=2x             message delays doubled ("2" works too)
//	dup=0.01             1% of messages duplicated
//	partition@40-60      half the peers split off for the 40%-60% window
//	partition=0.3@40-60  30% of the peers split off instead
//	lie=10@0.05          5% of peers scale reported sums by 10
//	silent=0.1           10% of peers stop responding without leaving
//	sybil=0.2            20% phantom peers join the overlay
//	nat=0.2              20% of peers unreachable for inbound requests
//
// An empty spec returns the benign zero FaultOptions; repeated keys are
// rejected.
func ParseFaults(spec string) (FaultOptions, error) {
	s, err := fault.ParseSpec(spec)
	if err != nil {
		return FaultOptions{}, fmt.Errorf("p2psize: %w", err)
	}
	return faultOptions(s), nil
}

// ApplyFaults wraps an estimator so every Estimate call runs under the
// scenario's message-level faults: drop (with the request/response vs
// fire-and-forget transport asymmetry), delay pricing, duplication and
// lying peers. The wrapper installs the fault policy on whatever
// network each Estimate call is handed and removes it afterwards, so
// one wrapped estimator composes with views, clones and the monitor's
// replay machinery unchanged. seed drives the injector's fate draws:
// equal (estimator seed, fault seed) pairs give byte-identical runs.
//
// Population-level fields (PartitionFrac, SilentFrac, SybilFrac) are
// not message faults and are ignored here; see FaultOptions.
func ApplyFaults(e Estimator, f FaultOptions, seed uint64) (Estimator, error) {
	spec := f.spec()
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("p2psize: %w", err)
	}
	if !spec.Enabled() {
		return e, nil
	}
	return toPublic(fault.Decorate(toCore(e), fault.NewInjector(spec, xrand.New(seed)))), nil
}

// ApplyAdversary reshapes the overlay per the scenario's node-
// misbehavior fields: SilentFrac of the peers have all their links
// severed but stay alive (they still count toward the true size), and
// SybilFrac × N phantom peers join through the normal attachment rule.
// It returns how many peers were silenced and how many sybils joined.
// The surgery is deterministic in seed and mutates the network, so
// apply it once, before estimating; message-level fields are ignored
// here (see ApplyFaults).
func (n *Network) ApplyAdversary(f FaultOptions, seed uint64) (silenced, sybils int, err error) {
	spec := f.spec()
	if err := spec.Validate(); err != nil {
		return 0, 0, fmt.Errorf("p2psize: %w", err)
	}
	if spec.SilentFrac > 0 {
		silenced = len(fault.Silence(n.net, spec.SilentFrac, seed))
	}
	if spec.SybilFrac > 0 {
		sybils = fault.InflateSybils(n.net, spec.SybilFrac, xrand.New(seed+1))
	}
	return silenced, sybils, nil
}
