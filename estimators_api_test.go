package p2psize

import (
	"math"
	"strings"
	"testing"
)

func TestEstimatorsCatalog(t *testing.T) {
	infos := Estimators()
	if len(infos) < 6 {
		t.Fatalf("catalog lists %d families, want >= 6", len(infos))
	}
	names := map[string]bool{}
	for _, in := range infos {
		names[in.Name] = true
	}
	for _, want := range []string{"samplecollide", "randomtour", "hopssampling", "aggregation", "idspace", "polling"} {
		if !names[want] {
			t.Fatalf("catalog misses %q: %v", want, infos)
		}
	}
	def := DefaultEstimators()
	if len(def) != 4 || def[0] != "samplecollide" || def[3] != "aggregation" {
		t.Fatalf("DefaultEstimators() = %v", def)
	}
}

func TestNewEstimatorByName(t *testing.T) {
	net, err := NewNetwork(NetworkOptions{Nodes: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sc", "hops", "agg", "tour", "poll", "idspace"} {
		e, err := NewEstimatorByName(name, EstimatorConfig{L: 50, Seed: 7}, net)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		v, err := e.Estimate(net)
		if err != nil {
			t.Fatalf("%s estimate: %v", name, err)
		}
		if v <= 0 {
			t.Fatalf("%s estimate = %g", name, v)
		}
	}
	if _, err := NewEstimatorByName("nope", EstimatorConfig{}, net); err == nil {
		t.Fatal("unknown name accepted")
	}
	// Snapshot-based families need the overlay.
	if _, err := NewEstimatorByName("idspace", EstimatorConfig{}, nil); err == nil {
		t.Fatal("idspace without an overlay accepted")
	}
}

// truthByNameEstimator is the custom family registered below.
type truthByNameEstimator struct{}

func (truthByNameEstimator) Name() string { return "truth-custom" }
func (truthByNameEstimator) Estimate(n *Network) (float64, error) {
	return float64(n.Size()), nil
}

func TestRegisterEstimatorEndToEnd(t *testing.T) {
	err := RegisterEstimator(CustomEstimator{
		Name:               "truthcustom",
		Aliases:            []string{"tc"},
		Summary:            "exact size oracle for tests",
		SupportsDynamic:    true,
		SupportsMonitoring: true,
		New:                func(seed uint64) (Estimator, error) { return truthByNameEstimator{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Listed.
	found := false
	for _, in := range Estimators() {
		if in.Name == "truthcustom" {
			found = in.SupportsMonitoring && in.Class == "custom"
		}
	}
	if !found {
		t.Fatal("custom family missing (or mis-flagged) in the catalog")
	}
	// Buildable by alias.
	net, err := NewNetwork(NetworkOptions{Nodes: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimatorByName("tc", EstimatorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := e.Estimate(net); err != nil || v != 500 {
		t.Fatalf("custom estimate = %g, %v", v, err)
	}
	// Duplicate registration fails.
	if err := RegisterEstimator(CustomEstimator{Name: "truthcustom",
		New: func(seed uint64) (Estimator, error) { return truthByNameEstimator{}, nil }}); err == nil {
		t.Fatal("duplicate custom registration accepted")
	}
	if err := RegisterEstimator(CustomEstimator{Name: "nofactory"}); err == nil {
		t.Fatal("nil factory accepted")
	}
}

// TestRunMonitorPerEstimatorCadences drives the public per-estimator
// cadence plumbing: a 5x-slower second estimator makes 1/5 of the
// estimations, spends less budget, ages more, and the run stays
// byte-identical at every worker count.
func TestRunMonitorPerEstimatorCadences(t *testing.T) {
	build := func() (*Network, *Trace, []Estimator) {
		net, err := NewNetwork(NetworkOptions{Nodes: 600, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := GenerateTrace(TraceOptions{Nodes: 600, Horizon: 200, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		ests := []Estimator{
			NewHopsSampling(HopsSamplingOptions{Seed: 5}),
			NewHopsSampling(HopsSamplingOptions{Seed: 6}),
		}
		return net, tr, ests
	}
	runAt := func(workers int) *MonitorResult {
		net, tr, ests := build()
		res, err := RunMonitor(net, tr, ests, MonitorOptions{
			Cadence:    10,
			Cadences:   []float64{0, 50},
			ReplaySeed: 7,
			Workers:    workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := runAt(1)
	fast, slow := res.Tracking(0), res.Tracking(1)
	if fast.Cadence != 10 || slow.Cadence != 50 {
		t.Fatalf("cadences = %g, %g; want 10, 50", fast.Cadence, slow.Cadence)
	}
	if fast.Estimations != 20 || slow.Estimations != 4 {
		t.Fatalf("estimations = %d, %d; want 20, 4", fast.Estimations, slow.Estimations)
	}
	if slow.MsgsPerTimeUnit >= fast.MsgsPerTimeUnit {
		t.Fatalf("slow cadence did not cut the budget: %g vs %g", slow.MsgsPerTimeUnit, fast.MsgsPerTimeUnit)
	}
	if slow.Staleness <= fast.Staleness {
		t.Fatalf("slow cadence did not age the data: %g vs %g", slow.Staleness, fast.Staleness)
	}
	par := runAt(8)
	for k := range res.Names() {
		a, b := res.Estimates(k), par.Estimates(k)
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("instance %d diverges at tick %d across worker counts", k, i)
			}
		}
	}
	// Mismatched lengths are rejected.
	net, tr, ests := build()
	if _, err := RunMonitor(net, tr, ests, MonitorOptions{Cadence: 10, Cadences: []float64{1}}); err == nil ||
		!strings.Contains(err.Error(), "Cadences") {
		t.Fatalf("mismatched Cadences err = %v", err)
	}
}

// TestGenerateTraceParallelWorkers pins the public parallel-generation
// contract: any positive Workers value gives byte-identical traces.
func TestGenerateTraceParallelWorkers(t *testing.T) {
	opts := TraceOptions{Nodes: 5000, Horizon: 500, Sessions: WeibullSessions, Seed: 9}
	opts.Workers = 1
	a, err := GenerateTrace(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	b, err := GenerateTrace(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Joins() != b.Joins() || a.Leaves() != b.Leaves() || a.SizeAt(250) != b.SizeAt(250) {
		t.Fatal("Workers changed the generated trace")
	}
}
