package p2psize

import (
	"strings"
	"testing"
)

func TestParseFaultsRoundTrip(t *testing.T) {
	f, err := ParseFaults("drop=0.05,delay=2x,lie=10@0.05,sybil=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Enabled() || !f.MessageFaults() {
		t.Fatalf("spec reported disabled: %+v", f)
	}
	if f.Drop != 0.05 || f.DelayFactor != 2 || f.LieScale != 10 || f.LieFrac != 0.05 || f.SybilFrac != 0.2 {
		t.Fatalf("fields: %+v", f)
	}
	back, err := ParseFaults(f.String())
	if err != nil || back != f {
		t.Fatalf("round-trip: %+v -> %q -> %+v (%v)", f, f.String(), back, err)
	}
	if _, err := ParseFaults("drop=2"); err == nil {
		t.Fatal("invalid spec accepted")
	}
	zero, err := ParseFaults("")
	if err != nil || zero.Enabled() {
		t.Fatalf("empty spec: %+v, %v", zero, err)
	}
}

// TestApplyFaultsDeterministic pins the decorator's contract: equal
// (estimator seed, fault seed) pairs reproduce the estimate exactly,
// the benign scenario is the identity, and the faulted walk pays
// retransmissions the benign run does not.
func TestApplyFaultsDeterministic(t *testing.T) {
	net, err := NewNetwork(NetworkOptions{Nodes: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	run := func() (float64, uint64) {
		net.ResetMessages()
		e, err := NewEstimatorByName("sc", EstimatorConfig{SCL: 50, Seed: 7}, net)
		if err != nil {
			t.Fatal(err)
		}
		f, err := ApplyFaults(e, FaultOptions{Drop: 0.2}, 99)
		if err != nil {
			t.Fatal(err)
		}
		v, err := f.Estimate(net)
		if err != nil {
			t.Fatal(err)
		}
		return v, net.Messages()
	}
	v1, m1 := run()
	v2, m2 := run()
	if v1 != v2 || m1 != m2 {
		t.Fatalf("faulted runs differ: (%g, %d) vs (%g, %d)", v1, m1, v2, m2)
	}

	net.ResetMessages()
	benign, err := NewEstimatorByName("sc", EstimatorConfig{SCL: 50, Seed: 7}, net)
	if err != nil {
		t.Fatal(err)
	}
	if same, err := ApplyFaults(benign, FaultOptions{}, 99); err != nil || same != benign {
		t.Fatalf("benign ApplyFaults is not the identity: %v, %v", same, err)
	}
	vb, err := benign.Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	if vb != v1 {
		t.Fatalf("drop changed a reliable walk's estimate: %g benign vs %g faulted", vb, v1)
	}
	if mb := net.Messages(); mb >= m1 {
		t.Fatalf("faulted run metered %d messages, benign %d; want retransmission overhead", m1, mb)
	}

	if _, err := ApplyFaults(benign, FaultOptions{Drop: 2}, 99); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

// TestEstimatorConfigAliases pins the deprecated alias contract: the
// original public names keep working, and the canonical field wins when
// both are set.
func TestEstimatorConfigAliases(t *testing.T) {
	alias := EstimatorConfig{T: 5, L: 50, UseMLE: true, MinHopsReporting: 7}
	canon := EstimatorConfig{SCTimer: 5, SCL: 50, SCMLE: true, MinHops: 7}
	both := EstimatorConfig{SCTimer: 5, T: 99, SCL: 50, L: 9999, SCMLE: true, MinHops: 7, MinHopsReporting: 99}
	want, err := canon.registryOptions()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := alias.registryOptions(); err != nil || got != want {
		t.Fatalf("alias conversion (err %v):\n  %+v\nwant\n  %+v", err, got, want)
	}
	if got, err := both.registryOptions(); err != nil || got != want {
		t.Fatalf("canonical fields did not win (err %v):\n  %+v\nwant\n  %+v", err, got, want)
	}
	if _, err := (EstimatorConfig{Shuffle: "bogus"}).registryOptions(); err == nil {
		t.Fatal("unknown shuffle spelling accepted")
	}

	net, err := NewNetwork(NetworkOptions{Nodes: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ea, err := NewEstimatorByName("sc", EstimatorConfig{L: 50, Seed: 7}, net)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := NewEstimatorByName("sc", EstimatorConfig{SCL: 50, Seed: 7}, net)
	if err != nil {
		t.Fatal(err)
	}
	va, err := ea.Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := ec.Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	if va != vc {
		t.Fatalf("alias and canonical configs disagree: %g vs %g", va, vc)
	}
}

func TestApplyAdversary(t *testing.T) {
	net, err := NewNetwork(NetworkOptions{Nodes: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	silenced, sybils, err := net.ApplyAdversary(FaultOptions{SilentFrac: 0.1, SybilFrac: 0.2}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if silenced == 0 || sybils != 200 {
		t.Fatalf("silenced %d, sybils %d; want > 0 and 200", silenced, sybils)
	}
	if net.Size() != 1200 {
		t.Fatalf("size %d after inflation, want 1200", net.Size())
	}
	if _, _, err := net.ApplyAdversary(FaultOptions{SilentFrac: 2}, 42); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func TestMonitorResultBounds(t *testing.T) {
	net, err := NewNetwork(NetworkOptions{Nodes: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(TraceOptions{Nodes: 500, Horizon: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimatorByName("hops", EstimatorConfig{Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMonitor(net, tr, []Estimator{e}, MonitorOptions{Cadence: 10})
	if err != nil {
		t.Fatal(err)
	}
	res.Estimates(0) // in range: must not panic
	for _, k := range []int{-1, 1, 99} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("index %d did not panic", k)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "out of range") {
					t.Fatalf("index %d panicked with %v", k, r)
				}
			}()
			res.Tracking(k)
		}()
	}
}
