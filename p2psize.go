// Package p2psize estimates the size of large, dynamic peer-to-peer
// overlay networks with fully decentralized algorithms, reproducing the
// comparative study of Le Merrer, Kermarrec & Massoulié (HPDC 2006),
// "Peer to peer size estimation in large and dynamic networks".
//
// Three candidate algorithms are provided, one per family of generic
// (topology-agnostic) counting approaches:
//
//   - Sample&Collide (random-walk class): uniform sampling by
//     continuous-time random walk plus the inverted birthday paradox.
//   - HopsSampling (probabilistic-polling class): gossip a poll, count
//     probabilistic replies weighted by hop distance.
//   - Aggregation (epidemic class): push-pull averaging of a one-hot
//     value; converges to 1/N at every node.
//
// All three run on a simulated overlay (Network) built over random
// graphs, driven by a deterministic seed, with every protocol message
// metered so accuracy/overhead trade-offs can be compared — the paper's
// methodology, packaged as a library.
//
// # Quick start
//
//	net, _ := p2psize.NewNetwork(p2psize.NetworkOptions{Nodes: 10000, Seed: 1})
//	est := p2psize.NewSampleCollide(p2psize.SampleCollideOptions{L: 200, Seed: 2})
//	size, _ := est.Estimate(net)
//	fmt.Printf("≈%.0f peers, %d messages\n", size, net.Messages())
//
// The internal packages expose the full simulator (event kernel, churn
// scenarios, experiment harness for every figure and table of the
// paper); this package is the stable surface for downstream users.
package p2psize

import (
	"errors"
	"fmt"
	"io"

	"p2psize/internal/aggregation"
	"p2psize/internal/graph"
	"p2psize/internal/hopssampling"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/parallel"
	"p2psize/internal/polling"
	"p2psize/internal/randomtour"
	"p2psize/internal/samplecollide"
	"p2psize/internal/stats"
	"p2psize/internal/xrand"
)

// Topology selects the overlay construction.
type Topology int

const (
	// Heterogeneous is the paper's default: every node draws a target
	// degree uniformly in [1, MaxDegree] (§IV-A); with MaxDegree 10 the
	// average degree is ≈7.2.
	Heterogeneous Topology = iota
	// Homogeneous wires every node to exactly MaxDegree neighbors.
	Homogeneous
	// ScaleFree is a Barabási–Albert graph with m = MaxDegree attachments
	// per arriving node (the paper's Fig 7 uses m = 3).
	ScaleFree
	// Ring is a cycle, the degenerate worst case for random-walk mixing.
	Ring
	// SmallWorld is a Watts–Strogatz graph: a ring lattice with MaxDegree
	// neighbors per side and RewireProb rewiring — high clustering with a
	// small diameter.
	SmallWorld
)

// String returns the topology name.
func (t Topology) String() string {
	switch t {
	case Heterogeneous:
		return "heterogeneous"
	case Homogeneous:
		return "homogeneous"
	case ScaleFree:
		return "scale-free"
	case Ring:
		return "ring"
	case SmallWorld:
		return "small-world"
	default:
		return fmt.Sprintf("topology(%d)", int(t))
	}
}

// NetworkOptions configures NewNetwork.
type NetworkOptions struct {
	// Nodes is the initial overlay size. Required.
	Nodes int
	// Topology defaults to Heterogeneous.
	Topology Topology
	// MaxDegree is the degree cap (Heterogeneous), exact degree
	// (Homogeneous) or attachment count (ScaleFree). Default 10
	// (3 for ScaleFree), matching the paper.
	MaxDegree int
	// RewireProb is the SmallWorld rewiring probability beta (default
	// 0.1); ignored by other topologies.
	RewireProb float64
	// Seed drives construction and subsequent churn. Same options, same
	// network.
	Seed uint64
}

// Network is a simulated peer-to-peer overlay with a message meter.
// It is not safe for concurrent use.
type Network struct {
	net *overlay.Network
	rng *xrand.Rand // churn randomness
}

// NewNetwork builds an overlay per the options.
func NewNetwork(opts NetworkOptions) (*Network, error) {
	if opts.Nodes < 1 {
		return nil, errors.New("p2psize: NetworkOptions.Nodes must be >= 1")
	}
	maxDeg := opts.MaxDegree
	if maxDeg == 0 {
		if opts.Topology == ScaleFree {
			maxDeg = 3
		} else {
			maxDeg = 10
		}
	}
	if maxDeg < 1 {
		return nil, errors.New("p2psize: NetworkOptions.MaxDegree must be >= 1")
	}
	rng := xrand.New(opts.Seed)
	var g *graph.Graph
	switch opts.Topology {
	case Heterogeneous:
		g = graph.Heterogeneous(opts.Nodes, maxDeg, rng)
	case Homogeneous:
		if maxDeg >= opts.Nodes {
			return nil, errors.New("p2psize: homogeneous degree must be < Nodes")
		}
		g = graph.Homogeneous(opts.Nodes, maxDeg, rng)
	case ScaleFree:
		if opts.Nodes < maxDeg+1 {
			return nil, errors.New("p2psize: scale-free needs Nodes > MaxDegree")
		}
		g = graph.BarabasiAlbert(opts.Nodes, maxDeg, rng)
		maxDeg = opts.Nodes // joins on scale-free graphs are not degree-capped
	case Ring:
		if opts.Nodes < 3 {
			return nil, errors.New("p2psize: ring needs Nodes >= 3")
		}
		g = graph.Ring(opts.Nodes)
	case SmallWorld:
		if maxDeg == 10 && opts.MaxDegree == 0 {
			maxDeg = 4 // lattice k; degree 2k = 8 ≈ the paper's overlays
		}
		if opts.Nodes < 2*maxDeg+1 {
			return nil, errors.New("p2psize: small world needs Nodes > 2*MaxDegree")
		}
		beta := opts.RewireProb
		if beta == 0 {
			beta = 0.1
		}
		if beta < 0 || beta > 1 {
			return nil, errors.New("p2psize: RewireProb must be in [0,1]")
		}
		g = graph.WattsStrogatz(opts.Nodes, maxDeg, beta, rng)
		maxDeg = 2 * maxDeg
	default:
		return nil, fmt.Errorf("p2psize: unknown topology %v", opts.Topology)
	}
	return &Network{net: overlay.New(g, maxDeg, nil), rng: rng.Split()}, nil
}

// Size returns the true current number of live peers — what the
// estimators try to recover without global knowledge.
func (n *Network) Size() int { return n.net.Size() }

// Messages returns the total protocol messages metered so far.
func (n *Network) Messages() uint64 { return n.net.Counter().Total() }

// MessagesByKind returns the per-category message counts (walk hops,
// gossip spread, replies, push/pull, ...).
func (n *Network) MessagesByKind() map[string]uint64 {
	out := make(map[string]uint64)
	for _, k := range metrics.AllKinds() {
		if c := n.net.Counter().Count(k); c > 0 {
			out[k.String()] = c
		}
	}
	return out
}

// ResetMessages zeroes the message meter.
func (n *Network) ResetMessages() { n.net.Counter().Reset() }

// AvgDegree returns the mean node degree.
func (n *Network) AvgDegree() float64 { return graph.AvgDegree(n.net.Graph()) }

// MaxObservedDegree returns the largest current node degree.
func (n *Network) MaxObservedDegree() int { return graph.MaxDegree(n.net.Graph()) }

// IsConnected reports whether the overlay is a single component.
func (n *Network) IsConnected() bool { return graph.IsConnected(n.net.Graph()) }

// LargestComponent returns the size of the largest connected component.
func (n *Network) LargestComponent() int { return graph.LargestComponent(n.net.Graph()) }

// DegreeCounts returns (degree, count) pairs over live peers — the data
// behind the paper's Fig 7.
func (n *Network) DegreeCounts() (degrees, counts []int) {
	return graph.DegreeHistogram(n.net.Graph()).NonZero()
}

// Join adds one peer with a random target degree (uniform in
// [1, MaxDegree], as in the paper's construction) and returns the new
// overlay size.
func (n *Network) Join() int {
	n.net.JoinRandomDegree(n.rng)
	return n.Size()
}

// JoinMany adds k peers.
func (n *Network) JoinMany(k int) {
	for i := 0; i < k; i++ {
		n.net.JoinRandomDegree(n.rng)
	}
}

// LeaveRandom removes one uniformly random peer (no neighbor rewiring,
// per the paper's churn rule) and reports whether a peer was removed.
func (n *Network) LeaveRandom() bool {
	_, ok := n.net.LeaveRandom(n.rng)
	return ok
}

// LeaveFraction removes the given fraction of current peers (0..1),
// uniformly at random — a catastrophic failure. Returns the number
// removed.
func (n *Network) LeaveFraction(f float64) int {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	k := int(f * float64(n.Size()))
	removed := 0
	for i := 0; i < k && n.Size() > 1; i++ {
		if n.LeaveRandom() {
			removed++
		}
	}
	return removed
}

// WriteSnapshot serializes the overlay topology for later reuse.
func (n *Network) WriteSnapshot(w io.Writer) error {
	_, err := n.net.Graph().WriteTo(w)
	return err
}

// LoadNetwork rebuilds a Network from a snapshot produced by
// WriteSnapshot. Seed drives subsequent churn; maxDegree caps joins
// (0 = the paper's 10).
func LoadNetwork(r io.Reader, maxDegree int, seed uint64) (*Network, error) {
	g, err := graph.Read(r)
	if err != nil {
		return nil, err
	}
	if maxDegree == 0 {
		maxDegree = 10
	}
	return &Network{net: overlay.New(g, maxDegree, nil), rng: xrand.New(seed)}, nil
}

// Estimator produces decentralized size estimates for a Network.
type Estimator interface {
	// Name identifies the algorithm and its headline parameters.
	Name() string
	// Estimate runs one estimation process; its message cost accumulates
	// on the network's meter.
	Estimate(n *Network) (float64, error)
}

// SampleCollideOptions configures NewSampleCollide. Zero values take the
// paper's defaults (T=10, L=200).
type SampleCollideOptions struct {
	// T is the random-walk timer; larger T means less sampling bias and
	// longer walks.
	T float64
	// L is the collision count to stop at; accuracy ~ 1/sqrt(L), cost ~
	// sqrt(L).
	L int
	// UseMLE selects the maximum-likelihood estimate refinement instead
	// of the paper's X²/(2L).
	UseMLE bool
	// Seed drives the estimator's randomness.
	Seed uint64
}

type scAdapter struct{ e *samplecollide.Estimator }

func (a scAdapter) Name() string { return a.e.Name() }
func (a scAdapter) Estimate(n *Network) (float64, error) {
	return a.e.Estimate(n.net)
}

// NewSampleCollide builds the random-walk estimator (§III-A).
func NewSampleCollide(opts SampleCollideOptions) Estimator {
	cfg := samplecollide.Default()
	if opts.T > 0 {
		cfg.T = opts.T
	}
	if opts.L > 0 {
		cfg.L = opts.L
	}
	if opts.UseMLE {
		cfg.Kind = samplecollide.MLE
	}
	return scAdapter{samplecollide.New(cfg, xrand.New(opts.Seed))}
}

// HopsSamplingOptions configures NewHopsSampling. Zero values take the
// paper's defaults (gossipTo=2, gossipFor=1, gossipUntil=1,
// minHopsReporting=5, routed replies).
type HopsSamplingOptions struct {
	// GossipTo is the per-round gossip fan-out.
	GossipTo int
	// MinHopsReporting is the always-reply distance threshold.
	MinHopsReporting int
	// DirectReplies sends responses straight to the initiator (1 message)
	// instead of routing them back hop-by-hop.
	DirectReplies bool
	// Seed drives the estimator's randomness.
	Seed uint64
}

type hopsAdapter struct{ e *hopssampling.Estimator }

func (a hopsAdapter) Name() string { return a.e.Name() }
func (a hopsAdapter) Estimate(n *Network) (float64, error) {
	return a.e.Estimate(n.net)
}

// NewHopsSampling builds the probabilistic-polling estimator (§III-B).
func NewHopsSampling(opts HopsSamplingOptions) Estimator {
	cfg := hopssampling.Default()
	if opts.GossipTo > 0 {
		cfg.GossipTo = opts.GossipTo
	}
	if opts.MinHopsReporting > 0 {
		cfg.MinHopsReporting = opts.MinHopsReporting
	}
	if opts.DirectReplies {
		cfg.RoutedReplies = false
	}
	return hopsAdapter{hopssampling.New(cfg, xrand.New(opts.Seed))}
}

// AggregationOptions configures NewAggregation. Zero values take the
// paper's defaults (50 rounds per estimation, auto-sized sharding).
type AggregationOptions struct {
	// Rounds is the push-pull rounds run per estimation.
	Rounds int
	// Shards splits each round's node sweep into per-stream segments.
	// The shard count is part of the estimator's output (equal options
	// and seeds give equal estimates only at equal shard counts);
	// 0 auto-sizes from the overlay, and out-of-range values (negative
	// or beyond the internal cap) fall back to auto-sizing.
	Shards int
	// Workers caps the goroutines sweeping one round's shards (0 = all
	// CPUs, 1 = sequential). Workers never changes the output.
	Workers int
	// Shuffle selects the sweep-order randomization: "" or "global"
	// reproduces the frozen serial-shuffle draw order, "local" (alias
	// "localshuffle") shuffles each shard's segment inside the parallel
	// phase. Part of the output, like Shards; unknown spellings fall
	// back to global.
	Shuffle string
	// Seed drives the estimator's randomness.
	Seed uint64
}

type aggAdapter struct{ e *aggregation.Estimator }

func (a aggAdapter) Name() string { return a.e.Name() }
func (a aggAdapter) Estimate(n *Network) (float64, error) {
	return a.e.Estimate(n.net)
}

// NewAggregation builds the epidemic averaging estimator (§III-C).
func NewAggregation(opts AggregationOptions) Estimator {
	cfg := aggregation.Default()
	if opts.Rounds > 0 {
		cfg.RoundsPerEpoch = opts.Rounds
	}
	// Facade contract: bad option values fall back to defaults instead
	// of reaching the internal config's panicking validation.
	if opts.Shards > 0 && opts.Shards <= parallel.MaxConfigShards {
		cfg.Shards = opts.Shards
	}
	cfg.Workers = opts.Workers
	if mode, err := parallel.ParseShuffleMode(opts.Shuffle); err == nil {
		cfg.Shuffle = mode
	}
	return aggAdapter{aggregation.NewEstimator(cfg, xrand.New(opts.Seed))}
}

// RandomTourOptions configures NewRandomTour. Zero values take single-
// tour defaults.
type RandomTourOptions struct {
	// Tours is the number of independent tours averaged per estimation.
	Tours int
	// Seed drives the estimator's randomness.
	Seed uint64
}

type tourAdapter struct{ e *randomtour.Estimator }

func (a tourAdapter) Name() string { return a.e.Name() }
func (a tourAdapter) Estimate(n *Network) (float64, error) {
	return a.e.Estimate(n.net)
}

// NewRandomTour builds the return-time random-walk estimator from the
// study's background section (§II) — the method Sample&Collide was
// chosen over. One tour costs Θ(N·d̄/deg) messages, so it mainly serves
// as a comparison baseline.
func NewRandomTour(opts RandomTourOptions) Estimator {
	cfg := randomtour.Default()
	if opts.Tours > 0 {
		cfg.Tours = opts.Tours
	}
	return tourAdapter{randomtour.New(cfg, xrand.New(opts.Seed))}
}

// PollingOptions configures NewPolling. Zero values take the defaults
// (p = 0.01, routed replies).
type PollingOptions struct {
	// ResponseProb is the probability each probed node replies with.
	ResponseProb float64
	// DirectReplies prices replies at one message instead of their hop
	// distance.
	DirectReplies bool
	// Seed drives the estimator's randomness.
	Seed uint64
}

type pollAdapter struct{ e *polling.Estimator }

func (a pollAdapter) Name() string { return a.e.Name() }
func (a pollAdapter) Estimate(n *Network) (float64, error) {
	return a.e.Estimate(n.net)
}

// NewPolling builds the plain probabilistic-polling baseline (§II):
// flood a probe, count replies sent with a fixed probability.
func NewPolling(opts PollingOptions) Estimator {
	cfg := polling.Default()
	if opts.ResponseProb > 0 {
		cfg.ResponseProb = opts.ResponseProb
	}
	if opts.DirectReplies {
		cfg.RoutedReplies = false
	}
	return pollAdapter{polling.New(cfg, xrand.New(opts.Seed))}
}

// Smoothed wraps an estimator with the paper's lastKruns heuristic: each
// Estimate reports the mean of the last k raw estimates (k = 10 is the
// paper's "last10runs").
func Smoothed(e Estimator, k int) Estimator {
	if k < 1 {
		k = 10
	}
	return &smoothed{inner: e, win: stats.NewWindow(k), k: k}
}

type smoothed struct {
	inner Estimator
	win   *stats.Window
	k     int
}

func (s *smoothed) Name() string {
	return fmt.Sprintf("%s/last%druns", s.inner.Name(), s.k)
}

func (s *smoothed) Estimate(n *Network) (float64, error) {
	raw, err := s.inner.Estimate(n)
	if err != nil {
		return 0, err
	}
	s.win.Add(raw)
	return s.win.Mean(), nil
}

// RunRepeated performs runs consecutive estimations and returns the raw
// values. Overhead accumulates on the network meter.
func RunRepeated(e Estimator, n *Network, runs int) ([]float64, error) {
	if runs < 1 {
		return nil, errors.New("p2psize: RunRepeated needs runs >= 1")
	}
	out := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		v, err := e.Estimate(n)
		if err != nil {
			return out, fmt.Errorf("p2psize: run %d: %w", i, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// RunParallel performs runs independent estimations across a worker pool
// and returns the raw values ordered by run index. newEstimator(i) builds
// the estimator for run i and must derive its Seed from i (e.g. baseSeed
// + i), so that run i's value is fixed by the index alone — the output is
// then byte-identical at every worker count, including workers = 1.
//
// The overlay must not be mutated during the call. Each run meters on a
// private counter; the per-run counts are merged into the network's meter
// in run order before returning, so Messages() sees the same totals a
// sequential execution would.
func RunParallel(newEstimator func(run int) Estimator, n *Network, runs, workers int) ([]float64, error) {
	if runs < 1 {
		return nil, errors.New("p2psize: RunParallel needs runs >= 1")
	}
	type runOut struct {
		val     float64
		counter metrics.Counter
	}
	outs, err := parallel.Map(workers, runs, func(i int) (runOut, error) {
		view := &Network{net: n.net.View()}
		v, err := newEstimator(i).Estimate(view)
		if err != nil {
			return runOut{}, fmt.Errorf("p2psize: run %d: %w", i, err)
		}
		return runOut{val: v, counter: view.net.Counter().Snapshot()}, nil
	})
	if err != nil {
		return nil, err
	}
	vals := make([]float64, runs)
	for i, o := range outs {
		vals[i] = o.val
		n.net.Counter().Merge(&o.counter)
	}
	return vals, nil
}

// SmoothLastK applies the paper's lastKruns heuristic to a raw estimate
// sequence after the fact: out[i] is the mean of vals[max(0,i-k+1) .. i].
// It is the post-hoc equivalent of wrapping an estimator in Smoothed,
// usable with RunParallel where runs complete out of order.
func SmoothLastK(vals []float64, k int) []float64 {
	if k < 1 {
		k = 10
	}
	w := stats.NewWindow(k)
	out := make([]float64, len(vals))
	for i, v := range vals {
		w.Add(v)
		out[i] = w.Mean()
	}
	return out
}
