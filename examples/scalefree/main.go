// Scale-free: run the three estimators on a Barabási–Albert overlay
// whose degree distribution follows a power law (hubs with hundreds of
// links next to degree-3 leaves) — the paper's Fig 7/8 workload.
//
// Expected outcome, as in the paper: Sample&Collide stays unbiased
// (its continuous-time walk cancels the degree bias), Aggregation stays
// accurate, and HopsSampling's under-estimation is amplified.
package main

import (
	"fmt"
	"log"
	"math"

	"p2psize"
)

func main() {
	net, err := p2psize.NewNetwork(p2psize.NetworkOptions{
		Nodes:    20000,
		Topology: p2psize.ScaleFree,
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Show the power law: bucket the degree histogram by powers of two.
	degrees, counts := net.DegreeCounts()
	fmt.Printf("scale-free overlay: %d peers, avg degree %.1f, hub degree %d\n",
		net.Size(), net.AvgDegree(), degrees[len(degrees)-1])
	fmt.Println("\ndegree distribution (log buckets):")
	buckets := map[int]int{}
	for i, d := range degrees {
		b := int(math.Log2(float64(d)))
		buckets[b] += counts[i]
	}
	for b := 1; b < 16; b++ {
		if c, ok := buckets[b]; ok {
			fmt.Printf("  degree %5d-%-5d: %6d nodes\n", 1<<b, 1<<(b+1)-1, c)
		}
	}

	fmt.Println("\nestimators on the scale-free topology:")
	for _, est := range []p2psize.Estimator{
		p2psize.NewSampleCollide(p2psize.SampleCollideOptions{L: 200, Seed: 12}),
		p2psize.NewHopsSampling(p2psize.HopsSamplingOptions{Seed: 13}),
		p2psize.NewAggregation(p2psize.AggregationOptions{Rounds: 50, Seed: 14}),
	} {
		net.ResetMessages()
		size, err := est.Estimate(net)
		if err != nil {
			log.Fatalf("%s: %v", est.Name(), err)
		}
		fmt.Printf("  %-28s estimate %8.0f  error %+6.1f%%  cost %9d messages\n",
			est.Name(), size, 100*(size/float64(net.Size())-1), net.Messages())
	}
}
