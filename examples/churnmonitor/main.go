// Churn monitor: continuously track the size of an overlay under
// realistic churn — heavy-tailed (Weibull) session lengths, a flash
// crowd of short-lived visitors, then a correlated mass failure — using
// the trace and monitor subsystems.
//
// Two identically configured Sample&Collide estimators run side by
// side under different smoothing policies: a plain 10-sample sliding
// window, and the same window with restart-on-shock. The point, visible
// in the output: smoothing buys accuracy in the quiet phases but lags
// brutally after the flash crowd and the failure, while restart-on-shock
// discards the stale window the moment a raw estimate jumps and
// re-converges in one sample. HopsSampling rides along for the paper's
// cross-class comparison, and the tracking table at the end prints the
// monitor's verdict: error, staleness and message budget per estimator.
package main

import (
	"fmt"
	"log"

	"p2psize"
)

func main() {
	const (
		n0      = 20000
		horizon = 600.0
	)

	// A population of 20k peers whose session lengths follow the
	// heavy-tailed Weibull(k=0.5) fit of measured P2P deployments, with
	// stationary arrivals; then a +50% flash crowd of short-stay
	// visitors at t=180 and a -25% mass failure at t=420.
	tr, err := p2psize.GenerateTrace(p2psize.TraceOptions{
		Nodes:    n0,
		Horizon:  horizon,
		Sessions: p2psize.WeibullSessions,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.AddFlashCrowd(180, n0/2, 0, 8); err != nil {
		log.Fatal(err)
	}
	if err := tr.AddMassFailure(420, 0.25, 9); err != nil {
		log.Fatal(err)
	}

	net, err := p2psize.NewNetwork(p2psize.NetworkOptions{Nodes: n0, Seed: 10})
	if err != nil {
		log.Fatal(err)
	}

	run := func(restartJump float64) *p2psize.MonitorResult {
		res, err := p2psize.RunMonitor(net, tr,
			[]p2psize.Estimator{
				p2psize.NewSampleCollide(p2psize.SampleCollideOptions{L: 200, Seed: 11}),
				p2psize.NewHopsSampling(p2psize.HopsSamplingOptions{Seed: 12}),
			},
			p2psize.MonitorOptions{
				Cadence:     10,
				Policy:      p2psize.WindowSmoothing,
				Window:      10,
				RestartJump: restartJump,
				ReplaySeed:  13,
			})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	smoothed := run(0)    // plain last10runs
	restarted := run(.25) // last10runs + restart-on-shock

	fmt.Printf("%6s %10s %12s %12s   event\n", "time", "true", "last10runs", "+restart")
	times := smoothed.Times()
	for i, t := range times {
		event := ""
		switch t {
		case 180:
			event = "flash crowd: +50% short-stay visitors"
		case 420:
			event = "mass failure: -25%"
		}
		if i%3 == 0 || event != "" {
			fmt.Printf("%6.0f %10.0f %12.0f %12.0f   %s\n",
				t, smoothed.TrueSizes()[i],
				smoothed.Estimates(0)[i], restarted.Estimates(0)[i], event)
		}
	}

	fmt.Printf("\ntrace: %d joins, %d leaves over %g time units\n",
		tr.Joins(), tr.Leaves(), tr.Horizon())
	fmt.Printf("\nwindow(10), no restart:\n%s", smoothed)
	fmt.Printf("\nwindow(10) + restart-on-shock(0.25):\n%s", restarted)
}
