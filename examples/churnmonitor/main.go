// Churn monitor: track the size of an overlay that loses a quarter of
// its peers in two catastrophic failures and then partially recovers —
// the paper's dynamic scenario (§IV-D) — using a continuously re-run
// Sample&Collide estimator smoothed against a periodically restarted
// HopsSampling poll.
//
// The point the comparative study makes, visible in this output: the
// memoryless oneShot Sample&Collide reacts instantly to brutal size
// changes, while the last10runs-smoothed estimate needs a few runs to
// converge after each shock.
package main

import (
	"fmt"
	"log"

	"p2psize"
)

func main() {
	const n0 = 20000
	net, err := p2psize.NewNetwork(p2psize.NetworkOptions{Nodes: n0, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	oneShot := p2psize.NewSampleCollide(p2psize.SampleCollideOptions{L: 200, Seed: 8})
	smoothed := p2psize.Smoothed(
		p2psize.NewSampleCollide(p2psize.SampleCollideOptions{L: 200, Seed: 9}), 10)

	fmt.Printf("%6s %10s %12s %12s   event\n", "step", "true", "oneShot", "last10runs")
	for step := 1; step <= 60; step++ {
		event := ""
		switch step {
		case 20:
			net.LeaveFraction(0.25)
			event = "catastrophic failure: -25%"
		case 40:
			net.LeaveFraction(0.25)
			event = "catastrophic failure: -25%"
		case 50:
			net.JoinMany(n0 / 4)
			event = "recovery wave: +25% of original"
		}
		a, err := oneShot.Estimate(net)
		if err != nil {
			log.Fatal(err)
		}
		b, err := smoothed.Estimate(net)
		if err != nil {
			log.Fatal(err)
		}
		if step%2 == 0 || event != "" {
			fmt.Printf("%6d %10d %12.0f %12.0f   %s\n", step, net.Size(), a, b, event)
		}
	}
	fmt.Printf("\ntotal message cost: %d (connected=%v, largest component %d of %d)\n",
		net.Messages(), net.IsConnected(), net.LargestComponent(), net.Size())
}
