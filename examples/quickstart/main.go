// Quickstart: build an overlay, run all three size estimators once, and
// compare their accuracy and message cost — the library's core loop in
// thirty lines.
package main

import (
	"fmt"
	"log"

	"p2psize"
)

func main() {
	// A 20,000-peer unstructured overlay: every node knows a random set
	// of at most 10 neighbors (average ≈ 7.2), like the paper's test
	// networks. The seed makes the run reproducible.
	net, err := p2psize.NewNetwork(p2psize.NetworkOptions{Nodes: 20000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay: %d peers, avg degree %.1f\n\n", net.Size(), net.AvgDegree())

	estimators := []p2psize.Estimator{
		// Random walks + inverted birthday paradox: cheap, tunable via l.
		p2psize.NewSampleCollide(p2psize.SampleCollideOptions{L: 200, Seed: 1}),
		// Gossip a poll, count distance-weighted probabilistic replies.
		p2psize.NewHopsSampling(p2psize.HopsSamplingOptions{Seed: 2}),
		// Epidemic push-pull averaging: near exact after ~50 rounds.
		p2psize.NewAggregation(p2psize.AggregationOptions{Rounds: 50, Seed: 3}),
	}

	for _, est := range estimators {
		net.ResetMessages()
		size, err := est.Estimate(net)
		if err != nil {
			log.Fatalf("%s: %v", est.Name(), err)
		}
		errPct := 100 * (size/float64(net.Size()) - 1)
		fmt.Printf("%-28s estimate %8.0f  error %+6.1f%%  cost %9d messages\n",
			est.Name(), size, errPct, net.Messages())
	}
}
