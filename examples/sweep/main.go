// Sweep: explore Sample&Collide's accuracy/overhead trade-off by varying
// the collision parameter l — the flexibility §V of the paper highlights
// ("a strength of this algorithm is to adapt to the application
// performance needs by simply modifying one parameter").
//
// Expect cost to grow like sqrt(l) while relative error shrinks like
// 1/sqrt(l): l=10 is a cheap rough estimate (paper Fig 18), l=200 the
// paper's accurate setting, l=1000 competes with Aggregation.
package main

import (
	"fmt"
	"log"
	"math"

	"p2psize"
)

func main() {
	const nodes = 20000
	const runsPerL = 8

	fmt.Printf("Sample&Collide accuracy/overhead trade-off on %d peers (%d runs each)\n\n", nodes, runsPerL)
	fmt.Printf("%6s %12s %12s %14s %16s\n", "l", "mean est", "stddev %", "mean |err| %", "msgs/estimation")

	for _, l := range []int{10, 50, 200, 1000} {
		net, err := p2psize.NewNetwork(p2psize.NetworkOptions{Nodes: nodes, Seed: 21})
		if err != nil {
			log.Fatal(err)
		}
		// The paper's X²/(2l) formula assumes X = sqrt(2lN) << N; at
		// l=1000 on 20k peers that no longer holds and the basic
		// estimator reads a few percent high, so the sweep switches to
		// the exact-likelihood (MLE) refinement there.
		useMLE := l >= 1000
		est := p2psize.NewSampleCollide(p2psize.SampleCollideOptions{
			L: l, UseMLE: useMLE, Seed: uint64(l),
		})
		vals, err := p2psize.RunRepeated(est, net, runsPerL)
		if err != nil {
			log.Fatal(err)
		}
		var sum, sumSq, sumAbs float64
		for _, v := range vals {
			sum += v
			sumSq += v * v
			sumAbs += math.Abs(v/nodes-1) * 100
		}
		mean := sum / runsPerL
		sd := math.Sqrt(math.Max(0, sumSq/runsPerL-mean*mean))
		label := fmt.Sprintf("%d", l)
		if useMLE {
			label += "*"
		}
		fmt.Printf("%6s %12.0f %12.1f %14.1f %16.0f\n",
			label, mean, 100*sd/mean, sumAbs/runsPerL, float64(net.Messages())/runsPerL)
	}
	fmt.Println("     (* = MLE refinement; the basic X²/2l estimator saturates when l is large relative to N)")

	fmt.Println("\nreference: the other two algorithms at their paper settings")
	for _, est := range []p2psize.Estimator{
		p2psize.NewHopsSampling(p2psize.HopsSamplingOptions{Seed: 31}),
		p2psize.NewAggregation(p2psize.AggregationOptions{Rounds: 50, Seed: 32}),
	} {
		net, err := p2psize.NewNetwork(p2psize.NetworkOptions{Nodes: nodes, Seed: 21})
		if err != nil {
			log.Fatal(err)
		}
		vals, err := p2psize.RunRepeated(est, net, 3)
		if err != nil {
			log.Fatal(err)
		}
		var sumAbs float64
		for _, v := range vals {
			sumAbs += math.Abs(v/nodes-1) * 100
		}
		fmt.Printf("%30s: mean |err| %5.1f%%, %8.0f msgs/estimation\n",
			est.Name(), sumAbs/float64(len(vals)), float64(net.Messages())/float64(len(vals)))
	}
}
