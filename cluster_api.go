package p2psize

import (
	"errors"
	"fmt"
	"time"

	"p2psize/internal/cluster"
	"p2psize/internal/registry"
)

// ClusterOptions configures RunCluster, the live-cluster runtime: real
// node daemons on UDP sockets, wired into the requested topology, with
// the estimator families running over actual packets and every live
// estimate cross-validated against a simulated run on the identical
// topology.
type ClusterOptions struct {
	// Nodes is the cluster size when bootstrapping in-process daemons.
	// Ignored when Addrs is set. Required otherwise (>= 2).
	Nodes int
	// Addrs lists pre-started p2pnode daemons to drive instead of
	// bootstrapping; the cluster size is len(Addrs).
	Addrs []string
	// Topology and MaxDegree shape the plan topology, as in NewNetwork.
	Topology  Topology
	MaxDegree int
	// Seed fixes the plan construction and every estimator stream.
	Seed uint64
	// Estimators selects families by registry name/alias; empty means
	// every transport-capable family of the default monitoring roster.
	Estimators []string
	// Samples is the estimations per family (0 = 3).
	Samples int
	// Cadence is the simulated time between samples (0 = 10).
	Cadence float64
	// Tolerance is the accepted relative live-vs-simulated divergence
	// (0 = 0.05). A benign run is bit-equal, i.e. divergence 0; the
	// tolerance absorbs liveness-driven membership changes.
	Tolerance float64
	// RTO and Retries tune the coordinator transport's retransmission
	// (0 = defaults: 250ms, 4 retries).
	RTO     time.Duration
	Retries int
	// Teardown sends a shutdown RPC to every daemon when the run ends.
	Teardown bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// ClusterFamily is one estimator family's live-vs-simulated outcome.
type ClusterFamily struct {
	// Name is the family's canonical registry name.
	Name string
	// Live and Sim are the per-sample raw estimates from the live
	// cluster and the simulated oracle.
	Live, Sim []float64
	// MaxDivergence is max |live/sim - 1| over the samples.
	MaxDivergence float64
	// Messages is the live run's metered protocol traffic.
	Messages uint64
}

// ClusterReport is the outcome of a live-cluster run.
type ClusterReport struct {
	// Nodes is the cluster size.
	Nodes int
	// Families holds the per-family cross-validation, roster order.
	Families []ClusterFamily
	// Tolerance is the applied divergence bound; WithinTolerance is
	// whether every family respected it.
	Tolerance       float64
	WithinTolerance bool
	// Departed counts daemons that stopped answering during the run.
	Departed int
}

// RunCluster wires a cluster of real node daemons into the requested
// topology and runs the selected estimator families over actual UDP
// sockets, cross-validating each live estimate against a simulated run
// on the identical topology. Snapshot-based families that cannot run
// over a live transport are rejected when named explicitly and skipped
// when implied by a roster selector.
func RunCluster(opts ClusterOptions) (*ClusterReport, error) {
	n := opts.Nodes
	if len(opts.Addrs) > 0 {
		n = len(opts.Addrs)
	}
	if n < 2 {
		return nil, errors.New("p2psize: ClusterOptions needs Nodes >= 2 (or Addrs)")
	}

	descs, err := clusterRoster(opts.Estimators)
	if err != nil {
		return nil, err
	}

	// The plan topology is a plain NewNetwork build: same generators,
	// same seed discipline as every simulated experiment.
	plan, err := NewNetwork(NetworkOptions{
		Nodes:     n,
		Topology:  opts.Topology,
		MaxDegree: opts.MaxDegree,
		Seed:      opts.Seed,
	})
	if err != nil {
		return nil, err
	}

	rep, err := cluster.Run(cluster.Config{
		Plan:       plan.net.Graph(),
		MaxDeg:     plan.net.MaxDegree(),
		Addrs:      opts.Addrs,
		Estimators: descs,
		Seed:       opts.Seed,
		Samples:    opts.Samples,
		Cadence:    opts.Cadence,
		Tolerance:  opts.Tolerance,
		RTO:        opts.RTO,
		Retries:    opts.Retries,
		Teardown:   opts.Teardown,
		Logf:       opts.Logf,
	})
	if err != nil {
		return nil, err
	}

	out := &ClusterReport{
		Nodes:           rep.Nodes,
		Tolerance:       rep.Tolerance,
		WithinTolerance: rep.Within,
		Departed:        len(rep.Departed),
	}
	for _, f := range rep.Families {
		out.Families = append(out.Families, ClusterFamily{
			Name:          f.Name,
			Live:          f.Live,
			Sim:           f.Sim,
			MaxDivergence: f.MaxDivergence,
			Messages:      f.Messages,
		})
	}
	return out, nil
}

// clusterRoster resolves estimator selectors for the live runtime:
// roster selectors ("", "default", "all") silently keep only the
// transport-capable families, while an explicitly named family that
// cannot run live is an error the caller should see.
func clusterRoster(names []string) ([]registry.Descriptor, error) {
	explicit := len(names) > 0
	descs, err := registry.Resolve(names)
	if err != nil {
		return nil, err
	}
	out := descs[:0]
	for _, d := range descs {
		if d.SupportsTransport {
			out = append(out, d)
		} else if explicit {
			return nil, fmt.Errorf("p2psize: estimator %q cannot run over a live transport (snapshot-based)", d.Name)
		}
	}
	if len(out) == 0 {
		return nil, errors.New("p2psize: no transport-capable estimators selected")
	}
	return out, nil
}
