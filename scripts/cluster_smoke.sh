#!/usr/bin/env bash
# Multi-process live-cluster smoke: spawn 8 p2pnode daemons as separate
# OS processes on 127.0.0.1, point the p2psize coordinator at their
# collected addresses, and assert that the live sc,hops,agg estimates
# agree with the simulated run within tolerance. The coordinator exits
# nonzero on divergence, so this script's exit code IS the assertion.
# -teardown shuts the daemons down over RPC; the trap is the backstop
# for early failures.
set -euo pipefail

NODES="${NODES:-8}"
ESTIMATORS="${ESTIMATORS:-sc,hops,agg}"
TOLERANCE="${TOLERANCE:-0.05}"
workdir="$(mktemp -d)"
pids=()

cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

cd "$(dirname "$0")/.."
go build -o "$workdir/p2pnode" ./cmd/p2pnode
go build -o "$workdir/p2psize" ./cmd/p2psize

for i in $(seq 0 $((NODES - 1))); do
    "$workdir/p2pnode" -addr 127.0.0.1:0 -addr-file "$workdir/addr.$i" \
        > "$workdir/node.$i.log" 2>&1 &
    pids+=($!)
done

# Ephemeral ports land in the addr-files once each daemon is listening.
for i in $(seq 0 $((NODES - 1))); do
    for _ in $(seq 1 100); do
        [ -s "$workdir/addr.$i" ] && break
        sleep 0.1
    done
    [ -s "$workdir/addr.$i" ] || { echo "daemon $i never published its address" >&2; exit 1; }
done
cat "$workdir"/addr.* | paste -sd, - > "$workdir/addrs"
echo "daemons up: $(cat "$workdir/addrs")"

"$workdir/p2psize" -cluster-addrs "@$workdir/addrs" \
    -estimators "$ESTIMATORS" -tolerance "$TOLERANCE" -teardown

# -teardown asked every daemon to exit; give them a moment and verify.
for pid in "${pids[@]}"; do
    for _ in $(seq 1 50); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "daemon pid $pid ignored the shutdown RPC" >&2
        exit 1
    fi
done
pids=()
echo "cluster smoke passed: $NODES daemons, estimators $ESTIMATORS, tolerance $TOLERANCE"
