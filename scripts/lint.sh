#!/usr/bin/env bash
# Local mirror of the CI `lint` job: gofmt + vet + staticcheck +
# govulncheck + detlint, in that order, so a clean run here means a
# clean gate there. staticcheck and govulncheck are fetched by CI but
# may be absent locally; they are skipped (loudly) when neither an
# installed binary nor a module cache copy can run them offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
elif GOFLAGS=-mod=mod go run honnef.co/go/tools/cmd/staticcheck@2025.1.1 ./... 2>/dev/null; then
    : # ran from the module cache / network
else
    echo "staticcheck unavailable offline; skipped (CI still runs it)" >&2
fi

echo "== govulncheck"
if command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./...
elif GOFLAGS=-mod=mod go run golang.org/x/vuln/cmd/govulncheck@latest ./... 2>/dev/null; then
    :
else
    echo "govulncheck unavailable offline; skipped (CI still runs it)" >&2
fi

echo "== detlint"
go run ./cmd/detlint ./...

echo "lint clean"
