package p2psize

// Public estimator-catalog surface: enumerate the registered estimator
// families, build one by name, and register custom families that then
// participate everywhere built-ins do (the -estimators flags, name
// resolution, the monitoring roster). Thin wrapper over
// internal/registry; see that package for the semantics.

import (
	"errors"
	"fmt"
	"sync/atomic"

	"p2psize/internal/core"
	"p2psize/internal/overlay"
	"p2psize/internal/parallel"
	"p2psize/internal/registry"
	"p2psize/internal/xrand"
)

// EstimatorInfo describes one registered estimator family.
type EstimatorInfo struct {
	// Name is the canonical selector, e.g. "samplecollide".
	Name string
	// Aliases are accepted alternate spellings ("sc").
	Aliases []string
	// Class is the counting-class taxonomy slot.
	Class string
	// Summary is a one-line description.
	Summary string
	// CostHint ranks families by relative message cost per estimation.
	CostHint int
	// SupportsDynamic marks families sound on a churning overlay.
	SupportsDynamic bool
	// SupportsMonitoring marks families the continuous monitor may
	// sample.
	SupportsMonitoring bool
	// SupportsTransport marks families whose estimates stay sound when
	// the overlay's sends are carried by a real transport — the families
	// RunCluster may drive.
	SupportsTransport bool
	// MutatesOverlay marks families whose instances may rewire the
	// overlay while estimating (the cyclon-backed gossip families).
	// Observe-only families (false) are eligible for shared-replay
	// grouping under MonitorOptions.Replay "shared".
	MutatesOverlay bool
}

// Estimators returns every registered estimator family, built-ins and
// custom registrations alike, in registration order.
func Estimators() []EstimatorInfo {
	all := registry.All()
	out := make([]EstimatorInfo, len(all))
	for i, d := range all {
		out[i] = EstimatorInfo{
			Name:               d.Name,
			Aliases:            append([]string(nil), d.Aliases...),
			Class:              d.Class,
			Summary:            d.Summary,
			CostHint:           d.CostHint,
			SupportsDynamic:    d.SupportsDynamic,
			SupportsMonitoring: d.SupportsMonitoring,
			SupportsTransport:  d.SupportsTransport,
			MutatesOverlay:     d.MutatesOverlay,
		}
	}
	return out
}

// DefaultEstimators returns the canonical names of the paper's
// head-to-head monitoring roster.
func DefaultEstimators() []string { return registry.DefaultSet() }

// EstimatorConfig carries the tunable knobs NewEstimatorByName honors;
// zero values select each family's paper defaults, and fields that do
// not concern the named family are ignored. The canonical field names
// match the internal registry's option names one-for-one; the original
// public names (T, L, UseMLE, MinHopsReporting) remain as deprecated
// aliases, honored when their canonical counterpart is zero.
type EstimatorConfig struct {
	// SCTimer is the Sample&Collide walk timer (0 = 10).
	SCTimer float64
	// SCL is the Sample&Collide collision target (0 = 200).
	SCL int
	// SCMLE selects Sample&Collide's maximum-likelihood refinement.
	SCMLE bool
	// MinHops is HopsSampling's always-reply threshold (0 = 5).
	MinHops int

	// T is a deprecated alias of SCTimer.
	//
	// Deprecated: set SCTimer.
	T float64
	// L is a deprecated alias of SCL.
	//
	// Deprecated: set SCL.
	L int
	// UseMLE is a deprecated alias of SCMLE.
	//
	// Deprecated: set SCMLE.
	UseMLE bool
	// MinHopsReporting is a deprecated alias of MinHops.
	//
	// Deprecated: set MinHops.
	MinHopsReporting int

	// Tours is the Random Tour count per estimation (0 = 1).
	Tours int
	// Rounds is the Aggregation rounds-per-epoch (0 = 50).
	Rounds int
	// Shards splits each Aggregation round's sweep (0 = auto; part of
	// the estimator's output, unlike Workers).
	Shards int
	// Workers caps the goroutines sweeping one Aggregation round.
	Workers int
	// Shuffle selects the sharded sweeps' order randomization:
	// "" or "global" reproduces the frozen serial-shuffle draw order,
	// "local" (alias "localshuffle") shuffles each shard's segment
	// inside the parallel phase — same estimator statistically, no
	// serial O(N) prefix. Part of the output, like Shards.
	Shuffle string
	// ResponseProb is the polling reply probability (0 = 0.01).
	ResponseProb float64
	// IDSamples is the id-density probe count (0 = 200).
	IDSamples int
	// Marks is the capture–recapture capture-phase draw count (0 = 300).
	Marks int
	// Recaptures is the capture–recapture recapture draw count (0 = 300).
	Recaptures int
	// DHTK is the DHT extrapolator's k-closest set size (0 = 20).
	DHTK int
	// DHTProbes is the DHT extrapolator's lookups per estimate (0 = 16).
	DHTProbes int
	// Faults runs the estimator under a fault scenario: the built
	// instance is decorated so every Estimate call enforces the
	// scenario's message-level faults (see ApplyFaults). The zero value
	// is benign.
	Faults FaultOptions
	// Seed drives the estimator's randomness.
	Seed uint64
}

// registryOptions is the single conversion point from the public
// configuration to the internal registry's options: canonical fields
// pass through one-for-one, deprecated aliases fill in wherever the
// canonical field holds its zero value.
func (c EstimatorConfig) registryOptions() (registry.Options, error) {
	shuffle, err := parallel.ParseShuffleMode(c.Shuffle)
	if err != nil {
		return registry.Options{}, fmt.Errorf("p2psize: Shuffle: %w", err)
	}
	o := registry.Options{
		Shuffle:      shuffle,
		SCTimer:      c.SCTimer,
		SCL:          c.SCL,
		SCMLE:        c.SCMLE || c.UseMLE,
		Tours:        c.Tours,
		MinHops:      c.MinHops,
		Rounds:       c.Rounds,
		Shards:       c.Shards,
		Workers:      c.Workers,
		ResponseProb: c.ResponseProb,
		IDSamples:    c.IDSamples,
		Marks:        c.Marks,
		Recaptures:   c.Recaptures,
		DHTK:         c.DHTK,
		DHTProbes:    c.DHTProbes,
		Faults:       c.Faults.spec(),
	}
	if o.SCTimer == 0 {
		o.SCTimer = c.T
	}
	if o.SCL == 0 {
		o.SCL = c.L
	}
	if o.MinHops == 0 {
		o.MinHops = c.MinHopsReporting
	}
	return o, nil
}

// NewEstimatorByName builds an estimator by registry name or alias.
// net supplies the overlay snapshot-based families derive state from
// (id-density builds its identifier ring from it); families that need
// no snapshot accept a nil net. A non-zero cfg.Faults decorates the
// instance with the scenario's fault injector.
func NewEstimatorByName(name string, cfg EstimatorConfig, net *Network) (Estimator, error) {
	d, ok := registry.Get(name)
	if !ok {
		return nil, fmt.Errorf("p2psize: unknown estimator %q (have %v)", name, registry.Names())
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	var inner *overlay.Network
	if net != nil {
		inner = net.net
	}
	opts, err := cfg.registryOptions()
	if err != nil {
		return nil, err
	}
	e, err := d.Build(inner, xrand.New(cfg.Seed), opts)
	if err != nil {
		return nil, fmt.Errorf("p2psize: %s: %w", d.Name, err)
	}
	return toPublic(e), nil
}

// coreWrap and publicWrap are the two halves of the package's single
// adapter pair: coreWrap lifts an internal estimator onto the public
// contract, publicWrap the reverse. All crossings go through toPublic /
// toCore, which unwrap instead of stacking — an estimator that round-
// trips across the boundary (a custom family inside the monitor, say)
// comes back as itself, not as wrapper lasagna.
type coreWrap struct{ e core.Estimator }

func (w coreWrap) Name() string { return w.e.Name() }
func (w coreWrap) Estimate(n *Network) (float64, error) {
	return w.e.Estimate(n.net)
}

// MutatesOverlay surfaces the wrapped internal estimator's capability,
// so a built-in family handed out by NewEstimatorByName keeps its
// shared-replay eligibility when it comes back through RunMonitor.
func (w coreWrap) MutatesOverlay() bool { return core.MutatesOverlay(w.e) }

type publicWrap struct {
	e Estimator
	// observeOnly forces the read-only capability on behalf of a
	// registration that declared it (CustomEstimator.ObserveOnly); the
	// public type itself need not implement the method.
	observeOnly bool
}

func (w publicWrap) Name() string { return w.e.Name() }
func (w publicWrap) Estimate(o *overlay.Network) (float64, error) {
	return w.e.Estimate(&Network{net: o})
}

// MutatesOverlay forwards the public estimator's own declaration when
// it makes one (a MutatesOverlay() bool method), and otherwise reports
// true — an undeclared estimator is conservatively assumed to rewire
// the overlay, which keeps it on a private clone in every replay mode.
func (w publicWrap) MutatesOverlay() bool {
	if w.observeOnly {
		return false
	}
	if m, ok := w.e.(interface{ MutatesOverlay() bool }); ok {
		return m.MutatesOverlay()
	}
	return true
}

// toPublic lifts an internal estimator onto the public contract.
func toPublic(e core.Estimator) Estimator {
	if w, ok := e.(publicWrap); ok {
		return w.e
	}
	return coreWrap{e}
}

// toCore lowers a public estimator onto the internal contract.
func toCore(e Estimator) core.Estimator {
	if w, ok := e.(coreWrap); ok {
		return w.e
	}
	return publicWrap{e: e}
}

// CustomEstimator registers a user-supplied estimator family.
type CustomEstimator struct {
	// Name is the canonical selector. Required, unique.
	Name string
	// Aliases are optional alternate spellings.
	Aliases []string
	// Summary is a one-line description for listings.
	Summary string
	// SupportsDynamic / SupportsMonitoring declare where the family may
	// be scheduled; see EstimatorInfo.
	SupportsDynamic    bool
	SupportsMonitoring bool
	// ObserveOnly declares that instances never rewire the overlay they
	// estimate on, making them eligible for shared-replay grouping
	// (MonitorOptions.Replay "shared"). The zero value is the safe
	// conservative default: an undeclared family is assumed to mutate
	// and always monitors on a private clone. Estimator types may
	// equivalently implement MutatesOverlay() bool themselves, which
	// also survives round trips through NewEstimatorByName.
	ObserveOnly bool
	// New builds one instance; it must derive all randomness from seed
	// (equal seeds, equal estimators) for the harness's determinism
	// guarantees to hold.
	New func(seed uint64) (Estimator, error)
}

// customOffset hands out seed-stream offsets for custom families,
// starting far above the built-ins' frozen block. Offsets follow
// registration order, so programs wanting reproducible rosters must
// register custom families in a fixed order (init time is ideal).
var customOffset atomic.Uint64

func init() { customOffset.Store(1 << 20) }

// RegisterEstimator adds a custom estimator family to the catalog. The
// family becomes selectable everywhere built-ins are: Estimators()
// listings, NewEstimatorByName, the -estimators CLI flags and the
// monitoring roster (when SupportsMonitoring is set).
func RegisterEstimator(c CustomEstimator) error {
	if c.New == nil {
		return errors.New("p2psize: CustomEstimator.New must not be nil")
	}
	mk := c.New
	observeOnly := c.ObserveOnly
	return registry.Register(registry.Descriptor{
		Name:               c.Name,
		Aliases:            append([]string(nil), c.Aliases...),
		Class:              "custom",
		Summary:            c.Summary,
		CostHint:           50, // unknown: schedule mid-pack
		CadenceHint:        1,
		SupportsDynamic:    c.SupportsDynamic,
		SupportsMonitoring: c.SupportsMonitoring,
		MutatesOverlay:     !c.ObserveOnly,
		// Custom families draw offsets from an atomic counter far above
		// the built-ins' frozen block (1<<20), so a static collision with
		// a literal offset is impossible; the cost is that reproducible
		// rosters must register custom families in a fixed order.
		//detlint:allow streamoffset — runtime-allocated block above 1<<20 cannot collide with frozen literals
		StreamOffset: customOffset.Add(1),
		New: func(_ *overlay.Network, rng *xrand.Rand, _ registry.Options) (core.Estimator, error) {
			e, err := mk(rng.Uint64())
			if err != nil {
				return nil, err
			}
			ce := toCore(e)
			if observeOnly {
				// Stamp the declared capability onto the adapter so the
				// monitor's grouping sees it even when the estimator type
				// itself does not implement OverlayMutator.
				if w, ok := ce.(publicWrap); ok {
					w.observeOnly = true
					return w, nil
				}
				return publicWrap{e: e, observeOnly: true}, nil
			}
			return ce, nil
		},
	})
}
