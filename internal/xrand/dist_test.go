package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExpMean(t *testing.T) {
	r := New(101)
	for _, lambda := range []float64{0.5, 1, 2, 10} {
		sum := 0.0
		const draws = 200000
		for i := 0; i < draws; i++ {
			v := r.Exp(lambda)
			if v < 0 {
				t.Fatalf("Exp(%g) returned negative %g", lambda, v)
			}
			sum += v
		}
		mean := sum / draws
		want := 1 / lambda
		if math.Abs(mean-want) > 0.05*want {
			t.Fatalf("Exp(%g) mean = %g, want ~%g", lambda, mean, want)
		}
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestGeometricMean(t *testing.T) {
	r := New(103)
	p := 0.25
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Geometric(p)
		if v < 0 {
			t.Fatalf("Geometric returned negative %d", v)
		}
		sum += float64(v)
	}
	mean := sum / draws
	want := (1 - p) / p // mean of the failures-before-success geometric
	if math.Abs(mean-want) > 0.1*want {
		t.Fatalf("Geometric(%g) mean = %g, want ~%g", p, mean, want)
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(105)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(107)
	const draws = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Norm mean = %g, want ~10", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Fatalf("Norm variance = %g, want ~4", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(109)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		sum := 0.0
		const draws = 50000
		for i := 0; i < draws; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / draws
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%g) mean = %g", mean, got)
		}
	}
	if v := New(1).Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d", v)
	}
}

func TestZipfSupport(t *testing.T) {
	r := New(111)
	z := NewZipf(100, 1.2)
	counts := make([]int, 101)
	for i := 0; i < 50000; i++ {
		v := z.Draw(r)
		if v < 1 || v > 100 {
			t.Fatalf("Zipf draw %d out of [1,100]", v)
		}
		counts[v]++
	}
	// Rank 1 must dominate rank 10 which must dominate rank 100.
	if !(counts[1] > counts[10] && counts[10] > counts[100]) {
		t.Fatalf("Zipf not monotone: c1=%d c10=%d c100=%d", counts[1], counts[10], counts[100])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(113)
	z := NewZipf(10, 0)
	counts := make([]int, 11)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Draw(r)]++
	}
	for k := 1; k <= 10; k++ {
		f := float64(counts[k]) / draws
		if math.Abs(f-0.1) > 0.01 {
			t.Fatalf("Zipf(s=0) rank %d frequency %g, want ~0.1", k, f)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(115)
	w := []float64{1, 0, 3, -2, 6}
	counts := make([]int, len(w))
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[r.WeightedChoice(w)]++
	}
	if counts[1] != 0 || counts[3] != 0 {
		t.Fatalf("zero/negative weights were drawn: %v", counts)
	}
	// Expected proportions 1:3:6 over total 10.
	for i, want := range map[int]float64{0: 0.1, 2: 0.3, 4: 0.6} {
		f := float64(counts[i]) / draws
		if math.Abs(f-want) > 0.02 {
			t.Fatalf("weight %d frequency %g, want ~%g", i, f, want)
		}
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WeightedChoice with zero total did not panic")
		}
	}()
	New(1).WeightedChoice([]float64{0, 0})
}

func TestSampleKDistinct(t *testing.T) {
	check := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%50 + 1
		k := int(kRaw) % (n + 1)
		s := New(seed).SampleK(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKFull(t *testing.T) {
	s := New(1).SampleK(10, 10)
	seen := make([]bool, 10)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("SampleK(10,10) missed %d", i)
		}
	}
}

func TestSampleKUniform(t *testing.T) {
	// Each of 10 items should appear in a size-3 sample with prob 3/10.
	r := New(117)
	counts := make([]int, 10)
	const draws = 50000
	for i := 0; i < draws; i++ {
		for _, v := range r.SampleK(10, 3) {
			counts[v]++
		}
	}
	for i, c := range counts {
		f := float64(c) / draws
		if math.Abs(f-0.3) > 0.02 {
			t.Fatalf("item %d inclusion frequency %g, want ~0.3", i, f)
		}
	}
}

func TestWeibullMean(t *testing.T) {
	r := New(107)
	for _, c := range []struct{ shape, scale float64 }{
		{0.5, 100}, {1, 50}, {2, 10},
	} {
		sum := 0.0
		const draws = 200000
		for i := 0; i < draws; i++ {
			v := r.Weibull(c.shape, c.scale)
			if v < 0 {
				t.Fatalf("Weibull(%g,%g) returned negative %g", c.shape, c.scale, v)
			}
			sum += v
		}
		mean := sum / draws
		want := c.scale * math.Gamma(1+1/c.shape)
		if math.Abs(mean-want) > 0.05*want {
			t.Fatalf("Weibull(%g,%g) mean = %g, want ~%g", c.shape, c.scale, mean, want)
		}
	}
}

func TestLogNormalMean(t *testing.T) {
	r := New(109)
	mu, sigma := 2.0, 0.5
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := r.LogNormal(mu, sigma)
		if v <= 0 {
			t.Fatalf("LogNormal returned non-positive %g", v)
		}
		sum += v
	}
	mean := sum / draws
	want := math.Exp(mu + sigma*sigma/2)
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("LogNormal(%g,%g) mean = %g, want ~%g", mu, sigma, mean, want)
	}
}

func TestParetoMeanAndSupport(t *testing.T) {
	r := New(111)
	xm, alpha := 10.0, 2.5
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := r.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto(%g,%g) returned %g below the minimum", xm, alpha, v)
		}
		sum += v
	}
	mean := sum / draws
	want := alpha * xm / (alpha - 1)
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("Pareto(%g,%g) mean = %g, want ~%g", xm, alpha, mean, want)
	}
}

func TestHeavyTailPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Weibull":   func() { New(1).Weibull(0, 1) },
		"LogNormal": func() { New(1).LogNormal(0, 0) },
		"Pareto":    func() { New(1).Pareto(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with invalid parameters did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000003)
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Exp(7.2)
	}
	_ = sink
}
