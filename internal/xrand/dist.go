package xrand

import "math"

// Exp returns an exponentially distributed value with rate lambda
// (mean 1/lambda). It panics if lambda <= 0.
//
// The Sample&Collide walker decrements its timer by Exp(deg) at every
// hop, which is what makes the continuous-time random walk's stationary
// distribution uniform over nodes.
func (r *Rand) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("xrand: Exp with lambda <= 0")
	}
	return -math.Log(r.Float64Open()) / lambda
}

// Weibull returns a Weibull-distributed value with the given shape k and
// scale lambda, via inverse-transform sampling. Shapes below 1 give the
// heavy-tailed session lengths measured in deployed peer-to-peer systems
// (many very short sessions, a few very long ones). It panics unless both
// parameters are positive.
func (r *Rand) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("xrand: Weibull with non-positive shape or scale")
	}
	return scale * math.Pow(-math.Log(r.Float64Open()), 1/shape)
}

// LogNormal returns exp(Norm(mu, sigma)): a log-normally distributed
// value with log-mean mu and log-stddev sigma. It panics if sigma <= 0.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	if sigma <= 0 {
		panic("xrand: LogNormal with sigma <= 0")
	}
	return math.Exp(r.Norm(mu, sigma))
}

// Pareto returns a Pareto-distributed value with minimum xm and tail
// index alpha (P(X > x) = (xm/x)^alpha for x >= xm), via inverse-
// transform sampling. It panics unless both parameters are positive.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("xrand: Pareto with non-positive xm or alpha")
	}
	return xm / math.Pow(r.Float64Open(), 1/alpha)
}

// Geometric returns the number of independent Bernoulli(p) failures before
// the first success, i.e. a value in {0, 1, 2, ...} with
// P(k) = (1-p)^k * p. It panics unless 0 < p <= 1.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric with p outside (0, 1]")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(log(U) / log(1-p)).
	return int(math.Floor(math.Log(r.Float64Open()) / math.Log(1-p)))
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, via the Marsaglia polar method.
func (r *Rand) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Poisson returns a Poisson-distributed value with the given mean,
// using Knuth's method for small means and normal approximation with
// rejection for large means.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// For large means, a rounded normal approximation is adequate for the
	// churn workloads in this simulator.
	for {
		v := r.Norm(mean, math.Sqrt(mean))
		if v >= 0 {
			return int(v + 0.5)
		}
	}
}

// Zipf draws values in [1, n] with probability proportional to 1/k^s,
// via inverse-CDF on a precomputed table. Use NewZipf for repeated draws.
type Zipf struct {
	cdf []float64 // cdf[k-1] = P(X <= k)
}

// NewZipf builds a Zipf(s) sampler over the support [1, n].
// It panics if n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with n <= 0")
	}
	if s < 0 {
		panic("xrand: NewZipf with s < 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), s)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Draw returns the next Zipf variate using r as the entropy source.
func (z *Zipf) Draw(r *Rand) int {
	u := r.Float64()
	// Binary search for the first index with cdf >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// WeightedChoice returns an index in [0, len(weights)) drawn with
// probability proportional to weights[i]. Negative weights are treated as
// zero. It panics if the total weight is not positive.
func (r *Rand) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("xrand: WeightedChoice with non-positive total weight")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("xrand: unreachable")
}

// SampleK fills out with k distinct values drawn uniformly from [0, n)
// using Floyd's algorithm, and returns out[:k]. It panics if k > n or k < 0.
// The order of the returned sample is itself uniformly shuffled.
func (r *Rand) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: SampleK with k outside [0, n]")
	}
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := seen[t]; dup {
			t = j
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
