package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: streams diverged: %d != %d", i, x, y)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("nearby seeds produced %d identical 64-bit draws out of 1000", same)
	}
}

func TestReseed(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after reseed, draw %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(3)
	s := r.Split()
	// The parent and child streams must not be identical.
	same := 0
	for i := 0; i < 512; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream repeated parent %d times", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(11)
	for _, n := range []uint64{1, 2, 3, 7, 8, 1000, 1 << 40} {
		for i := 0; i < 2000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared test over 10 buckets; threshold is the 99.9% quantile of
	// chi2 with 9 degrees of freedom (27.88).
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Fatalf("Intn not uniform: chi2 = %.2f (counts %v)", chi2, counts)
	}
}

func TestIntRange(t *testing.T) {
	r := New(13)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.IntRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntRange(3,7) = %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 7; v++ {
		if !seen[v] {
			t.Fatalf("IntRange never produced %d", v)
		}
	}
	if got := r.IntRange(5, 5); got != 5 {
		t.Fatalf("IntRange(5,5) = %d", got)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(17)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
		sum += f
	}
	if mean := sum / 100000; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(19)
	for i := 0; i < 200000; i++ {
		if f := r.Float64Open(); f <= 0 || f > 1 {
			t.Fatalf("Float64Open out of (0,1]: %g", f)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(23)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(29)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	rate := float64(hits) / draws
	if math.Abs(rate-0.25) > 0.01 {
		t.Fatalf("Bernoulli(0.25) rate = %g", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		if len(p) != int(n) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPermInto(t *testing.T) {
	r := New(31)
	buf := make([]int, 50)
	r.PermInto(buf)
	seen := make([]bool, 50)
	for _, v := range buf {
		if seen[v] {
			t.Fatalf("PermInto produced duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestShuffleFairness(t *testing.T) {
	// Over many shuffles of [0,1,2], each of the 6 permutations should
	// appear with frequency ~1/6.
	r := New(37)
	counts := map[[3]int]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		counts[a]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations, want 6", len(counts))
	}
	for p, c := range counts {
		freq := float64(c) / draws
		if math.Abs(freq-1.0/6) > 0.01 {
			t.Fatalf("permutation %v frequency %g, want ~1/6", p, freq)
		}
	}
}

func TestUint64BitBalance(t *testing.T) {
	// Every bit position should be set roughly half the time.
	r := New(41)
	const draws = 20000
	var ones [64]int
	for i := 0; i < draws; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<b) != 0 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		f := float64(c) / draws
		if f < 0.47 || f > 0.53 {
			t.Fatalf("bit %d set with frequency %g", b, f)
		}
	}
}

func TestNewStreamDeterministicAndDistinct(t *testing.T) {
	a := NewStream(1, 7)
	b := NewStream(1, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed, stream) diverged at draw %d", i)
		}
	}
	// Distinct streams, distinct seeds, and the additive-collision case
	// NewStream exists to prevent: (seed+1, s) vs (seed, s+1).
	pairs := [][2]*Rand{
		{NewStream(1, 0), NewStream(1, 1)},
		{NewStream(1, 0), NewStream(2, 0)},
		{NewStream(2, 7), NewStream(1, 8)},
		{NewStream(1, 0), New(1)},
	}
	for pi, p := range pairs {
		same := 0
		for i := 0; i < 64; i++ {
			if p[0].Uint64() == p[1].Uint64() {
				same++
			}
		}
		if same > 2 {
			t.Fatalf("pair %d: %d/64 identical draws; streams correlated", pi, same)
		}
	}
}
