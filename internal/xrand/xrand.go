// Package xrand provides a deterministic, splittable pseudo-random number
// generator and the sampling distributions used throughout the simulator.
//
// The simulator must be reproducible: every experiment is parameterized by
// a single seed, and re-running it yields byte-identical series. The
// standard library's global math/rand source is deliberately avoided; each
// simulation component owns an independent *Rand stream derived from the
// experiment seed via Split, so adding randomness to one component never
// perturbs the draws seen by another.
//
// The core generator is PCG-XSL-RR 128/64 (the permuted congruential
// generator of O'Neill, same family as Go's math/rand/v2 PCG), implemented
// on top of math/bits 128-bit arithmetic.
package xrand

import "math/bits"

// 128-bit LCG multiplier used by PCG-XSL-RR 128/64.
const (
	mulHi = 0x2360ed051fc65da4
	mulLo = 0x4385df649fccf645

	incHi = 0x5851f42d4c957f2d
	incLo = 0x14057b7ef767814f
)

// Rand is a PCG-XSL-RR 128/64 pseudo-random number generator.
// It is not safe for concurrent use; derive per-goroutine streams
// with Split instead of sharing one instance.
type Rand struct {
	hi, lo uint64
}

// New returns a generator seeded with seed. Two generators built from the
// same seed produce identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the deterministic state derived from seed.
func (r *Rand) Seed(seed uint64) {
	// Mix the seed through SplitMix64 twice so that close seeds
	// (0, 1, 2, ...) yield unrelated initial states.
	r.hi = splitmix64(seed)
	r.lo = splitmix64(seed + 0x9e3779b97f4a7c15)
	// Advance a few steps so the first outputs are already well mixed.
	r.Uint64()
	r.Uint64()
}

// NewStream returns a generator for the (seed, stream) pair. Unlike
// additive seeding (New(seed + i), where streams of nearby experiments
// can collide), both words are mixed through SplitMix64 independently, so
// every pair yields an unrelated state. Parallel experiment runs derive
// one stream per run index this way: the draws of run i are fixed by
// (seed, i) alone, independent of worker count and scheduling.
func NewStream(seed, stream uint64) *Rand {
	r := &Rand{
		hi: splitmix64(seed ^ splitmix64(stream+0x632be59bd9b4e019)),
		lo: splitmix64(seed + 0x9e3779b97f4a7c15 + splitmix64(stream)),
	}
	r.Uint64()
	r.Uint64()
	return r
}

// splitmix64 is the finalizer of the SplitMix64 generator; it is used only
// for seeding and splitting.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	// state = state*mul + inc  (128-bit arithmetic)
	hi, lo := bits.Mul64(r.lo, mulLo)
	hi += r.hi*mulLo + r.lo*mulHi
	lo, c := bits.Add64(lo, incLo, 0)
	hi, _ = bits.Add64(hi, incHi, c)
	r.hi, r.lo = hi, lo
	// XSL-RR output permutation.
	return bits.RotateLeft64(hi^lo, -int(hi>>58))
}

// Split returns a new generator whose stream is statistically independent
// of r's. It draws entropy from r, so Split is itself deterministic.
func (r *Rand) Split() *Rand {
	s := &Rand{
		hi: splitmix64(r.Uint64()),
		lo: splitmix64(r.Uint64()),
	}
	s.Uint64()
	return s
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	if n&(n-1) == 0 { // power of two: mask
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *Rand) Int31n(n int32) int32 {
	if n <= 0 {
		panic("xrand: Int31n with n <= 0")
	}
	return int32(r.Uint64n(uint64(n)))
}

// IntRange returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in the open interval (0, 1],
// suitable for passing to math.Log without a zero-argument hazard.
func (r *Rand) Float64Open() float64 {
	return (float64(r.Uint64()>>11) + 1) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Shuffle permutes the n elements addressed by swap using Fisher-Yates.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// PermInto fills p (reused across calls to avoid allocation) with a random
// permutation of [0, len(p)).
func (r *Rand) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
}
