package xrand

import (
	"math"
	"testing"
)

func TestInt31n(t *testing.T) {
	r := New(201)
	seen := map[int32]bool{}
	for i := 0; i < 5000; i++ {
		v := r.Int31n(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Int31n(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Int31n covered %d of 7 values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Int31n(0) did not panic")
		}
	}()
	r.Int31n(0)
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(5, 4) did not panic")
		}
	}()
	New(1).IntRange(5, 4)
}

func TestBool(t *testing.T) {
	r := New(203)
	trues := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			trues++
		}
	}
	if f := float64(trues) / draws; math.Abs(f-0.5) > 0.01 {
		t.Fatalf("Bool true-rate = %g", f)
	}
}

func TestUint64nPowerOfTwoPath(t *testing.T) {
	r := New(205)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
	}
	// Tiny modulus exercises the rejection threshold loop.
	counts := make([]int, 3)
	for i := 0; i < 90000; i++ {
		counts[r.Uint64n(3)]++
	}
	for v, c := range counts {
		if f := float64(c) / 90000; math.Abs(f-1.0/3) > 0.01 {
			t.Fatalf("Uint64n(3) value %d frequency %g", v, f)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, p := range []float64{0, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Geometric(%g) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestNewZipfPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n=0": func() { NewZipf(0, 1) },
		"s<0": func() { NewZipf(10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSampleKPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"k<0": func() { New(1).SampleK(5, -1) },
		"k>n": func() { New(1).SampleK(5, 6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
	if got := New(2).SampleK(5, 0); len(got) != 0 {
		t.Fatalf("SampleK(5,0) = %v", got)
	}
}

func TestWeightedChoiceSingle(t *testing.T) {
	r := New(207)
	for i := 0; i < 100; i++ {
		if got := r.WeightedChoice([]float64{0, 5, 0}); got != 1 {
			t.Fatalf("WeightedChoice = %d", got)
		}
	}
}
