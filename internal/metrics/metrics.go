// Package metrics implements the cost-accounting side of the comparative
// study. The paper's simulator "counts the messages over the network"; the
// Counter here is that meter, broken down by message kind so that the
// per-algorithm overhead decomposition of §IV-E (spread messages, reply
// messages, random-walk hops, push/pull exchanges) can be reported.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Kind labels a category of simulated message for overhead accounting.
type Kind uint8

// Message kinds used by the three candidate algorithms.
const (
	// KindWalk is one hop of a Sample&Collide random walk.
	KindWalk Kind = iota
	// KindSampleReturn is a sampled node reporting its id to the initiator.
	KindSampleReturn
	// KindGossipSpread is one HopsSampling poll-dissemination message.
	KindGossipSpread
	// KindReply is one HopsSampling response message (or one hop of a
	// routed response).
	KindReply
	// KindPush is the push half of an Aggregation exchange.
	KindPush
	// KindPull is the pull half of an Aggregation exchange.
	KindPull
	// KindControl is protocol control traffic (epoch restarts, probes).
	KindControl
	numKinds
)

var kindNames = [numKinds]string{
	"walk", "sample-return", "gossip-spread", "reply", "push", "pull", "control",
}

// AllKinds returns every defined message kind.
func AllKinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// String returns the human-readable kind label.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Counter tallies messages by kind. The zero value is ready to use.
// It is not safe for concurrent use; simulations are single-threaded per
// experiment and parallel experiments own separate counters.
type Counter struct {
	counts [numKinds]uint64
}

// Inc records one message of the given kind.
func (c *Counter) Inc(k Kind) { c.counts[k]++ }

// Add records n messages of the given kind.
func (c *Counter) Add(k Kind, n uint64) { c.counts[k] += n }

// Count returns the number of messages recorded for kind k.
func (c *Counter) Count(k Kind) uint64 { return c.counts[k] }

// Total returns the number of messages recorded across all kinds —
// the paper's overhead figure for an estimation.
func (c *Counter) Total() uint64 {
	var t uint64
	for _, v := range c.counts {
		t += v
	}
	return t
}

// Reset zeroes all counts.
func (c *Counter) Reset() { c.counts = [numKinds]uint64{} }

// Snapshot returns a copy of the counter, for before/after deltas.
func (c *Counter) Snapshot() Counter { return *c }

// DiffTotal returns the total messages recorded since the snapshot was
// taken.
func (c *Counter) DiffTotal(snap Counter) uint64 {
	return c.Total() - snap.Total()
}

// Diff returns per-kind messages recorded since the snapshot was taken.
func (c *Counter) Diff(snap Counter) Counter {
	var out Counter
	for k := range c.counts {
		out.counts[k] = c.counts[k] - snap.counts[k]
	}
	return out
}

// Merge adds the counts of o into c.
func (c *Counter) Merge(o *Counter) {
	for k := range c.counts {
		c.counts[k] += o.counts[k]
	}
}

// String renders the nonzero counts, sorted by kind, e.g.
// "walk=480000 sample-return=6300 (total 486300)".
func (c *Counter) String() string {
	var parts []string
	for k := Kind(0); k < numKinds; k++ {
		if c.counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, c.counts[k]))
		}
	}
	if len(parts) == 0 {
		return "(no messages)"
	}
	return fmt.Sprintf("%s (total %d)", strings.Join(parts, " "), c.Total())
}

// Series records an (x, y) time series for one plotted curve, e.g.
// estimation quality against estimation index or round number.
type Series struct {
	Name string
	X, Y []float64
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YRange returns the minimum and maximum Y values (0, 0 if empty).
func (s *Series) YRange() (lo, hi float64) {
	if len(s.Y) == 0 {
		return 0, 0
	}
	lo, hi = s.Y[0], s.Y[0]
	for _, y := range s.Y[1:] {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	return lo, hi
}

// Recorder collects named series produced during an experiment.
// The zero value is ready to use.
type Recorder struct {
	series map[string]*Series
	order  []string
}

// Series returns (creating if necessary) the series with the given name.
func (r *Recorder) Series(name string) *Series {
	if r.series == nil {
		r.series = make(map[string]*Series)
	}
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	return s
}

// Record appends an (x, y) point to the named series.
func (r *Recorder) Record(name string, x, y float64) {
	r.Series(name).Append(x, y)
}

// All returns the recorded series in first-recorded order.
func (r *Recorder) All() []*Series {
	out := make([]*Series, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.series[name])
	}
	return out
}

// Names returns the recorded series names in sorted order.
func (r *Recorder) Names() []string {
	names := make([]string, len(r.order))
	copy(names, r.order)
	sort.Strings(names)
	return names
}
