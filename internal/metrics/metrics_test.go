package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Total() != 0 {
		t.Fatal("zero counter not empty")
	}
	c.Inc(KindWalk)
	c.Inc(KindWalk)
	c.Add(KindReply, 5)
	if c.Count(KindWalk) != 2 || c.Count(KindReply) != 5 {
		t.Fatalf("counts: walk=%d reply=%d", c.Count(KindWalk), c.Count(KindReply))
	}
	if c.Total() != 7 {
		t.Fatalf("Total = %d", c.Total())
	}
	c.Reset()
	if c.Total() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestCounterSnapshotDiff(t *testing.T) {
	var c Counter
	c.Add(KindPush, 10)
	snap := c.Snapshot()
	c.Add(KindPush, 3)
	c.Add(KindPull, 4)
	if got := c.DiffTotal(snap); got != 7 {
		t.Fatalf("DiffTotal = %d, want 7", got)
	}
	d := c.Diff(snap)
	if d.Count(KindPush) != 3 || d.Count(KindPull) != 4 || d.Total() != 7 {
		t.Fatalf("Diff = %v", d.String())
	}
	// Snapshot must be unaffected by later increments.
	if snap.Total() != 10 {
		t.Fatalf("snapshot mutated: %d", snap.Total())
	}
}

func TestCounterMerge(t *testing.T) {
	var a, b Counter
	a.Add(KindWalk, 2)
	b.Add(KindWalk, 3)
	b.Add(KindControl, 1)
	a.Merge(&b)
	if a.Count(KindWalk) != 5 || a.Count(KindControl) != 1 {
		t.Fatalf("Merge wrong: %s", a.String())
	}
}

func TestCounterString(t *testing.T) {
	var c Counter
	if got := c.String(); got != "(no messages)" {
		t.Fatalf("empty String = %q", got)
	}
	c.Add(KindGossipSpread, 2)
	c.Inc(KindReply)
	s := c.String()
	for _, want := range []string{"gossip-spread=2", "reply=1", "total 3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String %q missing %q", s, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindWalk.String() != "walk" || KindPull.String() != "pull" {
		t.Fatal("kind names wrong")
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Fatalf("unknown kind = %q", got)
	}
}

func TestCounterTotalIsSumProperty(t *testing.T) {
	check := func(incs []uint8) bool {
		var c Counter
		var want uint64
		for _, raw := range incs {
			k := Kind(raw % uint8(numKinds))
			n := uint64(raw)
			c.Add(k, n)
			want += n
		}
		return c.Total() == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesAppendAndRange(t *testing.T) {
	var s Series
	lo, hi := s.YRange()
	if lo != 0 || hi != 0 || s.Len() != 0 {
		t.Fatal("empty series degenerate values")
	}
	s.Append(0, 5)
	s.Append(1, -2)
	s.Append(2, 9)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	lo, hi = s.YRange()
	if lo != -2 || hi != 9 {
		t.Fatalf("YRange = %g, %g", lo, hi)
	}
}

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Record("b", 0, 1)
	r.Record("a", 0, 2)
	r.Record("b", 1, 3)
	all := r.All()
	if len(all) != 2 {
		t.Fatalf("All len = %d", len(all))
	}
	// First-recorded order.
	if all[0].Name != "b" || all[1].Name != "a" {
		t.Fatalf("order = %q, %q", all[0].Name, all[1].Name)
	}
	if all[0].Len() != 2 || all[0].Y[1] != 3 {
		t.Fatal("series b contents wrong")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	// Series() on existing name returns the same instance.
	if r.Series("b") != all[0] {
		t.Fatal("Series returned a new instance for existing name")
	}
}
