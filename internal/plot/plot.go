// Package plot renders experiment output in the three forms the
// repository uses: gnuplot-compatible .dat files (one block per curve,
// the layout the paper's figures were plotted from), CSV for spreadsheet
// work, terminal ASCII charts for quick inspection, and markdown tables
// for EXPERIMENTS.md.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"p2psize/internal/metrics"
)

// WriteDAT writes the series as gnuplot data blocks: each series is a
// "# name" comment followed by "x y" lines, with blank-line separators
// ("index" blocks in gnuplot terms). NaN points are skipped.
func WriteDAT(w io.Writer, series ...*metrics.Series) error {
	for i, s := range series {
		if i > 0 {
			if _, err := fmt.Fprint(w, "\n\n"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# %s\n", s.Name); err != nil {
			return err
		}
		for j := range s.X {
			if math.IsNaN(s.Y[j]) {
				continue
			}
			if _, err := fmt.Fprintf(w, "%g %g\n", s.X[j], s.Y[j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV writes the series as columns sharing the x axis of the first
// series: header "x,name1,name2,...", one row per x. Series must have
// equal length (it panics otherwise — the experiment runners always
// produce aligned series); NaN renders as an empty cell.
func WriteCSV(w io.Writer, series ...*metrics.Series) error {
	if len(series) == 0 {
		return nil
	}
	n := series[0].Len()
	for _, s := range series {
		if s.Len() != n {
			panic("plot: WriteCSV needs equal-length series")
		}
	}
	cols := make([]string, 0, len(series)+1)
	cols = append(cols, "x")
	for _, s := range series {
		cols = append(cols, csvEscape(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(series)+1)
		row = append(row, fmt.Sprintf("%g", series[0].X[i]))
		for _, s := range series {
			if math.IsNaN(s.Y[i]) {
				row = append(row, "")
			} else {
				row = append(row, fmt.Sprintf("%g", s.Y[i]))
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// ASCII renders the series as a width×height terminal chart with distinct
// glyphs per series, for the CLI tools and the examples. It returns the
// chart as a string (empty if no drawable point exists).
func ASCII(width, height int, series ...*metrics.Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var xmin, xmax, ymin, ymax float64
	found := false
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			if !found {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				found = true
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if !found {
		return ""
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		glyph := glyphs[si%len(glyphs)]
		for i := range s.X {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			grid[row][col] = glyph
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10.4g ┌%s┐\n", ymax, strings.Repeat("─", width))
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", 10)
		if r == height-1 {
			label = fmt.Sprintf("%10.4g", ymin)
		}
		fmt.Fprintf(&b, "%s │%s│\n", label, grid[r])
	}
	fmt.Fprintf(&b, "%s └%s┘\n", strings.Repeat(" ", 10), strings.Repeat("─", width))
	fmt.Fprintf(&b, "%s  %-*g%*g\n", strings.Repeat(" ", 10), width/2, xmin, width-width/2, xmax)
	for si, s := range series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", 10), glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// Table is a simple named grid for overhead/accuracy summaries (Table I).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; it panics when the width disagrees with Headers.
func (t *Table) AddRow(cells ...string) {
	if len(t.Headers) > 0 && len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("plot: row width %d, header width %d", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	if len(t.Headers) > 0 {
		b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
		sep := make([]string, len(t.Headers))
		for i := range sep {
			sep[i] = "---"
		}
		b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	}
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// Text renders the table with aligned columns for terminal output.
func (t *Table) Text() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		line(t.Headers)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total) + "\n")
	}
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// FormatCount renders a message count the way the paper's Table I does
// (e.g. 480000 → "0.5M", 10000000 → "10M").
func FormatCount(n float64) string {
	switch {
	case n >= 1e9:
		return trimZero(fmt.Sprintf("%.1fG", n/1e9))
	case n >= 1e6:
		return trimZero(fmt.Sprintf("%.1fM", n/1e6))
	case n >= 1e3:
		return trimZero(fmt.Sprintf("%.1fk", n/1e3))
	default:
		return fmt.Sprintf("%.0f", n)
	}
}

func trimZero(s string) string {
	return strings.Replace(s, ".0", "", 1)
}
