package plot

import (
	"math"
	"strings"
	"testing"

	"p2psize/internal/metrics"
)

func mkSeries(name string, pts ...float64) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i := 0; i+1 < len(pts); i += 2 {
		s.Append(pts[i], pts[i+1])
	}
	return s
}

func TestWriteDAT(t *testing.T) {
	var b strings.Builder
	a := mkSeries("alpha", 0, 1, 1, 2)
	c := mkSeries("beta", 0, 3)
	if err := WriteDAT(&b, a, c); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# alpha", "0 1", "1 2", "# beta", "0 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Two blank lines between blocks (gnuplot index separator).
	if !strings.Contains(out, "\n\n\n# beta") && !strings.Contains(out, "2\n\n\n# beta") {
		t.Fatalf("missing gnuplot block separator:\n%q", out)
	}
}

func TestWriteDATSkipsNaN(t *testing.T) {
	s := mkSeries("s", 0, 1)
	s.Append(1, math.NaN())
	s.Append(2, 5)
	var b strings.Builder
	if err := WriteDAT(&b, s); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "NaN") {
		t.Fatalf("NaN leaked into output:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "2 5") {
		t.Fatal("point after NaN missing")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	a := mkSeries("real,size", 0, 100, 1, 110)
	c := mkSeries("est", 0, 95)
	c.Append(1, math.NaN())
	if err := WriteCSV(&b, a, c); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != `x,"real,size",est` {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,100,95" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "1,110," {
		t.Fatalf("row 2 (NaN cell) = %q", lines[2])
	}
}

func TestWriteCSVEmptyAndMismatched(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatal("empty CSV wrote bytes")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series lengths did not panic")
		}
	}()
	WriteCSV(&b, mkSeries("a", 0, 1), mkSeries("b", 0, 1, 1, 2))
}

func TestASCIIBasics(t *testing.T) {
	s := mkSeries("ramp", 0, 0, 1, 1, 2, 2, 3, 3)
	out := ASCII(20, 5, s)
	if out == "" {
		t.Fatal("empty chart")
	}
	if !strings.Contains(out, "ramp") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no glyphs plotted")
	}
	// Ramp: glyph in first and last column region.
	lines := strings.Split(out, "\n")
	if len(lines) < 7 {
		t.Fatalf("chart too short:\n%s", out)
	}
}

func TestASCIIEmptySeries(t *testing.T) {
	if out := ASCII(20, 5, &metrics.Series{Name: "empty"}); out != "" {
		t.Fatalf("chart for empty series: %q", out)
	}
	s := mkSeries("allnan")
	s.Append(0, math.NaN())
	if out := ASCII(20, 5, s); out != "" {
		t.Fatal("chart for all-NaN series")
	}
}

func TestASCIIConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	s := mkSeries("flat", 0, 5, 1, 5, 2, 5)
	if out := ASCII(20, 5, s); out == "" {
		t.Fatal("flat series not rendered")
	}
}

func TestASCIIMultipleGlyphs(t *testing.T) {
	a := mkSeries("a", 0, 0, 1, 1)
	b := mkSeries("b", 0, 1, 1, 0)
	out := ASCII(30, 8, a, b)
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("expected two glyphs:\n%s", out)
	}
}

func TestTableMarkdownAndText(t *testing.T) {
	tb := &Table{
		Title:   "Table I",
		Headers: []string{"Algorithm", "Overhead"},
	}
	tb.AddRow("S&C", "0.5M")
	tb.AddRow("Aggregation", "10M")
	md := tb.Markdown()
	for _, want := range []string{"**Table I**", "| Algorithm | Overhead |", "| --- | --- |", "| S&C | 0.5M |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	txt := tb.Text()
	for _, want := range []string{"Table I", "Algorithm", "Aggregation", "10M"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("text missing %q:\n%s", want, txt)
		}
	}
}

func TestTableRowWidthPanics(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("bad row width did not panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestFormatCount(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{480000, "480k"},
		{500000, "500k"},
		{2500000, "2.5M"},
		{10000000, "10M"},
		{999, "999"},
		{1500000000, "1.5G"},
	}
	for _, c := range cases {
		if got := FormatCount(c.in); got != c.want {
			t.Fatalf("FormatCount(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}
