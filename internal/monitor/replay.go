package monitor

import (
	"fmt"

	"p2psize/internal/core"
)

// ReplayMode selects how RunScheduled maps estimator instances onto
// overlay clones and trace replays.
type ReplayMode int

const (
	// ReplayPerInstance gives every instance its own COW clone and its
	// own trace replay — the historical default, byte-identical to all
	// pre-existing output.
	ReplayPerInstance ReplayMode = iota
	// ReplayShared groups read-only instances (core.MutatesOverlay
	// reports false) that sample on the same cadence onto one COW
	// clone with one trace.Player — one replay per cadence group
	// instead of per instance, cutting replay work and clone memory
	// from O(instances) to O(groups). Observing estimators cannot
	// perturb the overlay, so every series is bit-equal to
	// ReplayPerInstance; mutating instances keep private clones in
	// both modes.
	ReplayShared
)

// String returns the mode's flag spelling.
func (m ReplayMode) String() string {
	switch m {
	case ReplayPerInstance:
		return "perinstance"
	case ReplayShared:
		return "shared"
	default:
		return fmt.Sprintf("replay(%d)", int(m))
	}
}

// ParseReplayMode parses a -replay flag value; the empty string selects
// the per-instance default.
func ParseReplayMode(s string) (ReplayMode, error) {
	switch s {
	case "", "perinstance", "per-instance":
		return ReplayPerInstance, nil
	case "shared":
		return ReplayShared, nil
	default:
		return 0, fmt.Errorf("monitor: unknown replay mode %q (want perinstance or shared)", s)
	}
}

// replayGroups partitions instance indices into replay groups, each of
// which gets one clone, one trace.Player and one newRNG() generator.
// Per-instance mode yields singleton groups. Shared mode folds
// read-only instances with equal cadences into one group (bit-equal
// cadences produce bit-equal schedules, so every member is due at
// exactly the same ticks); estimators that mutate the overlay — or do
// not declare the core.OverlayMutator capability — stay in singleton
// groups. Groups are ordered by first-member index and members keep
// instance order, so the merge of per-group counters into the base
// overlay's counter is deterministic.
func replayGroups(instances []Instance, cadences []float64, mode ReplayMode) [][]int {
	groups := make([][]int, 0, len(instances))
	if mode != ReplayShared {
		for k := range instances {
			groups = append(groups, []int{k})
		}
		return groups
	}
	byCadence := make(map[float64]int) // read-only cadence -> group index
	for k, in := range instances {
		if core.MutatesOverlay(in.Estimator) {
			groups = append(groups, []int{k})
			continue
		}
		if gi, ok := byCadence[cadences[k]]; ok {
			groups[gi] = append(groups[gi], k)
		} else {
			byCadence[cadences[k]] = len(groups)
			groups = append(groups, []int{k})
		}
	}
	return groups
}
