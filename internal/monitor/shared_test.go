package monitor

// Shared-replay tests: the ReplayShared mode must be a pure layout
// change — byte-identical series, metrics and message attribution in
// both modes, across worker counts and seeds — while actually folding
// read-only cadence classes onto shared clones (group accounting and
// allocation-footprint assertions).

import (
	"math"
	"os"
	"runtime"
	"testing"

	"p2psize/internal/core"
	"p2psize/internal/graph"
	"p2psize/internal/overlay"
	"p2psize/internal/registry"
	"p2psize/internal/samplecollide"
	"p2psize/internal/trace"
	"p2psize/internal/xrand"
)

// roTruth is truthEstimator plus the observe-only capability marker —
// eligible for shared-replay grouping, unlike the unmarked (and
// therefore conservatively mutating) truthEstimator.
type roTruth struct{ name string }

func (e roTruth) Name() string { return e.name }
func (e roTruth) Estimate(net *overlay.Network) (float64, error) {
	return float64(net.Size()), nil
}
func (roTruth) MutatesOverlay() bool { return false }

// monitorRoster builds one fresh instance of every monitoring-capable
// registry family (both sharing classes: the observe-only walkers and
// the cyclon-backed gossip families), each on the default cadence so
// shared mode folds the whole read-only class into one group.
func monitorRoster(t *testing.T, seed uint64) []Instance {
	t.Helper()
	var ins []Instance
	for _, d := range registry.All() {
		if !d.SupportsMonitoring {
			continue
		}
		e, err := d.Build(nil, xrand.New(seed+d.StreamOffset), registry.Options{})
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		ins = append(ins, Instance{Estimator: e})
	}
	if len(ins) < 4 {
		t.Fatalf("roster too small to exercise grouping: %d families", len(ins))
	}
	return ins
}

// runReplay runs instances against a fresh 400-node overlay and the
// shared test trace under the given replay mode, returning the result
// and the base overlay's merged message total.
func runReplay(t *testing.T, instances []Instance, mode ReplayMode, workers int) (*Result, uint64) {
	t.Helper()
	const n = 400
	net := testNet(n, 22)
	res, err := RunScheduled(instances, net, testTrace(t, n), Config{Cadence: 20, Replay: mode},
		func() *xrand.Rand { return xrand.New(23) }, workers)
	if err != nil {
		t.Fatal(err)
	}
	return res, net.Counter().Total()
}

func sameSeries(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// NaN marks off-schedule/failed ticks; bit-equality must treat
		// matching NaNs as equal.
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// assertSameResult asserts every deterministic field of two monitor
// results is bitwise identical.
func assertSameResult(t *testing.T, want, got *Result) {
	t.Helper()
	if !sameSeries(want.Times, got.Times) || !sameSeries(want.TrueSizes, got.TrueSizes) {
		t.Fatal("time grid or true-size trajectory diverged between replay modes")
	}
	for k := range want.Names {
		if want.Names[k] != got.Names[k] {
			t.Fatalf("instance %d name %q != %q", k, got.Names[k], want.Names[k])
		}
		if !sameSeries(want.Raw[k], got.Raw[k]) {
			t.Errorf("%s: raw series diverged", want.Names[k])
		}
		if !sameSeries(want.Smoothed[k], got.Smoothed[k]) {
			t.Errorf("%s: smoothed series diverged", want.Names[k])
		}
		if !sameSeries(want.Staleness[k], got.Staleness[k]) {
			t.Errorf("%s: staleness series diverged", want.Names[k])
		}
		if want.Scheduled[k] != got.Scheduled[k] || want.Failures[k] != got.Failures[k] ||
			want.Restarts[k] != got.Restarts[k] {
			t.Errorf("%s: scheduled/failures/restarts %d/%d/%d != %d/%d/%d", want.Names[k],
				got.Scheduled[k], got.Failures[k], got.Restarts[k],
				want.Scheduled[k], want.Failures[k], want.Restarts[k])
		}
		if want.Messages[k] != got.Messages[k] {
			t.Errorf("%s: message attribution %d != %d", want.Names[k], got.Messages[k], want.Messages[k])
		}
	}
}

// TestSharedReplayBitEqualAllFamilies is the tentpole's equivalence
// proof over the real catalog: every monitoring-capable family runs in
// both replay modes and every per-instance series, metric and message
// count must be bitwise identical — shared replay is a memory layout,
// never an output change.
func TestSharedReplayBitEqualAllFamilies(t *testing.T) {
	perRes, perMsgs := runReplay(t, monitorRoster(t, 400), ReplayPerInstance, 4)
	shRes, shMsgs := runReplay(t, monitorRoster(t, 400), ReplayShared, 4)
	assertSameResult(t, perRes, shRes)
	if perMsgs != shMsgs {
		t.Fatalf("merged base-counter totals diverged: %d != %d", shMsgs, perMsgs)
	}
	if perRes.Groups != len(perRes.Names) {
		t.Fatalf("per-instance mode used %d groups for %d instances", perRes.Groups, len(perRes.Names))
	}
	// Shared mode: all read-only families fold into ONE group (uniform
	// cadence); each mutating family stays alone.
	mutating := 0
	for _, in := range monitorRoster(t, 400) {
		if core.MutatesOverlay(in.Estimator) {
			mutating++
		}
	}
	if want := mutating + 1; shRes.Groups != want {
		t.Fatalf("shared mode used %d groups, want %d (%d mutating + 1 read-only class)",
			shRes.Groups, want, mutating)
	}
	if shRes.Replay != ReplayShared || perRes.Replay != ReplayPerInstance {
		t.Fatalf("Result.Replay not recorded: %v / %v", perRes.Replay, shRes.Replay)
	}
}

// TestSharedReplayGroupAccounting pins the grouping rules: equal-cadence
// read-only instances share, distinct cadences split, and mutating or
// capability-less estimators stay in singleton groups.
func TestSharedReplayGroupAccounting(t *testing.T) {
	instances := func() []Instance {
		return []Instance{
			{Estimator: roTruth{"ro-a"}},                 // cadence 20 (config)
			{Estimator: roTruth{"ro-b"}},                 // shares ro-a's group
			{Estimator: roTruth{"ro-slow"}, Cadence: 40}, // own cadence, own group
			{Estimator: truthEstimator{}},                // no capability: conservative singleton
			{Estimator: roTruth{"ro-c"}},                 // joins the first group
			{Estimator: &mutatingTruth{}},                // declared mutating: singleton
		}
	}
	perRes, _ := runReplay(t, instances(), ReplayPerInstance, 1)
	shRes, _ := runReplay(t, instances(), ReplayShared, 1)
	if perRes.Groups != 6 {
		t.Fatalf("per-instance groups = %d, want 6", perRes.Groups)
	}
	// {ro-a, ro-b, ro-c}, {ro-slow}, {truth}, {mutating} = 4 groups.
	if shRes.Groups != 4 {
		t.Fatalf("shared groups = %d, want 4", shRes.Groups)
	}
	assertSameResult(t, perRes, shRes)
}

// mutatingTruth declares the mutating capability explicitly (the
// cyclon-backed families' shape) without actually rewiring anything, so
// grouping decisions stay observable on a cheap estimator.
type mutatingTruth struct{}

func (*mutatingTruth) Name() string { return "mutating-truth" }
func (*mutatingTruth) Estimate(net *overlay.Network) (float64, error) {
	return float64(net.Size()), nil
}
func (*mutatingTruth) MutatesOverlay() bool { return true }

// TestSharedReplayWorkerInvariance re-proves the monitor's worker
// contract in shared mode: groups land on the pool in any order, output
// never moves.
func TestSharedReplayWorkerInvariance(t *testing.T) {
	mk := func() []Instance {
		return []Instance{
			{Estimator: roTruth{"ro-a"}},
			{Estimator: roTruth{"ro-b"}, Cadence: 40},
			{Estimator: roTruth{"ro-c"}},
			{Estimator: &mutatingTruth{}},
		}
	}
	base, baseMsgs := runReplay(t, mk(), ReplayShared, 1)
	for _, workers := range []int{2, 8} {
		res, msgs := runReplay(t, mk(), ReplayShared, workers)
		assertSameResult(t, base, res)
		if msgs != baseMsgs {
			t.Fatalf("workers=%d merged totals diverged: %d != %d", workers, msgs, baseMsgs)
		}
	}
}

// TestSharedReplayStatisticalEnvelope runs a real (noisy) estimator over
// 30 seeds in both modes. Bit-equality per seed is the hard guarantee;
// the aggregated error envelope (mean/stddev of MAPE) is additionally
// compared, which is what a statistics-level reviewer would check if
// the modes were merely "equivalent" rather than identical.
func TestSharedReplayStatisticalEnvelope(t *testing.T) {
	const runs = 30
	envelope := func(mode ReplayMode) (mean, std float64) {
		mapes := make([]float64, 0, runs)
		for seed := uint64(1); seed <= runs; seed++ {
			net := testNet(300, seed)
			tr, err := trace.Generate(trace.Config{
				Name:    "envelope",
				Initial: 300,
				Horizon: 100,
				Session: trace.SessionDist{Kind: trace.Weibull, Mean: 150, Shape: 0.7},
			}, xrand.New(seed+100))
			if err != nil {
				t.Fatal(err)
			}
			// Three same-cadence Sample&Collide instances: in shared mode
			// they ride one clone, per-instance three.
			ins := make([]Instance, 3)
			for k := range ins {
				ins[k] = Instance{Estimator: samplecollide.New(
					samplecollide.Config{T: 5, L: 30}, xrand.New(seed+200+uint64(k)))}
			}
			res, err := RunScheduled(ins, net, tr, Config{Cadence: 25, Replay: mode},
				func() *xrand.Rand { return xrand.New(seed + 300) }, 2)
			if err != nil {
				t.Fatal(err)
			}
			for k := range ins {
				if m := res.MAPE(k); !math.IsNaN(m) {
					mapes = append(mapes, m)
				}
			}
		}
		if len(mapes) == 0 {
			t.Fatal("no usable estimates in the envelope sweep")
		}
		for _, m := range mapes {
			mean += m
		}
		mean /= float64(len(mapes))
		for _, m := range mapes {
			std += (m - mean) * (m - mean)
		}
		return mean, math.Sqrt(std / float64(len(mapes)))
	}
	perMean, perStd := envelope(ReplayPerInstance)
	shMean, shStd := envelope(ReplayShared)
	// The modes are bit-equal run for run, so the envelopes must agree
	// exactly — any drift means the grouping leaked into the estimates.
	if math.Float64bits(perMean) != math.Float64bits(shMean) ||
		math.Float64bits(perStd) != math.Float64bits(shStd) {
		t.Fatalf("error envelopes diverged: perinstance %.6g±%.6g, shared %.6g±%.6g",
			perMean, perStd, shMean, shStd)
	}
}

// monitorAllocDelta measures the process TotalAlloc growth of one
// monitoring run. net and tr are built by the caller, outside the
// measurement; workers=1 keeps the allocation sequence deterministic.
func monitorAllocDelta(t *testing.T, net *overlay.Network, tr *trace.Trace, instances []Instance, mode ReplayMode) uint64 {
	t.Helper()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := RunScheduled(instances, net, tr, Config{Cadence: 20, Replay: mode},
		func() *xrand.Rand { return xrand.New(61) }, 1); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestMonitorFootprintSharedGroups asserts the memory claim directly:
// with six read-only instances on one cadence, shared mode allocates a
// small fraction of per-instance mode — one clone's replay churn
// instead of six. Zero-cost truth estimators keep estimator allocations
// out of the measurement.
func TestMonitorFootprintSharedGroups(t *testing.T) {
	const n = 20000
	net := testNet(n, 60)
	tr, err := trace.Generate(trace.Config{
		Name:    "footprint",
		Initial: n,
		Horizon: 100,
		Session: trace.SessionDist{Kind: trace.Weibull, Mean: 100, Shape: 0.7},
	}, xrand.New(62))
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []Instance {
		ins := make([]Instance, 6)
		for k := range ins {
			ins[k] = Instance{Estimator: roTruth{"ro"}}
		}
		return ins
	}
	perAlloc := monitorAllocDelta(t, net, tr, mk(), ReplayPerInstance)
	shAlloc := monitorAllocDelta(t, net, tr, mk(), ReplayShared)
	if shAlloc*10 >= perAlloc*7 {
		t.Fatalf("shared replay allocated %d bytes vs %d per-instance; want < 70%%", shAlloc, perAlloc)
	}
}

// TestSharedCloneFootprint1M is the paper-scale version of the
// footprint claim: at one million nodes, clone memory must scale with
// replay groups, not instances. Named outside the targeted -race
// patterns on purpose — a million-node replay under the race detector
// buys nothing the 20k test does not already prove.
func TestSharedCloneFootprint1M(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-node footprint test skipped in -short mode")
	}
	const n = 1000000
	net := testNet(n, 63)
	tr, err := trace.Generate(trace.Config{
		Name:    "footprint-1m",
		Initial: n,
		Horizon: 50,
		// Long mean sessions: enough churn to force COW page copies,
		// little enough that trace generation is not the test's cost.
		Session: trace.SessionDist{Kind: trace.Weibull, Mean: 500, Shape: 0.7},
	}, xrand.New(64))
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []Instance {
		ins := make([]Instance, 4)
		for k := range ins {
			ins[k] = Instance{Estimator: roTruth{"ro"}}
		}
		return ins
	}
	perAlloc := monitorAllocDelta(t, net, tr, mk(), ReplayPerInstance)
	shAlloc := monitorAllocDelta(t, net, tr, mk(), ReplayShared)
	// Four instances, one group: the shared run must land well under
	// half the per-instance bill (the residue is the shared replay
	// itself plus per-instance series bookkeeping).
	if shAlloc*2 >= perAlloc {
		t.Fatalf("1M shared replay allocated %d bytes vs %d per-instance; want < 50%%", shAlloc, perAlloc)
	}
}

// TestSharedReplay10M is the 10M-node shared-mode smoke, gated behind
// P2PSIZE_10M=1 (CI's bench job sets it; the default test tier does
// not build 10M-node overlays). Two cheap read-only families share one
// clone and one replay of a 10M-initial trace.
func TestSharedReplay10M(t *testing.T) {
	if os.Getenv("P2PSIZE_10M") == "" {
		t.Skip("set P2PSIZE_10M=1 to run the 10M shared-replay smoke")
	}
	const n = 10000000
	tr, err := trace.Generate(trace.Config{
		Name:    "10m-smoke",
		Initial: n,
		Horizon: 30,
		Session: trace.SessionDist{Kind: trace.Weibull, Mean: 300, Shape: 0.7},
	}, xrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	net := overlay.New(graph.Heterogeneous(n, 10, xrand.New(78)), 10, nil)
	var ins []Instance
	for _, name := range []string{"dht", "samplecollide"} {
		d, ok := registry.Get(name)
		if !ok {
			t.Fatalf("registry family %q missing", name)
		}
		e, err := d.Build(nil, xrand.New(79+d.StreamOffset), registry.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ins = append(ins, Instance{Estimator: e})
	}
	res, err := RunScheduled(ins, net, tr, Config{Cadence: 10, Replay: ReplayShared},
		func() *xrand.Rand { return xrand.New(80) }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 1 {
		t.Fatalf("10M smoke used %d replay groups, want 1 shared group", res.Groups)
	}
	if len(res.Times) != 3 {
		t.Fatalf("10M smoke sampled %d ticks, want 3", len(res.Times))
	}
	for k := range ins {
		got := false
		for _, v := range res.Raw[k] {
			if !math.IsNaN(v) && v > 0 {
				got = true
			}
		}
		if !got {
			t.Fatalf("%s produced no usable estimate at 10M", res.Names[k])
		}
	}
}
