package monitor

import (
	"errors"
	"math"
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

// sizeEcho is a deterministic estimator: it reports the overlay's true
// size and meters one message, so RunLive's bookkeeping is checkable
// exactly.
type sizeEcho struct{ fail bool }

func (e sizeEcho) Name() string { return "size-echo" }
func (e sizeEcho) Estimate(n *overlay.Network) (float64, error) {
	if e.fail {
		return 0, errors.New("down")
	}
	n.SendTo(n.Graph().AliveAt(0), 0)
	return float64(n.Size()), nil
}

// leaveAt is a scripted LiveSource: it removes one node when the grid
// reaches the trigger time.
type leaveAt struct {
	t     float64
	fired bool
}

func (s *leaveAt) Refresh(net *overlay.Network, t float64) error {
	if !s.fired && t >= s.t {
		s.fired = true
		net.Leave(net.Graph().AliveAt(0))
	}
	return nil
}

func liveNet(n int) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 4, xrand.New(3)), 4, nil)
}

func TestRunLiveStatic(t *testing.T) {
	net := liveNet(10)
	res, err := RunLive([]Instance{{Estimator: sizeEcho{}}}, net, nil, 30, Config{Cadence: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 3 || res.Scheduled[0] != 3 {
		t.Fatalf("times %v, scheduled %v", res.Times, res.Scheduled)
	}
	for i, v := range res.Raw[0] {
		if v != 10 {
			t.Fatalf("raw[%d] = %g, want 10", i, v)
		}
	}
	// One metered message per estimation, attributed by counter delta.
	if res.Messages[0] != 3 {
		t.Fatalf("messages = %d, want 3", res.Messages[0])
	}
}

func TestRunLiveSourceDrivesMembership(t *testing.T) {
	net := liveNet(10)
	src := &leaveAt{t: 20}
	res, err := RunLive([]Instance{{Estimator: sizeEcho{}}}, net, src, 30, Config{Cadence: 10})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 9, 9}
	for i, w := range want {
		if res.TrueSizes[i] != w || res.Raw[0][i] != w {
			t.Fatalf("tick %d: true %g raw %g, want %g", i, res.TrueSizes[i], res.Raw[0][i], w)
		}
	}
}

func TestRunLivePerInstanceCadence(t *testing.T) {
	net := liveNet(10)
	res, err := RunLive([]Instance{
		{Estimator: sizeEcho{}},
		{Estimator: sizeEcho{}, Cadence: 20},
	}, net, nil, 40, Config{Cadence: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled[0] != 4 || res.Scheduled[1] != 2 {
		t.Fatalf("scheduled = %v, want [4 2]", res.Scheduled)
	}
	// Off-schedule ticks hold NaN in the raw series.
	nans := 0
	for _, v := range res.Raw[1] {
		if math.IsNaN(v) {
			nans++
		}
	}
	if nans != 2 {
		t.Fatalf("instance 1 raw = %v, want 2 NaN gaps", res.Raw[1])
	}
}

func TestRunLiveFailuresAndErrors(t *testing.T) {
	net := liveNet(10)
	res, err := RunLive([]Instance{{Estimator: sizeEcho{fail: true}}}, net, nil, 20, Config{Cadence: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures[0] != 2 {
		t.Fatalf("failures = %d, want 2", res.Failures[0])
	}
	if _, err := RunLive([]Instance{{Estimator: sizeEcho{}}}, net, nil, 0, Config{Cadence: 10}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := RunLive([]Instance{{Estimator: sizeEcho{}}}, net, refreshErr{}, 20, Config{Cadence: 10}); err == nil {
		t.Fatal("refresh error not propagated")
	}
}

type refreshErr struct{}

func (refreshErr) Refresh(*overlay.Network, float64) error { return errors.New("lost cluster") }
