package monitor

// Live-cluster monitoring: the same schedule/union-grid/smoothing
// machinery as RunScheduled, but driven against ONE shared overlay whose
// membership is owned by real node daemons rather than a replayed trace.
// There is no churn player and no per-instance clone — the overlay
// mirrors the cluster, so all instances must observe the same membership
// at the same tick, which forces a sequential walk of the grid. A
// LiveSource reconciles daemon liveness into the overlay ahead of every
// tick; with a nil source the membership is static and RunLive on a
// transport-free overlay is the simulated oracle the coordinator
// cross-validates the live run against (identical estimator seeds then
// give bit-equal raw estimates, because the transport seam never feeds
// back into estimator arithmetic).

import (
	"fmt"
	"math"

	"p2psize/internal/overlay"
)

// LiveSource reconciles live-cluster membership into the overlay. The
// coordinator's implementation pings every daemon and Leaves the ones
// that stopped answering; tests can script departures.
type LiveSource interface {
	// Refresh is called once per grid tick, before any instance samples,
	// with the shared overlay and the simulated time of the tick. It may
	// mutate the overlay's membership; an error aborts the run.
	Refresh(net *overlay.Network, t float64) error
}

// RunLive samples every instance on its own cadence against the shared
// live overlay up to the horizon. Unlike RunScheduled it runs
// sequentially — the overlay is one real deployment, not a replayable
// simulation, so instances interleave on a single timeline and meter on
// the overlay's own counter (per-instance messages are attributed by
// counter deltas around each estimation). The overlay's transport, if
// any, carries every metered send to the daemons.
func RunLive(instances []Instance, net *overlay.Network, src LiveSource, horizon float64, cfg Config) (*Result, error) {
	if !(horizon > 0) || math.IsInf(horizon, 1) {
		return nil, fmt.Errorf("monitor: live horizon %g must be positive and finite", horizon)
	}
	cadences, policies, schedules, err := resolveSchedules(instances, cfg, horizon)
	if err != nil {
		return nil, err
	}
	grid := unionGrid(schedules)
	res := &Result{
		Names:     make([]string, len(instances)),
		Policy:    cfg.Policy.normalized(),
		Policies:  make([]Policy, len(instances)),
		Cadences:  cadences,
		Scheduled: make([]int, len(instances)),
		Horizon:   horizon,
		Times:     grid,
		Raw:       make([][]float64, len(instances)),
		Smoothed:  make([][]float64, len(instances)),
		Staleness: make([][]float64, len(instances)),
		Failures:  make([]int, len(instances)),
		Restarts:  make([]int, len(instances)),
		Messages:  make([]uint64, len(instances)),
	}
	smoothers := make([]*smoother, len(instances))
	next := make([]int, len(instances)) // cursor into each instance's own schedule
	for k := range instances {
		res.Names[k] = instances[k].Estimator.Name()
		res.Policies[k] = policies[k].normalized()
		smoothers[k] = newSmoother(policies[k])
	}
	for _, t := range grid {
		if src != nil {
			if err := src.Refresh(net, t); err != nil {
				return nil, fmt.Errorf("monitor: live refresh at t=%g: %w", t, err)
			}
		}
		res.TrueSizes = append(res.TrueSizes, float64(net.Size()))
		for k := range instances {
			sm := smoothers[k]
			due := next[k] < len(schedules[k]) && schedules[k][next[k]] == t
			if !due {
				res.Raw[k] = append(res.Raw[k], math.NaN())
			} else {
				next[k]++
				res.Scheduled[k]++
				before := net.Counter().Total()
				est, err := instances[k].Estimator.Estimate(net)
				res.Messages[k] += net.Counter().Total() - before
				if err != nil {
					res.Failures[k]++
					res.Raw[k] = append(res.Raw[k], math.NaN())
				} else {
					sm.add(est, t)
					res.Raw[k] = append(res.Raw[k], est)
				}
			}
			served, stale := sm.current(t)
			res.Smoothed[k] = append(res.Smoothed[k], served)
			res.Staleness[k] = append(res.Staleness[k], stale)
		}
	}
	for k := range instances {
		res.Restarts[k] = smoothers[k].restarts
	}
	return res, nil
}
