package monitor

import (
	"errors"
	"math"
	"testing"

	"p2psize/internal/core"
	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/samplecollide"
	"p2psize/internal/trace"
	"p2psize/internal/xrand"
)

func testTrace(t *testing.T, initial int) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(trace.Config{
		Name:    "monitor-test",
		Initial: initial,
		Horizon: 100,
		Session: trace.SessionDist{Kind: trace.Weibull, Mean: 100, Shape: 0.7},
	}, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

// truthEstimator reports the exact size (zero cost, never fails) —
// useful for asserting the plumbing without estimator noise.
type truthEstimator struct{}

func (truthEstimator) Name() string { return "truth" }
func (truthEstimator) Estimate(net *overlay.Network) (float64, error) {
	return float64(net.Size()), nil
}

// flakyEstimator fails on every other call.
type flakyEstimator struct{ calls int }

func (e *flakyEstimator) Name() string { return "flaky" }
func (e *flakyEstimator) Estimate(net *overlay.Network) (float64, error) {
	e.calls++
	if e.calls%2 == 0 {
		return 0, errors.New("flaky")
	}
	return float64(net.Size()), nil
}

// meteredTruth is truth plus one control message per estimate.
type meteredTruth struct{}

func (meteredTruth) Name() string { return "metered-truth" }
func (meteredTruth) Estimate(net *overlay.Network) (float64, error) {
	net.Send(metrics.KindControl)
	return float64(net.Size()), nil
}

func run(t *testing.T, instances []core.Estimator, cfg Config, workers int) *Result {
	t.Helper()
	const n = 400
	net := testNet(n, 22)
	res, err := Run(instances, net, testTrace(t, n), cfg, func() *xrand.Rand { return xrand.New(23) }, workers)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTruthTracksExactly(t *testing.T) {
	res := run(t, []core.Estimator{truthEstimator{}}, Config{Cadence: 10}, 1)
	if len(res.Times) != 10 {
		t.Fatalf("expected 10 samples, got %d", len(res.Times))
	}
	if mae := res.MAE(0); mae != 0 {
		t.Fatalf("truth estimator MAE = %g, want 0", mae)
	}
	if mape := res.MAPE(0); mape != 0 {
		t.Fatalf("truth estimator MAPE = %g, want 0", mape)
	}
	if st := res.MeanStaleness(0); st != 0 {
		t.Fatalf("unsmoothed truth staleness = %g, want 0", st)
	}
}

func TestWindowSmoothingLagsAndAges(t *testing.T) {
	res := run(t, []core.Estimator{truthEstimator{}},
		Config{Cadence: 10, Policy: Policy{Smoothing: Window, Window: 4}}, 1)
	// A full 4-entry window at cadence 10 holds data aged 0,10,20,30 →
	// mean 15; early samples have smaller windows.
	last := res.Staleness[0][len(res.Staleness[0])-1]
	if last != 15 {
		t.Fatalf("full-window staleness = %g, want 15", last)
	}
	if res.Staleness[0][0] != 0 {
		t.Fatalf("first-sample staleness = %g, want 0", res.Staleness[0][0])
	}
}

func TestEWMAStaleness(t *testing.T) {
	res := run(t, []core.Estimator{truthEstimator{}},
		Config{Cadence: 10, Policy: Policy{Smoothing: EWMA, Alpha: 0.5}}, 1)
	// Steady-state EWMA age with alpha 0.5 and dt 10 converges to
	// dt·(1-a)/a = 10; check it is between fresh and window-like.
	last := res.Staleness[0][len(res.Staleness[0])-1]
	if last <= 0 || last > 11 {
		t.Fatalf("EWMA staleness = %g, want in (0, 11]", last)
	}
}

func TestFailuresHoldLastValueAndAge(t *testing.T) {
	res := run(t, []core.Estimator{&flakyEstimator{}}, Config{Cadence: 10}, 1)
	if res.Failures[0] != 5 {
		t.Fatalf("failures = %d, want 5", res.Failures[0])
	}
	// Sample 2 fails: the served value must be sample 1's, aged one
	// cadence.
	if math.IsNaN(res.Smoothed[0][1]) {
		t.Fatal("failed sample did not hold the previous value")
	}
	if res.Smoothed[0][1] != res.Smoothed[0][0] {
		t.Fatalf("held value %g != previous %g", res.Smoothed[0][1], res.Smoothed[0][0])
	}
	if res.Staleness[0][1] != 10 {
		t.Fatalf("staleness across a failure = %g, want 10", res.Staleness[0][1])
	}
	if st := res.MeanStaleness(0); st != 5 {
		t.Fatalf("mean staleness = %g, want 5", st)
	}
}

func TestRestartOnShock(t *testing.T) {
	const n = 400
	net := testNet(n, 24)
	tr := testTrace(t, n)
	if err := tr.AddMassFailure(50, 0.6, xrand.New(25)); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cadence: 10, Policy: Policy{Smoothing: Window, Window: 8, RestartJump: 0.3}}
	res, err := Run([]core.Estimator{truthEstimator{}}, net, tr, cfg,
		func() *xrand.Rand { return xrand.New(26) }, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts[0] == 0 {
		t.Fatal("a -60% shock did not trigger a restart")
	}
	// After the restart the window starts over from the post-shock
	// truth, so the first sample seeing the shock tracks exactly.
	i := 4 // t=50: the mass failure at t=50 is applied before sampling
	if res.Smoothed[0][i] != res.TrueSizes[i] {
		t.Fatalf("post-shock sample serves %g, truth is %g (no restart?)",
			res.Smoothed[0][i], res.TrueSizes[i])
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	mk := func() []core.Estimator {
		out := make([]core.Estimator, 3)
		for k := range out {
			out[k] = samplecollide.New(samplecollide.Config{T: 10, L: 50},
				xrand.New(uint64(30+k)))
		}
		return out
	}
	cfg := Config{Cadence: 10, Policy: Policy{Smoothing: Window, Window: 5}}
	seq := run(t, mk(), cfg, 1)
	par := run(t, mk(), cfg, 8)
	if len(seq.Times) != len(par.Times) {
		t.Fatalf("sample counts differ: %d vs %d", len(seq.Times), len(par.Times))
	}
	for k := range seq.Names {
		if seq.Messages[k] != par.Messages[k] {
			t.Fatalf("instance %d messages differ: %d vs %d", k, seq.Messages[k], par.Messages[k])
		}
		for i := range seq.Times {
			if math.Float64bits(seq.Smoothed[k][i]) != math.Float64bits(par.Smoothed[k][i]) ||
				math.Float64bits(seq.Raw[k][i]) != math.Float64bits(par.Raw[k][i]) {
				t.Fatalf("instance %d diverges at sample %d", k, i)
			}
		}
	}
}

func TestMessagesMeteredPerInstance(t *testing.T) {
	const n = 400
	net := testNet(n, 27)
	res, err := Run([]core.Estimator{meteredTruth{}, meteredTruth{}}, net, testTrace(t, n),
		Config{Cadence: 10}, func() *xrand.Rand { return xrand.New(28) }, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Messages {
		if res.Messages[k] != 10 {
			t.Fatalf("instance %d metered %d messages, want 10", k, res.Messages[k])
		}
		if res.MsgsPerTime(k) != 0.1 {
			t.Fatalf("instance %d msgs/time = %g, want 0.1", k, res.MsgsPerTime(k))
		}
	}
	if net.Counter().Total() != 20 {
		t.Fatalf("merged counter = %d, want 20", net.Counter().Total())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	net := testNet(100, 29)
	tr := testTrace(t, 100)
	rng := func() *xrand.Rand { return xrand.New(1) }
	if _, err := Run(nil, net, tr, Config{Cadence: 1}, rng, 1); err == nil {
		t.Fatal("no estimators accepted")
	}
	if _, err := Run([]core.Estimator{truthEstimator{}}, net, tr, Config{}, rng, 1); err == nil {
		t.Fatal("zero cadence accepted")
	}
	if _, err := Run([]core.Estimator{truthEstimator{}}, net, tr, Config{Cadence: 1e9}, rng, 1); err == nil {
		t.Fatal("cadence past the horizon accepted")
	}
}

// --- Per-instance cadence/policy (RunScheduled) --------------------------

// TestScheduledUniformMatchesRun pins the compatibility contract: a
// RunScheduled call whose instances all inherit the Config cadence and
// policy is byte-identical to the single-cadence Run entry point.
func TestScheduledUniformMatchesRun(t *testing.T) {
	const n = 400
	mk := func() []core.Estimator {
		return []core.Estimator{
			samplecollide.New(samplecollide.Config{T: 10, L: 50}, xrand.New(40)),
			&flakyEstimator{},
		}
	}
	cfg := Config{Cadence: 10, Policy: Policy{Smoothing: Window, Window: 5}}
	legacy, err := Run(mk(), testNet(n, 41), testTrace(t, n), cfg,
		func() *xrand.Rand { return xrand.New(42) }, 1)
	if err != nil {
		t.Fatal(err)
	}
	ests := mk()
	sched, err := RunScheduled([]Instance{
		{Estimator: ests[0], Cadence: 10},
		{Estimator: ests[1]}, // inherits
	}, testNet(n, 41), testTrace(t, n), cfg, func() *xrand.Rand { return xrand.New(42) }, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy.Times) != len(sched.Times) {
		t.Fatalf("grid sizes differ: %d vs %d", len(legacy.Times), len(sched.Times))
	}
	for k := range legacy.Names {
		if legacy.Messages[k] != sched.Messages[k] || legacy.Failures[k] != sched.Failures[k] {
			t.Fatalf("instance %d bookkeeping differs", k)
		}
		for i := range legacy.Times {
			if math.Float64bits(legacy.Raw[k][i]) != math.Float64bits(sched.Raw[k][i]) ||
				math.Float64bits(legacy.Smoothed[k][i]) != math.Float64bits(sched.Smoothed[k][i]) ||
				math.Float64bits(legacy.Staleness[k][i]) != math.Float64bits(sched.Staleness[k][i]) {
				t.Fatalf("instance %d diverges from the legacy path at tick %d", k, i)
			}
		}
	}
}

// TestMixedCadencesSchedule checks the union grid and the off-schedule
// hold behavior: a 2x-slower instance estimates at every other tick,
// holds its served value in between, ages visibly, and spends half the
// messages.
func TestMixedCadencesSchedule(t *testing.T) {
	const n = 400
	net := testNet(n, 43)
	res, err := RunScheduled([]Instance{
		{Estimator: meteredTruth{}, Cadence: 10},
		{Estimator: meteredTruth{}, Cadence: 20},
	}, net, testTrace(t, n), Config{Cadence: 10}, func() *xrand.Rand { return xrand.New(44) }, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 10 {
		t.Fatalf("union grid has %d ticks, want 10 (the fast schedule)", len(res.Times))
	}
	if res.Scheduled[0] != 10 || res.Scheduled[1] != 5 {
		t.Fatalf("scheduled counts = %v, want [10 5]", res.Scheduled)
	}
	if res.Messages[0] != 10 || res.Messages[1] != 5 {
		t.Fatalf("messages = %v: the slow cadence must spend half the budget", res.Messages)
	}
	for i := range res.Times {
		even := (i+1)%2 == 0 // t = 20, 40, ... are the slow instance's ticks
		if even && math.IsNaN(res.Raw[1][i]) {
			t.Fatalf("slow instance missing its scheduled estimate at t=%g", res.Times[i])
		}
		if !even && !math.IsNaN(res.Raw[1][i]) {
			t.Fatalf("slow instance estimated off-schedule at t=%g", res.Times[i])
		}
		if i >= 1 && !even {
			// Between samples the served value is held from the previous
			// scheduled tick and is one cadence stale.
			if res.Smoothed[1][i] != res.Smoothed[1][i-1] {
				t.Fatalf("slow instance did not hold its value at t=%g", res.Times[i])
			}
			if res.Staleness[1][i] != 10 {
				t.Fatalf("held value staleness = %g at t=%g, want 10", res.Staleness[1][i], res.Times[i])
			}
		}
	}
	if fast, slow := res.MeanStaleness(0), res.MeanStaleness(1); slow <= fast {
		t.Fatalf("staleness fast %g vs slow %g: halving the cadence must age the data", fast, slow)
	}
	if fast, slow := res.MsgsPerTime(0), res.MsgsPerTime(1); slow >= fast {
		t.Fatalf("msgs/time fast %g vs slow %g: halving the cadence must cut the budget", fast, slow)
	}
}

// TestScheduledWorkerCountInvariance is the determinism contract for
// mixed cadences and per-instance policies at workers 1, 2 and 8.
func TestScheduledWorkerCountInvariance(t *testing.T) {
	const n = 400
	ewma := Policy{Smoothing: EWMA, Alpha: 0.5}
	mk := func() []Instance {
		return []Instance{
			{Estimator: samplecollide.New(samplecollide.Config{T: 10, L: 50}, xrand.New(50)), Cadence: 5},
			{Estimator: samplecollide.New(samplecollide.Config{T: 10, L: 50}, xrand.New(51)), Cadence: 25, Policy: &ewma},
			{Estimator: samplecollide.New(samplecollide.Config{T: 10, L: 50}, xrand.New(52))},
		}
	}
	cfg := Config{Cadence: 10, Policy: Policy{Smoothing: Window, Window: 5}}
	var ref *Result
	for _, workers := range []int{1, 2, 8} {
		res, err := RunScheduled(mk(), testNet(n, 53), testTrace(t, n), cfg,
			func() *xrand.Rand { return xrand.New(54) }, workers)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res.Times) != len(ref.Times) {
			t.Fatalf("workers=%d: grid size %d vs %d", workers, len(res.Times), len(ref.Times))
		}
		for k := range ref.Names {
			if res.Messages[k] != ref.Messages[k] {
				t.Fatalf("workers=%d: instance %d messages %d vs %d", workers, k, res.Messages[k], ref.Messages[k])
			}
			for i := range ref.Times {
				if math.Float64bits(res.Raw[k][i]) != math.Float64bits(ref.Raw[k][i]) ||
					math.Float64bits(res.Smoothed[k][i]) != math.Float64bits(ref.Smoothed[k][i]) ||
					math.Float64bits(res.Staleness[k][i]) != math.Float64bits(ref.Staleness[k][i]) {
					t.Fatalf("workers=%d: instance %d diverges at tick %d", workers, k, i)
				}
			}
		}
	}
}

// TestCadenceTradesBudgetForStaleness is the ROADMAP item end to end:
// slowing one estimator's cadence must cut its message budget and grow
// its staleness while the co-monitored fast instance is unaffected.
func TestCadenceTradesBudgetForStaleness(t *testing.T) {
	const n = 400
	runAt := func(slowCadence float64) *Result {
		res, err := RunScheduled([]Instance{
			{Estimator: meteredTruth{}},
			{Estimator: meteredTruth{}, Cadence: slowCadence},
		}, testNet(n, 55), testTrace(t, n), Config{Cadence: 5},
			func() *xrand.Rand { return xrand.New(56) }, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := runAt(5)
	slowed := runAt(50)
	if slowed.Messages[1] >= base.Messages[1] {
		t.Fatalf("slowing the cadence 10x kept the budget: %d vs %d", slowed.Messages[1], base.Messages[1])
	}
	if slowed.MeanStaleness(1) <= base.MeanStaleness(1) {
		t.Fatalf("slowing the cadence 10x kept staleness: %g vs %g", slowed.MeanStaleness(1), base.MeanStaleness(1))
	}
	if slowed.Messages[0] != base.Messages[0] {
		t.Fatalf("fast instance budget changed with the slow instance's cadence: %d vs %d",
			slowed.Messages[0], base.Messages[0])
	}
}

func TestScheduledRejectsBadInstances(t *testing.T) {
	net := testNet(100, 57)
	tr := testTrace(t, 100)
	rng := func() *xrand.Rand { return xrand.New(1) }
	if _, err := RunScheduled([]Instance{{}}, net, tr, Config{Cadence: 1}, rng, 1); err == nil {
		t.Fatal("nil estimator accepted")
	}
	if _, err := RunScheduled([]Instance{{Estimator: truthEstimator{}, Cadence: -1}}, net, tr,
		Config{Cadence: 1}, rng, 1); err == nil {
		t.Fatal("negative cadence accepted")
	}
	for _, c := range []float64{math.NaN(), math.Inf(1)} {
		if _, err := RunScheduled([]Instance{{Estimator: truthEstimator{}, Cadence: c}}, net, tr,
			Config{Cadence: 1}, rng, 1); err == nil {
			t.Fatalf("non-finite cadence %g accepted", c)
		}
		if _, err := RunScheduled([]Instance{{Estimator: truthEstimator{}}}, net, tr,
			Config{Cadence: c}, rng, 1); err == nil {
			t.Fatalf("non-finite base cadence %g accepted", c)
		}
	}
	if _, err := RunScheduled([]Instance{{Estimator: truthEstimator{}, Cadence: 1e9}}, net, tr,
		Config{Cadence: 1}, rng, 1); err == nil {
		t.Fatal("cadence past the horizon accepted")
	}
	// A run where every instance carries its own cadence needs no base.
	if _, err := RunScheduled([]Instance{{Estimator: truthEstimator{}, Cadence: 10}}, net, tr,
		Config{}, rng, 1); err != nil {
		t.Fatalf("all-override run rejected: %v", err)
	}
}

// TestTinyCadenceErrorsInsteadOfPanicking pins the overflow guard: a
// positive-but-pathological cadence must return an error, not panic in
// makeslice (int(1e300) lands on minInt).
func TestTinyCadenceErrorsInsteadOfPanicking(t *testing.T) {
	net := testNet(100, 58)
	tr := testTrace(t, 100)
	rng := func() *xrand.Rand { return xrand.New(1) }
	for _, c := range []float64{1e-300, 1e-12} {
		if _, err := Run([]core.Estimator{truthEstimator{}}, net, tr, Config{Cadence: c}, rng, 1); err == nil {
			t.Fatalf("cadence %g accepted", c)
		}
	}
}

// referenceWindow is the pre-ring-buffer smoother semantics, kept as a
// plain slice for equivalence checking: append, evict from the front.
type referenceWindow struct {
	w     int
	vals  []float64
	times []float64
}

func (r *referenceWindow) add(est, t float64) {
	if len(r.vals) == r.w {
		r.vals = r.vals[1:]
		r.times = r.times[1:]
	}
	r.vals = append(r.vals, est)
	r.times = append(r.times, t)
}

func (r *referenceWindow) current(t float64) (float64, float64) {
	if len(r.vals) == 0 {
		return math.NaN(), t
	}
	sum, ageSum := 0.0, 0.0
	for i, v := range r.vals {
		sum += v
		ageSum += t - r.times[i]
	}
	n := float64(len(r.vals))
	return sum / n, ageSum / n
}

// TestWindowRingMatchesSliceSemantics drives the ring-buffer smoother
// and the old slice-backed reference through the same long stream —
// including mid-stream resets — and requires bit-identical served
// values and staleness at every step. This is what licenses swapping
// the implementation without touching any experiment checksum.
func TestWindowRingMatchesSliceSemantics(t *testing.T) {
	for _, w := range []int{1, 3, 10, 32} {
		sm := newSmoother(Policy{Smoothing: Window, Window: w})
		ref := &referenceWindow{w: w}
		rng := xrand.New(uint64(w))
		for i := 0; i < 5000; i++ {
			tm := float64(i)
			if i > 0 && i%997 == 0 {
				sm.reset()
				ref.vals, ref.times = nil, nil
			}
			est := 1000 + 500*rng.Float64()
			sm.add(est, tm)
			ref.add(est, tm)
			gotV, gotS := sm.current(tm + 0.5)
			wantV, wantS := ref.current(tm + 0.5)
			if math.Float64bits(gotV) != math.Float64bits(wantV) ||
				math.Float64bits(gotS) != math.Float64bits(wantS) {
				t.Fatalf("w=%d step %d: ring (%v, %v) != slice (%v, %v)",
					w, i, gotV, gotS, wantV, wantS)
			}
		}
	}
}

// TestWindowSmootherFixedFootprint is the regression test for the
// unbounded-append eviction: over a schedule long enough to evict tens
// of thousands of times, the ring's backing arrays must stay exactly
// Window long and add must not allocate at all once warm.
func TestWindowSmootherFixedFootprint(t *testing.T) {
	const w = 10
	sm := newSmoother(Policy{Smoothing: Window, Window: w})
	for i := 0; i < 100000; i++ {
		sm.add(float64(i), float64(i))
	}
	if len(sm.vals) != w || cap(sm.vals) != w || len(sm.times) != w || cap(sm.times) != w {
		t.Fatalf("backing arrays grew: len/cap vals %d/%d, times %d/%d (want %d)",
			len(sm.vals), cap(sm.vals), len(sm.times), cap(sm.times), w)
	}
	i := 100000
	allocs := testing.AllocsPerRun(1000, func() {
		sm.add(float64(i), float64(i))
		i++
	})
	if allocs != 0 {
		t.Fatalf("add allocates %.1f objects per call on a warm window", allocs)
	}
}
