package monitor

import (
	"errors"
	"math"
	"testing"

	"p2psize/internal/core"
	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/samplecollide"
	"p2psize/internal/trace"
	"p2psize/internal/xrand"
)

func testTrace(t *testing.T, initial int) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(trace.Config{
		Name:    "monitor-test",
		Initial: initial,
		Horizon: 100,
		Session: trace.SessionDist{Kind: trace.Weibull, Mean: 100, Shape: 0.7},
	}, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

// truthEstimator reports the exact size (zero cost, never fails) —
// useful for asserting the plumbing without estimator noise.
type truthEstimator struct{}

func (truthEstimator) Name() string { return "truth" }
func (truthEstimator) Estimate(net *overlay.Network) (float64, error) {
	return float64(net.Size()), nil
}

// flakyEstimator fails on every other call.
type flakyEstimator struct{ calls int }

func (e *flakyEstimator) Name() string { return "flaky" }
func (e *flakyEstimator) Estimate(net *overlay.Network) (float64, error) {
	e.calls++
	if e.calls%2 == 0 {
		return 0, errors.New("flaky")
	}
	return float64(net.Size()), nil
}

// meteredTruth is truth plus one control message per estimate.
type meteredTruth struct{}

func (meteredTruth) Name() string { return "metered-truth" }
func (meteredTruth) Estimate(net *overlay.Network) (float64, error) {
	net.Send(metrics.KindControl)
	return float64(net.Size()), nil
}

func run(t *testing.T, instances []core.Estimator, cfg Config, workers int) *Result {
	t.Helper()
	const n = 400
	net := testNet(n, 22)
	res, err := Run(instances, net, testTrace(t, n), cfg, func() *xrand.Rand { return xrand.New(23) }, workers)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTruthTracksExactly(t *testing.T) {
	res := run(t, []core.Estimator{truthEstimator{}}, Config{Cadence: 10}, 1)
	if len(res.Times) != 10 {
		t.Fatalf("expected 10 samples, got %d", len(res.Times))
	}
	if mae := res.MAE(0); mae != 0 {
		t.Fatalf("truth estimator MAE = %g, want 0", mae)
	}
	if mape := res.MAPE(0); mape != 0 {
		t.Fatalf("truth estimator MAPE = %g, want 0", mape)
	}
	if st := res.MeanStaleness(0); st != 0 {
		t.Fatalf("unsmoothed truth staleness = %g, want 0", st)
	}
}

func TestWindowSmoothingLagsAndAges(t *testing.T) {
	res := run(t, []core.Estimator{truthEstimator{}},
		Config{Cadence: 10, Policy: Policy{Smoothing: Window, Window: 4}}, 1)
	// A full 4-entry window at cadence 10 holds data aged 0,10,20,30 →
	// mean 15; early samples have smaller windows.
	last := res.Staleness[0][len(res.Staleness[0])-1]
	if last != 15 {
		t.Fatalf("full-window staleness = %g, want 15", last)
	}
	if res.Staleness[0][0] != 0 {
		t.Fatalf("first-sample staleness = %g, want 0", res.Staleness[0][0])
	}
}

func TestEWMAStaleness(t *testing.T) {
	res := run(t, []core.Estimator{truthEstimator{}},
		Config{Cadence: 10, Policy: Policy{Smoothing: EWMA, Alpha: 0.5}}, 1)
	// Steady-state EWMA age with alpha 0.5 and dt 10 converges to
	// dt·(1-a)/a = 10; check it is between fresh and window-like.
	last := res.Staleness[0][len(res.Staleness[0])-1]
	if last <= 0 || last > 11 {
		t.Fatalf("EWMA staleness = %g, want in (0, 11]", last)
	}
}

func TestFailuresHoldLastValueAndAge(t *testing.T) {
	res := run(t, []core.Estimator{&flakyEstimator{}}, Config{Cadence: 10}, 1)
	if res.Failures[0] != 5 {
		t.Fatalf("failures = %d, want 5", res.Failures[0])
	}
	// Sample 2 fails: the served value must be sample 1's, aged one
	// cadence.
	if math.IsNaN(res.Smoothed[0][1]) {
		t.Fatal("failed sample did not hold the previous value")
	}
	if res.Smoothed[0][1] != res.Smoothed[0][0] {
		t.Fatalf("held value %g != previous %g", res.Smoothed[0][1], res.Smoothed[0][0])
	}
	if res.Staleness[0][1] != 10 {
		t.Fatalf("staleness across a failure = %g, want 10", res.Staleness[0][1])
	}
	if st := res.MeanStaleness(0); st != 5 {
		t.Fatalf("mean staleness = %g, want 5", st)
	}
}

func TestRestartOnShock(t *testing.T) {
	const n = 400
	net := testNet(n, 24)
	tr := testTrace(t, n)
	if err := tr.AddMassFailure(50, 0.6, xrand.New(25)); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cadence: 10, Policy: Policy{Smoothing: Window, Window: 8, RestartJump: 0.3}}
	res, err := Run([]core.Estimator{truthEstimator{}}, net, tr, cfg,
		func() *xrand.Rand { return xrand.New(26) }, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts[0] == 0 {
		t.Fatal("a -60% shock did not trigger a restart")
	}
	// After the restart the window starts over from the post-shock
	// truth, so the first sample seeing the shock tracks exactly.
	i := 4 // t=50: the mass failure at t=50 is applied before sampling
	if res.Smoothed[0][i] != res.TrueSizes[i] {
		t.Fatalf("post-shock sample serves %g, truth is %g (no restart?)",
			res.Smoothed[0][i], res.TrueSizes[i])
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	mk := func() []core.Estimator {
		out := make([]core.Estimator, 3)
		for k := range out {
			out[k] = samplecollide.New(samplecollide.Config{T: 10, L: 50},
				xrand.New(uint64(30+k)))
		}
		return out
	}
	cfg := Config{Cadence: 10, Policy: Policy{Smoothing: Window, Window: 5}}
	seq := run(t, mk(), cfg, 1)
	par := run(t, mk(), cfg, 8)
	if len(seq.Times) != len(par.Times) {
		t.Fatalf("sample counts differ: %d vs %d", len(seq.Times), len(par.Times))
	}
	for k := range seq.Names {
		if seq.Messages[k] != par.Messages[k] {
			t.Fatalf("instance %d messages differ: %d vs %d", k, seq.Messages[k], par.Messages[k])
		}
		for i := range seq.Times {
			if math.Float64bits(seq.Smoothed[k][i]) != math.Float64bits(par.Smoothed[k][i]) ||
				math.Float64bits(seq.Raw[k][i]) != math.Float64bits(par.Raw[k][i]) {
				t.Fatalf("instance %d diverges at sample %d", k, i)
			}
		}
	}
}

func TestMessagesMeteredPerInstance(t *testing.T) {
	const n = 400
	net := testNet(n, 27)
	res, err := Run([]core.Estimator{meteredTruth{}, meteredTruth{}}, net, testTrace(t, n),
		Config{Cadence: 10}, func() *xrand.Rand { return xrand.New(28) }, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Messages {
		if res.Messages[k] != 10 {
			t.Fatalf("instance %d metered %d messages, want 10", k, res.Messages[k])
		}
		if res.MsgsPerTime(k) != 0.1 {
			t.Fatalf("instance %d msgs/time = %g, want 0.1", k, res.MsgsPerTime(k))
		}
	}
	if net.Counter().Total() != 20 {
		t.Fatalf("merged counter = %d, want 20", net.Counter().Total())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	net := testNet(100, 29)
	tr := testTrace(t, 100)
	rng := func() *xrand.Rand { return xrand.New(1) }
	if _, err := Run(nil, net, tr, Config{Cadence: 1}, rng, 1); err == nil {
		t.Fatal("no estimators accepted")
	}
	if _, err := Run([]core.Estimator{truthEstimator{}}, net, tr, Config{}, rng, 1); err == nil {
		t.Fatal("zero cadence accepted")
	}
	if _, err := Run([]core.Estimator{truthEstimator{}}, net, tr, Config{Cadence: 1e9}, rng, 1); err == nil {
		t.Fatal("cadence past the horizon accepted")
	}
}
