// Package monitor implements continuous size monitoring: the paper's
// stated use case is *tracking* the size of a live, churning network,
// but its evaluation only probes stylized scenarios. A Monitor runs any
// set of estimators against an overlay evolving under a churn trace,
// applies a smoothing policy to each raw estimate stream (sliding
// window, EWMA, or either with restart-on-shock), and reports the
// true-vs-estimated time series plus tracking metrics: MAE, MAPE,
// staleness (how old the data behind the reported value is) and message
// budget per simulated time unit.
//
// Sampling runs on a discrete event timeline: every estimator instance
// carries its own cadence (and, optionally, its own smoothing policy),
// and the run's time grid is the merged union of all instance
// schedules. Cheap estimators can therefore sample every tick while
// expensive ones (Aggregation: a full epoch per estimate) sample every
// tenth, trading message budget against staleness inside one run —
// between its own samples an instance holds its last smoothed value,
// aging visibly in the staleness series.
//
// Instances fan out on the deterministic worker pool in replay groups:
// one overlay clone and one trace replay per instance by default, or —
// under Config.Replay's shared mode — one per cadence group of
// read-only estimators (see ReplayMode). Every group replays the
// identical trace (the same contract as core.RunDynamicParallel) and
// walks the same union grid, so results are byte-identical at every
// worker count and in both replay modes.
package monitor

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"p2psize/internal/core"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/parallel"
	"p2psize/internal/trace"
	"p2psize/internal/xrand"
)

// Smoothing selects how raw estimates are folded into the reported
// (smoothed) value.
type Smoothing int

const (
	// None reports each raw estimate as-is (the paper's oneShot).
	None Smoothing = iota
	// Window reports the mean of the last Policy.Window raw estimates
	// (the paper's lastKruns, k = 10 by default).
	Window
	// EWMA reports an exponentially weighted moving average with weight
	// Policy.Alpha on the newest estimate.
	EWMA
)

// String returns the smoothing name.
func (s Smoothing) String() string {
	switch s {
	case None:
		return "none"
	case Window:
		return "window"
	case EWMA:
		return "ewma"
	default:
		return fmt.Sprintf("smoothing(%d)", int(s))
	}
}

// Policy is a complete smoothing policy.
type Policy struct {
	// Smoothing selects the base policy.
	Smoothing Smoothing
	// Window is the sliding-window length (Window smoothing only;
	// default core.LastK = 10).
	Window int
	// Alpha is the EWMA weight in (0, 1] (EWMA only; default 0.3).
	Alpha float64
	// RestartJump > 0 enables restart-on-shock: when a raw estimate
	// deviates from the current smoothed value by more than this
	// relative fraction, the smoothing state is discarded and restarted
	// from the raw value. Shocks (mass failures, flash crowds) then
	// re-converge in one sample instead of one window.
	RestartJump float64
}

func (p Policy) normalized() Policy {
	if p.Window < 1 {
		p.Window = core.LastK
	}
	if p.Alpha <= 0 || p.Alpha > 1 {
		p.Alpha = 0.3
	}
	return p
}

// String renders the policy for names and notes.
func (p Policy) String() string {
	p = p.normalized()
	var s string
	switch p.Smoothing {
	case Window:
		s = fmt.Sprintf("window(%d)", p.Window)
	case EWMA:
		s = fmt.Sprintf("ewma(%.2g)", p.Alpha)
	default:
		s = "none"
	}
	if p.RestartJump > 0 {
		s += fmt.Sprintf("+restart(%.2g)", p.RestartJump)
	}
	return s
}

// Config drives a monitoring run.
type Config struct {
	// Cadence is the simulated time between consecutive estimations
	// (> 0) for every instance that does not carry its own. Samples
	// happen at t = Cadence, 2·Cadence, ... up to the trace horizon.
	Cadence float64
	// Policy is the smoothing policy applied to every instance that
	// does not carry its own.
	Policy Policy
	// Replay selects the clone/replay strategy of RunScheduled:
	// ReplayPerInstance (the default, one clone and one replay per
	// instance) or ReplayShared (read-only instances sharing a cadence
	// ride one clone and one replay). Like the shard count it is part
	// of the run's description, never of its output: both modes
	// produce bit-equal series.
	Replay ReplayMode
}

// Instance pairs an estimator with its own sampling cadence and
// smoothing policy; the zero values inherit the run Config's.
type Instance struct {
	// Estimator produces the raw estimates.
	Estimator core.Estimator
	// Cadence is this instance's simulated time between estimations
	// (0 = Config.Cadence). Like the shard count it is part of the
	// output, not a scheduling knob.
	Cadence float64
	// Policy overrides the smoothing policy (nil = Config.Policy).
	Policy *Policy
}

// Result holds the tracking series and metrics of one monitoring run.
type Result struct {
	// Names of the estimator instances.
	Names []string
	// Policy is the run's base smoothing policy (Config.Policy);
	// Policies holds the per-instance resolution.
	Policy Policy
	// Policies[k] is the smoothing policy instance k actually ran.
	Policies []Policy
	// Cadences[k] is the cadence instance k actually sampled at.
	Cadences []float64
	// Scheduled[k] is the number of estimations instance k made (its
	// own schedule; Times spans the union of all schedules).
	Scheduled []int
	// Horizon of the replayed trace.
	Horizon float64
	// Times is the merged union of every instance's sample schedule.
	Times []float64
	// TrueSizes[i] is the real overlay size at Times[i].
	TrueSizes []float64
	// Raw[k][i] is instance k's raw estimate at Times[i]: NaN both on
	// failure and on grid ticks outside its own schedule.
	Raw [][]float64
	// Smoothed[k][i] is the value the monitor would have served at
	// Times[i]: the policy-smoothed estimate, held over from the last
	// success between the instance's own samples and across failures.
	Smoothed [][]float64
	// Staleness[k][i] is the mean age, in simulated time, of the raw
	// estimates behind Smoothed[k][i] (0 = fresh; grows across failures,
	// with wider windows, and between the samples of a slow cadence).
	Staleness [][]float64
	// Failures[k] counts instance k's failed estimations.
	Failures []int
	// Restarts[k] counts instance k's restart-on-shock resets.
	Restarts []int
	// Messages[k] is instance k's total metered protocol traffic.
	Messages []uint64
	// Replay is the clone/replay strategy the run used (Config.Replay).
	Replay ReplayMode
	// Groups is the number of replay groups — overlay clones, trace
	// replays — RunScheduled used: len(instances) in per-instance mode,
	// the number of read-only cadence classes plus mutating instances
	// in shared mode. RunLive samples the live overlay (no clones, no
	// replay) and leaves it 0.
	Groups int
}

// smoother folds raw estimates into the served value and tracks the
// time-weighted age of the data behind it.
type smoother struct {
	policy Policy
	// Window state: a fixed-size ring over the last Policy.Window
	// estimates, allocated once on first use. vals[(head+i)%W] is the
	// i-th oldest retained estimate. The previous implementation
	// evicted with vals = vals[1:], which kept the dropped prefix
	// reachable in the backing array and re-allocated by append on
	// every eviction — a steady leak-and-churn on long monitor runs.
	vals  []float64
	times []float64
	head  int
	count int
	// EWMA / None state.
	value float64
	age   float64
	last  float64 // time of the last successful update
	valid bool
	// restarts counts shock resets.
	restarts int
}

func newSmoother(p Policy) *smoother {
	return &smoother{policy: p.normalized()}
}

func (s *smoother) reset() {
	s.head, s.count = 0, 0
	s.valid = false
}

// current returns the served value at time t (NaN before any success)
// and the mean age of the data behind it.
func (s *smoother) current(t float64) (value, staleness float64) {
	switch s.policy.Smoothing {
	case Window:
		if s.count == 0 {
			return math.NaN(), t
		}
		// Sum oldest-first — the same order the slice-backed window
		// used — so the float addition order (and therefore every
		// downstream checksum) is unchanged.
		sum, ageSum := 0.0, 0.0
		for i := 0; i < s.count; i++ {
			idx := (s.head + i) % len(s.vals)
			sum += s.vals[idx]
			ageSum += t - s.times[idx]
		}
		n := float64(s.count)
		return sum / n, ageSum / n
	default: // None, EWMA
		if !s.valid {
			return math.NaN(), t
		}
		return s.value, s.age + (t - s.last)
	}
}

// add folds one successful raw estimate observed at time t.
func (s *smoother) add(est, t float64) {
	// Restart-on-shock only makes sense where there is smoothing state
	// to discard; under None every estimate is served as-is, and a
	// "restart" would just count raw noise.
	if j := s.policy.RestartJump; j > 0 && s.policy.Smoothing != None {
		if cur, _ := s.current(t); !math.IsNaN(cur) && cur != 0 &&
			math.Abs(est-cur) > j*math.Abs(cur) {
			s.reset()
			s.restarts++
		}
	}
	switch s.policy.Smoothing {
	case Window:
		if s.vals == nil {
			s.vals = make([]float64, s.policy.Window)
			s.times = make([]float64, s.policy.Window)
		}
		if s.count == len(s.vals) {
			// Full: overwrite the oldest slot and advance the head.
			s.vals[s.head] = est
			s.times[s.head] = t
			s.head = (s.head + 1) % len(s.vals)
		} else {
			idx := (s.head + s.count) % len(s.vals)
			s.vals[idx] = est
			s.times[idx] = t
			s.count++
		}
	case EWMA:
		if !s.valid {
			s.value, s.age = est, 0
		} else {
			a := s.policy.Alpha
			s.value = a*est + (1-a)*s.value
			s.age = (1 - a) * (s.age + (t - s.last))
		}
		s.last, s.valid = t, true
	default: // None
		s.value, s.age, s.last, s.valid = est, 0, t, true
	}
}

// Run replays the trace for every estimator on the shared Config
// cadence and policy — the single-cadence entry point, equivalent to
// RunScheduled with all-zero Instance overrides.
func Run(instances []core.Estimator, net *overlay.Network, tr *trace.Trace, cfg Config, newRNG func() *xrand.Rand, workers int) (*Result, error) {
	sched := make([]Instance, len(instances))
	for k, e := range instances {
		sched[k] = Instance{Estimator: e}
	}
	return RunScheduled(sched, net, tr, cfg, newRNG, workers)
}

// maxSamples bounds one instance's schedule length. A pathologically
// tiny (but positive and finite) cadence would otherwise overflow the
// float→int conversion below — int(1e300) is undefined and lands on
// minInt, turning a bad input into a makeslice panic instead of an
// error. Any real run is orders of magnitude below this.
const maxSamples = 1 << 30

// schedule returns one instance's sample times t = c, 2c, ... up to the
// horizon. The epsilon absorbs float division error (0.3/0.1 < 3) so an
// exact-multiple horizon never loses its final sample.
func schedule(cadence, horizon float64) ([]float64, error) {
	f := horizon/cadence + 1e-9
	if f > maxSamples {
		return nil, fmt.Errorf("monitor: cadence %g yields %.3g samples over horizon %g (max %d)",
			cadence, f, horizon, maxSamples)
	}
	out := make([]float64, int(f))
	for i := range out {
		out[i] = cadence * float64(i+1)
	}
	return out, nil
}

// unionGrid merges per-instance schedules into one ascending, exactly
// deduplicated time grid. Equal cadences produce bit-equal times (both
// compute cadence·i), so a shared-cadence run's grid is exactly the
// schedule the single-cadence monitor used.
func unionGrid(schedules [][]float64) []float64 {
	total := 0
	for _, s := range schedules {
		total += len(s)
	}
	grid := make([]float64, 0, total)
	for _, s := range schedules {
		grid = append(grid, s...)
	}
	sort.Float64s(grid)
	dedup := grid[:0]
	for i, t := range grid {
		if i == 0 || t != dedup[len(dedup)-1] {
			dedup = append(dedup, t)
		}
	}
	return dedup
}

// resolveSchedules validates the instances and resolves each one's
// cadence, smoothing policy and sample schedule over the horizon — the
// shared front half of RunScheduled and RunLive.
func resolveSchedules(instances []Instance, cfg Config, horizon float64) (cadences []float64, policies []Policy, schedules [][]float64, err error) {
	if len(instances) == 0 {
		return nil, nil, nil, errors.New("monitor: Run needs at least one estimator")
	}
	cadences = make([]float64, len(instances))
	policies = make([]Policy, len(instances))
	schedules = make([][]float64, len(instances))
	for k, in := range instances {
		if in.Estimator == nil {
			return nil, nil, nil, fmt.Errorf("monitor: instance %d has a nil estimator", k)
		}
		c := in.Cadence
		if c == 0 {
			c = cfg.Cadence
		}
		// NaN passes every ordered comparison and Inf makes an empty
		// schedule with a huge division result, so require a finite
		// positive value explicitly (the same class of check
		// trace.Validate applies to event times).
		if !(c > 0) || math.IsInf(c, 1) {
			return nil, nil, nil, fmt.Errorf("monitor: instance %d (%s) cadence %g must be positive and finite",
				k, in.Estimator.Name(), c)
		}
		cadences[k] = c
		sched, err := schedule(c, horizon)
		if err != nil {
			return nil, nil, nil, err
		}
		schedules[k] = sched
		if len(schedules[k]) == 0 {
			return nil, nil, nil, fmt.Errorf("monitor: instance %d (%s) cadence %g longer than the trace horizon %g",
				k, in.Estimator.Name(), c, horizon)
		}
		if in.Policy != nil {
			policies[k] = *in.Policy
		} else {
			policies[k] = cfg.Policy
		}
	}
	return cadences, policies, schedules, nil
}

// RunScheduled replays the trace on copy-on-write clones of net (net is
// the shared immutable base; each clone pays only for the churn it
// replays) and samples every instance on its own cadence. The result's
// time grid is the union of all instance schedules: every instance
// records the true size, its served value and its staleness at every
// grid tick, but estimates only at its own scheduled times — so mixed
// cadences stay directly comparable, point for point.
//
// Instances map onto clones per Config.Replay: one clone and one
// replay per instance by default, or — in shared mode — one per replay
// group (read-only instances folded by cadence, mutating instances
// alone; see replayGroups). Group members estimate sequentially at each
// tick in instance order, and each member's traffic is metered as the
// group counter's delta around its Estimate call, so Messages is
// identical in both modes (the replay itself meters nothing).
//
// newRNG must return a fresh, identically seeded generator on every
// call (it drives the replay's join wiring), so all clones see the
// identical membership trajectory; replay determinism makes the
// trajectory independent of where an instance's schedule stops along
// the way. The overlay itself is left unmutated and per-group message
// counts are merged into its counter in group order (instance order in
// the default mode). Output is byte-identical at every worker count and
// in both replay modes.
func RunScheduled(instances []Instance, net *overlay.Network, tr *trace.Trace, cfg Config, newRNG func() *xrand.Rand, workers int) (*Result, error) {
	cadences, policies, schedules, err := resolveSchedules(instances, cfg, tr.Horizon)
	if err != nil {
		return nil, err
	}
	grid := unionGrid(schedules)
	groups := replayGroups(instances, cadences, cfg.Replay)
	type instOut struct {
		raw       []float64
		smoothed  []float64
		staleness []float64
		scheduled int
		failures  int
		restarts  int
		messages  uint64
	}
	type groupOut struct {
		trueSizes []float64
		insts     []instOut // parallel to the group's member list
		counter   *metrics.Counter
	}
	outs, err := parallel.Map(workers, len(groups), func(gi int) (groupOut, error) {
		members := groups[gi]
		clone := net.CloneCOW()
		player, err := trace.NewPlayer(tr, clone)
		if err != nil {
			return groupOut{}, err
		}
		rng := newRNG()
		counter := clone.Counter()
		o := groupOut{counter: counter, insts: make([]instOut, len(members))}
		sms := make([]*smoother, len(members))
		next := make([]int, len(members)) // cursors into each member's own schedule
		for mi, k := range members {
			sms[mi] = newSmoother(policies[k])
		}
		for _, t := range grid {
			player.AdvanceTo(clone, t, rng)
			o.trueSizes = append(o.trueSizes, float64(clone.Size()))
			for mi, k := range members {
				m := &o.insts[mi]
				sched := schedules[k]
				due := next[mi] < len(sched) && sched[next[mi]] == t
				if !due {
					m.raw = append(m.raw, math.NaN())
				} else {
					next[mi]++
					m.scheduled++
					before := counter.Snapshot()
					est, err := instances[k].Estimator.Estimate(clone)
					m.messages += counter.DiffTotal(before)
					if err != nil {
						m.failures++
						m.raw = append(m.raw, math.NaN())
					} else {
						sms[mi].add(est, t)
						m.raw = append(m.raw, est)
					}
				}
				served, stale := sms[mi].current(t)
				m.smoothed = append(m.smoothed, served)
				m.staleness = append(m.staleness, stale)
			}
		}
		for mi := range members {
			o.insts[mi].restarts = sms[mi].restarts
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Names:     make([]string, len(instances)),
		Policy:    cfg.Policy.normalized(),
		Policies:  make([]Policy, len(instances)),
		Cadences:  cadences,
		Scheduled: make([]int, len(instances)),
		Horizon:   tr.Horizon,
		Times:     grid,
		Raw:       make([][]float64, len(instances)),
		Smoothed:  make([][]float64, len(instances)),
		Staleness: make([][]float64, len(instances)),
		Failures:  make([]int, len(instances)),
		Restarts:  make([]int, len(instances)),
		Messages:  make([]uint64, len(instances)),
		Replay:    cfg.Replay,
		Groups:    len(groups),
	}
	res.TrueSizes = outs[0].trueSizes
	for gi, o := range outs {
		// Every group's clone must have replayed the identical
		// trajectory; a divergence means newRNG violated its contract.
		for i := range o.trueSizes {
			if o.trueSizes[i] != outs[0].trueSizes[i] {
				return nil, fmt.Errorf("monitor: trace replay diverged at group %d (instance %d), t=%g (%g != %g); newRNG must return identically seeded generators",
					gi, groups[gi][0], res.Times[i], o.trueSizes[i], outs[0].trueSizes[i])
			}
		}
		for mi, k := range groups[gi] {
			m := o.insts[mi]
			res.Names[k] = instances[k].Estimator.Name()
			res.Policies[k] = policies[k].normalized()
			res.Scheduled[k] = m.scheduled
			res.Raw[k] = m.raw
			res.Smoothed[k] = m.smoothed
			res.Staleness[k] = m.staleness
			res.Failures[k] = m.failures
			res.Restarts[k] = m.restarts
			res.Messages[k] = m.messages
		}
		net.Counter().Merge(o.counter)
	}
	return res, nil
}

// MAE returns instance k's mean absolute tracking error |served − true|
// over the samples where it had a value to serve.
func (r *Result) MAE(k int) float64 {
	sum, n := 0.0, 0
	for i, est := range r.Smoothed[k] {
		if math.IsNaN(est) {
			continue
		}
		sum += math.Abs(est - r.TrueSizes[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// MAPE returns instance k's mean absolute percentage tracking error,
// mean |served/true − 1|·100, over the samples where it had a value.
func (r *Result) MAPE(k int) float64 {
	sum, n := 0.0, 0
	for i, est := range r.Smoothed[k] {
		if math.IsNaN(est) || r.TrueSizes[i] == 0 {
			continue
		}
		sum += math.Abs(est/r.TrueSizes[i]-1) * 100
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// MeanStaleness returns instance k's mean data age across all samples.
func (r *Result) MeanStaleness(k int) float64 {
	if len(r.Staleness[k]) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, a := range r.Staleness[k] {
		sum += a
	}
	return sum / float64(len(r.Staleness[k]))
}

// MsgsPerTime returns instance k's protocol traffic per simulated time
// unit — the budget a deployment would pay to keep the estimate fresh
// at this cadence.
func (r *Result) MsgsPerTime(k int) float64 {
	return float64(r.Messages[k]) / r.Horizon
}
