// Package parallel is the deterministic worker pool behind the experiment
// harness. The paper's evaluation is embarrassingly parallel — repeated
// estimation runs, concurrent estimation instances, independent table rows
// — but naive fan-out destroys the simulator's core guarantee that equal
// seeds give byte-identical output.
//
// The pool restores that guarantee by construction:
//
//   - Work is addressed by index. fn(i) must depend only on i (each run
//     derives its own xrand stream from the experiment seed and i), never
//     on scheduling order or shared mutable state.
//   - Results are collected into slot i of the output slice, so the
//     assembled result is independent of which worker ran which index.
//   - When several indices fail, the error of the lowest index is
//     returned — the same error a sequential loop would have hit first —
//     so even failures are identical at every worker count.
//
// Under those rules Map(1, n, fn) and Map(16, n, fn) are byte-identical,
// which the experiment determinism tests assert end to end.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Resolve maps a workers setting to a concrete pool size: 0 (the default
// everywhere in the harness) means runtime.NumCPU(), negative values and
// 1 mean sequential execution.
func Resolve(workers int) int {
	if workers == 0 {
		return runtime.NumCPU()
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// Shard sizing for intra-round sweeps: below MinShardNodes per shard
// the per-node work is too cheap to amortize a goroutine, and past
// MaxShards the ordered cross-shard fix-up passes start to dominate.
// MaxConfigShards bounds even explicit settings: the sweeps stamp
// ownership into uint16 tags and keep S×S deferral buckets, so an
// unbounded shard count would overflow the tags (racing the sweep) long
// after the buckets stopped making sense.
const (
	MinShardNodes   = 4096
	MaxShards       = 16
	MaxConfigShards = 1024
)

// Shards resolves a protocol's Shards setting for a sweep over n items:
// 0 picks one shard per MinShardNodes (at most MaxShards), explicit
// settings win, and the result is clamped to [1, n]. It is a pure
// function of (cfg, n) — never of worker count — because the shard
// count is part of the sharded algorithms' output, while workers only
// shape scheduling.
func Shards(cfg, n int) int {
	s := cfg
	if s == 0 {
		s = n / MinShardNodes
		if s > MaxShards {
			s = MaxShards
		}
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// RoundRobinPairs returns the circle-method tournament schedule for n
// players: a list of rounds, each a list of disjoint [2]int pairs
// (a < b), covering every unordered pair exactly once across rounds.
// The sharded round sweeps use it to apply cross-shard work in
// parallel without races: within one tournament round no two pairs
// share a shard, and the schedule is a pure function of n, so
// processing order — and therefore output — is fixed at every worker
// count. n < 2 yields no rounds.
func RoundRobinPairs(n int) [][][2]int {
	m := n
	if m%2 == 1 {
		m++ // odd player counts get a bye slot
	}
	if m < 2 {
		return nil
	}
	players := make([]int, m)
	for i := range players {
		players[i] = i
	}
	rounds := make([][][2]int, 0, m-1)
	for r := 0; r < m-1; r++ {
		pairs := make([][2]int, 0, m/2)
		for i := 0; i < m/2; i++ {
			a, b := players[i], players[m-1-i]
			if a >= n || b >= n {
				continue // bye
			}
			if a > b {
				a, b = b, a
			}
			pairs = append(pairs, [2]int{a, b})
		}
		rounds = append(rounds, pairs)
		// Rotate everyone but players[0].
		last := players[m-1]
		copy(players[2:], players[1:m-1])
		players[1] = last
	}
	return rounds
}

// WorkerPanic is the panic value Map re-raises on the calling goroutine
// when fn(i) panicked inside the pool. Each panicking index is captured
// where it happened (the remaining indices still run), and the panic of
// the lowest index is re-raised — the same one a sequential loop would
// have hit first — so even crashes are identical at every worker count.
type WorkerPanic struct {
	// Index is the work index whose fn call panicked.
	Index int
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

func (p WorkerPanic) String() string {
	return fmt.Sprintf("parallel: panic at index %d: %v\n%s", p.Index, p.Value, p.Stack)
}

// Map runs fn(i) for every i in [0, n) on a pool of workers goroutines
// and returns the results ordered by index. fn must be safe for
// concurrent invocation across distinct indices and must derive any
// randomness from i alone; the output is then independent of the worker
// count. If any indices fail, the error of the lowest failing index is
// returned (all indices still run, so the choice of error is itself
// deterministic). A panicking fn never kills a pool goroutine silently:
// every index still runs, and the panic of the lowest panicking index is
// re-raised on the calling goroutine as a WorkerPanic.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	errs := make([]error, n)
	panics := make([]*WorkerPanic, n)
	runIndex := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				panics[i] = &WorkerPanic{Index: i, Value: v, Stack: string(debug.Stack())}
			}
		}()
		out[i], errs[i] = fn(i)
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			runIndex(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					runIndex(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, p := range panics {
		if p != nil {
			panic(*p)
		}
	}
	return out, firstError(errs)
}

// ForEach runs fn(i) for every i in [0, n) on a pool of workers
// goroutines, with the same contract as Map but no collected results.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
