package parallel

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"p2psize/internal/xrand"
)

// toyPair is the deferred payload of the test family below.
type toyPair struct{ u, v int32 }

// toyFamily is a minimal engine-driven protocol for the engine tests:
// n values, each visit draws a uniform partner and both sides average.
// It exercises every engine feature the real families use — meters,
// ownership, deferral, resolution — with arithmetic simple enough that
// divergence is unambiguous.
type toyFamily struct {
	vals   []float64
	msgs   uint64
	engine RoundEngine[toyPair]
}

func newToy(n int) *toyFamily {
	f := &toyFamily{vals: make([]float64, n)}
	for i := range f.vals {
		f.vals[i] = float64(i)
	}
	return f
}

func (f *toyFamily) apply(u, v int32) {
	m := (f.vals[u] + f.vals[v]) / 2
	f.vals[u], f.vals[v] = m, m
}

func (f *toyFamily) sweep(visited *[]int32) *Sweep[toyPair] {
	n := len(f.vals)
	return &Sweep[toyPair]{
		N:       n,
		NumKeys: n,
		Key:     func(elem int32) int32 { return elem },
		Visit: func(sh *Shard[toyPair], elem int32, rng *xrand.Rand) error {
			if visited != nil {
				*visited = append(*visited, elem)
			}
			v := int32(rng.Intn(n))
			sh.Meters[0]++
			if t := sh.Owner(v); t == sh.Index {
				f.apply(elem, v)
			} else {
				sh.Defer(t, toyPair{u: elem, v: v})
			}
			return nil
		},
		Merge: func(sh *Shard[toyPair]) { f.msgs += sh.Meters[0] },
		Resolve: func(d toyPair, _ *xrand.Rand) error {
			f.apply(d.u, d.v)
			return nil
		},
	}
}

func runToy(t *testing.T, n, rounds int, cfg EngineConfig, seed uint64) ([]float64, uint64) {
	t.Helper()
	f := newToy(n)
	rng := xrand.New(seed)
	sw := f.sweep(nil)
	for r := 0; r < rounds; r++ {
		if err := f.engine.Round(rng, cfg, sw); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	return f.vals, f.msgs
}

// TestEngineDeterministicAcrossWorkers is the engine-level determinism
// suite: for both shuffle modes and shard counts 1/4/7, the output at
// workers 2 and 8 must be byte-identical to workers 1. It replaces the
// three per-family copies of this invariant as the first line of
// defense (the families keep their own end-to-end versions).
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	const n, rounds, seed = 1000, 3, 42
	for _, mode := range []ShuffleMode{ShuffleGlobal, ShuffleLocal} {
		for _, shards := range []int{1, 4, 7} {
			base, baseMsgs := runToy(t, n, rounds, EngineConfig{Shards: shards, Workers: 1, Shuffle: mode}, seed)
			for _, workers := range []int{2, 8} {
				got, gotMsgs := runToy(t, n, rounds, EngineConfig{Shards: shards, Workers: workers, Shuffle: mode}, seed)
				if gotMsgs != baseMsgs {
					t.Fatalf("%v shards=%d workers=%d: msgs %d != %d", mode, shards, workers, gotMsgs, baseMsgs)
				}
				for i := range base {
					if got[i] != base[i] {
						t.Fatalf("%v shards=%d workers=%d: vals diverge at %d", mode, shards, workers, i)
					}
				}
			}
		}
	}
}

// TestEngineGlobalShuffleIsLegacyDrawOrder pins the compatibility mode
// bit for bit: the sweep visits elements in exactly the order a manual
// Fisher–Yates shuffle on the protocol rng produces, and the protocol
// rng advances by exactly that shuffle plus one round-seed draw — the
// contract every frozen experiment checksum depends on.
func TestEngineGlobalShuffleIsLegacyDrawOrder(t *testing.T) {
	const n, seed = 257, 99
	f := newToy(n)
	var visited []int32
	rng := xrand.New(seed)
	if err := f.engine.Round(rng, EngineConfig{Shards: 1, Workers: 1}, f.sweep(&visited)); err != nil {
		t.Fatal(err)
	}
	legacy := xrand.New(seed)
	want := make([]int32, n)
	for i := range want {
		want[i] = int32(i)
	}
	legacy.Shuffle(n, func(i, j int) { want[i], want[j] = want[j], want[i] })
	_ = legacy.Uint64() // the round seed
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visit order diverges from the legacy shuffle at %d: got %d want %d", i, visited[i], want[i])
		}
	}
	if rng.Uint64() != legacy.Uint64() {
		t.Fatal("protocol rng advanced differently from the legacy shuffle+seed sequence")
	}
}

// TestEngineLocalShuffleRngCost pins the Amdahl fix: in ShuffleLocal
// mode the protocol rng pays exactly one draw per round — the round
// seed — regardless of n, instead of the N-1 swap draws of the global
// shuffle.
func TestEngineLocalShuffleRngCost(t *testing.T) {
	const n, seed = 5000, 7
	f := newToy(n)
	rng := xrand.New(seed)
	if err := f.engine.Round(rng, EngineConfig{Shards: 4, Workers: 2, Shuffle: ShuffleLocal}, f.sweep(nil)); err != nil {
		t.Fatal(err)
	}
	ref := xrand.New(seed)
	_ = ref.Uint64() // the round seed
	if rng.Uint64() != ref.Uint64() {
		t.Fatal("ShuffleLocal must cost exactly one protocol-rng draw per round")
	}
}

// TestEngineLocalShuffleCoversEverySegment checks that ShuffleLocal
// still sweeps every element exactly once, permuted within its own
// segment: positions [s·n/S, (s+1)·n/S) hold exactly the elements of
// that slice of the ascending base order.
func TestEngineLocalShuffleCoversEverySegment(t *testing.T) {
	const n, shards, seed = 1003, 4, 5
	f := newToy(n)
	var visited []int32
	rng := xrand.New(seed)
	cfg := EngineConfig{Shards: shards, Workers: 1, Shuffle: ShuffleLocal}
	if err := f.engine.Round(rng, cfg, f.sweep(&visited)); err != nil {
		t.Fatal(err)
	}
	if len(visited) != n {
		t.Fatalf("visited %d of %d elements", len(visited), n)
	}
	// Workers=1 sweeps shards in order, so visited is segment-major.
	for s := 0; s < shards; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		seen := make(map[int32]bool, hi-lo)
		for _, e := range visited[lo:hi] {
			if e < int32(lo) || e >= int32(hi) {
				t.Fatalf("shard %d visited element %d outside its segment [%d,%d)", s, e, lo, hi)
			}
			if seen[e] {
				t.Fatalf("shard %d visited element %d twice", s, e)
			}
			seen[e] = true
		}
	}
}

// TestEnginePanicFailsRoundLoudly is the satellite bugfix test: a
// panicking shard action must crash the round with a WorkerPanic
// carrying the original value — never be swallowed by the worker pool —
// at every worker count.
func TestEnginePanicFailsRoundLoudly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("workers=%d: panicking Visit did not fail the round", workers)
				}
				wp, ok := v.(WorkerPanic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want WorkerPanic", workers, v)
				}
				if wp.Value != "toy boom" {
					t.Fatalf("workers=%d: panic value %v, want toy boom", workers, wp.Value)
				}
				if !strings.Contains(wp.String(), "toy boom") {
					t.Fatalf("workers=%d: WorkerPanic.String() lost the value: %q", workers, wp.String())
				}
			}()
			f := newToy(100)
			sw := f.sweep(nil)
			inner := sw.Visit
			sw.Visit = func(sh *Shard[toyPair], elem int32, rng *xrand.Rand) error {
				if elem == 57 {
					panic("toy boom")
				}
				return inner(sh, elem, rng)
			}
			_ = f.engine.Round(xrand.New(1), EngineConfig{Shards: 4, Workers: workers}, sw)
			t.Fatalf("workers=%d: round returned normally", workers)
		}()
	}
}

// TestEngineErrorAborts: a Visit or Resolve error aborts the round and
// is returned at every worker count.
func TestEngineErrorAborts(t *testing.T) {
	boom := errors.New("visit failed")
	for _, workers := range []int{1, 4} {
		f := newToy(100)
		sw := f.sweep(nil)
		inner := sw.Visit
		sw.Visit = func(sh *Shard[toyPair], elem int32, rng *xrand.Rand) error {
			if elem == 31 {
				return boom
			}
			return inner(sh, elem, rng)
		}
		if err := f.engine.Round(xrand.New(1), EngineConfig{Shards: 4, Workers: workers}, sw); !errors.Is(err, boom) {
			t.Fatalf("workers=%d: Visit error not propagated: %v", workers, err)
		}
		f = newToy(100)
		sw = f.sweep(nil)
		sw.Resolve = func(d toyPair, _ *xrand.Rand) error { return boom }
		if err := f.engine.Round(xrand.New(1), EngineConfig{Shards: 4, Workers: workers}, sw); !errors.Is(err, boom) {
			t.Fatalf("workers=%d: Resolve error not propagated: %v", workers, err)
		}
	}
}

// TestEngineWarmBuffersStable is the footprint regression test: once an
// engine has run a round at a given size, repeat rounds must reuse every
// scratch buffer — sweep order, ownership table, shard states, deferral
// buckets, tournament schedule — without reallocating.
func TestEngineWarmBuffersStable(t *testing.T) {
	const n, shards = 20000, 4
	f := newToy(n)
	rng := xrand.New(3)
	cfg := EngineConfig{Shards: shards, Workers: 1}
	sw := f.sweep(nil)
	// Two warmup rounds reach the high-water marks.
	for r := 0; r < 2; r++ {
		if err := f.engine.Round(rng, cfg, sw); err != nil {
			t.Fatal(err)
		}
	}
	e := &f.engine
	order0, owner0, shards0 := &e.order[0], &e.ownerOf[0], &e.shards[0]
	defCaps := make([][]int, shards)
	for s := range e.shards {
		for ti := range e.shards[s].def {
			defCaps[s] = append(defCaps[s], cap(e.shards[s].def[ti]))
		}
	}
	sched0 := &e.schedule[0]
	for r := 0; r < 5; r++ {
		if err := f.engine.Round(rng, cfg, sw); err != nil {
			t.Fatal(err)
		}
	}
	if &e.order[0] != order0 || &e.ownerOf[0] != owner0 || &e.shards[0] != shards0 {
		t.Fatal("warm engine reallocated a core scratch buffer")
	}
	if &e.schedule[0] != sched0 {
		t.Fatal("warm engine rebuilt the tournament schedule at a fixed shard count")
	}
	for s := range e.shards {
		for ti := range e.shards[s].def {
			if cap(e.shards[s].def[ti]) < defCaps[s][ti] {
				t.Fatalf("shard %d deferral bucket %d shrank below its high-water capacity", s, ti)
			}
		}
	}
	// And the per-round allocation count is O(shards), never O(n): only
	// the per-shard streams and the worker pool's bookkeeping allocate.
	allocs := testing.AllocsPerRun(5, func() {
		if err := f.engine.Round(rng, cfg, sw); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 64 {
		t.Fatalf("warm round allocates %.0f times; scratch buffers are leaking", allocs)
	}
}

// TestEngineDegenerateGeometry pins the edge cases all three families
// now share: n=0 is a no-op that leaves the protocol rng untouched,
// n=1 runs one visit, and Shards > n clamps to n shards — each
// deterministic across worker counts and identical in both modes'
// contract (mode only changes draws, never legality).
func TestEngineDegenerateGeometry(t *testing.T) {
	for _, mode := range []ShuffleMode{ShuffleGlobal, ShuffleLocal} {
		// n = 0: nothing runs, no draw is consumed.
		f := newToy(0)
		rng := xrand.New(11)
		if err := f.engine.Round(rng, EngineConfig{Shards: 4, Shuffle: mode}, f.sweep(nil)); err != nil {
			t.Fatalf("%v n=0: %v", mode, err)
		}
		if got, want := rng.Uint64(), xrand.New(11).Uint64(); got != want {
			t.Fatalf("%v n=0: protocol rng was advanced", mode)
		}
		// n = 1: exactly one visit.
		var visited []int32
		f = newToy(1)
		if err := f.engine.Round(xrand.New(11), EngineConfig{Shards: 4, Shuffle: mode}, f.sweep(&visited)); err != nil {
			t.Fatalf("%v n=1: %v", mode, err)
		}
		if len(visited) != 1 || visited[0] != 0 {
			t.Fatalf("%v n=1: visited %v, want [0]", mode, visited)
		}
		// n < Shards: clamps, still visits everyone exactly once, and
		// stays worker-invariant.
		const n = 3
		base, baseMsgs := runToy(t, n, 2, EngineConfig{Shards: 7, Workers: 1, Shuffle: mode}, 11)
		got, gotMsgs := runToy(t, n, 2, EngineConfig{Shards: 7, Workers: 8, Shuffle: mode}, 11)
		if gotMsgs != baseMsgs || fmt.Sprint(got) != fmt.Sprint(base) {
			t.Fatalf("%v n<Shards: workers changed output", mode)
		}
		if baseMsgs != 2*n {
			t.Fatalf("%v n<Shards: %d visits metered, want %d", mode, baseMsgs, 2*n)
		}
	}
}

// TestEngineSingleShardDrainsStaleDeferrals guards the bucket-reuse
// trap: after a multi-shard round leaves deferral buckets at their
// high-water sizes, a later single-shard round on the same engine must
// read DeferredTotal() == 0, not the previous round's leftovers.
func TestEngineSingleShardDrainsStaleDeferrals(t *testing.T) {
	f := newToy(1000)
	rng := xrand.New(17)
	sw := f.sweep(nil)
	if err := f.engine.Round(rng, EngineConfig{Shards: 4, Workers: 1}, sw); err != nil {
		t.Fatal(err)
	}
	maxDeferred := 0
	inner := sw.Merge
	sw.Merge = func(sh *Shard[toyPair]) {
		if d := sh.DeferredTotal(); d > maxDeferred {
			maxDeferred = d
		}
		inner(sh)
	}
	if err := f.engine.Round(rng, EngineConfig{Shards: 1, Workers: 1}, sw); err != nil {
		t.Fatal(err)
	}
	if maxDeferred != 0 {
		t.Fatalf("single-shard round saw %d stale deferred payloads", maxDeferred)
	}
}

// TestEnginePairStreams checks the tournament stream plumbing: with
// PairStreams set, every meeting's Resolve calls share one non-nil
// stream per meeting; without it, Resolve receives nil.
func TestEnginePairStreams(t *testing.T) {
	const n, shards = 1000, 4
	f := newToy(n)
	sw := f.sweep(nil)
	sawNil, sawStream := false, false
	sw.Resolve = func(d toyPair, rng *xrand.Rand) error {
		if rng == nil {
			sawNil = true
		} else {
			sawStream = true
		}
		f.apply(d.u, d.v)
		return nil
	}
	if err := f.engine.Round(xrand.New(23), EngineConfig{Shards: shards}, sw); err != nil {
		t.Fatal(err)
	}
	if !sawNil || sawStream {
		t.Fatal("PairStreams=false must hand Resolve a nil rng")
	}
	f = newToy(n)
	sw = f.sweep(nil)
	sawNil, sawStream = false, false
	sw.PairStreams = true
	base := sw.Resolve
	sw.Resolve = func(d toyPair, rng *xrand.Rand) error {
		if rng == nil {
			sawNil = true
		} else {
			sawStream = true
		}
		return base(d, nil)
	}
	if err := f.engine.Round(xrand.New(23), EngineConfig{Shards: shards}, sw); err != nil {
		t.Fatal(err)
	}
	if sawNil || !sawStream {
		t.Fatal("PairStreams=true must hand Resolve the meeting stream")
	}
}

func TestParseShuffleMode(t *testing.T) {
	cases := []struct {
		in   string
		want ShuffleMode
		ok   bool
	}{
		{"", ShuffleGlobal, true},
		{"global", ShuffleGlobal, true},
		{"local", ShuffleLocal, true},
		{"localshuffle", ShuffleLocal, true},
		{"bogus", 0, false},
	}
	for _, c := range cases {
		got, err := ParseShuffleMode(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Fatalf("ParseShuffleMode(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Fatalf("ParseShuffleMode(%q) accepted", c.in)
		}
	}
	if ShuffleGlobal.String() != "global" || ShuffleLocal.String() != "local" {
		t.Fatal("ShuffleMode.String spellings drifted from the parser")
	}
}

func TestEngineConfigValidate(t *testing.T) {
	if err := (EngineConfig{Shards: MaxConfigShards}).Validate(); err != nil {
		t.Fatalf("max shard count rejected: %v", err)
	}
	if err := (EngineConfig{Shards: MaxConfigShards + 1}).Validate(); err == nil {
		t.Fatal("oversized shard count accepted")
	}
	if err := (EngineConfig{Shards: -1}).Validate(); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if err := (EngineConfig{Shuffle: ShuffleLocal + 1}).Validate(); err == nil {
		t.Fatal("unknown shuffle mode accepted")
	}
}

// TestMapPanicLowestIndex pins Map's panic contract directly: when
// several indices panic, the one re-raised is the lowest — the same
// crash a sequential loop would have hit first — at every worker count.
func TestMapPanicLowestIndex(t *testing.T) {
	for _, workers := range []int{1, 8} {
		func() {
			defer func() {
				wp, ok := recover().(WorkerPanic)
				if !ok || wp.Index != 2 {
					t.Fatalf("workers=%d: recovered %+v, want WorkerPanic at index 2", workers, wp)
				}
			}()
			_, _ = Map(workers, 40, func(i int) (int, error) {
				if i == 2 || i == 5 {
					panic(fmt.Sprintf("boom %d", i))
				}
				return i, nil
			})
			t.Fatalf("workers=%d: Map returned normally", workers)
		}()
	}
}
