// The sharded-round engine: the one deterministic driver behind every
// gossip family's round sweep (aggregation push-pull, push-sum, CYCLON
// shuffles — and any future family).
//
// A round prices a full sweep over the live nodes. The engine cuts the
// sweep order into Shards contiguous segments, each drawing from its own
// per-round xrand stream, and runs them on a worker pool. A shard applies
// an action immediately when both endpoints belong to its own segment —
// then no state is read or written by two shards — and defers it
// otherwise; deferred payloads are applied in a fixed round-robin
// tournament of shard pairs (RoundRobinPairs), within which no two
// meetings share a shard. The schedule is a pure function of the shard
// count, so the result depends only on (seed, config, overlay), never on
// Workers or goroutine scheduling.
//
// The shard count is part of the algorithm — changing it changes the
// draws — while Workers only shapes wall time. Both invariants, plus the
// race-freedom argument, live here once instead of once per family.
package parallel

import (
	"fmt"

	"p2psize/internal/xrand"
)

// ShuffleMode selects how the engine randomizes each round's sweep order.
type ShuffleMode uint8

const (
	// ShuffleGlobal is the compatibility mode: the protocol rng
	// Fisher–Yates-shuffles the full sweep order serially before the
	// shards fan out, reproducing the pre-engine draw order bit for bit
	// (every frozen experiment checksum holds). The O(N) serial prefix is
	// the sweep's Amdahl residue: it caps shard speedup no matter how
	// many cores the parallel phases get.
	ShuffleGlobal ShuffleMode = iota
	// ShuffleLocal removes the serial prefix: the sweep order is
	// partitioned deterministically (segment s owns positions
	// [s·n/S, (s+1)·n/S) of the ascending base order) and each shard
	// Fisher–Yates-shuffles its own segment on its per-round stream,
	// inside the parallel phase. The protocol rng pays one draw (the
	// round seed) instead of N−1 swaps. Draws differ from ShuffleGlobal —
	// the mode is part of the algorithm, like the shard count — but the
	// estimator is statistically equivalent (asserted by the families'
	// 30-run envelope tests).
	ShuffleLocal
)

// String returns the mode's selector spelling.
func (m ShuffleMode) String() string {
	switch m {
	case ShuffleGlobal:
		return "global"
	case ShuffleLocal:
		return "local"
	}
	return fmt.Sprintf("ShuffleMode(%d)", uint8(m))
}

// ParseShuffleMode resolves a selector spelling: "" and "global" give
// the compatibility mode, "local" and "localshuffle" the per-shard
// local-shuffle mode.
func ParseShuffleMode(s string) (ShuffleMode, error) {
	switch s {
	case "", "global":
		return ShuffleGlobal, nil
	case "local", "localshuffle":
		return ShuffleLocal, nil
	}
	return 0, fmt.Errorf("parallel: unknown shuffle mode %q (have global, local)", s)
}

// EngineConfig is the sharded-round knob set every engine-driven family
// embeds in its own Config: the shard count (part of the output), the
// worker cap (never part of the output), and the shuffle mode.
type EngineConfig struct {
	// Shards splits the sweep into this many segments; 0 auto-sizes
	// (one shard per MinShardNodes items, at most MaxShards).
	Shards int
	// Workers caps the goroutines executing one round's shards: 0 means
	// runtime.NumCPU(), 1 forces sequential execution.
	Workers int
	// Shuffle selects the sweep-order randomization (see ShuffleMode).
	Shuffle ShuffleMode
}

// Validate rejects out-of-range shard counts (the engine stamps
// ownership into uint16 tags, so an unbounded count would overflow them)
// and unknown shuffle modes.
func (c EngineConfig) Validate() error {
	if c.Shards < 0 || c.Shards > MaxConfigShards {
		return fmt.Errorf("Shards must be in [0, %d]", MaxConfigShards)
	}
	if c.Shuffle > ShuffleLocal {
		return fmt.Errorf("unknown shuffle mode %d", uint8(c.Shuffle))
	}
	return nil
}

// Shard is the per-shard face a Sweep's callbacks see: the shard's
// index, its protocol-defined meters, and the deferral buckets feeding
// the cross-shard tournament. D is the deferred-payload type.
type Shard[D any] struct {
	// Index is this shard's number in [0, Shards).
	Index int
	// Meters are two protocol-defined counters a Visit callback may
	// accumulate into (message counts, typically). The engine zeroes
	// them before a shard's sweep and hands them to Merge afterwards —
	// per shard in the parallel path, per item in the serial path, so
	// per-message fault pricing is preserved where it exists today.
	Meters [2]uint64
	def    [][]D
	// ownerOf is the round's shared ownership table (nil when the round
	// runs on a single shard and every key is trivially owned).
	ownerOf []uint16
}

// Owner returns the shard owning the given dense key this round.
func (sh *Shard[D]) Owner(key int32) int {
	if sh.ownerOf == nil {
		return sh.Index
	}
	return int(sh.ownerOf[key])
}

// Defer queues a payload for the tournament meeting {sh.Index, target}.
func (sh *Shard[D]) Defer(target int, d D) {
	sh.def[target] = append(sh.def[target], d)
}

// DeferredTotal returns how many payloads this shard has deferred so
// far this round (families that meter deferred work — CYCLON's shuffle
// replies — fold it into their Merge).
func (sh *Shard[D]) DeferredTotal() int {
	total := 0
	for t := range sh.def {
		total += len(sh.def[t])
	}
	return total
}

// Sweep describes one family's round to the engine: the sweep size, the
// ownership mapping, and the three protocol callbacks. All randomness
// inside the callbacks must come from the *xrand.Rand they are handed —
// never from shared state — for the engine's determinism guarantee to
// hold.
type Sweep[D any] struct {
	// N is the number of sweep items this round (live nodes, members).
	N int
	// NumKeys sizes the dense ownership table; Key must return values
	// in [0, NumKeys).
	NumKeys int
	// Key maps a base-order element (an int32 in [0, N)) to the dense
	// key — typically a node ID — whose ownership decides immediate
	// versus deferred application.
	Key func(elem int32) int32
	// Visit processes one sweep element on the owning shard's stream:
	// draw, meter into sh.Meters, then either apply immediately (when
	// sh.Owner(key) == sh.Index for every touched key) or sh.Defer the
	// payload. A non-nil error aborts the round and is returned by
	// Round; a panic is re-raised on Round's caller.
	Visit func(sh *Shard[D], elem int32, rng *xrand.Rand) error
	// Merge flushes a shard's meters into the protocol's counters. The
	// engine calls it serially in shard order after the parallel phase;
	// in the single-shard path it is called after every item instead,
	// preserving per-message fault pricing (SendN(kind, 1) ≡ Send(kind)).
	Merge func(sh *Shard[D])
	// Resolve applies one deferred payload during the tournament. rng is
	// the meeting's pair stream when PairStreams is set, nil otherwise.
	Resolve func(d D, rng *xrand.Rand) error
	// PairStreams gives each tournament meeting {a, b} its own
	// deterministic stream (stream index Shards + a·Shards + b) for
	// families whose deferred work draws randomness (CYCLON).
	PairStreams bool
}

// RoundEngine drives a family's sharded rounds. The zero value is ready
// to use; the engine owns the scratch buffers (sweep order, ownership
// table, shard states, tournament schedule) and keeps them at their
// high-water size, so a warm engine allocates nothing per round.
//
// An engine is not safe for concurrent rounds; each protocol instance
// owns one.
type RoundEngine[D any] struct {
	order   []int32    // scratch: sweep order, permuted per mode
	ownerOf []uint16   // scratch: shard owning each key this round
	shards  []Shard[D] // scratch: per-shard state

	schedN   int        // shard count the memoized schedule was built for
	schedule [][][2]int // memoized RoundRobinPairs(schedN)
}

// Round executes one sharded round: deterministic partition of the
// sweep, ownership prepass, parallel in-shard sweep, ordered meter
// merge, and the cross-shard tournament. rng is the protocol rng; it
// advances identically at every shard count (ShuffleGlobal: one full
// shuffle plus one seed draw; ShuffleLocal: one seed draw), and
// everything downstream derives from per-(seed, shard) streams, so the
// output is byte-identical at every cfg.Workers setting.
//
// The first callback error aborts the round and is returned; a callback
// panic is re-raised on the caller (see WorkerPanic). Both surface at
// every worker count, at the lowest failing shard.
func (e *RoundEngine[D]) Round(rng *xrand.Rand, cfg EngineConfig, sw *Sweep[D]) error {
	n := sw.N
	if n == 0 {
		return nil
	}
	if cap(e.order) < n {
		e.order = make([]int32, n)
	}
	e.order = e.order[:n]
	for i := range e.order {
		e.order[i] = int32(i)
	}
	shards := Shards(cfg.Shards, n)
	if cfg.Shuffle == ShuffleGlobal {
		// The serial prefix: every per-shard draw below comes from
		// streams of the one roundSeed draw that follows, so the
		// protocol rng advances identically at every shard count.
		rng.Shuffle(n, func(i, j int) { e.order[i], e.order[j] = e.order[j], e.order[i] })
	}
	roundSeed := rng.Uint64()

	for len(e.shards) < shards {
		e.shards = append(e.shards, Shard[D]{})
	}

	if shards == 1 {
		sh := &e.shards[0]
		sh.Index = 0
		sh.ownerOf = nil
		// Drain buckets a previous multi-shard round may have left at
		// their high-water size, so DeferredTotal reads zero.
		for t := range sh.def {
			sh.def[t] = sh.def[t][:0]
		}
		srng := xrand.NewStream(roundSeed, 0)
		if cfg.Shuffle == ShuffleLocal {
			srng.Shuffle(n, func(i, j int) { e.order[i], e.order[j] = e.order[j], e.order[i] })
		}
		for _, elem := range e.order {
			sh.Meters = [2]uint64{}
			if err := sw.Visit(sh, elem, srng); err != nil {
				return err
			}
			if sw.Merge != nil {
				sw.Merge(sh)
			}
		}
		return nil
	}

	if cap(e.ownerOf) < sw.NumKeys {
		e.ownerOf = make([]uint16, sw.NumKeys)
	}
	e.ownerOf = e.ownerOf[:sw.NumKeys]
	// Ownership prepass, parallel: each shard stamps the keys of its own
	// segment (distinct entries, so no write is shared). Segment bounds
	// are fixed by (n, shards) alone, and an intra-segment shuffle keeps
	// membership intact, so the stamps stay valid in ShuffleLocal mode.
	if err := ForEach(cfg.Workers, shards, func(s int) error {
		for i := s * n / shards; i < (s+1)*n/shards; i++ {
			e.ownerOf[sw.Key(e.order[i])] = uint16(s)
		}
		return nil
	}); err != nil {
		return err
	}
	// Phase 1, parallel: each shard sweeps its segment on its own
	// stream. Visit touches only state owned by the shard (immediate
	// application requires every endpoint to be shard-owned), so no
	// state is read or written by two shards and Workers only shape
	// scheduling.
	if err := ForEach(cfg.Workers, shards, func(s int) error {
		srng := xrand.NewStream(roundSeed, uint64(s))
		sh := &e.shards[s]
		sh.Index = s
		sh.Meters = [2]uint64{}
		sh.ownerOf = e.ownerOf
		for len(sh.def) < shards {
			sh.def = append(sh.def, nil)
		}
		for t := range sh.def {
			sh.def[t] = sh.def[t][:0]
		}
		lo, hi := s*n/shards, (s+1)*n/shards
		if cfg.Shuffle == ShuffleLocal {
			seg := e.order[lo:hi]
			srng.Shuffle(len(seg), func(i, j int) { seg[i], seg[j] = seg[j], seg[i] })
		}
		for i := lo; i < hi; i++ {
			if err := sw.Visit(sh, e.order[i], srng); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	// Meter merge in shard order (the totals are order-independent, the
	// fixed order keeps even intermediate states deterministic).
	if sw.Merge != nil {
		for s := 0; s < shards; s++ {
			sw.Merge(&e.shards[s])
		}
	}
	// Phase 2: the cross-shard tournament. Every meeting {a, b} only
	// touches state owned by a or b, and no tournament round repeats a
	// shard, so the meetings of one round run concurrently while the
	// application order stays fixed by the schedule.
	if e.schedN != shards {
		e.schedule = RoundRobinPairs(shards)
		e.schedN = shards
	}
	for _, round := range e.schedule {
		if err := ForEach(cfg.Workers, len(round), func(i int) error {
			a, b := round[i][0], round[i][1]
			var prng *xrand.Rand
			if sw.PairStreams {
				prng = xrand.NewStream(roundSeed, uint64(shards+a*shards+b))
			}
			for _, d := range e.shards[a].def[b] {
				if err := sw.Resolve(d, prng); err != nil {
					return err
				}
			}
			for _, d := range e.shards[b].def[a] {
				if err := sw.Resolve(d, prng); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}
