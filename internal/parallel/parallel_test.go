package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.NumCPU() {
		t.Fatalf("Resolve(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Resolve(-3); got != 1 {
		t.Fatalf("Resolve(-3) = %d, want 1", got)
	}
	if got := Resolve(7); got != 7 {
		t.Fatalf("Resolve(7) = %d, want 7", got)
	}
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		out, err := Map(workers, 50, func(i int) (int, error) {
			// Finish in scrambled wall-clock order to prove slot
			// assignment, not completion order, decides placement.
			time.Sleep(time.Duration((i*37)%5) * time.Millisecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map over 0 items: out=%v err=%v", out, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(workers, 40, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("boom at %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "boom at 3" {
			t.Fatalf("workers=%d: err = %v, want boom at 3", workers, err)
		}
	}
}

func TestMapRunsEveryIndexDespiteErrors(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(8, 100, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != 100 {
		t.Fatalf("ran %d of 100 indices; errors must not skip work", got)
	}
}

func TestForEach(t *testing.T) {
	hits := make([]atomic.Int64, 30)
	if err := ForEach(6, 30, func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d ran %d times", i, hits[i].Load())
		}
	}
	if err := ForEach(6, 30, func(i int) error {
		if i >= 10 {
			return fmt.Errorf("fail %d", i)
		}
		return nil
	}); err == nil || err.Error() != "fail 10" {
		t.Fatalf("err = %v, want fail 10", err)
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []int {
		out, err := Map(workers, 200, func(i int) (int, error) {
			return i*31 + 7, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, w := range []int{2, 3, 8, 64} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d diverges at %d", w, i)
			}
		}
	}
}

func TestShardsResolution(t *testing.T) {
	cases := []struct{ cfg, n, want int }{
		{0, 100, 1},
		{0, MinShardNodes * 2, 2},
		{0, 1 << 30, MaxShards},
		{3, 10, 3},
		{5, 2, 2},
		{-1, 100, 1},
	}
	for _, c := range cases {
		if got := Shards(c.cfg, c.n); got != c.want {
			t.Fatalf("Shards(%d, %d) = %d, want %d", c.cfg, c.n, got, c.want)
		}
	}
}

// TestRoundRobinPairs checks the tournament schedule's two contracts:
// every unordered pair meets exactly once, and no shard appears twice
// within one round (the property that makes cross-shard fix-up passes
// race-free).
func TestRoundRobinPairs(t *testing.T) {
	for n := 0; n <= 17; n++ {
		rounds := RoundRobinPairs(n)
		met := make(map[[2]int]bool)
		for _, round := range rounds {
			inRound := make(map[int]bool)
			for _, pr := range round {
				a, b := pr[0], pr[1]
				if a >= b || b >= n || a < 0 {
					t.Fatalf("n=%d: bad pair %v", n, pr)
				}
				if inRound[a] || inRound[b] {
					t.Fatalf("n=%d: shard reused within a round: %v", n, round)
				}
				inRound[a], inRound[b] = true, true
				if met[pr] {
					t.Fatalf("n=%d: pair %v scheduled twice", n, pr)
				}
				met[pr] = true
			}
		}
		if want := n * (n - 1) / 2; len(met) != want {
			t.Fatalf("n=%d: %d pairs scheduled, want %d", n, len(met), want)
		}
	}
}
