// Package latency adds the physical-network model the comparative study
// names as future work ("As part of future work, the physical network
// modeling would be an interesting goal and might provide new insights
// on the comparison") and uses it to check the §V conjecture the authors
// could not measure: "HopsSampling probably outperforms the other
// algorithms in terms of delay ... a gossip based broadcast and an
// immediate ACK response ... is very likely to be much shorter than the
// 50 rounds of Aggregation or the wait for 200 equivalent samples of
// Sample&Collide."
//
// Peers get coordinates in a unit square; the delay of a message between
// u and v is a propagation base plus their Euclidean distance. On top of
// that model the package computes per-algorithm estimation latencies:
//
//   - Sample&Collide: walks are sequential (a sample must return before
//     the collision count advances), so the latency is the sum of all
//     hop delays plus each sample's direct report back.
//   - HopsSampling: dissemination is concurrent; a node's poll arrival
//     time is its delay-weighted shortest-path distance from the
//     initiator (computed by Dijkstra — optimistic but tight for an
//     epidemic that retransmits), and the estimation completes when the
//     last probabilistic reply lands back.
//   - Aggregation: rounds are synchronous, so each round lasts one full
//     push-pull RTT of the slowest exchanging pair; the latency is
//     rounds × 2 × a high quantile of edge delays.
package latency

import (
	"container/heap"
	"errors"
	"math"

	"p2psize/internal/graph"
	"p2psize/internal/overlay"
	"p2psize/internal/samplecollide"
	"p2psize/internal/stats"
	"p2psize/internal/xrand"
)

// Model assigns a delay to a message between two peers.
type Model interface {
	// Delay returns the one-way message latency between u and v, > 0.
	Delay(u, v graph.NodeID) float64
}

// Euclidean places peers uniformly at random in the unit square and
// prices a message at Base + distance. With Base 0.01 and the square's
// mean distance ≈ 0.52, delays resemble a LAN floor plus wide-area
// spread.
type Euclidean struct {
	base float64
	x, y []float64
}

// NewEuclidean builds coordinates for ids [0, numIDs).
func NewEuclidean(numIDs int, base float64, rng *xrand.Rand) *Euclidean {
	if numIDs < 0 {
		panic("latency: negative numIDs")
	}
	if base < 0 {
		panic("latency: negative base delay")
	}
	if rng == nil {
		panic("latency: nil rng")
	}
	m := &Euclidean{base: base, x: make([]float64, numIDs), y: make([]float64, numIDs)}
	for i := 0; i < numIDs; i++ {
		m.x[i] = rng.Float64()
		m.y[i] = rng.Float64()
	}
	return m
}

// Grow extends the coordinate table for peers that joined after
// construction.
func (m *Euclidean) Grow(numIDs int, rng *xrand.Rand) {
	for len(m.x) < numIDs {
		m.x = append(m.x, rng.Float64())
		m.y = append(m.y, rng.Float64())
	}
}

// Delay returns base + Euclidean distance between u and v.
func (m *Euclidean) Delay(u, v graph.NodeID) float64 {
	dx := m.x[u] - m.x[v]
	dy := m.y[u] - m.y[v]
	return m.base + math.Sqrt(dx*dx+dy*dy)
}

// ShortestDelays runs Dijkstra over the overlay's links with delays from
// the model and returns per-node arrival times from src (+Inf where
// unreachable).
func ShortestDelays(net *overlay.Network, m Model, src graph.NodeID) []float64 {
	g := net.Graph()
	dist := make([]float64, g.NumIDs())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if !g.Alive(src) {
		return dist
	}
	dist[src] = 0
	pq := &delayHeap{{node: src, at: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(delayItem)
		if item.at > dist[item.node] {
			continue // stale entry
		}
		for _, v := range g.Neighbors(item.node) {
			if d := item.at + m.Delay(item.node, v); d < dist[v] {
				dist[v] = d
				heap.Push(pq, delayItem{node: v, at: d})
			}
		}
	}
	return dist
}

type delayItem struct {
	node graph.NodeID
	at   float64
}

type delayHeap []delayItem

func (h delayHeap) Len() int           { return len(h) }
func (h delayHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h delayHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)        { *h = append(*h, x.(delayItem)) }
func (h *delayHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	*h = old[:n-1]
	return out
}

// ErrEmptyOverlay is returned when no live peer can initiate.
var ErrEmptyOverlay = errors.New("latency: empty overlay")

// SampleCollide returns the wall-clock latency of one Sample&Collide
// estimation (timer T, l collisions) from a random initiator: the walks
// run one after another, each ending with a direct report whose cost is
// the straight-line delay back to the initiator.
func SampleCollide(net *overlay.Network, m Model, T float64, l int, rng *xrand.Rand) (float64, error) {
	initiator, ok := net.RandomPeer(rng)
	if !ok {
		return 0, ErrEmptyOverlay
	}
	seen := make(map[graph.NodeID]struct{}, 4*l)
	collisions := 0
	elapsed := 0.0
	for collisions < l {
		sample, walkDelay := timedWalk(net, m, initiator, T, rng)
		elapsed += walkDelay + m.Delay(sample, initiator)
		if _, dup := seen[sample]; dup {
			collisions++
		} else {
			seen[sample] = struct{}{}
		}
	}
	return elapsed, nil
}

// timedWalk mirrors the Sample&Collide CTRW but accumulates per-hop
// delays instead of metering messages.
func timedWalk(net *overlay.Network, m Model, initiator graph.NodeID, T float64, rng *xrand.Rand) (graph.NodeID, float64) {
	cur, ok := net.RandomNeighbor(initiator, rng)
	if !ok {
		return initiator, 0
	}
	delay := m.Delay(initiator, cur)
	t := T
	for {
		t -= rng.Exp(float64(net.Degree(cur)))
		if t <= 0 {
			return cur, delay
		}
		next, _ := net.RandomNeighbor(cur, rng)
		delay += m.Delay(cur, next)
		cur = next
	}
}

// HopsSampling returns the wall-clock latency of one HopsSampling poll
// from a random initiator: nodes hear the poll at their delay-weighted
// shortest-path time, repliers are drawn with the minHopsReporting
// probabilities over hop distances, and the estimation completes when
// the last reply reaches the initiator directly.
func HopsSampling(net *overlay.Network, m Model, gossipTo, minHops int, rng *xrand.Rand) (float64, error) {
	initiator, ok := net.RandomPeer(rng)
	if !ok {
		return 0, ErrEmptyOverlay
	}
	arrival := ShortestDelays(net, m, initiator)
	hops := graph.BFSDistances(net.Graph(), initiator)
	g := net.Graph()
	last := 0.0
	for i := 0; i < g.NumAlive(); i++ {
		id := g.AliveAt(i)
		if id == initiator || math.IsInf(arrival[id], 1) || hops[id] < 0 {
			continue
		}
		p := 1.0
		for h := int(hops[id]) - minHops; h > 0; h-- {
			p /= float64(gossipTo)
		}
		if !rng.Bernoulli(p) {
			continue
		}
		if done := arrival[id] + m.Delay(id, initiator); done > last {
			last = done
		}
	}
	return last, nil
}

// Aggregation returns the wall-clock latency of one Aggregation
// estimation: rounds × one synchronous push-pull RTT, where the round
// period accommodates the q-quantile slowest overlay link (q = 0.99
// reproduces a deployment that waits out stragglers; q = 1 is fully
// lock-step).
func Aggregation(net *overlay.Network, m Model, rounds int, quantile float64) (float64, error) {
	g := net.Graph()
	if g.NumAlive() == 0 {
		return 0, ErrEmptyOverlay
	}
	delays := make([]float64, 0, 2*g.NumEdges())
	for i := 0; i < g.NumAlive(); i++ {
		u := g.AliveAt(i)
		for _, v := range g.Neighbors(u) {
			if u < v {
				delays = append(delays, m.Delay(u, v))
			}
		}
	}
	if len(delays) == 0 {
		return 0, errors.New("latency: overlay has no links")
	}
	period := 2 * stats.Quantile(delays, quantile) // push + pull
	return float64(rounds) * period, nil
}

// Compare bundles the three latencies on one overlay with the paper's
// parameters (T=10, l, gossipTo=2, minHops=5, rounds), using independent
// rng streams per algorithm.
type Comparison struct {
	SampleCollide float64
	HopsSampling  float64
	Aggregation   float64
}

// CompareAll measures all three algorithms on the given overlay/model.
func CompareAll(net *overlay.Network, m Model, l, rounds int, rng *xrand.Rand) (Comparison, error) {
	var c Comparison
	var err error
	cfg := samplecollide.Default()
	if c.SampleCollide, err = SampleCollide(net, m, cfg.T, l, rng.Split()); err != nil {
		return c, err
	}
	if c.HopsSampling, err = HopsSampling(net, m, 2, 5, rng.Split()); err != nil {
		return c, err
	}
	if c.Aggregation, err = Aggregation(net, m, rounds, 0.99); err != nil {
		return c, err
	}
	return c, nil
}
