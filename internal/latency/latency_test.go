package latency

import (
	"errors"
	"math"
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

func hetNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

func TestEuclideanProperties(t *testing.T) {
	m := NewEuclidean(100, 0.01, xrand.New(1))
	for u := graph.NodeID(0); u < 100; u++ {
		for v := graph.NodeID(0); v < 100; v += 7 {
			d := m.Delay(u, v)
			if u != v && d <= 0 {
				t.Fatalf("Delay(%d,%d) = %g", u, v, d)
			}
			if got := m.Delay(v, u); got != d {
				t.Fatalf("asymmetric delay %g vs %g", d, got)
			}
			// Bounded by base + diagonal of the unit square.
			if d > 0.01+math.Sqrt2+1e-9 {
				t.Fatalf("delay %g beyond the square diagonal", d)
			}
		}
	}
	if m.Delay(3, 3) != 0.01 {
		t.Fatalf("self-delay should equal base, got %g", m.Delay(3, 3))
	}
}

func TestEuclideanValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative n":    func() { NewEuclidean(-1, 0.01, xrand.New(1)) },
		"negative base": func() { NewEuclidean(10, -0.5, xrand.New(1)) },
		"nil rng":       func() { NewEuclidean(10, 0.01, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEuclideanGrow(t *testing.T) {
	rng := xrand.New(2)
	m := NewEuclidean(5, 0.01, rng)
	m.Grow(10, rng)
	if d := m.Delay(2, 9); d <= 0 {
		t.Fatalf("Delay after Grow = %g", d)
	}
}

// lineModel makes delays equal to |u-v| for hand-checkable Dijkstra.
type lineModel struct{}

func (lineModel) Delay(u, v graph.NodeID) float64 {
	d := float64(u - v)
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0.5
	}
	return d
}

func TestShortestDelaysHandChecked(t *testing.T) {
	// Path 0-1-2-3 plus shortcut 0-3. With lineModel, going 0→3 direct
	// costs 3; going 0→1→2→3 costs 1+1+1 = 3 as well; add shortcut 0-2
	// (cost 2) so 0→2→3 costs 3 too. All equal: check exact values.
	g := graph.NewWithNodes(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 3)
	net := overlay.New(g, 10, nil)
	d := ShortestDelays(net, lineModel{}, 0)
	want := []float64{0, 1, 2, 3}
	for i, w := range want {
		if math.Abs(d[i]-w) > 1e-12 {
			t.Fatalf("d[%d] = %g, want %g", i, d[i], w)
		}
	}
}

func TestShortestDelaysUnreachable(t *testing.T) {
	g := graph.NewWithNodes(4)
	g.AddEdge(0, 1)
	// 2, 3 disconnected.
	net := overlay.New(g, 10, nil)
	d := ShortestDelays(net, lineModel{}, 0)
	if !math.IsInf(d[2], 1) || !math.IsInf(d[3], 1) {
		t.Fatalf("unreachable distances = %v", d)
	}
	// Dead source: everything unreachable.
	g.RemoveNode(0)
	d = ShortestDelays(net, lineModel{}, 0)
	for i, v := range d {
		if !math.IsInf(v, 1) {
			t.Fatalf("d[%d] = %g from dead source", i, v)
		}
	}
}

func TestShortestDelaysMatchBruteForce(t *testing.T) {
	// On a small random graph, Dijkstra must agree with Floyd-Warshall.
	const n = 40
	net := hetNet(n, 3)
	m := NewEuclidean(n, 0.01, xrand.New(4))
	g := net.Graph()
	const inf = math.MaxFloat64 / 4
	fw := make([][]float64, n)
	for i := range fw {
		fw[i] = make([]float64, n)
		for j := range fw[i] {
			if i == j {
				fw[i][j] = 0
			} else {
				fw[i][j] = inf
			}
		}
	}
	for u := graph.NodeID(0); int(u) < n; u++ {
		for _, v := range g.Neighbors(u) {
			fw[u][v] = m.Delay(u, v)
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if fw[i][k]+fw[k][j] < fw[i][j] {
					fw[i][j] = fw[i][k] + fw[k][j]
				}
			}
		}
	}
	d := ShortestDelays(net, m, 0)
	for j := 0; j < n; j++ {
		if fw[0][j] >= inf {
			if !math.IsInf(d[j], 1) {
				t.Fatalf("node %d should be unreachable", j)
			}
			continue
		}
		if math.Abs(d[j]-fw[0][j]) > 1e-9 {
			t.Fatalf("d[%d] = %g, Floyd-Warshall %g", j, d[j], fw[0][j])
		}
	}
}

func TestPaperDelayConjecture(t *testing.T) {
	// §V: gossip + immediate ACK should beat both the 50 rounds of
	// Aggregation and the 200 sequential samples of Sample&Collide.
	const n = 5000
	net := hetNet(n, 5)
	m := NewEuclidean(net.Graph().NumIDs(), 0.01, xrand.New(6))
	c, err := CompareAll(net, m, 200, 50, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !(c.HopsSampling < c.Aggregation) {
		t.Fatalf("conjecture violated: hops %.1f !< agg %.1f", c.HopsSampling, c.Aggregation)
	}
	if !(c.HopsSampling < c.SampleCollide) {
		t.Fatalf("conjecture violated: hops %.1f !< s&c %.1f", c.HopsSampling, c.SampleCollide)
	}
	// Sample&Collide's sequential walks dwarf everything (200·T·d̄ hops
	// in a row).
	if c.SampleCollide < c.Aggregation {
		t.Logf("note: s&c %.1f < agg %.1f (acceptable, both >> hops)", c.SampleCollide, c.Aggregation)
	}
}

func TestAggregationLatencyScalesWithRounds(t *testing.T) {
	net := hetNet(500, 8)
	m := NewEuclidean(net.Graph().NumIDs(), 0.01, xrand.New(9))
	a10, err := Aggregation(net, m, 10, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	a50, err := Aggregation(net, m, 50, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a50/a10-5) > 1e-9 {
		t.Fatalf("rounds scaling: %g / %g", a50, a10)
	}
}

func TestEmptyOverlayErrors(t *testing.T) {
	g := graph.NewWithNodes(1)
	g.RemoveNode(0)
	net := overlay.New(g, 10, nil)
	m := NewEuclidean(1, 0.01, xrand.New(10))
	if _, err := SampleCollide(net, m, 10, 5, xrand.New(11)); !errors.Is(err, ErrEmptyOverlay) {
		t.Fatalf("sc err = %v", err)
	}
	if _, err := HopsSampling(net, m, 2, 5, xrand.New(12)); !errors.Is(err, ErrEmptyOverlay) {
		t.Fatalf("hops err = %v", err)
	}
	if _, err := Aggregation(net, m, 50, 0.99); !errors.Is(err, ErrEmptyOverlay) {
		t.Fatalf("agg err = %v", err)
	}
}

func TestAggregationNoLinks(t *testing.T) {
	g := graph.NewWithNodes(3)
	net := overlay.New(g, 10, nil)
	m := NewEuclidean(3, 0.01, xrand.New(13))
	if _, err := Aggregation(net, m, 50, 0.99); err == nil {
		t.Fatal("linkless overlay accepted")
	}
}

func TestSampleCollideLatencyGrowsWithL(t *testing.T) {
	net := hetNet(2000, 14)
	m := NewEuclidean(net.Graph().NumIDs(), 0.01, xrand.New(15))
	l10, err := SampleCollide(net, m, 10, 10, xrand.New(16))
	if err != nil {
		t.Fatal(err)
	}
	l100, err := SampleCollide(net, m, 10, 100, xrand.New(16))
	if err != nil {
		t.Fatal(err)
	}
	if l100 <= l10 {
		t.Fatalf("latency did not grow with l: %g vs %g", l10, l100)
	}
}
