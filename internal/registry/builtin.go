package registry

// Built-in descriptors: the six estimator families the repo implements,
// registered in the paper's presentation order. StreamOffsets are part
// of the output-identity contract — the trace experiments seed instance
// rngs at seed+offset, and these values reproduce the pre-registry
// hand-rolled rosters bit for bit — so they are frozen: new families
// take fresh offsets, existing ones never move.

import (
	"errors"
	"fmt"

	"p2psize/internal/aggregation"
	"p2psize/internal/capturerecapture"
	"p2psize/internal/core"
	"p2psize/internal/dhtext"
	"p2psize/internal/hopssampling"
	"p2psize/internal/idspace"
	"p2psize/internal/overlay"
	"p2psize/internal/parallel"
	"p2psize/internal/polling"
	"p2psize/internal/pushsum"
	"p2psize/internal/randomtour"
	"p2psize/internal/samplecollide"
	"p2psize/internal/xrand"
)

func init() {
	MustRegister(Descriptor{
		Name:    "samplecollide",
		Aliases: []string{"sc", "sample-collide", "sample&collide"},
		Class:   "random-walk",
		Summary: "uniform sampling by continuous-time random walk + inverted birthday paradox (§III-A)",
		// Θ(√(2lN)·T·d̄) messages per estimation.
		CostHint:           30,
		CadenceHint:        1,
		SupportsDynamic:    true,
		SupportsMonitoring: true,
		SupportsTransport:  true,
		InDefaultSet:       true,
		StreamOffset:       10,
		New: func(_ *overlay.Network, rng *xrand.Rand, o Options) (core.Estimator, error) {
			cfg := samplecollide.Default()
			if o.SCTimer > 0 {
				cfg.T = o.SCTimer
			}
			if o.SCL > 0 {
				cfg.L = o.SCL
			}
			if o.SCMLE {
				cfg.Kind = samplecollide.MLE
			}
			return samplecollide.New(cfg, rng), nil
		},
	})
	MustRegister(Descriptor{
		Name:    "randomtour",
		Aliases: []string{"tour", "random-tour"},
		Class:   "random-walk",
		Summary: "return-time random walk (§II) — the baseline Sample&Collide was chosen over",
		// Θ(N·d̄/deg) messages per tour: the costliest family by far.
		CostHint:           100,
		CadenceHint:        1,
		SupportsDynamic:    true,
		SupportsMonitoring: true,
		SupportsTransport:  true,
		InDefaultSet:       true,
		StreamOffset:       11,
		New: func(_ *overlay.Network, rng *xrand.Rand, o Options) (core.Estimator, error) {
			cfg := randomtour.Default()
			if o.Tours > 0 {
				cfg.Tours = o.Tours
			}
			return randomtour.New(cfg, rng), nil
		},
	})
	MustRegister(Descriptor{
		Name:    "hopssampling",
		Aliases: []string{"hops", "hops-sampling"},
		Class:   "probabilistic-polling",
		Summary: "gossip a poll, count replies weighted by hop distance (§III-B)",
		// One gossip spread plus routed replies: ~4N messages.
		CostHint:           20,
		CadenceHint:        1,
		SupportsDynamic:    true,
		SupportsMonitoring: true,
		SupportsTransport:  true,
		InDefaultSet:       true,
		StreamOffset:       12,
		New: func(_ *overlay.Network, rng *xrand.Rand, o Options) (core.Estimator, error) {
			cfg := hopssampling.Default()
			if o.MinHops > 0 {
				cfg.MinHopsReporting = o.MinHops
			}
			return hopssampling.New(cfg, rng), nil
		},
	})
	MustRegister(Descriptor{
		Name:    "aggregation",
		Aliases: []string{"agg"},
		Class:   "epidemic",
		Summary: "push-pull averaging of a one-hot value; converges to 1/N everywhere (§III-C)",
		// N·rounds·2 messages per epoch — cheap per node, huge per
		// estimate, which is why its suggested monitoring cadence is 10x
		// the base tick.
		CostHint:           200,
		CadenceHint:        10,
		SupportsDynamic:    true,
		SupportsMonitoring: true,
		SupportsTransport:  true,
		InDefaultSet:       true,
		// Cyclon-backed in deployment: exchanges rewire views, so the
		// shared-replay monitor keeps it on a private clone.
		MutatesOverlay: true,
		StreamOffset:   13,
		New: func(_ *overlay.Network, rng *xrand.Rand, o Options) (core.Estimator, error) {
			if o.Shards < 0 || o.Shards > parallel.MaxConfigShards {
				return nil, fmt.Errorf("aggregation shards %d out of range [0, %d]", o.Shards, parallel.MaxConfigShards)
			}
			cfg := aggregation.Default()
			if o.Rounds > 0 {
				cfg.RoundsPerEpoch = o.Rounds
			}
			cfg.Shards = o.Shards
			cfg.Workers = o.Workers
			cfg.Shuffle = o.Shuffle
			return aggregation.NewEstimator(cfg, rng), nil
		},
	})
	MustRegister(Descriptor{
		Name:    "idspace",
		Aliases: []string{"id-density", "ids"},
		Class:   "structured",
		Summary: "identifier-density estimation on a structured ring (§II's interval-density class)",
		// k probes against a precomputed ring: the cheapest family, but
		// the ring is a membership snapshot, so it is unsound the moment
		// the overlay churns — hence no dynamic/monitoring support.
		CostHint:           5,
		CadenceHint:        1,
		SupportsDynamic:    false,
		SupportsMonitoring: false,
		StreamOffset:       14,
		New: func(net *overlay.Network, rng *xrand.Rand, o Options) (core.Estimator, error) {
			ring := o.Ring
			if ring == nil {
				if net == nil {
					return nil, errors.New("idspace needs an overlay (or a pre-built Options.Ring) to derive its identifier ring")
				}
				ring = idspace.NewRing(net, rng)
			}
			k := o.IDSamples
			if k == 0 {
				k = 200
			}
			return idspace.New(ring, k, rng), nil
		},
	})
	MustRegister(Descriptor{
		Name:    "polling",
		Aliases: []string{"poll"},
		Class:   "probabilistic-polling",
		Summary: "flood a probe, count replies sent with fixed probability (§II's plain polling)",
		// One flood plus ~pN routed replies.
		CostHint:           15,
		CadenceHint:        1,
		SupportsDynamic:    true,
		SupportsMonitoring: true,
		SupportsTransport:  true,
		StreamOffset:       15,
		New: func(_ *overlay.Network, rng *xrand.Rand, o Options) (core.Estimator, error) {
			cfg := polling.Default()
			if o.ResponseProb > 0 {
				cfg.ResponseProb = o.ResponseProb
			}
			return polling.New(cfg, rng), nil
		},
	})
	MustRegister(Descriptor{
		Name:    "pushsum",
		Aliases: []string{"push-sum", "ps"},
		Class:   "epidemic",
		Summary: "push half of a (sum, weight) pair to a random neighbor; sum/weight converges to N (Kempe et al., FOCS'03)",
		// N·rounds messages per epoch — half of push-pull's round price,
		// still an epoch per estimate, so it shares Aggregation's slow
		// suggested monitoring cadence.
		CostHint:           150,
		CadenceHint:        10,
		SupportsDynamic:    true,
		SupportsMonitoring: true,
		SupportsTransport:  true,
		// Same cyclon-backed epidemic class as aggregation: private clone.
		MutatesOverlay: true,
		StreamOffset:   16,
		New: func(_ *overlay.Network, rng *xrand.Rand, o Options) (core.Estimator, error) {
			if o.Shards < 0 || o.Shards > parallel.MaxConfigShards {
				return nil, fmt.Errorf("pushsum shards %d out of range [0, %d]", o.Shards, parallel.MaxConfigShards)
			}
			cfg := pushsum.Default()
			if o.Rounds > 0 {
				cfg.RoundsPerEpoch = o.Rounds
			}
			cfg.Shards = o.Shards
			cfg.Workers = o.Workers
			cfg.Shuffle = o.Shuffle
			return pushsum.NewEstimator(cfg, rng), nil
		},
	})
	MustRegister(Descriptor{
		Name:    "capturerecapture",
		Aliases: []string{"capture-recapture", "cr", "lincoln-petersen"},
		Class:   "random-walk",
		Summary: "mark a walk-sampled set, re-sample, extrapolate from the overlap (Lincoln–Petersen, Chapman-corrected)",
		// (Marks+Recaptures)·T·d̄ walk hops per estimation — fixed cost,
		// accuracy degrades (instead of cost growing) with N.
		CostHint:           25,
		CadenceHint:        1,
		SupportsDynamic:    true,
		SupportsMonitoring: true,
		SupportsTransport:  true,
		StreamOffset:       17,
		New: func(_ *overlay.Network, rng *xrand.Rand, o Options) (core.Estimator, error) {
			cfg := capturerecapture.Default()
			if o.Marks > 0 {
				cfg.Marks = o.Marks
			}
			if o.Recaptures > 0 {
				cfg.Recaptures = o.Recaptures
			}
			return capturerecapture.New(cfg, rng), nil
		},
	})
	MustRegister(Descriptor{
		Name:    "dht",
		Aliases: []string{"dhtext", "dht-density", "kclosest"},
		Class:   "structured",
		Summary: "extrapolate size from nearest-neighbor ID density over Kademlia k-closest sets (the IPFS crawlers' method)",
		// Probes·(log₂N + k) messages per estimation: cheap, and —
		// unlike idspace's snapshot ring — sound under churn, because
		// identifiers are hashed from stable node IDs.
		CostHint:           10,
		CadenceHint:        1,
		SupportsDynamic:    true,
		SupportsMonitoring: true,
		SupportsTransport:  true,
		StreamOffset:       18,
		New: func(_ *overlay.Network, rng *xrand.Rand, o Options) (core.Estimator, error) {
			cfg := dhtext.Default()
			if o.DHTK > 0 {
				if o.DHTK < 2 {
					return nil, errors.New("dht k-closest set size must be >= 2")
				}
				cfg.K = o.DHTK
			}
			if o.DHTProbes > 0 {
				cfg.Probes = o.DHTProbes
			}
			return dhtext.New(cfg, rng), nil
		},
	})
}
