package registry

import (
	"strings"
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

func testNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

// TestEveryDescriptorRoundTrips is the catalog's core guarantee: every
// registered name resolves to a descriptor whose factory builds a
// runnable estimator that produces a plausible estimate on a small
// overlay — name → factory → run, for all six built-in families.
func TestEveryDescriptorRoundTrips(t *testing.T) {
	const n = 600
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			d, ok := Get(name)
			if !ok {
				t.Fatalf("Names() listed %q but Get does not resolve it", name)
			}
			if d.Name != name {
				t.Fatalf("Get(%q).Name = %q", name, d.Name)
			}
			net := testNet(n, 1)
			// Small Sample&Collide target so the test stays fast.
			e, err := d.New(net, xrand.New(2), Options{SCL: 20})
			if err != nil {
				t.Fatalf("factory: %v", err)
			}
			if e.Name() == "" {
				t.Fatal("estimator has an empty name")
			}
			est, err := e.Estimate(net)
			if err != nil {
				t.Fatalf("estimate: %v", err)
			}
			if est <= 0 || est > 100*n {
				t.Fatalf("estimate %g implausible for a %d node overlay", est, n)
			}
			if net.Counter().Total() == 0 {
				t.Fatalf("%s metered no messages; per-run accounting would be blind", name)
			}
		})
	}
}

func TestAliasesResolve(t *testing.T) {
	for alias, want := range map[string]string{
		"sc": "samplecollide", "SC": "samplecollide", " sample&collide ": "samplecollide",
		"tour": "randomtour", "hops": "hopssampling", "agg": "aggregation",
		"id-density": "idspace", "poll": "polling",
		"ps": "pushsum", "push-sum": "pushsum",
		"cr": "capturerecapture", "lincoln-petersen": "capturerecapture",
		"dhtext": "dht", "kclosest": "dht",
	} {
		d, ok := Get(alias)
		if !ok || d.Name != want {
			t.Fatalf("Get(%q) = (%q, %v), want %q", alias, d.Name, ok, want)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestDefaultSetIsTheMonitoringRoster(t *testing.T) {
	want := []string{"samplecollide", "randomtour", "hopssampling", "aggregation"}
	got := DefaultSet()
	if len(got) != len(want) {
		t.Fatalf("DefaultSet() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DefaultSet()[%d] = %q, want %q (order is part of the stream-offset contract)", i, got[i], want[i])
		}
		d, _ := Get(want[i])
		if !d.SupportsMonitoring {
			t.Fatalf("%s is in the default set but does not support monitoring", want[i])
		}
	}
}

func TestStreamOffsetsAreFrozen(t *testing.T) {
	// These values reproduce the pre-registry rosters bit for bit; see
	// builtin.go. Changing one silently changes experiment output.
	for name, want := range map[string]uint64{
		"samplecollide": 10, "randomtour": 11, "hopssampling": 12,
		"aggregation": 13, "idspace": 14, "polling": 15,
		"pushsum": 16, "capturerecapture": 17, "dht": 18,
	} {
		d, _ := Get(name)
		if d.StreamOffset != want {
			t.Fatalf("%s stream offset = %d, want %d", name, d.StreamOffset, want)
		}
	}
}

// TestNewFamilyDescriptors pins the PR-5 families' contract: fresh
// frozen offsets (asserted above), churn-capable capability flags, and
// — critically — absence from the paper's default head-to-head roster,
// which is what keeps the default-roster experiment checksums
// byte-identical across the registry growth.
func TestNewFamilyDescriptors(t *testing.T) {
	for name, class := range map[string]string{
		"pushsum": "epidemic", "capturerecapture": "random-walk", "dht": "structured",
	} {
		d := mustGet(t, name)
		if d.InDefaultSet {
			t.Fatalf("%s must not join the default roster (frozen checksums)", name)
		}
		if !d.SupportsDynamic || !d.SupportsMonitoring {
			t.Fatalf("%s must support dynamic overlays and monitoring", name)
		}
		if d.Class != class {
			t.Fatalf("%s class = %q, want %q", name, d.Class, class)
		}
	}
	// The new knobs reach the factories.
	net := testNet(400, 9)
	e, err := mustGet(t, "capturerecapture").New(net, xrand.New(1), Options{Marks: 40, Recaptures: 60})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Name(); !strings.Contains(got, "marks=40") || !strings.Contains(got, "recaptures=60") {
		t.Fatalf("capture-recapture options ignored: %s", got)
	}
	e, err = mustGet(t, "dht").New(net, xrand.New(1), Options{DHTK: 8, DHTProbes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Name(); !strings.Contains(got, "k=8") || !strings.Contains(got, "probes=3") {
		t.Fatalf("dht options ignored: %s", got)
	}
	if _, err := mustGet(t, "dht").New(net, xrand.New(1), Options{DHTK: 1}); err == nil {
		t.Fatal("dht k=1 accepted; the order-statistic estimator needs k >= 2")
	}
	e, err = mustGet(t, "pushsum").New(net, xrand.New(1), Options{Rounds: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Name(); !strings.Contains(got, "rounds=7") {
		t.Fatalf("pushsum rounds option ignored: %s", got)
	}
	if _, err := mustGet(t, "pushsum").New(net, xrand.New(1), Options{Shards: 1 << 20}); err == nil {
		t.Fatal("pushsum out-of-range shards accepted")
	}
}

func TestRegisterRejectsBadDescriptors(t *testing.T) {
	ok := Descriptor{Name: "t-valid", StreamOffset: 9001, New: mustGet(t, "polling").New}
	cases := []struct {
		name string
		d    Descriptor
		want string
	}{
		{"empty name", Descriptor{StreamOffset: 9100, New: ok.New}, "must not be empty"},
		{"nil factory", Descriptor{Name: "t-nil", StreamOffset: 9101}, "must not be nil"},
		{"dup name", Descriptor{Name: "polling", StreamOffset: 9102, New: ok.New}, "duplicate"},
		{"dup alias", Descriptor{Name: "t-dupalias", Aliases: []string{"sc"}, StreamOffset: 9103, New: ok.New}, "duplicate"},
		{"reserved", Descriptor{Name: "all", StreamOffset: 9104, New: ok.New}, "reserved"},
		{"dup offset", Descriptor{Name: "t-dupoff", StreamOffset: 13, New: ok.New}, "stream offset"},
	}
	for _, c := range cases {
		err := Register(c.d)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: Register err = %v, want substring %q", c.name, err, c.want)
		}
	}
	if err := Register(ok); err != nil {
		t.Fatalf("valid descriptor rejected: %v", err)
	}
	if _, found := Get("t-valid"); !found {
		t.Fatal("registered descriptor not resolvable")
	}
	// Registering the same descriptor twice is itself a duplicate.
	if err := Register(ok); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func mustGet(t *testing.T, name string) Descriptor {
	t.Helper()
	d, ok := Get(name)
	if !ok {
		t.Fatalf("built-in %q missing", name)
	}
	return d
}

func TestResolveAndParse(t *testing.T) {
	ds, err := Resolve(nil)
	if err != nil || len(ds) != 4 {
		t.Fatalf("Resolve(nil) = %d descriptors, err %v; want the 4-family default set", len(ds), err)
	}
	ds, err = Parse("agg, sc,agg")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || ds[0].Name != "aggregation" || ds[1].Name != "samplecollide" {
		t.Fatalf("Parse dedup/order wrong: %+v", ds)
	}
	if _, err := Parse("sc,unknown"); err == nil || !strings.Contains(err.Error(), "unknown estimator") {
		t.Fatalf("unknown selector err = %v", err)
	}
	if all, err := Parse("all"); err != nil || len(all) < 6 {
		t.Fatalf("Parse(all) = %d, err %v", len(all), err)
	}
	if def, err := Parse(" default "); err != nil || len(def) != 4 {
		t.Fatalf("Parse(default) = %d, err %v", len(def), err)
	}
	if _, err := Parse(" , ,"); err == nil {
		t.Fatal("blank spec accepted")
	}
}

func TestParseCadenceSpec(t *testing.T) {
	base, per, err := ParseCadenceSpec("5, agg=50 ,hops=1", 10)
	if err != nil {
		t.Fatal(err)
	}
	if base != 5 {
		t.Fatalf("base = %g, want 5", base)
	}
	if len(per) != 2 || per["aggregation"] != 50 || per["hopssampling"] != 1 {
		t.Fatalf("overrides = %v", per)
	}
	if base, per, err = ParseCadenceSpec("agg=50", 10); err != nil || base != 10 || per["aggregation"] != 50 {
		t.Fatalf("base fallback broken: base %g per %v err %v", base, per, err)
	}
	if base, per, err = ParseCadenceSpec("", 10); err != nil || base != 10 || per != nil {
		t.Fatalf("empty spec: base %g per %v err %v", base, per, err)
	}
	// NaN passes naive `v <= 0` validation and would crash the monitor's
	// schedule sizing; Inf would make the schedule empty.
	for _, bad := range []string{"x=1", "agg=zero", "agg=-1", "-3", "0", "NaN", "agg=NaN", "Inf", "agg=+Inf"} {
		if _, _, err := ParseCadenceSpec(bad, 10); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// TestParseCadenceSpecRejectsDuplicates: a later bare base or repeated
// name= entry used to clobber the earlier one silently, measuring a
// configuration the caller never asked for.
func TestParseCadenceSpecRejectsDuplicates(t *testing.T) {
	for _, bad := range []string{
		"5,agg=50,10,agg=2",    // the issue's example: both kinds at once
		"5,10",                 // duplicate base
		"5, 5",                 // duplicate base, equal values too
		"agg=50,agg=50",        // repeated override, same value
		"agg=50,aggregation=2", // aliases resolve to the same family
	} {
		if _, _, err := ParseCadenceSpec(bad, 10); err == nil ||
			!strings.Contains(err.Error(), "duplicate") {
			t.Fatalf("spec %q: err = %v, want duplicate rejection", bad, err)
		}
	}
	// A base plus distinct overrides is still fine.
	base, per, err := ParseCadenceSpec("5,agg=50,hops=1", 10)
	if err != nil || base != 5 || len(per) != 2 {
		t.Fatalf("valid mixed spec rejected: base %g per %v err %v", base, per, err)
	}
}

func TestPerRunIsRunIndexed(t *testing.T) {
	net := testNet(500, 3)
	d := mustGet(t, "samplecollide")
	mk, err := d.PerRun(net, 42, Options{SCL: 20})
	if err != nil {
		t.Fatal(err)
	}
	a, err := mk(7).Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk(7).Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same run index gave %g then %g; per-run streams must be index-fixed", a, b)
	}
	c, err := mk(8).Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("distinct run indices shared a stream")
	}
	// Configuration errors surface at PerRun time, not mid-run.
	if _, err := mustGet(t, "aggregation").PerRun(net, 1, Options{Shards: 1 << 20}); err == nil {
		t.Fatal("out-of-range shards accepted")
	}
}

func TestIDSpaceNeedsRingOrOverlay(t *testing.T) {
	d := mustGet(t, "idspace")
	if _, err := d.New(nil, xrand.New(1), Options{}); err == nil {
		t.Fatal("nil overlay without a ring accepted")
	}
	if d.SupportsMonitoring || d.SupportsDynamic {
		t.Fatal("idspace is snapshot-based; it must not advertise churn support")
	}
}
