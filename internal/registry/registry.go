// Package registry is the estimator catalog: every size-estimation
// family the repo implements is described once — name, factory,
// capability flags, relative cost — and every other layer (the
// experiment harness, the monitor, both CLIs, the public API) selects
// estimators from the catalog instead of hard-wiring constructor calls.
// Adding an estimator family therefore means registering one Descriptor;
// the comparative figures, the monitoring roster and the -estimators
// flags pick it up without touching their code.
//
// Determinism contract: a Factory must derive all randomness from the
// *xrand.Rand it is handed (one per run or per instance, derived from
// the experiment seed and the descriptor's StreamOffset or the run
// index), never from global state. Equal (descriptor, options, rng seed)
// then give byte-identical estimators, which is what lets the harness
// keep its output identical at every worker count.
package registry

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"p2psize/internal/core"
	"p2psize/internal/fault"
	"p2psize/internal/idspace"
	"p2psize/internal/overlay"
	"p2psize/internal/parallel"
	"p2psize/internal/xrand"
)

// Options carries the tunable knobs a Factory may honor. Zero values
// select each family's paper defaults, so Options{} is always valid;
// factories ignore fields that do not concern them, which lets one
// Options value configure a whole roster.
type Options struct {
	// SCTimer is the Sample&Collide walk timer T (0 = the paper's 10).
	SCTimer float64
	// SCL is the Sample&Collide collision target l (0 = the paper's 200).
	SCL int
	// SCMLE selects the maximum-likelihood refinement over X²/(2l).
	SCMLE bool
	// Tours is the Random Tour count averaged per estimation (0 = 1).
	Tours int
	// MinHops is the HopsSampling minHopsReporting threshold (0 = 5).
	MinHops int
	// Rounds is the Aggregation rounds-per-epoch (0 = the paper's 50).
	Rounds int
	// Shards splits each Aggregation round's sweep into per-stream
	// segments (0 = auto-size; part of the output, unlike Workers).
	Shards int
	// Workers caps the goroutines sweeping one Aggregation round's
	// shards (0 = all CPUs); never part of the output.
	Workers int
	// Shuffle selects the sharded sweeps' order randomization
	// (parallel.ShuffleGlobal reproduces the frozen serial-shuffle draw
	// order, parallel.ShuffleLocal shuffles per shard inside the
	// parallel phase). Part of the output, like Shards.
	Shuffle parallel.ShuffleMode
	// ResponseProb is the polling reply probability (0 = 0.01).
	ResponseProb float64
	// IDSamples is the id-density probe count k (0 = 200).
	IDSamples int
	// Ring optionally shares a pre-built identifier ring across
	// id-density instances; nil builds one from the overlay and rng the
	// factory is handed.
	Ring *idspace.Ring
	// Marks is the capture–recapture capture-phase draw count (0 = 300).
	Marks int
	// Recaptures is the capture–recapture recapture draw count (0 = 300).
	Recaptures int
	// DHTK is the DHT extrapolator's k-closest set size (0 = 20).
	DHTK int
	// DHTProbes is the DHT extrapolator's lookups per estimate (0 = 16).
	DHTProbes int
	// Faults selects the fault scenario every built estimator runs
	// under (the zero Spec is benign). Honored by Descriptor.Build, not
	// by the factories themselves: the estimator is wrapped in the fault
	// layer's decorator, so families need no fault awareness of their
	// own.
	Faults fault.Spec
}

// Factory builds one estimator instance. net is the overlay the
// estimator will run against — most families ignore it, but snapshot-
// based ones (id-density) derive state from it; rng is the instance's
// private random stream.
type Factory func(net *overlay.Network, rng *xrand.Rand, opts Options) (core.Estimator, error)

// Descriptor describes one estimator family.
type Descriptor struct {
	// Name is the canonical registry key, e.g. "samplecollide".
	Name string
	// Aliases are accepted selector spellings ("sc", "sample-collide").
	Aliases []string
	// Class is the paper's counting-class taxonomy slot ("random-walk",
	// "probabilistic-polling", "epidemic", "structured").
	Class string
	// Summary is a one-line description for listings.
	Summary string
	// CostHint ranks families by relative message cost per estimation
	// (1 = cheapest). Scheduling and documentation only — never output.
	CostHint int
	// CadenceHint is the suggested monitoring cadence multiplier on the
	// base tick: cheap families sample every tick (1), expensive ones
	// every CadenceHint ticks (Aggregation: 10). Applied only when the
	// caller opts in — default rosters keep one shared cadence.
	CadenceHint float64
	// SupportsDynamic marks families that stay sound on a churning
	// overlay (snapshot-based families like id-density do not: their
	// precomputed state goes stale the moment membership changes).
	SupportsDynamic bool
	// SupportsMonitoring marks families the continuous monitor may
	// sample; implies SupportsDynamic-style robustness plus a bounded
	// per-estimate cost.
	SupportsMonitoring bool
	// SupportsTransport marks families whose estimates stay sound when
	// the overlay's metered sends are carried by a real transport (the
	// live-cluster runtime). Snapshot-based families that precompute
	// state from a frozen membership view (id-density) do not qualify:
	// a live cluster's membership is owned by the daemons, not the
	// snapshot.
	SupportsTransport bool
	// InDefaultSet marks the paper's head-to-head monitoring roster
	// (Sample&Collide, Random Tour, HopsSampling, Aggregation).
	InDefaultSet bool
	// MutatesOverlay marks families whose estimations rewire the
	// overlay graph (the cyclon-backed epidemic class in deployment);
	// families that only observe it can share one overlay clone — and
	// one trace replay — per cadence group in the monitor's
	// shared-replay mode. Catalog metadata: the monitor's grouping
	// decision itself reads the estimator instance's
	// core.OverlayMutator capability, and the registry test pins the
	// two in sync.
	MutatesOverlay bool
	// StreamOffset is the family's fixed seed-stream offset: instance
	// rngs derive from seed+StreamOffset, so a family's random stream —
	// and therefore its per-run message accounting — never depends on
	// which other families are selected alongside it. Unique per family.
	StreamOffset uint64
	// New builds one estimator instance.
	New Factory
}

var (
	mu      sync.RWMutex
	ordered []Descriptor          // registration order
	byName  = map[string]int{}    // lowercased name and aliases -> ordered index
	offsets = map[uint64]string{} // StreamOffset -> owner name
)

// Register adds a descriptor to the catalog. It fails on an empty or
// duplicate name (aliases collide with names and other aliases too), a
// nil factory, or a StreamOffset already owned by another family — any
// of those would silently corrupt estimator selection or seed-stream
// separation.
func Register(d Descriptor) error {
	if d.Name == "" {
		return errors.New("registry: Descriptor.Name must not be empty")
	}
	if d.New == nil {
		return fmt.Errorf("registry: %s: Descriptor.New must not be nil", d.Name)
	}
	keys := append([]string{d.Name}, d.Aliases...)
	mu.Lock()
	defer mu.Unlock()
	for _, k := range keys {
		k = strings.ToLower(k)
		if k == "all" || k == "default" {
			return fmt.Errorf("registry: %s: selector %q is reserved", d.Name, k)
		}
		if idx, dup := byName[k]; dup {
			return fmt.Errorf("registry: duplicate estimator name %q (already registered by %s)", k, ordered[idx].Name)
		}
	}
	if owner, dup := offsets[d.StreamOffset]; dup {
		return fmt.Errorf("registry: %s: stream offset %d already owned by %s", d.Name, d.StreamOffset, owner)
	}
	idx := len(ordered)
	ordered = append(ordered, d)
	for _, k := range keys {
		byName[strings.ToLower(k)] = idx
	}
	offsets[d.StreamOffset] = d.Name
	return nil
}

// MustRegister is Register for init-time built-ins; it panics on error.
func MustRegister(d Descriptor) {
	if err := Register(d); err != nil {
		panic(err)
	}
}

// Get resolves a name or alias (case-insensitive) to its descriptor.
func Get(name string) (Descriptor, bool) {
	mu.RLock()
	defer mu.RUnlock()
	idx, ok := byName[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return Descriptor{}, false
	}
	return ordered[idx], true
}

// Names returns the canonical names in registration order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, len(ordered))
	for i, d := range ordered {
		out[i] = d.Name
	}
	return out
}

// All returns every descriptor in registration order.
func All() []Descriptor {
	mu.RLock()
	defer mu.RUnlock()
	return append([]Descriptor(nil), ordered...)
}

// DefaultSet returns the canonical names of the paper's head-to-head
// monitoring roster, in registration order.
func DefaultSet() []string {
	mu.RLock()
	defer mu.RUnlock()
	var out []string
	for _, d := range ordered {
		if d.InDefaultSet {
			out = append(out, d.Name)
		}
	}
	return out
}

// Resolve maps a list of names/aliases to descriptors, deduplicating
// while keeping first-mention order. An empty list resolves to the
// default set. Unknown names error with the known selectors listed.
func Resolve(names []string) ([]Descriptor, error) {
	if len(names) == 0 {
		names = DefaultSet()
	}
	seen := make(map[string]bool, len(names))
	out := make([]Descriptor, 0, len(names))
	for _, name := range names {
		d, ok := Get(name)
		if !ok {
			return nil, fmt.Errorf("registry: unknown estimator %q (have %s)",
				name, strings.Join(Names(), ", "))
		}
		if seen[d.Name] {
			continue
		}
		seen[d.Name] = true
		out = append(out, d)
	}
	return out, nil
}

// Parse resolves a comma-separated selector spec: "" and "default" give
// the default set, "all" gives every registered family, anything else
// is a list of names/aliases (deduplicated, first-mention order).
func Parse(spec string) ([]Descriptor, error) {
	switch strings.ToLower(strings.TrimSpace(spec)) {
	case "", "default":
		return Resolve(nil)
	case "all":
		return All(), nil
	}
	var names []string
	for _, f := range strings.Split(spec, ",") {
		if f = strings.TrimSpace(f); f != "" {
			names = append(names, f)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("registry: empty estimator spec %q", spec)
	}
	return Resolve(names)
}

// ParseCadenceSpec parses a monitoring cadence spec: a comma-separated
// mix of a bare number (the base cadence every unlisted estimator
// samples at) and name=value entries (that estimator's own cadence, in
// the same simulated time units). Names resolve through the catalog, so
// aliases work and the returned map is keyed by canonical name.
//
//	"10"            -> base 10, no overrides
//	"5,agg=50"      -> base 5, aggregation every 50
//	"hops=1,agg=10" -> base unchanged, two overrides
//
// The incoming base is returned unchanged when the spec never sets it.
// Repeating the bare base or naming one estimator twice (under any
// alias) is rejected: a spec like "5,agg=50,10" almost certainly pastes
// two intents together, and silently letting the later entry win would
// measure a configuration the caller never asked for.
func ParseCadenceSpec(spec string, base float64) (float64, map[string]float64, error) {
	overrides := map[string]float64{}
	baseSet := false
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		name, val, hasName := strings.Cut(f, "=")
		if !hasName {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return 0, nil, fmt.Errorf("registry: bad cadence %q: %w", f, err)
			}
			// NaN passes every ordered comparison, so "positive" must be
			// checked as v > 0, and Inf would make the schedule empty.
			if !(v > 0) || math.IsInf(v, 1) {
				return 0, nil, fmt.Errorf("registry: cadence %q must be positive and finite", f)
			}
			if baseSet {
				return 0, nil, fmt.Errorf("registry: duplicate base cadence %q in spec %q (base already set to %g)", f, spec, base)
			}
			baseSet = true
			base = v
			continue
		}
		d, ok := Get(name)
		if !ok {
			return 0, nil, fmt.Errorf("registry: unknown estimator %q in cadence spec (have %s)",
				strings.TrimSpace(name), strings.Join(Names(), ", "))
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return 0, nil, fmt.Errorf("registry: bad cadence for %s: %w", d.Name, err)
		}
		if !(v > 0) || math.IsInf(v, 1) {
			return 0, nil, fmt.Errorf("registry: cadence for %s must be positive and finite", d.Name)
		}
		if _, dup := overrides[d.Name]; dup {
			return 0, nil, fmt.Errorf("registry: duplicate cadence for %s in spec %q (aliases resolve to the same family)", d.Name, spec)
		}
		overrides[d.Name] = v
	}
	if len(overrides) == 0 {
		overrides = nil
	}
	return base, overrides, nil
}

// Build constructs one estimator instance, honoring every option the
// factories do not see themselves: when opts.Faults is enabled the
// estimator is wrapped in the fault layer's decorator, with an injector
// seeded from one draw of rng. This is the single chokepoint between
// the catalog and the fault layer — every call site that builds through
// it (the experiment harness, the monitor, both CLIs, the public API)
// runs every family under faults unmodified. The benign path takes no
// rng draw, so fault-free streams are untouched by the layer's
// existence.
func (d Descriptor) Build(net *overlay.Network, rng *xrand.Rand, opts Options) (core.Estimator, error) {
	e, err := d.New(net, rng, opts)
	if err != nil || !opts.Faults.Enabled() {
		return e, err
	}
	return fault.Decorate(e, fault.NewInjector(opts.Faults, xrand.New(rng.Uint64()))), nil
}

// PerRun returns a run-indexed estimator builder for the static run
// loops (core.RunStaticParallel and friends): run i's estimator draws
// from the (seed, i) stream, so its estimate and per-run message
// accounting are fixed by the index alone — byte-identical at every
// worker count. The options are validated once up front (with a
// throwaway stream) so configuration errors surface here, not mid-run.
func (d Descriptor) PerRun(net *overlay.Network, seed uint64, opts Options) (func(run int) core.Estimator, error) {
	if _, err := d.Build(net, xrand.NewStream(seed, 0), opts); err != nil {
		return nil, fmt.Errorf("registry: %s: %w", d.Name, err)
	}
	return func(run int) core.Estimator {
		e, err := d.Build(net, xrand.NewStream(seed, uint64(run)), opts)
		if err != nil {
			// The eager validation above accepted these options; a
			// factory failing only on some run indices would break the
			// deterministic-output contract, so treat it as corruption.
			panic(fmt.Sprintf("registry: %s: factory failed after validation: %v", d.Name, err))
		}
		return e
	}, nil
}

// SortedByCost returns the descriptors ordered cheapest-first by
// CostHint (ties by registration order) — the order listings and
// budget-conscious rosters want.
func SortedByCost(ds []Descriptor) []Descriptor {
	out := append([]Descriptor(nil), ds...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].CostHint < out[j].CostHint })
	return out
}
