package registry

import (
	"testing"

	"p2psize/internal/core"
	"p2psize/internal/fault"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

// TestMutatesOverlayFlagMatchesCapability pins the catalog's
// MutatesOverlay metadata to the runtime capability the monitor's
// shared-replay grouping actually reads (core.MutatesOverlay on the
// built instance): a descriptor must never advertise a sharing class
// its estimator does not implement, in either direction. The fault
// decorator wraps every estimator the Build chokepoint produces, so it
// is checked too — decoration must forward the capability, not reset
// it to the conservative mutating default.
func TestMutatesOverlayFlagMatchesCapability(t *testing.T) {
	for _, d := range All() {
		t.Run(d.Name, func(t *testing.T) {
			net := testNet(300, 3)
			e, err := d.New(net, xrand.New(4), Options{})
			if err != nil {
				t.Fatalf("factory: %v", err)
			}
			if got := core.MutatesOverlay(e); got != d.MutatesOverlay {
				t.Fatalf("core.MutatesOverlay(%s) = %v, descriptor says %v", d.Name, got, d.MutatesOverlay)
			}
			dec := fault.Decorate(e, fault.NewInjector(fault.Spec{Drop: 0.01}, xrand.New(5)))
			if got := core.MutatesOverlay(dec); got != d.MutatesOverlay {
				t.Fatalf("fault-decorated core.MutatesOverlay(%s) = %v, descriptor says %v", d.Name, got, d.MutatesOverlay)
			}
		})
	}
}

// plainEstimator implements only the bare core.Estimator contract.
type plainEstimator struct{}

func (plainEstimator) Name() string                               { return "plain" }
func (plainEstimator) Estimate(*overlay.Network) (float64, error) { return 1, nil }

func TestUnknownEstimatorIsConservativelyMutating(t *testing.T) {
	if !core.MutatesOverlay(plainEstimator{}) {
		t.Fatal("an estimator without the OverlayMutator capability must default to mutating (never share a clone)")
	}
}

// TestDefaultRosterExercisesBothSharingClasses keeps the head-to-head
// monitoring roster covering both code paths of the shared-replay
// monitor: at least one read-only family (groupable) and at least one
// mutating family (pinned to a private clone).
func TestDefaultRosterExercisesBothSharingClasses(t *testing.T) {
	readOnly, mutating := 0, 0
	for _, name := range DefaultSet() {
		d, ok := Get(name)
		if !ok {
			t.Fatalf("default-set name %q does not resolve", name)
		}
		if d.MutatesOverlay {
			mutating++
		} else {
			readOnly++
		}
	}
	if readOnly == 0 || mutating == 0 {
		t.Fatalf("default roster has %d read-only and %d mutating families; shared mode needs both exercised", readOnly, mutating)
	}
}
