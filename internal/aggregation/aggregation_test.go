package aggregation

import (
	"errors"
	"math"
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

func hetNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

func TestConfigValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("RoundsPerEpoch=0 did not panic")
			}
		}()
		New(Config{}, xrand.New(1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil rng did not panic")
			}
		}()
		New(Default(), nil)
	}()
}

func TestName(t *testing.T) {
	p := New(Default(), xrand.New(1))
	if p.Name() != "aggregation(rounds=50)" {
		t.Fatalf("Name = %q", p.Name())
	}
	if p.Config().RoundsPerEpoch != 50 {
		t.Fatal("Config not returned")
	}
}

func TestRunRoundBeforeStartPanics(t *testing.T) {
	p := New(Default(), xrand.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("RunRound before StartEpoch did not panic")
		}
	}()
	p.RunRound(hetNet(10, 2))
}

func TestMassConservationStatic(t *testing.T) {
	net := hetNet(2000, 3)
	p := New(Default(), xrand.New(4))
	if err := p.StartEpoch(net); err != nil {
		t.Fatal(err)
	}
	if m := p.MassInEpoch(net); math.Abs(m-1) > 1e-12 {
		t.Fatalf("initial mass = %g", m)
	}
	for r := 0; r < 30; r++ {
		p.RunRound(net)
		if m := p.MassInEpoch(net); math.Abs(m-1) > 1e-9 {
			t.Fatalf("round %d: mass = %g, averaging must conserve mass", r, m)
		}
	}
}

func TestConvergesToTrueSize(t *testing.T) {
	const n = 10000
	net := hetNet(n, 5)
	p := New(Default(), xrand.New(6))
	if err := p.StartEpoch(net); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 60; r++ {
		p.RunRound(net)
	}
	est, ok := p.Estimate(net)
	if !ok {
		t.Fatal("no estimate at initiator")
	}
	if math.Abs(est-n)/n > 0.02 {
		t.Fatalf("estimate %.0f after 60 rounds, truth %d", est, n)
	}
}

func TestEstimateAvailableAtEveryNode(t *testing.T) {
	// §V: "eventually the size estimation is available at each node".
	const n = 2000
	net := hetNet(n, 7)
	p := New(Default(), xrand.New(8))
	if err := p.StartEpoch(net); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 80; r++ {
		p.RunRound(net)
	}
	bad := 0
	net.Graph().ForEachAlive(func(id graph.NodeID) {
		est, ok := p.EstimateAt(net, id)
		if !ok || math.Abs(est-n)/n > 0.05 {
			bad++
		}
	})
	if bad > n/100 {
		t.Fatalf("%d of %d nodes lack a good local estimate", bad, n)
	}
}

func TestEstimateRisesMonotonicallyToTruth(t *testing.T) {
	// The initiator starts at 1/value = 1 and the estimate grows toward N
	// as mass spreads — the shape of Figs 5 and 6.
	const n = 5000
	net := hetNet(n, 9)
	p := New(Default(), xrand.New(10))
	if err := p.StartEpoch(net); err != nil {
		t.Fatal(err)
	}
	first, _ := p.Estimate(net)
	if first != 1 {
		t.Fatalf("estimate before any round = %g, want 1", first)
	}
	prev := 0.0
	increased := 0
	for r := 0; r < 50; r++ {
		p.RunRound(net)
		est, ok := p.Estimate(net)
		if !ok {
			t.Fatalf("round %d: estimate unavailable", r)
		}
		if est > prev {
			increased++
		}
		prev = est
	}
	// Not strictly monotone (exchanges jitter), but strongly trending.
	if increased < 30 {
		t.Fatalf("estimate increased on only %d of 50 rounds", increased)
	}
	if math.Abs(prev-n)/n > 0.05 {
		t.Fatalf("final estimate %.0f, truth %d", prev, n)
	}
}

func TestOverheadFormula(t *testing.T) {
	// Paper §IV-E: overhead = nodes × rounds × 2.
	const n, rounds = 1000, 20
	net := hetNet(n, 11)
	p := New(Config{RoundsPerEpoch: rounds}, xrand.New(12))
	if err := p.StartEpoch(net); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		p.RunRound(net)
	}
	got := float64(net.Counter().Total())
	want := float64(n * rounds * 2)
	// Early rounds have fewer participants than n, so got <= want, but
	// participation saturates within a few rounds.
	if got > want {
		t.Fatalf("overhead %.0f exceeds N·R·2 = %.0f", got, want)
	}
	if got < 0.7*want {
		t.Fatalf("overhead %.0f far below N·R·2 = %.0f", got, want)
	}
	if push, pull := net.Counter().Count(metrics.KindPush), net.Counter().Count(metrics.KindPull); push != pull {
		t.Fatalf("push %d != pull %d", push, pull)
	}
}

func TestEpochRestartResetsValues(t *testing.T) {
	const n = 500
	net := hetNet(n, 13)
	p := New(Config{RoundsPerEpoch: 30}, xrand.New(14))
	for epoch := 0; epoch < 3; epoch++ {
		if err := p.StartEpoch(net); err != nil {
			t.Fatal(err)
		}
		if m := p.MassInEpoch(net); math.Abs(m-1) > 1e-12 {
			t.Fatalf("epoch %d starts with mass %g", epoch, m)
		}
		for r := 0; r < 30; r++ {
			p.RunRound(net)
		}
		est, ok := p.Estimate(net)
		if !ok {
			t.Fatalf("epoch %d: no estimate", epoch)
		}
		if math.Abs(est-n)/n > 0.1 {
			t.Fatalf("epoch %d estimate %.0f, truth %d", epoch, est, n)
		}
	}
	if p.Epoch() != 3 {
		t.Fatalf("epoch counter = %d", p.Epoch())
	}
}

func TestInitiatorReplacedWhenDead(t *testing.T) {
	net := hetNet(100, 15)
	p := New(Default(), xrand.New(16))
	if err := p.StartEpoch(net); err != nil {
		t.Fatal(err)
	}
	old := p.Initiator()
	net.Leave(old)
	if err := p.StartEpoch(net); err != nil {
		t.Fatal(err)
	}
	if p.Initiator() == old || !net.Alive(p.Initiator()) {
		t.Fatalf("initiator not replaced: old=%d new=%d", old, p.Initiator())
	}
}

func TestEmptyOverlay(t *testing.T) {
	g := graph.NewWithNodes(1)
	g.RemoveNode(0)
	net := overlay.New(g, 10, nil)
	p := New(Default(), xrand.New(17))
	if err := p.StartEpoch(net); !errors.Is(err, ErrEmptyOverlay) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := p.Estimate(net); ok {
		t.Fatal("estimate available before any epoch")
	}
}

func TestJoinersDiluteIntoEpoch(t *testing.T) {
	// Nodes joining mid-epoch enter with value 0 and participate once
	// contacted; mass stays 1 and the converged estimate reflects the
	// *new* size (growth adapts within the epoch, per Fig 16's shape).
	const n = 1000
	net := hetNet(n, 18)
	rng := xrand.New(19)
	p := New(Default(), xrand.New(20))
	if err := p.StartEpoch(net); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		p.RunRound(net)
	}
	for i := 0; i < n/2; i++ {
		net.JoinRandomDegree(rng)
	}
	for r := 0; r < 80; r++ {
		p.RunRound(net)
	}
	if m := p.MassInEpoch(net); math.Abs(m-1) > 1e-9 {
		t.Fatalf("mass = %g after joins", m)
	}
	est, ok := p.Estimate(net)
	if !ok {
		t.Fatal("no estimate")
	}
	if math.Abs(est-1500)/1500 > 0.1 {
		t.Fatalf("estimate %.0f, want ≈1500 after +50%% joins", est)
	}
}

func TestDeparturesLoseMass(t *testing.T) {
	const n = 1000
	net := hetNet(n, 21)
	rng := xrand.New(22)
	p := New(Default(), xrand.New(23))
	if err := p.StartEpoch(net); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 20; r++ {
		p.RunRound(net)
	}
	for i := 0; i < n/4; i++ {
		if id, ok := net.Graph().RandomAlive(rng); ok && id != p.Initiator() {
			net.Leave(id)
		}
	}
	m := p.MassInEpoch(net)
	if m >= 1 {
		t.Fatalf("mass %g did not decrease after departures", m)
	}
	// Expect roughly a quarter of the mass gone (values were near-uniform
	// after 20 rounds).
	if m < 0.5 || m > 0.95 {
		t.Fatalf("mass = %g, want ≈0.75", m)
	}
}

func TestOneShotEstimatorAdapter(t *testing.T) {
	const n = 2000
	net := hetNet(n, 24)
	e := NewEstimator(Config{RoundsPerEpoch: 50}, xrand.New(25))
	if e.Name() != "aggregation(rounds=50)" {
		t.Fatalf("Name = %q", e.Name())
	}
	est, err := e.Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-n)/n > 0.05 {
		t.Fatalf("estimate %.0f, truth %d", est, n)
	}
	if e.Protocol().Epoch() != 1 {
		t.Fatal("adapter did not run an epoch")
	}
}

func TestConvergenceRound(t *testing.T) {
	// The paper's epoch length discussion: ~99% convergence within a few
	// tens of rounds at these scales, growing slowly (log) with N.
	small := hetNet(1000, 26)
	r1, err := ConvergenceRound(small, Default(), xrand.New(27), 0.01, 200)
	if err != nil {
		t.Fatal(err)
	}
	if r1 < 5 || r1 > 80 {
		t.Fatalf("convergence at %d rounds for n=1000", r1)
	}
	big := hetNet(20000, 28)
	r2, err := ConvergenceRound(big, Default(), xrand.New(29), 0.01, 300)
	if err != nil {
		t.Fatal(err)
	}
	if r2 <= r1-10 {
		t.Fatalf("larger network converged much faster: %d vs %d", r2, r1)
	}
}

func TestConvergenceRoundEmptyOverlay(t *testing.T) {
	g := graph.NewWithNodes(1)
	g.RemoveNode(0)
	net := overlay.New(g, 10, nil)
	if _, err := ConvergenceRound(net, Default(), xrand.New(30), 0.01, 10); err == nil {
		t.Fatal("empty overlay accepted")
	}
}

func TestDisconnectedOverlayDoesNotConverge(t *testing.T) {
	// Mass cannot cross components, so full convergence is impossible —
	// the mechanism behind the paper's shrinking-scenario failure.
	g := graph.NewWithNodes(20)
	for i := graph.NodeID(0); i < 9; i++ {
		g.AddEdge(i, i+1)
	}
	for i := graph.NodeID(10); i < 19; i++ {
		g.AddEdge(i, i+1)
	}
	net := overlay.New(g, 10, nil)
	if _, err := ConvergenceRound(net, Default(), xrand.New(31), 0.001, 50); err == nil {
		t.Fatal("disconnected overlay reported converged")
	}
}
