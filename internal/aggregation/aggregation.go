// Package aggregation implements the gossip-based Aggregation size
// estimator (§III-C of the comparative study; Jelasity & Montresor,
// ICDCS'04), the representative of the epidemic class.
//
// The protocol averages a one-hot vector: the initiator starts with value
// 1 and every other participant with 0. Each round ("predefined cycle"),
// every participating node picks a uniformly random neighbor and the pair
// swaps and averages its values (the push/pull heuristic — two messages
// per exchange). Averaging preserves the total mass of 1, so values
// converge to 1/N and any node can read the system size as 1/value. In a
// static network convergence to the exact size takes a few tens of rounds
// (the paper observes ≈40 for 100k nodes, ≈50 for 1M).
//
// Dynamics are handled with epochs ("tags"): a counting process is
// restarted at a regular interval; a node reached by a message carrying a
// new tag resets its value to 0 and joins the new process. Within one
// epoch the protocol is conservative — departures remove mass and
// arrivals join with 0 — so the estimate is only accurate as of the epoch
// start, and heavy departures that fragment the overlay break the
// averaging entirely (the paper's ≈30% threshold in the shrinking
// scenario).
package aggregation

import (
	"errors"
	"fmt"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/parallel"
	"p2psize/internal/stats"
	"p2psize/internal/xrand"
)

// Config parameterizes the Aggregation protocol.
type Config struct {
	// RoundsPerEpoch is how many push-pull rounds each counting epoch
	// runs before the estimate is read and the process restarts. The
	// comparative study uses 50 ("in order not to make any hypothesis on
	// the targeted system size ... this value represents the best
	// possible algorithm's reactivity for an accurate estimation").
	RoundsPerEpoch int
	// Shards splits each round's shuffled node sweep into this many
	// segments, each drawing from its own per-round xrand stream;
	// exchanges whose endpoints land in different shards are deferred to
	// an ordered fix-up pass. The shard count (never the worker count)
	// is part of the algorithm: changing it changes the draws, while at
	// a fixed shard count the output is byte-identical at every Workers
	// setting. 0 picks one shard per parallel.MinShardNodes alive nodes (at most
	// parallel.MaxShards).
	Shards int
	// Workers caps the goroutines executing the shards of one round:
	// 0 means runtime.NumCPU(), 1 forces sequential execution. Workers
	// only changes wall time, never output.
	Workers int
	// Shuffle selects the round engine's sweep-order randomization:
	// ShuffleGlobal (the default) reproduces the serial full-sweep
	// shuffle bit for bit, ShuffleLocal shuffles per shard to remove
	// the serial O(N) prefix. Part of the output, like Shards.
	Shuffle parallel.ShuffleMode
}

// Default returns the paper's dynamic-setting configuration (50 rounds).
func Default() Config { return Config{RoundsPerEpoch: 50} }

func (c Config) engine() parallel.EngineConfig {
	return parallel.EngineConfig{Shards: c.Shards, Workers: c.Workers, Shuffle: c.Shuffle}
}

func (c *Config) validate() error {
	if c.RoundsPerEpoch < 1 {
		return errors.New("aggregation: RoundsPerEpoch must be >= 1")
	}
	if err := c.engine().Validate(); err != nil {
		return fmt.Errorf("aggregation: %w", err)
	}
	return nil
}

// Protocol is a running Aggregation instance. One instance corresponds to
// one independent "Estimation #k" curve in the paper's figures; several
// instances can share an overlay (each owns its value vector).
type Protocol struct {
	cfg Config
	rng *xrand.Rand

	values    []float64 // per node ID
	epochOf   []uint32  // epoch tag a node participates in
	epoch     uint32
	initiator graph.NodeID
	engine    parallel.RoundEngine[pair]
	pol       overlay.FaultPolicy // scratch: this round's fault policy
}

// Message fates under an installed fault policy. Push/pull traffic is
// fire-and-forget: a lost message loses its payload (no retransmission),
// which is how drop corrupts the conserved mass.
const (
	fatePushLost = 1 << iota // u's push never reached v: no exchange at all
	fatePullLost             // v's reply never reached u: v averaged, u kept its value
)

// pair is one deferred cross-shard exchange: u initiated, v was drawn,
// fate carries the pair's message fates (drawn in the initiating shard's
// stream so the fix-up pass replays them unchanged).
type pair struct {
	u, v graph.NodeID
	fate uint8
}

// New builds a Protocol; it panics on invalid configuration.
func New(cfg Config, rng *xrand.Rand) *Protocol {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("aggregation: nil rng")
	}
	return &Protocol{cfg: cfg, rng: rng, initiator: graph.None}
}

// Name identifies the estimator in reports.
func (p *Protocol) Name() string {
	return fmt.Sprintf("aggregation(rounds=%d)", p.cfg.RoundsPerEpoch)
}

// Config returns the protocol configuration.
func (p *Protocol) Config() Config { return p.cfg }

// ErrEmptyOverlay is returned when no live peer can initiate.
var ErrEmptyOverlay = errors.New("aggregation: empty overlay")

// Initiator returns the current epoch's initiator (graph.None before the
// first epoch).
func (p *Protocol) Initiator() graph.NodeID { return p.initiator }

// Epoch returns the current epoch tag (0 before the first epoch).
func (p *Protocol) Epoch() uint32 { return p.epoch }

// StartEpoch begins a new counting process: the epoch tag is bumped, the
// initiator (kept from the previous epoch when still alive, otherwise
// re-drawn uniformly) takes value 1 and everyone else will join with 0 on
// first contact.
func (p *Protocol) StartEpoch(net *overlay.Network) error {
	if p.initiator == graph.None || !net.Alive(p.initiator) {
		id, ok := net.RandomPeer(p.rng)
		if !ok {
			return ErrEmptyOverlay
		}
		p.initiator = id
	}
	p.grow(net.Graph().NumIDs())
	p.epoch++
	p.values[p.initiator] = 1
	p.epochOf[p.initiator] = p.epoch
	return nil
}

func (p *Protocol) grow(numIDs int) {
	for len(p.values) < numIDs {
		p.values = append(p.values, 0)
		p.epochOf = append(p.epochOf, 0)
	}
}

// participant reports whether id has joined the current epoch.
func (p *Protocol) participant(id graph.NodeID) bool {
	return int(id) < len(p.epochOf) && p.epochOf[id] == p.epoch
}

// value returns id's current-epoch value, joining it with 0 if needed.
func (p *Protocol) join(id graph.NodeID) {
	if !p.participant(id) {
		p.values[id] = 0
		p.epochOf[id] = p.epoch
	}
}

// RunRound executes one synchronous push-pull cycle: every live node, in
// fresh random order, exchanges with one uniformly random neighbor (the
// epidemic substrate runs on all nodes — the paper prices a round at
// exactly 2 messages per node). When either endpoint participates in the
// current epoch, the other joins with initial value 0 ("a node which is
// reached by a counting message with a new tag will create a 0 initial
// value") and the pair averages its values. It panics if called before
// StartEpoch.
//
// The sweep runs on the shared sharded-round engine
// (parallel.RoundEngine): the sweep order is cut into Config.Shards
// segments, each sweeping its nodes with its own per-round xrand
// stream. A shard completes an exchange immediately when the drawn
// neighbor lies in its own segment — then both endpoints' values are
// owned by that shard alone — and defers it otherwise. Deferred pairs
// (the majority: a uniform neighbor lands outside its initiator's shard
// with probability (S-1)/S) are applied in the engine's fixed
// round-robin tournament of shard pairs, so the result depends only on
// (seed, config, overlay), never on Config.Workers or scheduling.
func (p *Protocol) RunRound(net *overlay.Network) {
	if p.epoch == 0 {
		panic("aggregation: RunRound before StartEpoch")
	}
	g := net.Graph()
	p.grow(g.NumIDs())
	n := g.NumAlive()
	if n == 0 {
		return
	}
	// Fate draws happen only under a positive drop probability, so the
	// benign draw sequence is untouched by the fault layer's existence.
	p.pol = net.FaultPolicy()
	dropP := 0.0
	if p.pol != nil {
		dropP = p.pol.DropProb()
	}
	drawFate := func(rng *xrand.Rand) uint8 {
		if dropP <= 0 {
			return 0
		}
		var fate uint8
		if rng.Bernoulli(dropP) {
			fate |= fatePushLost
		}
		if rng.Bernoulli(dropP) {
			fate |= fatePullLost
		}
		return fate
	}
	// Asymmetric (NAT-limited) connectivity folds into the push fate: a
	// push to a fated target is sent — and metered — but lost at the
	// NAT, so the exchange never happens (the pull direction is exempt:
	// it answers a contact the initiator opened, riding the established
	// path). Pure salted-hash consultation: no draws, so benign and
	// NAT-free streams are untouched.
	natFate := func(v graph.NodeID, fate uint8) uint8 {
		if p.pol != nil && p.pol.Unreachable(v) {
			fate |= fatePushLost
		}
		return fate
	}

	sw := parallel.Sweep[pair]{
		N:       n,
		NumKeys: g.NumIDs(),
		// Mutating churn never happens mid-round; the alive list is
		// stable, so position->ID is a pure mapping all round.
		Key: func(elem int32) int32 { return g.AliveAt(int(elem)) },
		Visit: func(sh *parallel.Shard[pair], elem int32, rng *xrand.Rand) error {
			u := g.AliveAt(int(elem))
			v, ok := g.RandomNeighbor(u, rng)
			if !ok {
				return nil
			}
			fate := natFate(v, drawFate(rng))
			sh.Meters[0]++ // push sent
			if fate&fatePushLost == 0 {
				sh.Meters[1]++ // pull answered
			}
			if t := sh.Owner(v); t == sh.Index {
				p.exchange(u, v, fate)
			} else {
				sh.Defer(t, pair{u: u, v: v, fate: fate})
			}
			return nil
		},
		Merge: func(sh *parallel.Shard[pair]) {
			net.SendN(metrics.KindPush, sh.Meters[0])
			net.SendN(metrics.KindPull, sh.Meters[1])
		},
		Resolve: func(pr pair, _ *xrand.Rand) error {
			p.exchange(pr.u, pr.v, pr.fate)
			return nil
		},
	}
	if err := p.engine.Round(p.rng, p.cfg.engine(), &sw); err != nil {
		panic(fmt.Sprintf("aggregation: round sweep failed: %v", err))
	}
}

// exchange performs one push-pull averaging between u and v: when either
// endpoint participates in the current epoch the other joins with value
// 0 and the pair averages. Under a fault policy, a lost push aborts the
// exchange, a lost pull leaves u with its old value after v already
// averaged (breaking mass conservation), and a lying endpoint's value is
// scaled as seen by its peer while its own copy stays honest.
func (p *Protocol) exchange(u, v graph.NodeID, fate uint8) {
	if fate&fatePushLost != 0 {
		return
	}
	if !p.participant(u) && !p.participant(v) {
		return
	}
	p.join(u)
	p.join(v)
	vu, vv := p.values[u], p.values[v]
	if p.pol == nil {
		avg := (vu + vv) / 2
		p.values[u] = avg
		p.values[v] = avg
		return
	}
	p.values[v] = (p.pol.ReportScale(u)*vu + vv) / 2
	if fate&fatePullLost == 0 {
		p.values[u] = (vu + p.pol.ReportScale(v)*vv) / 2
	}
}

// EstimateAt returns the size estimate 1/value held at the given node,
// and false when the node holds no usable value (not a participant, dead,
// or value zero). One of the paper's observations is that, after
// convergence, this is available at *every* node, with no result
// broadcast needed.
func (p *Protocol) EstimateAt(net *overlay.Network, id graph.NodeID) (float64, bool) {
	if !net.Alive(id) || !p.participant(id) {
		return 0, false
	}
	v := p.values[id]
	if v <= 0 {
		return 0, false
	}
	return 1 / v, true
}

// Estimate returns the current estimate at the initiator.
func (p *Protocol) Estimate(net *overlay.Network) (float64, bool) {
	if p.initiator == graph.None {
		return 0, false
	}
	return p.EstimateAt(net, p.initiator)
}

// MassInEpoch returns the total value held by live participants. In a
// static network this is exactly 1 (averaging conserves mass); under
// churn the deficit measures the mass lost to departures.
func (p *Protocol) MassInEpoch(net *overlay.Network) float64 {
	g := net.Graph()
	sum := 0.0
	for i := 0; i < g.NumAlive(); i++ {
		id := g.AliveAt(i)
		if p.participant(id) {
			sum += p.values[id]
		}
	}
	return sum
}

// ParticipantStats returns count, mean and standard deviation of the
// participant values — the convergence diagnostics (stddev/mean → 0).
func (p *Protocol) ParticipantStats(net *overlay.Network) (int, float64, float64) {
	g := net.Graph()
	var r stats.Running
	for i := 0; i < g.NumAlive(); i++ {
		id := g.AliveAt(i)
		if p.participant(id) {
			r.Add(p.values[id])
		}
	}
	return r.N(), r.Mean(), r.StdDev()
}

// Estimator adapts Protocol to the one-shot core.Estimator contract: each
// Estimate call runs a full epoch (StartEpoch + RoundsPerEpoch rounds)
// and reads the initiator's value.
type Estimator struct {
	p *Protocol
}

// NewEstimator builds the one-shot adapter.
func NewEstimator(cfg Config, rng *xrand.Rand) *Estimator {
	return &Estimator{p: New(cfg, rng)}
}

// Name identifies the estimator in reports.
func (e *Estimator) Name() string { return e.p.Name() }

// MutatesOverlay reports true (core.OverlayMutator): the epidemic class
// is cyclon-backed in deployment, where every exchange rewires views —
// the monitor must give it a private overlay clone even though the
// simulated rounds here leave the graph untouched.
func (e *Estimator) MutatesOverlay() bool { return true }

// Protocol exposes the underlying protocol instance.
func (e *Estimator) Protocol() *Protocol { return e.p }

// Estimate runs one full epoch and returns the initiator's estimate.
func (e *Estimator) Estimate(net *overlay.Network) (float64, error) {
	if err := e.p.StartEpoch(net); err != nil {
		return 0, err
	}
	for r := 0; r < e.p.cfg.RoundsPerEpoch; r++ {
		e.p.RunRound(net)
	}
	est, ok := e.p.Estimate(net)
	if !ok {
		return 0, errors.New("aggregation: initiator lost during epoch")
	}
	return est, nil
}

// ConvergenceRound runs rounds until the relative dispersion of
// participant values (stddev/mean) drops below eps, and returns the
// number of rounds needed (capped at maxRounds). Used by the convergence
// experiments and the epoch-length discussion in §IV-D.
func ConvergenceRound(net *overlay.Network, cfg Config, rng *xrand.Rand, eps float64, maxRounds int) (int, error) {
	p := New(cfg, rng)
	if err := p.StartEpoch(net); err != nil {
		return 0, err
	}
	for r := 1; r <= maxRounds; r++ {
		p.RunRound(net)
		n, mean, sd := p.ParticipantStats(net)
		// All alive nodes participating and dispersion small: converged.
		if n == net.Size() && mean > 0 && sd/mean < eps {
			return r, nil
		}
	}
	return maxRounds, fmt.Errorf("aggregation: no convergence within %d rounds", maxRounds)
}
