package aggregation

import (
	"math"
	"testing"

	"p2psize/internal/parallel"
	"p2psize/internal/stats"
	"p2psize/internal/xrand"
)

// epochValues runs one epoch of rounds and returns the full value
// vector plus the metered message total — the complete observable state
// a round sweep produces.
func epochValues(t *testing.T, n int, cfg Config, seed uint64, rounds int) ([]float64, uint64) {
	t.Helper()
	net := hetNet(n, seed)
	p := New(cfg, xrand.New(seed+1))
	if err := p.StartEpoch(net); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		p.RunRound(net)
	}
	out := append([]float64(nil), p.values...)
	return out, net.Counter().Total()
}

// TestShardedRoundWorkerCountInvariance is the tentpole invariant: at a
// fixed shard count the full value vector and the message total are
// byte-identical at workers 1, 2 and 8. Run under -race in CI this also
// proves the parallel phase writes no value from two goroutines.
func TestShardedRoundWorkerCountInvariance(t *testing.T) {
	const n, rounds = 3000, 12
	for _, shardsCfg := range []int{2, 4, 7} {
		cfg := Config{RoundsPerEpoch: rounds, Shards: shardsCfg, Workers: 1}
		ref, refMsgs := epochValues(t, n, cfg, 77, rounds)
		for _, workers := range []int{2, 8} {
			cfg.Workers = workers
			got, gotMsgs := epochValues(t, n, cfg, 77, rounds)
			if gotMsgs != refMsgs {
				t.Fatalf("shards=%d: messages differ at workers=%d: %d vs %d",
					shardsCfg, workers, gotMsgs, refMsgs)
			}
			for id := range ref {
				if math.Float64bits(ref[id]) != math.Float64bits(got[id]) {
					t.Fatalf("shards=%d: value of node %d differs at workers=%d: %v vs %v",
						shardsCfg, id, workers, ref[id], got[id])
				}
			}
		}
	}
}

func TestShardCountIsPartOfTheAlgorithm(t *testing.T) {
	// Guard against the opposite failure: a sweep that ignored its shard
	// streams entirely would also pass the invariance test.
	a, _ := epochValues(t, 3000, Config{RoundsPerEpoch: 10, Shards: 1, Workers: 1}, 78, 10)
	b, _ := epochValues(t, 3000, Config{RoundsPerEpoch: 10, Shards: 4, Workers: 1}, 78, 10)
	same := true
	for id := range a {
		if a[id] != b[id] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("1-shard and 4-shard sweeps produced identical values")
	}
}

func TestShardedRoundConservesMass(t *testing.T) {
	// Cross-shard pairs are deferred, not dropped: averaging still
	// conserves the epoch's total mass of 1.
	net := hetNet(3000, 79)
	p := New(Config{RoundsPerEpoch: 20, Shards: 8, Workers: 8}, xrand.New(80))
	if err := p.StartEpoch(net); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 20; r++ {
		p.RunRound(net)
		if m := p.MassInEpoch(net); math.Abs(m-1) > 1e-9 {
			t.Fatalf("round %d: mass = %g", r, m)
		}
	}
}

func TestShardsBeyondCapPanics(t *testing.T) {
	// The sweeps stamp ownership into uint16 tags; an uncapped explicit
	// shard count would wrap them and race the parallel phase.
	defer func() {
		if recover() == nil {
			t.Fatal("Shards beyond parallel.MaxConfigShards did not panic")
		}
	}()
	New(Config{RoundsPerEpoch: 1, Shards: parallel.MaxConfigShards + 1}, xrand.New(1))
}

// TestLocalShuffleWorkerCountInvariance extends the invariance to the
// engine's ShuffleLocal mode: different draws from the global shuffle,
// same worker-count independence.
func TestLocalShuffleWorkerCountInvariance(t *testing.T) {
	const n, rounds = 3000, 12
	cfg := Config{RoundsPerEpoch: rounds, Shards: 4, Workers: 1, Shuffle: parallel.ShuffleLocal}
	ref, refMsgs := epochValues(t, n, cfg, 81, rounds)
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		got, gotMsgs := epochValues(t, n, cfg, 81, rounds)
		if gotMsgs != refMsgs {
			t.Fatalf("messages differ at workers=%d: %d vs %d", workers, gotMsgs, refMsgs)
		}
		for id := range ref {
			if math.Float64bits(ref[id]) != math.Float64bits(got[id]) {
				t.Fatalf("value of node %d differs at workers=%d", id, workers)
			}
		}
	}
}

// TestShuffleModeIsPartOfTheAlgorithm: the local-shuffle mode draws a
// different (equally valid) trajectory — a mode knob that silently fell
// back to the global shuffle would pass every other test.
func TestShuffleModeIsPartOfTheAlgorithm(t *testing.T) {
	a, _ := epochValues(t, 3000, Config{RoundsPerEpoch: 10, Shards: 4, Workers: 1}, 82, 10)
	b, _ := epochValues(t, 3000, Config{RoundsPerEpoch: 10, Shards: 4, Workers: 1, Shuffle: parallel.ShuffleLocal}, 82, 10)
	same := true
	for id := range a {
		if a[id] != b[id] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("global and local shuffle produced identical values")
	}
}

// TestLocalShuffleStatisticalEquivalence is the acceptance gate for the
// localshuffle knob: over 30 seeded one-epoch estimations, the
// local-shuffle estimator's mean and spread match the frozen
// global-shuffle estimator's within the same envelopes the sharded
// sweep itself had to meet.
func TestLocalShuffleStatisticalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("30 full epochs at n=2000")
	}
	const n, runs = 2000, 30
	distribution := func(mode parallel.ShuffleMode) (mean, sd float64) {
		var r stats.Running
		for i := 0; i < runs; i++ {
			net := hetNet(n, uint64(600+i))
			e := NewEstimator(Config{RoundsPerEpoch: 50, Shards: 8, Workers: 1, Shuffle: mode},
				xrand.New(uint64(1000+i)))
			est, err := e.Estimate(net)
			if err != nil {
				t.Fatal(err)
			}
			r.Add(est)
		}
		return r.Mean(), r.StdDev()
	}
	gMean, gSD := distribution(parallel.ShuffleGlobal)
	lMean, lSD := distribution(parallel.ShuffleLocal)
	if math.Abs(gMean-n)/n > 0.02 || math.Abs(lMean-n)/n > 0.02 {
		t.Fatalf("means off truth: global %.1f, local %.1f (n=%d)", gMean, lMean, n)
	}
	if math.Abs(lMean-gMean)/n > 0.02 {
		t.Fatalf("means diverge: global %.1f vs local %.1f", gMean, lMean)
	}
	if gSD/n > 0.05 || lSD/n > 0.05 {
		t.Fatalf("spread too wide: global sd %.1f, local sd %.1f", gSD, lSD)
	}
	if math.Abs(lSD-gSD)/n > 0.03 {
		t.Fatalf("spreads diverge: global sd %.1f vs local sd %.1f", gSD, lSD)
	}
}

// TestShardedStatisticalEquivalence checks the sharded sweep is the
// same estimator statistically: over 30 seeded one-epoch estimations on
// fresh overlays, the mean and spread of the size estimate match the
// sequential sweep's within tight tolerances.
func TestShardedStatisticalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("30 full epochs at n=2000")
	}
	const n, runs = 2000, 30
	distribution := func(shards int) (mean, sd float64) {
		var r stats.Running
		for i := 0; i < runs; i++ {
			net := hetNet(n, uint64(500+i))
			e := NewEstimator(Config{RoundsPerEpoch: 50, Shards: shards, Workers: 1},
				xrand.New(uint64(900+i)))
			est, err := e.Estimate(net)
			if err != nil {
				t.Fatal(err)
			}
			r.Add(est)
		}
		return r.Mean(), r.StdDev()
	}
	seqMean, seqSD := distribution(1)
	shMean, shSD := distribution(8)
	// Both estimators converge to the true size with a small spread...
	if math.Abs(seqMean-n)/n > 0.02 || math.Abs(shMean-n)/n > 0.02 {
		t.Fatalf("means off truth: seq %.1f, sharded %.1f (n=%d)", seqMean, shMean, n)
	}
	// ... and the sharded distribution tracks the sequential one.
	if math.Abs(shMean-seqMean)/n > 0.02 {
		t.Fatalf("means diverge: seq %.1f vs sharded %.1f", seqMean, shMean)
	}
	if seqSD/n > 0.03 || shSD/n > 0.03 {
		t.Fatalf("spread too wide: seq sd %.1f, sharded sd %.1f", seqSD, shSD)
	}
	if math.Abs(shSD-seqSD)/n > 0.03 {
		t.Fatalf("spreads diverge: seq sd %.1f vs sharded sd %.1f", seqSD, shSD)
	}
}
