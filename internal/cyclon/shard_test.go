package cyclon

import (
	"math"
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/parallel"
	"p2psize/internal/stats"
	"p2psize/internal/xrand"
)

// roundState runs rounds shuffle rounds (after 30% silent departures,
// so dead-target and stale-entry paths are exercised) and returns the
// full view state plus the metered message total.
func roundState(t *testing.T, n int, cfg Config, seed uint64, rounds int) ([][]entry, uint64) {
	t.Helper()
	g := graph.Heterogeneous(n, 10, xrand.New(seed))
	p := New(cfg, xrand.New(seed+1), nil)
	p.Bootstrap(g)
	rng := xrand.New(seed + 2)
	ids := p.appendMemberIDs(nil)
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids[:n*3/10] {
		p.Leave(id)
	}
	for r := 0; r < rounds; r++ {
		p.RunRound()
	}
	out := make([][]entry, len(p.views))
	for id, view := range p.views {
		if p.member[id] {
			out[id] = append([]entry(nil), view...)
		}
	}
	return out, p.counter.Total()
}

func viewsEqual(a, b [][]entry) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for id := range a {
		if len(a[id]) != len(b[id]) {
			return id, false
		}
		for i := range a[id] {
			if a[id][i] != b[id][i] {
				return id, false
			}
		}
	}
	return 0, true
}

// TestShardedRoundWorkerCountInvariance mirrors the aggregation
// invariant: at a fixed shard count every view (entries AND ages) and
// the message total are byte-identical at workers 1, 2 and 8. Under
// -race this also proves no view is written by two shards.
func TestShardedRoundWorkerCountInvariance(t *testing.T) {
	const n, rounds = 2000, 8
	for _, shardsCfg := range []int{2, 5, 8} {
		cfg := Default()
		cfg.Shards = shardsCfg
		cfg.Workers = 1
		ref, refMsgs := roundState(t, n, cfg, 300, rounds)
		for _, workers := range []int{2, 8} {
			cfg.Workers = workers
			got, gotMsgs := roundState(t, n, cfg, 300, rounds)
			if gotMsgs != refMsgs {
				t.Fatalf("shards=%d: messages differ at workers=%d: %d vs %d",
					shardsCfg, workers, gotMsgs, refMsgs)
			}
			if id, ok := viewsEqual(ref, got); !ok {
				t.Fatalf("shards=%d: view of node %d differs at workers=%d",
					shardsCfg, id, workers)
			}
		}
	}
}

func TestShardsBeyondCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shards beyond parallel.MaxConfigShards did not panic")
		}
	}()
	cfg := Default()
	cfg.Shards = parallel.MaxConfigShards + 1
	New(cfg, xrand.New(1), nil)
}

func TestShardCountIsPartOfTheAlgorithm(t *testing.T) {
	a, _ := roundState(t, 2000, Config{ViewSize: 8, ShuffleLen: 4, Shards: 1, Workers: 1}, 301, 5)
	b, _ := roundState(t, 2000, Config{ViewSize: 8, ShuffleLen: 4, Shards: 4, Workers: 1}, 301, 5)
	if _, same := viewsEqual(a, b); same {
		t.Fatal("1-shard and 4-shard rounds produced identical views")
	}
}

// TestShardedDegreeDistribution checks the sharded shuffle maintains
// the same overlay statistically: after the same churn and round count,
// the exported graph's degree distribution (mean, spread, max) and the
// stale-entry flush match the sequential shuffle's within tolerance.
func TestShardedDegreeDistribution(t *testing.T) {
	const n, rounds = 2000, 30
	measure := func(shards int) (mean, sd float64, max int, stale float64, comp int) {
		g := graph.Heterogeneous(n, 10, xrand.New(302))
		cfg := Default()
		cfg.Shards = shards
		cfg.Workers = 1
		p := New(cfg, xrand.New(303), nil)
		p.Bootstrap(g)
		rng := xrand.New(304)
		ids := p.appendMemberIDs(nil)
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids[:n*3/10] {
			p.Leave(id)
		}
		for r := 0; r < rounds; r++ {
			p.RunRound()
		}
		eg := p.ExportGraph(n)
		var deg stats.Running
		eg.ForEachAlive(func(id graph.NodeID) {
			d := eg.Degree(id)
			deg.Add(float64(d))
			if d > max {
				max = d
			}
		})
		return deg.Mean(), deg.StdDev(), max, p.StaleFraction(), graph.LargestComponent(eg)
	}
	seqMean, seqSD, seqMax, seqStale, seqComp := measure(1)
	shMean, shSD, shMax, shStale, shComp := measure(8)
	if math.Abs(shMean-seqMean) > 0.1*seqMean {
		t.Fatalf("mean degree diverged: seq %.2f vs sharded %.2f", seqMean, shMean)
	}
	if math.Abs(shSD-seqSD) > 0.25*seqSD {
		t.Fatalf("degree spread diverged: seq %.2f vs sharded %.2f", seqSD, shSD)
	}
	if shMax > 4*Default().ViewSize || seqMax > 4*Default().ViewSize {
		t.Fatalf("in-degree balance lost: max degree seq %d, sharded %d", seqMax, shMax)
	}
	if seqStale > 0.02 != (shStale > 0.02) {
		t.Fatalf("stale flushing diverged: seq %.3f vs sharded %.3f", seqStale, shStale)
	}
	survivors := n - n*3/10
	if seqComp < survivors*98/100 || shComp < survivors*98/100 {
		t.Fatalf("connectivity diverged: largest component seq %d, sharded %d of %d survivors",
			seqComp, shComp, survivors)
	}
}

// TestLocalShuffleWorkerCountInvariance extends the invariance to the
// engine's ShuffleLocal mode: different draws from the global shuffle,
// same worker-count independence of every view and the message total.
func TestLocalShuffleWorkerCountInvariance(t *testing.T) {
	const n, rounds = 2000, 8
	cfg := Default()
	cfg.Shards = 5
	cfg.Workers = 1
	cfg.Shuffle = parallel.ShuffleLocal
	ref, refMsgs := roundState(t, n, cfg, 310, rounds)
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		got, gotMsgs := roundState(t, n, cfg, 310, rounds)
		if gotMsgs != refMsgs {
			t.Fatalf("messages differ at workers=%d: %d vs %d", workers, gotMsgs, refMsgs)
		}
		if id, ok := viewsEqual(ref, got); !ok {
			t.Fatalf("view of node %d differs at workers=%d", id, workers)
		}
	}
}

// TestLocalShuffleOverlayHealth is the statistical-equivalence gate for
// the localshuffle knob on the membership family: after identical churn
// and round counts, the local-shuffle overlay matches the
// global-shuffle one on degree distribution, stale-entry flushing, and
// connectivity — the same health envelope the sharded sweep had to
// meet against the sequential one.
func TestLocalShuffleOverlayHealth(t *testing.T) {
	const n, rounds = 2000, 30
	measure := func(mode parallel.ShuffleMode) (mean, sd float64, max int, stale float64, comp int) {
		g := graph.Heterogeneous(n, 10, xrand.New(311))
		cfg := Default()
		cfg.Shards = 8
		cfg.Workers = 1
		cfg.Shuffle = mode
		p := New(cfg, xrand.New(312), nil)
		p.Bootstrap(g)
		rng := xrand.New(313)
		ids := p.appendMemberIDs(nil)
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids[:n*3/10] {
			p.Leave(id)
		}
		for r := 0; r < rounds; r++ {
			p.RunRound()
		}
		eg := p.ExportGraph(n)
		var deg stats.Running
		eg.ForEachAlive(func(id graph.NodeID) {
			d := eg.Degree(id)
			deg.Add(float64(d))
			if d > max {
				max = d
			}
		})
		return deg.Mean(), deg.StdDev(), max, p.StaleFraction(), graph.LargestComponent(eg)
	}
	gMean, gSD, gMax, gStale, gComp := measure(parallel.ShuffleGlobal)
	lMean, lSD, lMax, lStale, lComp := measure(parallel.ShuffleLocal)
	if math.Abs(lMean-gMean) > 0.1*gMean {
		t.Fatalf("mean degree diverged: global %.2f vs local %.2f", gMean, lMean)
	}
	if math.Abs(lSD-gSD) > 0.25*gSD {
		t.Fatalf("degree spread diverged: global %.2f vs local %.2f", gSD, lSD)
	}
	if lMax > 4*Default().ViewSize || gMax > 4*Default().ViewSize {
		t.Fatalf("in-degree balance lost: max degree global %d, local %d", gMax, lMax)
	}
	if gStale > 0.02 != (lStale > 0.02) {
		t.Fatalf("stale flushing diverged: global %.3f vs local %.3f", gStale, lStale)
	}
	survivors := n - n*3/10
	if gComp < survivors*98/100 || lComp < survivors*98/100 {
		t.Fatalf("connectivity diverged: largest component global %d, local %d of %d survivors",
			gComp, lComp, survivors)
	}
}

// TestShardedViewInvariants: capacity, no self-pointers, no duplicates
// — the merge invariants hold when shuffles complete out of the
// initiator order via the fix-up pass.
func TestShardedViewInvariants(t *testing.T) {
	g := graph.Heterogeneous(1500, 10, xrand.New(305))
	cfg := Default()
	cfg.Shards = 6
	cfg.Workers = 8
	p := New(cfg, xrand.New(306), nil)
	p.Bootstrap(g)
	for r := 0; r < 25; r++ {
		p.RunRound()
	}
	for _, id := range p.appendMemberIDs(nil) {
		view := p.views[id]
		if len(view) > cfg.ViewSize {
			t.Fatalf("view of %d has %d entries, cap %d", id, len(view), cfg.ViewSize)
		}
		seen := map[graph.NodeID]bool{}
		for _, e := range view {
			if e.node == id {
				t.Fatalf("self-pointer in view of %d", id)
			}
			if seen[e.node] {
				t.Fatalf("duplicate %d in view of %d", e.node, id)
			}
			seen[e.node] = true
		}
	}
}
