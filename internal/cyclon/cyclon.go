// Package cyclon implements the CYCLON membership-management protocol
// (Voulgaris, Gavidia & van Steen — reference [19] of the comparative
// study), the gossip-based peer-sampling service the paper points at for
// actually building and maintaining its random overlays ("We do not
// consider in this paper the actual construction of such graphs but
// several approaches exist to build such peer to peer overlay in
// practice [10]").
//
// Every node keeps a small partial view of (neighbor, age) entries. Each
// round ("enhanced shuffling"), a node increments its entries' ages,
// picks its OLDEST neighbor q, sends it a random subset of its view with
// a fresh self-pointer, and q answers with a random subset of its own
// view; both sides merge what they received, preferring fresh entries
// and discarding self-pointers and duplicates. Shuffling keeps the
// overlay connected, in-degree balanced, and — crucially for churn —
// flushes dead peers out of views because their entries age until they
// are chosen for a shuffle, fail, and are dropped.
//
// The package maintains its own directed views and can export the
// induced undirected graph as an overlay for the size estimators,
// closing the loop: estimators running on a CYCLON-maintained overlay
// keep working through churn that would fragment the paper's
// no-repair graphs (see the extension experiment and its benchmark).
package cyclon

import (
	"errors"
	"fmt"
	"sort"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

// Config parameterizes the protocol.
type Config struct {
	// ViewSize is the partial-view capacity c (CYCLON paper: 20-50 for
	// large networks; the comparative study's overlays average ~7 links,
	// so the default is 8).
	ViewSize int
	// ShuffleLen is how many entries travel per shuffle (<= ViewSize).
	ShuffleLen int
}

// Default returns ViewSize 8, ShuffleLen 4.
func Default() Config { return Config{ViewSize: 8, ShuffleLen: 4} }

func (c *Config) validate() error {
	if c.ViewSize < 1 {
		return errors.New("cyclon: ViewSize must be >= 1")
	}
	if c.ShuffleLen < 1 || c.ShuffleLen > c.ViewSize {
		return errors.New("cyclon: ShuffleLen must be in [1, ViewSize]")
	}
	return nil
}

type entry struct {
	node graph.NodeID
	age  int32
}

// Protocol is a running CYCLON instance over a set of peers.
type Protocol struct {
	cfg     Config
	rng     *xrand.Rand
	views   map[graph.NodeID][]entry
	counter *metrics.Counter
}

// New builds a protocol instance; counter may be nil.
func New(cfg Config, rng *xrand.Rand, counter *metrics.Counter) *Protocol {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("cyclon: nil rng")
	}
	if counter == nil {
		counter = &metrics.Counter{}
	}
	return &Protocol{
		cfg:     cfg,
		rng:     rng,
		views:   make(map[graph.NodeID][]entry),
		counter: counter,
	}
}

// Counter returns the message meter (shuffle request/reply pairs).
func (p *Protocol) Counter() *metrics.Counter { return p.counter }

// Size returns the number of participating peers.
func (p *Protocol) Size() int { return len(p.views) }

// Bootstrap populates views from an existing overlay graph: each node's
// initial view is a random subset of its graph neighbors (capped at
// ViewSize), age zero.
func (p *Protocol) Bootstrap(g *graph.Graph) {
	g.ForEachAlive(func(id graph.NodeID) {
		nbrs := g.Neighbors(id)
		view := make([]entry, 0, p.cfg.ViewSize)
		order := p.rng.Perm(len(nbrs))
		for _, i := range order {
			if len(view) == p.cfg.ViewSize {
				break
			}
			view = append(view, entry{node: nbrs[i]})
		}
		p.views[id] = view
	})
}

// Join adds a fresh peer whose view is seeded with up to ViewSize random
// existing participants (the introducer mechanism). Joining twice
// panics.
func (p *Protocol) Join(id graph.NodeID) {
	if _, dup := p.views[id]; dup {
		panic(fmt.Sprintf("cyclon: node %d already participates", id))
	}
	// A seeded random sample of participants, not the first map keys:
	// map order would seed different views on identical runs.
	ids := make([]graph.NodeID, 0, len(p.views))
	for other := range p.views {
		ids = append(ids, other)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	p.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	view := make([]entry, 0, p.cfg.ViewSize)
	for _, other := range ids {
		if len(view) == p.cfg.ViewSize {
			break
		}
		view = append(view, entry{node: other})
	}
	p.views[id] = view
}

// Leave removes a peer silently — exactly how real churn behaves; other
// views still hold stale pointers that shuffling will discover and drop.
func (p *Protocol) Leave(id graph.NodeID) {
	if _, ok := p.views[id]; !ok {
		panic(fmt.Sprintf("cyclon: node %d does not participate", id))
	}
	delete(p.views, id)
}

// Alive reports whether the peer participates.
func (p *Protocol) Alive(id graph.NodeID) bool {
	_, ok := p.views[id]
	return ok
}

// View returns a copy of a peer's current neighbor list.
func (p *Protocol) View(id graph.NodeID) []graph.NodeID {
	view := p.views[id]
	out := make([]graph.NodeID, len(view))
	for i, e := range view {
		out[i] = e.node
	}
	return out
}

// RunRound performs one shuffle per participating peer, in random order.
// Each successful shuffle costs one request and one reply message; a
// shuffle aimed at a dead peer costs the request only and evicts the
// stale entry.
func (p *Protocol) RunRound() {
	ids := make([]graph.NodeID, 0, len(p.views))
	for id := range p.views {
		ids = append(ids, id)
	}
	// Map iteration order is nondeterministic; determinism comes from
	// sorting into a stable order and then shuffling with the seeded rng.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	p.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids {
		if _, still := p.views[id]; still {
			p.shuffle(id)
		}
	}
}

// shuffle runs one exchange initiated by id.
func (p *Protocol) shuffle(id graph.NodeID) {
	view := p.views[id]
	if len(view) == 0 {
		return
	}
	// 1. Increase ages; pick the oldest neighbor q.
	oldest := 0
	for i := range view {
		view[i].age++
		if view[i].age > view[oldest].age {
			oldest = i
		}
	}
	q := view[oldest].node
	// Remove q from the view (it is being contacted).
	view[oldest] = view[len(view)-1]
	view = view[:len(view)-1]
	p.views[id] = view

	p.counter.Inc(metrics.KindControl) // shuffle request
	qView, qAlive := p.views[q]
	if !qAlive {
		// Dead neighbor discovered: the request times out and the stale
		// entry stays dropped. This is CYCLON's churn-flushing mechanism.
		return
	}
	p.counter.Inc(metrics.KindControl) // shuffle reply

	// 2. Build the outgoing subset: fresh self-pointer + up to
	// ShuffleLen-1 random entries from the (q-less) view.
	out := []entry{{node: id, age: 0}}
	idxs := p.rng.Perm(len(view))
	for _, i := range idxs {
		if len(out) == p.cfg.ShuffleLen {
			break
		}
		out = append(out, view[i])
	}
	// 3. q answers with a random subset of its own view.
	back := make([]entry, 0, p.cfg.ShuffleLen)
	qIdxs := p.rng.Perm(len(qView))
	for _, i := range qIdxs {
		if len(back) == p.cfg.ShuffleLen {
			break
		}
		back = append(back, qView[i])
	}
	// 4. Both merge what they received.
	p.views[q] = p.merge(q, qView, out, back)
	p.views[id] = p.merge(id, p.views[id], back, out)
}

// merge folds received entries into view for owner: self-pointers and
// duplicates are dropped; if the view overflows, entries that were sent
// away (sent) are evicted first, then the oldest.
func (p *Protocol) merge(owner graph.NodeID, view, received, sent []entry) []entry {
	have := make(map[graph.NodeID]bool, len(view))
	for _, e := range view {
		have[e.node] = true
	}
	for _, e := range received {
		if e.node == owner || have[e.node] {
			continue
		}
		if len(view) < p.cfg.ViewSize {
			view = append(view, e)
			have[e.node] = true
			continue
		}
		// Overflow: replace an entry that was shipped out, else the
		// oldest entry.
		victim := -1
		for i := range view {
			for _, s := range sent {
				if view[i].node == s.node {
					victim = i
					break
				}
			}
			if victim >= 0 {
				break
			}
		}
		if victim < 0 {
			victim = 0
			for i := range view {
				if view[i].age > view[victim].age {
					victim = i
				}
			}
		}
		delete(have, view[victim].node)
		view[victim] = e
		have[e.node] = true
	}
	return view
}

// ExportGraph materializes the undirected overlay induced by the current
// views (an edge per view entry pointing at a live peer) as a
// graph.Graph, preserving node IDs up to maxID. Estimators can run on
// the result exactly as on the paper's static graphs.
func (p *Protocol) ExportGraph(maxID int) *graph.Graph {
	g := graph.NewWithNodes(maxID)
	for id := range p.views {
		if int(id) >= maxID {
			panic(fmt.Sprintf("cyclon: node %d beyond maxID %d", id, maxID))
		}
	}
	for id := graph.NodeID(0); int(id) < maxID; id++ {
		if !p.Alive(id) {
			g.RemoveNode(id)
		}
	}
	// Add edges in id order, not map order: adjacency order decides every
	// later RandomNeighbor draw, so map iteration here would make exported
	// overlays differ between identically seeded runs.
	for id := graph.NodeID(0); int(id) < maxID; id++ {
		for _, e := range p.views[id] {
			if p.Alive(e.node) {
				g.AddEdge(id, e.node)
			}
		}
	}
	return g
}

// ExportOverlay wraps ExportGraph into an overlay.Network sharing the
// protocol's message counter, so estimation overhead and maintenance
// overhead land in one budget.
func (p *Protocol) ExportOverlay(maxID, maxDeg int) *overlay.Network {
	return overlay.New(p.ExportGraph(maxID), maxDeg, p.counter)
}

// StaleFraction returns the fraction of view entries pointing at dead
// peers — the health metric shuffling drives toward zero after churn.
func (p *Protocol) StaleFraction() float64 {
	total, stale := 0, 0
	for _, view := range p.views {
		for _, e := range view {
			total++
			if !p.Alive(e.node) {
				stale++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(stale) / float64(total)
}

// AvgViewSize returns the mean view occupancy.
func (p *Protocol) AvgViewSize() float64 {
	if len(p.views) == 0 {
		return 0
	}
	total := 0
	for _, view := range p.views {
		total += len(view)
	}
	return float64(total) / float64(len(p.views))
}
