// Package cyclon implements the CYCLON membership-management protocol
// (Voulgaris, Gavidia & van Steen — reference [19] of the comparative
// study), the gossip-based peer-sampling service the paper points at for
// actually building and maintaining its random overlays ("We do not
// consider in this paper the actual construction of such graphs but
// several approaches exist to build such peer to peer overlay in
// practice [10]").
//
// Every node keeps a small partial view of (neighbor, age) entries. Each
// round ("enhanced shuffling"), a node increments its entries' ages,
// picks its OLDEST neighbor q, sends it a random subset of its view with
// a fresh self-pointer, and q answers with a random subset of its own
// view; both sides merge what they received, preferring fresh entries
// and discarding self-pointers and duplicates. Shuffling keeps the
// overlay connected, in-degree balanced, and — crucially for churn —
// flushes dead peers out of views because their entries age until they
// are chosen for a shuffle, fail, and are dropped.
//
// Views are stored in a dense slice indexed by node ID, which lets one
// round's shuffles run on the shared sharded-round engine
// (parallel.RoundEngine) exactly like the Aggregation sweep: the
// initiator order is cut into segments with per-shard xrand streams,
// shuffles whose target lies in another shard are deferred to the
// engine's tournament fix-up pass, and the resulting views are
// byte-identical at every Config.Workers setting.
//
// The package maintains its own directed views and can export the
// induced undirected graph as an overlay for the size estimators,
// closing the loop: estimators running on a CYCLON-maintained overlay
// keep working through churn that would fragment the paper's
// no-repair graphs (see the extension experiment and its benchmark).
package cyclon

import (
	"errors"
	"fmt"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/parallel"
	"p2psize/internal/xrand"
)

// Config parameterizes the protocol.
type Config struct {
	// ViewSize is the partial-view capacity c (CYCLON paper: 20-50 for
	// large networks; the comparative study's overlays average ~7 links,
	// so the default is 8).
	ViewSize int
	// ShuffleLen is how many entries travel per shuffle (<= ViewSize).
	ShuffleLen int
	// Shards splits each round's shuffled initiator order into this many
	// segments on per-round xrand streams; cross-shard shuffles are
	// deferred to an ordered fix-up pass. Like the Aggregation sweep,
	// the shard count is part of the algorithm while Workers only shapes
	// scheduling. 0 picks one shard per parallel.MinShardNodes peers (at
	// most parallel.MaxShards).
	Shards int
	// Workers caps the goroutines executing the shards of one round:
	// 0 means runtime.NumCPU(), 1 forces sequential execution. Workers
	// only changes wall time, never output.
	Workers int
	// Shuffle selects the sweep-order randomization: the default
	// ShuffleGlobal reproduces the frozen serial-shuffle draw order,
	// ShuffleLocal shuffles per shard inside the parallel phase. Part of
	// the output, like Shards.
	Shuffle parallel.ShuffleMode
}

// engine projects the sharded-round knobs onto the engine's config.
func (c Config) engine() parallel.EngineConfig {
	return parallel.EngineConfig{Shards: c.Shards, Workers: c.Workers, Shuffle: c.Shuffle}
}

// Default returns ViewSize 8, ShuffleLen 4.
func Default() Config { return Config{ViewSize: 8, ShuffleLen: 4} }

func (c *Config) validate() error {
	if c.ViewSize < 1 {
		return errors.New("cyclon: ViewSize must be >= 1")
	}
	if c.ShuffleLen < 1 || c.ShuffleLen > c.ViewSize {
		return errors.New("cyclon: ShuffleLen must be in [1, ViewSize]")
	}
	if err := c.engine().Validate(); err != nil {
		return fmt.Errorf("cyclon: %w", err)
	}
	return nil
}

type entry struct {
	node graph.NodeID
	age  int32
}

// Protocol is a running CYCLON instance over a set of peers. Views live
// in dense slices indexed by node ID so concurrent shards can write
// distinct peers' views without sharing map internals.
type Protocol struct {
	cfg     Config
	rng     *xrand.Rand
	views   [][]entry // indexed by node ID; meaningful iff member[id]
	member  []bool
	count   int
	counter *metrics.Counter

	members []graph.NodeID                 // scratch: member ids in base order
	engine  parallel.RoundEngine[deferred] // owns all sharded-sweep scratch
}

// deferred is one cross-shard shuffle: id initiated, q is its (live)
// oldest neighbor, owned by another shard.
type deferred struct {
	id, q graph.NodeID
}

// New builds a protocol instance; counter may be nil.
func New(cfg Config, rng *xrand.Rand, counter *metrics.Counter) *Protocol {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("cyclon: nil rng")
	}
	if counter == nil {
		counter = &metrics.Counter{}
	}
	return &Protocol{cfg: cfg, rng: rng, counter: counter}
}

// Counter returns the message meter (shuffle request/reply pairs).
func (p *Protocol) Counter() *metrics.Counter { return p.counter }

// Size returns the number of participating peers.
func (p *Protocol) Size() int { return p.count }

// grow extends the dense view storage to cover ids [0, n).
func (p *Protocol) grow(n int) {
	for len(p.views) < n {
		p.views = append(p.views, nil)
		p.member = append(p.member, false)
	}
}

// appendMemberIDs appends the participating peer ids in ascending order
// — the deterministic base order every round and join shuffles from.
func (p *Protocol) appendMemberIDs(dst []graph.NodeID) []graph.NodeID {
	for id, in := range p.member {
		if in {
			dst = append(dst, graph.NodeID(id))
		}
	}
	return dst
}

// Bootstrap populates views from an existing overlay graph: each node's
// initial view is a random subset of its graph neighbors (capped at
// ViewSize), age zero.
func (p *Protocol) Bootstrap(g *graph.Graph) {
	p.grow(g.NumIDs())
	g.ForEachAlive(func(id graph.NodeID) {
		nbrs := g.Neighbors(id)
		view := make([]entry, 0, p.cfg.ViewSize)
		order := p.rng.Perm(len(nbrs))
		for _, i := range order {
			if len(view) == p.cfg.ViewSize {
				break
			}
			view = append(view, entry{node: nbrs[i]})
		}
		if !p.member[id] {
			p.member[id] = true
			p.count++
		}
		p.views[id] = view
	})
}

// Join adds a fresh peer whose view is seeded with up to ViewSize random
// existing participants (the introducer mechanism). Joining twice
// panics.
func (p *Protocol) Join(id graph.NodeID) {
	p.grow(int(id) + 1)
	if p.member[id] {
		panic(fmt.Sprintf("cyclon: node %d already participates", id))
	}
	// A seeded random sample of participants in a fixed base order, so
	// identical runs seed identical views.
	ids := p.appendMemberIDs(nil)
	p.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	view := make([]entry, 0, p.cfg.ViewSize)
	for _, other := range ids {
		if len(view) == p.cfg.ViewSize {
			break
		}
		view = append(view, entry{node: other})
	}
	p.member[id] = true
	p.count++
	p.views[id] = view
}

// Leave removes a peer silently — exactly how real churn behaves; other
// views still hold stale pointers that shuffling will discover and drop.
func (p *Protocol) Leave(id graph.NodeID) {
	if !p.Alive(id) {
		panic(fmt.Sprintf("cyclon: node %d does not participate", id))
	}
	p.member[id] = false
	p.views[id] = nil
	p.count--
}

// Alive reports whether the peer participates.
func (p *Protocol) Alive(id graph.NodeID) bool {
	return id >= 0 && int(id) < len(p.member) && p.member[id]
}

// View returns a copy of a peer's current neighbor list.
func (p *Protocol) View(id graph.NodeID) []graph.NodeID {
	if !p.Alive(id) {
		return nil
	}
	view := p.views[id]
	out := make([]graph.NodeID, len(view))
	for i, e := range view {
		out[i] = e.node
	}
	return out
}

// RunRound performs one shuffle per participating peer, in random order.
// Each successful shuffle costs one request and one reply message; a
// shuffle aimed at a dead peer costs the request only and evicts the
// stale entry.
//
// The round runs on the shared sharded-round engine, like
// aggregation.RunRound: the initiator order is cut into Config.Shards
// segments, each running on its own per-round xrand stream. A shard
// whose initiator targets a peer of the same shard completes the
// exchange immediately (both views are shard-owned); targets in other
// shards are deferred — the age bump and target eviction still happen
// in phase 1, on the initiator's own view. Deferred shuffles complete
// in the engine's fixed round-robin tournament of shard pairs, each
// meeting drawing from its own pair stream. Views are byte-identical
// at every Config.Workers setting.
func (p *Protocol) RunRound() {
	n := p.count
	if n == 0 {
		return
	}
	// The engine permutes positions into this fixed ascending base
	// order; shuffling positions and mapping through the base array is
	// the same permutation the pre-engine code drew shuffling the IDs
	// directly. Membership is frozen mid-round, so Alive reads race
	// with nothing.
	p.members = p.appendMemberIDs(p.members[:0])

	sw := parallel.Sweep[deferred]{
		N:       n,
		NumKeys: len(p.views),
		Key:     func(elem int32) int32 { return p.members[elem] },
		Visit: func(sh *parallel.Shard[deferred], elem int32, rng *xrand.Rand) error {
			id := p.members[elem]
			q, ok := p.beginShuffle(id)
			if !ok {
				return nil
			}
			sh.Meters[0]++ // shuffle request
			if !p.Alive(q) {
				// Dead neighbor discovered: the request times out and the
				// stale entry stays dropped — CYCLON's churn flushing.
				return nil
			}
			if t := sh.Owner(q); t == sh.Index {
				sh.Meters[0]++ // shuffle reply
				p.completeShuffle(id, q, rng)
			} else {
				sh.Defer(t, deferred{id: id, q: q})
			}
			return nil
		},
		// Every deferred shuffle has a live target, so its reply is
		// countable at merge time rather than inside the (concurrent)
		// tournament meetings.
		Merge: func(sh *parallel.Shard[deferred]) {
			p.counter.Add(metrics.KindControl, sh.Meters[0]+uint64(sh.DeferredTotal()))
		},
		Resolve: func(d deferred, rng *xrand.Rand) error {
			p.completeShuffle(d.id, d.q, rng)
			return nil
		},
		PairStreams: true,
	}
	if err := p.engine.Round(p.rng, p.cfg.engine(), &sw); err != nil {
		panic(fmt.Sprintf("cyclon: round sweep failed: %v", err))
	}
}

// beginShuffle runs the initiator-local half of a shuffle on id's own
// view: ages increase, the oldest neighbor q is picked and evicted. It
// reports false for an empty view.
func (p *Protocol) beginShuffle(id graph.NodeID) (graph.NodeID, bool) {
	view := p.views[id]
	if len(view) == 0 {
		return graph.None, false
	}
	oldest := 0
	for i := range view {
		view[i].age++
		if view[i].age > view[oldest].age {
			oldest = i
		}
	}
	q := view[oldest].node
	// Remove q from the view (it is being contacted).
	view[oldest] = view[len(view)-1]
	p.views[id] = view[:len(view)-1]
	return q, true
}

// completeShuffle runs the exchange between initiator id and its live
// target q: both draw their outgoing subsets from rng and merge what
// they received.
func (p *Protocol) completeShuffle(id, q graph.NodeID, rng *xrand.Rand) {
	view := p.views[id]
	// Build the outgoing subset: fresh self-pointer + up to
	// ShuffleLen-1 random entries from the (q-less) view.
	out := []entry{{node: id, age: 0}}
	idxs := rng.Perm(len(view))
	for _, i := range idxs {
		if len(out) == p.cfg.ShuffleLen {
			break
		}
		out = append(out, view[i])
	}
	// q answers with a random subset of its own view.
	qView := p.views[q]
	back := make([]entry, 0, p.cfg.ShuffleLen)
	qIdxs := rng.Perm(len(qView))
	for _, i := range qIdxs {
		if len(back) == p.cfg.ShuffleLen {
			break
		}
		back = append(back, qView[i])
	}
	// Both merge what they received.
	p.views[q] = p.merge(q, qView, out, back)
	p.views[id] = p.merge(id, p.views[id], back, out)
}

// merge folds received entries into view for owner: self-pointers and
// duplicates are dropped; if the view overflows, entries that were sent
// away (sent) are evicted first, then the oldest.
//
// Membership is checked by scanning the view directly: views hold at
// most ViewSize (~8) entries, where a linear pass over the live slice
// beats building a map — the map was one allocation per exchange, the
// dominant allocation of a shuffle round (visible in the
// BenchmarkCyclonRound profiles), and scanning the mutating view needs
// no bookkeeping to stay exact.
func (p *Protocol) merge(owner graph.NodeID, view, received, sent []entry) []entry {
	for _, e := range received {
		if e.node == owner || containsNode(view, e.node) {
			continue
		}
		if len(view) < p.cfg.ViewSize {
			view = append(view, e)
			continue
		}
		// Overflow: replace an entry that was shipped out, else the
		// oldest entry.
		victim := -1
		for i := range view {
			for _, s := range sent {
				if view[i].node == s.node {
					victim = i
					break
				}
			}
			if victim >= 0 {
				break
			}
		}
		if victim < 0 {
			victim = 0
			for i := range view {
				if view[i].age > view[victim].age {
					victim = i
				}
			}
		}
		view[victim] = e
	}
	return view
}

// containsNode reports whether the view holds an entry for n.
func containsNode(view []entry, n graph.NodeID) bool {
	for _, e := range view {
		if e.node == n {
			return true
		}
	}
	return false
}

// ExportGraph materializes the undirected overlay induced by the current
// views (an edge per view entry pointing at a live peer) as a
// graph.Graph, preserving node IDs up to maxID. Estimators can run on
// the result exactly as on the paper's static graphs.
func (p *Protocol) ExportGraph(maxID int) *graph.Graph {
	g := graph.NewWithNodes(maxID)
	for id := maxID; id < len(p.member); id++ {
		if p.member[id] {
			panic(fmt.Sprintf("cyclon: node %d beyond maxID %d", id, maxID))
		}
	}
	for id := graph.NodeID(0); int(id) < maxID; id++ {
		if !p.Alive(id) {
			g.RemoveNode(id)
		}
	}
	// Add edges in id order: adjacency order decides every later
	// RandomNeighbor draw, so identically seeded runs must export
	// identical orders.
	for id := graph.NodeID(0); int(id) < maxID && int(id) < len(p.views); id++ {
		if !p.member[id] {
			continue
		}
		for _, e := range p.views[id] {
			if p.Alive(e.node) {
				g.AddEdge(id, e.node)
			}
		}
	}
	return g
}

// ExportOverlay wraps ExportGraph into an overlay.Network sharing the
// protocol's message counter, so estimation overhead and maintenance
// overhead land in one budget.
func (p *Protocol) ExportOverlay(maxID, maxDeg int) *overlay.Network {
	return overlay.New(p.ExportGraph(maxID), maxDeg, p.counter)
}

// StaleFraction returns the fraction of view entries pointing at dead
// peers — the health metric shuffling drives toward zero after churn.
func (p *Protocol) StaleFraction() float64 {
	total, stale := 0, 0
	for id, view := range p.views {
		if !p.member[id] {
			continue
		}
		for _, e := range view {
			total++
			if !p.Alive(e.node) {
				stale++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(stale) / float64(total)
}

// AvgViewSize returns the mean view occupancy.
func (p *Protocol) AvgViewSize() float64 {
	if p.count == 0 {
		return 0
	}
	total := 0
	for id, view := range p.views {
		if p.member[id] {
			total += len(view)
		}
	}
	return float64(total) / float64(p.count)
}
