package cyclon

import (
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/samplecollide"
	"p2psize/internal/xrand"
)

func bootstrapped(n int, seed uint64) *Protocol {
	g := graph.Heterogeneous(n, 10, xrand.New(seed))
	p := New(Default(), xrand.New(seed+1), nil)
	p.Bootstrap(g)
	return p
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{ViewSize: 0, ShuffleLen: 1},
		{ViewSize: 4, ShuffleLen: 0},
		{ViewSize: 4, ShuffleLen: 5},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg, xrand.New(1), nil)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil rng did not panic")
			}
		}()
		New(Default(), nil, nil)
	}()
}

func TestBootstrapViews(t *testing.T) {
	p := bootstrapped(500, 1)
	if p.Size() != 500 {
		t.Fatalf("Size = %d", p.Size())
	}
	if avg := p.AvgViewSize(); avg < 4 || avg > 8 {
		t.Fatalf("AvgViewSize = %.1f", avg)
	}
	if p.StaleFraction() != 0 {
		t.Fatal("fresh bootstrap has stale entries")
	}
}

func TestViewCapacityInvariant(t *testing.T) {
	p := bootstrapped(300, 2)
	for r := 0; r < 30; r++ {
		p.RunRound()
	}
	for _, id := range p.appendMemberIDs(nil) {
		view := p.views[id]
		if len(view) > p.cfg.ViewSize {
			t.Fatalf("view of %d has %d entries, cap %d", id, len(view), p.cfg.ViewSize)
		}
		seen := map[graph.NodeID]bool{}
		for _, e := range view {
			if e.node == id {
				t.Fatalf("self-pointer in view of %d", id)
			}
			if seen[e.node] {
				t.Fatalf("duplicate %d in view of %d", e.node, id)
			}
			seen[e.node] = true
		}
	}
}

func TestShufflingPreservesConnectivity(t *testing.T) {
	p := bootstrapped(1000, 3)
	for r := 0; r < 50; r++ {
		p.RunRound()
	}
	g := p.ExportGraph(1000)
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if lc := graph.LargestComponent(g); lc < 990 {
		t.Fatalf("largest component %d of 1000 after 50 rounds", lc)
	}
}

func TestChurnFlushesStaleEntries(t *testing.T) {
	p := bootstrapped(1000, 4)
	rng := xrand.New(5)
	// Kill 30% of peers silently.
	ids := p.appendMemberIDs(nil)
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids[:300] {
		p.Leave(id)
	}
	before := p.StaleFraction()
	if before == 0 {
		t.Fatal("no stale entries after churn — test is vacuous")
	}
	for r := 0; r < 40; r++ {
		p.RunRound()
	}
	after := p.StaleFraction()
	if after > before/4 {
		t.Fatalf("stale fraction %.3f -> %.3f: shuffling did not flush dead peers", before, after)
	}
	// The survivors stay connected — the contrast with the paper's
	// no-repair churn rule.
	g := p.ExportGraph(1000)
	if lc := graph.LargestComponent(g); lc < 680 {
		t.Fatalf("largest component %d of 700 survivors", lc)
	}
}

func TestJoinSeedsView(t *testing.T) {
	p := bootstrapped(100, 6)
	g := graph.NewWithNodes(101) // IDs 0..100
	_ = g
	newID := graph.NodeID(100)
	p.Join(newID)
	if !p.Alive(newID) {
		t.Fatal("joined peer not alive")
	}
	if len(p.View(newID)) == 0 {
		t.Fatal("joined peer has empty view")
	}
	// After some rounds the newcomer should appear in others' views
	// (in-degree balancing).
	for r := 0; r < 20; r++ {
		p.RunRound()
	}
	indeg := 0
	for _, id := range p.appendMemberIDs(nil) {
		if id == newID {
			continue
		}
		for _, e := range p.views[id] {
			if e.node == newID {
				indeg++
			}
		}
	}
	if indeg == 0 {
		t.Fatal("newcomer never entered any view")
	}
}

func TestJoinLeavePanics(t *testing.T) {
	p := bootstrapped(10, 7)
	id := graph.NodeID(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double join did not panic")
			}
		}()
		p.Join(id)
	}()
	p.Leave(id)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double leave did not panic")
			}
		}()
		p.Leave(id)
	}()
}

func TestMessageAccounting(t *testing.T) {
	p := bootstrapped(200, 8)
	p.RunRound()
	total := p.Counter().Total()
	// One request per peer with a nonempty view, one reply per live
	// target: at most 2 per peer.
	if total == 0 || total > 2*200 {
		t.Fatalf("round cost = %d messages", total)
	}
}

func TestExportOverlaySharesCounter(t *testing.T) {
	p := bootstrapped(300, 9)
	for r := 0; r < 10; r++ {
		p.RunRound()
	}
	net := p.ExportOverlay(300, 10)
	maintenance := net.Counter().Total()
	if maintenance == 0 {
		t.Fatal("maintenance cost not visible through exported overlay")
	}
	// An estimator on the exported overlay adds to the same budget.
	e := samplecollide.New(samplecollide.Config{T: 10, L: 20}, xrand.New(10))
	if _, err := e.Estimate(net); err != nil {
		t.Fatal(err)
	}
	if net.Counter().Total() <= maintenance {
		t.Fatal("estimation cost not accounted")
	}
}

func TestEstimationOnCyclonOverlayUnderChurn(t *testing.T) {
	// End-to-end: a CYCLON-maintained overlay keeps estimators accurate
	// through churn.
	p := bootstrapped(2000, 11)
	rng := xrand.New(12)
	ids := p.appendMemberIDs(nil)
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids[:800] { // -40%
		p.Leave(id)
	}
	for r := 0; r < 30; r++ {
		p.RunRound()
	}
	net := p.ExportOverlay(2000, 10)
	e := samplecollide.New(samplecollide.Config{T: 10, L: 50}, xrand.New(13))
	sum := 0.0
	for i := 0; i < 5; i++ {
		est, err := e.Estimate(net)
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	mean := sum / 5
	if mean < 0.7*1200 || mean > 1.45*1200 {
		t.Fatalf("estimate %.0f on 1200 survivors", mean)
	}
}

func TestExportGraphBeyondMaxIDPanics(t *testing.T) {
	p := bootstrapped(10, 14)
	defer func() {
		if recover() == nil {
			t.Fatal("ExportGraph with small maxID did not panic")
		}
	}()
	p.ExportGraph(5)
}

func TestDegreeStaysBalanced(t *testing.T) {
	p := bootstrapped(500, 15)
	for r := 0; r < 40; r++ {
		p.RunRound()
	}
	g := p.ExportGraph(500)
	if max := graph.MaxDegree(g); max > 4*p.cfg.ViewSize {
		t.Fatalf("max undirected degree %d for view size %d", max, p.cfg.ViewSize)
	}
}

func TestExportGraphRunToRunDeterminism(t *testing.T) {
	// Regression: export once walked the views map in iteration order, so
	// identically seeded protocols exported different adjacency orders.
	build := func() *graph.Graph {
		g := graph.Heterogeneous(500, 10, xrand.New(3))
		p := New(Default(), xrand.New(4), nil)
		p.Bootstrap(g)
		for r := 0; r < 5; r++ {
			p.RunRound()
		}
		return p.ExportGraph(500)
	}
	a, b := build(), build()
	for id := graph.NodeID(0); int(id) < a.NumIDs(); id++ {
		na, nb := a.Neighbors(id), b.Neighbors(id)
		if len(na) != len(nb) {
			t.Fatalf("degree differs at %d", id)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("adjacency order differs at node %d slot %d", id, i)
			}
		}
	}
}
