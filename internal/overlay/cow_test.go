package overlay

import (
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/xrand"
)

// replayChurn applies a deterministic join/leave mix through the
// overlay API — the operations trace replay and churn runners perform
// on per-instance clones.
func replayChurn(n *Network, seed uint64, steps int) {
	rng := xrand.New(seed)
	for i := 0; i < steps; i++ {
		if rng.Bernoulli(0.5) {
			n.JoinRandomDegree(rng)
		} else {
			n.LeaveRandom(rng)
		}
	}
}

func netsEqual(t *testing.T, a, b *Network) {
	t.Helper()
	ga, gb := a.Graph(), b.Graph()
	if ga.NumIDs() != gb.NumIDs() || ga.NumAlive() != gb.NumAlive() || ga.NumEdges() != gb.NumEdges() {
		t.Fatalf("shape differs: ids %d/%d alive %d/%d edges %d/%d",
			ga.NumIDs(), gb.NumIDs(), ga.NumAlive(), gb.NumAlive(), ga.NumEdges(), gb.NumEdges())
	}
	for id := graph.NodeID(0); int(id) < ga.NumIDs(); id++ {
		if ga.Alive(id) != gb.Alive(id) {
			t.Fatalf("alive state differs at node %d", id)
		}
		na, nb := ga.Neighbors(id), gb.Neighbors(id)
		if len(na) != len(nb) {
			t.Fatalf("degree differs at node %d: %d vs %d", id, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("neighbor iteration differs at node %d slot %d: %d vs %d", id, i, na[i], nb[i])
			}
		}
	}
}

func TestCloneCOWMatchesCloneUnderChurn(t *testing.T) {
	base, _ := newTestNet(1500, 31)
	deep := base.Clone()
	cow := base.CloneCOW()
	replayChurn(deep, 99, 1200)
	replayChurn(cow, 99, 1200)
	netsEqual(t, deep, cow)
	if err := cow.Graph().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Identical replays must also meter identically (fresh counters).
	deep.Send(metrics.KindPush)
	cow.Send(metrics.KindPush)
	if deep.Counter().Total() != cow.Counter().Total() {
		t.Fatalf("counter totals differ: %d vs %d", deep.Counter().Total(), cow.Counter().Total())
	}
}

func TestCloneCOWDeltaIsolation(t *testing.T) {
	base, _ := newTestNet(1000, 32)
	wantSize, wantEdges := base.Size(), base.Graph().NumEdges()
	a := base.CloneCOW()
	b := base.CloneCOW()
	replayChurn(a, 1, 600)
	replayChurn(b, 2, 600)
	if base.Size() != wantSize || base.Graph().NumEdges() != wantEdges {
		t.Fatalf("base mutated by clone churn: size %d->%d, edges %d->%d",
			wantSize, base.Size(), wantEdges, base.Graph().NumEdges())
	}
	if a.Size() == b.Size() && a.Graph().NumEdges() == b.Graph().NumEdges() {
		t.Fatal("differently seeded replays converged — isolation test is vacuous")
	}
	if base.Counter().Total() != 0 {
		t.Fatal("clone traffic leaked into the base counter")
	}
	if err := a.Graph().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := b.Graph().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneCOWDeltaStaysSmall(t *testing.T) {
	// Light churn on a big base must keep almost every adjacency list
	// shared — the memory contract behind fanning >8 instances at paper
	// scale.
	const n = 100000
	if testing.Short() {
		t.Skip("100k-node delta measurement")
	}
	base, _ := newTestNet(n, 33)
	cow := base.CloneCOW()
	replayChurn(cow, 3, n/100)
	if shared := cow.Graph().SharedAdjacency(); shared < n*8/10 {
		t.Fatalf("only %d of %d adjacency lists shared after 1%% churn", shared, n)
	}
}
