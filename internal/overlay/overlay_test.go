package overlay

import (
	"testing"
	"testing/quick"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/xrand"
)

func newTestNet(n int, seed uint64) (*Network, *xrand.Rand) {
	rng := xrand.New(seed)
	g := graph.Heterogeneous(n, 10, rng)
	return New(g, 10, nil), rng
}

func TestNewValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil graph": func() { New(nil, 10, nil) },
		"maxDeg 0":  func() { New(graph.NewWithNodes(1), 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSizeAndSend(t *testing.T) {
	net, _ := newTestNet(100, 1)
	if net.Size() != 100 {
		t.Fatalf("Size = %d", net.Size())
	}
	net.Send(metrics.KindWalk)
	net.SendN(metrics.KindReply, 4)
	if got := net.Counter().Total(); got != 5 {
		t.Fatalf("counter total = %d", got)
	}
	if net.MaxDegree() != 10 {
		t.Fatalf("MaxDegree = %d", net.MaxDegree())
	}
}

func TestSharedCounter(t *testing.T) {
	var c metrics.Counter
	g := graph.NewWithNodes(2)
	net := New(g, 5, &c)
	net.Send(metrics.KindPush)
	if c.Count(metrics.KindPush) != 1 {
		t.Fatal("shared counter not used")
	}
}

func TestJoinWiresUnderCap(t *testing.T) {
	net, rng := newTestNet(500, 2)
	id := net.Join(5, rng)
	if !net.Alive(id) {
		t.Fatal("joined peer not alive")
	}
	if d := net.Degree(id); d < 1 || d > 5 {
		t.Fatalf("join degree = %d, want 1..5", d)
	}
	if net.Size() != 501 {
		t.Fatalf("Size = %d", net.Size())
	}
	if err := net.Graph().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinClampsTarget(t *testing.T) {
	net, rng := newTestNet(100, 3)
	id := net.Join(99, rng) // clamped to maxDeg=10
	if d := net.Degree(id); d > 10 {
		t.Fatalf("degree %d exceeds cap", d)
	}
	id2 := net.Join(-4, rng) // clamped to 1
	if d := net.Degree(id2); d < 1 {
		t.Fatalf("degree %d, want >= 1", d)
	}
}

func TestJoinIntoEmptyOverlay(t *testing.T) {
	g := graph.NewWithNodes(1)
	g.RemoveNode(0)
	net := New(g, 10, nil)
	id := net.Join(3, xrand.New(1))
	if !net.Alive(id) || net.Degree(id) != 0 {
		t.Fatal("join into empty overlay should create isolated peer")
	}
}

func TestLeaveNoRepair(t *testing.T) {
	net, rng := newTestNet(200, 4)
	id, ok := net.RandomPeer(rng)
	if !ok {
		t.Fatal("no peer")
	}
	nbrs := append([]NodeID(nil), net.Graph().Neighbors(id)...)
	degBefore := make(map[NodeID]int, len(nbrs))
	for _, b := range nbrs {
		degBefore[b] = net.Degree(b)
	}
	net.Leave(id)
	if net.Alive(id) {
		t.Fatal("peer alive after Leave")
	}
	// Paper rule: bereaved neighbors lose exactly one link, no rewiring.
	for _, b := range nbrs {
		if net.Degree(b) != degBefore[b]-1 {
			t.Fatalf("neighbor %d degree %d, want %d", b, net.Degree(b), degBefore[b]-1)
		}
	}
	if err := net.Graph().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveDeadPanics(t *testing.T) {
	net, rng := newTestNet(10, 5)
	id, _ := net.RandomPeer(rng)
	net.Leave(id)
	defer func() {
		if recover() == nil {
			t.Fatal("double Leave did not panic")
		}
	}()
	net.Leave(id)
}

func TestLeaveRandom(t *testing.T) {
	net, rng := newTestNet(50, 6)
	for net.Size() > 0 {
		if _, ok := net.LeaveRandom(rng); !ok {
			t.Fatal("LeaveRandom failed on non-empty overlay")
		}
	}
	if _, ok := net.LeaveRandom(rng); ok {
		t.Fatal("LeaveRandom succeeded on empty overlay")
	}
}

func TestLeaveWithRepairRestoresDegrees(t *testing.T) {
	net, rng := newTestNet(500, 7)
	// Find a peer whose neighbors are all below cap so repair can always
	// succeed.
	var victim NodeID = graph.None
	net.Graph().ForEachAlive(func(id NodeID) {
		if victim != graph.None {
			return
		}
		ok := net.Degree(id) > 0
		for _, b := range net.Graph().Neighbors(id) {
			if net.Degree(b) >= net.MaxDegree() {
				ok = false
			}
		}
		if ok {
			victim = id
		}
	})
	if victim == graph.None {
		t.Skip("no suitable victim")
	}
	nbrs := append([]NodeID(nil), net.Graph().Neighbors(victim)...)
	degBefore := make(map[NodeID]int, len(nbrs))
	for _, b := range nbrs {
		degBefore[b] = net.Degree(b)
	}
	net.LeaveWithRepair(victim, rng)
	for _, b := range nbrs {
		if net.Degree(b) < degBefore[b] {
			t.Fatalf("neighbor %d degree dropped from %d to %d despite repair",
				b, degBefore[b], net.Degree(b))
		}
	}
	if err := net.Graph().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestChurnPreservesInvariants(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		net, _ := newTestNet(100, seed)
		for op := 0; op < 200; op++ {
			if rng.Bool() && net.Size() > 2 {
				if rng.Bool() {
					net.LeaveRandom(rng)
				} else {
					id, _ := net.RandomPeer(rng)
					net.LeaveWithRepair(id, rng)
				}
			} else {
				net.JoinRandomDegree(rng)
			}
		}
		return net.Graph().CheckInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneAndView(t *testing.T) {
	net, rng := newTestNet(400, 3)
	net.Send(metrics.KindWalk)

	clone := net.Clone()
	if clone.Size() != net.Size() || clone.MaxDegree() != net.MaxDegree() {
		t.Fatalf("clone shape differs")
	}
	if clone.Counter() == net.Counter() || clone.Counter().Total() != 0 {
		t.Fatal("clone must start with a fresh counter")
	}
	if clone.Graph() == net.Graph() {
		t.Fatal("clone shares the graph")
	}
	before := net.Size()
	clone.LeaveRandom(rng)
	if net.Size() != before {
		t.Fatal("clone mutation leaked into original")
	}

	view := net.View()
	if view.Graph() != net.Graph() {
		t.Fatal("view must share the graph")
	}
	if view.Counter() == net.Counter() || view.Counter().Total() != 0 {
		t.Fatal("view must meter on a fresh counter")
	}
	view.Send(metrics.KindWalk)
	view.SendN(metrics.KindReply, 3)
	if net.Counter().Total() != 1 {
		t.Fatalf("view traffic leaked into original: %v", net.Counter())
	}
	if view.Counter().Total() != 4 {
		t.Fatalf("view counter = %v", view.Counter())
	}
}
