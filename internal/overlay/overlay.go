// Package overlay models the peer-to-peer overlay that the three size
// estimation algorithms run on: a set of live peers connected by an
// unstructured graph, a metered message-passing surface, and the join /
// leave operations that create the paper's dynamic scenarios.
//
// Per the paper (§IV-A): links are bidirectional, joins wire a node to a
// random set of neighbors under the degree cap, and departures do NOT
// trigger re-linking ("nodes that have lost one or several neighbors do
// not create new links"), which is what degrades connectivity in the
// shrinking experiments. A repairing leave is provided as an extension
// for the ablation study.
package overlay

import (
	"fmt"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/xrand"
)

// NodeID aliases the graph node identifier.
type NodeID = graph.NodeID

// FaultPolicy intercepts the metering surface to enforce degraded
// network conditions. The overlay consults it on every Send/SendN;
// protocols consult it for the fate and fidelity of their own payloads.
// It is declared here — rather than in the fault package that implements
// it — so the overlay needs no new dependency and any package can supply
// a policy.
type FaultPolicy interface {
	// OnSend is called for count fresh messages of the kind and returns
	// how many extra messages (retransmissions, duplicates) to meter on
	// top of them.
	OnSend(kind metrics.Kind, count uint64) uint64
	// DropProb is the payload-loss probability fire-and-forget protocols
	// (epidemic push/pull) apply to their own deliveries; request/
	// response traffic retransmits instead and never consults it.
	DropProb() float64
	// ReportScale is the factor by which the given peer misreports the
	// values it sends (1 for honest peers).
	ReportScale(id NodeID) float64
	// Unreachable reports whether the peer sits behind asymmetric
	// (NAT-limited) connectivity: inbound requests to it fail while its
	// own outbound sends still work. Protocols consult it for the peers
	// they target; the benign policy answers false for everyone.
	Unreachable(id NodeID) bool
}

// Transport physically delivers metered messages. It is declared here —
// rather than in the transport package that implements it — for the same
// reason FaultPolicy is: the overlay needs no new dependency, and the
// seam stays one-way. Send/SendN/SendTo meter first and then hand the
// message to the transport; the delivery error is deliberately ignored
// at this surface, so estimator arithmetic is identical whether the
// bytes move in-process, over UDP, or not at all (delivery failures
// surface on the transport's liveness channel and error counters
// instead). A nil transport is the pure simulation.
type Transport interface {
	Deliver(to NodeID, kind metrics.Kind, count uint64) error
}

// Network is an overlay of live peers. It owns the message meter: all
// protocol traffic must be recorded through Send/SendN so that overhead
// comparisons across algorithms are consistent.
type Network struct {
	g       *graph.Graph
	counter *metrics.Counter
	maxDeg  int
	policy  FaultPolicy
	trans   Transport
}

// New wraps an existing topology into a Network with the given degree cap
// for future joins. The counter may be shared across algorithm instances.
func New(g *graph.Graph, maxDeg int, counter *metrics.Counter) *Network {
	if g == nil {
		panic("overlay: nil graph")
	}
	if maxDeg < 1 {
		panic("overlay: maxDeg < 1")
	}
	if counter == nil {
		counter = &metrics.Counter{}
	}
	return &Network{g: g, counter: counter, maxDeg: maxDeg}
}

// Graph exposes the underlying topology (read access for protocols,
// mutation reserved to Join/Leave and test setup).
func (n *Network) Graph() *graph.Graph { return n.g }

// Clone returns a deep copy of the overlay with a fresh message counter.
// The parallel experiment engine gives each concurrent estimation
// instance its own clone so identical churn replays neither share graph
// mutations nor race on the meter.
func (n *Network) Clone() *Network {
	return &Network{g: n.g.Clone(), counter: &metrics.Counter{}, maxDeg: n.maxDeg, trans: n.trans}
}

// CloneCOW returns a copy-on-write copy of the overlay with a fresh
// message counter: the topology is shared with the receiver until the
// clone mutates it (graph.CloneCOW), so fanning one clone per
// estimation instance costs memory proportional to the churn each
// replay applies, not instances × overlay size. The receiver becomes
// the immutable base — it must not be mutated while clones are alive.
// Clones are independent and may be mutated concurrently.
func (n *Network) CloneCOW() *Network {
	return &Network{g: n.g.CloneCOW(), counter: &metrics.Counter{}, maxDeg: n.maxDeg, trans: n.trans}
}

// View returns a Network sharing n's topology but metering on a fresh
// counter. Parallel static runs read one shared graph concurrently;
// per-run views keep the overhead accounting of each run exact and
// race-free. The view must not be mutated while shared.
func (n *Network) View() *Network {
	return &Network{g: n.g, counter: &metrics.Counter{}, maxDeg: n.maxDeg, trans: n.trans}
}

// Counter returns the message meter.
func (n *Network) Counter() *metrics.Counter { return n.counter }

// MaxDegree returns the join-time degree cap.
func (n *Network) MaxDegree() int { return n.maxDeg }

// Size returns the true current number of live peers — the hidden
// quantity the estimators try to recover.
func (n *Network) Size() int { return n.g.NumAlive() }

// SetFaultPolicy installs (or, with nil, removes) the fault policy
// consulted by Send/SendN. Clones and views never inherit a policy:
// faults are installed per run or per instance by the fault layer.
func (n *Network) SetFaultPolicy(p FaultPolicy) { n.policy = p }

// FaultPolicy returns the installed fault policy, or nil on a benign
// overlay.
func (n *Network) FaultPolicy() FaultPolicy { return n.policy }

// SetTransport installs (or, with nil, removes) the physical transport
// that Send/SendN/SendTo hand metered messages to. Unlike the fault
// policy — which is per run or per instance — the transport is a
// deployment property of the overlay, so clones, COW clones and views
// DO inherit it: the parallel harnesses fan instances over the same
// wire.
func (n *Network) SetTransport(t Transport) { n.trans = t }

// Transport returns the installed transport, or nil on a pure
// simulation.
func (n *Network) Transport() Transport { return n.trans }

// Send meters one message of the given kind, plus whatever faults the
// installed policy charges for it, then hands it to the transport (if
// any) as an unaddressed delivery.
func (n *Network) Send(kind metrics.Kind) {
	n.counter.Inc(kind)
	if n.policy != nil {
		n.counter.Add(kind, n.policy.OnSend(kind, 1))
	}
	if n.trans != nil {
		_ = n.trans.Deliver(graph.None, kind, 1)
	}
}

// SendTo meters one message of the given kind addressed to a peer. The
// metering is identical to Send — the address only matters to the
// transport, which can route the frame to the peer's real socket.
func (n *Network) SendTo(to NodeID, kind metrics.Kind) {
	n.counter.Inc(kind)
	if n.policy != nil {
		n.counter.Add(kind, n.policy.OnSend(kind, 1))
	}
	if n.trans != nil {
		_ = n.trans.Deliver(to, kind, 1)
	}
}

// SendN meters count messages of the given kind, plus whatever faults
// the installed policy charges for them, then hands the batch to the
// transport (if any) as one unaddressed delivery.
func (n *Network) SendN(kind metrics.Kind, count uint64) {
	n.counter.Add(kind, count)
	if n.policy != nil && count > 0 {
		n.counter.Add(kind, n.policy.OnSend(kind, count))
	}
	if n.trans != nil && count > 0 {
		_ = n.trans.Deliver(graph.None, kind, count)
	}
}

// RandomPeer returns a uniformly random live peer, or (graph.None, false)
// if the overlay is empty.
func (n *Network) RandomPeer(rng *xrand.Rand) (NodeID, bool) {
	return n.g.RandomAlive(rng)
}

// RandomNeighbor returns a uniformly random neighbor of id.
func (n *Network) RandomNeighbor(id NodeID, rng *xrand.Rand) (NodeID, bool) {
	return n.g.RandomNeighbor(id, rng)
}

// Degree returns the current degree of a live peer.
func (n *Network) Degree(id NodeID) int { return n.g.Degree(id) }

// Alive reports whether id is currently a live peer.
func (n *Network) Alive(id NodeID) bool { return n.g.Alive(id) }

// Join adds a new peer wired to up to target random live peers that are
// below the degree cap, and returns its ID. Target is clamped to [1,
// MaxDegree]. Wiring is best effort on a crowded overlay, like the
// builders.
func (n *Network) Join(target int, rng *xrand.Rand) NodeID {
	if target < 1 {
		target = 1
	}
	if target > n.maxDeg {
		target = n.maxDeg
	}
	id := n.g.AddNode()
	attempts := 0
	const maxAttempts = 200
	for n.g.Degree(id) < target && attempts < maxAttempts {
		v, ok := n.g.RandomAlive(rng)
		if !ok {
			break
		}
		if v == id || n.g.Degree(v) >= n.maxDeg || n.g.HasEdge(id, v) {
			attempts++
			continue
		}
		n.g.AddEdge(id, v)
	}
	return id
}

// JoinRandomDegree adds a peer with a target degree drawn uniformly from
// [1, MaxDegree], matching the heterogeneous construction of §IV-A.
func (n *Network) JoinRandomDegree(rng *xrand.Rand) NodeID {
	return n.Join(rng.IntRange(1, n.maxDeg), rng)
}

// Leave removes a peer using the paper's rule: incident links vanish and
// the bereaved neighbors are NOT rewired.
func (n *Network) Leave(id NodeID) {
	if !n.g.Alive(id) {
		panic(fmt.Sprintf("overlay: Leave of dead peer %d", id))
	}
	n.g.RemoveNode(id)
}

// LeaveRandom removes a uniformly random live peer and returns its ID,
// or (graph.None, false) if the overlay is empty.
func (n *Network) LeaveRandom(rng *xrand.Rand) (NodeID, bool) {
	id, ok := n.g.RandomAlive(rng)
	if !ok {
		return graph.None, false
	}
	n.Leave(id)
	return id, true
}

// LeaveWithRepair removes a peer and then gives each bereaved neighbor one
// replacement link to a random live peer under the cap. This is NOT the
// paper's behaviour; it exists for the churn-repair ablation, which shows
// how much of Aggregation's shrinking-scenario failure is due to
// connectivity loss.
func (n *Network) LeaveWithRepair(id NodeID, rng *xrand.Rand) {
	if !n.g.Alive(id) {
		panic(fmt.Sprintf("overlay: LeaveWithRepair of dead peer %d", id))
	}
	bereaved := append([]NodeID(nil), n.g.Neighbors(id)...)
	n.g.RemoveNode(id)
	for _, b := range bereaved {
		attempts := 0
		for attempts < 50 {
			v, ok := n.g.RandomAlive(rng)
			if !ok {
				return
			}
			if v == b || n.g.Degree(v) >= n.maxDeg || n.g.HasEdge(b, v) {
				attempts++
				continue
			}
			n.g.AddEdge(b, v)
			break
		}
	}
}
