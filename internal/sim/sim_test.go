package sim

import (
	"testing"
	"testing/quick"

	"p2psize/internal/xrand"
)

func TestEngineOrdersByTime(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(5, func() { got = append(got, 5) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(3, func() { got = append(got, 3) })
	if n := e.Run(); n != 3 {
		t.Fatalf("processed %d events", n)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %d", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(7, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of scheduling order at %d: %v...", i, got[:i+1])
		}
	}
}

func TestEngineAfterAndNestedScheduling(t *testing.T) {
	var e Engine
	var got []Time
	e.After(2, func() {
		got = append(got, e.Now())
		e.After(3, func() { got = append(got, e.Now()) })
	})
	e.Run()
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("times = %v", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Schedule(4, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule in the past did not panic")
		}
	}()
	e.Schedule(2, func() {})
}

func TestAfterNegativePanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	var e Engine
	fired := map[Time]bool{}
	for _, at := range []Time{1, 5, 10} {
		at := at
		e.Schedule(at, func() { fired[at] = true })
	}
	n := e.RunUntil(5)
	if n != 2 || !fired[1] || !fired[5] || fired[10] {
		t.Fatalf("n=%d fired=%v", n, fired)
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %d, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	// Resume to completion.
	if n := e.Run(); n != 1 || !fired[10] {
		t.Fatalf("resume n=%d fired=%v", n, fired)
	}
}

func TestRunUntilAdvancesTimeOnEmptyQueue(t *testing.T) {
	var e Engine
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("Now = %d, want 42", e.Now())
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	ran := false
	ev := e.Schedule(3, func() { ran = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(nil)
	if n := e.Run(); n != 0 || ran {
		t.Fatalf("cancelled event ran (n=%d)", n)
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(1, func() { got = append(got, 1) })
	ev := e.Schedule(2, func() { got = append(got, 2) })
	e.Schedule(3, func() { got = append(got, 3) })
	e.Cancel(ev)
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got = %v", got)
	}
}

func TestHalt(t *testing.T) {
	var e Engine
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 4 {
				e.Halt()
			}
		})
	}
	if n := e.RunUntil(100); n != 4 {
		t.Fatalf("processed %d, want 4", n)
	}
	// Halt must not advance time to the deadline.
	if e.Now() != 3 {
		t.Fatalf("Now = %d, want 3", e.Now())
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending = %d, want 6", e.Pending())
	}
}

func TestStep(t *testing.T) {
	var e Engine
	ran := 0
	e.Schedule(1, func() { ran++ })
	if !e.Step() || ran != 1 {
		t.Fatal("Step did not run the event")
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEventOrderProperty(t *testing.T) {
	// Whatever random times events are scheduled at, execution times must
	// be non-decreasing and count must match.
	check := func(seed uint64, nRaw uint8) bool {
		rng := xrand.New(seed)
		n := int(nRaw)%64 + 1
		var e Engine
		var times []Time
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(50))
			e.Schedule(at, func() { times = append(times, e.Now()) })
		}
		if e.Run() != n || len(times) != n {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundDriver(t *testing.T) {
	var rounds []int
	d := RoundDriver{Tick: func(r int) { rounds = append(rounds, r) }}
	if n := d.Run(5); n != 5 {
		t.Fatalf("ran %d rounds", n)
	}
	for i, r := range rounds {
		if r != i {
			t.Fatalf("rounds = %v", rounds)
		}
	}
}

func TestRoundDriverBeforeStops(t *testing.T) {
	ticks := 0
	d := RoundDriver{
		Tick:   func(int) { ticks++ },
		Before: func(r int) bool { return r < 3 },
	}
	if n := d.Run(10); n != 3 || ticks != 3 {
		t.Fatalf("n=%d ticks=%d", n, ticks)
	}
}

func TestRoundDriverAfterStops(t *testing.T) {
	ticks := 0
	d := RoundDriver{
		Tick:  func(int) { ticks++ },
		After: func(r int) bool { return r != 2 },
	}
	if n := d.Run(10); n != 3 || ticks != 3 {
		t.Fatalf("n=%d ticks=%d", n, ticks)
	}
}

func TestRoundDriverNoTickPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RoundDriver without Tick did not panic")
		}
	}()
	(&RoundDriver{}).Run(1)
}
