// Package sim provides the discrete-event simulation kernel underneath the
// comparative study. Like the paper's simulator, it models logical message
// exchange only: it "counts the messages over the network [and] does not
// model the physical network topology nor the queuing delays and packet
// losses".
//
// Two execution styles are offered, matching the two protocol families in
// the paper:
//
//   - Engine: a classic event heap with deterministic FIFO tie-breaking,
//     used when individual message ordering matters (random walks,
//     asynchronous probes).
//   - RoundDriver: a synchronous cycle driver for round-based epidemic
//     protocols ("at each predefined cycle, each node ..."), which sweeps
//     all nodes once per round without per-message heap traffic. This is
//     what keeps million-node × hundred-round aggregation runs tractable.
//
// Both styles account messages through the same metrics.Counter.
package sim

import "container/heap"

// Time is simulated time in abstract units (hops or rounds).
type Time int64

// Event is a scheduled callback.
type Event struct {
	At Time
	Fn func()

	seq uint64 // insertion order, for deterministic FIFO tie-breaking
	idx int    // heap index
}

// eventHeap orders events by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler. Events scheduled for
// the same time run in scheduling order. The zero value is ready to use.
type Engine struct {
	now    Time
	next   uint64
	events eventHeap
	halted bool
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// that is always a protocol bug.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic("sim: Schedule in the past")
	}
	ev := &Event{At: at, Fn: fn, seq: e.next}
	e.next++
	heap.Push(&e.events, ev)
	return ev
}

// After runs fn delay time units from now.
func (e *Engine) After(delay Time, fn func()) *Event {
	if delay < 0 {
		panic("sim: After with negative delay")
	}
	return e.Schedule(e.now+delay, fn)
}

// Cancel removes a scheduled event; cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 || ev.idx >= len(e.events) || e.events[ev.idx] != ev {
		return
	}
	heap.Remove(&e.events, ev.idx)
	ev.idx = -1
}

// Halt stops the current Run/RunUntil after the in-flight event returns.
func (e *Engine) Halt() { e.halted = true }

// Run executes events until none remain (or Halt is called) and returns
// the number of events processed. Time is left at the last event executed.
func (e *Engine) Run() int {
	e.halted = false
	processed := 0
	for len(e.events) > 0 && !e.halted {
		ev := e.events[0]
		heap.Pop(&e.events)
		ev.idx = -1
		e.now = ev.At
		ev.Fn()
		processed++
	}
	return processed
}

// RunUntil executes events with At <= deadline (or until Halt) and returns
// the number of events processed. Simulated time advances to the deadline
// if the queue drains first, so periodic re-arming protocols can rely on
// Now() == deadline afterwards.
func (e *Engine) RunUntil(deadline Time) int {
	e.halted = false
	processed := 0
	for len(e.events) > 0 && !e.halted {
		ev := e.events[0]
		if ev.At > deadline {
			break
		}
		heap.Pop(&e.events)
		ev.idx = -1
		e.now = ev.At
		ev.Fn()
		processed++
	}
	if e.now < deadline && !e.halted {
		e.now = deadline
	}
	return processed
}

// Step executes exactly one event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	ev.idx = -1
	e.now = ev.At
	ev.Fn()
	return true
}

// RoundDriver runs a synchronous round-based protocol: Tick is invoked
// once per round with the round number, and hooks can stop the run early.
type RoundDriver struct {
	// Tick executes one protocol round. Required.
	Tick func(round int)
	// Before, if non-nil, runs before each round; returning false stops
	// the drive before executing that round.
	Before func(round int) bool
	// After, if non-nil, runs after each round; returning false stops the
	// drive after that round.
	After func(round int) bool
}

// Run executes up to rounds rounds and returns the number actually run.
func (d *RoundDriver) Run(rounds int) int {
	if d.Tick == nil {
		panic("sim: RoundDriver without Tick")
	}
	for r := 0; r < rounds; r++ {
		if d.Before != nil && !d.Before(r) {
			return r
		}
		d.Tick(r)
		if d.After != nil && !d.After(r) {
			return r + 1
		}
	}
	return rounds
}
