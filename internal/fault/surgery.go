package fault

// Graph surgery: the adversary and partition scenarios that cannot be
// expressed at the metering surface because they change who is reachable
// rather than what messages cost. All selection is by salted hash of the
// stable node ID, so the same (overlay, spec, salt) produce the same
// surgery in every clone at every worker count.

import (
	"math"
	"sort"

	"p2psize/internal/graph"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

// Edge is one severed undirected link, kept for Heal.
type Edge struct {
	U, V graph.NodeID
}

// selected reports whether id falls in the salted-hash fraction frac.
func selected(id graph.NodeID, frac float64, salt uint64) bool {
	if frac <= 0 {
		return false
	}
	x := salt ^ (uint64(uint32(id)) + 0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x) < frac*math.Ldexp(1, 64)
}

// Partition splits the overlay into two components: every peer hashing
// into frac under salt moves to the minority side and every edge
// crossing the cut is severed. The severed edges are returned, sorted,
// so Heal can restore the exact pre-split topology. Peers keep their
// alive status — a partition hides peers, it does not remove them.
func Partition(net *overlay.Network, frac float64, salt uint64) []Edge {
	g := net.Graph()
	var severed []Edge
	g.ForEachAlive(func(u graph.NodeID) {
		if !selected(u, frac, salt) {
			return
		}
		// Copy: RemoveEdge mutates the adjacency being iterated.
		for _, v := range append([]graph.NodeID(nil), g.Neighbors(u)...) {
			if selected(v, frac, salt) {
				continue // both minority: the edge survives inside the island
			}
			g.RemoveEdge(u, v)
			severed = append(severed, Edge{U: u, V: v})
		}
	})
	sort.Slice(severed, func(i, j int) bool {
		if severed[i].U != severed[j].U {
			return severed[i].U < severed[j].U
		}
		return severed[i].V < severed[j].V
	})
	return severed
}

// Heal restores edges severed by Partition. Endpoints that died since
// the split are skipped — their links are gone for the usual churn
// reasons, not the partition's.
func Heal(net *overlay.Network, severed []Edge) {
	g := net.Graph()
	for _, e := range severed {
		if g.Alive(e.U) && g.Alive(e.V) && !g.HasEdge(e.U, e.V) {
			g.AddEdge(e.U, e.V)
		}
	}
}

// Silence makes the salted-hash fraction frac of the peers silent
// leavers: all their links are severed but they stay in the alive set,
// so walks and gossip can no longer reach them while the true size the
// estimators chase still counts them. (Identifier sweeps — the dht
// family's closest-set scan — still see them: a silent peer's DHT
// records outlive its responsiveness, the asymmetry the IPFS liveness
// study measures.) Returns the silenced peers, sorted.
func Silence(net *overlay.Network, frac float64, salt uint64) []graph.NodeID {
	g := net.Graph()
	var silent []graph.NodeID
	g.ForEachAlive(func(u graph.NodeID) {
		if !selected(u, frac, salt) {
			return
		}
		for _, v := range append([]graph.NodeID(nil), g.Neighbors(u)...) {
			g.RemoveEdge(u, v)
		}
		silent = append(silent, u)
	})
	sort.Slice(silent, func(i, j int) bool { return silent[i] < silent[j] })
	return silent
}

// InflateSybils joins frac × current-size phantom peers through the
// normal join path, so they are indistinguishable from honest nodes to
// every protocol. The caller judges estimator error against the honest
// population it recorded before the inflation. Returns how many sybils
// joined.
func InflateSybils(net *overlay.Network, frac float64, rng *xrand.Rand) int {
	count := int(frac * float64(net.Size()))
	for i := 0; i < count; i++ {
		net.JoinRandomDegree(rng)
	}
	return count
}
