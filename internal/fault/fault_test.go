package fault

import (
	"strings"
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

func TestParseSpecRoundTrip(t *testing.T) {
	for _, in := range []string{
		"",
		"drop=0.05",
		"delay=2x",
		"dup=0.01",
		"partition@40-60",
		"partition=0.3@40-60",
		"lie=10@0.05",
		"silent=0.1",
		"sybil=0.2",
		"drop=0.05,delay=2x,partition@40-60",
		"drop=0.1,dup=0.1,lie=10@0.05,silent=0.1,sybil=0.15",
	} {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q.String() = %q): %v", in, s.String(), err)
		}
		if back != s {
			t.Fatalf("%q does not round-trip: %+v -> %q -> %+v", in, s, s.String(), back)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"drop=1.5", "outside"},
		{"drop=x", "bad drop"},
		{"drop=0.1,drop=0.2", "duplicate"},
		{"partition=0.5", "window"},
		{"partition@40", "lo-hi"},
		{"partition@70-30", "not inside"},
		{"lie=0@0.1", "must be positive"},
		{"flood=1", "unknown key"},
		{"delay=-1", "negative"},
	} {
		if _, err := ParseSpec(tc.in); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", tc.in)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("ParseSpec(%q) = %v, want mention of %q", tc.in, err, tc.want)
		}
	}
}

// feed drives an injector through a fixed metering sequence and returns
// the extras plus the estimate latency.
func feed(inj *Injector, net *overlay.Network) ([]uint64, float64) {
	inj.BeginEstimate(net)
	var extras []uint64
	for i := 0; i < 50; i++ {
		extras = append(extras, inj.OnSend(metrics.KindWalk, 1))
		extras = append(extras, inj.OnSend(metrics.KindGossipSpread, 10))
		extras = append(extras, inj.OnSend(metrics.KindPush, 100))
	}
	return extras, inj.EndEstimate()
}

func TestInjectorDeterminism(t *testing.T) {
	net := overlay.New(graph.Heterogeneous(200, 10, xrand.New(7)), 10, nil)
	spec := Spec{Drop: 0.2, Dup: 0.1, DelayFactor: 2, LieScale: 10, LieFrac: 0.05}
	a := NewInjector(spec, xrand.New(42))
	b := NewInjector(spec, xrand.New(42))
	ea, la := feed(a, net)
	eb, lb := feed(b, net)
	if la != lb {
		t.Fatalf("latencies differ: %g vs %g", la, lb)
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("extra %d differs: %d vs %d", i, ea[i], eb[i])
		}
	}
	for id := overlay.NodeID(0); id < 200; id++ {
		if a.ReportScale(id) != b.ReportScale(id) {
			t.Fatalf("ReportScale(%d) differs", id)
		}
	}
	c := NewInjector(spec, xrand.New(43))
	ec, _ := feed(c, net)
	same := true
	for i := range ea {
		if ea[i] != ec[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical fault sequences")
	}
}

// TestTransportAsymmetry pins the drop semantics: reliable kinds
// retransmit (extra metered messages, payload always arrives), the
// epidemic kinds never do — their loss is the payload itself, priced by
// the protocols through DropProb.
func TestTransportAsymmetry(t *testing.T) {
	net := overlay.New(graph.Heterogeneous(200, 10, xrand.New(7)), 10, nil)
	inj := NewInjector(Spec{Drop: 0.3}, xrand.New(1))
	inj.BeginEstimate(net)
	var walkExtra, pushExtra uint64
	for i := 0; i < 100; i++ {
		walkExtra += inj.OnSend(metrics.KindWalk, 10)
		pushExtra += inj.OnSend(metrics.KindPush, 10)
	}
	if walkExtra == 0 {
		t.Fatal("30% drop on 1000 reliable messages caused no retransmissions")
	}
	if pushExtra != 0 {
		t.Fatalf("fire-and-forget push retransmitted %d times", pushExtra)
	}
	if got := inj.DropProb(); got != 0.3 {
		t.Fatalf("DropProb = %g, want 0.3", got)
	}
	if lat := inj.EndEstimate(); lat <= 0 {
		t.Fatalf("latency = %g, want > 0", lat)
	}
}

func TestReportScale(t *testing.T) {
	inj := NewInjector(Spec{LieScale: 10, LieFrac: 0.2}, xrand.New(5))
	liars := 0
	for id := overlay.NodeID(0); id < 1000; id++ {
		switch inj.ReportScale(id) {
		case 10:
			liars++
		case 1:
		default:
			t.Fatalf("ReportScale(%d) = %g, want 1 or 10", id, inj.ReportScale(id))
		}
	}
	if liars < 150 || liars > 250 {
		t.Fatalf("%d liars of 1000 at LieFrac 0.2", liars)
	}
	honest := NewInjector(Spec{Drop: 0.1}, xrand.New(5))
	if honest.ReportScale(3) != 1 {
		t.Fatal("liar-free spec scaled a report")
	}
}

func TestPartitionHeal(t *testing.T) {
	g := graph.Heterogeneous(500, 10, xrand.New(3))
	net := overlay.New(g, 10, nil)
	if graph.LargestComponent(g) != 500 {
		t.Fatal("test overlay not connected")
	}
	degrees := make(map[graph.NodeID]int, 500)
	g.ForEachAlive(func(u graph.NodeID) { degrees[u] = g.Degree(u) })

	severed := Partition(net, 0.4, 99)
	if len(severed) == 0 {
		t.Fatal("partition severed nothing")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("after split: %v", err)
	}
	if g.NumAlive() != 500 {
		t.Fatalf("partition changed the population: %d", g.NumAlive())
	}
	sizes := graph.ComponentSizes(g)
	if len(sizes) < 2 {
		t.Fatalf("graph still has %d component(s) after the split", len(sizes))
	}
	for _, e := range severed {
		if g.HasEdge(e.U, e.V) {
			t.Fatalf("severed edge %v still present", e)
		}
	}

	Heal(net, severed)
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	if graph.LargestComponent(g) != 500 {
		t.Fatalf("heal did not reconnect: largest = %d", graph.LargestComponent(g))
	}
	g.ForEachAlive(func(u graph.NodeID) {
		if g.Degree(u) != degrees[u] {
			t.Fatalf("node %d degree %d after heal, %d before split", u, g.Degree(u), degrees[u])
		}
	})
}

func TestPartitionDeterministic(t *testing.T) {
	a := Partition(overlay.New(graph.Heterogeneous(300, 10, xrand.New(3)), 10, nil), 0.3, 7)
	b := Partition(overlay.New(graph.Heterogeneous(300, 10, xrand.New(3)), 10, nil), 0.3, 7)
	if len(a) != len(b) {
		t.Fatalf("severed counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("severed edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSilence(t *testing.T) {
	g := graph.Heterogeneous(400, 10, xrand.New(4))
	net := overlay.New(g, 10, nil)
	silent := Silence(net, 0.25, 11)
	if len(silent) == 0 {
		t.Fatal("nothing silenced")
	}
	if g.NumAlive() != 400 {
		t.Fatalf("silence changed the true size: %d", g.NumAlive())
	}
	for _, id := range silent {
		if !g.Alive(id) {
			t.Fatalf("silent peer %d left the alive set", id)
		}
		if g.Degree(id) != 0 {
			t.Fatalf("silent peer %d still has %d links", id, g.Degree(id))
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInflateSybils(t *testing.T) {
	net := overlay.New(graph.Heterogeneous(400, 10, xrand.New(4)), 10, nil)
	joined := InflateSybils(net, 0.25, xrand.New(9))
	if joined != 100 {
		t.Fatalf("joined %d sybils, want 100", joined)
	}
	if net.Size() != 500 {
		t.Fatalf("size %d after inflation, want 500", net.Size())
	}
	if err := net.Graph().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

type constEstimator struct{ seen overlay.FaultPolicy }

func (c *constEstimator) Name() string { return "const" }
func (c *constEstimator) Estimate(net *overlay.Network) (float64, error) {
	c.seen = net.FaultPolicy()
	net.Send(metrics.KindWalk)
	return 42, nil
}

// TestDecorate pins the wrapper contract: the policy is installed only
// for the duration of the estimate, restored afterwards, and every
// estimate records one latency.
func TestDecorate(t *testing.T) {
	net := overlay.New(graph.Heterogeneous(100, 10, xrand.New(2)), 10, nil)
	inner := &constEstimator{}
	inj := NewInjector(Spec{Drop: 0.1}, xrand.New(1))
	e := Decorate(inner, inj)
	if e.Name() != "const" {
		t.Fatalf("name %q", e.Name())
	}
	for i := 1; i <= 3; i++ {
		est, err := e.Estimate(net)
		if err != nil || est != 42 {
			t.Fatalf("estimate %d: %g, %v", i, est, err)
		}
		if inner.seen != overlay.FaultPolicy(inj) {
			t.Fatal("policy not installed during the estimate")
		}
		if net.FaultPolicy() != nil {
			t.Fatal("policy still installed after the estimate")
		}
		if len(inj.Latencies()) != i {
			t.Fatalf("%d latencies after %d estimates", len(inj.Latencies()), i)
		}
	}
	if inj.LastLatency() != inj.Latencies()[2] {
		t.Fatal("LastLatency disagrees with Latencies")
	}
}
