package fault

import (
	"math"

	"p2psize/internal/core"
	"p2psize/internal/latency"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/stats"
	"p2psize/internal/xrand"
)

// virtualPeers sizes the injector's private delay model: message delays
// are drawn between random virtual coordinates instead of the true
// endpoints (the metering surface does not expose them), which keeps the
// delay distribution — base + unit-square distance, the same shape
// latency.Euclidean gives the ext-delay experiment — without coupling
// the injector to overlay size.
const virtualPeers = 64

// delaySamples is how many delays are sampled at construction to fix the
// clock's quantile constants (round period, retransmission timeout).
const delaySamples = 256

// Injector enforces the message-level faults of a Spec. It implements
// overlay.FaultPolicy: install it with Network.SetFaultPolicy (or let
// Decorate do it per estimate) and every metered Send/SendN pays drops,
// duplicates and delays through it.
//
// The injector also runs the virtual estimate-latency clock:
//
//   - sequential kinds (walk hops, sample returns, control probes) add
//     one modeled delay per message — a walk cannot advance before the
//     previous hop landed;
//   - concurrent kinds (gossip spreads, replies, epidemic push/pull)
//     proceed network-wide in parallel, so their cost is counted in
//     rounds: messages ÷ population at estimate start, each round priced
//     at a high quantile of the delay distribution (the synchronous-
//     round rule the latency package uses for Aggregation);
//   - every retransmission of a dropped reliable message costs one
//     timeout (RTO).
//
// An Injector is single-goroutine state, like the estimator it brackets:
// use one per run or per monitoring instance.
type Injector struct {
	spec  Spec
	rng   *xrand.Rand
	model *latency.Euclidean

	meanDelay float64 // mean one-way delay of the model
	q99       float64 // high-quantile one-way delay: the round price
	rto       float64 // retransmission timeout

	liarSalt uint64

	clock     float64 // sequential + timeout latency of the open estimate
	concMsgs  float64 // concurrent-kind messages of the open estimate
	aliveAt0  float64 // population at BeginEstimate
	latencies []float64
}

// NewInjector builds an injector for the spec, drawing its delay model
// and all future fate draws from rng. Equal (spec, rng seed) give
// byte-identical injectors; it panics on an invalid spec.
func NewInjector(spec Spec, rng *xrand.Rand) *Injector {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("fault: nil rng")
	}
	inj := &Injector{spec: spec, rng: rng, liarSalt: rng.Uint64()}
	inj.model = latency.NewEuclidean(virtualPeers, 0.01, rng)
	samples := make([]float64, delaySamples)
	var sum float64
	for i := range samples {
		samples[i] = inj.drawDelay()
		sum += samples[i]
	}
	inj.meanDelay = sum / delaySamples
	inj.q99 = stats.Quantile(samples, 0.99)
	inj.rto = 3 * inj.q99
	return inj
}

// Spec returns the scenario the injector enforces.
func (inj *Injector) Spec() Spec { return inj.spec }

// drawDelay draws one modeled one-way delay between two virtual peers.
func (inj *Injector) drawDelay() float64 {
	u := inj.rng.Intn(virtualPeers)
	v := inj.rng.Intn(virtualPeers)
	return inj.model.Delay(int32(u), int32(v))
}

// reliable reports whether the kind has request/response semantics: a
// dropped message is retransmitted until it arrives. Epidemic push/pull
// is fire-and-forget — a loss costs the payload, not a resend — which is
// exactly the asymmetry that makes mass-conservation families fragile
// under drop while sampling families just pay more messages.
func reliable(kind metrics.Kind) bool {
	return kind != metrics.KindPush && kind != metrics.KindPull
}

// sequential reports whether messages of the kind serialize the
// estimation (each must land before the protocol advances).
func sequential(kind metrics.Kind) bool {
	switch kind {
	case metrics.KindWalk, metrics.KindSampleReturn, metrics.KindControl:
		return true
	}
	return false
}

// OnSend implements overlay.FaultPolicy: it prices count fresh messages
// of the kind and returns how many extra messages (retransmissions and
// duplicates) to meter on top.
func (inj *Injector) OnSend(kind metrics.Kind, count uint64) uint64 {
	var extra uint64
	if inj.spec.Drop > 0 && reliable(kind) {
		// Retransmit-until-delivered: each round resends the losses of
		// the previous one and costs a timeout.
		pend := inj.binomial(count, inj.spec.Drop)
		for pend > 0 {
			extra += pend
			if sequential(kind) {
				inj.clock += float64(pend) * inj.rto
			} else {
				inj.clock += inj.rto
			}
			pend = inj.binomial(pend, inj.spec.Drop)
		}
	}
	if inj.spec.Dup > 0 {
		extra += inj.binomial(count, inj.spec.Dup)
	}
	if sequential(kind) {
		if count == 1 {
			inj.clock += inj.drawDelay()
		} else {
			inj.clock += float64(count) * inj.meanDelay
		}
	} else {
		inj.concMsgs += float64(count + extra)
	}
	return extra
}

// DropProb implements overlay.FaultPolicy: the payload-loss probability
// fire-and-forget protocols apply to their own deliveries.
func (inj *Injector) DropProb() float64 { return inj.spec.Drop }

// ReportScale implements overlay.FaultPolicy: the factor by which the
// given peer misreports values it sends. Liars are a stable salted-hash
// selection, so the set never depends on draw order.
func (inj *Injector) ReportScale(id overlay.NodeID) float64 {
	if inj.spec.LieFrac <= 0 {
		return 1
	}
	if selected(id, inj.spec.LieFrac, inj.liarSalt) {
		return inj.spec.LieScale
	}
	return 1
}

// natSaltTweak turns the liar salt into an independent NAT salt without
// consuming an rng draw — drawing one would shift every fate stream of
// every pre-existing scenario and break the frozen checksums.
const natSaltTweak = 0xd1b54a32d192ed03

// Unreachable implements overlay.FaultPolicy: whether the peer sits
// behind NAT-limited connectivity (inbound requests fail, outbound still
// works). The fated set is a stable salted-hash selection like the
// liars, on an independent salt.
func (inj *Injector) Unreachable(id overlay.NodeID) bool {
	if inj.spec.NATFrac <= 0 {
		return false
	}
	return selected(id, inj.spec.NATFrac, inj.liarSalt^natSaltTweak)
}

// binomial draws how many of n trials succeed with probability p:
// exact Bernoulli sweep for small n, a deterministic rounded normal
// approximation for large batches (one draw instead of n).
func (inj *Injector) binomial(n uint64, p float64) uint64 {
	if n == 0 || p <= 0 {
		return 0
	}
	const exactLimit = 64
	if n <= exactLimit {
		var k uint64
		for i := uint64(0); i < n; i++ {
			if inj.rng.Bernoulli(p) {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	k := math.Round(inj.rng.Norm(mean, sd))
	if k < 0 {
		return 0
	}
	if k > float64(n) {
		return n
	}
	return uint64(k)
}

// BeginEstimate opens the latency clock for one estimation on net.
func (inj *Injector) BeginEstimate(net *overlay.Network) {
	inj.clock = 0
	inj.concMsgs = 0
	inj.aliveAt0 = float64(max(1, net.Size()))
}

// EndEstimate closes the clock and records the estimate's latency:
// sequential and timeout delays plus the concurrent kinds folded into
// synchronous rounds, all scaled by the spec's delay factor.
func (inj *Injector) EndEstimate() float64 {
	lat := inj.clock + inj.concMsgs/inj.aliveAt0*inj.q99
	if inj.spec.DelayFactor > 0 {
		lat *= inj.spec.DelayFactor
	}
	inj.latencies = append(inj.latencies, lat)
	return lat
}

// Latencies returns the recorded per-estimate latencies, in order.
func (inj *Injector) Latencies() []float64 { return inj.latencies }

// LastLatency returns the most recent estimate's latency (0 before the
// first EndEstimate).
func (inj *Injector) LastLatency() float64 {
	if len(inj.latencies) == 0 {
		return 0
	}
	return inj.latencies[len(inj.latencies)-1]
}

// Estimator wraps an inner estimator so every Estimate runs under an
// injector's faults; build one with Decorate.
type Estimator struct {
	inner core.Estimator
	inj   *Injector
}

// Decorate brackets e with the fault layer: each Estimate installs inj
// as the network's fault policy for its duration and runs the latency
// clock around the inner estimation. The estimator surface is unchanged,
// so any family — current or future, built-in or custom — runs under
// faults unmodified. Safe under the parallel harnesses because each run
// or instance estimates on its own view or clone.
func Decorate(e core.Estimator, inj *Injector) *Estimator {
	if e == nil {
		panic("fault: Decorate of nil estimator")
	}
	if inj == nil {
		panic("fault: Decorate with nil injector")
	}
	return &Estimator{inner: e, inj: inj}
}

// Name identifies the inner estimator in reports.
func (f *Estimator) Name() string { return f.inner.Name() }

// MutatesOverlay forwards the wrapped estimator's overlay-mutation
// capability (core.OverlayMutator): fault injection perturbs message
// fates, not the graph, so decoration must not demote a read-only
// estimator to the conservative mutating default.
func (f *Estimator) MutatesOverlay() bool { return core.MutatesOverlay(f.inner) }

// Injector returns the injector bracketing this estimator.
func (f *Estimator) Injector() *Injector { return f.inj }

// Estimate runs the inner estimation under the fault policy.
func (f *Estimator) Estimate(net *overlay.Network) (float64, error) {
	prev := net.FaultPolicy()
	net.SetFaultPolicy(f.inj)
	defer net.SetFaultPolicy(prev)
	f.inj.BeginEstimate(net)
	est, err := f.inner.Estimate(net)
	f.inj.EndEstimate()
	return est, err
}
