// Package fault is the deterministic fault and adversary layer between
// the estimators and the overlay. The comparative study measures its
// candidates only under benign churn; this package supplies the degraded
// conditions real deployments exhibit — lossy links, inflated latency,
// duplicated traffic, network partitions, and misbehaving peers — so the
// robustness experiments can rank every estimator family per scenario.
//
// A scenario is a Spec, parsed from the compact grammar both CLIs accept
// ("drop=0.05,delay=2x,partition@40-60"). Message-level faults (drop,
// delay, duplicate) are enforced by an Injector installed on the overlay
// as its fault policy: every metered Send/SendN consults it, so every
// current and future estimator family runs unmodified under faults.
// Transport semantics follow the protocol class: walk, poll and reply
// traffic is request/response — a dropped message is retransmitted
// (extra metered messages plus timeout latency) but the payload always
// arrives — while epidemic push/pull traffic is fire-and-forget, so a
// dropped message loses its payload (the mass-conservation failure mode
// the IPFS measurement literature documents). Node misbehavior (lying
// aggregators, sybil inflation, silent leavers) and partitions are
// graph- or value-level and are applied by the surgery helpers and the
// epidemic protocols' ReportScale consultation.
//
// Determinism contract: all fate draws come from the Injector's seeded
// *xrand.Rand and all misbehavior selection from salted hashes of stable
// node IDs, so equal (Spec, seed, overlay) give byte-identical fault
// sequences at every worker count.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Spec describes one fault scenario. The zero value is the benign
// no-fault scenario; fields compose freely.
type Spec struct {
	// Drop is the per-message loss probability in [0, 1).
	Drop float64
	// DelayFactor multiplies every message delay (latency pricing only;
	// 0 means the neutral 1x).
	DelayFactor float64
	// Dup is the per-message duplication probability in [0, 1]:
	// duplicated messages are metered again but carry no new payload.
	Dup float64
	// PartitionFrac is the fraction of peers split into the minority
	// component during the partition window (0 = no partition).
	PartitionFrac float64
	// PartitionLo and PartitionHi bound the partition window as
	// fractions of the run sequence (or trace horizon) in [0, 1]; the
	// overlay splits at Lo and heals at Hi.
	PartitionLo, PartitionHi float64
	// LieScale is the factor by which lying aggregators scale the sums
	// they report (0 = no liars; honest is 1).
	LieScale float64
	// LieFrac is the fraction of peers that lie (selected by salted
	// hash, so the liar set is stable per scenario seed).
	LieFrac float64
	// SilentFrac is the fraction of peers that silently stop responding:
	// their links are severed but they never depart the alive set, so
	// they still count toward the true size the estimators chase.
	SilentFrac float64
	// SybilFrac inflates the overlay with SybilFrac × N phantom peers
	// that join normally and answer protocols like honest nodes; error
	// is judged against the honest population.
	SybilFrac float64
	// NATFrac is the fraction of peers behind asymmetric (NAT-limited)
	// connectivity: inbound requests to them fail, while their own
	// outbound sends still work. Selected by salted hash, like liars.
	NATFrac float64
}

// Enabled reports whether the spec requests any fault at all.
func (s Spec) Enabled() bool { return s != Spec{} }

// MessageFaults reports whether the spec carries message-level faults
// the Injector enforces (drop, delay, duplicate, lying, NAT).
func (s Spec) MessageFaults() bool {
	return s.Drop > 0 || s.Dup > 0 || (s.DelayFactor > 0 && s.DelayFactor != 1) || s.LieFrac > 0 || s.NATFrac > 0
}

// Validate checks field ranges; the zero value is valid.
func (s Spec) Validate() error {
	switch {
	case s.Drop < 0 || s.Drop >= 1:
		return fmt.Errorf("fault: drop probability %g outside [0, 1)", s.Drop)
	case s.DelayFactor < 0:
		return fmt.Errorf("fault: delay factor %g is negative", s.DelayFactor)
	case s.Dup < 0 || s.Dup > 1:
		return fmt.Errorf("fault: duplicate probability %g outside [0, 1]", s.Dup)
	case s.PartitionFrac < 0 || s.PartitionFrac >= 1:
		return fmt.Errorf("fault: partition fraction %g outside [0, 1)", s.PartitionFrac)
	case s.PartitionLo < 0 || s.PartitionHi > 1 || s.PartitionLo > s.PartitionHi:
		return fmt.Errorf("fault: partition window [%g, %g] not inside [0, 1]", s.PartitionLo, s.PartitionHi)
	case s.PartitionFrac > 0 && s.PartitionLo == s.PartitionHi:
		return errors.New("fault: partition window is empty")
	case s.LieFrac < 0 || s.LieFrac > 1:
		return fmt.Errorf("fault: liar fraction %g outside [0, 1]", s.LieFrac)
	case s.LieFrac > 0 && s.LieScale <= 0:
		return fmt.Errorf("fault: liar scale %g must be positive", s.LieScale)
	case s.SilentFrac < 0 || s.SilentFrac > 1:
		return fmt.Errorf("fault: silent fraction %g outside [0, 1]", s.SilentFrac)
	case s.SybilFrac < 0 || s.SybilFrac > 1:
		return fmt.Errorf("fault: sybil fraction %g outside [0, 1]", s.SybilFrac)
	case s.NATFrac < 0 || s.NATFrac >= 1:
		return fmt.Errorf("fault: nat fraction %g outside [0, 1)", s.NATFrac)
	}
	return nil
}

// String renders the spec in the ParseSpec grammar (empty for the
// benign scenario). ParseSpec(s.String()) round-trips.
func (s Spec) String() string {
	var parts []string
	add := func(format string, args ...any) { parts = append(parts, fmt.Sprintf(format, args...)) }
	if s.Drop > 0 {
		add("drop=%g", s.Drop)
	}
	if s.DelayFactor > 0 && s.DelayFactor != 1 {
		add("delay=%gx", s.DelayFactor)
	}
	if s.Dup > 0 {
		add("dup=%g", s.Dup)
	}
	if s.PartitionFrac > 0 {
		add("partition=%g@%g-%g", s.PartitionFrac, 100*s.PartitionLo, 100*s.PartitionHi)
	}
	if s.LieFrac > 0 {
		add("lie=%g@%g", s.LieScale, s.LieFrac)
	}
	if s.SilentFrac > 0 {
		add("silent=%g", s.SilentFrac)
	}
	if s.SybilFrac > 0 {
		add("sybil=%g", s.SybilFrac)
	}
	if s.NATFrac > 0 {
		add("nat=%g", s.NATFrac)
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the comma-separated fault scenario grammar:
//
//	drop=0.05            5% of messages are lost
//	delay=2x             message delays doubled ("2" works too)
//	dup=0.01             1% of messages duplicated
//	partition@40-60      half the peers split off for the 40%-60% window
//	partition=0.3@40-60  30% of the peers split off instead
//	lie=10@0.05          5% of peers scale reported sums by 10
//	silent=0.1           10% of peers stop responding without leaving
//	sybil=0.2            20% phantom peers join the overlay
//	nat=0.2              20% of peers unreachable for inbound requests
//
// An empty spec returns the benign zero Spec. Repeating a key is
// rejected — a pasted-together spec would otherwise silently measure a
// scenario the caller never asked for (the cadence-spec rule).
func ParseSpec(spec string) (Spec, error) {
	var s Spec
	seen := map[string]bool{}
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		key, rest, _ := strings.Cut(f, "=")
		// partition@40-60 carries its window on the key side.
		var window string
		key, window, _ = strings.Cut(key, "@")
		key = strings.ToLower(strings.TrimSpace(key))
		if seen[key] {
			return Spec{}, fmt.Errorf("fault: duplicate %q in spec %q", key, spec)
		}
		seen[key] = true
		switch key {
		case "drop", "dup", "silent", "sybil", "nat":
			v, err := parseProb(key, rest)
			if err != nil {
				return Spec{}, err
			}
			switch key {
			case "drop":
				s.Drop = v
			case "dup":
				s.Dup = v
			case "silent":
				s.SilentFrac = v
			case "sybil":
				s.SybilFrac = v
			case "nat":
				s.NATFrac = v
			}
		case "delay":
			v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(rest), "x"), 64)
			if err != nil {
				return Spec{}, fmt.Errorf("fault: bad delay %q: %w", rest, err)
			}
			s.DelayFactor = v
		case "partition":
			s.PartitionFrac = 0.5
			if rest != "" {
				rest, w, hasW := strings.Cut(rest, "@")
				if hasW {
					window = w
				}
				v, err := parseProb("partition", rest)
				if err != nil {
					return Spec{}, err
				}
				s.PartitionFrac = v
			}
			if window == "" {
				return Spec{}, fmt.Errorf("fault: partition needs a window, e.g. %q", "partition@40-60")
			}
			lo, hi, ok := strings.Cut(window, "-")
			if !ok {
				return Spec{}, fmt.Errorf("fault: bad partition window %q (want lo-hi percentages)", window)
			}
			l, err1 := strconv.ParseFloat(strings.TrimSpace(lo), 64)
			h, err2 := strconv.ParseFloat(strings.TrimSpace(hi), 64)
			if err1 != nil || err2 != nil {
				return Spec{}, fmt.Errorf("fault: bad partition window %q (want lo-hi percentages)", window)
			}
			s.PartitionLo, s.PartitionHi = l/100, h/100
		case "lie":
			scale, frac, hasFrac := strings.Cut(rest, "@")
			v, err := strconv.ParseFloat(strings.TrimSpace(scale), 64)
			if err != nil {
				return Spec{}, fmt.Errorf("fault: bad lie scale %q: %w", scale, err)
			}
			s.LieScale = v
			s.LieFrac = 0.05
			if hasFrac {
				fv, err := parseProb("lie fraction", frac)
				if err != nil {
					return Spec{}, err
				}
				s.LieFrac = fv
			}
		default:
			return Spec{}, fmt.Errorf("fault: unknown key %q in spec %q (want drop, delay, dup, partition, lie, silent, sybil or nat)", key, spec)
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

func parseProb(key, val string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
	if err != nil {
		return 0, fmt.Errorf("fault: bad %s %q: %w", key, val, err)
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("fault: %s %g outside [0, 1]", key, v)
	}
	return v, nil
}
