package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
)

// Wire format: a 4-byte big-endian body length followed by a JSON-encoded
// Frame. The prefix makes the same codec usable over streams and lets a
// datagram receiver reject truncated reads before touching the decoder.
// JSON (not gob) keeps frames inspectable with tcpdump and stable across
// Go versions; at the sizes this protocol moves (control RPCs and
// per-hop notifications) codec throughput is irrelevant.

// frameVersion is the wire version; receivers reject anything else.
const frameVersion = 1

// MaxFrame bounds the encoded frame body. It is far above anything the
// protocols send and far below the point where a UDP datagram would
// fragment into uselessness; oversized frames are rejected on both ends.
const MaxFrame = 64 << 10

// headerLen is the length-prefix size in bytes.
const headerLen = 4

// Frame types.
const (
	// TypeOneway is a fire-and-forget protocol message (the Deliver path).
	TypeOneway uint8 = iota
	// TypeRequest opens a request/response exchange.
	TypeRequest
	// TypeResponse answers the request with the same Seq.
	TypeResponse
)

// Frame is one transport message.
type Frame struct {
	// Version is the wire version (frameVersion).
	Version uint8 `json:"v"`
	// Type is TypeOneway, TypeRequest or TypeResponse.
	Type uint8 `json:"t"`
	// Op names the RPC for request/response frames ("join", "neighbors",
	// "ping", ...); empty for oneway protocol traffic.
	Op string `json:"op,omitempty"`
	// Kind is the metered message kind of oneway traffic.
	Kind metrics.Kind `json:"k,omitempty"`
	// Seq matches a response to its request; oneway frames carry the
	// sender's running sequence for duplicate suppression.
	Seq uint64 `json:"seq"`
	// From and To are overlay node IDs (graph.None when unaddressed or
	// not yet assigned).
	From NodeID `json:"from"`
	// To is the destination overlay ID.
	To NodeID `json:"to"`
	// Count is how many protocol messages this frame carries: SendN
	// batches coalesce into one frame with Count > 1 instead of flooding
	// the wire with N datagrams.
	Count uint64 `json:"n,omitempty"`
	// Payload is the op-specific request or response body.
	Payload []byte `json:"p,omitempty"`
	// Err carries a response's application error ("" for success).
	Err string `json:"err,omitempty"`
}

// Frame decode errors.
var (
	// ErrFrameTruncated is returned when the buffer ends before the
	// length prefix or the body it promises.
	ErrFrameTruncated = errors.New("transport: truncated frame")
	// ErrFrameOversized is returned when the length prefix exceeds
	// MaxFrame.
	ErrFrameOversized = errors.New("transport: oversized frame")
)

// EncodeFrame renders the frame in wire format. It rejects frames whose
// body would exceed MaxFrame.
func EncodeFrame(f *Frame) ([]byte, error) {
	f.Version = frameVersion
	body, err := json.Marshal(f)
	if err != nil {
		return nil, fmt.Errorf("transport: encode frame: %w", err)
	}
	if len(body) > MaxFrame {
		return nil, fmt.Errorf("%w: body %d > %d", ErrFrameOversized, len(body), MaxFrame)
	}
	out := make([]byte, headerLen+len(body))
	binary.BigEndian.PutUint32(out, uint32(len(body)))
	copy(out[headerLen:], body)
	return out, nil
}

// DecodeFrame parses one wire-format frame from buf and returns it with
// the number of bytes consumed, so stream receivers can iterate. A short
// buffer returns ErrFrameTruncated, a length prefix beyond MaxFrame
// returns ErrFrameOversized, and anything the JSON layer rejects (or an
// unknown version) is an error too — a malformed datagram must never
// take the receive loop down.
func DecodeFrame(buf []byte) (*Frame, int, error) {
	if len(buf) < headerLen {
		return nil, 0, fmt.Errorf("%w: %d header bytes", ErrFrameTruncated, len(buf))
	}
	n := binary.BigEndian.Uint32(buf)
	if n > MaxFrame {
		return nil, 0, fmt.Errorf("%w: prefix %d > %d", ErrFrameOversized, n, MaxFrame)
	}
	if uint32(len(buf)-headerLen) < n {
		return nil, 0, fmt.Errorf("%w: body %d of %d bytes", ErrFrameTruncated, len(buf)-headerLen, n)
	}
	var f Frame
	if err := json.Unmarshal(buf[headerLen:headerLen+int(n)], &f); err != nil {
		return nil, 0, fmt.Errorf("transport: decode frame: %w", err)
	}
	if f.Version != frameVersion {
		return nil, 0, fmt.Errorf("transport: unknown frame version %d", f.Version)
	}
	if f.Type > TypeResponse {
		return nil, 0, fmt.Errorf("transport: unknown frame type %d", f.Type)
	}
	return &f, headerLen + int(n), nil
}

// onewayFrame builds a Deliver frame.
func onewayFrame(from, to NodeID, kind metrics.Kind, count, seq uint64) *Frame {
	return &Frame{Type: TypeOneway, Kind: kind, Seq: seq, From: from, To: to, Count: count}
}

// requestFrame builds a Request frame.
func requestFrame(from, to NodeID, op string, payload []byte, seq uint64) *Frame {
	return &Frame{Type: TypeRequest, Op: op, Seq: seq, From: from, To: to, Payload: payload}
}

// responseFrame builds the response to req, echoing its Seq and Op.
func responseFrame(req *Frame, from NodeID, payload []byte, err error) *Frame {
	f := &Frame{Type: TypeResponse, Op: req.Op, Seq: req.Seq, From: from, To: req.From, Payload: payload}
	if err != nil {
		f.Err = err.Error()
	}
	return f
}

// noneID is the unaddressed destination.
const noneID = graph.None
