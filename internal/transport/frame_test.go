package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"p2psize/internal/metrics"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []*Frame{
		onewayFrame(3, 7, metrics.KindPush, 42, 9),
		requestFrame(noneID, 0, "assign", []byte(`{"id":4}`), 1),
		responseFrame(&Frame{Op: "ping", Seq: 17, From: 2}, 5, []byte("pong"), nil),
		responseFrame(&Frame{Op: "join", Seq: 3, From: 1}, 6, nil, errors.New("nope")),
	}
	for _, f := range cases {
		buf, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("encode %+v: %v", f, err)
		}
		got, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", f, err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d bytes", n, len(buf))
		}
		if got.Type != f.Type || got.Op != f.Op || got.Seq != f.Seq ||
			got.From != f.From || got.To != f.To || got.Kind != f.Kind ||
			got.Count != f.Count || got.Err != f.Err || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("round trip mismatch:\n  sent %+v\n  got  %+v", f, got)
		}
	}
}

func TestFrameRoundTripConcatenated(t *testing.T) {
	// Stream receivers decode frame-by-frame from one buffer; the
	// consumed-byte count must walk the concatenation exactly.
	var buf []byte
	for i := 0; i < 3; i++ {
		b, err := EncodeFrame(onewayFrame(NodeID(i), NodeID(i+1), metrics.KindWalk, uint64(i+1), uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, b...)
	}
	for i := 0; i < 3; i++ {
		f, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.From != NodeID(i) || f.Count != uint64(i+1) {
			t.Fatalf("frame %d decoded as %+v", i, f)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestDecodeFrameTruncated(t *testing.T) {
	full, err := EncodeFrame(requestFrame(1, 2, "ping", nil, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must fail with ErrFrameTruncated — never panic,
	// never decode garbage.
	for n := 0; n < len(full); n++ {
		if _, _, err := DecodeFrame(full[:n]); !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("prefix of %d bytes: got %v, want ErrFrameTruncated", n, err)
		}
	}
}

func TestDecodeFrameOversized(t *testing.T) {
	buf := make([]byte, headerLen)
	binary.BigEndian.PutUint32(buf, MaxFrame+1)
	if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrFrameOversized) {
		t.Fatalf("got %v, want ErrFrameOversized", err)
	}
}

func TestEncodeFrameOversized(t *testing.T) {
	f := requestFrame(1, 2, "blob", bytes.Repeat([]byte("x"), MaxFrame+1), 1)
	if _, err := EncodeFrame(f); !errors.Is(err, ErrFrameOversized) {
		t.Fatalf("got %v, want ErrFrameOversized", err)
	}
}

func TestDecodeFrameBadVersionAndType(t *testing.T) {
	for _, body := range []string{
		`{"v":2,"t":0,"seq":1,"from":0,"to":1}`, // future version
		`{"v":1,"t":9,"seq":1,"from":0,"to":1}`, // unknown type
		`{not json`,
	} {
		buf := make([]byte, headerLen+len(body))
		binary.BigEndian.PutUint32(buf, uint32(len(body)))
		copy(buf[headerLen:], body)
		if _, _, err := DecodeFrame(buf); err == nil {
			t.Fatalf("body %q decoded without error", body)
		}
	}
}

// FuzzDecodeFrame asserts the decoder's hard contract: arbitrary bytes
// never panic, and whatever decodes re-encodes to something that decodes
// to the same frame.
func FuzzDecodeFrame(f *testing.F) {
	seed, _ := EncodeFrame(onewayFrame(1, 2, metrics.KindGossipSpread, 3, 4))
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < headerLen || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		fr2, _, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if fr2.Type != fr.Type || fr2.Op != fr.Op || fr2.Seq != fr.Seq ||
			fr2.From != fr.From || fr2.To != fr.To || fr2.Count != fr.Count {
			t.Fatalf("re-decode mismatch: %+v vs %+v", fr, fr2)
		}
	})
}
