package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"p2psize/internal/metrics"
)

// Default retransmission parameters. The RTO mirrors the fault layer's
// pricing model: a lost request costs one timeout and is resent until it
// lands or the sender gives the peer up for dead (the fault.Injector
// prices exactly this loop as rto = 3×q99 of the delay distribution; on
// a real socket the delay distribution is the network's, so the timeout
// is a configured constant instead of a modeled quantile).
const (
	defaultRTO     = 250 * time.Millisecond
	defaultRetries = 4
)

// ErrPeerUnreachable is returned when a request exhausts its
// retransmission budget; the peer is signalled down on the liveness
// channel at the same time.
var ErrPeerUnreachable = errors.New("transport: peer unreachable")

// UDPConfig parameterizes a UDP transport.
type UDPConfig struct {
	// Addr is the local listen address ("127.0.0.1:0" for an ephemeral
	// port).
	Addr string
	// Self is the local overlay ID stamped on outgoing frames
	// (graph.None before the coordinator assigns one; see SetSelf).
	Self NodeID
	// Handler receives inbound traffic (nil to start; see SetHandler).
	Handler Handler
	// RTO is the request retransmission timeout (defaultRTO if 0).
	RTO time.Duration
	// Retries is how many times a timed-out request is resent before
	// the peer is declared unreachable (defaultRetries if 0).
	Retries int
}

// UDP is the real-socket transport: length-prefixed JSON frames over a
// single UDP socket, per-peer addressing, sequence-matched
// request/response with RTO retransmission, and liveness events when a
// peer stops answering. Safe for concurrent use.
type UDP struct {
	conn    *net.UDPConn
	rto     time.Duration
	retries int

	mu      sync.Mutex
	self    NodeID
	handler Handler
	peers   map[NodeID]*net.UDPAddr
	order   []NodeID // bound peers in bind order, for round-robin
	next    int      // round-robin cursor for unaddressed sends
	down    map[NodeID]bool
	pending map[uint64]chan *Frame
	closed  bool

	seq    atomic.Uint64
	events chan Event
	done   chan struct{}
	wg     sync.WaitGroup

	delivered   atomic.Uint64
	requests    atomic.Uint64
	retransmits atomic.Uint64
	errOutcomes atomic.Uint64
}

// NewUDP opens the socket and starts the receive loop.
func NewUDP(cfg UDPConfig) (*UDP, error) {
	laddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", cfg.Addr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", cfg.Addr, err)
	}
	u := &UDP{
		conn:    conn,
		rto:     cfg.RTO,
		retries: cfg.Retries,
		self:    cfg.Self,
		handler: cfg.Handler,
		peers:   make(map[NodeID]*net.UDPAddr),
		down:    make(map[NodeID]bool),
		pending: make(map[uint64]chan *Frame),
		events:  make(chan Event, 64),
		done:    make(chan struct{}),
	}
	if u.rto <= 0 {
		u.rto = defaultRTO
	}
	if u.retries <= 0 {
		u.retries = defaultRetries
	}
	u.wg.Add(1)
	go u.readLoop()
	return u, nil
}

// LocalAddr returns the bound socket address (with the resolved port).
func (u *UDP) LocalAddr() string { return u.conn.LocalAddr().String() }

// SetSelf assigns the local overlay ID (the coordinator hands IDs out at
// bootstrap, after the socket already exists).
func (u *UDP) SetSelf(id NodeID) {
	u.mu.Lock()
	u.self = id
	u.mu.Unlock()
}

// Self returns the local overlay ID.
func (u *UDP) Self() NodeID {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.self
}

// SetHandler installs the inbound dispatch target.
func (u *UDP) SetHandler(h Handler) {
	u.mu.Lock()
	u.handler = h
	u.mu.Unlock()
}

// SetPeer binds a peer ID to its address; later frames to the ID go
// there. Rebinding an ID replaces the address.
func (u *UDP) SetPeer(id NodeID, addr string) error {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: resolve peer %d addr %q: %w", id, addr, err)
	}
	u.mu.Lock()
	if _, known := u.peers[id]; !known {
		u.order = append(u.order, id)
	}
	u.peers[id] = a
	u.mu.Unlock()
	return nil
}

// PeerAddr returns the bound address of a peer.
func (u *UDP) PeerAddr(id NodeID) (string, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	a, ok := u.peers[id]
	if !ok {
		return "", false
	}
	return a.String(), true
}

// resolve picks the wire address for a destination: the bound address
// for an addressed send, the next bound peer round-robin for an
// unaddressed one (batch metering does not expose destinations, but the
// traffic still has to cross a wire somewhere).
func (u *UDP) resolve(to NodeID) (NodeID, *net.UDPAddr) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if to != noneID {
		return to, u.peers[to]
	}
	if len(u.order) == 0 {
		return noneID, nil
	}
	id := u.order[u.next%len(u.order)]
	u.next++
	return id, u.peers[id]
}

// Deliver implements Transport: one datagram carrying the whole batch
// (Count = count), fire-and-forget like the epidemic traffic it mostly
// carries. An unknown or unaddressed destination with no bound peers is
// a metered no-op, which keeps the null-deployment path (no daemons yet)
// identical to the simulation.
func (u *UDP) Deliver(to NodeID, kind metrics.Kind, count uint64) error {
	if count == 0 {
		return nil
	}
	id, addr := u.resolve(to)
	if addr == nil {
		u.delivered.Add(count)
		return nil
	}
	f := onewayFrame(u.Self(), id, kind, count, u.seq.Add(1))
	if err := u.write(f, addr); err != nil {
		u.errOutcomes.Add(1)
		return err
	}
	u.delivered.Add(count)
	return nil
}

// Request implements Transport: send, wait for the matching response,
// retransmit on RTO expiry, give up (and signal the peer down) after the
// retry budget.
func (u *UDP) Request(to NodeID, op string, payload []byte) ([]byte, error) {
	u.mu.Lock()
	addr := u.peers[to]
	closed := u.closed
	u.mu.Unlock()
	if closed {
		return nil, errors.New("transport: udp transport is closed")
	}
	if addr == nil {
		u.errOutcomes.Add(1)
		return nil, fmt.Errorf("transport: no address bound for peer %d", to)
	}
	seq := u.seq.Add(1)
	f := requestFrame(u.Self(), to, op, payload, seq)
	ch := make(chan *Frame, 1)
	u.mu.Lock()
	u.pending[seq] = ch
	u.mu.Unlock()
	defer func() {
		u.mu.Lock()
		delete(u.pending, seq)
		u.mu.Unlock()
	}()

	timer := time.NewTimer(u.rto)
	defer timer.Stop()
	for attempt := 0; attempt <= u.retries; attempt++ {
		if attempt > 0 {
			u.retransmits.Add(1)
		}
		if err := u.write(f, addr); err != nil {
			u.errOutcomes.Add(1)
			return nil, err
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(u.rto)
		select {
		case resp := <-ch:
			u.markUp(to, addr.String())
			u.requests.Add(1)
			if resp.Err != "" {
				return nil, fmt.Errorf("transport: %s: %s", op, resp.Err)
			}
			return resp.Payload, nil
		case <-timer.C:
			// fall through to retransmit
		case <-u.done:
			return nil, errors.New("transport: udp transport is closed")
		}
	}
	u.errOutcomes.Add(1)
	u.markDown(to, addr.String())
	return nil, fmt.Errorf("%w: peer %d (%s) after %d attempts", ErrPeerUnreachable, to, addr, u.retries+1)
}

// write encodes and sends one frame.
func (u *UDP) write(f *Frame, addr *net.UDPAddr) error {
	buf, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	_, err = u.conn.WriteToUDP(buf, addr)
	return err
}

// markDown signals a peer's transition to unreachable (once per
// transition).
func (u *UDP) markDown(id NodeID, addr string) {
	u.mu.Lock()
	was := u.down[id]
	u.down[id] = true
	closed := u.closed
	u.mu.Unlock()
	if !was && !closed {
		u.signal(Event{Peer: id, Up: false, Addr: addr})
	}
}

// markUp signals a peer's recovery (once per transition).
func (u *UDP) markUp(id NodeID, addr string) {
	u.mu.Lock()
	was := u.down[id]
	delete(u.down, id)
	closed := u.closed
	u.mu.Unlock()
	if was && !closed {
		u.signal(Event{Peer: id, Up: true, Addr: addr})
	}
}

// signal pushes a liveness event without blocking.
func (u *UDP) signal(ev Event) {
	select {
	case u.events <- ev:
	default:
	}
}

// Liveness implements Transport.
func (u *UDP) Liveness() <-chan Event { return u.events }

// readLoop receives and dispatches frames until the socket closes. A
// malformed datagram increments the error counter and is dropped; it
// must never take the loop down.
func (u *UDP) readLoop() {
	defer u.wg.Done()
	buf := make([]byte, headerLen+MaxFrame+1)
	for {
		n, raddr, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-u.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			u.errOutcomes.Add(1)
			continue
		}
		f, _, err := DecodeFrame(buf[:n])
		if err != nil {
			u.errOutcomes.Add(1)
			continue
		}
		u.dispatch(f, raddr)
	}
}

// dispatch routes one received frame.
func (u *UDP) dispatch(f *Frame, raddr *net.UDPAddr) {
	// Learn (or refresh) the sender's address: daemons behind ephemeral
	// ports become addressable the moment they first speak.
	if f.From != noneID {
		u.mu.Lock()
		if _, known := u.peers[f.From]; !known {
			u.order = append(u.order, f.From)
		}
		u.peers[f.From] = raddr
		u.mu.Unlock()
	}
	switch f.Type {
	case TypeOneway:
		count := f.Count
		if count == 0 {
			count = 1
		}
		u.mu.Lock()
		h := u.handler
		u.mu.Unlock()
		if h != nil {
			h.ServeOneway(f.From, f.Kind, count)
		}
	case TypeRequest:
		u.mu.Lock()
		h := u.handler
		u.mu.Unlock()
		var payload []byte
		var err error
		if h == nil {
			err = errors.New("no handler")
		} else {
			payload, err = h.ServeRequest(f.From, f.Op, f.Payload)
		}
		resp := responseFrame(f, u.Self(), payload, err)
		if werr := u.write(resp, raddr); werr != nil {
			u.errOutcomes.Add(1)
		}
	case TypeResponse:
		u.mu.Lock()
		ch := u.pending[f.Seq]
		u.mu.Unlock()
		if ch != nil {
			select {
			case ch <- f:
			default:
			}
		}
	}
}

// Close implements Transport; it is idempotent.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	close(u.done)
	err := u.conn.Close()
	u.wg.Wait()
	close(u.events)
	return err
}

// Stats returns a snapshot of the delivery accounting.
func (u *UDP) Stats() Stats {
	return Stats{
		Delivered:   u.delivered.Load(),
		Requests:    u.requests.Load(),
		Retransmits: u.retransmits.Load(),
		Errors:      u.errOutcomes.Load(),
	}
}
