package transport

import (
	"errors"
	"sync/atomic"
	"testing"

	"p2psize/internal/metrics"
)

// testHandler is a scriptable Handler for transport tests.
type testHandler struct {
	oneway  atomic.Uint64
	request func(from NodeID, op string, payload []byte) ([]byte, error)
}

func (h *testHandler) ServeOneway(from NodeID, kind metrics.Kind, count uint64) {
	h.oneway.Add(count)
}

func (h *testHandler) ServeRequest(from NodeID, op string, payload []byte) ([]byte, error) {
	if h.request == nil {
		return []byte("ok"), nil
	}
	return h.request(from, op, payload)
}

func TestLoopbackNullDevice(t *testing.T) {
	l := NewLoopback()
	defer l.Close()
	// With nothing bound, Deliver counts and succeeds — the metered
	// null-device behavior the byte-identity suite relies on.
	if err := l.Deliver(3, metrics.KindWalk, 5); err != nil {
		t.Fatalf("unbound deliver: %v", err)
	}
	if err := l.Deliver(noneID, metrics.KindPush, 2); err != nil {
		t.Fatalf("unaddressed deliver: %v", err)
	}
	if got := l.Stats().Delivered; got != 7 {
		t.Fatalf("delivered = %d, want 7", got)
	}
	if _, err := l.Request(3, "ping", nil); err == nil {
		t.Fatal("request to unbound peer succeeded")
	}
}

func TestLoopbackDispatchAndLiveness(t *testing.T) {
	l := NewLoopback()
	defer l.Close()
	h := &testHandler{}
	l.Bind(4, h)
	if ev := <-l.Liveness(); ev.Peer != 4 || !ev.Up {
		t.Fatalf("bind event = %+v", ev)
	}
	if err := l.Deliver(4, metrics.KindPush, 3); err != nil {
		t.Fatal(err)
	}
	if got := h.oneway.Load(); got != 3 {
		t.Fatalf("handler received %d, want 3", got)
	}
	resp, err := l.Request(4, "ping", nil)
	if err != nil || string(resp) != "ok" {
		t.Fatalf("request = %q, %v", resp, err)
	}
	h.request = func(NodeID, string, []byte) ([]byte, error) {
		return nil, errors.New("boom")
	}
	if _, err := l.Request(4, "ping", nil); err == nil {
		t.Fatal("handler error not propagated")
	}
	l.Unbind(4)
	if ev := <-l.Liveness(); ev.Peer != 4 || ev.Up {
		t.Fatalf("unbind event = %+v", ev)
	}
	st := l.Stats()
	if st.Requests != 1 || st.Errors != 1 {
		t.Fatalf("stats = %+v, want 1 request, 1 error", st)
	}
}

func TestLoopbackClose(t *testing.T) {
	l := NewLoopback()
	l.Bind(1, &testHandler{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := l.Deliver(1, metrics.KindWalk, 1); err == nil {
		t.Fatal("deliver after close succeeded")
	}
	// The liveness channel must be closed (the bind event was drained by
	// nobody, so two reads may be needed).
	for range l.Liveness() {
	}
}
