package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"p2psize/internal/metrics"
)

// Handler receives a peer's inbound traffic from a transport. The
// cluster node daemon implements it; estimator-only deployments leave
// peers unbound and the transport acts as a metered null device.
type Handler interface {
	// ServeOneway receives count protocol messages of the kind.
	ServeOneway(from NodeID, kind metrics.Kind, count uint64)
	// ServeRequest answers an RPC; the returned payload (or error) is
	// sent back to the requester.
	ServeRequest(from NodeID, op string, payload []byte) ([]byte, error)
}

// Loopback is the in-process transport: frames are dispatched to bound
// handlers synchronously on the caller's goroutine. With no handler
// bound for the destination, Deliver counts and returns — which is
// exactly the simulated path, so installing a Loopback under the overlay
// is behaviourally invisible to the estimators (the byte-identity the
// determinism suite asserts). Safe for concurrent use.
type Loopback struct {
	mu       sync.RWMutex
	handlers map[NodeID]Handler
	closed   bool
	events   chan Event

	delivered   atomic.Uint64
	requests    atomic.Uint64
	errOutcomes atomic.Uint64
}

// NewLoopback builds an empty in-process bus.
func NewLoopback() *Loopback {
	return &Loopback{
		handlers: make(map[NodeID]Handler),
		events:   make(chan Event, 64),
	}
}

// Bind registers the handler for a peer's inbound traffic (replacing any
// previous binding) and signals the peer up.
func (l *Loopback) Bind(id NodeID, h Handler) {
	l.mu.Lock()
	if !l.closed {
		l.handlers[id] = h
	}
	closed := l.closed
	l.mu.Unlock()
	if !closed {
		l.signal(Event{Peer: id, Up: true})
	}
}

// Unbind removes a peer's handler and signals the peer down.
func (l *Loopback) Unbind(id NodeID) {
	l.mu.Lock()
	_, had := l.handlers[id]
	delete(l.handlers, id)
	closed := l.closed
	l.mu.Unlock()
	if had && !closed {
		l.signal(Event{Peer: id, Up: false})
	}
}

// signal pushes a liveness event without ever blocking the caller.
func (l *Loopback) signal(ev Event) {
	select {
	case l.events <- ev:
	default:
	}
}

// Deliver implements Transport: dispatch to the destination's handler,
// or count and return when none (or no destination) is bound.
func (l *Loopback) Deliver(to NodeID, kind metrics.Kind, count uint64) error {
	l.mu.RLock()
	h := l.handlers[to]
	closed := l.closed
	l.mu.RUnlock()
	if closed {
		l.errOutcomes.Add(1)
		return fmt.Errorf("transport: loopback is closed")
	}
	l.delivered.Add(count)
	if h != nil && to != noneID {
		h.ServeOneway(noneID, kind, count)
	}
	return nil
}

// Request implements Transport: a synchronous call into the
// destination's handler.
func (l *Loopback) Request(to NodeID, op string, payload []byte) ([]byte, error) {
	l.mu.RLock()
	h := l.handlers[to]
	closed := l.closed
	l.mu.RUnlock()
	if closed {
		l.errOutcomes.Add(1)
		return nil, fmt.Errorf("transport: loopback is closed")
	}
	if h == nil {
		l.errOutcomes.Add(1)
		return nil, fmt.Errorf("transport: no handler bound for peer %d", to)
	}
	resp, err := h.ServeRequest(noneID, op, payload)
	if err != nil {
		l.errOutcomes.Add(1)
		return nil, err
	}
	l.requests.Add(1)
	return resp, nil
}

// Liveness implements Transport.
func (l *Loopback) Liveness() <-chan Event { return l.events }

// Close implements Transport; it is idempotent.
func (l *Loopback) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.handlers = make(map[NodeID]Handler)
	close(l.events)
	return nil
}

// Stats returns a snapshot of the delivery accounting.
func (l *Loopback) Stats() Stats {
	return Stats{
		Delivered: l.delivered.Load(),
		Requests:  l.requests.Load(),
		Errors:    l.errOutcomes.Load(),
	}
}
