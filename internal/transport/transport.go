// Package transport is the physical message layer underneath the
// overlay's metering surface. The simulation path needs no transport at
// all — overlay.Send/SendN meter and return — but a deployment needs the
// metered message to actually cross a wire. The seam is deliberately
// one-way: the overlay hands every metered send to the installed
// Transport for delivery and ignores delivery errors, so estimator
// arithmetic (and therefore every frozen experiment checksum) is
// identical whether the bytes move in-process, over UDP, or not at all.
// Delivery failures surface out-of-band instead: on the liveness channel
// (for failure detection by a coordinator) and on the transport's error
// counter (for diagnostics).
//
// Two implementations ship:
//
//   - Loopback: an in-process bus. Frames are dispatched to registered
//     handlers synchronously; with no handler registered it is a metered
//     null device. Safe for concurrent use, so the parallel experiment
//     harnesses can share one.
//   - UDP: real sockets. Length-prefixed JSON frames (frame.go),
//     request/response matching by sequence number, retransmission on a
//     timeout mirroring the fault layer's RTO pricing model, and
//     liveness events when a peer stops answering.
package transport

import (
	"p2psize/internal/graph"
	"p2psize/internal/metrics"
)

// NodeID aliases the graph node identifier: transports address peers by
// the same dense IDs the overlay uses.
type NodeID = graph.NodeID

// Event is one liveness observation: a peer transitioned up or down.
type Event struct {
	// Peer is the overlay ID of the observed peer.
	Peer NodeID
	// Up reports the new state: true when the peer (re)appeared, false
	// when it stopped answering.
	Up bool
	// Addr is the peer's transport address, when known ("" for loopback).
	Addr string
}

// Transport moves metered overlay messages between peers. Deliver is the
// overlay seam (fire-and-forget, called on every metered Send/SendN);
// Request is the control-plane RPC surface the cluster runtime uses for
// join/leave/neighbor bookkeeping.
//
// Implementations must be safe for concurrent use: the parallel
// experiment harnesses share one transport across estimation instances.
type Transport interface {
	// Deliver carries count protocol messages of the given kind to the
	// peer (graph.None for unaddressed sends, e.g. batch metering whose
	// destinations the protocol does not expose). The overlay ignores
	// the error by design; implementations record failures internally
	// and signal persistent ones on the liveness channel.
	Deliver(to NodeID, kind metrics.Kind, count uint64) error
	// Request sends an op with a payload to the peer and waits for the
	// matching response.
	Request(to NodeID, op string, payload []byte) ([]byte, error)
	// Liveness returns the channel of peer up/down transitions. The
	// channel is closed by Close. Receivers must drain promptly;
	// implementations drop events rather than block.
	Liveness() <-chan Event
	// Close releases the transport's resources and closes the liveness
	// channel. Close is idempotent.
	Close() error
}

// Stats is a snapshot of a transport's delivery accounting, exposed by
// both implementations for tests and diagnostics.
type Stats struct {
	// Delivered counts protocol messages handed over successfully
	// (frames for UDP, dispatches for loopback).
	Delivered uint64
	// Requests counts completed request/response exchanges.
	Requests uint64
	// Retransmits counts frames resent after an RTO expiry (UDP only).
	Retransmits uint64
	// Errors counts deliveries and requests that ultimately failed.
	Errors uint64
}
