package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"p2psize/internal/metrics"
)

// newUDPPair opens two wired transports: a knows b as peer 1, b knows a
// as peer 0.
func newUDPPair(t *testing.T, ha, hb Handler) (*UDP, *UDP) {
	t.Helper()
	a, err := NewUDP(UDPConfig{Addr: "127.0.0.1:0", Self: 0, Handler: ha})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := NewUDP(UDPConfig{Addr: "127.0.0.1:0", Self: 1, Handler: hb})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	if err := a.SetPeer(1, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPeer(0, a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestUDPRequestResponse(t *testing.T) {
	hb := &testHandler{request: func(from NodeID, op string, payload []byte) ([]byte, error) {
		if op != "echo" || from != 0 {
			t.Errorf("server saw op=%q from=%d", op, from)
		}
		return append([]byte("re:"), payload...), nil
	}}
	a, _ := newUDPPair(t, nil, hb)
	resp, err := a.Request(1, "echo", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "re:hello" {
		t.Fatalf("resp = %q", resp)
	}
	if st := a.Stats(); st.Requests != 1 || st.Retransmits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUDPRequestApplicationError(t *testing.T) {
	hb := &testHandler{request: func(NodeID, string, []byte) ([]byte, error) {
		return nil, errors.New("denied")
	}}
	a, _ := newUDPPair(t, nil, hb)
	if _, err := a.Request(1, "op", nil); err == nil || !contains(err.Error(), "denied") {
		t.Fatalf("err = %v, want application error", err)
	}
}

func TestUDPOnewayBatch(t *testing.T) {
	hb := &testHandler{}
	a, _ := newUDPPair(t, nil, hb)
	// A SendN batch travels as ONE frame with Count, not count datagrams.
	if err := a.Deliver(1, metrics.KindPush, 500); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for hb.oneway.Load() < 500 {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of 500 batched messages", hb.oneway.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if got := a.Stats().Delivered; got != 500 {
		t.Fatalf("delivered = %d, want 500", got)
	}
}

func TestUDPUnboundDeliverIsMeteredNoop(t *testing.T) {
	a, err := NewUDP(UDPConfig{Addr: "127.0.0.1:0", Self: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Deliver(7, metrics.KindWalk, 3); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Delivered != 3 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want delivered=3 errors=0", st)
	}
}

func TestUDPRetransmitAndRecover(t *testing.T) {
	// A raw socket playing a lossy peer: it swallows the first request
	// datagram and answers the retransmission, exercising the RTO loop and
	// the wire format against a hand-rolled endpoint.
	raw, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	go func() {
		buf := make([]byte, headerLen+MaxFrame)
		for seen := 0; ; seen++ {
			n, raddr, err := raw.ReadFromUDP(buf)
			if err != nil {
				return
			}
			if seen == 0 {
				continue // drop the first attempt
			}
			f, _, err := DecodeFrame(buf[:n])
			if err != nil || f.Type != TypeRequest {
				continue
			}
			out, err := EncodeFrame(responseFrame(f, 1, []byte("late"), nil))
			if err != nil {
				return
			}
			raw.WriteToUDP(out, raddr)
		}
	}()

	a, err := NewUDP(UDPConfig{Addr: "127.0.0.1:0", Self: 0, RTO: 30 * time.Millisecond, Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.SetPeer(1, raw.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	resp, err := a.Request(1, "ping", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "late" {
		t.Fatalf("resp = %q", resp)
	}
	if st := a.Stats(); st.Retransmits == 0 {
		t.Fatalf("stats = %+v, want at least one retransmit", st)
	}
}

func TestUDPUnreachablePeer(t *testing.T) {
	// Reserve a port with nothing answering on it.
	dead, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.LocalAddr().String()
	dead.Close()

	a, err := NewUDP(UDPConfig{Addr: "127.0.0.1:0", Self: 0, RTO: 20 * time.Millisecond, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.SetPeer(1, deadAddr); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Request(1, "ping", nil); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("err = %v, want ErrPeerUnreachable", err)
	}
	select {
	case ev := <-a.Liveness():
		if ev.Peer != 1 || ev.Up {
			t.Fatalf("liveness event = %+v, want peer 1 down", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no down event on the liveness channel")
	}
	if st := a.Stats(); st.Retransmits != 2 || st.Errors == 0 {
		t.Fatalf("stats = %+v, want 2 retransmits and an error", st)
	}
}

func TestUDPAddressLearning(t *testing.T) {
	// b never calls SetPeer for a; a's first request teaches b the return
	// address, after which b can Deliver to a by ID.
	ha := &testHandler{}
	a, err := NewUDP(UDPConfig{Addr: "127.0.0.1:0", Self: 0, Handler: ha})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDP(UDPConfig{Addr: "127.0.0.1:0", Self: 1, Handler: &testHandler{}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.SetPeer(1, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Request(1, "ping", nil); err != nil {
		t.Fatal(err)
	}
	if addr, ok := b.PeerAddr(0); !ok || addr != a.LocalAddr() {
		t.Fatalf("b learned %q (ok=%v), want %q", addr, ok, a.LocalAddr())
	}
	if err := b.Deliver(0, metrics.KindReply, 2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for ha.oneway.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("a received %d of 2", ha.oneway.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUDPCloseIdempotent(t *testing.T) {
	a, err := NewUDP(UDPConfig{Addr: "127.0.0.1:0", Self: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	for range a.Liveness() {
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
