// Package dhtext implements a DHT routing-table size extrapolator: the
// estimator class deployed DHT crawlers and the IPFS network-size
// monitors use (the liveness study of arXiv:2205.14927 that calibrates
// the trace-ipfs workload measures exactly such a network). Every peer
// owns a uniform 64-bit identifier; a lookup toward a random target
// returns the k peers whose identifiers are XOR-closest to it (a
// Kademlia k-closest set), and the identifier density of that set
// extrapolates the population size.
//
// With N uniform identifiers, the XOR distances from a random target
// are N iid uniforms on [0, 2^64), so the k-th smallest distance d(k)
// is a uniform order statistic with E[2^64/d(k)] = N/(k−1); the
// per-probe estimate
//
//	N̂ = (k−1)·2^64 / d(k)
//
// is therefore exactly unbiased, with relative error ~1/√(k−2).
// Averaging Probes independent lookups tightens it to
// ~1/√(Probes·(k−2)). Each probe routes iteratively like a real
// Kademlia lookup: starting from a peer derived from the target, every
// hop halves the XOR distance to the target and sends one routed
// message, until the distance enters the closest set; then the k
// closest-set replies come back. Per-hop metering (rather than a flat
// ⌈log₂N⌉ price) routes each hop through the overlay's fault policy, so
// the structured class pays drops and delays the same way the walkers
// do.
//
// Unlike the idspace baseline — whose precomputed ring is a membership
// snapshot and therefore unsound under churn — the identifiers here are
// derived by hashing the (stable) node ID under a per-instance salt, so
// joins and leaves need no maintenance and the family stays sound on a
// churning overlay: it monitors, and pairs naturally with trace-ipfs.
//
// The family is deliberately oblivious to the nat= asymmetric-
// connectivity fault: a peer's DHT records outlive its reachability, so
// identifier-density estimates keep counting NAT-limited peers — the
// record/liveness asymmetry the IPFS measurement study documents. The
// robustness-nat scenario ranks it against the families whose probes
// the NAT actually stops.
package dhtext

import (
	"errors"
	"fmt"
	"math"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

// Config parameterizes the DHT extrapolator.
type Config struct {
	// K is the closest-set size a lookup returns (Kademlia's bucket
	// width; >= 2 so the order-statistic estimator is defined).
	K int
	// Probes is the number of independent lookups averaged per
	// estimation.
	Probes int
}

// Default returns the Kademlia-flavored configuration: k = 20 closest
// peers per lookup, 16 lookups per estimate (~6% relative error).
func Default() Config { return Config{K: 20, Probes: 16} }

func (c *Config) validate() error {
	if c.K < 2 {
		return errors.New("dhtext: K must be >= 2")
	}
	if c.Probes < 1 {
		return errors.New("dhtext: Probes must be >= 1")
	}
	return nil
}

// Estimator runs k-closest density estimations on an overlay. It
// satisfies the core.Estimator contract.
type Estimator struct {
	cfg  Config
	rng  *xrand.Rand
	salt uint64   // per-instance identifier-space salt
	dist []uint64 // scratch: max-heap of the k smallest distances
}

// New builds an Estimator; it panics on invalid configuration. The
// identifier space is salted from the instance rng, so equal seeds give
// equal identifier assignments and byte-identical estimates.
func New(cfg Config, rng *xrand.Rand) *Estimator {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("dhtext: nil rng")
	}
	return &Estimator{cfg: cfg, rng: rng, salt: rng.Uint64()}
}

// Name identifies the estimator in reports.
func (e *Estimator) Name() string {
	return fmt.Sprintf("dht-density(k=%d,probes=%d)", e.cfg.K, e.cfg.Probes)
}

// MutatesOverlay reports false: density probes only route and measure
// (core.OverlayMutator), so the monitor may run them on a shared clone.
func (e *Estimator) MutatesOverlay() bool { return false }

// Config returns the estimator's configuration.
func (e *Estimator) Config() Config { return e.cfg }

// ErrEmptyOverlay is returned when no live peer can be looked up.
var ErrEmptyOverlay = errors.New("dhtext: empty overlay")

// id64 returns the node's DHT identifier: the SplitMix64 finalizer over
// the salted node ID, uniform on the 64-bit space and stable for the
// node's lifetime (dense graph IDs are never reused).
func (e *Estimator) id64(id graph.NodeID) uint64 {
	x := e.salt ^ (uint64(uint32(id)) + 0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Estimate averages Probes lookups toward fresh random targets and
// returns the extrapolated size. Lookup routing hops and closest-set
// replies are metered on the network's counter.
func (e *Estimator) Estimate(net *overlay.Network) (float64, error) {
	g := net.Graph()
	n := g.NumAlive()
	if n == 0 {
		return 0, ErrEmptyOverlay
	}
	k := e.cfg.K
	if k > n {
		k = n
	}
	if k < 2 {
		// One- or two-peer overlays leave no order statistic to
		// extrapolate from; the lookup trivially enumerates the
		// network instead.
		net.Send(metrics.KindWalk)
		return float64(n), nil
	}
	sum := 0.0
	for p := 0; p < e.cfg.Probes; p++ {
		// The target is the probe's only rng draw; the lookup initiator
		// is derived from it, not drawn, so routing costs never perturb
		// the estimate stream.
		target := e.rng.Uint64()
		dk := e.kthClosest(g, target, k)
		// Iterative routing: each hop lands on a peer whose XOR distance
		// to the target is half the previous one (Kademlia's per-hop
		// guarantee) and costs one routed message, until the distance
		// enters the closest set. A converged DHT thus routes at most
		// ~log₂N hops; here the count follows the actual distances.
		d := e.id64(start(g, target, n)) ^ target
		hops := 0
		for d > dk && hops < 64 {
			net.Send(metrics.KindWalk)
			d >>= 1
			hops++
		}
		if hops == 0 {
			// The initiator already held the closest set: still one
			// lookup message to fetch it.
			net.Send(metrics.KindWalk)
		}
		net.SendN(metrics.KindReply, uint64(k))
		// d(k) > 0: identifiers are distinct (64-bit hash collisions
		// aside) and a zero distance would need id == target exactly.
		sum += float64(k-1) * math.Ldexp(1, 64) / float64(dk)
	}
	return sum / float64(e.cfg.Probes), nil
}

// start picks the lookup initiator for a probe: a peer indexed by the
// target itself, so the choice is deterministic given (overlay, target).
func start(g *graph.Graph, target uint64, n int) graph.NodeID {
	return g.AliveAt(int(target % uint64(n)))
}

// kthClosest returns the k-th smallest XOR distance from target to any
// alive identifier, maintaining a size-k max-heap over one deterministic
// sweep of the alive list.
func (e *Estimator) kthClosest(g *graph.Graph, target uint64, k int) uint64 {
	if cap(e.dist) < k {
		e.dist = make([]uint64, 0, k)
	}
	h := e.dist[:0]
	for i := 0; i < g.NumAlive(); i++ {
		d := e.id64(g.AliveAt(i)) ^ target
		if len(h) < k {
			h = append(h, d)
			siftUp(h, len(h)-1)
		} else if d < h[0] {
			h[0] = d
			siftDown(h, 0)
		}
	}
	e.dist = h
	return h[0]
}

func siftUp(h []uint64, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] >= h[i] {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func siftDown(h []uint64, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h) && h[l] > h[largest] {
			largest = l
		}
		if r < len(h) && h[r] > h[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}
