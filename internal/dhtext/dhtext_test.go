package dhtext

import (
	"math"
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/stats"
	"p2psize/internal/xrand"
)

func hetNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

func TestEstimatePlausible(t *testing.T) {
	const n = 2000
	net := hetNet(n, 1)
	e := New(Default(), xrand.New(2))
	est, err := e.Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est/n-1) > 0.30 {
		t.Fatalf("estimate %.1f off truth %d beyond the single-shot envelope", est, n)
	}
}

// TestStatisticalEnvelope is the paper-style bias check: the per-probe
// estimator (k−1)·2^64/d(k) is exactly unbiased for uniform
// identifiers, so over 30 seeded estimations on fresh overlays (fresh
// salts, fresh targets) the mean must sit within a few percent of the
// truth, with spread near 1/√(Probes·(k−2)).
func TestStatisticalEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("30 estimations at n=2000")
	}
	const n, runs = 2000, 30
	var r stats.Running
	for i := 0; i < runs; i++ {
		net := hetNet(n, uint64(500+i))
		e := New(Default(), xrand.New(uint64(900+i)))
		est, err := e.Estimate(net)
		if err != nil {
			t.Fatal(err)
		}
		r.Add(est)
	}
	if math.Abs(r.Mean()/n-1) > 0.05 {
		t.Fatalf("mean estimate %.1f off truth %d by more than 5%%", r.Mean(), n)
	}
	if r.StdDev() == 0 {
		t.Fatal("zero spread across independent runs")
	}
	if r.StdDev()/r.Mean() > 0.15 {
		t.Fatalf("relative spread %.3f beyond the order-statistic envelope", r.StdDev()/r.Mean())
	}
}

func TestDeterministicForEqualSeeds(t *testing.T) {
	a, err := New(Default(), xrand.New(7)).Estimate(hetNet(1200, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Default(), xrand.New(7)).Estimate(hetNet(1200, 3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("equal seeds gave %g and %g", a, b)
	}
}

func TestSoundUnderChurn(t *testing.T) {
	// The identifiers are hashed from stable node IDs, so no state
	// goes stale when membership changes — the property that lets the
	// family monitor (unlike the snapshot-based idspace ring).
	net := hetNet(1000, 4)
	e := New(Default(), xrand.New(5))
	if _, err := e.Estimate(net); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(6)
	for i := 0; i < 400; i++ {
		net.LeaveRandom(rng)
	}
	for i := 0; i < 100; i++ {
		net.JoinRandomDegree(rng)
	}
	truth := float64(net.Size())
	var r stats.Running
	for i := 0; i < 10; i++ {
		est, err := e.Estimate(net)
		if err != nil {
			t.Fatal(err)
		}
		r.Add(est)
	}
	if math.Abs(r.Mean()/truth-1) > 0.10 {
		t.Fatalf("post-churn mean %.1f off truth %.0f by more than 10%%", r.Mean(), truth)
	}
}

func TestMessagesMetered(t *testing.T) {
	const n = 512
	net := hetNet(n, 8)
	cfg := Config{K: 10, Probes: 4}
	if _, err := New(cfg, xrand.New(9)).Estimate(net); err != nil {
		t.Fatal(err)
	}
	c := net.Counter()
	// Iterative routing sends one message per distance-halving hop: at
	// least one per probe, and for 512 peers well under the 64-hop cap.
	// The exact count is a deterministic function of the seed (golden).
	walks := c.Count(metrics.KindWalk)
	if walks < 4 || walks > 4*64 {
		t.Fatalf("routing hops = %d, want within [4, %d]", walks, 4*64)
	}
	if got, want := walks, uint64(21); got != want {
		t.Fatalf("routing hops = %d, want golden %d (seed 9)", got, want)
	}
	if got, want := c.Count(metrics.KindReply), uint64(4*10); got != want {
		t.Fatalf("closest-set replies = %d, want %d", got, want)
	}
}

func TestTinyOverlays(t *testing.T) {
	for n := 1; n <= 4; n++ {
		g := graph.NewWithNodes(n)
		for i := 1; i < n; i++ {
			g.AddEdge(graph.NodeID(0), graph.NodeID(i))
		}
		net := overlay.New(g, 10, nil)
		est, err := New(Default(), xrand.New(uint64(n))).Estimate(net)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if est <= 0 || math.IsInf(est, 0) || math.IsNaN(est) {
			t.Fatalf("n=%d: estimate %g", n, est)
		}
	}
	net := overlay.New(graph.New(0), 10, nil)
	if _, err := New(Default(), xrand.New(1)).Estimate(net); err != ErrEmptyOverlay {
		t.Fatalf("empty overlay err = %v", err)
	}
}

func TestKthClosestMatchesSort(t *testing.T) {
	// The heap-based selection must agree with a full sort for the
	// k-th order statistic.
	net := hetNet(300, 11)
	e := New(Config{K: 7, Probes: 1}, xrand.New(12))
	g := net.Graph()
	target := uint64(0xdeadbeefcafef00d)
	var all []uint64
	for i := 0; i < g.NumAlive(); i++ {
		all = append(all, e.id64(g.AliveAt(i))^target)
	}
	// Insertion sort is fine at this size.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j] < all[j-1]; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if got := e.kthClosest(g, target, 7); got != all[6] {
		t.Fatalf("kthClosest = %d, want %d", got, all[6])
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{{K: 1, Probes: 1}, {K: 2, Probes: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, xrand.New(1))
		}()
	}
}
