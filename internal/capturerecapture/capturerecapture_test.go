package capturerecapture

import (
	"math"
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/stats"
	"p2psize/internal/xrand"
)

func hetNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

func TestChapmanFormula(t *testing.T) {
	// 100 marked, 100 recaptured, 9 overlaps: (101·101)/10 − 1.
	if got, want := Chapman(100, 100, 9), 101.0*101/10-1; got != want {
		t.Fatalf("Chapman = %g, want %g", got, want)
	}
	// m = 0 stays finite — the correction's point.
	if got := Chapman(50, 50, 0); math.IsInf(got, 0) || got != 51*51-1 {
		t.Fatalf("Chapman at m=0 = %g", got)
	}
}

func TestEstimatePlausible(t *testing.T) {
	const n = 2000
	net := hetNet(n, 1)
	e := New(Default(), xrand.New(2))
	est, err := e.Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	if est < float64(n)/2 || est > float64(n)*2 {
		t.Fatalf("estimate %.1f implausible for %d nodes", est, n)
	}
}

// TestStatisticalEnvelope is the paper-style bias check: over 30 seeded
// estimations on fresh overlays, the mean sits within a modest envelope
// of the truth (the per-run error is ~1/√m ≈ 15% at these sizes, so
// the 30-run mean should land within a few percent).
func TestStatisticalEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("30 estimations at n=2000")
	}
	const n, runs = 2000, 30
	var r stats.Running
	for i := 0; i < runs; i++ {
		net := hetNet(n, uint64(400+i))
		e := New(Default(), xrand.New(uint64(800+i)))
		est, err := e.Estimate(net)
		if err != nil {
			t.Fatal(err)
		}
		r.Add(est)
	}
	if math.Abs(r.Mean()/n-1) > 0.10 {
		t.Fatalf("mean estimate %.1f off truth %d by more than 10%%", r.Mean(), n)
	}
	if r.StdDev() == 0 {
		t.Fatal("zero spread across independent runs")
	}
	if r.StdDev()/r.Mean() > 0.35 {
		t.Fatalf("relative spread %.3f far beyond the 1/√m envelope", r.StdDev()/r.Mean())
	}
}

func TestDeterministicForEqualSeeds(t *testing.T) {
	a, err := New(Default(), xrand.New(9)).Estimate(hetNet(1000, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Default(), xrand.New(9)).Estimate(hetNet(1000, 3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("equal seeds gave %g and %g", a, b)
	}
}

func TestMessagesMetered(t *testing.T) {
	net := hetNet(500, 4)
	e := New(Config{T: 10, Marks: 50, Recaptures: 50}, xrand.New(5))
	if _, err := e.Estimate(net); err != nil {
		t.Fatal(err)
	}
	c := net.Counter()
	if c.Count(metrics.KindWalk) == 0 {
		t.Fatal("no walk hops metered")
	}
	// One sample-return per walk draw.
	if got := c.Count(metrics.KindSampleReturn); got != 100 {
		t.Fatalf("sample returns = %d, want 100", got)
	}
	// One control message per distinct mark; marks <= capture draws.
	if got := c.Count(metrics.KindControl); got == 0 || got > 50 {
		t.Fatalf("mark control messages = %d, want in (0, 50]", got)
	}
}

func TestEmptyOverlayErrors(t *testing.T) {
	net := overlay.New(graph.New(0), 10, nil)
	if _, err := New(Default(), xrand.New(1)).Estimate(net); err != ErrEmptyOverlay {
		t.Fatalf("err = %v, want ErrEmptyOverlay", err)
	}
}

func TestSingletonOverlay(t *testing.T) {
	// A lone isolated peer samples itself in both phases: n1 = 1,
	// m = Recaptures, and Chapman collapses to ~1.
	g := graph.NewWithNodes(1)
	net := overlay.New(g, 10, nil)
	est, err := New(Config{T: 10, Marks: 20, Recaptures: 20}, xrand.New(6)).Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-1) > 1 {
		t.Fatalf("singleton estimate = %g, want ~1", est)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{T: 0, Marks: 1, Recaptures: 1},
		{T: 10, Marks: 0, Recaptures: 1},
		{T: 10, Marks: 1, Recaptures: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, xrand.New(1))
		}()
	}
}
