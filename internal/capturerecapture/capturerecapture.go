// Package capturerecapture implements a capture–recapture size
// estimator, the ecology-derived sampling method the comparative
// study's background (§II) groups with the random-walk class: mark a
// random sample of peers, draw a second independent sample, and infer
// the population size from the overlap.
//
// Both phases draw uniform peers with the same timer-driven
// continuous-time random walk Sample&Collide uses (the walk machinery
// is reused from that package), so the method inherits its
// degree-unbiased sampling on arbitrary graphs. With n1 distinct peers
// marked in the capture phase, n2 recapture draws and m of them landing
// on marked peers, the estimate is Lincoln–Petersen with the Chapman
// correction,
//
//	N̂ = (n1+1)(n2+1)/(m+1) − 1,
//
// which stays finite at m = 0 and removes the small-sample bias of the
// raw n1·n2/m. The relative error scales as 1/√E[m] with
// E[m] ≈ n2·n1/N, so fixed sample counts buy accuracy at small-to-
// medium sizes and degrade gracefully (rather than diverging in cost)
// as N grows — the opposite trade to Sample&Collide, whose sample count
// grows as √N to hold accuracy. That contrast is exactly what the
// comparative figures put side by side.
//
// Cost per estimation: (Marks + Recaptures) walks of ~T·d̄ hops each,
// plus one control message per newly marked peer.
package capturerecapture

import (
	"errors"
	"fmt"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/samplecollide"
	"p2psize/internal/xrand"
)

// Config parameterizes the capture–recapture estimator.
type Config struct {
	// T is the sampling walk timer, shared semantics with
	// Sample&Collide (0 is invalid; Default uses the paper's 10).
	T float64
	// Marks is the number of capture-phase walk draws; the marked set
	// holds the distinct peers among them.
	Marks int
	// Recaptures is the number of recapture-phase walk draws.
	Recaptures int
}

// Default returns the 300/300 configuration: at the study's smaller
// scales E[m] stays in the tens, keeping single-estimate error near
// 1/√m ≈ 15%, at a per-estimate cost two orders below Random Tour.
func Default() Config { return Config{T: 10, Marks: 300, Recaptures: 300} }

func (c *Config) validate() error {
	if c.T <= 0 {
		return errors.New("capturerecapture: T must be > 0")
	}
	if c.Marks < 1 {
		return errors.New("capturerecapture: Marks must be >= 1")
	}
	if c.Recaptures < 1 {
		return errors.New("capturerecapture: Recaptures must be >= 1")
	}
	return nil
}

// Estimator runs capture–recapture estimations on an overlay. It
// satisfies the core.Estimator contract.
type Estimator struct {
	cfg     Config
	rng     *xrand.Rand
	sampler *samplecollide.Estimator
	marked  map[graph.NodeID]struct{} // scratch, reset per estimation
}

// New builds an Estimator; it panics on invalid configuration.
func New(cfg Config, rng *xrand.Rand) *Estimator {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("capturerecapture: nil rng")
	}
	// The sampler shares this estimator's rng so one seed fixes the
	// whole draw sequence; its L is irrelevant (only Sample is used).
	return &Estimator{
		cfg:     cfg,
		rng:     rng,
		sampler: samplecollide.New(samplecollide.Config{T: cfg.T, L: 1}, rng),
	}
}

// Name identifies the estimator in reports.
func (e *Estimator) Name() string {
	return fmt.Sprintf("capture-recapture(marks=%d,recaptures=%d)", e.cfg.Marks, e.cfg.Recaptures)
}

// MutatesOverlay reports false: marking and recapturing only walk the
// overlay (core.OverlayMutator), so the monitor may use a shared clone.
func (e *Estimator) MutatesOverlay() bool { return false }

// Config returns the estimator's configuration.
func (e *Estimator) Config() Config { return e.cfg }

// ErrEmptyOverlay is returned when no live peer can initiate.
var ErrEmptyOverlay = errors.New("capturerecapture: empty overlay")

// Estimate runs one capture phase and one recapture phase from a random
// initiator and returns the Chapman-corrected estimate. Walk hops and
// sample returns are metered by the sampler; marking a newly captured
// peer costs one control message.
func (e *Estimator) Estimate(net *overlay.Network) (float64, error) {
	initiator, ok := net.RandomPeer(e.rng)
	if !ok {
		return 0, ErrEmptyOverlay
	}
	return e.EstimateFrom(net, initiator)
}

// EstimateFrom runs one full estimation from the given initiator.
func (e *Estimator) EstimateFrom(net *overlay.Network, initiator graph.NodeID) (float64, error) {
	if !net.Alive(initiator) {
		return 0, fmt.Errorf("capturerecapture: initiator %d is not alive", initiator)
	}
	if e.marked == nil {
		e.marked = make(map[graph.NodeID]struct{}, e.cfg.Marks)
	}
	clear(e.marked)
	// Capture: draw Marks uniform samples; the distinct ones form the
	// marked set (each new mark is one control message to the peer).
	for i := 0; i < e.cfg.Marks; i++ {
		s, err := e.sampler.Sample(net, initiator)
		if err != nil {
			return 0, err
		}
		if _, dup := e.marked[s]; !dup {
			e.marked[s] = struct{}{}
			net.Send(metrics.KindControl)
		}
	}
	// Recapture: draw again, count hits on the marked set. Departed
	// peers simply cannot be re-drawn, which under churn shrinks m and
	// biases the estimate up — the honest failure mode of the method.
	m := 0
	for i := 0; i < e.cfg.Recaptures; i++ {
		s, err := e.sampler.Sample(net, initiator)
		if err != nil {
			return 0, err
		}
		if _, hit := e.marked[s]; hit {
			m++
		}
	}
	n1 := float64(len(e.marked))
	n2 := float64(e.cfg.Recaptures)
	return Chapman(n1, n2, float64(m)), nil
}

// Chapman returns the Chapman-corrected Lincoln–Petersen estimate for
// n1 marked, n2 recaptured, m overlapping.
func Chapman(n1, n2, m float64) float64 {
	return (n1+1)*(n2+1)/(m+1) - 1
}
