// Package randomtour implements the Random Tour size estimator
// (Massoulié, Le Merrer, Kermarrec, Ganesh, PODC'06), the other
// random-walk method discussed in the comparative study's background
// (§II): Sample&Collide was chosen over it because "the overhead of the
// Sample&Collide algorithm is much lower than the one of Random Tour".
// This package exists so that claim is reproducible (see the
// ablation benchmark BenchmarkExtRandomTourVsSampleCollide).
//
// The estimator uses the return time of a random walk: a walk started at
// initiator i and absorbed on its first return to i visits node v an
// expected π_v·E[T_return] times, with π_v = deg(v)/2|E| the stationary
// distribution and E[T_return] = 1/π_i = 2|E|/deg(i). Accumulating
// Φ = Σ_t 1/deg(X_t) over the tour therefore has expectation
//
//	E[Φ] = Σ_v π_v (1/deg v) · E[T_return] = (N / 2|E|) · (2|E|/deg i)
//	     = N / deg(i),
//
// so N̂ = deg(i) · Φ is unbiased. A single tour costs Θ(2|E|/deg i)
// messages — linear in the network size, which is exactly why
// Sample&Collide's Θ(√N·l) wins at scale.
package randomtour

import (
	"errors"
	"fmt"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

// Config parameterizes Random Tour.
type Config struct {
	// Tours is the number of independent tours averaged per estimation
	// (>=1). Averaging reduces the estimator's (large) variance.
	Tours int
	// MaxHops bounds one tour (safety valve on huge or poorly mixing
	// overlays; 0 means 500·N at Estimate time).
	MaxHops int
}

// Default returns a single-tour configuration.
func Default() Config { return Config{Tours: 1} }

func (c *Config) validate() error {
	if c.Tours < 1 {
		return errors.New("randomtour: Tours must be >= 1")
	}
	if c.MaxHops < 0 {
		return errors.New("randomtour: MaxHops must be >= 0")
	}
	return nil
}

// Estimator runs Random Tour estimations. It satisfies the
// core.Estimator contract.
type Estimator struct {
	cfg Config
	rng *xrand.Rand
}

// New builds an Estimator; it panics on invalid configuration.
func New(cfg Config, rng *xrand.Rand) *Estimator {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("randomtour: nil rng")
	}
	return &Estimator{cfg: cfg, rng: rng}
}

// Name identifies the estimator in reports.
func (e *Estimator) Name() string {
	return fmt.Sprintf("random-tour(tours=%d)", e.cfg.Tours)
}

// MutatesOverlay reports false: random tours only walk the overlay
// (core.OverlayMutator), so the monitor may run them on a shared clone.
func (e *Estimator) MutatesOverlay() bool { return false }

// Config returns the estimator's configuration.
func (e *Estimator) Config() Config { return e.cfg }

// ErrEmptyOverlay is returned when no live peer can initiate.
var ErrEmptyOverlay = errors.New("randomtour: empty overlay")

// ErrNoReturn is returned when a tour exceeds its hop budget without
// coming home — in practice a disconnected or pathological overlay.
var ErrNoReturn = errors.New("randomtour: walk did not return within the hop budget")

// ErrIsolatedInitiator is returned when the initiator has no neighbors:
// a return-time walk cannot leave, so the method degenerates.
var ErrIsolatedInitiator = errors.New("randomtour: initiator is isolated")

// Estimate runs Tours tours from a random initiator and returns the
// averaged estimate. Walk hops are metered on the network's counter.
func (e *Estimator) Estimate(net *overlay.Network) (float64, error) {
	initiator, ok := net.RandomPeer(e.rng)
	if !ok {
		return 0, ErrEmptyOverlay
	}
	return e.EstimateFrom(net, initiator)
}

// EstimateFrom runs Tours tours from the given initiator.
func (e *Estimator) EstimateFrom(net *overlay.Network, initiator graph.NodeID) (float64, error) {
	if !net.Alive(initiator) {
		return 0, fmt.Errorf("randomtour: initiator %d is not alive", initiator)
	}
	if net.Degree(initiator) == 0 {
		return 0, ErrIsolatedInitiator
	}
	sum := 0.0
	for t := 0; t < e.cfg.Tours; t++ {
		est, err := e.tour(net, initiator)
		if err != nil {
			return 0, err
		}
		sum += est
	}
	return sum / float64(e.cfg.Tours), nil
}

// tour runs one walk from initiator until first return and produces the
// unbiased single-tour estimate deg(i)·Φ.
func (e *Estimator) tour(net *overlay.Network, initiator graph.NodeID) (float64, error) {
	budget := e.cfg.MaxHops
	if budget == 0 {
		budget = 500 * net.Size()
	}
	degI := float64(net.Degree(initiator))
	pol := net.FaultPolicy()
	// The tour's Φ counts the initiator's own visit once (the start).
	phi := 1 / degI
	cur, _ := net.RandomNeighbor(initiator, e.rng)
	cur = e.natHop(net, pol, initiator, initiator, cur)
	net.SendTo(cur, metrics.KindWalk)
	hops := 1
	for cur != initiator {
		if hops >= budget {
			return 0, ErrNoReturn
		}
		phi += 1 / float64(net.Degree(cur))
		next, ok := net.RandomNeighbor(cur, e.rng)
		if !ok {
			// Mid-walk isolation cannot happen on an undirected graph
			// (we arrived over an edge), but churn between estimations
			// may leave stale state; fail loudly rather than loop.
			return 0, fmt.Errorf("randomtour: walk stranded at isolated node %d", cur)
		}
		next = e.natHop(net, pol, initiator, cur, next)
		net.SendTo(next, metrics.KindWalk)
		cur = next
		hops++
	}
	return degI * phi, nil
}

// natAttempts bounds the forwarding retries a tour holder spends on
// NAT-unreachable neighbors before falling back to relayed delivery.
const natAttempts = 4

// natHop resolves one forward hop under asymmetric (NAT-limited)
// connectivity, like the Sample&Collide walk does: a hop to an
// unreachable peer is sent (and metered), lost at the NAT, and redrawn,
// with relayed delivery as the bounded fallback. The return hop to the
// initiator is exempt — the tour is the initiator's own request, so its
// departure punched the hole the absorption message rides back through;
// without the exemption a NAT-fated initiator could never absorb its
// tour. Benign policies take the first branch with zero extra draws.
func (e *Estimator) natHop(net *overlay.Network, pol overlay.FaultPolicy, initiator, from, to graph.NodeID) graph.NodeID {
	if pol == nil || to == initiator || !pol.Unreachable(to) {
		return to
	}
	for i := 0; i < natAttempts; i++ {
		net.SendTo(to, metrics.KindWalk) // sent, lost at the NAT
		alt, ok := net.RandomNeighbor(from, e.rng)
		if !ok {
			return to
		}
		to = alt
		if to == initiator || !pol.Unreachable(to) {
			return to
		}
	}
	return to
}
