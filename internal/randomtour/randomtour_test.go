package randomtour

import (
	"errors"
	"math"
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

func hetNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{{Tours: 0}, {Tours: 1, MaxHops: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg, xrand.New(1))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil rng did not panic")
			}
		}()
		New(Default(), nil)
	}()
}

func TestName(t *testing.T) {
	e := New(Config{Tours: 4}, xrand.New(1))
	if e.Name() != "random-tour(tours=4)" {
		t.Fatalf("Name = %q", e.Name())
	}
	if e.Config().Tours != 4 {
		t.Fatal("Config not returned")
	}
}

func TestUnbiasedOnClique(t *testing.T) {
	// On a clique return times are geometric and the estimator's
	// expectation is exactly N; with many averaged tours the estimate
	// must concentrate.
	const n = 50
	net := overlay.New(graph.Clique(n), n, nil)
	e := New(Config{Tours: 400}, xrand.New(2))
	est, err := e.EstimateFrom(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-n)/n > 0.15 {
		t.Fatalf("clique estimate %.1f, truth %d", est, n)
	}
}

func TestUnbiasedOnHeterogeneousGraph(t *testing.T) {
	// Heterogeneous degrees are the hard case: the 1/deg accumulator and
	// the deg(i) factor must cancel the bias exactly.
	const n = 300
	net := hetNet(n, 3)
	e := New(Config{Tours: 600}, xrand.New(4))
	initiator, _ := net.RandomPeer(xrand.New(5))
	est, err := e.EstimateFrom(net, initiator)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-n)/n > 0.2 {
		t.Fatalf("estimate %.1f, truth %d", est, n)
	}
}

func TestUnbiasedOnRing(t *testing.T) {
	// Ring: all degrees 2, Φ = T/2, E[T] = N → mean estimate N. Return
	// times on a ring have huge variance, so average many tours on a
	// small ring.
	const n = 20
	net := overlay.New(graph.Ring(n), 2, nil)
	e := New(Config{Tours: 2000}, xrand.New(6))
	est, err := e.EstimateFrom(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-n)/n > 0.25 {
		t.Fatalf("ring estimate %.1f, truth %d", est, n)
	}
}

func TestTourCostScalesLinearly(t *testing.T) {
	// E[T_return] = 2|E|/deg(i): tours on a 4× larger overlay should cost
	// roughly 4× more messages. This is the weakness that motivated
	// Sample&Collide.
	cost := func(n int) float64 {
		net := hetNet(n, 7)
		e := New(Config{Tours: 50}, xrand.New(8))
		initiator, _ := net.RandomPeer(xrand.New(9))
		if _, err := e.EstimateFrom(net, initiator); err != nil {
			t.Fatal(err)
		}
		return float64(net.Counter().Count(metrics.KindWalk))
	}
	small, large := cost(500), cost(2000)
	ratio := large / small
	if ratio < 2 || ratio > 8 {
		t.Fatalf("cost ratio for 4x nodes = %.2f, want ≈4", ratio)
	}
}

func TestEmptyOverlay(t *testing.T) {
	g := graph.NewWithNodes(1)
	g.RemoveNode(0)
	net := overlay.New(g, 10, nil)
	if _, err := New(Default(), xrand.New(10)).Estimate(net); !errors.Is(err, ErrEmptyOverlay) {
		t.Fatalf("err = %v", err)
	}
}

func TestIsolatedInitiator(t *testing.T) {
	g := graph.NewWithNodes(3)
	g.AddEdge(1, 2)
	net := overlay.New(g, 10, nil)
	if _, err := New(Default(), xrand.New(11)).EstimateFrom(net, 0); !errors.Is(err, ErrIsolatedInitiator) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeadInitiator(t *testing.T) {
	net := hetNet(10, 12)
	id, _ := net.RandomPeer(xrand.New(13))
	net.Leave(id)
	if _, err := New(Default(), xrand.New(14)).EstimateFrom(net, id); err == nil {
		t.Fatal("dead initiator accepted")
	}
}

func TestHopBudgetExceeded(t *testing.T) {
	net := hetNet(1000, 15)
	e := New(Config{Tours: 1, MaxHops: 3}, xrand.New(16))
	initiator, _ := net.RandomPeer(xrand.New(17))
	// With a 3-hop budget on a 1000-node overlay the walk essentially
	// never returns; expect ErrNoReturn (a lucky immediate return is
	// possible but vanishingly rare at this seed — assert the error).
	if _, err := e.EstimateFrom(net, initiator); !errors.Is(err, ErrNoReturn) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		net := hetNet(200, 18)
		e := New(Config{Tours: 20}, xrand.New(19))
		initiator, _ := net.RandomPeer(xrand.New(20))
		est, err := e.EstimateFrom(net, initiator)
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %g vs %g", a, b)
	}
}

func TestMoreToursLowerVariance(t *testing.T) {
	const n = 400
	spread := func(tours int) float64 {
		net := hetNet(n, 21)
		e := New(Config{Tours: tours}, xrand.New(22))
		initiator, _ := net.RandomPeer(xrand.New(23))
		var min, max float64 = math.Inf(1), math.Inf(-1)
		for i := 0; i < 8; i++ {
			est, err := e.EstimateFrom(net, initiator)
			if err != nil {
				t.Fatal(err)
			}
			min = math.Min(min, est)
			max = math.Max(max, est)
		}
		return (max - min) / n
	}
	if s1, s50 := spread(1), spread(50); s50 >= s1 {
		t.Fatalf("averaging did not reduce spread: 1 tour %.2f vs 50 tours %.2f", s1, s50)
	}
}
