package experiments

import (
	"fmt"

	"p2psize/internal/aggregation"
	"p2psize/internal/core"
	"p2psize/internal/hopssampling"
	"p2psize/internal/plot"
	"p2psize/internal/samplecollide"
	"p2psize/internal/stats"
	"p2psize/internal/xrand"
)

// TableIRow is one measured column of the paper's Table I ("Example of
// algorithm's overhead for an estimation on a 100,000 node overlay").
type TableIRow struct {
	// Algorithm and Heuristic name the configuration, paper-style.
	Algorithm string
	Heuristic string
	// MeanSignedErrPct is the mean of (quality − 100): negative values
	// are systematic under-estimation (HopsSampling's −20%).
	MeanSignedErrPct float64
	// MeanAbsErrPct is the mean of |quality − 100| (the "+/-" rows).
	MeanAbsErrPct float64
	// OverheadPerEstimate is the measured message cost of one estimation
	// under the heuristic (lastKruns pays K single-shot costs).
	OverheadPerEstimate float64
}

// TableIRows measures the four Table I configurations on a fresh
// heterogeneous overlay of p.N100k nodes, in the paper's column order:
// S&C oneShot, HopsSampling last10runs, S&C last10runs, Aggregation.
func TableIRows(p Params) ([]TableIRow, error) {
	var rows []TableIRow

	// Sample&Collide l=200 (one run set feeds both heuristics).
	scNet := hetNet(p.N100k, p, 0x2000)
	sc := samplecollide.New(samplecollide.Config{T: 10, L: 200}, xrand.New(p.Seed+0x2001))
	scRes, err := core.RunStatic(sc, scNet, p.TableRuns, core.LastK)
	if err != nil {
		return nil, fmt.Errorf("table1 sample&collide: %w", err)
	}
	rows = append(rows, makeRow("Sample&Collide (l=200)", "oneShot",
		scRes.QualityPct(false), scRes.MeanOverhead()))

	// HopsSampling last10runs.
	hopsNet := hetNet(p.N100k, p, 0x2100)
	hops := hopssampling.New(hopssampling.Default(), xrand.New(p.Seed+0x2101))
	hopsRes, err := core.RunStatic(hops, hopsNet, p.TableRuns, core.LastK)
	if err != nil {
		return nil, fmt.Errorf("table1 hops-sampling: %w", err)
	}
	rows = append(rows, makeRow("HopsSampling", "last10runs",
		smoothedTail(hopsRes), float64(core.LastK)*hopsRes.MeanOverhead()))

	// Sample&Collide last10runs (same measurements, smoothed heuristic).
	rows = append(rows, makeRow("Sample&Collide (l=200)", "last10runs",
		smoothedTail(scRes), float64(core.LastK)*scRes.MeanOverhead()))

	// Aggregation, one epoch of EpochLen rounds per estimation. Epochs
	// are expensive (N·rounds·2), so a few runs suffice: the estimator is
	// near-deterministic at convergence.
	aggNet := hetNet(p.N100k, p, 0x2200)
	agg := aggregation.NewEstimator(aggregation.Config{RoundsPerEpoch: p.EpochLen},
		xrand.New(p.Seed+0x2201))
	aggRuns := min(3, p.TableRuns)
	aggRes, err := core.RunStatic(agg, aggNet, aggRuns, core.LastK)
	if err != nil {
		return nil, fmt.Errorf("table1 aggregation: %w", err)
	}
	rows = append(rows, makeRow("Aggregation", fmt.Sprintf("%d rounds", p.EpochLen),
		aggRes.QualityPct(false), aggRes.MeanOverhead()))
	return rows, nil
}

// smoothedTail returns the lastK-smoothed qualities once the window is
// full, so early partial windows don't distort the heuristic's accuracy.
func smoothedTail(res *core.StaticResult) []float64 {
	q := res.QualityPct(true)
	if len(q) > core.LastK {
		return q[core.LastK-1:]
	}
	return q
}

func makeRow(alg, heur string, qualities []float64, overhead float64) TableIRow {
	var signed, absErr stats.Running
	for _, q := range qualities {
		signed.Add(q - 100)
		absErr.Add(abs(q - 100))
	}
	return TableIRow{
		Algorithm:           alg,
		Heuristic:           heur,
		MeanSignedErrPct:    signed.Mean(),
		MeanAbsErrPct:       absErr.Mean(),
		OverheadPerEstimate: overhead,
	}
}

// TableI renders the measured rows in the paper's layout.
func TableI(p Params) (*plot.Table, []TableIRow, error) {
	rows, err := TableIRows(p)
	if err != nil {
		return nil, nil, err
	}
	t := &plot.Table{
		Title: fmt.Sprintf("Table I: overhead and accuracy for an estimation on a %d node overlay", p.N100k),
		Headers: []string{
			"Algorithm", "Parameters", "Accuracy (mean signed)", "Accuracy (mean abs)", "Overhead (messages)",
		},
	}
	for _, r := range rows {
		t.AddRow(
			r.Algorithm,
			r.Heuristic,
			fmt.Sprintf("%+.1f%%", r.MeanSignedErrPct),
			fmt.Sprintf("±%.1f%%", r.MeanAbsErrPct),
			plot.FormatCount(r.OverheadPerEstimate),
		)
	}
	return t, rows, nil
}

func init() {
	register("table1", func(p Params) (*Figure, error) {
		tbl, rows, err := TableI(p)
		if err != nil {
			return nil, err
		}
		fig := &Figure{
			ID:    "table1",
			Title: tbl.Title,
		}
		for _, line := range splitLines(tbl.Text()) {
			fig.AddNote("%s", line)
		}
		_ = rows
		return fig, nil
	})
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
