package experiments

import (
	"fmt"

	"p2psize/internal/core"
	"p2psize/internal/parallel"
	"p2psize/internal/plot"
	"p2psize/internal/registry"
	"p2psize/internal/stats"
)

// TableIRow is one measured column of the paper's Table I ("Example of
// algorithm's overhead for an estimation on a 100,000 node overlay").
type TableIRow struct {
	// Algorithm and Heuristic name the configuration, paper-style.
	Algorithm string
	Heuristic string
	// MeanSignedErrPct is the mean of (quality − 100): negative values
	// are systematic under-estimation (HopsSampling's −20%).
	MeanSignedErrPct float64
	// MeanAbsErrPct is the mean of |quality − 100| (the "+/-" rows).
	MeanAbsErrPct float64
	// OverheadPerEstimate is the measured message cost of one estimation
	// under the heuristic (lastKruns pays K single-shot costs).
	OverheadPerEstimate float64
}

// TableIRows measures the four Table I configurations on a fresh
// heterogeneous overlay of p.N100k nodes, in the paper's column order:
// S&C oneShot, HopsSampling last10runs, S&C last10runs, Aggregation.
// The three measurement groups (S&C feeds two rows) are independent —
// each builds its own overlay — so they run concurrently, and every
// group's trials fan out across the pool below them. The second return
// value is the total metered traffic. The per-row trial index alone
// fixes each trial's random stream, so the rows are byte-identical at
// any worker count.
func TableIRows(p Params) ([]TableIRow, uint64, error) {
	type group struct {
		label   string
		family  string
		stream  uint64
		runSeed uint64
		runs    int
		opts    registry.Options
	}
	groups := []group{
		{"sample&collide", "samplecollide", 0x2000, 0x2001, p.TableRuns, registry.Options{}},
		{"hops-sampling", "hopssampling", 0x2100, 0x2101, p.TableRuns, registry.Options{}},
		// Aggregation, one epoch of EpochLen rounds per estimation. Epochs
		// are expensive (N·rounds·2), so a few runs suffice: the estimator
		// is near-deterministic at convergence. Workers 1: trials already
		// fan out through RunStaticParallel.
		{"aggregation", "aggregation", 0x2200, 0x2201, min(3, p.TableRuns),
			registry.Options{Rounds: p.EpochLen, Shards: p.Shards, Workers: 1, Shuffle: p.Shuffle}},
	}
	type groupOut struct {
		res  *core.StaticResult
		msgs uint64
	}
	outs, err := parallel.Map(p.Workers, len(groups), func(i int) (groupOut, error) {
		g := groups[i]
		net := hetNet(p.N100k, p, g.stream)
		mk, err := perRun("table1 "+g.label, g.family, net, p, p.Seed+g.runSeed, g.opts)
		if err != nil {
			return groupOut{}, err
		}
		res, err := core.RunStaticParallel(mk, net, g.runs, core.LastK, p.Workers)
		if err != nil {
			return groupOut{}, fmt.Errorf("table1 %s: %w", g.label, err)
		}
		return groupOut{res: res, msgs: net.Counter().Total()}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	scRes, hopsRes, aggRes := outs[0].res, outs[1].res, outs[2].res
	msgs := outs[0].msgs + outs[1].msgs + outs[2].msgs
	rows := []TableIRow{
		makeRow("Sample&Collide (l=200)", "oneShot",
			scRes.QualityPct(false), scRes.MeanOverhead()),
		makeRow("HopsSampling", "last10runs",
			smoothedTail(hopsRes), float64(core.LastK)*hopsRes.MeanOverhead()),
		// Sample&Collide last10runs (same measurements, smoothed heuristic).
		makeRow("Sample&Collide (l=200)", "last10runs",
			smoothedTail(scRes), float64(core.LastK)*scRes.MeanOverhead()),
		makeRow("Aggregation", fmt.Sprintf("%d rounds", p.EpochLen),
			aggRes.QualityPct(false), aggRes.MeanOverhead()),
	}
	return rows, msgs, nil
}

// smoothedTail returns the lastK-smoothed qualities once the window is
// full, so early partial windows don't distort the heuristic's accuracy.
func smoothedTail(res *core.StaticResult) []float64 {
	q := res.QualityPct(true)
	if len(q) > core.LastK {
		return q[core.LastK-1:]
	}
	return q
}

func makeRow(alg, heur string, qualities []float64, overhead float64) TableIRow {
	var signed, absErr stats.Running
	for _, q := range qualities {
		signed.Add(q - 100)
		absErr.Add(abs(q - 100))
	}
	return TableIRow{
		Algorithm:           alg,
		Heuristic:           heur,
		MeanSignedErrPct:    signed.Mean(),
		MeanAbsErrPct:       absErr.Mean(),
		OverheadPerEstimate: overhead,
	}
}

// TableI renders the measured rows in the paper's layout.
func TableI(p Params) (*plot.Table, []TableIRow, error) {
	rows, _, err := TableIRows(p)
	if err != nil {
		return nil, nil, err
	}
	return renderTableI(p, rows), rows, nil
}

func renderTableI(p Params, rows []TableIRow) *plot.Table {
	t := &plot.Table{
		Title: fmt.Sprintf("Table I: overhead and accuracy for an estimation on a %d node overlay", p.N100k),
		Headers: []string{
			"Algorithm", "Parameters", "Accuracy (mean signed)", "Accuracy (mean abs)", "Overhead (messages)",
		},
	}
	for _, r := range rows {
		t.AddRow(
			r.Algorithm,
			r.Heuristic,
			fmt.Sprintf("%+.1f%%", r.MeanSignedErrPct),
			fmt.Sprintf("±%.1f%%", r.MeanAbsErrPct),
			plot.FormatCount(r.OverheadPerEstimate),
		)
	}
	return t
}

func init() {
	register("table1", func(p Params) (*Figure, error) {
		rows, msgs, err := TableIRows(p)
		if err != nil {
			return nil, err
		}
		tbl := renderTableI(p, rows)
		fig := &Figure{
			ID:       "table1",
			Title:    tbl.Title,
			Messages: msgs,
		}
		for _, line := range splitLines(tbl.Text()) {
			fig.AddNote("%s", line)
		}
		return fig, nil
	})
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
