package experiments

// Intra-round sharding benchmarks as first-class experiments: the same
// round workload is registered twice, once forced sequential (Shards=1,
// Workers=1) and once sharded on the Params budget. Both land in every
// suite report — and therefore in BENCH_results.json — so cmd/benchdiff
// gates the sequential baseline and the sharded sweep PR-over-PR, and
// the seq/shard wall-time columns document the speedup on the hardware
// that produced the report. The plotted series are derived from
// protocol state only, so they are byte-identical at every worker
// count (the determinism tests cover the sharded variants).

import (
	"fmt"

	"p2psize/internal/aggregation"
	"p2psize/internal/cyclon"
	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/parallel"
	"p2psize/internal/xrand"
)

func init() {
	register("perf-agg-seq", func(p Params) (*Figure, error) {
		return perfAggRounds("perf-agg-seq", "Aggregation round sweep, sequential baseline", p, 1, 1)
	})
	register("perf-agg-shard", func(p Params) (*Figure, error) {
		return perfAggRounds("perf-agg-shard", "Aggregation round sweep, sharded", p, p.Shards, p.Workers)
	})
	register("perf-cyclon-seq", func(p Params) (*Figure, error) {
		return perfCyclonRounds("perf-cyclon-seq", "CYCLON shuffle rounds, sequential baseline", p, 1, 1)
	})
	register("perf-cyclon-shard", func(p Params) (*Figure, error) {
		return perfCyclonRounds("perf-cyclon-shard", "CYCLON shuffle rounds, sharded", p, p.Shards, p.Workers)
	})
	// The perf-engine pair isolates the round engine's shuffle modes on
	// the identical sharded workload: -global pays the serial O(N)
	// Fisher–Yates prefix every round (the frozen draw order), -local
	// shuffles each shard's segment inside the parallel phase. Their
	// wall-time ratio in BENCH_results.json is the measured Amdahl
	// residue; cmd/benchdiff -require gates both so the pair can never
	// silently drop out of the report.
	register("perf-engine-global", func(p Params) (*Figure, error) {
		return perfEngineRounds("perf-engine-global", "Engine round sweep, global (serial-prefix) shuffle", p, parallel.ShuffleGlobal)
	})
	register("perf-engine-local", func(p Params) (*Figure, error) {
		return perfEngineRounds("perf-engine-local", "Engine round sweep, per-shard local shuffle", p, parallel.ShuffleLocal)
	})
}

// perfRounds is the per-size round count: enough sweep work that the
// wall time measures the rounds, not the overlay construction.
const perfRounds = 20

// perfAggRounds runs one Aggregation epoch fragment of perfRounds
// rounds at both workload sizes and plots the initiator's estimate per
// round — a deterministic series whose checksum doubles as an output
// lock on the sweep.
func perfAggRounds(id, title string, p Params, shards, workers int) (*Figure, error) {
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "#Round",
		YLabel: "Estimated size",
	}
	for _, size := range []int{p.N100k, p.N1M} {
		net := hetNet(size, p, 0x5000+uint64(size))
		cfg := aggregation.Config{RoundsPerEpoch: perfRounds, Shards: shards, Workers: workers}
		proto := aggregation.New(cfg, xrand.New(p.Seed+0x5001))
		if err := proto.StartEpoch(net); err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		s := &metrics.Series{Name: fmt.Sprintf("N=%d", size)}
		for round := 1; round <= perfRounds; round++ {
			proto.RunRound(net)
			est, _ := proto.Estimate(net)
			s.Append(float64(round), est)
		}
		fig.Series = append(fig.Series, s)
		fig.Messages += net.Counter().Total()
	}
	fig.AddNote("%d rounds per size; compare this experiment's wall time against its seq/shard sibling", perfRounds)
	return fig, nil
}

// perfEngineRounds runs the Aggregation round sweep on the Params shard
// budget under the given shuffle mode. Sibling of perfAggRounds, but the
// pair differs only in the engine's ShuffleMode — any wall-time gap
// between perf-engine-global and perf-engine-local is the serial-shuffle
// prefix, nothing else. The plotted estimate series are each mode's own
// frozen output (the modes draw differently by design), locked by the
// report checksum like every other experiment.
func perfEngineRounds(id, title string, p Params, mode parallel.ShuffleMode) (*Figure, error) {
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "#Round",
		YLabel: "Estimated size",
	}
	for _, size := range []int{p.N100k, p.N1M} {
		net := hetNet(size, p, 0x5200+uint64(size))
		cfg := aggregation.Config{RoundsPerEpoch: perfRounds, Shards: p.Shards, Workers: p.Workers, Shuffle: mode}
		proto := aggregation.New(cfg, xrand.New(p.Seed+0x5201))
		if err := proto.StartEpoch(net); err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		s := &metrics.Series{Name: fmt.Sprintf("N=%d", size)}
		for round := 1; round <= perfRounds; round++ {
			proto.RunRound(net)
			est, _ := proto.Estimate(net)
			s.Append(float64(round), est)
		}
		fig.Series = append(fig.Series, s)
		fig.Messages += net.Counter().Total()
	}
	fig.AddNote("%d rounds per size, shuffle=%s; compare wall time against the other perf-engine mode", perfRounds, mode)
	return fig, nil
}

// perfCyclonRounds drops 30% of the peers and runs perfRounds shuffle
// rounds at both workload sizes, plotting the stale-entry flush — the
// same deterministic health curve ext-cyclon tracks.
func perfCyclonRounds(id, title string, p Params, shards, workers int) (*Figure, error) {
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "Shuffle round after 30% departures",
		YLabel: "Stale view entries %",
	}
	for _, size := range []int{p.N100k, p.N1M} {
		g := graph.Heterogeneous(size, p.MaxDeg, xrand.New(p.Seed+0x5100+uint64(size)))
		cfg := cyclon.Default()
		cfg.Shards = shards
		cfg.Workers = workers
		proto := cyclon.New(cfg, xrand.New(p.Seed+0x5101), nil)
		proto.Bootstrap(g)
		rng := xrand.New(p.Seed + 0x5102)
		alive := g.AliveIDs()
		rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
		for _, id := range alive[:size*3/10] {
			proto.Leave(id)
		}
		s := &metrics.Series{Name: fmt.Sprintf("N=%d", size)}
		for round := 1; round <= perfRounds; round++ {
			proto.RunRound()
			s.Append(float64(round), 100*proto.StaleFraction())
		}
		fig.Series = append(fig.Series, s)
		fig.Messages += proto.Counter().Total()
	}
	fig.AddNote("%d rounds per size; compare this experiment's wall time against its seq/shard sibling", perfRounds)
	return fig, nil
}
