package experiments

import (
	"testing"

	"p2psize/internal/transport"
)

// TestLoopbackTransportIdentity pins the transport seam's whole promise:
// installing a real Transport under every experiment overlay leaves the
// output byte-identical to the transport-free (simulated) path, across
// the same experiment coverage the worker-invariance suite uses — static
// runs per estimator, dynamic shapes, Table I, sharded sweeps, and the
// trace-driven monitors. The overlay meters BEFORE delivery and ignores
// delivery errors, so the frozen experiment checksums cannot depend on
// whether the bytes move in-process, over UDP, or not at all; this test
// is what keeps that a fact rather than an intention.
func TestLoopbackTransportIdentity(t *testing.T) {
	ids := []string{"fig01", "fig03", "fig05", "fig09", "fig12", "fig15", "table1",
		"trace-weibull", "trace-diurnal", "trace-flashcrowd", "trace-ipfs",
		"perf-agg-shard", "perf-cyclon-shard", "ext-cyclon",
		"static-new", "trace-ipfs-all"}
	if testing.Short() {
		ids = []string{"fig01", "fig12", "table1", "trace-flashcrowd",
			"perf-agg-shard", "perf-cyclon-shard", "static-new"}
	}
	lb := transport.NewLoopback()
	defer lb.Close()
	for _, id := range ids {
		t.Run(id, func(t *testing.T) {
			base, err := Run(id, determinismParams(8))
			if err != nil {
				t.Fatal(err)
			}
			p := determinismParams(8)
			p.Transport = lb
			wired, err := Run(id, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := figuresEqual(base, wired); err != nil {
				t.Fatalf("transport=nil vs transport=loopback: %v", err)
			}
		})
	}
	if lb.Stats().Delivered == 0 {
		t.Fatal("loopback carried no traffic; the seam is not installed")
	}
}
