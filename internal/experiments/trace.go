package experiments

// Trace-driven monitoring experiments: the paper's dynamic scenarios are
// stylized ramps and shocks, but its stated use case is tracking the
// size of a live, churning network. These experiments replay realistic
// churn traces (heavy-tailed session lengths, diurnal load, flash
// crowds, and the IPFS-calibrated empirical workload) through the
// monitor subsystem and compare how well the selected estimator roster
// (Params.Estimators; default: Sample&Collide, Random Tour,
// HopsSampling, Aggregation) tracks the true size, at what message
// budget and staleness — each family optionally on its own sampling
// cadence (Params.Cadences).

import (
	"fmt"
	"math"
	"sort"

	"p2psize/internal/core"
	"p2psize/internal/metrics"
	"p2psize/internal/monitor"
	"p2psize/internal/registry"
	"p2psize/internal/trace"
	"p2psize/internal/xrand"
)

func init() {
	register("trace-weibull", traceWeibull)
	register("trace-diurnal", traceDiurnal)
	register("trace-flashcrowd", traceFlashcrowd)
}

// traceInstances builds the monitored roster from the registry: the
// families named by Params.Estimators (default: the paper's three
// head-to-head algorithms plus Random Tour, the random-walk baseline
// the study rejected on overhead grounds — continuous monitoring is
// exactly the regime where that overhead gap matters). Each family's
// rng derives from its fixed StreamOffset and each carries its
// Params.Cadences override, so both the selection and the cadence mix
// leave every other family's series untouched.
func traceInstances(p Params, stream uint64) ([]monitor.Instance, error) {
	roster, err := registry.Resolve(p.Estimators)
	if err != nil {
		return nil, err
	}
	// The instances fan out inside the monitor; the Aggregation epochs
	// shard their sweeps with the leftover budget.
	_, inner := splitWorkers(p, len(roster))
	opts := registry.Options{
		Tours:   3, // Random Tour's monitoring setting: one tour is far too noisy to track with
		Rounds:  p.EpochLen,
		Shards:  p.Shards,
		Workers: inner,
		Shuffle: p.Shuffle,
	}
	out := make([]monitor.Instance, len(roster))
	selected := make(map[string]bool, len(roster))
	for i, d := range roster {
		if !d.SupportsMonitoring {
			return nil, fmt.Errorf("estimator %q does not support continuous monitoring (snapshot-based)", d.Name)
		}
		selected[d.Name] = true
		e, err := d.Build(nil, xrand.New(p.Seed+stream+d.StreamOffset), withFaults(p, opts))
		if err != nil {
			return nil, fmt.Errorf("estimator %q: %w", d.Name, err)
		}
		out[i] = monitor.Instance{Estimator: e, Cadence: p.Cadences[d.Name]}
	}
	// A cadence override targeting nothing would silently measure the
	// wrong configuration; reject it instead (sorted, so the error is
	// deterministic regardless of map order).
	var orphans []string
	for name := range p.Cadences {
		if !selected[name] {
			orphans = append(orphans, name)
		}
	}
	if len(orphans) > 0 {
		sort.Strings(orphans)
		return nil, fmt.Errorf("cadence override names %v, not in the monitored roster", orphans)
	}
	return out, nil
}

// runTrace is the shared body of the trace experiments: replay tr on
// per-estimator clones of a fresh heterogeneous overlay, sample each
// roster member on its cadence under the given policy, and report
// tracking series plus per-estimator metrics.
func runTrace(id, title string, tr *trace.Trace, policy monitor.Policy, p Params, stream uint64) (*Figure, error) {
	// A Params.Faults partition clause composes onto ANY trace workload:
	// the spec's lo-hi window scales to the trace's own horizon. Folded
	// onto a copy — callers may share one trace across experiments, and
	// AddPartitionHeal rewrites the event list in place.
	if f := p.Faults; f.PartitionFrac > 0 {
		cp := *tr
		cp.Events = append([]trace.Event(nil), tr.Events...)
		if err := cp.AddPartitionHeal(f.PartitionLo*tr.Horizon, f.PartitionHi*tr.Horizon,
			f.PartitionFrac, xrand.New(p.Seed+stream+2)); err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		cp.Name += "+partition"
		tr = &cp
	}
	net := hetNet(tr.Initial, p, stream)
	ins, err := traceInstances(p, stream)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	res, err := monitor.RunScheduled(ins, net, tr, monitor.Config{
		Cadence: p.TraceCadence,
		Policy:  policy,
		Replay:  p.Replay,
	}, func() *xrand.Rand { return xrand.New(p.Seed + stream + 1) }, p.Workers)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	fig := &Figure{ID: id, Title: title, XLabel: "Time", YLabel: "Size"}
	real := &metrics.Series{Name: "Real network size"}
	for i := range res.Times {
		real.Append(res.Times[i], res.TrueSizes[i])
	}
	fig.Series = append(fig.Series, real)
	for k, name := range res.Names {
		s := &metrics.Series{Name: name}
		for i := range res.Times {
			s.Append(res.Times[i], res.Smoothed[k][i])
		}
		fig.Series = append(fig.Series, s)
		if mape := res.MAPE(k); math.IsNaN(mape) {
			fig.AddNote("%s: produced no usable estimates (%d failures)", name, res.Failures[k])
		} else {
			fig.AddNote("%s: MAE %.0f, MAPE %.1f%%, staleness %.1f, %.0f msgs/time-unit (%d failures, %d restarts)",
				name, res.MAE(k), mape, res.MeanStaleness(k), res.MsgsPerTime(k),
				res.Failures[k], res.Restarts[k])
		}
	}
	for k, name := range res.Names {
		if res.Cadences[k] != p.TraceCadence {
			fig.AddNote("%s sampled every %g time units (%d estimations; base cadence %g)",
				name, res.Cadences[k], res.Scheduled[k], p.TraceCadence)
		}
	}
	fig.AddNote("trace %q: %d initial, %d joins, %d leaves over horizon %g; policy %s, cadence %g",
		tr.Name, tr.Initial, tr.Joins(), tr.Leaves(), tr.Horizon, res.Policy, p.TraceCadence)
	fig.Messages = net.Counter().Total()
	return fig, nil
}

func traceWeibull(p Params) (*Figure, error) {
	tr, err := trace.Generate(trace.Config{
		Name:    "weibull",
		Initial: p.N100k,
		Horizon: p.TraceHorizon,
		// Shape 0.5 is the heavy-tailed fit reported for deployed P2P
		// systems; mean = horizon gives one full population turnover in
		// expectation.
		Session: trace.SessionDist{Kind: trace.Weibull, Mean: p.TraceHorizon, Shape: 0.5},
	}, xrand.New(p.Seed+0x4002))
	if err != nil {
		return nil, err
	}
	return runTrace("trace-weibull",
		"Continuous monitoring under heavy-tailed (Weibull k=0.5) session churn",
		tr, monitor.Policy{Smoothing: monitor.Window, Window: core.LastK}, p, 0x4000)
}

func traceDiurnal(p Params) (*Figure, error) {
	tr, err := trace.Generate(trace.Config{
		Name:    "diurnal",
		Initial: p.N100k,
		Horizon: p.TraceHorizon,
		Session: trace.SessionDist{Kind: trace.LogNormal, Mean: p.TraceHorizon / 2, Shape: 1.5},
		// Two "days" per trace with an 80% day/night swing in arrivals.
		DiurnalAmplitude: 0.8,
	}, xrand.New(p.Seed+0x4102))
	if err != nil {
		return nil, err
	}
	return runTrace("trace-diurnal",
		"Continuous monitoring under diurnal arrivals with lognormal sessions",
		tr, monitor.Policy{Smoothing: monitor.EWMA, Alpha: 0.3}, p, 0x4100)
}

func traceFlashcrowd(p Params) (*Figure, error) {
	tr, err := trace.Generate(trace.Config{
		Name:    "flashcrowd",
		Initial: p.N100k,
		Horizon: p.TraceHorizon,
		Session: trace.SessionDist{Kind: trace.Exponential, Mean: p.TraceHorizon / 2},
	}, xrand.New(p.Seed+0x4202))
	if err != nil {
		return nil, err
	}
	// A +50% flash crowd of short-lived (Pareto) visitors at 30% of the
	// horizon, then a -25% correlated failure at 70%.
	if err := tr.AddFlashCrowd(0.3*p.TraceHorizon, p.N100k/2,
		trace.SessionDist{Kind: trace.Pareto, Mean: p.TraceHorizon / 20, Shape: 1.5},
		xrand.New(p.Seed+0x4203)); err != nil {
		return nil, err
	}
	if err := tr.AddMassFailure(0.7*p.TraceHorizon, 0.25, xrand.New(p.Seed+0x4204)); err != nil {
		return nil, err
	}
	return runTrace("trace-flashcrowd",
		"Continuous monitoring through a +50% flash crowd and a -25% mass failure",
		tr, monitor.Policy{Smoothing: monitor.Window, Window: core.LastK, RestartJump: 0.5}, p, 0x4200)
}

// RunTraceFigure monitors an externally supplied (e.g. empirical) trace
// with the standard estimator set and the default window policy,
// producing a figure in the same shape as the registered trace-*
// experiments. The overlay is built to the trace's initial population;
// Params supplies seed, degree cap, cadence and worker budget.
func RunTraceFigure(id string, tr *trace.Trace, p Params) (*Figure, error) {
	if tr.Initial < 2 {
		return nil, fmt.Errorf("experiments: trace %q has %d initial sessions; need >= 2 to build an overlay",
			tr.Name, tr.Initial)
	}
	return runTrace(id,
		fmt.Sprintf("Continuous monitoring of empirical trace %q", tr.Name),
		tr, monitor.Policy{Smoothing: monitor.Window, Window: core.LastK}, p, 0x4300)
}
