package experiments

import (
	"fmt"
	"math"
	"testing"
)

// determinismParams shrinks every workload far enough that one experiment
// runs in well under a second; the determinism assertions are about bit
// equality, not statistical shape, so scale does not matter.
func determinismParams(workers int) Params {
	p := Scaled(100) // N100k -> 1000, N1M -> 2000
	p.SCRuns = 12
	p.SCRuns1M = 4
	p.HopsRuns = 12
	p.HopsRuns1M = 4
	p.AggStaticRounds = 30
	p.Fig18Runs = 8
	p.HopsHorizon = 100
	p.TableRuns = 8
	p.TraceHorizon = 100 // 10 monitor samples at the default cadence
	p.Workers = workers
	// Auto-sharding would pick one shard at this scale; force several so
	// the invariance assertions cover the cross-shard fix-up passes.
	p.Shards = 4
	return p
}

// figuresEqual compares two figures bit-for-bit: metadata, notes, message
// totals, and every series point (NaN == NaN, via Float64bits).
func figuresEqual(a, b *Figure) error {
	if a.ID != b.ID || a.Title != b.Title || a.XLabel != b.XLabel ||
		a.YLabel != b.YLabel || a.LogLog != b.LogLog {
		return fmt.Errorf("metadata differs: %+v vs %+v", a, b)
	}
	if a.Messages != b.Messages {
		return fmt.Errorf("messages differ: %d vs %d", a.Messages, b.Messages)
	}
	if len(a.Notes) != len(b.Notes) {
		return fmt.Errorf("note counts differ: %d vs %d", len(a.Notes), len(b.Notes))
	}
	for i := range a.Notes {
		if a.Notes[i] != b.Notes[i] {
			return fmt.Errorf("note %d differs:\n  %s\n  %s", i, a.Notes[i], b.Notes[i])
		}
	}
	if len(a.Series) != len(b.Series) {
		return fmt.Errorf("series counts differ: %d vs %d", len(a.Series), len(b.Series))
	}
	for si := range a.Series {
		sa, sb := a.Series[si], b.Series[si]
		if sa.Name != sb.Name {
			return fmt.Errorf("series %d name %q vs %q", si, sa.Name, sb.Name)
		}
		if sa.Len() != sb.Len() {
			return fmt.Errorf("series %q length %d vs %d", sa.Name, sa.Len(), sb.Len())
		}
		for i := range sa.X {
			if math.Float64bits(sa.X[i]) != math.Float64bits(sb.X[i]) ||
				math.Float64bits(sa.Y[i]) != math.Float64bits(sb.Y[i]) {
				return fmt.Errorf("series %q diverges at point %d: (%v,%v) vs (%v,%v)",
					sa.Name, i, sa.X[i], sa.Y[i], sb.X[i], sb.Y[i])
			}
		}
	}
	return nil
}

// TestWorkerCountInvariance is the engine's core guarantee: the same
// Params.Seed yields byte-identical Figure series at workers=1 and
// workers=8, covering a static experiment per estimator (fig01 S&C,
// fig03 Hops, fig05 Aggregation), every dynamic shape (fig09 S&C churn,
// fig12 Hops churn, fig15 epoch-restarted Aggregation), Table I, and —
// with Shards forced to 4 — the sharded Aggregation/CYCLON round paths
// (perf-*-shard, ext-cyclon) including their cross-shard fix-up passes.
func TestWorkerCountInvariance(t *testing.T) {
	ids := []string{"fig01", "fig03", "fig05", "fig09", "fig12", "fig15", "table1",
		"trace-weibull", "trace-diurnal", "trace-flashcrowd", "trace-ipfs",
		"perf-agg-shard", "perf-cyclon-shard", "ext-cyclon",
		// The PR-5 families: static-new covers their run-indexed static
		// streams (including push-sum's sharded sweeps at Shards=4),
		// trace-ipfs-all their per-instance monitoring streams.
		"static-new", "trace-ipfs-all"}
	if testing.Short() {
		ids = []string{"fig01", "fig12", "table1", "trace-flashcrowd",
			"perf-agg-shard", "perf-cyclon-shard", "static-new"}
	}
	for _, id := range ids {
		t.Run(id, func(t *testing.T) {
			seq, err := Run(id, determinismParams(1))
			if err != nil {
				t.Fatal(err)
			}
			par, err := Run(id, determinismParams(8))
			if err != nil {
				t.Fatal(err)
			}
			if err := figuresEqual(seq, par); err != nil {
				t.Fatalf("workers=1 vs workers=8: %v", err)
			}
		})
	}
}

// TestTableIWorkerCountInvariance pins the table rows themselves (the
// figure wrapper above only sees the rendered text).
func TestTableIWorkerCountInvariance(t *testing.T) {
	seqRows, seqMsgs, err := TableIRows(determinismParams(1))
	if err != nil {
		t.Fatal(err)
	}
	parRows, parMsgs, err := TableIRows(determinismParams(8))
	if err != nil {
		t.Fatal(err)
	}
	if seqMsgs != parMsgs {
		t.Fatalf("message totals differ: %d vs %d", seqMsgs, parMsgs)
	}
	if len(seqRows) != len(parRows) {
		t.Fatalf("row counts differ: %d vs %d", len(seqRows), len(parRows))
	}
	for i := range seqRows {
		if seqRows[i] != parRows[i] {
			t.Fatalf("row %d differs:\n  %+v\n  %+v", i, seqRows[i], parRows[i])
		}
	}
}

// TestSeedSensitivity guards against the opposite failure: per-run
// streams that ignore the seed entirely would also pass the invariance
// test, so check a different seed actually changes the data.
func TestSeedSensitivity(t *testing.T) {
	p1 := determinismParams(0)
	p2 := determinismParams(0)
	p2.Seed = 99
	a, err := Run("fig01", p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig01", p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := figuresEqual(a, b); err == nil {
		t.Fatal("seeds 1 and 99 produced identical figures")
	}
}

// TestRunSuiteChecksumsInvariant runs a small suite at both worker
// settings and compares the deterministic report fields (checksums,
// point counts, message totals) — the same signal CI consumes.
func TestRunSuiteChecksumsInvariant(t *testing.T) {
	ids := []string{"fig01", "fig05", "fig18"}
	seq, _, err := RunSuite(ids, determinismParams(1))
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := RunSuite(ids, determinismParams(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Experiments) != len(par.Experiments) {
		t.Fatalf("experiment counts differ")
	}
	for i := range seq.Experiments {
		a, b := seq.Experiments[i], par.Experiments[i]
		if a.ID != b.ID || a.Messages != b.Messages || len(a.Series) != len(b.Series) {
			t.Fatalf("report entry %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Series {
			if a.Series[j] != b.Series[j] {
				t.Fatalf("%s series %d: %+v vs %+v", a.ID, j, a.Series[j], b.Series[j])
			}
		}
	}
}

// TestRunSuiteReportShape checks the report carries what CI needs.
func TestRunSuiteReportShape(t *testing.T) {
	report, figs, err := RunSuite([]string{"fig01"}, determinismParams(0))
	if err != nil {
		t.Fatal(err)
	}
	if report.Schema != ReportSchema {
		t.Fatalf("schema = %q", report.Schema)
	}
	if report.Shards != 4 {
		t.Fatalf("report.Shards = %d, want the Params setting (4); shard count is part of the output identity", report.Shards)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].ID != "fig01" {
		t.Fatalf("experiments = %+v", report.Experiments)
	}
	e := report.Experiments[0]
	if e.Messages == 0 || len(e.Series) != 2 || e.Series[0].Points == 0 || len(e.Series[0].Checksum) != 16 {
		t.Fatalf("entry incomplete: %+v", e)
	}
	if figs["fig01"] == nil {
		t.Fatal("figure missing from result map")
	}
	if _, _, err := RunSuite([]string{"nope"}, determinismParams(0)); err == nil {
		t.Fatal("unknown id did not error")
	}
}
