package experiments

import (
	"math"
	"strings"
	"testing"
)

// testParams shrinks the workloads so the full suite runs in seconds
// while keeping every protocol parameter at the paper's value. The node
// floor matters: Sample&Collide with l=200 needs l << N (it draws
// X ≈ sqrt(2lN) samples), so the "100k" network must stay at 10k nodes
// or the birthday estimator saturates and reads high.
func testParams() Params {
	p := Scaled(10) // N100k -> 10000, N1M -> 100000
	p.SCRuns = 30
	p.SCRuns1M = 8
	p.HopsRuns = 30
	p.HopsRuns1M = 8
	p.Fig18Runs = 20
	p.TableRuns = 12
	return p
}

func TestScaledFloors(t *testing.T) {
	p := Scaled(1000000)
	if p.N100k < 1000 || p.N1M < 2000 {
		t.Fatalf("floors not applied: %+v", p)
	}
	if p.AggHorizon < 20*p.EpochLen {
		t.Fatalf("agg horizon too short: %d", p.AggHorizon)
	}
	if d := Scaled(1); d.N100k != 100000 {
		t.Fatalf("Scaled(1) changed defaults: %+v", d)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ext-classes", "ext-cyclon", "ext-delay", "ext-walks",
		"fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07",
		"fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18",
		"perf-agg-seq", "perf-agg-shard", "perf-cyclon-seq", "perf-cyclon-shard",
		"perf-engine-global", "perf-engine-local",
		"perf-monitor-perinstance", "perf-monitor-shared",
		"robustness-adversary", "robustness-delay", "robustness-drop",
		"robustness-dup", "robustness-nat", "robustness-partition",
		"static-new", "table1",
		"trace-diurnal", "trace-flashcrowd", "trace-ipfs", "trace-ipfs-all", "trace-weibull",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if _, ok := Get("fig01"); !ok {
		t.Fatal("Get(fig01) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("Get(nope) succeeded")
	}
	if _, err := Run("nope", testParams()); err == nil {
		t.Fatal("Run(nope) succeeded")
	}
}

func TestFig01SampleCollideStatic(t *testing.T) {
	fig, err := fig01(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series count = %d", len(fig.Series))
	}
	lastK, oneShot := fig.Series[0], fig.Series[1]
	if lastK.Name != "Last 10 runs" || oneShot.Name != "one shot" {
		t.Fatalf("series names: %q, %q", lastK.Name, oneShot.Name)
	}
	// Paper: oneShot mostly within 10%, peaks to 20%; last10runs within
	// 3-4%. Allow slack at reduced scale.
	tail := lastK.Y[len(lastK.Y)/2:]
	for _, q := range tail {
		if math.Abs(q-100) > 15 {
			t.Fatalf("last10runs quality %g drifted far from 100", q)
		}
	}
}

func TestFig02Scales(t *testing.T) {
	fig, err := fig02(testParams())
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	if fig.Series[0].Len() != p.SCRuns1M {
		t.Fatalf("points = %d", fig.Series[0].Len())
	}
}

func TestFig03HopsUnderestimates(t *testing.T) {
	fig, err := fig03(testParams())
	if err != nil {
		t.Fatal(err)
	}
	lastK := fig.Series[0]
	// Paper: consistent tendency for under-estimation (≈ -20%),
	// last10runs within a 20% band. Allow the band to widen at scale.
	var sum float64
	for _, q := range lastK.Y {
		sum += q
	}
	mean := sum / float64(len(lastK.Y))
	if mean > 102 {
		t.Fatalf("HopsSampling mean quality %.1f%%: expected under-estimation", mean)
	}
	if mean < 55 {
		t.Fatalf("HopsSampling mean quality %.1f%%: too low", mean)
	}
	// Reached-fraction note present.
	found := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "reached") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing reached-fraction note: %v", fig.Notes)
	}
}

func TestFig05AggregationConverges(t *testing.T) {
	fig, err := fig05(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("want 3 estimations, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		final := s.Y[s.Len()-1]
		if math.Abs(final-100) > 3 {
			t.Fatalf("%s final quality %.1f%%, want ≈100%%", s.Name, final)
		}
		// Starts near zero (initiator estimate 1 out of 1000).
		if s.Y[0] > 5 {
			t.Fatalf("%s starts at %.1f%%, want ≈0", s.Name, s.Y[0])
		}
	}
}

func TestFig07ScaleFreeDistribution(t *testing.T) {
	fig, err := fig07(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if !fig.LogLog {
		t.Fatal("fig07 must be log-log")
	}
	s := fig.Series[0]
	// Minimum degree is m=3; the hub is far above the average of ≈6.
	if s.X[0] < 3 {
		t.Fatalf("min degree %g < 3", s.X[0])
	}
	maxDeg := s.X[s.Len()-1]
	if maxDeg < 30 {
		t.Fatalf("max degree %g: no heavy tail", maxDeg)
	}
}

func TestFig08AllThreeOnScaleFree(t *testing.T) {
	fig, err := fig08(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	byName := map[string]float64{}
	for _, s := range fig.Series {
		var sum float64
		for _, q := range s.Y {
			sum += q
		}
		byName[s.Name] = sum / float64(s.Len())
	}
	// Paper: S&C unbiased on scale-free, Aggregation accurate, Hops
	// under-estimation amplified.
	if math.Abs(byName["Sample&collide"]-100) > 15 {
		t.Fatalf("S&C mean quality %.1f%% on scale-free", byName["Sample&collide"])
	}
	if math.Abs(byName["Aggregation"]-100) > 5 {
		t.Fatalf("Aggregation mean quality %.1f%%", byName["Aggregation"])
	}
	if byName["HopsSampling"] > byName["Sample&collide"] {
		t.Fatalf("Hops (%.1f%%) not below S&C (%.1f%%) on scale-free",
			byName["HopsSampling"], byName["Sample&collide"])
	}
}

func TestFig09CatastrophicTracking(t *testing.T) {
	fig, err := fig09(testParams())
	if err != nil {
		t.Fatal(err)
	}
	real := fig.Series[0]
	if real.Name != "Real network size" {
		t.Fatalf("first series = %q", real.Name)
	}
	// The catastrophe schedule must actually shrink the real size.
	lo, hi := real.YRange()
	if lo >= hi || lo > 0.8*real.Y[0] {
		t.Fatalf("real size never dropped: range [%g, %g]", lo, hi)
	}
	// Estimates exist for 3 instances and roughly track (paper: "reacts
	// very well to changes").
	for k := 1; k <= 3; k++ {
		est := fig.Series[k]
		bad := 0
		for i := range est.Y {
			if math.IsNaN(est.Y[i]) || math.Abs(est.Y[i]-real.Y[i])/real.Y[i] > 0.5 {
				bad++
			}
		}
		if bad > est.Len()/4 {
			t.Fatalf("instance %d off-track at %d/%d points", k, bad, est.Len())
		}
	}
}

func TestFig10GrowingAndFig11Shrinking(t *testing.T) {
	grow, err := fig10(testParams())
	if err != nil {
		t.Fatal(err)
	}
	gr := grow.Series[0]
	if gr.Y[gr.Len()-1] <= gr.Y[0] {
		t.Fatal("growing scenario did not grow")
	}
	shrink, err := fig11(testParams())
	if err != nil {
		t.Fatal(err)
	}
	sr := shrink.Series[0]
	if sr.Y[sr.Len()-1] >= sr.Y[0] {
		t.Fatal("shrinking scenario did not shrink")
	}
}

func TestFig12HopsDynamic(t *testing.T) {
	fig, err := fig12(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// ~100 estimation points over the horizon.
	if n := fig.Series[0].Len(); n < 50 {
		t.Fatalf("only %d points", n)
	}
}

func TestFig15AggCatastrophic(t *testing.T) {
	fig, err := fig15(testParams())
	if err != nil {
		t.Fatal(err)
	}
	real := fig.Series[0]
	if real.Len() == 0 {
		t.Fatal("no epoch points")
	}
	// Real size path: -25%, -25%, +25% of n0. Depending on how the scaled
	// horizon aligns with epoch boundaries the first recorded point may
	// already include a shock, so assert the shocks are visible in the
	// range rather than comparing endpoints.
	lo, hi := real.YRange()
	if lo > 0.85*hi {
		t.Fatalf("failure shocks not visible in real size: range [%g, %g]", lo, hi)
	}
	// Estimates must exist and be finite for most epochs in the growing
	// phase; under failures some loss is expected and acceptable.
	est := fig.Series[1]
	finite := 0
	for _, y := range est.Y {
		if !math.IsNaN(y) {
			finite++
		}
	}
	if finite < est.Len()/2 {
		t.Fatalf("estimation #1 usable at only %d/%d epochs", finite, est.Len())
	}
}

func TestFig16AggGrowingTracks(t *testing.T) {
	fig, err := fig16(testParams())
	if err != nil {
		t.Fatal(err)
	}
	real := fig.Series[0]
	est := fig.Series[1]
	// Paper: "fairly good adaptation to a growing network". Check the
	// final estimate is within 25% of the final (grown) size.
	fr, fe := real.Y[real.Len()-1], est.Y[est.Len()-1]
	if math.IsNaN(fe) || math.Abs(fe-fr)/fr > 0.25 {
		t.Fatalf("final estimate %g vs real %g", fe, fr)
	}
}

func TestFig17AggShrinkingDegrades(t *testing.T) {
	fig, err := fig17(testParams())
	if err != nil {
		t.Fatal(err)
	}
	real := fig.Series[0]
	if real.Y[real.Len()-1] >= real.Y[0] {
		t.Fatal("shrinking scenario did not shrink")
	}
	// The paper's point: beyond ≈30% departures the estimates stop
	// tracking (connectivity loss). We only assert the run completes and
	// produces the series; the divergence itself is data, not a failure.
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
}

func TestFig18CheapConfig(t *testing.T) {
	fig, err := fig18(testParams())
	if err != nil {
		t.Fatal(err)
	}
	oneShot := fig.Series[1]
	// l=10: relative error ~1/sqrt(10) ≈ 32%; values stay positive and
	// centered near 100 on average.
	var sum float64
	for _, q := range oneShot.Y {
		if q <= 0 {
			t.Fatalf("non-positive quality %g", q)
		}
		sum += q
	}
	mean := sum / float64(oneShot.Len())
	if math.Abs(mean-100) > 30 {
		t.Fatalf("l=10 mean quality %.1f%%", mean)
	}
}

func TestTableIShape(t *testing.T) {
	p := testParams()
	tbl, rows, err := TableI(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]TableIRow{}
	for _, r := range rows {
		byKey[r.Algorithm+"/"+r.Heuristic] = r
	}
	scOne := byKey["Sample&Collide (l=200)/oneShot"]
	scTen := byKey["Sample&Collide (l=200)/last10runs"]
	hops := byKey["HopsSampling/last10runs"]
	agg := byKey["Aggregation/50 rounds"]
	// Accuracy ordering (paper): Aggregation ≈ exact; S&C last10runs
	// beats oneShot; Hops systematically under-estimates.
	if agg.MeanAbsErrPct > 5 {
		t.Fatalf("Aggregation error %.1f%%, want ≈1%%", agg.MeanAbsErrPct)
	}
	if scTen.MeanAbsErrPct > scOne.MeanAbsErrPct+1 {
		t.Fatalf("last10runs (%.1f%%) not better than oneShot (%.1f%%)",
			scTen.MeanAbsErrPct, scOne.MeanAbsErrPct)
	}
	if hops.MeanSignedErrPct > -2 {
		t.Fatalf("Hops signed error %.1f%%, want clear under-estimation", hops.MeanSignedErrPct)
	}
	// Overhead orderings that hold at any scale: last10runs = 10× oneShot,
	// and Hops (O(N) per shot) stays below Aggregation (N·rounds·2). The
	// paper-scale ordering S&C < Hops < Aggregation is a function of N
	// (S&C costs ~sqrt(N)); EXPERIMENTS.md records it at full scale.
	if scTen.OverheadPerEstimate <= scOne.OverheadPerEstimate {
		t.Fatal("last10runs overhead not above oneShot")
	}
	if math.Abs(scTen.OverheadPerEstimate-10*scOne.OverheadPerEstimate) > 1e-6*scTen.OverheadPerEstimate {
		t.Fatalf("last10runs overhead %.0f != 10× oneShot %.0f",
			scTen.OverheadPerEstimate, scOne.OverheadPerEstimate)
	}
	if hops.OverheadPerEstimate >= agg.OverheadPerEstimate {
		t.Fatalf("Hops overhead %.0f not below Aggregation's %.0f",
			hops.OverheadPerEstimate, agg.OverheadPerEstimate)
	}
	wantAgg := float64(p.N100k * p.EpochLen * 2)
	if math.Abs(agg.OverheadPerEstimate-wantAgg)/wantAgg > 0.05 {
		t.Fatalf("Aggregation overhead %.0f, want ≈N·rounds·2 = %.0f",
			agg.OverheadPerEstimate, wantAgg)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rendered rows = %d", len(tbl.Rows))
	}
}

func TestTable1RegistryEntry(t *testing.T) {
	fig, err := Run("table1", testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Notes) < 5 {
		t.Fatalf("table notes = %v", fig.Notes)
	}
}
