package experiments

import (
	"fmt"
	"math"

	"p2psize/internal/aggregation"
	"p2psize/internal/churn"
	"p2psize/internal/core"
	"p2psize/internal/metrics"
	"p2psize/internal/parallel"
	"p2psize/internal/registry"
	"p2psize/internal/xrand"
)

func init() {
	register("fig09", fig09)
	register("fig10", fig10)
	register("fig11", fig11)
	register("fig12", fig12)
	register("fig13", fig13)
	register("fig14", fig14)
	register("fig15", fig15)
	register("fig16", fig16)
	register("fig17", fig17)
}

// dynamicSeries converts a DynamicResult into the paper's dynamic-figure
// layout: the real size curve plus one curve per estimation instance.
func dynamicSeries(res *core.DynamicResult) []*metrics.Series {
	real := &metrics.Series{Name: "Real network size"}
	for i := range res.Steps {
		real.Append(res.Steps[i], res.TrueSizes[i])
	}
	out := []*metrics.Series{real}
	for k := range res.Estimates {
		s := &metrics.Series{Name: fmt.Sprintf("Estimation #%d", k+1)}
		for i := range res.Steps {
			s.Append(res.Steps[i], res.Estimates[k][i])
		}
		out = append(out, s)
	}
	return out
}

func noteTracking(fig *Figure, res *core.DynamicResult) {
	for k := range res.Estimates {
		te := res.TrackingError(k)
		if math.IsNaN(te) {
			fig.AddNote("estimation #%d produced no usable estimates", k+1)
			continue
		}
		fig.AddNote("estimation #%d mean tracking error %.1f%% (%d failures)",
			k+1, te, res.Failures[k])
	}
}

// scDynamic is the shared body of Figs 9-11: three concurrent
// Sample&Collide processes (oneShot, l=200) with one estimate per churn
// step. Each instance runs on its own overlay clone replaying the same
// churn trajectory, so the three fan out across workers with results
// identical to the sequential interleaving.
func scDynamic(id, title string, scenario churn.Scenario, p Params, stream uint64) (*Figure, error) {
	net := hetNet(p.N100k, p, stream)
	ins, err := instances(id, "samplecollide", 3, p, stream, registry.Options{})
	if err != nil {
		return nil, err
	}
	res, err := core.RunDynamicParallel(ins, net, core.DynamicConfig{
		Scenario:      scenario,
		EstimateEvery: 1,
	}, func() *xrand.Rand { return xrand.New(p.Seed + stream + 1) }, p.Workers)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	fig := &Figure{ID: id, Title: title, XLabel: "Number of estimations", YLabel: "Estimated size"}
	fig.Series = dynamicSeries(res)
	noteTracking(fig, res)
	fig.Messages = net.Counter().Total()
	return fig, nil
}

func fig09(p Params) (*Figure, error) {
	return scDynamic("fig09",
		"Sample&Collide: oneShot heuristic, 100,000 node network, catastrophic failures",
		churn.Catastrophic(p.N100k, p.SCRuns), p, 0x0900)
}

func fig10(p Params) (*Figure, error) {
	return scDynamic("fig10",
		"Sample&Collide: oneShot, 100,000 node network, growing network",
		churn.Growing(p.N100k, p.SCRuns, 0.5), p, 0x0a00)
}

func fig11(p Params) (*Figure, error) {
	return scDynamic("fig11",
		"Sample&Collide: oneShot, 100,000 node network, shrinking network",
		churn.Shrinking(p.N100k, p.SCRuns, 0.5), p, 0x0b00)
}

// hopsDynamic is the shared body of Figs 12-14: three concurrent
// HopsSampling processes restarted every few time units, each smoothed
// with last10runs.
func hopsDynamic(id, title string, scenario churn.Scenario, p Params, stream uint64) (*Figure, error) {
	net := hetNet(p.N100k, p, stream)
	ins, err := instances(id, "hopssampling", 3, p, stream, registry.Options{})
	if err != nil {
		return nil, err
	}
	res, err := core.RunDynamicParallel(ins, net, core.DynamicConfig{
		Scenario:      scenario,
		EstimateEvery: max(1, p.HopsHorizon/100),
		SmoothLastK:   core.LastK,
	}, func() *xrand.Rand { return xrand.New(p.Seed + stream + 1) }, p.Workers)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	fig := &Figure{ID: id, Title: title, XLabel: "Time", YLabel: "Size"}
	fig.Series = dynamicSeries(res)
	noteTracking(fig, res)
	fig.Messages = net.Counter().Total()
	return fig, nil
}

func fig12(p Params) (*Figure, error) {
	return hopsDynamic("fig12",
		"HopsSampling: Last10runs heuristic, 100,000 node network, catastrophic failures",
		churn.Catastrophic(p.N100k, p.HopsHorizon), p, 0x0c00)
}

func fig13(p Params) (*Figure, error) {
	return hopsDynamic("fig13",
		"HopsSampling: Last10runs heuristic, 100,000 node network, growing network",
		churn.Growing(p.N100k, p.HopsHorizon, 0.5), p, 0x0d00)
}

func fig14(p Params) (*Figure, error) {
	return hopsDynamic("fig14",
		"HopsSampling: Last10runs heuristic, 100,000 node network, shrinking network",
		churn.Shrinking(p.N100k, p.HopsHorizon, 0.5), p, 0x0e00)
}

// aggDynamic is the shared body of Figs 15-17: three concurrent epoch-
// restarted Aggregation processes; churn advances every round; estimates
// are read at each epoch boundary (every EpochLen rounds). Like the other
// dynamic figures, each process runs on its own overlay clone replaying
// the identical churn trajectory, so the three fan out across workers.
func aggDynamic(id, title string, scenario churn.Scenario, p Params, stream uint64) (*Figure, error) {
	net := hetNet(p.N100k, p, stream)
	const instances = 3
	type instOut struct {
		real     *metrics.Series
		est      *metrics.Series
		failures int
		trackSum float64
		trackN   int
		counter  *metrics.Counter
	}
	outer, inner := splitWorkers(p, instances)
	outs, err := parallel.Map(outer, instances, func(k int) (instOut, error) {
		clone := net.CloneCOW()
		proto := aggregation.New(aggConfig(p, inner),
			xrand.New(p.Seed+stream+10+uint64(k)))
		if err := proto.StartEpoch(clone); err != nil {
			return instOut{}, fmt.Errorf("%s: %w", id, err)
		}
		runner := churn.NewRunner(scenario, xrand.New(p.Seed+stream+1))
		o := instOut{
			real:    &metrics.Series{Name: "Real size"},
			est:     &metrics.Series{Name: fmt.Sprintf("Estimation #%d", k+1)},
			counter: clone.Counter(),
		}
		for round := 0; round < scenario.TotalSteps; round++ {
			runner.Step(clone, round)
			if clone.Size() == 0 {
				break
			}
			proto.RunRound(clone)
			// The paper's figures draw the real size continuously but read
			// estimates only at epoch boundaries; shocks between epochs must
			// stay visible in the real curve.
			o.real.Append(float64(round+1), float64(clone.Size()))
			if (round+1)%p.EpochLen != 0 {
				continue
			}
			x := float64(round + 1)
			truth := float64(clone.Size())
			est, ok := proto.Estimate(clone)
			if !ok {
				o.failures++
				o.est.Append(x, math.NaN())
			} else {
				o.est.Append(x, est)
				if truth > 0 {
					o.trackSum += math.Abs(est/truth-1) * 100
					o.trackN++
				}
			}
			// Restart: new tag, values reset, estimate of the finished
			// epoch was just read.
			if err := proto.StartEpoch(clone); err != nil {
				return instOut{}, fmt.Errorf("%s: %w", id, err)
			}
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: id, Title: title, XLabel: "#Round", YLabel: "Estimated Size"}
	fig.Series = []*metrics.Series{outs[0].real}
	for k, o := range outs {
		// The figure pairs instance 0's real-size curve with every
		// instance's estimates, which is only sound if all clones replayed
		// the identical trajectory (same defensive check as
		// core.RunDynamicParallel).
		if o.real.Len() != outs[0].real.Len() {
			return nil, fmt.Errorf("%s: churn replay diverged at instance %d (%d vs %d rounds)",
				id, k, o.real.Len(), outs[0].real.Len())
		}
		for i := range o.real.Y {
			if o.real.Y[i] != outs[0].real.Y[i] {
				return nil, fmt.Errorf("%s: churn replay diverged at instance %d, round %g",
					id, k, o.real.X[i])
			}
		}
		fig.Series = append(fig.Series, o.est)
		if o.trackN == 0 {
			fig.AddNote("estimation #%d produced no usable estimates", k+1)
		} else {
			fig.AddNote("estimation #%d mean tracking error %.1f%% (%d lost epochs)",
				k+1, o.trackSum/float64(o.trackN), o.failures)
		}
		net.Counter().Merge(o.counter)
	}
	fig.Messages = net.Counter().Total()
	return fig, nil
}

func fig15(p Params) (*Figure, error) {
	return aggDynamic("fig15",
		"Aggregation: Reaction under failures, -25% of nodes at 1% and 5% of horizon, +25% at 7%",
		churn.AggregationCatastrophic(p.N100k, p.AggHorizon), p, 0x0f00)
}

func fig16(p Params) (*Figure, error) {
	return aggDynamic("fig16",
		"Aggregation: Growing network, 100,000 node network",
		churn.Growing(p.N100k, p.AggHorizon, 0.5), p, 0x1000)
}

func fig17(p Params) (*Figure, error) {
	return aggDynamic("fig17",
		"Aggregation: Shrinking network, 100,000 node network",
		churn.Shrinking(p.N100k, p.AggHorizon, 0.5), p, 0x1100)
}
