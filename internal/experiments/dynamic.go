package experiments

import (
	"fmt"
	"math"

	"p2psize/internal/aggregation"
	"p2psize/internal/churn"
	"p2psize/internal/core"
	"p2psize/internal/hopssampling"
	"p2psize/internal/metrics"
	"p2psize/internal/samplecollide"
	"p2psize/internal/xrand"
)

func init() {
	register("fig09", fig09)
	register("fig10", fig10)
	register("fig11", fig11)
	register("fig12", fig12)
	register("fig13", fig13)
	register("fig14", fig14)
	register("fig15", fig15)
	register("fig16", fig16)
	register("fig17", fig17)
}

// dynamicSeries converts a DynamicResult into the paper's dynamic-figure
// layout: the real size curve plus one curve per estimation instance.
func dynamicSeries(res *core.DynamicResult) []*metrics.Series {
	real := &metrics.Series{Name: "Real network size"}
	for i := range res.Steps {
		real.Append(res.Steps[i], res.TrueSizes[i])
	}
	out := []*metrics.Series{real}
	for k := range res.Estimates {
		s := &metrics.Series{Name: fmt.Sprintf("Estimation #%d", k+1)}
		for i := range res.Steps {
			s.Append(res.Steps[i], res.Estimates[k][i])
		}
		out = append(out, s)
	}
	return out
}

func noteTracking(fig *Figure, res *core.DynamicResult) {
	for k := range res.Estimates {
		te := res.TrackingError(k)
		if math.IsNaN(te) {
			fig.AddNote("estimation #%d produced no usable estimates", k+1)
			continue
		}
		fig.AddNote("estimation #%d mean tracking error %.1f%% (%d failures)",
			k+1, te, res.Failures[k])
	}
}

// scDynamic is the shared body of Figs 9-11: three concurrent
// Sample&Collide processes (oneShot, l=200) with one estimate per churn
// step.
func scDynamic(id, title string, scenario churn.Scenario, p Params, stream uint64) (*Figure, error) {
	net := hetNet(p.N100k, p, stream)
	instances := make([]core.Estimator, 3)
	for k := range instances {
		instances[k] = samplecollide.New(samplecollide.Config{T: 10, L: 200},
			xrand.New(p.Seed+stream+10+uint64(k)))
	}
	res, err := core.RunDynamic(instances, net, core.DynamicConfig{
		Scenario:      scenario,
		EstimateEvery: 1,
	}, xrand.New(p.Seed+stream+1))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	fig := &Figure{ID: id, Title: title, XLabel: "Number of estimations", YLabel: "Estimated size"}
	fig.Series = dynamicSeries(res)
	noteTracking(fig, res)
	return fig, nil
}

func fig09(p Params) (*Figure, error) {
	return scDynamic("fig09",
		"Sample&Collide: oneShot heuristic, 100,000 node network, catastrophic failures",
		churn.Catastrophic(p.N100k, p.SCRuns), p, 0x0900)
}

func fig10(p Params) (*Figure, error) {
	return scDynamic("fig10",
		"Sample&Collide: oneShot, 100,000 node network, growing network",
		churn.Growing(p.N100k, p.SCRuns, 0.5), p, 0x0a00)
}

func fig11(p Params) (*Figure, error) {
	return scDynamic("fig11",
		"Sample&Collide: oneShot, 100,000 node network, shrinking network",
		churn.Shrinking(p.N100k, p.SCRuns, 0.5), p, 0x0b00)
}

// hopsDynamic is the shared body of Figs 12-14: three concurrent
// HopsSampling processes restarted every few time units, each smoothed
// with last10runs.
func hopsDynamic(id, title string, scenario churn.Scenario, p Params, stream uint64) (*Figure, error) {
	net := hetNet(p.N100k, p, stream)
	instances := make([]core.Estimator, 3)
	for k := range instances {
		instances[k] = hopssampling.New(hopssampling.Default(),
			xrand.New(p.Seed+stream+10+uint64(k)))
	}
	res, err := core.RunDynamic(instances, net, core.DynamicConfig{
		Scenario:      scenario,
		EstimateEvery: max(1, p.HopsHorizon/100),
		SmoothLastK:   core.LastK,
	}, xrand.New(p.Seed+stream+1))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	fig := &Figure{ID: id, Title: title, XLabel: "Time", YLabel: "Size"}
	fig.Series = dynamicSeries(res)
	noteTracking(fig, res)
	return fig, nil
}

func fig12(p Params) (*Figure, error) {
	return hopsDynamic("fig12",
		"HopsSampling: Last10runs heuristic, 100,000 node network, catastrophic failures",
		churn.Catastrophic(p.N100k, p.HopsHorizon), p, 0x0c00)
}

func fig13(p Params) (*Figure, error) {
	return hopsDynamic("fig13",
		"HopsSampling: Last10runs heuristic, 100,000 node network, growing network",
		churn.Growing(p.N100k, p.HopsHorizon, 0.5), p, 0x0d00)
}

func fig14(p Params) (*Figure, error) {
	return hopsDynamic("fig14",
		"HopsSampling: Last10runs heuristic, 100,000 node network, shrinking network",
		churn.Shrinking(p.N100k, p.HopsHorizon, 0.5), p, 0x0e00)
}

// aggDynamic is the shared body of Figs 15-17: three concurrent epoch-
// restarted Aggregation processes; churn advances every round; estimates
// are read at each epoch boundary (every EpochLen rounds).
func aggDynamic(id, title string, scenario churn.Scenario, p Params, stream uint64) (*Figure, error) {
	net := hetNet(p.N100k, p, stream)
	const instances = 3
	protos := make([]*aggregation.Protocol, instances)
	for k := range protos {
		protos[k] = aggregation.New(aggregation.Config{RoundsPerEpoch: p.EpochLen},
			xrand.New(p.Seed+stream+10+uint64(k)))
		if err := protos[k].StartEpoch(net); err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
	}
	runner := churn.NewRunner(scenario, xrand.New(p.Seed+stream+1))
	real := &metrics.Series{Name: "Real size"}
	estSeries := make([]*metrics.Series, instances)
	failures := make([]int, instances)
	var trackErr [instances]struct {
		sum float64
		n   int
	}
	for k := range estSeries {
		estSeries[k] = &metrics.Series{Name: fmt.Sprintf("Estimation #%d", k+1)}
	}
	for round := 0; round < scenario.TotalSteps; round++ {
		runner.Step(net, round)
		if net.Size() == 0 {
			break
		}
		for _, proto := range protos {
			proto.RunRound(net)
		}
		// The paper's figures draw the real size continuously but read
		// estimates only at epoch boundaries; shocks between epochs must
		// stay visible in the real curve.
		real.Append(float64(round+1), float64(net.Size()))
		if (round+1)%p.EpochLen != 0 {
			continue
		}
		x := float64(round + 1)
		truth := float64(net.Size())
		for k, proto := range protos {
			est, ok := proto.Estimate(net)
			if !ok {
				failures[k]++
				estSeries[k].Append(x, math.NaN())
			} else {
				estSeries[k].Append(x, est)
				if truth > 0 {
					trackErr[k].sum += math.Abs(est/truth-1) * 100
					trackErr[k].n++
				}
			}
			// Restart: new tag, values reset, estimate of the finished
			// epoch was just read.
			if err := proto.StartEpoch(net); err != nil {
				return nil, fmt.Errorf("%s: %w", id, err)
			}
		}
	}
	fig := &Figure{ID: id, Title: title, XLabel: "#Round", YLabel: "Estimated Size"}
	fig.Series = append([]*metrics.Series{real}, estSeries...)
	for k := 0; k < instances; k++ {
		if trackErr[k].n == 0 {
			fig.AddNote("estimation #%d produced no usable estimates", k+1)
			continue
		}
		fig.AddNote("estimation #%d mean tracking error %.1f%% (%d lost epochs)",
			k+1, trackErr[k].sum/float64(trackErr[k].n), failures[k])
	}
	return fig, nil
}

func fig15(p Params) (*Figure, error) {
	return aggDynamic("fig15",
		"Aggregation: Reaction under failures, -25% of nodes at 1% and 5% of horizon, +25% at 7%",
		churn.AggregationCatastrophic(p.N100k, p.AggHorizon), p, 0x0f00)
}

func fig16(p Params) (*Figure, error) {
	return aggDynamic("fig16",
		"Aggregation: Growing network, 100,000 node network",
		churn.Growing(p.N100k, p.AggHorizon, 0.5), p, 0x1000)
}

func fig17(p Params) (*Figure, error) {
	return aggDynamic("fig17",
		"Aggregation: Shrinking network, 100,000 node network",
		churn.Shrinking(p.N100k, p.AggHorizon, 0.5), p, 0x1100)
}
