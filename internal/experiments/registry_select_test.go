package experiments

import (
	"math"
	"strings"
	"testing"

	"p2psize/internal/metrics"
)

// findSeries returns the named series of a figure, or nil.
func findSeries(fig *Figure, name string) *metrics.Series {
	for _, s := range fig.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func seriesEqual(t *testing.T, a, b *metrics.Series) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("series %q length %d vs %d", a.Name, a.Len(), b.Len())
	}
	for i := range a.X {
		if math.Float64bits(a.X[i]) != math.Float64bits(b.X[i]) ||
			math.Float64bits(a.Y[i]) != math.Float64bits(b.Y[i]) {
			t.Fatalf("series %q diverges at point %d", a.Name, i)
		}
	}
}

// TestEstimatorSubsetKeepsSeries pins the registry's stream-offset
// contract end to end: selecting a subset of the monitored roster
// leaves both the replayed true-size curve and every still-selected
// estimator's series byte-identical to the full-roster run.
func TestEstimatorSubsetKeepsSeries(t *testing.T) {
	full, err := Run("trace-flashcrowd", determinismParams(0))
	if err != nil {
		t.Fatal(err)
	}
	p := determinismParams(0)
	p.Estimators = []string{"sc", "agg"} // aliases resolve too
	sub, err := Run("trace-flashcrowd", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Series) != 3 { // real size + two estimators
		t.Fatalf("subset figure has %d series, want 3", len(sub.Series))
	}
	for _, s := range sub.Series {
		ref := findSeries(full, s.Name)
		if ref == nil {
			t.Fatalf("subset series %q missing from the full run", s.Name)
		}
		seriesEqual(t, ref, s)
	}
}

func TestEstimatorSelectionErrors(t *testing.T) {
	p := determinismParams(0)
	p.Estimators = []string{"no-such-family"}
	if _, err := Run("trace-weibull", p); err == nil || !strings.Contains(err.Error(), "unknown estimator") {
		t.Fatalf("unknown estimator err = %v", err)
	}
	p.Estimators = []string{"idspace"}
	if _, err := Run("trace-weibull", p); err == nil || !strings.Contains(err.Error(), "does not support continuous monitoring") {
		t.Fatalf("snapshot-based estimator err = %v", err)
	}
	// A cadence override for a family outside the roster would silently
	// measure the wrong configuration; it must error instead.
	p = determinismParams(0)
	p.Estimators = []string{"sc", "hops"}
	p.Cadences = map[string]float64{"randomtour": 50}
	if _, err := Run("trace-weibull", p); err == nil || !strings.Contains(err.Error(), "not in the monitored roster") {
		t.Fatalf("orphan cadence override err = %v", err)
	}
}

// TestCadenceMixDeterminismAndTradeoff covers the per-estimator cadence
// plumbing through the experiments layer: a mixed-cadence run is
// byte-identical at workers 1, 2 and 8, and slowing one family's
// cadence cuts its message budget relative to the uniform run while
// leaving the other families' estimates untouched.
func TestCadenceMixDeterminismAndTradeoff(t *testing.T) {
	mixed := func(workers int) Params {
		p := determinismParams(workers)
		p.Cadences = map[string]float64{"aggregation": 5 * p.TraceCadence}
		return p
	}
	base, err := Run("trace-weibull", determinismParams(0))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run("trace-weibull", mixed(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Run("trace-weibull", mixed(workers))
		if err != nil {
			t.Fatal(err)
		}
		if err := figuresEqual(ref, got); err != nil {
			t.Fatalf("workers=1 vs workers=%d under mixed cadences: %v", workers, err)
		}
	}
	// Slowing Aggregation 5x must reduce total traffic (its epochs
	// dominate the budget) ...
	if ref.Messages >= base.Messages {
		t.Fatalf("slowing aggregation kept the message budget: %d vs %d", ref.Messages, base.Messages)
	}
	// ... and must not perturb the other families' series — they keep
	// their own streams and their own clones.
	for _, s := range base.Series {
		if strings.Contains(strings.ToLower(s.Name), "aggregation") {
			continue
		}
		got := findSeries(ref, s.Name)
		if got == nil {
			t.Fatalf("series %q missing from the mixed-cadence run", s.Name)
		}
		seriesEqual(t, s, got)
	}
	// The cadence override is documented on the figure.
	found := false
	for _, n := range ref.Notes {
		if strings.Contains(n, "sampled every") {
			found = true
		}
	}
	if !found {
		t.Fatal("mixed-cadence run carries no cadence note")
	}
}

// TestTraceIPFSLoads checks the embedded IPFS-calibrated trace decodes,
// validates, and matches its documented shape.
func TestTraceIPFSLoads(t *testing.T) {
	tr, err := loadIPFSTrace()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "ipfs" || tr.Initial != 1000 || tr.Horizon != 600 {
		t.Fatalf("trace shape changed: name %q initial %d horizon %g", tr.Name, tr.Initial, tr.Horizon)
	}
	if tr.Joins() < 3000 || tr.Leaves() < 3000 {
		t.Fatalf("trace too quiet: %d joins, %d leaves", tr.Joins(), tr.Leaves())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
