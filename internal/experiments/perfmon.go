package experiments

// Replay-sharing benchmarks as first-class experiments: the identical
// trace-monitoring workload is registered twice, once with the
// historical per-instance replay and once with shared (per-cadence-
// group) replay. Both land in every suite report — and therefore in
// BENCH_results.json — so cmd/benchdiff gates the pair PR-over-PR and
// the wall-time/alloc columns document what clone sharing buys on the
// hardware that produced the report. The roster is pinned to read-only
// families on one cadence, so shared mode folds the whole roster into
// a single replay group while per-instance mode drives one replay per
// family; the monitor's bit-equality contract (see the shared-replay
// tests) guarantees both experiments plot byte-identical series.

import (
	"runtime"

	"p2psize/internal/core"
	"p2psize/internal/fault"
	"p2psize/internal/monitor"
	"p2psize/internal/trace"
	"p2psize/internal/xrand"
)

func init() {
	register("perf-monitor-perinstance", func(p Params) (*Figure, error) {
		return perfMonitorTrace("perf-monitor-perinstance",
			"Trace monitoring, per-instance replay baseline", p, monitor.ReplayPerInstance)
	})
	register("perf-monitor-shared", func(p Params) (*Figure, error) {
		return perfMonitorTrace("perf-monitor-shared",
			"Trace monitoring, shared per-cadence-group replay", p, monitor.ReplayShared)
	})
}

// perfMonitorRoster pins the monitored families for the perf pair:
// every read-only (observe-only) family that supports continuous
// monitoring. All five share the base cadence, so ReplayShared runs
// ONE clone + replay for the lot where ReplayPerInstance runs five.
var perfMonitorRoster = []string{
	"capturerecapture", "dht", "hopssampling", "polling", "samplecollide",
}

// perfMonitorTrace replays a heavy-tailed churn trace over a 1M-node
// overlay under the given replay mode. The two registered modes differ
// ONLY in Params.Replay — same trace, same roster, same seeds — so any
// wall-time or allocation gap between the pair is the replay sharing,
// nothing else.
func perfMonitorTrace(id, title string, p Params, mode monitor.ReplayMode) (*Figure, error) {
	p.Replay = mode
	p.Estimators = append([]string(nil), perfMonitorRoster...)
	p.Cadences = nil        // uniform cadence: the roster folds into one shared group
	p.Faults = fault.Spec{} // a fault scenario would measure the faults, not the replay
	tr, err := trace.Generate(trace.Config{
		Name:    "perfmon-weibull",
		Initial: p.N1M,
		Horizon: p.TraceHorizon,
		Session: trace.SessionDist{Kind: trace.Weibull, Mean: p.TraceHorizon, Shape: 0.5},
	}, xrand.New(p.Seed+0x5302))
	if err != nil {
		return nil, err
	}
	// TotalAlloc delta around the run: cumulative allocation, immune to
	// intervening GCs (unlike HeapAlloc). Process-wide, so concurrent
	// suite neighbors inflate it — indicative there, exact in the
	// isolated bench runs that feed BENCH_results.json comparisons.
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fig, err := runTrace(id, title, tr, monitor.Policy{Smoothing: monitor.Window, Window: core.LastK}, p, 0x5300)
	if err != nil {
		return nil, err
	}
	runtime.ReadMemStats(&after)
	fig.AllocBytes = after.TotalAlloc - before.TotalAlloc
	layout := "one replay per instance"
	if mode == monitor.ReplayShared {
		layout = "one shared replay group"
	}
	fig.AddNote("replay=%s: %d read-only families on the base cadence, %s; alloc_bytes is the process-wide TotalAlloc delta around the run",
		mode, len(perfMonitorRoster), layout)
	return fig, nil
}
