package experiments

import "testing"

// TestScheduleOrderLongestFirst checks the suite schedules the
// dominating experiments first while ties keep submission order.
func TestScheduleOrderLongestFirst(t *testing.T) {
	ids := []string{"fig01", "fig15", "fig03", "trace-weibull", "fig16"}
	order := scheduleOrder(ids)
	want := []string{"fig15", "fig16", "trace-weibull", "fig01", "fig03"}
	for i, idx := range order {
		if ids[idx] != want[i] {
			got := make([]string, len(order))
			for j, o := range order {
				got[j] = ids[o]
			}
			t.Fatalf("schedule order = %v, want %v", got, want)
		}
	}
}

// TestRunSuiteReportKeepsSubmissionOrder checks LJF execution does not
// leak into the report: entries stay in submission (id) order.
func TestRunSuiteReportKeepsSubmissionOrder(t *testing.T) {
	ids := []string{"fig01", "fig15", "fig05"}
	report, figs, err := RunSuite(ids, determinismParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Experiments) != len(ids) {
		t.Fatalf("entry count = %d", len(report.Experiments))
	}
	for i, id := range ids {
		if report.Experiments[i].ID != id {
			t.Fatalf("entry %d is %q, want %q (execution order leaked into the report)",
				i, report.Experiments[i].ID, id)
		}
		if figs[id] == nil {
			t.Fatalf("figure %q missing", id)
		}
	}
}
