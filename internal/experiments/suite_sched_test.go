package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func assertOrder(t *testing.T, ids []string, order []int, want []string) {
	t.Helper()
	for i, idx := range order {
		if ids[idx] != want[i] {
			got := make([]string, len(order))
			for j, o := range order {
				got[j] = ids[o]
			}
			t.Fatalf("schedule order = %v, want %v", got, want)
		}
	}
}

// TestScheduleOrderLongestFirst checks the static fallback schedules
// the dominating experiments first while ties keep submission order.
func TestScheduleOrderLongestFirst(t *testing.T) {
	ids := []string{"fig01", "fig15", "fig03", "trace-weibull", "fig16"}
	assertOrder(t, ids, scheduleOrder(ids, nil),
		[]string{"fig15", "fig16", "trace-weibull", "fig01", "fig03"})
}

// TestScheduleOrderMeasuredModel checks measured wall times override
// the static table, and experiments the baseline has never seen run
// first.
func TestScheduleOrderMeasuredModel(t *testing.T) {
	// Static hints would say fig15 > trace-weibull > fig01; the measured
	// model says this machine disagrees.
	model := map[string]float64{"fig01": 900, "fig15": 120, "trace-weibull": 450}
	ids := []string{"fig15", "fig01", "trace-weibull"}
	assertOrder(t, ids, scheduleOrder(ids, model),
		[]string{"fig01", "trace-weibull", "fig15"})

	// "ext-new" is unknown to the model: assumed expensive, runs first.
	ids = []string{"fig01", "ext-new", "fig15"}
	assertOrder(t, ids, scheduleOrder(ids, model),
		[]string{"ext-new", "fig01", "fig15"})
}

// TestLoadCostModelRoundTrip writes a report, loads it back as a cost
// model, and checks the failure paths degrade to nil (static fallback)
// instead of erroring.
func TestLoadCostModelRoundTrip(t *testing.T) {
	rep := &SuiteReport{
		Schema: ReportSchema,
		Experiments: []ExperimentReport{
			{ID: "fig01", WallMS: 12.5},
			{ID: "fig15", WallMS: 800},
			{ID: "broken", WallMS: 3, Error: "boom"}, // skipped: measured the failure
			{ID: "empty"},                            // skipped: no wall time recorded
		},
	}
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	model := LoadCostModel(path)
	if len(model) != 2 || model["fig01"] != 12.5 || model["fig15"] != 800 {
		t.Fatalf("model = %v", model)
	}
	if m := LoadCostModel(filepath.Join(t.TempDir(), "absent.json")); m != nil {
		t.Fatalf("missing file gave model %v, want nil", m)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, `{"schema":"something-else"}`); err != nil {
		t.Fatal(err)
	}
	if m := LoadCostModel(bad); m != nil {
		t.Fatalf("wrong schema gave model %v, want nil", m)
	}
}

// TestRunSuiteReportKeepsSubmissionOrder checks LJF execution does not
// leak into the report: entries stay in submission (id) order.
func TestRunSuiteReportKeepsSubmissionOrder(t *testing.T) {
	ids := []string{"fig01", "fig15", "fig05"}
	report, figs, err := RunSuite(ids, determinismParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Experiments) != len(ids) {
		t.Fatalf("entry count = %d", len(report.Experiments))
	}
	for i, id := range ids {
		if report.Experiments[i].ID != id {
			t.Fatalf("entry %d is %q, want %q (execution order leaked into the report)",
				i, report.Experiments[i].ID, id)
		}
		if figs[id] == nil {
			t.Fatalf("figure %q missing", id)
		}
	}
}
