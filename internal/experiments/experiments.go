// Package experiments defines one runnable experiment per table and
// figure of the paper's evaluation (§IV): the same workloads, the same
// parameters, the same output series. Each experiment returns a Figure
// whose series can be written as gnuplot .dat, CSV, or ASCII charts.
//
// Every experiment takes a Params value so the paper-scale runs (100,000
// and 1,000,000 nodes) and laptop-scale runs (for tests and benchmarks)
// share one code path: Defaults() reproduces the paper's setting,
// Scaled(k) divides the node counts (and the very long aggregation
// horizon) by k while keeping all protocol parameters untouched.
package experiments

import (
	"fmt"
	"sort"

	"p2psize/internal/aggregation"
	"p2psize/internal/core"
	"p2psize/internal/fault"
	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/monitor"
	"p2psize/internal/overlay"
	"p2psize/internal/parallel"
	"p2psize/internal/registry"
	"p2psize/internal/xrand"
)

// Params sets the workload sizes of the evaluation. Protocol parameters
// (T, l, gossipTo, rounds, ...) are fixed by the paper and live in the
// individual experiments.
type Params struct {
	// Seed drives all randomness; equal Params give identical output.
	Seed uint64
	// N100k is the "100,000 node network" size.
	N100k int
	// N1M is the "1,000,000 node network" size.
	N1M int
	// MaxDeg is the heterogeneous graph's degree cap (paper: 10).
	MaxDeg int
	// SCRuns is the estimation count of Fig 1 (and the dynamic S&C figs).
	SCRuns int
	// SCRuns1M is the estimation count of Fig 2.
	SCRuns1M int
	// HopsRuns is the estimation count of Fig 3.
	HopsRuns int
	// HopsRuns1M is the estimation count of Fig 4.
	HopsRuns1M int
	// AggStaticRounds is the x-range of Figs 5 and 6.
	AggStaticRounds int
	// Fig18Runs is the estimation count of Fig 18.
	Fig18Runs int
	// HopsHorizon is the dynamic HopsSampling time range (Figs 12-14).
	HopsHorizon int
	// AggHorizon is the dynamic Aggregation round range (Figs 15-17).
	AggHorizon int
	// EpochLen is the rounds-per-epoch of dynamic Aggregation (paper: 50).
	EpochLen int
	// TableRuns is the number of estimations averaged per Table I row.
	TableRuns int
	// TraceHorizon is the duration, in simulated time units, of the
	// trace-driven monitoring experiments (trace-*).
	TraceHorizon float64
	// TraceCadence is the simulated time between monitor samples in the
	// trace-driven experiments; TraceHorizon/TraceCadence estimations
	// are made per estimator.
	TraceCadence float64
	// Workers caps the worker pool that fans independent estimation runs
	// (and whole experiments, via RunSuite) across cores: 0 means
	// runtime.NumCPU(), 1 forces sequential execution. Output is
	// byte-identical at every setting; Workers only changes wall time.
	Workers int
	// Shards splits the round sweeps *inside* one Aggregation estimation
	// and one CYCLON shuffle round into this many per-stream segments
	// (0 = auto-size from the overlay). Unlike Workers, the shard count
	// is part of the algorithms' output: equal Params must keep it equal.
	// At any fixed value the output stays byte-identical at every
	// Workers setting.
	Shards int
	// Shuffle selects the sharded sweeps' order randomization: the
	// default parallel.ShuffleGlobal reproduces the frozen
	// serial-shuffle draw order (every pre-engine checksum holds),
	// parallel.ShuffleLocal shuffles per shard inside the parallel
	// phase (the perf-engine-* experiments measure the difference).
	// Part of the output, like Shards.
	Shuffle parallel.ShuffleMode
	// Replay selects the monitor's clone/replay strategy for the trace
	// experiments: monitor.ReplayPerInstance (the default; one overlay
	// clone and one trace replay per estimator instance) or
	// monitor.ReplayShared (read-only instances sharing a cadence ride
	// one clone and one replay). Both modes produce bit-equal series;
	// recorded in the report like Shuffle.
	Replay monitor.ReplayMode
	// CostModel optionally maps experiment ids to measured wall times in
	// milliseconds (from a previous suite report, see LoadCostModel);
	// RunSuite schedules longest-first from it, falling back to the
	// static costHint table when nil. Scheduling only — never output.
	CostModel map[string]float64
	// Estimators optionally restricts the monitored roster of the
	// trace-* experiments to the named registry families (names or
	// aliases; nil/empty = the registry's default head-to-head set:
	// Sample&Collide, Random Tour, HopsSampling, Aggregation). Every
	// family keeps its own fixed seed-stream offset, so a subset's
	// series are byte-identical to the same series of a full run.
	Estimators []string
	// Cadences optionally gives trace-* estimators their own monitor
	// sampling cadence, keyed by canonical registry name (e.g.
	// {"aggregation": 100}); families not listed sample every
	// TraceCadence time units. Like the shard count this is part of the
	// output, not a scheduling knob.
	Cadences map[string]float64
	// Faults selects the fault scenario every registry-built estimator
	// runs under (zero Spec = benign; see fault.ParseSpec for the CLI
	// grammar). The robustness-* experiments carry their own scenarios
	// and ignore this. Part of the output, like Shards.
	Faults fault.Spec
	// Transport, when non-nil, carries every overlay's metered sends
	// (see overlay.SetTransport). The seam is one-way — metering happens
	// before delivery and delivery errors are ignored — so any transport
	// must leave the output byte-identical to nil; the loopback-identity
	// test pins exactly that. Deployment plumbing, never output.
	Transport overlay.Transport
}

// Defaults returns the paper-scale parameters.
func Defaults() Params {
	return Params{
		Seed:            1,
		N100k:           100000,
		N1M:             1000000,
		MaxDeg:          10,
		SCRuns:          100,
		SCRuns1M:        18,
		HopsRuns:        100,
		HopsRuns1M:      20,
		AggStaticRounds: 100,
		Fig18Runs:       50,
		HopsHorizon:     1000,
		AggHorizon:      10000,
		EpochLen:        50,
		TableRuns:       20,
		TraceHorizon:    1000,
		TraceCadence:    10,
	}
}

// Scaled returns Defaults with node counts divided by k (floors applied
// so experiments stay meaningful) and the aggregation horizon shortened
// proportionally. Estimation counts and protocol parameters are kept.
func Scaled(k int) Params {
	p := Defaults()
	if k <= 1 {
		return p
	}
	p.N100k = max(1000, p.N100k/k)
	p.N1M = max(2000, p.N1M/k)
	p.AggHorizon = max(20*p.EpochLen, p.AggHorizon/k)
	p.HopsHorizon = max(100, p.HopsHorizon)
	return p
}

// Figure is one reproduced table or figure: metadata plus the plotted
// series, ready for the plot package.
type Figure struct {
	// ID is the registry key, e.g. "fig05".
	ID string
	// Title restates the paper's caption.
	Title string
	// XLabel / YLabel name the axes.
	XLabel, YLabel string
	// LogLog marks Fig 7's log-scale axes.
	LogLog bool
	// Series are the plotted curves.
	Series []*metrics.Series
	// Notes carry measured summaries for EXPERIMENTS.md.
	Notes []string
	// Messages is the total protocol traffic metered while producing the
	// figure — the per-experiment cost reported by the suite runner.
	Messages uint64
	// AllocBytes is the heap the experiment allocated while producing
	// the figure (runtime.MemStats.TotalAlloc delta; perf-monitor-*
	// experiments only, 0 elsewhere). Process-wide, so approximate when
	// the suite schedules experiments concurrently — the wall-time/
	// memory pair in BENCH reports, not a checksum.
	AllocBytes uint64
	// Rankings order the compared estimator families by robustness for
	// the experiment's scenario (robustness-* experiments only; nil
	// elsewhere). Carried into the suite report next to the series.
	Rankings []Ranking
}

// Ranking is one family's robustness summary under one fault scenario:
// accuracy (MAE in absolute peers, MAPE in percent of the true size)
// and the p50/p95/p99 percentiles of the modeled estimate latency.
type Ranking struct {
	// Name is the family's canonical registry name.
	Name string `json:"name"`
	// MAE is the mean absolute error in peers.
	MAE float64 `json:"mae"`
	// MAPE is the mean absolute percentage error.
	MAPE float64 `json:"mape"`
	// P50, P95 and P99 are estimate-latency percentiles in the latency
	// model's time units.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// AddNote appends a formatted note line.
func (f *Figure) AddNote(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Runner produces one Figure from Params.
type Runner func(Params) (*Figure, error)

// runners maps experiment IDs to their Runner; populated by init
// functions in the per-experiment files.
var runners = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := runners[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	runners[id] = r
}

// IDs returns all experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(runners))
	for id := range runners {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Get returns the runner for id (nil, false if unknown).
func Get(id string) (Runner, bool) {
	r, ok := runners[id]
	return r, ok
}

// Run looks up and runs one experiment.
func Run(id string, p Params) (*Figure, error) {
	r, ok := runners[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(p)
}

// hetNet builds the paper's default test overlay: heterogeneous random
// graph with the given size, degree cap MaxDeg, on a seeded stream.
func hetNet(n int, p Params, stream uint64) *overlay.Network {
	rng := xrand.New(p.Seed + stream)
	net := overlay.New(graph.Heterogeneous(n, p.MaxDeg, rng), p.MaxDeg, nil)
	if p.Transport != nil {
		net.SetTransport(p.Transport)
	}
	return net
}

// estimator resolves a registry family for an experiment body; the
// registered experiments only reference built-in names, so a miss means
// the catalog was tampered with and the experiment must fail loudly.
func estimator(id, name string) (registry.Descriptor, error) {
	d, ok := registry.Get(name)
	if !ok {
		return registry.Descriptor{}, fmt.Errorf("%s: estimator %q is not registered", id, name)
	}
	return d, nil
}

// withFaults folds the experiment-wide fault scenario into a family's
// options; options that already carry their own scenario win (the
// robustness experiments set them per candidate).
func withFaults(p Params, opts registry.Options) registry.Options {
	if !opts.Faults.Enabled() {
		opts.Faults = p.Faults
	}
	return opts
}

// perRun builds a run-indexed estimator factory for the static run
// loops: run i draws from the (seed, i) stream regardless of worker
// scheduling (see registry.Descriptor.PerRun). Params.Faults is folded
// into the options, so -faults reaches every static experiment.
func perRun(id, name string, net *overlay.Network, p Params, seed uint64, opts registry.Options) (func(run int) core.Estimator, error) {
	d, err := estimator(id, name)
	if err != nil {
		return nil, err
	}
	mk, err := d.PerRun(net, seed, withFaults(p, opts))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	return mk, nil
}

// instances builds count concurrent instances of one registry family on
// the streams seed+stream+10+k — the layout every dynamic figure uses
// for its three side-by-side estimation processes. Params.Faults is
// folded into the options, like perRun.
func instances(id, name string, count int, p Params, stream uint64, opts registry.Options) ([]core.Estimator, error) {
	d, err := estimator(id, name)
	if err != nil {
		return nil, err
	}
	opts = withFaults(p, opts)
	out := make([]core.Estimator, count)
	for k := range out {
		e, err := d.Build(nil, xrand.New(p.Seed+stream+10+uint64(k)), opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		out[k] = e
	}
	return out, nil
}

// aggConfig assembles the Aggregation configuration used across the
// experiments: the paper's epoch length plus the sharded-sweep settings.
// workers is the intra-round goroutine budget for this call site — pass
// 1 where the estimator already sits under a wide run-level fan-out.
func aggConfig(p Params, workers int) aggregation.Config {
	return aggregation.Config{RoundsPerEpoch: p.EpochLen, Shards: p.Shards, Workers: workers, Shuffle: p.Shuffle}
}

// splitWorkers divides the Params.Workers budget between an outer
// fan-out of the given width and the inner parallelism each lane gets
// (sharded rounds, nested run pools). Like RunSuite's split this only
// shapes load: output is invariant to any split.
func splitWorkers(p Params, width int) (outer, inner int) {
	w := parallel.Resolve(p.Workers)
	outer = min(w, width)
	inner = max(1, w/outer)
	return outer, inner
}

// scaleFreeNet builds the Fig 7/8 topology: Barabási–Albert with m = 3.
func scaleFreeNet(n int, p Params, stream uint64) *overlay.Network {
	rng := xrand.New(p.Seed + stream)
	net := overlay.New(graph.BarabasiAlbert(n, 3, rng), n, nil)
	if p.Transport != nil {
		net.SetTransport(p.Transport)
	}
	return net
}
