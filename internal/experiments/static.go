package experiments

import (
	"fmt"

	"p2psize/internal/aggregation"
	"p2psize/internal/core"
	"p2psize/internal/graph"
	"p2psize/internal/hopssampling"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/parallel"
	"p2psize/internal/registry"
	"p2psize/internal/stats"
	"p2psize/internal/xrand"
)

func init() {
	register("fig01", fig01)
	register("fig02", fig02)
	register("fig03", fig03)
	register("fig04", fig04)
	register("fig05", fig05)
	register("fig06", fig06)
	register("fig07", fig07)
	register("fig08", fig08)
	register("fig18", fig18)
}

// qualitySeries converts a StaticResult into the paper's quality-% curves.
func qualitySeries(res *core.StaticResult) (oneShot, lastK *metrics.Series) {
	oneShot = &metrics.Series{Name: "one shot"}
	lastK = &metrics.Series{Name: "Last 10 runs"}
	raw := res.QualityPct(false)
	smooth := res.QualityPct(true)
	for i := range raw {
		oneShot.Append(float64(i+1), raw[i])
		lastK.Append(float64(i+1), smooth[i])
	}
	return oneShot, lastK
}

func noteAccuracy(fig *Figure, res *core.StaticResult) {
	raw := res.QualityPct(false)
	smooth := res.QualityPct(true)
	var rawErr, smoothErr stats.Running
	for i := range raw {
		rawErr.Add(abs(raw[i] - 100))
		smoothErr.Add(abs(smooth[i] - 100))
	}
	fig.AddNote("oneShot mean |error| = %.1f%% (max %.1f%%)", rawErr.Mean(), rawErr.Max())
	fig.AddNote("last10runs mean |error| = %.1f%% (max %.1f%%)", smoothErr.Mean(), smoothErr.Max())
	fig.AddNote("mean overhead per estimation = %.0f messages", res.MeanOverhead())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// staticQuality is the shared body of the single-family static figures:
// repeated estimations of one registry family on a fresh heterogeneous
// overlay. The runs are independent estimations, so they fan out across
// the worker pool: run i draws from the stream (Seed+stream+1, i)
// regardless of worker count. The overlay is returned so callers can
// add family-specific notes and read the meter.
func staticQuality(id, title, family string, opts registry.Options, n, runs int, p Params, stream uint64) (*Figure, *overlay.Network, error) {
	net := hetNet(n, p, stream)
	mk, err := perRun(id, family, net, p, p.Seed+stream+1, opts)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.RunStaticParallel(mk, net, runs, core.LastK, p.Workers)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", id, err)
	}
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "Number of estimations",
		YLabel: "Quality %",
	}
	oneShot, lastK := qualitySeries(res)
	fig.Series = []*metrics.Series{lastK, oneShot}
	noteAccuracy(fig, res)
	return fig, net, nil
}

// scStatic is the shared body of Figs 1, 2 and 18.
func scStatic(id, title string, n, l, runs int, p Params, stream uint64) (*Figure, error) {
	fig, net, err := staticQuality(id, title, "samplecollide", registry.Options{SCL: l}, n, runs, p, stream)
	if err != nil {
		return nil, err
	}
	fig.Messages = net.Counter().Total()
	return fig, nil
}

func fig01(p Params) (*Figure, error) {
	return scStatic("fig01",
		"Sample&Collide: oneShot and last10runs heuristic with l=200, 100,000 node network, static environment",
		p.N100k, 200, p.SCRuns, p, 0x0100)
}

func fig02(p Params) (*Figure, error) {
	return scStatic("fig02",
		"Sample&Collide: oneShot and last10runs heuristic with l=200, 1,000,000 node network",
		p.N1M, 200, p.SCRuns1M, p, 0x0200)
}

func fig18(p Params) (*Figure, error) {
	return scStatic("fig18",
		"Sample & collide with l=10, 100,000 node network",
		p.N100k, 10, p.Fig18Runs, p, 0x1800)
}

// hopsStatic is the shared body of Figs 3 and 4; polls fan out like the
// Sample&Collide runs of scStatic.
func hopsStatic(id, title string, n, runs int, p Params, stream uint64) (*Figure, error) {
	fig, net, err := staticQuality(id, title, "hopssampling", registry.Options{}, n, runs, p, stream)
	if err != nil {
		return nil, err
	}
	// Reached fraction explains the paper's systematic under-estimation.
	probe := hopssampling.New(hopssampling.Default(), xrand.New(p.Seed+stream+2))
	if init, ok := net.RandomPeer(xrand.New(p.Seed + stream + 3)); ok {
		if frac, err := probe.ReachedFraction(net, init); err == nil {
			fig.AddNote("gossip spread reached %.1f%% of nodes (non-reached %.1f%%)",
				100*frac, 100*(1-frac))
		}
	}
	fig.Messages = net.Counter().Total()
	return fig, nil
}

func fig03(p Params) (*Figure, error) {
	return hopsStatic("fig03",
		"HopsSampling: oneShot and last10runs heuristics, 100,000 node network",
		p.N100k, p.HopsRuns, p, 0x0300)
}

func fig04(p Params) (*Figure, error) {
	return hopsStatic("fig04",
		"HopsSampling: oneShot and last10runs heuristics, 1,000,000 node network",
		p.N1M, p.HopsRuns1M, p, 0x0400)
}

// aggStatic is the shared body of Figs 5 and 6: three independent
// estimations, quality against round number. Each estimation owns an
// Aggregation protocol instance; the three run concurrently on metering
// views of the shared (static, read-only) overlay.
func aggStatic(id, title string, n int, p Params, stream uint64) (*Figure, error) {
	net := hetNet(n, p, stream)
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "#Round",
		YLabel: "Quality %",
	}
	trueSize := float64(net.Size())
	type estOut struct {
		series    *metrics.Series
		converged int
		counter   metrics.Counter
	}
	// Three instances outside, sharded round sweeps inside: split the
	// budget between the levels like RunSuite does.
	outer, inner := splitWorkers(p, 3)
	outs, err := parallel.Map(outer, 3, func(k int) (estOut, error) {
		view := net.View()
		proto := aggregation.New(aggConfig(p, inner),
			xrand.New(p.Seed+stream+10+uint64(k)))
		if err := proto.StartEpoch(view); err != nil {
			return estOut{}, fmt.Errorf("%s: %w", id, err)
		}
		s := &metrics.Series{Name: fmt.Sprintf("Estimation #%d", k+1)}
		s.Append(0, stats.QualityPct(1, trueSize)) // initiator starts at 1/1
		converged := -1
		for round := 1; round <= p.AggStaticRounds; round++ {
			proto.RunRound(view)
			est, ok := proto.Estimate(view)
			q := 0.0
			if ok {
				q = stats.QualityPct(est, trueSize)
			}
			s.Append(float64(round), q)
			if converged < 0 && q >= 99 && q <= 101 {
				converged = round
			}
		}
		return estOut{series: s, converged: converged, counter: view.Counter().Snapshot()}, nil
	})
	if err != nil {
		return nil, err
	}
	for k, o := range outs {
		fig.Series = append(fig.Series, o.series)
		if o.converged > 0 {
			fig.AddNote("estimation #%d within 1%% of truth from round %d", k+1, o.converged)
		} else {
			fig.AddNote("estimation #%d did not reach 1%% accuracy in %d rounds", k+1, p.AggStaticRounds)
		}
		net.Counter().Merge(&o.counter)
	}
	fig.Messages = net.Counter().Total()
	return fig, nil
}

func fig05(p Params) (*Figure, error) {
	return aggStatic("fig05", "Aggregation: 100,000 node network", p.N100k, p, 0x0500)
}

func fig06(p Params) (*Figure, error) {
	return aggStatic("fig06", "Aggregation: 1,000,000 node network", p.N1M, p, 0x0600)
}

// fig07 plots the scale-free degree distribution (log-log).
func fig07(p Params) (*Figure, error) {
	net := scaleFreeNet(p.N100k, p, 0x0700)
	h := graph.DegreeHistogram(net.Graph())
	fig := &Figure{
		ID:     "fig07",
		Title:  "Scale free degree distribution, 3 neighbors min per node",
		XLabel: "Degree",
		YLabel: "Number of nodes",
		LogLog: true,
	}
	s := &metrics.Series{Name: "Scale Free Distribution"}
	values, counts := h.NonZero()
	for i := range values {
		s.Append(float64(values[i]), float64(counts[i]))
	}
	fig.Series = []*metrics.Series{s}
	fig.AddNote("nodes %d, min degree %d, max degree %d, average %.1f",
		net.Size(), values[0], h.Max(), h.Mean())
	return fig, nil
}

// fig08 runs all three algorithms on the scale-free graph:
// Sample&Collide l=200 oneShot, Aggregation with one 50-round epoch per
// estimation, HopsSampling with last10runs.
func fig08(p Params) (*Figure, error) {
	fig := &Figure{
		ID:     "fig08",
		Title:  "Test of the 3 algorithms on a scale free graph",
		XLabel: "Number of estimations",
		YLabel: "Quality %",
	}
	runs := p.SCRuns
	// The three head-to-head families from the registry. Display names
	// and stream seeds are frozen (they predate the registry); Workers 1
	// on Aggregation because the estimator already sits two fan-out
	// levels deep.
	type cand struct {
		name     string
		family   string
		seed     uint64
		opts     registry.Options
		smoothed bool
	}
	candidates := []cand{
		{"Aggregation", "aggregation", p.Seed + 0x0801,
			registry.Options{Rounds: p.EpochLen, Shards: p.Shards, Workers: 1, Shuffle: p.Shuffle}, false},
		{"Sample&collide", "samplecollide", p.Seed + 0x0802, registry.Options{}, false},
		{"HopsSampling", "hopssampling", p.Seed + 0x0803, registry.Options{}, true},
	}
	type candOut struct {
		series   *metrics.Series
		notes    []string
		messages uint64
	}
	// Fresh topology per candidate (same seed), so one candidate's meter
	// and rng use cannot perturb another; the three candidates run
	// concurrently, and each one's estimations fan out below them.
	outs, err := parallel.Map(p.Workers, len(candidates), func(ci int) (candOut, error) {
		c := candidates[ci]
		net := scaleFreeNet(p.N100k, p, 0x0800)
		var out candOut
		candidateRuns := runs
		if c.name == "Aggregation" && candidateRuns > 20 {
			// Each Aggregation estimate costs a full epoch (N·50·2
			// messages); the curve is flat after convergence, so cap the
			// points at paper scale. Noted on the figure.
			candidateRuns = 20
			out.notes = append(out.notes, fmt.Sprintf(
				"Aggregation plotted for %d estimations (flat curve, epoch cost N·%d·2)", candidateRuns, p.EpochLen))
		}
		mk, err := perRun("fig08", c.family, net, p, c.seed, c.opts)
		if err != nil {
			return candOut{}, err
		}
		res, err := core.RunStaticParallel(mk, net, candidateRuns, core.LastK, p.Workers)
		if err != nil {
			return candOut{}, fmt.Errorf("fig08 %s: %w", c.name, err)
		}
		q := res.QualityPct(c.smoothed)
		s := &metrics.Series{Name: c.name}
		for i := range q {
			s.Append(float64(i+1), q[i])
		}
		out.series = s
		var e stats.Running
		for _, v := range q {
			e.Add(v - 100)
		}
		out.notes = append(out.notes, fmt.Sprintf("%s mean signed error %.1f%%", c.name, e.Mean()))
		out.messages = net.Counter().Total()
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		fig.Series = append(fig.Series, o.series)
		for _, n := range o.notes {
			fig.AddNote("%s", n)
		}
		fig.Messages += o.messages
	}
	return fig, nil
}

// ScaleFreeOverlay is exported for the scalefree example and tests.
func ScaleFreeOverlay(n int, seed uint64) *overlay.Network {
	p := Defaults()
	p.Seed = seed
	return scaleFreeNet(n, p, 0)
}
