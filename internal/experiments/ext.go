package experiments

// Extension experiments: not figures of the paper, but runnable studies
// of the claims the paper makes in passing (§II's class comparisons, §V's
// delay conjecture) and of the substrates it defers to ([10]/[19]'s
// gossip membership management). Each gets an "ext-" registry id so
// cmd/figures regenerates them alongside the paper's figures.

import (
	"fmt"
	"math"

	"p2psize/internal/core"
	"p2psize/internal/cyclon"
	"p2psize/internal/graph"
	"p2psize/internal/idspace"
	"p2psize/internal/latency"
	"p2psize/internal/metrics"
	"p2psize/internal/parallel"
	"p2psize/internal/registry"
	"p2psize/internal/xrand"
)

func init() {
	register("ext-walks", extWalks)
	register("ext-classes", extClasses)
	register("ext-delay", extDelay)
	register("ext-cyclon", extCyclon)
}

// extWalks reproduces the background claim (§II) that made the paper pick
// Sample&Collide as the random-walk candidate: "the overhead of the
// Sample&Collide algorithm is much lower than the one of Random Tour".
// It sweeps the overlay size and plots messages per estimation for both:
// Random Tour costs Θ(N·d̄/deg i) per tour while Sample&Collide costs
// Θ(√(2lN)·T·d̄), so the gap widens with N.
func extWalks(p Params) (*Figure, error) {
	fig := &Figure{
		ID:     "ext-walks",
		Title:  "Random Tour vs Sample&Collide: overhead growth with network size",
		XLabel: "Network size",
		YLabel: "Messages per estimation",
	}
	rt := &metrics.Series{Name: "Random Tour (10 tours)"}
	sc := &metrics.Series{Name: "Sample&Collide (l=200)"}
	base := max(500, p.N100k/16)
	// Single tours have enormous cost variance (the return time scales
	// with 2|E|/deg(initiator) and the initiator degree varies 1..10),
	// so costs are averaged over several estimations per size.
	const runs = 8
	sizes := []int{base, 2 * base, 4 * base, 8 * base}
	type sizeOut struct {
		rtCost, scCost float64
		msgs           uint64
	}
	// The sweep points are independent overlays; fan them out, and fan the
	// per-size estimation runs out below them.
	outs, err := parallel.Map(p.Workers, len(sizes), func(si int) (sizeOut, error) {
		n := sizes[si]
		net := hetNet(n, p, 0x3000+uint64(n))
		mkRT, err := perRun("ext-walks random tour", "randomtour", net, p, p.Seed+0x3001, registry.Options{Tours: 10})
		if err != nil {
			return sizeOut{}, err
		}
		rtRes, err := core.RunStaticParallel(mkRT, net, runs, core.LastK, p.Workers)
		if err != nil {
			return sizeOut{}, fmt.Errorf("ext-walks random tour: %w", err)
		}
		mkSC, err := perRun("ext-walks sample&collide", "samplecollide", net, p, p.Seed+0x3002, registry.Options{})
		if err != nil {
			return sizeOut{}, err
		}
		scRes, err := core.RunStaticParallel(mkSC, net, runs, core.LastK, p.Workers)
		if err != nil {
			return sizeOut{}, fmt.Errorf("ext-walks sample&collide: %w", err)
		}
		return sizeOut{rtCost: rtRes.MeanOverhead(), scCost: scRes.MeanOverhead(), msgs: net.Counter().Total()}, nil
	})
	if err != nil {
		return nil, err
	}
	for si, o := range outs {
		n := sizes[si]
		rt.Append(float64(n), o.rtCost)
		sc.Append(float64(n), o.scCost)
		fig.AddNote("N=%d: random tour %.0f msgs/est, sample&collide %.0f msgs/est, ratio %.1fx",
			n, o.rtCost, o.scCost, o.rtCost/o.scCost)
		fig.Messages += o.msgs
	}
	fig.Series = []*metrics.Series{rt, sc}
	return fig, nil
}

// extClasses runs one representative of every counting class the paper's
// background discusses — the three head-to-head candidates plus plain
// probabilistic polling (Bawa et al. / Friedman-Towsley) and the
// identifier-density method of structured overlays — on the same
// heterogeneous overlay, reporting accuracy and overhead.
func extClasses(p Params) (*Figure, error) {
	fig := &Figure{
		ID:     "ext-classes",
		Title:  "All five counting classes on one heterogeneous overlay",
		XLabel: "Estimation",
		YLabel: "Quality %",
	}
	n := p.N100k
	runs := min(10, p.TableRuns)
	type candidate struct {
		name   string
		family string
		seed   uint64
		opts   registry.Options
	}
	baseNet := hetNet(n, p, 0x3100)
	// One identifier ring, built once on its own stream and shared by
	// every id-density instance — real deployments amortize ring
	// construction the same way.
	ring := idspace.NewRing(baseNet, xrand.New(p.Seed+0x3101))
	aggOpts := registry.Options{Rounds: p.EpochLen, Shards: p.Shards, Workers: 1, Shuffle: p.Shuffle}
	candidates := []candidate{
		{"sample&collide(l=200)", "samplecollide", 0x3102, registry.Options{}},
		{"hops-sampling", "hopssampling", 0x3103, registry.Options{}},
		{"aggregation(50)", "aggregation", 0x3104, aggOpts},
		{"polling(p=0.01)", "polling", 0x3105, registry.Options{}},
		{"id-density(k=200)", "idspace", 0x3106, registry.Options{Ring: ring}},
	}
	// Candidates share the topology (and the id ring) read-only, each on
	// its own metering view; within a candidate the runs fan out through
	// RunStaticParallel on per-run streams, so both nesting levels are
	// parallel and the output depends only on (candidate, run) indices —
	// worker-count-invariant at every setting.
	type candOut struct {
		series  *metrics.Series
		note    string
		counter metrics.Counter
	}
	// Split the worker budget across the two nesting levels like
	// RunSuite does, instead of letting both fan out with the full
	// budget (which would multiply goroutine count by the candidate
	// width). The output is worker-count-invariant either way.
	outer := min(parallel.Resolve(p.Workers), len(candidates))
	inner := max(1, parallel.Resolve(p.Workers)/outer)
	outs, err := parallel.Map(outer, len(candidates), func(ci int) (candOut, error) {
		c := candidates[ci]
		view := baseNet.View()
		mk, err := perRun("ext-classes "+c.name, c.family, view, p, p.Seed+c.seed, c.opts)
		if err != nil {
			return candOut{}, err
		}
		res, err := core.RunStaticParallel(mk, view, runs, core.LastK, inner)
		if err != nil {
			return candOut{}, fmt.Errorf("ext-classes %s: %w", c.name, err)
		}
		s := &metrics.Series{Name: c.name}
		var absErr float64
		for i, est := range res.Estimates {
			q := 100 * est / float64(n)
			s.Append(float64(i+1), q)
			absErr += math.Abs(q - 100)
		}
		cost := float64(view.Counter().Total()) / float64(runs)
		return candOut{
			series:  s,
			note:    fmt.Sprintf("%s: mean |error| %.1f%%, %.0f msgs/estimation", c.name, absErr/float64(runs), cost),
			counter: view.Counter().Snapshot(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		fig.Series = append(fig.Series, o.series)
		fig.AddNote("%s", o.note)
		baseNet.Counter().Merge(&o.counter)
	}
	fig.Messages = baseNet.Counter().Total()
	return fig, nil
}

// extDelay measures the estimation latency of the three candidates under
// the Euclidean physical-network model — the paper's future-work item —
// to test §V's conjecture that HopsSampling wins on delay.
func extDelay(p Params) (*Figure, error) {
	fig := &Figure{
		ID:     "ext-delay",
		Title:  "Estimation latency under a physical network model (unit-square delays)",
		XLabel: "Network size",
		YLabel: "Latency (delay units)",
	}
	sc := &metrics.Series{Name: "Sample&Collide (l=200, sequential walks)"}
	hops := &metrics.Series{Name: "HopsSampling (gossip + ACK)"}
	agg := &metrics.Series{Name: "Aggregation (50 synchronous rounds)"}
	base := max(500, p.N100k/16)
	sizes := []int{base, 2 * base, 4 * base, 8 * base}
	type sizeOut struct {
		c    latency.Comparison
		msgs uint64
	}
	outs, err := parallel.Map(p.Workers, len(sizes), func(si int) (sizeOut, error) {
		n := sizes[si]
		net := hetNet(n, p, 0x3200+uint64(n))
		model := latency.NewEuclidean(net.Graph().NumIDs(), 0.01, xrand.New(p.Seed+0x3201))
		c, err := latency.CompareAll(net, model, 200, p.EpochLen, xrand.New(p.Seed+0x3202))
		if err != nil {
			return sizeOut{}, fmt.Errorf("ext-delay: %w", err)
		}
		return sizeOut{c: c, msgs: net.Counter().Total()}, nil
	})
	if err != nil {
		return nil, err
	}
	for si, o := range outs {
		n := sizes[si]
		sc.Append(float64(n), o.c.SampleCollide)
		hops.Append(float64(n), o.c.HopsSampling)
		agg.Append(float64(n), o.c.Aggregation)
		fig.AddNote("N=%d: hops %.1f, aggregation %.1f, sample&collide %.1f (hops wins %.0fx over aggregation)",
			n, o.c.HopsSampling, o.c.Aggregation, o.c.SampleCollide, o.c.Aggregation/o.c.HopsSampling)
		fig.Messages += o.msgs
	}
	fig.Series = []*metrics.Series{hops, agg, sc}
	return fig, nil
}

// extCyclon contrasts the paper's no-repair churn rule with a
// CYCLON-maintained overlay ([19], the membership substrate the paper
// points at): both lose 40% of their peers; the static graph keeps its
// holes while CYCLON's shuffling flushes dead entries and keeps the
// survivors connected, which keeps the estimators healthy.
func extCyclon(p Params) (*Figure, error) {
	fig := &Figure{
		ID:     "ext-cyclon",
		Title:  "Overlay maintenance under churn: paper's no-repair rule vs CYCLON shuffling",
		XLabel: "Shuffle round after 40% departures",
		YLabel: "Stale view entries %",
	}
	n := p.N100k
	g := graph.Heterogeneous(n, p.MaxDeg, xrand.New(p.Seed+0x3300))
	// The shuffle rounds are this experiment's hot loop: shard them on
	// the full worker budget (CYCLON runs alone here, no outer fan-out).
	ccfg := cyclon.Default()
	ccfg.Shards = p.Shards
	ccfg.Workers = p.Workers
	ccfg.Shuffle = p.Shuffle
	proto := cyclon.New(ccfg, xrand.New(p.Seed+0x3301), nil)
	proto.Bootstrap(g)

	// The no-repair baseline: remove the same peers from a plain graph.
	rng := xrand.New(p.Seed + 0x3302)
	victims := make([]graph.NodeID, 0, n*4/10)
	alive := g.AliveIDs()
	rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	victims = append(victims, alive[:n*4/10]...)
	for _, id := range victims {
		g.RemoveNode(id)
		proto.Leave(id)
	}
	survivors := n - len(victims)
	staticComp := float64(graph.LargestComponent(g)) / float64(survivors)
	fig.AddNote("no-repair graph after -40%%: largest component %.1f%% of survivors, avg degree %.2f",
		100*staticComp, graph.AvgDegree(g))

	stale := &metrics.Series{Name: "CYCLON stale entries %"}
	comp := &metrics.Series{Name: "CYCLON largest component %"}
	for r := 0; r <= 30; r++ {
		if r > 0 {
			proto.RunRound()
		}
		stale.Append(float64(r), 100*proto.StaleFraction())
		if r%10 == 0 {
			cg := proto.ExportGraph(n)
			comp.Append(float64(r), 100*float64(graph.LargestComponent(cg))/float64(survivors))
		}
	}
	fig.Series = []*metrics.Series{stale, comp}
	fig.AddNote("CYCLON after 30 rounds: stale %.2f%%, maintenance cost %d messages",
		100*proto.StaleFraction(), proto.Counter().Total())

	// Close the loop: estimate on the maintained overlay. The MLE
	// refinement is used because at reduced scale l=200 is not small
	// against the survivor count, where the basic X²/(2l) formula
	// saturates high.
	net := proto.ExportOverlay(n, p.MaxDeg)
	scDesc, err := estimator("ext-cyclon", "samplecollide")
	if err != nil {
		return nil, err
	}
	est, err := scDesc.New(net, xrand.New(p.Seed+0x3303), registry.Options{SCMLE: true})
	if err != nil {
		return nil, err
	}
	const estRuns = 5
	sum := 0.0
	for i := 0; i < estRuns; i++ {
		v, err := est.Estimate(net)
		if err != nil {
			return nil, fmt.Errorf("ext-cyclon estimate: %w", err)
		}
		sum += v
	}
	mean := sum / estRuns
	fig.AddNote("sample&collide on the CYCLON overlay (mean of %d): %.0f of %d survivors (%+.1f%%)",
		estRuns, mean, survivors, 100*(mean/float64(survivors)-1))
	fig.Messages = proto.Counter().Total() + net.Counter().Total()
	return fig, nil
}
