package experiments

// Comparison figures for the PR-5 estimator families — push-sum
// (epidemic), capture–recapture (random-walk sampling) and the DHT
// k-closest density extrapolator (structured) — under the same two
// regimes every established family is measured in:
//
//   - static-new: repeated estimations on the static 100k-node
//     heterogeneous overlay, with Sample&Collide as the cross-family
//     reference curve (the fig08 shape, on the paper's default
//     topology).
//   - trace-ipfs-all: the checked-in IPFS-calibrated churn workload
//     monitored by every monitoring-capable family at once. It runs on
//     the same seed stream as trace-ipfs, so the families shared with
//     that experiment produce byte-identical series — the registry's
//     fixed per-family stream offsets make the two figures directly
//     comparable, point for point.
//
// Neither experiment touches the default roster or its frozen seed
// streams: the new families carry fresh StreamOffsets and stay out of
// the default set, so all pre-existing experiment checksums are
// unchanged.

import (
	"fmt"

	"p2psize/internal/core"
	"p2psize/internal/metrics"
	"p2psize/internal/monitor"
	"p2psize/internal/parallel"
	"p2psize/internal/registry"
	"p2psize/internal/stats"
)

func init() {
	register("static-new", staticNew)
	register("trace-ipfs-all", traceIPFSAll)
}

// monitoringRoster is the trace-ipfs-all roster: every family that may
// be scheduled by the continuous monitor, in registration order. Spelled
// out (rather than derived from the catalog) so a custom registration
// in the embedding process can never change the experiment's output.
var monitoringRoster = []string{
	"samplecollide", "randomtour", "hopssampling", "aggregation",
	"polling", "pushsum", "capturerecapture", "dht",
}

func staticNew(p Params) (*Figure, error) {
	fig := &Figure{
		ID:     "static-new",
		Title:  "New families (push-sum, capture-recapture, DHT density) vs Sample&Collide, 100,000 node network, static environment",
		XLabel: "Number of estimations",
		YLabel: "Quality %",
	}
	runs := p.SCRuns
	type cand struct {
		name   string
		family string
		seed   uint64
		opts   registry.Options
	}
	// Fresh per-candidate seeds in the 0x19xx block; Workers 1 on the
	// epidemic because it already sits two fan-out levels deep.
	candidates := []cand{
		{"Sample&collide", "samplecollide", p.Seed + 0x1901, registry.Options{}},
		{"Push-sum", "pushsum", p.Seed + 0x1902,
			registry.Options{Rounds: p.EpochLen, Shards: p.Shards, Workers: 1, Shuffle: p.Shuffle}},
		{"Capture-recapture", "capturerecapture", p.Seed + 0x1903, registry.Options{}},
		{"DHT density", "dht", p.Seed + 0x1904, registry.Options{}},
	}
	type candOut struct {
		series   *metrics.Series
		notes    []string
		messages uint64
	}
	// Fresh topology per candidate (same stream), so one candidate's
	// meter and rng use cannot perturb another; candidates run
	// concurrently and each one's estimations fan out below them.
	outs, err := parallel.Map(p.Workers, len(candidates), func(ci int) (candOut, error) {
		c := candidates[ci]
		net := hetNet(p.N100k, p, 0x1900)
		var out candOut
		candidateRuns := runs
		if c.family == "pushsum" && candidateRuns > 20 {
			// An epidemic estimate costs a full epoch (N·rounds
			// messages); the curve is flat after convergence, so cap
			// the points like fig08 does for Aggregation. Noted below.
			candidateRuns = 20
			out.notes = append(out.notes, fmt.Sprintf(
				"Push-sum plotted for %d estimations (flat curve, epoch cost N·%d)", candidateRuns, p.EpochLen))
		}
		mk, err := perRun("static-new", c.family, net, p, c.seed, c.opts)
		if err != nil {
			return candOut{}, err
		}
		res, err := core.RunStaticParallel(mk, net, candidateRuns, core.LastK, p.Workers)
		if err != nil {
			return candOut{}, fmt.Errorf("static-new %s: %w", c.name, err)
		}
		q := res.QualityPct(false)
		s := &metrics.Series{Name: c.name}
		for i := range q {
			s.Append(float64(i+1), q[i])
		}
		out.series = s
		var e stats.Running
		for _, v := range q {
			e.Add(v - 100)
		}
		out.notes = append(out.notes, fmt.Sprintf(
			"%s mean signed error %.1f%%, mean overhead %.0f msgs/estimation",
			c.name, e.Mean(), res.MeanOverhead()))
		out.messages = net.Counter().Total()
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		fig.Series = append(fig.Series, o.series)
		for _, n := range o.notes {
			fig.AddNote("%s", n)
		}
		fig.Messages += o.messages
	}
	return fig, nil
}

func traceIPFSAll(p Params) (*Figure, error) {
	tr, err := loadIPFSTrace()
	if err != nil {
		return nil, err
	}
	// The full monitoring roster, regardless of Params.Estimators: this
	// experiment IS the all-families comparison. The stream matches
	// trace-ipfs, so every family shared with it keeps bit-equal series.
	p.Estimators = append([]string(nil), monitoringRoster...)
	return runTrace("trace-ipfs-all",
		"Continuous monitoring under IPFS-calibrated churn: every monitoring-capable family side by side",
		tr, monitor.Policy{Smoothing: monitor.Window, Window: core.LastK}, p, 0x4400)
}
