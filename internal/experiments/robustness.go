// The robustness experiment group ranks all nine estimator families
// under degraded network conditions — the scenario suite the paper's
// benign-churn comparison leaves open. Each experiment fixes one fault
// scenario (lossy links, inflated delay, duplicated traffic, a
// partition that heals mid-sequence, or a combined adversary), runs
// every family through the fault layer on the same overlay, and ranks
// the families by accuracy (MAE/MAPE) with p50/p95/p99 estimate-latency
// percentiles — the way ext-classes ranks the counting classes on
// accuracy alone.
//
// Determinism: candidates run on per-candidate views (clones for the
// partition scenario, whose surgery mutates the graph) with per-run
// injectors on per-run streams, so the output is byte-identical at
// every worker count, like every other experiment in the package.

package experiments

import (
	"fmt"
	"math"

	"p2psize/internal/core"
	"p2psize/internal/fault"
	"p2psize/internal/idspace"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/parallel"
	"p2psize/internal/registry"
	"p2psize/internal/stats"
	"p2psize/internal/xrand"
)

func init() {
	register("robustness-drop", robustness("robustness-drop",
		"All nine families under 10% message loss", fault.Spec{Drop: 0.10}))
	register("robustness-delay", robustness("robustness-delay",
		"All nine families under 3x message delay", fault.Spec{DelayFactor: 3}))
	register("robustness-dup", robustness("robustness-dup",
		"All nine families under 10% message duplication", fault.Spec{Dup: 0.10}))
	register("robustness-partition", robustness("robustness-partition",
		"All nine families across a partition that splits 40% of the peers off and heals",
		fault.Spec{PartitionFrac: 0.4, PartitionLo: 0.3, PartitionHi: 0.7}))
	register("robustness-adversary", robustness("robustness-adversary",
		"All nine families against lying, silent and sybil peers",
		fault.Spec{LieScale: 10, LieFrac: 0.05, SilentFrac: 0.10, SybilFrac: 0.15}))
	// Asymmetric connectivity: 20% of the peers answer nothing inbound
	// while still originating traffic — the NAT-limited population every
	// deployed P2P network carries. Walk and poll families pay extra
	// messages and lose reach; the structured dht family is oblivious
	// (records outlive reachability); epidemic families leak mass on
	// every push into the fated set.
	register("robustness-nat", robustness("robustness-nat",
		"All nine families with 20% of the peers NAT-unreachable for inbound requests",
		fault.Spec{NATFrac: 0.2}))
}

func robustness(id, title string, spec fault.Spec) Runner {
	return func(p Params) (*Figure, error) { return runRobustness(id, title, spec, p) }
}

// robustCandidate is one family in the head-to-head ranking.
type robustCandidate struct {
	family string
	seed   uint64
	opts   registry.Options
}

func runRobustness(id, title string, spec fault.Spec, p Params) (*Figure, error) {
	fig := &Figure{ID: id, Title: title, XLabel: "Estimation", YLabel: "Quality %"}
	// Nine families on one overlay is the group's hot spot; a sixteenth
	// of the paper scale keeps the full suite tractable while every
	// family still has room to be wrong.
	n := max(1000, p.N100k/16)
	runs := min(10, p.TableRuns)
	baseNet := hetNet(n, p, 0x5200)
	// The error target is the honest population: silent peers still
	// count (they are alive, just unresponsive), sybils never do.
	trueN := float64(n)
	salt := p.Seed + 0x5201
	if spec.SilentFrac > 0 {
		fault.Silence(baseNet, spec.SilentFrac, salt)
	}
	if spec.SybilFrac > 0 {
		fault.InflateSybils(baseNet, spec.SybilFrac, xrand.New(p.Seed+0x5202))
	}
	// The ring snapshots the overlay after the adversary moved in —
	// sybils registered identifiers, silent peers' records linger.
	ring := idspace.NewRing(baseNet, xrand.New(p.Seed+0x5203))
	aggOpts := registry.Options{Rounds: p.EpochLen, Shards: p.Shards, Workers: 1, Shuffle: p.Shuffle}
	candidates := []robustCandidate{
		{"samplecollide", 0x5210, registry.Options{}},
		{"randomtour", 0x5211, registry.Options{Tours: 3}},
		{"hopssampling", 0x5212, registry.Options{}},
		{"aggregation", 0x5213, aggOpts},
		{"idspace", 0x5214, registry.Options{Ring: ring}},
		{"polling", 0x5215, registry.Options{}},
		{"pushsum", 0x5216, aggOpts},
		{"capturerecapture", 0x5217, registry.Options{}},
		{"dht", 0x5218, registry.Options{}},
	}
	type candOut struct {
		quality *metrics.Series
		latency *metrics.Series
		ranking Ranking
		note    string
		counter metrics.Counter
	}
	outer, inner := splitWorkers(p, len(candidates))
	outs, err := parallel.Map(outer, len(candidates), func(ci int) (candOut, error) {
		c := candidates[ci]
		// The injectors are created up front, one per run: the run
		// harness calls the factory twice for run 0 (once to estimate,
		// once for the name), and a fresh-injector-per-call factory
		// would lose run 0's recorded latency to the throwaway.
		injs := make([]*fault.Injector, runs)
		for run := range injs {
			injs[run] = fault.NewInjector(spec, xrand.NewStream(p.Seed+c.seed+0x10000, uint64(run)))
		}
		var net *overlay.Network
		if spec.PartitionFrac > 0 {
			net = baseNet.Clone() // partition surgery mutates the graph
		} else {
			net = baseNet.View()
		}
		mkInner, err := perRun(id+" "+c.family, c.family, net, p, p.Seed+c.seed, c.opts)
		if err != nil {
			return candOut{}, err
		}
		mk := func(run int) core.Estimator { return fault.Decorate(mkInner(run), injs[run]) }
		estimates, err := robustEstimates(mk, net, runs, spec, salt, inner)
		if err != nil {
			return candOut{}, fmt.Errorf("%s %s: %w", id, c.family, err)
		}
		quality := &metrics.Series{Name: c.family}
		latency := &metrics.Series{Name: c.family + " latency"}
		lats := make([]float64, runs)
		var mae, mape float64
		for i, est := range estimates {
			quality.Append(float64(i+1), 100*est/trueN)
			lats[i] = injs[i].LastLatency()
			latency.Append(float64(i+1), lats[i])
			mae += math.Abs(est - trueN)
			mape += 100 * math.Abs(est-trueN) / trueN
		}
		r := Ranking{
			Name: c.family,
			MAE:  mae / float64(runs),
			MAPE: mape / float64(runs),
			P50:  stats.Quantile(lats, 0.50),
			P95:  stats.Quantile(lats, 0.95),
			P99:  stats.Quantile(lats, 0.99),
		}
		return candOut{
			quality: quality,
			latency: latency,
			ranking: r,
			note: fmt.Sprintf("%s: MAE %.0f, MAPE %.1f%%, latency p50/p95/p99 %.1f/%.1f/%.1f, %.0f msgs/estimation",
				c.family, r.MAE, r.MAPE, r.P50, r.P95, r.P99,
				float64(net.Counter().Total())/float64(runs)),
			counter: net.Counter().Snapshot(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		fig.Series = append(fig.Series, o.quality, o.latency)
		fig.Rankings = append(fig.Rankings, o.ranking)
		fig.AddNote("%s", o.note)
		baseNet.Counter().Merge(&o.counter)
	}
	sortRankings(fig.Rankings)
	fig.AddNote("scenario %q on %d honest peers, most robust first: %s",
		spec.String(), n, rankingOrder(fig.Rankings))
	fig.Messages = baseNet.Counter().Total()
	return fig, nil
}

// robustEstimates runs the estimation sequence for one candidate. Under
// a partition scenario the sequence is cut into three segments — before
// the split, during it, and after the heal — with the graph surgery
// applied between them; run indices stay global across segments so each
// run keeps its (stream, injector) identity wherever the cut falls.
func robustEstimates(mk func(run int) core.Estimator, net *overlay.Network, runs int, spec fault.Spec, salt uint64, workers int) ([]float64, error) {
	if spec.PartitionFrac <= 0 {
		res, err := core.RunStaticParallel(mk, net, runs, core.LastK, workers)
		if err != nil {
			return nil, err
		}
		return res.Estimates, nil
	}
	lo := int(spec.PartitionLo * float64(runs))
	hi := int(spec.PartitionHi * float64(runs))
	estimates := make([]float64, 0, runs)
	segment := func(off, count int) error {
		if count == 0 {
			return nil
		}
		mkOff := func(run int) core.Estimator { return mk(run + off) }
		res, err := core.RunStaticParallel(mkOff, net, count, core.LastK, workers)
		if err != nil {
			return err
		}
		estimates = append(estimates, res.Estimates...)
		return nil
	}
	if err := segment(0, lo); err != nil {
		return nil, err
	}
	severed := fault.Partition(net, spec.PartitionFrac, salt)
	if err := segment(lo, hi-lo); err != nil {
		return nil, err
	}
	fault.Heal(net, severed)
	if err := segment(hi, runs-hi); err != nil {
		return nil, err
	}
	return estimates, nil
}

// sortRankings orders most-robust-first: by MAPE, ties by name.
func sortRankings(rs []Ranking) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rankLess(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func rankLess(a, b Ranking) bool {
	if a.MAPE != b.MAPE {
		return a.MAPE < b.MAPE
	}
	return a.Name < b.Name
}

func rankingOrder(rs []Ranking) string {
	s := ""
	for i, r := range rs {
		if i > 0 {
			s += " > "
		}
		s += r.Name
	}
	return s
}
