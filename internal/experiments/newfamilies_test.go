package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestStaticNewFamiliesAccuracy(t *testing.T) {
	fig, err := staticNew(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want Sample&Collide + 3 new families", len(fig.Series))
	}
	// Every family's smoothed-free quality curve should live in a sane
	// band around 100% at this scale; the DHT and push-sum curves are
	// the tight ones, capture-recapture is the noisy one (~1/sqrt(m)).
	tol := map[string]float64{
		"Sample&collide":    30,
		"Push-sum":          10,
		"Capture-recapture": 80,
		"DHT density":       30,
	}
	for _, s := range fig.Series {
		band, ok := tol[s.Name]
		if !ok {
			t.Fatalf("unexpected series %q", s.Name)
		}
		sum := 0.0
		for _, q := range s.Y {
			sum += q
		}
		mean := sum / float64(s.Len())
		if math.Abs(mean-100) > band {
			t.Fatalf("%s mean quality %.1f%% outside 100±%.0f%%", s.Name, mean, band)
		}
	}
	if fig.Messages == 0 {
		t.Fatal("no messages metered")
	}
	found := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "mean overhead") {
			found = true
		}
	}
	if !found {
		t.Fatal("per-family overhead notes missing")
	}
}

// TestTraceIPFSAllSideBySide pins the experiment's design guarantee:
// trace-ipfs-all runs on trace-ipfs's seed stream, so the true-size
// curve and every family the two experiments share are byte-identical —
// the new families land literally side by side with the original
// roster's series.
func TestTraceIPFSAllSideBySide(t *testing.T) {
	p := determinismParams(0)
	ref, err := Run("trace-ipfs", p)
	if err != nil {
		t.Fatal(err)
	}
	all, err := Run("trace-ipfs-all", p)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + len(monitoringRoster); len(all.Series) != want {
		t.Fatalf("trace-ipfs-all has %d series, want %d (truth + full roster)", len(all.Series), want)
	}
	for _, s := range ref.Series {
		got := findSeries(all, s.Name)
		if got == nil {
			t.Fatalf("trace-ipfs series %q missing from trace-ipfs-all", s.Name)
		}
		seriesEqual(t, s, got)
	}
	// And the three new families actually produced usable estimates.
	for _, name := range []string{"push-sum", "capture-recapture", "dht-density"} {
		found := false
		for _, s := range all.Series {
			if !strings.HasPrefix(s.Name, name) {
				continue
			}
			found = true
			usable := 0
			for _, y := range s.Y {
				if !math.IsNaN(y) {
					usable++
				}
			}
			if usable == 0 {
				t.Fatalf("%s produced no usable estimates", s.Name)
			}
		}
		if !found {
			t.Fatalf("no series for family %s", name)
		}
	}
	// The roster override is unconditional: a Params.Estimators subset
	// must not shrink this experiment.
	p2 := determinismParams(0)
	p2.Estimators = []string{"sc"}
	again, err := Run("trace-ipfs-all", p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Series) != len(all.Series) {
		t.Fatalf("Params.Estimators leaked into trace-ipfs-all: %d vs %d series",
			len(again.Series), len(all.Series))
	}
}
