package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestExtWalksScalingContrast(t *testing.T) {
	fig, err := extWalks(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	rt, sc := fig.Series[0], fig.Series[1]
	if rt.Len() != 4 || sc.Len() != 4 {
		t.Fatalf("points: rt=%d sc=%d", rt.Len(), sc.Len())
	}
	// Over an 8× size range, Random Tour cost must grow much faster than
	// Sample&Collide's (linear vs square-root: expect ≥2x growth gap).
	rtGrowth := rt.Y[3] / rt.Y[0]
	scGrowth := sc.Y[3] / sc.Y[0]
	if rtGrowth < 1.5*scGrowth {
		t.Fatalf("random tour growth %.1fx not clearly above sample&collide's %.1fx",
			rtGrowth, scGrowth)
	}
}

func TestExtClassesAllFiveRun(t *testing.T) {
	fig, err := extClasses(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d, want 5 classes", len(fig.Series))
	}
	// Every class produces positive estimates in a sane band.
	for _, s := range fig.Series {
		for i, q := range s.Y {
			if q <= 0 || q > 400 {
				t.Fatalf("%s estimate %d quality %.1f%%", s.Name, i, q)
			}
		}
	}
	// Aggregation is the accuracy champion among the notes.
	foundAgg := false
	for _, n := range fig.Notes {
		if strings.HasPrefix(n, "aggregation") && strings.Contains(n, "0.0%") {
			foundAgg = true
		}
	}
	if !foundAgg {
		t.Fatalf("aggregation accuracy note missing: %v", fig.Notes)
	}
}

func TestExtDelayConjectureHolds(t *testing.T) {
	fig, err := extDelay(testParams())
	if err != nil {
		t.Fatal(err)
	}
	hops, agg, sc := fig.Series[0], fig.Series[1], fig.Series[2]
	for i := range hops.Y {
		if !(hops.Y[i] < agg.Y[i]) {
			t.Fatalf("point %d: hops %.1f !< aggregation %.1f", i, hops.Y[i], agg.Y[i])
		}
		if !(hops.Y[i] < sc.Y[i]) {
			t.Fatalf("point %d: hops %.1f !< sample&collide %.1f", i, hops.Y[i], sc.Y[i])
		}
	}
}

func TestExtCyclonFlushesAndEstimates(t *testing.T) {
	fig, err := extCyclon(testParams())
	if err != nil {
		t.Fatal(err)
	}
	stale := fig.Series[0]
	// Stale fraction starts high (40% of views point at the dead) and
	// ends near zero.
	if stale.Y[0] < 20 {
		t.Fatalf("initial stale %% = %.1f, churn did not register", stale.Y[0])
	}
	final := stale.Y[stale.Len()-1]
	if final > 2 {
		t.Fatalf("final stale %% = %.1f, shuffling did not flush", final)
	}
	// The closing estimate lands near the survivor count.
	found := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "sample&collide on the CYCLON overlay") {
			found = true
		}
	}
	if !found {
		t.Fatalf("estimate note missing: %v", fig.Notes)
	}
	// A handful of survivors whose whole view died stay isolated until
	// they re-join (CYCLON's introducer path, not modeled here), so the
	// component stays just below 100%.
	comp := fig.Series[1]
	if comp.Y[comp.Len()-1] < 97 {
		t.Fatalf("CYCLON largest component %.1f%%, want ≈100%%", comp.Y[comp.Len()-1])
	}
}

func TestExtExperimentsRegistered(t *testing.T) {
	for _, id := range []string{"ext-walks", "ext-classes", "ext-delay", "ext-cyclon"} {
		if _, ok := Get(id); !ok {
			t.Fatalf("%s not registered", id)
		}
	}
}

func TestExtDelayRatioIsLarge(t *testing.T) {
	fig, err := extDelay(testParams())
	if err != nil {
		t.Fatal(err)
	}
	hops, agg := fig.Series[0], fig.Series[1]
	last := hops.Len() - 1
	if ratio := agg.Y[last] / hops.Y[last]; ratio < 5 || math.IsNaN(ratio) {
		t.Fatalf("aggregation/hops latency ratio %.1f, expected an order of magnitude", ratio)
	}
}
