package experiments

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"p2psize/internal/metrics"
	"p2psize/internal/parallel"
)

// ReportSchema identifies the JSON layout of SuiteReport; bump it when
// the shape changes so trajectory tooling can detect incompatible files.
const ReportSchema = "p2psize-suite-report/v1"

// SeriesSummary condenses one plotted curve to a comparable fingerprint:
// point count plus an FNV-64a checksum over the exact float64 bits of
// every (x, y) pair. Two runs produced byte-identical series iff their
// checksums match, which is how CI and the determinism tests compare
// figures without storing the full data.
type SeriesSummary struct {
	Name     string `json:"name"`
	Points   int    `json:"points"`
	Checksum string `json:"checksum"`
}

// ExperimentReport is the machine-readable record of one experiment run.
type ExperimentReport struct {
	ID       string          `json:"id"`
	Title    string          `json:"title,omitempty"`
	WallMS   float64         `json:"wall_ms"`
	Messages uint64          `json:"messages"`
	Series   []SeriesSummary `json:"series,omitempty"`
	Notes    int             `json:"notes"`
	Error    string          `json:"error,omitempty"`
}

// SuiteReport aggregates a whole suite execution. cmd/figures writes it
// next to the figure data and the bench harness writes BENCH_results.json
// in this same schema, so the perf trajectory (wall times, message
// totals) and the output identity (checksums) are tracked PR-over-PR.
type SuiteReport struct {
	Schema      string             `json:"schema"`
	Seed        uint64             `json:"seed"`
	Workers     int                `json:"workers"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	N100k       int                `json:"n100k"`
	N1M         int                `json:"n1m"`
	TotalWallMS float64            `json:"total_wall_ms"`
	Experiments []ExperimentReport `json:"experiments"`
}

// ChecksumSeries fingerprints a series; see SeriesSummary.
func ChecksumSeries(s *metrics.Series) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v float64) {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	for i := range s.X {
		put(s.X[i])
		put(s.Y[i])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Summarize builds the report entry for one completed figure. Wall time
// is supplied by the caller (the suite measures it around the run).
func Summarize(fig *Figure, wall time.Duration) ExperimentReport {
	r := ExperimentReport{
		ID:       fig.ID,
		Title:    fig.Title,
		WallMS:   float64(wall.Microseconds()) / 1000,
		Messages: fig.Messages,
		Notes:    len(fig.Notes),
	}
	for _, s := range fig.Series {
		r.Series = append(r.Series, SeriesSummary{
			Name:     s.Name,
			Points:   s.Len(),
			Checksum: ChecksumSeries(s),
		})
	}
	return r
}

// RunSuite executes the given experiments (all registered ones if ids is
// empty) concurrently on the worker pool and returns the report plus the
// produced figures by id. Individual experiment failures are recorded in
// the report and returned as one error (lowest id first) after every
// experiment has run; figures that succeeded are still returned.
//
// Every deterministic field of the report — checksums, message counts,
// series shapes — is byte-identical at any p.Workers setting; only the
// wall times vary.
func RunSuite(ids []string, p Params) (*SuiteReport, map[string]*Figure, error) {
	if len(ids) == 0 {
		ids = IDs()
	}
	report := &SuiteReport{
		Schema:     ReportSchema,
		Seed:       p.Seed,
		Workers:    parallel.Resolve(p.Workers),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		N100k:      p.N100k,
		N1M:        p.N1M,
	}
	// Split the worker budget across the two nesting levels instead of
	// letting every level resolve p.Workers independently (which would
	// multiply goroutine count — and, at paper scale, resident overlays —
	// by the suite width). A few experiments run concurrently, each with
	// the remaining budget for its internal fan-out; results are
	// worker-count-invariant either way, so the split only shapes load.
	outer := min(4, parallel.Resolve(p.Workers), len(ids))
	inner := p
	inner.Workers = max(1, parallel.Resolve(p.Workers)/outer)
	figs := make([]*Figure, len(ids))
	start := time.Now()
	var firstErr error
	entries, _ := parallel.Map(outer, len(ids), func(i int) (ExperimentReport, error) {
		expStart := time.Now()
		fig, err := Run(ids[i], inner)
		if err != nil {
			return ExperimentReport{ID: ids[i], Error: err.Error()}, nil
		}
		figs[i] = fig
		return Summarize(fig, time.Since(expStart)), nil
	})
	report.TotalWallMS = float64(time.Since(start).Microseconds()) / 1000
	report.Experiments = entries
	out := make(map[string]*Figure, len(ids))
	for i, fig := range figs {
		if fig != nil {
			out[ids[i]] = fig
		} else if firstErr == nil {
			firstErr = fmt.Errorf("experiments: %s: %s", ids[i], entries[i].Error)
		}
	}
	return report, out, firstErr
}

// Sorted returns the report's experiments ordered by id (the suite
// preserves submission order, which is already sorted when ids was nil).
func (r *SuiteReport) Sorted() []ExperimentReport {
	out := append([]ExperimentReport(nil), r.Experiments...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WriteFile marshals the report as indented JSON at path.
func (r *SuiteReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
