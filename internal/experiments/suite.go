package experiments

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"p2psize/internal/metrics"
	"p2psize/internal/parallel"
)

// ReportSchema identifies the JSON layout of SuiteReport; bump it when
// the shape changes so trajectory tooling can detect incompatible files.
const ReportSchema = "p2psize-suite-report/v1"

// SeriesSummary condenses one plotted curve to a comparable fingerprint:
// point count plus an FNV-64a checksum over the exact float64 bits of
// every (x, y) pair. Two runs produced byte-identical series iff their
// checksums match, which is how CI and the determinism tests compare
// figures without storing the full data.
type SeriesSummary struct {
	Name     string `json:"name"`
	Points   int    `json:"points"`
	Checksum string `json:"checksum"`
}

// ExperimentReport is the machine-readable record of one experiment run.
type ExperimentReport struct {
	ID       string  `json:"id"`
	Title    string  `json:"title,omitempty"`
	WallMS   float64 `json:"wall_ms"`
	Messages uint64  `json:"messages"`
	// AllocBytes pairs the wall time with the experiment's measured
	// heap allocation (perf-monitor-* experiments only; see
	// Figure.AllocBytes). Additive: other experiments omit the field.
	AllocBytes uint64          `json:"alloc_bytes,omitempty"`
	Series     []SeriesSummary `json:"series,omitempty"`
	// Rankings carry the robustness-* experiments' per-family summaries
	// (MAE/MAPE and latency percentiles), most robust first. Additive:
	// reports from other experiments omit the field, so the schema
	// version is unchanged.
	Rankings []Ranking `json:"rankings,omitempty"`
	Notes    int       `json:"notes"`
	Error    string    `json:"error,omitempty"`
}

// SuiteReport aggregates a whole suite execution. cmd/figures writes it
// next to the figure data and the bench harness writes BENCH_results.json
// in this same schema, so the perf trajectory (wall times, message
// totals) and the output identity (checksums) are tracked PR-over-PR.
type SuiteReport struct {
	Schema  string `json:"schema"`
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`
	// Shards records Params.Shards: unlike Workers it is part of the
	// deterministic output, so two reports with equal seeds but
	// different shard settings legitimately differ in checksums. Older
	// reports decode as 0 (= auto), which is what they ran with.
	Shards int `json:"shards"`
	// Shuffle records Params.Shuffle's spelling ("global"/"local"):
	// like Shards it is part of the deterministic output. Older reports
	// decode as "" (= global), which is what they ran with.
	Shuffle string `json:"shuffle,omitempty"`
	// Replay records Params.Replay's spelling ("perinstance"/"shared").
	// Unlike Shards and Shuffle it is NOT part of the deterministic
	// output — both replay modes produce bit-equal series — it records
	// how the monitor mapped instances onto clones. Older reports
	// decode as "" (= perinstance), which is what they ran with.
	Replay      string             `json:"replay,omitempty"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	N100k       int                `json:"n100k"`
	N1M         int                `json:"n1m"`
	TotalWallMS float64            `json:"total_wall_ms"`
	Experiments []ExperimentReport `json:"experiments"`
}

// ChecksumSeries fingerprints a series; see SeriesSummary.
func ChecksumSeries(s *metrics.Series) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v float64) {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	for i := range s.X {
		put(s.X[i])
		put(s.Y[i])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Summarize builds the report entry for one completed figure. Wall time
// is supplied by the caller (the suite measures it around the run).
func Summarize(fig *Figure, wall time.Duration) ExperimentReport {
	r := ExperimentReport{
		ID:         fig.ID,
		Title:      fig.Title,
		WallMS:     float64(wall.Microseconds()) / 1000,
		Messages:   fig.Messages,
		AllocBytes: fig.AllocBytes,
		Notes:      len(fig.Notes),
	}
	for _, s := range fig.Series {
		r.Series = append(r.Series, SeriesSummary{
			Name:     s.Name,
			Points:   s.Len(),
			Checksum: ChecksumSeries(s),
		})
	}
	r.Rankings = append(r.Rankings, fig.Rankings...)
	return r
}

// costHint is the static fallback ranking of experiments by expected
// wall time, used when no measured cost model is available. The values
// are coarse relative weights measured from bench runs — exactness does
// not matter, only that the dominating experiments (the 10k-round
// dynamic Aggregation figures, then the trace monitors and the 1M-node
// workloads) start before the cheap ones, so they are not left to run
// alone at the tail of the suite on an otherwise idle machine.
var costHint = map[string]int{
	"fig15": 100, "fig16": 100, "fig17": 100, // AggHorizon rounds × N100k sweeps
	"trace-weibull": 60, "trace-diurnal": 60, "trace-flashcrowd": 60,
	"perf-monitor-perinstance": 60, "perf-monitor-shared": 60, // 1M-node trace replays
	"trace-ipfs":     25,                       // fixed 1,000-node empirical workload, 60 samples
	"trace-ipfs-all": 45,                       // same workload, every monitoring-capable family
	"static-new":     45,                       // 20 push-sum epochs at N100k dominate
	"fig06":          40,                       // AggStaticRounds × N1M
	"perf-agg-seq":   35, "perf-agg-shard": 35, // 1M-node round sweeps
	"perf-cyclon-seq": 35, "perf-cyclon-shard": 35,
	"fig02": 30, "fig04": 30, // 1M-node estimation runs
	"robustness-drop": 30, "robustness-delay": 30, "robustness-dup": 30, // nine families × faulted runs
	"robustness-partition": 30, "robustness-adversary": 30, "robustness-nat": 30,
	"ext-cyclon": 25, "ext-walks": 20, "ext-delay": 20,
	"table1": 15,
}

// CostModelFromReport extracts measured per-experiment wall times (ms)
// from a prior suite report, for Params.CostModel. Errored entries are
// skipped — their wall times measure the failure, not the work.
func CostModelFromReport(r *SuiteReport) map[string]float64 {
	model := make(map[string]float64, len(r.Experiments))
	for _, e := range r.Experiments {
		if e.Error == "" && e.WallMS > 0 {
			model[e.ID] = e.WallMS
		}
	}
	return model
}

// LoadCostModel reads a suite report (BENCH_results.json / REPORT.json)
// and returns its measured cost model. Any failure — missing file,
// unknown schema, empty report — returns nil, which makes RunSuite fall
// back to the static costHint table; a stale or absent baseline must
// never fail a run, it only degrades scheduling.
func LoadCostModel(path string) map[string]float64 {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var r SuiteReport
	if err := json.Unmarshal(data, &r); err != nil || r.Schema != ReportSchema {
		return nil
	}
	model := CostModelFromReport(&r)
	if len(model) == 0 {
		return nil
	}
	return model
}

// scheduleOrder returns the indices of ids in execution order: highest
// expected cost first, ties broken by submission order. With a measured
// model, experiments it does not know (typically ones added since the
// baseline was recorded) are scheduled first — assuming a new workload
// is expensive costs nothing, assuming it is cheap can serialize the
// tail. Report ordering is unaffected — results land back in their
// submission slots.
func scheduleOrder(ids []string, model map[string]float64) []int {
	cost := func(id string) float64 {
		if model != nil {
			if ms, ok := model[id]; ok {
				return ms
			}
			return math.Inf(1)
		}
		return float64(costHint[id])
	}
	order := make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cost(ids[order[a]]) > cost(ids[order[b]])
	})
	return order
}

// RunSuite executes the given experiments (all registered ones if ids is
// empty) concurrently on the worker pool and returns the report plus the
// produced figures by id. Experiments are scheduled longest-job-first —
// from measured wall times when p.CostModel is set (see LoadCostModel),
// from the static costHint table otherwise — to cut many-core makespan,
// but the report keeps submission order — sorted by id when ids was
// empty. Individual experiment failures are recorded in the report and
// returned as one error (lowest submission index first) after every
// experiment has run; figures that succeeded are still returned.
//
// Every deterministic field of the report — checksums, message counts,
// series shapes — is byte-identical at any p.Workers setting; only the
// wall times vary.
func RunSuite(ids []string, p Params) (*SuiteReport, map[string]*Figure, error) {
	if len(ids) == 0 {
		ids = IDs()
	}
	report := &SuiteReport{
		Schema:     ReportSchema,
		Seed:       p.Seed,
		Workers:    parallel.Resolve(p.Workers),
		Shards:     p.Shards,
		Shuffle:    p.Shuffle.String(),
		Replay:     p.Replay.String(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		N100k:      p.N100k,
		N1M:        p.N1M,
	}
	// Split the worker budget across the two nesting levels instead of
	// letting every level resolve p.Workers independently (which would
	// multiply goroutine count — and, at paper scale, resident overlays —
	// by the suite width). A few experiments run concurrently, each with
	// the remaining budget for its internal fan-out; results are
	// worker-count-invariant either way, so the split only shapes load.
	outer := min(4, parallel.Resolve(p.Workers), len(ids))
	inner := p
	inner.Workers = max(1, parallel.Resolve(p.Workers)/outer)
	figs := make([]*Figure, len(ids))
	entries := make([]ExperimentReport, len(ids))
	order := scheduleOrder(ids, p.CostModel)
	start := time.Now()
	var firstErr error
	_ = parallel.ForEach(outer, len(ids), func(slot int) error {
		i := order[slot] // longest-job-first execution, submission-order results
		expStart := time.Now()
		fig, err := Run(ids[i], inner)
		if err != nil {
			entries[i] = ExperimentReport{ID: ids[i], Error: err.Error()}
			return nil
		}
		figs[i] = fig
		entries[i] = Summarize(fig, time.Since(expStart))
		return nil
	})
	report.TotalWallMS = float64(time.Since(start).Microseconds()) / 1000
	report.Experiments = entries
	out := make(map[string]*Figure, len(ids))
	for i, fig := range figs {
		if fig != nil {
			out[ids[i]] = fig
		} else if firstErr == nil {
			firstErr = fmt.Errorf("experiments: %s: %s", ids[i], entries[i].Error)
		}
	}
	return report, out, firstErr
}

// Sorted returns the report's experiments ordered by id (the suite
// preserves submission order, which is already sorted when ids was nil).
func (r *SuiteReport) Sorted() []ExperimentReport {
	out := append([]ExperimentReport(nil), r.Experiments...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WriteFile marshals the report as indented JSON at path.
func (r *SuiteReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
