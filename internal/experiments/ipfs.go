package experiments

// trace-ipfs: continuous monitoring against an empirical-style churn
// workload calibrated to the IPFS liveness measurements of Daniel &
// Tschorsch (arXiv:2205.14927). The study measured heavy-tailed session
// lengths (most IPFS nodes stay online for minutes, a small DHT-server
// tail for days) and a pronounced diurnal swing in arrivals; the
// checked-in trace reproduces those statistics — Weibull k=0.45
// sessions at one-minute resolution with a 30% day/night arrival swing
// — as a concrete membership schedule: 1,000 initial sessions, ~4,000
// arrivals, ~4,300 departures over a ten-hour horizon.
//
// The trace ships as testdata/ipfs.csv.gz (the standard trace CSV,
// gzipped) and is embedded so the experiment runs identically from any
// working directory. Unlike the synthetic trace-* workloads it is a
// fixed, checked-in input: Params scaling changes the estimator roster
// and cadences, never the workload, which makes it the stable yardstick
// for comparing estimator rosters PR over PR.

import (
	"bytes"
	"compress/gzip"
	_ "embed"
	"fmt"

	"p2psize/internal/core"
	"p2psize/internal/monitor"
	"p2psize/internal/trace"
)

//go:embed testdata/ipfs.csv.gz
var ipfsTraceGz []byte

func init() {
	register("trace-ipfs", traceIPFS)
}

// loadIPFSTrace decompresses and parses the embedded trace. The result
// is rebuilt per call — experiments must not share mutable state.
func loadIPFSTrace() (*trace.Trace, error) {
	gz, err := gzip.NewReader(bytes.NewReader(ipfsTraceGz))
	if err != nil {
		return nil, fmt.Errorf("trace-ipfs: embedded trace corrupt: %w", err)
	}
	defer gz.Close()
	tr, err := trace.ReadCSV(gz)
	if err != nil {
		return nil, fmt.Errorf("trace-ipfs: %w", err)
	}
	return tr, nil
}

func traceIPFS(p Params) (*Figure, error) {
	tr, err := loadIPFSTrace()
	if err != nil {
		return nil, err
	}
	return runTrace("trace-ipfs",
		"Continuous monitoring under IPFS-calibrated churn (Weibull k=0.45 sessions, diurnal arrivals)",
		tr, monitor.Policy{Smoothing: monitor.Window, Window: core.LastK}, p, 0x4400)
}
