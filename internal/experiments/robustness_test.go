package experiments

import (
	"testing"
)

var robustnessIDs = []string{
	"robustness-drop", "robustness-delay", "robustness-dup",
	"robustness-partition", "robustness-adversary", "robustness-nat",
}

func rankingsEqual(t *testing.T, a, b *Figure) {
	t.Helper()
	if len(a.Rankings) != len(b.Rankings) {
		t.Fatalf("ranking counts differ: %d vs %d", len(a.Rankings), len(b.Rankings))
	}
	for i := range a.Rankings {
		if a.Rankings[i] != b.Rankings[i] {
			t.Fatalf("ranking %d differs:\n  %+v\n  %+v", i, a.Rankings[i], b.Rankings[i])
		}
	}
}

// TestRobustnessWorkerInvariance extends the engine's core guarantee to
// the fault layer: every robustness scenario — fate draws, injector
// latency clocks, partition surgery between run segments — must be
// byte-identical at workers 1, 2 and 8.
func TestRobustnessWorkerInvariance(t *testing.T) {
	ids := robustnessIDs
	if testing.Short() {
		ids = []string{"robustness-drop", "robustness-partition"}
	}
	for _, id := range ids {
		t.Run(id, func(t *testing.T) {
			base, err := Run(id, determinismParams(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				got, err := Run(id, determinismParams(workers))
				if err != nil {
					t.Fatal(err)
				}
				if err := figuresEqual(base, got); err != nil {
					t.Fatalf("workers=1 vs workers=%d: %v", workers, err)
				}
				rankingsEqual(t, base, got)
			}
		})
	}
}

// TestRobustnessShape pins the report contract: nine ranked families,
// most robust first, each with latency percentiles, and two series
// (quality + latency) per family.
func TestRobustnessShape(t *testing.T) {
	fig, err := Run("robustness-drop", determinismParams(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rankings) != 9 {
		t.Fatalf("rankings = %d families, want 9", len(fig.Rankings))
	}
	if len(fig.Series) != 18 {
		t.Fatalf("series = %d, want 18 (quality + latency per family)", len(fig.Series))
	}
	for i, r := range fig.Rankings {
		if r.Name == "" || r.MAE < 0 || r.MAPE < 0 {
			t.Fatalf("ranking %d malformed: %+v", i, r)
		}
		if !(r.P50 <= r.P95 && r.P95 <= r.P99) {
			t.Fatalf("%s: latency percentiles out of order: %+v", r.Name, r)
		}
		if i > 0 && fig.Rankings[i].MAPE < fig.Rankings[i-1].MAPE {
			t.Fatalf("rankings not sorted most-robust-first at %d: %+v", i, fig.Rankings)
		}
	}
}

// TestNATEnvelope pins the asymmetric-connectivity scenario's class
// separation: the structured dht family is NAT-oblivious (identifier
// records outlive reachability, so its density estimate barely moves),
// the poll class loses the fated fifth of the population plus its
// gossip tail, and the fire-and-forget epidemic class leaks mass on
// every push into the fated set. The margins are wide at test scale.
func TestNATEnvelope(t *testing.T) {
	fig, err := Run("robustness-nat", determinismParams(0))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Ranking{}
	for _, r := range fig.Rankings {
		byName[r.Name] = r
	}
	dht, ok1 := byName["dht"]
	poll, ok2 := byName["polling"]
	ps, ok3 := byName["pushsum"]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("families missing from rankings: %+v", fig.Rankings)
	}
	if dht.MAPE > 15 {
		t.Fatalf("dht MAPE %.1f%% under nat, want NAT-oblivious (<= 15%%)", dht.MAPE)
	}
	if poll.MAPE < 10 {
		t.Fatalf("polling MAPE %.1f%% under nat=0.2, want the unreached-fraction bias (>= 10%%)", poll.MAPE)
	}
	if ps.MAPE < 2*dht.MAPE {
		t.Fatalf("push-sum MAPE %.1f%% vs dht %.1f%%: NAT did not degrade the epidemic class",
			ps.MAPE, dht.MAPE)
	}
}

// TestDropEnvelope is the scenario suite's headline statistical claim:
// message loss corrupts the conserved mass of the fire-and-forget
// epidemic class (push-sum), while the request/response sampling class
// (capture-recapture) just retransmits and keeps its accuracy. The
// margin is wide — an order of magnitude at 10% drop — so the assertion
// is statistically safe at test scale.
func TestDropEnvelope(t *testing.T) {
	fig, err := Run("robustness-drop", determinismParams(0))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Ranking{}
	for _, r := range fig.Rankings {
		byName[r.Name] = r
	}
	ps, ok1 := byName["pushsum"]
	cr, ok2 := byName["capturerecapture"]
	if !ok1 || !ok2 {
		t.Fatalf("families missing from rankings: %+v", fig.Rankings)
	}
	if cr.MAPE > 25 {
		t.Fatalf("capture-recapture MAPE %.1f%% under drop, want the benign envelope (<= 25%%)", cr.MAPE)
	}
	if ps.MAPE < 2*cr.MAPE {
		t.Fatalf("push-sum MAPE %.1f%% vs capture-recapture %.1f%%: drop did not degrade the epidemic class",
			ps.MAPE, cr.MAPE)
	}
}
