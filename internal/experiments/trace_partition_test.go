package experiments

import (
	"math"
	"testing"

	"p2psize/internal/fault"
)

// TestTracePartitionFold pins the compose-onto-any-trace behavior of a
// Params.Faults partition clause: the same weibull workload with
// partition=0.5@40-60 folded in must (a) actually shrink the monitored
// component during the window, (b) heal back after it, and (c) stay
// byte-identical at every worker count like everything else.
func TestTracePartitionFold(t *testing.T) {
	spec, err := fault.ParseSpec("partition@40-60")
	if err != nil {
		t.Fatal(err)
	}
	p1 := determinismParams(1)
	p1.Faults = spec
	base, err := Run("trace-weibull", p1)
	if err != nil {
		t.Fatal(err)
	}
	p8 := determinismParams(8)
	p8.Faults = spec
	par, err := Run("trace-weibull", p8)
	if err != nil {
		t.Fatal(err)
	}
	if err := figuresEqual(base, par); err != nil {
		t.Fatalf("workers=1 vs workers=8 under folded partition: %v", err)
	}

	benign, err := Run("trace-weibull", determinismParams(1))
	if err != nil {
		t.Fatal(err)
	}
	// Series 0 is the real network size. Inside the window the partitioned
	// run must sit well below the benign run (half the peers split off);
	// near the end the gap must have closed to a small fraction (healed
	// survivors rejoined, minus those whose sessions ended while away).
	truthAt := func(f *Figure, frac float64) float64 {
		s := f.Series[0]
		target := frac * s.X[len(s.X)-1]
		best, dist := 0, math.Inf(1)
		for i, x := range s.X {
			if d := math.Abs(x - target); d < dist {
				best, dist = i, d
			}
		}
		return s.Y[best]
	}
	mid, midBenign := truthAt(base, 0.5), truthAt(benign, 0.5)
	if mid > 0.75*midBenign {
		t.Fatalf("mid-window size %g vs benign %g: partition did not split the component", mid, midBenign)
	}
	end, endBenign := truthAt(base, 0.95), truthAt(benign, 0.95)
	if end < 0.75*endBenign {
		t.Fatalf("post-heal size %g vs benign %g: partition never healed", end, endBenign)
	}
}
