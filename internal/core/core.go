// Package core is the comparative-study harness — the paper's actual
// contribution. It defines the common contract the three candidate
// algorithms are measured against and the run loops that produce every
// figure's data: repeated estimations on a static overlay (with the
// oneShot and lastKruns heuristics) and concurrent estimation processes
// on an overlay under churn, all against the same inputs and the same
// message meter.
package core

import (
	"errors"
	"fmt"
	"math"

	"p2psize/internal/churn"
	"p2psize/internal/overlay"
	"p2psize/internal/stats"
	"p2psize/internal/xrand"
)

// Estimator is the contract shared by the three candidates: one call
// produces one size estimate for the overlay's current state, metering
// all traffic it generates on the network's counter.
type Estimator interface {
	// Name identifies the estimator (and its headline parameters).
	Name() string
	// Estimate runs one estimation process and returns the estimated
	// number of live peers.
	Estimate(net *overlay.Network) (float64, error)
}

// OverlayMutator is the optional capability interface an Estimator
// implements to declare whether its Estimate calls mutate the overlay
// graph (rewire links, as a deployed cyclon-backed epidemic family
// would) or only observe it (walks, polls, probes). Read-only
// estimators can share one overlay clone — and one trace replay — per
// cadence group in the monitor's shared-replay mode.
type OverlayMutator interface {
	// MutatesOverlay reports whether Estimate mutates the overlay.
	MutatesOverlay() bool
}

// MutatesOverlay reports whether e declares itself overlay-mutating.
// Estimators that do not implement OverlayMutator are conservatively
// treated as mutating: an unknown estimator never rides a shared clone.
func MutatesOverlay(e Estimator) bool {
	if m, ok := e.(OverlayMutator); ok {
		return m.MutatesOverlay()
	}
	return true
}

// LastK is the paper's smoothing window: "last10runs is the average of
// the 10 last estimations".
const LastK = 10

// StaticResult holds the outcome of repeated estimations on a static
// overlay.
type StaticResult struct {
	// Name of the estimator that produced the result.
	Name string
	// TrueSize of the overlay during the run.
	TrueSize int
	// Estimates are the raw per-run values (the oneShot curve).
	Estimates []float64
	// Smoothed are the lastK-averaged values (the last10runs curve);
	// entry i averages Estimates[max(0,i-K+1) .. i].
	Smoothed []float64
	// Overheads are messages consumed by each run.
	Overheads []uint64
}

// QualityPct returns the estimates normalized to the paper's quality
// percentage (truth = 100): raw if smoothed is false, lastK otherwise.
func (r *StaticResult) QualityPct(smoothed bool) []float64 {
	src := r.Estimates
	if smoothed {
		src = r.Smoothed
	}
	out := make([]float64, len(src))
	for i, e := range src {
		out[i] = stats.QualityPct(e, float64(r.TrueSize))
	}
	return out
}

// MeanOverhead returns the average per-estimation message cost.
func (r *StaticResult) MeanOverhead() float64 {
	if len(r.Overheads) == 0 {
		return 0
	}
	sum := 0.0
	for _, o := range r.Overheads {
		sum += float64(o)
	}
	return sum / float64(len(r.Overheads))
}

// RunStatic performs runs consecutive estimations on the (unchanging)
// overlay, recording raw estimates, lastK smoothing and per-run overhead.
func RunStatic(e Estimator, net *overlay.Network, runs, lastK int) (*StaticResult, error) {
	if runs < 1 {
		return nil, errors.New("core: RunStatic needs runs >= 1")
	}
	if lastK < 1 {
		lastK = LastK
	}
	res := &StaticResult{
		Name:      e.Name(),
		TrueSize:  net.Size(),
		Estimates: make([]float64, 0, runs),
		Smoothed:  make([]float64, 0, runs),
		Overheads: make([]uint64, 0, runs),
	}
	w := stats.NewWindow(lastK)
	for i := 0; i < runs; i++ {
		snap := net.Counter().Snapshot()
		est, err := e.Estimate(net)
		if err != nil {
			return nil, fmt.Errorf("core: run %d of %s: %w", i, e.Name(), err)
		}
		w.Add(est)
		res.Estimates = append(res.Estimates, est)
		res.Smoothed = append(res.Smoothed, w.Mean())
		res.Overheads = append(res.Overheads, net.Counter().DiffTotal(snap))
	}
	return res, nil
}

// DynamicConfig drives estimators against a churning overlay.
type DynamicConfig struct {
	// Scenario is the churn workload; its TotalSteps set the horizon.
	Scenario churn.Scenario
	// EstimateEvery is the number of churn steps between consecutive
	// estimations (>= 1). The paper's dynamic HopsSampling figures span
	// 1000 time units with periodic restarts; its Sample&Collide figures
	// estimate at every step.
	EstimateEvery int
	// SmoothLastK > 1 applies lastK smoothing to each instance's curve
	// (HopsSampling dynamic figures use last10runs; Sample&Collide ones
	// use the raw oneShot values).
	SmoothLastK int
}

// DynamicResult holds concurrent estimation traces over a churn run.
type DynamicResult struct {
	// Names of the estimator instances.
	Names []string
	// Steps at which estimations happened.
	Steps []float64
	// TrueSizes[i] is the real overlay size at Steps[i].
	TrueSizes []float64
	// Estimates[k][i] is instance k's (possibly smoothed) estimate at
	// Steps[i]; NaN when the instance failed at that point (for example,
	// the overlay fragmented under it).
	Estimates [][]float64
	// Failures[k] counts instance k's failed estimations.
	Failures []int
}

// RunDynamic applies the scenario step by step and has every instance
// produce an estimate each EstimateEvery steps. Instances run against the
// same overlay trajectory, like the three "Estimation #" curves in the
// paper's dynamic figures. Estimation failures record NaN and the run
// continues — precisely the regime (fragmented, shrunken overlays) the
// dynamic comparison is about.
func RunDynamic(instances []Estimator, net *overlay.Network, cfg DynamicConfig, rng *xrand.Rand) (*DynamicResult, error) {
	if len(instances) == 0 {
		return nil, errors.New("core: RunDynamic needs at least one estimator")
	}
	if cfg.EstimateEvery < 1 {
		cfg.EstimateEvery = 1
	}
	res := &DynamicResult{
		Names:     make([]string, len(instances)),
		Estimates: make([][]float64, len(instances)),
		Failures:  make([]int, len(instances)),
	}
	windows := make([]*stats.Window, len(instances))
	for k, e := range instances {
		res.Names[k] = e.Name()
		if cfg.SmoothLastK > 1 {
			windows[k] = stats.NewWindow(cfg.SmoothLastK)
		}
	}
	runner := churn.NewRunner(cfg.Scenario, rng)
	for step := 0; step < cfg.Scenario.TotalSteps; step++ {
		runner.Step(net, step)
		if (step+1)%cfg.EstimateEvery != 0 {
			continue
		}
		res.Steps = append(res.Steps, float64(step+1))
		res.TrueSizes = append(res.TrueSizes, float64(net.Size()))
		for k, e := range instances {
			est, err := e.Estimate(net)
			if err != nil {
				res.Failures[k]++
				res.Estimates[k] = append(res.Estimates[k], math.NaN())
				continue
			}
			if windows[k] != nil {
				windows[k].Add(est)
				est = windows[k].Mean()
			}
			res.Estimates[k] = append(res.Estimates[k], est)
		}
	}
	return res, nil
}

// TrackingError summarizes how well instance k tracked the true size:
// mean |est/true - 1|·100 over its successful estimations.
func (r *DynamicResult) TrackingError(k int) float64 {
	if k < 0 || k >= len(r.Estimates) {
		panic("core: TrackingError index out of range")
	}
	sum, n := 0.0, 0
	for i, est := range r.Estimates[k] {
		if math.IsNaN(est) || r.TrueSizes[i] == 0 {
			continue
		}
		sum += math.Abs(est/r.TrueSizes[i]-1) * 100
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
