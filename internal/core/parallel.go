// Parallel run loops: the deterministic fan-out counterparts of RunStatic
// and RunDynamic. Both produce results that are byte-identical at every
// worker count; RunDynamicParallel is additionally byte-identical to the
// sequential RunDynamic it replaces (asserted in tests), because each
// instance replays the same churn trajectory on its own overlay clone.
package core

import (
	"errors"
	"fmt"
	"math"

	"p2psize/internal/churn"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/parallel"
	"p2psize/internal/stats"
	"p2psize/internal/xrand"
)

// RunStaticParallel fans runs independent estimations over a worker pool.
// The overlay is shared read-only; every run gets its own estimator from
// newEstimator(run) — which must derive all randomness from the run index
// (e.g. via xrand.NewStream) — and its own metering view, so the result
// depends only on (overlay, run index), never on scheduling.
//
// Unlike RunStatic, where one estimator's rng threads through all runs,
// runs here are statistically independent streams; the lastK smoothing is
// applied to the collected estimates in run order, preserving the paper's
// heuristic exactly. Per-run message counts are merged into the overlay's
// counter in run order afterwards.
func RunStaticParallel(newEstimator func(run int) Estimator, net *overlay.Network, runs, lastK, workers int) (*StaticResult, error) {
	if runs < 1 {
		return nil, errors.New("core: RunStaticParallel needs runs >= 1")
	}
	if lastK < 1 {
		lastK = LastK
	}
	type runOut struct {
		est     float64
		counter metrics.Counter
	}
	outs, err := parallel.Map(workers, runs, func(i int) (runOut, error) {
		view := net.View()
		e := newEstimator(i)
		est, err := e.Estimate(view)
		if err != nil {
			return runOut{}, fmt.Errorf("core: run %d of %s: %w", i, e.Name(), err)
		}
		return runOut{est: est, counter: view.Counter().Snapshot()}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &StaticResult{
		Name:      newEstimator(0).Name(),
		TrueSize:  net.Size(),
		Estimates: make([]float64, 0, runs),
		Smoothed:  make([]float64, 0, runs),
		Overheads: make([]uint64, 0, runs),
	}
	w := stats.NewWindow(lastK)
	for _, o := range outs {
		w.Add(o.est)
		res.Estimates = append(res.Estimates, o.est)
		res.Smoothed = append(res.Smoothed, w.Mean())
		res.Overheads = append(res.Overheads, o.counter.Total())
		net.Counter().Merge(&o.counter)
	}
	return res, nil
}

// RunDynamicParallel is RunDynamic with the estimation instances fanned
// out across workers. Each instance gets its own copy-on-write clone of
// the overlay (the overlay is the shared immutable base; each clone
// pays only for the churn it replays) and its own churn runner built
// from newRNG — which must return a fresh, identically seeded generator
// on every call — so all clones replay the exact same trajectory and
// instance k's estimates are what it would have produced in the
// sequential interleaving. Per-instance message counts are merged into
// the overlay's counter in instance order; the overlay itself is left
// unmutated.
func RunDynamicParallel(instances []Estimator, net *overlay.Network, cfg DynamicConfig, newRNG func() *xrand.Rand, workers int) (*DynamicResult, error) {
	if len(instances) == 0 {
		return nil, errors.New("core: RunDynamicParallel needs at least one estimator")
	}
	if cfg.EstimateEvery < 1 {
		cfg.EstimateEvery = 1
	}
	type instOut struct {
		steps     []float64
		trueSizes []float64
		estimates []float64
		failures  int
		counter   *metrics.Counter
	}
	outs, err := parallel.Map(workers, len(instances), func(k int) (instOut, error) {
		clone := net.CloneCOW()
		runner := churn.NewRunner(cfg.Scenario, newRNG())
		var window *stats.Window
		if cfg.SmoothLastK > 1 {
			window = stats.NewWindow(cfg.SmoothLastK)
		}
		o := instOut{counter: clone.Counter()}
		for step := 0; step < cfg.Scenario.TotalSteps; step++ {
			runner.Step(clone, step)
			if (step+1)%cfg.EstimateEvery != 0 {
				continue
			}
			o.steps = append(o.steps, float64(step+1))
			o.trueSizes = append(o.trueSizes, float64(clone.Size()))
			est, err := instances[k].Estimate(clone)
			if err != nil {
				o.failures++
				o.estimates = append(o.estimates, math.NaN())
				continue
			}
			if window != nil {
				window.Add(est)
				est = window.Mean()
			}
			o.estimates = append(o.estimates, est)
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	res := &DynamicResult{
		Names:     make([]string, len(instances)),
		Estimates: make([][]float64, len(instances)),
		Failures:  make([]int, len(instances)),
	}
	res.Steps = outs[0].steps
	res.TrueSizes = outs[0].trueSizes
	for k, o := range outs {
		// Every clone must have replayed the identical trajectory; a
		// divergence means newRNG violated its contract. (Best-effort:
		// the check sees sizes, which churn rates fix deterministically
		// in most scenarios even under a divergent rng.)
		for i := range o.trueSizes {
			if o.trueSizes[i] != outs[0].trueSizes[i] {
				return nil, fmt.Errorf("core: churn replay diverged at instance %d, step %g (%g != %g); newRNG must return identically seeded generators",
					k, o.steps[i], o.trueSizes[i], outs[0].trueSizes[i])
			}
		}
		res.Names[k] = instances[k].Name()
		res.Estimates[k] = o.estimates
		res.Failures[k] = o.failures
		net.Counter().Merge(o.counter)
	}
	return res, nil
}
