package core

import (
	"math"
	"strings"
	"testing"

	"p2psize/internal/churn"
	"p2psize/internal/graph"
	"p2psize/internal/hopssampling"
	"p2psize/internal/overlay"
	"p2psize/internal/samplecollide"
	"p2psize/internal/xrand"
)

func parallelTestNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

func scFactory(seed uint64) func(run int) Estimator {
	return func(run int) Estimator {
		return samplecollide.New(samplecollide.Config{T: 10, L: 20},
			xrand.NewStream(seed, uint64(run)))
	}
}

func TestRunStaticParallelWorkerInvariance(t *testing.T) {
	const runs = 16
	results := make([]*StaticResult, 0, 3)
	var counters []uint64
	for _, workers := range []int{1, 4, 16} {
		net := parallelTestNet(1000, 5)
		res, err := RunStaticParallel(scFactory(77), net, runs, LastK, workers)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
		counters = append(counters, net.Counter().Total())
	}
	want := results[0]
	if len(want.Estimates) != runs || len(want.Smoothed) != runs || len(want.Overheads) != runs {
		t.Fatalf("result shape: %d/%d/%d", len(want.Estimates), len(want.Smoothed), len(want.Overheads))
	}
	for wi, res := range results[1:] {
		for i := range want.Estimates {
			if math.Float64bits(res.Estimates[i]) != math.Float64bits(want.Estimates[i]) ||
				math.Float64bits(res.Smoothed[i]) != math.Float64bits(want.Smoothed[i]) ||
				res.Overheads[i] != want.Overheads[i] {
				t.Fatalf("worker setting %d diverges at run %d", wi, i)
			}
		}
	}
	for _, c := range counters[1:] {
		if c != counters[0] {
			t.Fatalf("merged counter totals differ: %v", counters)
		}
	}
}

func TestRunStaticParallelSmoothingMatchesSequentialWindow(t *testing.T) {
	net := parallelTestNet(800, 9)
	res, err := RunStaticParallel(scFactory(12), net, 25, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Estimates {
		lo := 0
		if i >= 10 {
			lo = i - 9
		}
		sum := 0.0
		for _, v := range res.Estimates[lo : i+1] {
			sum += v
		}
		want := sum / float64(i+1-lo)
		if math.Abs(res.Smoothed[i]-want) > 1e-9*want {
			t.Fatalf("smoothed[%d] = %g, want %g", i, res.Smoothed[i], want)
		}
	}
}

func TestRunStaticParallelPropagatesLowestRunError(t *testing.T) {
	net := parallelTestNet(200, 2)
	// A tiny sample budget makes every run fail; the reported run index
	// must be 0 at any worker count.
	factory := func(run int) Estimator {
		return samplecollide.New(samplecollide.Config{T: 10, L: 50, MaxSamples: 1},
			xrand.NewStream(4, uint64(run)))
	}
	for _, workers := range []int{1, 8} {
		_, err := RunStaticParallel(factory, net, 10, LastK, workers)
		if err == nil {
			t.Fatal("expected budget error")
		}
		if !strings.Contains(err.Error(), "run 0 of") {
			t.Fatalf("workers=%d: err %q does not name run 0", workers, err)
		}
	}
	if _, err := RunStaticParallel(scFactory(1), net, 0, LastK, 1); err == nil {
		t.Fatal("runs=0 must error")
	}
}

// TestRunDynamicParallelMatchesSequential pins the strongest guarantee:
// the parallel clone-replay engine reproduces RunDynamic bit for bit,
// because every instance sees the identical overlay trajectory and its
// own rng consumes the same draws as in the sequential interleaving.
func TestRunDynamicParallelMatchesSequential(t *testing.T) {
	const n = 800
	cfg := DynamicConfig{
		Scenario:      churn.Catastrophic(n, 60),
		EstimateEvery: 2,
		SmoothLastK:   5,
	}
	build := func() []Estimator {
		return []Estimator{
			samplecollide.New(samplecollide.Config{T: 10, L: 20}, xrand.New(100)),
			hopssampling.New(hopssampling.Default(), xrand.New(101)),
			samplecollide.New(samplecollide.Config{T: 10, L: 10}, xrand.New(102)),
		}
	}
	seqNet := parallelTestNet(n, 6)
	seq, err := RunDynamic(build(), seqNet, cfg, xrand.New(55))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		parNet := parallelTestNet(n, 6)
		par, err := RunDynamicParallel(build(), parNet, cfg,
			func() *xrand.Rand { return xrand.New(55) }, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Steps) != len(seq.Steps) {
			t.Fatalf("workers=%d: %d steps vs %d", workers, len(par.Steps), len(seq.Steps))
		}
		for i := range seq.Steps {
			if par.Steps[i] != seq.Steps[i] || par.TrueSizes[i] != seq.TrueSizes[i] {
				t.Fatalf("workers=%d: trajectory diverges at %d", workers, i)
			}
		}
		for k := range seq.Estimates {
			if par.Names[k] != seq.Names[k] || par.Failures[k] != seq.Failures[k] {
				t.Fatalf("workers=%d: instance %d metadata differs", workers, k)
			}
			for i := range seq.Estimates[k] {
				if math.Float64bits(par.Estimates[k][i]) != math.Float64bits(seq.Estimates[k][i]) {
					t.Fatalf("workers=%d: instance %d diverges at %d: %v vs %v",
						workers, k, i, par.Estimates[k][i], seq.Estimates[k][i])
				}
			}
		}
		// The sequential run mutates its overlay; the parallel run must
		// leave the input overlay untouched and merge the same traffic.
		if parNet.Size() != n {
			t.Fatalf("workers=%d: input overlay mutated to %d nodes", workers, parNet.Size())
		}
		if parNet.Counter().Total() != seqNet.Counter().Total() {
			t.Fatalf("workers=%d: merged traffic %d vs sequential %d",
				workers, parNet.Counter().Total(), seqNet.Counter().Total())
		}
	}
}

func TestRunDynamicParallelArgErrors(t *testing.T) {
	net := parallelTestNet(500, 8)
	if _, err := RunDynamicParallel(nil, net, DynamicConfig{}, nil, 1); err == nil {
		t.Fatal("empty instance list must error")
	}
}
