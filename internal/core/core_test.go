package core

import (
	"errors"
	"math"
	"testing"

	"p2psize/internal/churn"
	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/samplecollide"
	"p2psize/internal/xrand"
)

func hetNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

// fakeEstimator returns scripted estimates and meters a fixed cost.
type fakeEstimator struct {
	name string
	vals []float64
	errs []error
	i    int
	cost uint64
}

func (f *fakeEstimator) Name() string { return f.name }

func (f *fakeEstimator) Estimate(net *overlay.Network) (float64, error) {
	idx := f.i
	f.i++
	net.SendN(metrics.KindControl, f.cost)
	if f.errs != nil && f.errs[idx%len(f.errs)] != nil {
		return 0, f.errs[idx%len(f.errs)]
	}
	return f.vals[idx%len(f.vals)], nil
}

func TestRunStaticSmoothingAndOverhead(t *testing.T) {
	net := hetNet(100, 1)
	fe := &fakeEstimator{name: "fake", vals: []float64{80, 120, 100}, cost: 7}
	res, err := RunStatic(fe, net, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "fake" || res.TrueSize != 100 {
		t.Fatalf("header: %+v", res)
	}
	wantRaw := []float64{80, 120, 100, 80, 120, 100}
	for i, w := range wantRaw {
		if res.Estimates[i] != w {
			t.Fatalf("Estimates[%d] = %g", i, res.Estimates[i])
		}
	}
	// Window of 3: entry 4 averages {100, 80, 120} = 100.
	if res.Smoothed[0] != 80 || math.Abs(res.Smoothed[1]-100) > 1e-12 || math.Abs(res.Smoothed[4]-100) > 1e-12 {
		t.Fatalf("Smoothed = %v", res.Smoothed)
	}
	for i, o := range res.Overheads {
		if o != 7 {
			t.Fatalf("Overheads[%d] = %d", i, o)
		}
	}
	if res.MeanOverhead() != 7 {
		t.Fatalf("MeanOverhead = %g", res.MeanOverhead())
	}
}

func TestRunStaticQualityPct(t *testing.T) {
	net := hetNet(200, 2)
	fe := &fakeEstimator{name: "fake", vals: []float64{100, 300}}
	res, err := RunStatic(fe, net, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	q := res.QualityPct(false)
	if q[0] != 50 || q[1] != 150 {
		t.Fatalf("QualityPct = %v", q)
	}
	qs := res.QualityPct(true)
	if qs[1] != 100 {
		t.Fatalf("smoothed QualityPct = %v", qs)
	}
}

func TestRunStaticPropagatesError(t *testing.T) {
	net := hetNet(10, 3)
	boom := errors.New("boom")
	fe := &fakeEstimator{name: "fake", vals: []float64{1}, errs: []error{nil, boom}}
	if _, err := RunStatic(fe, net, 5, 10); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunStaticValidation(t *testing.T) {
	net := hetNet(10, 4)
	if _, err := RunStatic(&fakeEstimator{name: "f", vals: []float64{1}}, net, 0, 10); err == nil {
		t.Fatal("runs=0 accepted")
	}
}

func TestRunStaticWithRealEstimator(t *testing.T) {
	const n = 1000
	net := hetNet(n, 5)
	e := samplecollide.New(samplecollide.Config{T: 10, L: 30}, xrand.New(6))
	res, err := RunStatic(e, net, 15, LastK)
	if err != nil {
		t.Fatal(err)
	}
	// Smoothed tail should be well within 25% of truth.
	last := res.Smoothed[len(res.Smoothed)-1]
	if math.Abs(last-n)/n > 0.25 {
		t.Fatalf("smoothed estimate %.0f, truth %d", last, n)
	}
	if res.MeanOverhead() <= 0 {
		t.Fatal("no overhead metered")
	}
}

func TestRunDynamicTracksTrueSize(t *testing.T) {
	const n = 500
	net := hetNet(n, 7)
	// Perfect estimator: always reports the exact current size.
	perfect := &perfectEstimator{}
	cfg := DynamicConfig{
		Scenario:      churn.Growing(n, 50, 0.5),
		EstimateEvery: 1,
	}
	res, err := RunDynamic([]Estimator{perfect}, net, cfg, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 50 || len(res.TrueSizes) != 50 {
		t.Fatalf("points = %d", len(res.Steps))
	}
	for i := range res.Steps {
		if res.Estimates[0][i] != res.TrueSizes[i] {
			t.Fatalf("point %d: est %g != truth %g", i, res.Estimates[0][i], res.TrueSizes[i])
		}
	}
	if te := res.TrackingError(0); te != 0 {
		t.Fatalf("TrackingError = %g", te)
	}
	// Growth actually happened.
	if res.TrueSizes[len(res.TrueSizes)-1] <= res.TrueSizes[0] {
		t.Fatal("scenario did not grow the overlay")
	}
}

type perfectEstimator struct{}

func (perfectEstimator) Name() string { return "perfect" }
func (perfectEstimator) Estimate(net *overlay.Network) (float64, error) {
	return float64(net.Size()), nil
}

func TestRunDynamicEstimateEvery(t *testing.T) {
	net := hetNet(100, 9)
	cfg := DynamicConfig{Scenario: churn.Static(40), EstimateEvery: 10}
	res, err := RunDynamic([]Estimator{perfectEstimator{}}, net, cfg, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Steps))
	}
	if res.Steps[0] != 10 || res.Steps[3] != 40 {
		t.Fatalf("Steps = %v", res.Steps)
	}
}

func TestRunDynamicSmoothing(t *testing.T) {
	net := hetNet(100, 11)
	fe := &fakeEstimator{name: "alt", vals: []float64{50, 150}}
	cfg := DynamicConfig{Scenario: churn.Static(6), EstimateEvery: 1, SmoothLastK: 2}
	res, err := RunDynamic([]Estimator{fe}, net, cfg, xrand.New(12))
	if err != nil {
		t.Fatal(err)
	}
	// After the first point (50), every window of 2 averages {50,150}=100.
	if res.Estimates[0][0] != 50 {
		t.Fatalf("first = %g", res.Estimates[0][0])
	}
	for i := 1; i < 6; i++ {
		if res.Estimates[0][i] != 100 {
			t.Fatalf("smoothed[%d] = %g", i, res.Estimates[0][i])
		}
	}
}

func TestRunDynamicFailuresBecomeNaN(t *testing.T) {
	net := hetNet(100, 13)
	boom := errors.New("fragmented")
	fe := &fakeEstimator{name: "flaky", vals: []float64{100}, errs: []error{nil, boom}}
	cfg := DynamicConfig{Scenario: churn.Static(4), EstimateEvery: 1}
	res, err := RunDynamic([]Estimator{fe}, net, cfg, xrand.New(14))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures[0] != 2 {
		t.Fatalf("Failures = %d", res.Failures[0])
	}
	if !math.IsNaN(res.Estimates[0][1]) || !math.IsNaN(res.Estimates[0][3]) {
		t.Fatalf("Estimates = %v", res.Estimates[0])
	}
	// TrackingError skips NaN points.
	if te := res.TrackingError(0); te != 0 {
		t.Fatalf("TrackingError = %g", te)
	}
}

func TestRunDynamicNoEstimators(t *testing.T) {
	net := hetNet(10, 15)
	if _, err := RunDynamic(nil, net, DynamicConfig{Scenario: churn.Static(1)}, xrand.New(16)); err == nil {
		t.Fatal("empty instance list accepted")
	}
}

func TestTrackingErrorAllFailed(t *testing.T) {
	r := &DynamicResult{
		TrueSizes: []float64{100},
		Estimates: [][]float64{{math.NaN()}},
	}
	if te := r.TrackingError(0); !math.IsNaN(te) {
		t.Fatalf("TrackingError = %g, want NaN", te)
	}
}

func TestTrackingErrorOutOfRangePanics(t *testing.T) {
	r := &DynamicResult{}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range TrackingError did not panic")
		}
	}()
	r.TrackingError(0)
}
