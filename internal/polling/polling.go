// Package polling implements the plain probabilistic-polling baseline
// from the study's background section (§II): the initiator broadcasts a
// probe carrying a response probability p and infers the size from the
// number of replies, N̂ = replies/p (+1 for itself) — the approach of
// Bawa et al. and of Friedman & Towsley's multicast membership
// estimation. The comparative study picked HopsSampling over it because
// distance-dependent response probabilities "could lower message
// overhead compared to simple probabilistic response, as fewer 'far
// nodes' should reply with messages that will cross an important part of
// the overlay"; this package makes that comparison runnable.
//
// The broadcast is a flood over the overlay links (every node forwards
// once to all neighbors), so unlike the HopsSampling gossip it reaches
// the initiator's entire component, at a cost of 2|E| spread messages.
// Replies cost their hop distance when routed (the default, comparable
// to HopsSampling's accounting) or one message when direct.
package polling

import (
	"errors"
	"fmt"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

// Config parameterizes the polling estimator.
type Config struct {
	// ResponseProb is the probability p with which every probed node
	// replies (0 < p <= 1).
	ResponseProb float64
	// RoutedReplies prices each reply at its hop distance instead of 1.
	RoutedReplies bool
}

// Default returns a 1% response probability with routed replies — a
// light-touch poll for large overlays.
func Default() Config { return Config{ResponseProb: 0.01, RoutedReplies: true} }

func (c *Config) validate() error {
	if c.ResponseProb <= 0 || c.ResponseProb > 1 {
		return errors.New("polling: ResponseProb must be in (0, 1]")
	}
	return nil
}

// Estimator runs probabilistic-polling estimations. It satisfies the
// core.Estimator contract.
type Estimator struct {
	cfg Config
	rng *xrand.Rand
}

// New builds an Estimator; it panics on invalid configuration.
func New(cfg Config, rng *xrand.Rand) *Estimator {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("polling: nil rng")
	}
	return &Estimator{cfg: cfg, rng: rng}
}

// Name identifies the estimator in reports.
func (e *Estimator) Name() string {
	return fmt.Sprintf("polling(p=%g)", e.cfg.ResponseProb)
}

// MutatesOverlay reports false: polling only broadcasts and counts
// (core.OverlayMutator), so the monitor may run it on a shared clone.
func (e *Estimator) MutatesOverlay() bool { return false }

// Config returns the estimator's configuration.
func (e *Estimator) Config() Config { return e.cfg }

// ErrEmptyOverlay is returned when no live peer can initiate.
var ErrEmptyOverlay = errors.New("polling: empty overlay")

// Estimate floods a probe from a random initiator and extrapolates the
// size from the probabilistic replies.
func (e *Estimator) Estimate(net *overlay.Network) (float64, error) {
	initiator, ok := net.RandomPeer(e.rng)
	if !ok {
		return 0, ErrEmptyOverlay
	}
	return e.EstimateFrom(net, initiator)
}

// EstimateFrom floods a probe from the given initiator.
func (e *Estimator) EstimateFrom(net *overlay.Network, initiator graph.NodeID) (float64, error) {
	if !net.Alive(initiator) {
		return 0, fmt.Errorf("polling: initiator %d is not alive", initiator)
	}
	// Flood: classic BFS over overlay links. Every node forwards the
	// probe once to each neighbor, so the spread costs exactly 2|E|
	// messages within the initiator's component and records hop
	// distances for reply routing.
	g := net.Graph()
	// Asymmetric (NAT-limited) connectivity: a probe forwarded to a
	// fated peer is sent — and metered — but lost at the NAT, so the
	// peer never learns of the poll, never forwards and never replies
	// (dist stays -1). Replies are exempt: they retrace the flood path
	// the initiator's probe established. Benign policies answer false
	// with zero extra draws.
	pol := net.FaultPolicy()
	dist := make([]int32, g.NumIDs())
	for i := range dist {
		dist[i] = -1
	}
	dist[initiator] = 0
	queue := []graph.NodeID{initiator}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			net.SendTo(v, metrics.KindGossipSpread)
			if pol != nil && pol.Unreachable(v) {
				continue // sent, lost at the target's NAT
			}
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	// Probabilistic replies.
	total := 1.0
	p := e.cfg.ResponseProb
	for i := 0; i < g.NumAlive(); i++ {
		id := g.AliveAt(i)
		if id == initiator || dist[id] < 0 {
			continue
		}
		if !e.rng.Bernoulli(p) {
			continue
		}
		if e.cfg.RoutedReplies {
			net.SendN(metrics.KindReply, uint64(dist[id]))
		} else {
			net.Send(metrics.KindReply)
		}
		total += 1 / p
	}
	return total, nil
}
