package polling

import (
	"errors"
	"math"
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

func hetNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{{ResponseProb: 0}, {ResponseProb: -0.5}, {ResponseProb: 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg, xrand.New(1))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil rng did not panic")
			}
		}()
		New(Default(), nil)
	}()
}

func TestName(t *testing.T) {
	if got := New(Config{ResponseProb: 0.05}, xrand.New(1)).Name(); got != "polling(p=0.05)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestUnbiasedEstimate(t *testing.T) {
	// The flood reaches everyone, so with a decent p the estimate
	// concentrates tightly around N (std ≈ sqrt(N(1-p)/p) ≈ 435 for
	// p=0.05, N=10000 → a few runs average well within 5%).
	const n = 10000
	net := hetNet(n, 2)
	e := New(Config{ResponseProb: 0.05}, xrand.New(3))
	sum := 0.0
	const runs = 10
	for i := 0; i < runs; i++ {
		est, err := e.Estimate(net)
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	if mean := sum / runs; math.Abs(mean-n)/n > 0.05 {
		t.Fatalf("mean estimate %.0f, truth %d", mean, n)
	}
}

func TestRepliesScaleWithP(t *testing.T) {
	const n = 5000
	replies := func(p float64) uint64 {
		net := hetNet(n, 4)
		e := New(Config{ResponseProb: p, RoutedReplies: false}, xrand.New(5))
		if _, err := e.Estimate(net); err != nil {
			t.Fatal(err)
		}
		return net.Counter().Count(metrics.KindReply)
	}
	lo, hi := replies(0.01), replies(0.2)
	wantRatio := 20.0
	ratio := float64(hi) / float64(lo)
	if ratio < wantRatio/2 || ratio > wantRatio*2 {
		t.Fatalf("reply ratio = %.1f, want ≈%.0f", ratio, wantRatio)
	}
}

func TestSpreadCostIsTwoE(t *testing.T) {
	const n = 3000
	net := hetNet(n, 6)
	edges := net.Graph().NumEdges()
	e := New(Config{ResponseProb: 0.01, RoutedReplies: false}, xrand.New(7))
	if _, err := e.Estimate(net); err != nil {
		t.Fatal(err)
	}
	spread := net.Counter().Count(metrics.KindGossipSpread)
	if spread != uint64(2*edges) {
		t.Fatalf("spread = %d messages, want 2|E| = %d", spread, 2*edges)
	}
}

func TestRoutedRepliesCostMore(t *testing.T) {
	const n = 5000
	cost := func(routed bool) uint64 {
		net := hetNet(n, 8)
		e := New(Config{ResponseProb: 0.1, RoutedReplies: routed}, xrand.New(9))
		if _, err := e.Estimate(net); err != nil {
			t.Fatal(err)
		}
		return net.Counter().Count(metrics.KindReply)
	}
	if direct, routed := cost(false), cost(true); routed <= direct {
		t.Fatalf("routed %d not above direct %d", routed, direct)
	}
}

func TestP1CountsExactly(t *testing.T) {
	// p=1: everyone replies once; the estimate is exactly the component
	// size.
	const n = 500
	net := hetNet(n, 10)
	e := New(Config{ResponseProb: 1}, xrand.New(11))
	est, err := e.Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	if est != float64(graph.LargestComponent(net.Graph())) {
		t.Fatalf("p=1 estimate %.0f, component %d", est, graph.LargestComponent(net.Graph()))
	}
}

func TestSeesOnlyOwnComponent(t *testing.T) {
	g := graph.NewWithNodes(20)
	for i := graph.NodeID(0); i < 9; i++ {
		g.AddEdge(i, i+1)
	}
	for i := graph.NodeID(10); i < 19; i++ {
		g.AddEdge(i, i+1)
	}
	net := overlay.New(g, 10, nil)
	e := New(Config{ResponseProb: 1}, xrand.New(12))
	est, err := e.EstimateFrom(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est != 10 {
		t.Fatalf("estimate %.0f, component size 10", est)
	}
}

func TestEmptyAndDeadInitiator(t *testing.T) {
	g := graph.NewWithNodes(1)
	g.RemoveNode(0)
	net := overlay.New(g, 10, nil)
	if _, err := New(Default(), xrand.New(13)).Estimate(net); !errors.Is(err, ErrEmptyOverlay) {
		t.Fatalf("err = %v", err)
	}
	net2 := hetNet(10, 14)
	id, _ := net2.RandomPeer(xrand.New(15))
	net2.Leave(id)
	if _, err := New(Default(), xrand.New(16)).EstimateFrom(net2, id); err == nil {
		t.Fatal("dead initiator accepted")
	}
}

func TestIsolatedInitiator(t *testing.T) {
	g := graph.NewWithNodes(3)
	g.AddEdge(1, 2)
	net := overlay.New(g, 10, nil)
	est, err := New(Config{ResponseProb: 1}, xrand.New(17)).EstimateFrom(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est != 1 {
		t.Fatalf("isolated initiator estimate %.0f, want 1", est)
	}
}
