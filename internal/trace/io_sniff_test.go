package trace

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"

	"p2psize/internal/xrand"
)

// sniffTrace builds a small reference trace for the ReadFile dispatch
// tests.
func sniffTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := Generate(Config{
		Name:    "sniff",
		Initial: 50,
		Horizon: 20,
		Session: SessionDist{Kind: Exponential, Mean: 10},
	}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func writeFile(t *testing.T, dir, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func gzipped(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	gw := gzip.NewWriter(&buf)
	if _, err := gw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadFileSniffsContentOverExtension is the regression test for the
// extension-only dispatch: gzip is detected by magic bytes and the
// CSV/JSON form by content, so misnamed files load correctly instead of
// failing with a reader-mismatch parse error.
func TestReadFileSniffsContentOverExtension(t *testing.T) {
	ref := sniffTrace(t)
	var csvBuf, jsonBuf bytes.Buffer
	if err := ref.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := ref.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cases := []struct {
		name string
		data []byte
	}{
		{"normal.csv", csvBuf.Bytes()},
		{"normal.json", jsonBuf.Bytes()},
		{"suffixed.csv.gz", gzipped(t, csvBuf.Bytes())},
		// A gzipped trace without any .gz suffix: the old dispatch fed
		// compressed bytes straight to the JSON/CSV readers.
		{"gzipped-but-named.csv", gzipped(t, csvBuf.Bytes())},
		{"gzipped-but-named.json", gzipped(t, jsonBuf.Bytes())},
		{"gzipped-no-hint.bin", gzipped(t, jsonBuf.Bytes())},
		// A CSV renamed .txt: the old dispatch fell through to the JSON
		// reader and failed with a confusing decode error.
		{"renamed-csv.txt", csvBuf.Bytes()},
		{"renamed-json.dat", jsonBuf.Bytes()},
		// JSON with leading whitespace still sniffs as JSON.
		{"padded.trace", append([]byte("  \n\t"), jsonBuf.Bytes()...)},
		// Misnamed the other way: plain CSV under a .gz suffix reads as
		// CSV (content says not compressed, stripped extension says CSV).
		{"plain.csv.gz", csvBuf.Bytes()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := ReadFile(writeFile(t, dir, c.name, c.data))
			if err != nil {
				t.Fatalf("ReadFile: %v", err)
			}
			if got.Initial != ref.Initial || got.Horizon != ref.Horizon ||
				len(got.Events) != len(ref.Events) {
				t.Fatalf("round trip mismatch: got %d initial / %g horizon / %d events",
					got.Initial, got.Horizon, len(got.Events))
			}
			for i, ev := range got.Events {
				if ev != ref.Events[i] {
					t.Fatalf("event %d differs: %+v vs %+v", i, ev, ref.Events[i])
				}
			}
		})
	}
}

func TestReadFileEmptyAndGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadFile(writeFile(t, dir, "empty.json", nil)); err == nil {
		t.Fatal("empty file accepted")
	}
	if _, err := ReadFile(writeFile(t, dir, "noise.csv", []byte("!!not a trace!!"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// A truncated gzip header (one magic byte) must not be mistaken
	// for compressed data.
	if _, err := ReadFile(writeFile(t, dir, "half-magic.json", []byte{0x1f})); err == nil {
		t.Fatal("half gzip magic accepted as a trace")
	}
}
