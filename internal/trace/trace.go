// Package trace models churn as a first-class, timestamped join/leave
// event stream instead of the per-step rates of package churn. The
// paper's dynamic scenarios (§IV-D) are stylized ramps and shocks; real
// deployments exhibit heavy-tailed session lengths and diurnal load
// (measured for IPFS and earlier systems), which a rate-based scenario
// cannot express. A Trace captures the full session structure — who
// arrives when and how long they stay — so the same workload can be
// generated synthetically (Poisson arrivals × Weibull/lognormal/
// exponential/Pareto sessions, diurnal modulation, flash crowds, mass
// failures), loaded from an empirical measurement, replayed onto an
// overlay, or down-converted to a churn.Scenario.
//
// Determinism contract: a Trace is plain data; generation and all
// compositors draw exclusively from the caller's *xrand.Rand, so equal
// seeds give byte-identical traces, and replays of one trace onto equal
// overlays with equally seeded generators give byte-identical overlays.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"p2psize/internal/churn"
)

// Op is the type of a trace event.
type Op uint8

const (
	// Join is a session arrival.
	Join Op = iota
	// Leave is a session departure.
	Leave
)

// String returns "join" or "leave".
func (o Op) String() string {
	switch o {
	case Join:
		return "join"
	case Leave:
		return "leave"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Event is one timestamped membership change. Session identifies which
// peer the event concerns: a session joins at most once, leaves at most
// once, and leaves only after it joined. Sessions 0..Initial-1 are
// present from time 0 and have no Join event.
type Event struct {
	// T is the simulated time of the event, in [0, Horizon].
	T float64
	// Session is the session (peer lifetime) the event belongs to.
	Session int
	// Op is Join or Leave.
	Op Op
}

// Trace is a churn workload over a fixed horizon of simulated time.
type Trace struct {
	// Name labels the workload in reports.
	Name string
	// Initial is the number of sessions present at time 0.
	Initial int
	// Horizon is the duration of the trace in simulated time units.
	Horizon float64
	// Events holds the membership changes, sorted by (T, Session, Op).
	Events []Event
}

// Normalize sorts the events into the canonical (T, Session, Op) order
// (eventLess — the same comparator the parallel generator's merge
// uses). Generators and compositors call it before returning; callers
// that build Events by hand should too.
func (t *Trace) Normalize() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		return eventLess(t.Events[i], t.Events[j])
	})
}

// Validate checks the structural invariants: positive horizon, events
// sorted and inside the horizon, every session joining before leaving
// (initial sessions never join), each at most once.
func (t *Trace) Validate() error {
	if t.Initial < 0 {
		return errors.New("trace: negative Initial")
	}
	// NaN compares false against everything, so an explicit finiteness
	// check is required: a "#horizon NaN" header (a seed-corpus case of
	// FuzzReadTraceCSV) would otherwise slip through every range test
	// below and corrupt downstream arithmetic (replay cursors,
	// ToScenario bucket indices).
	if math.IsNaN(t.Horizon) || math.IsInf(t.Horizon, 0) {
		return fmt.Errorf("trace: Horizon %g is not finite", t.Horizon)
	}
	if t.Horizon <= 0 {
		return errors.New("trace: Horizon must be positive")
	}
	joined := make(map[int]bool)
	left := make(map[int]bool)
	var prev Event
	for i, ev := range t.Events {
		if math.IsNaN(ev.T) || math.IsInf(ev.T, 0) {
			return fmt.Errorf("trace: event %d time %g is not finite", i, ev.T)
		}
		if ev.T < 0 || ev.T > t.Horizon {
			return fmt.Errorf("trace: event %d at t=%g outside [0, %g]", i, ev.T, t.Horizon)
		}
		if i > 0 && (ev.T < prev.T || (ev.T == prev.T && ev.Session < prev.Session)) {
			return fmt.Errorf("trace: events not sorted at index %d (call Normalize)", i)
		}
		prev = ev
		if ev.Session < 0 {
			return fmt.Errorf("trace: event %d has negative session", i)
		}
		switch ev.Op {
		case Join:
			if ev.Session < t.Initial {
				return fmt.Errorf("trace: initial session %d joins at t=%g", ev.Session, ev.T)
			}
			if joined[ev.Session] {
				return fmt.Errorf("trace: session %d joins twice", ev.Session)
			}
			joined[ev.Session] = true
		case Leave:
			if ev.Session >= t.Initial && !joined[ev.Session] {
				return fmt.Errorf("trace: session %d leaves before joining", ev.Session)
			}
			if left[ev.Session] {
				return fmt.Errorf("trace: session %d leaves twice", ev.Session)
			}
			left[ev.Session] = true
		default:
			return fmt.Errorf("trace: event %d has unknown op %d", i, ev.Op)
		}
	}
	return nil
}

// Sessions returns the total number of distinct sessions referenced by
// the trace (initial population plus arrivals).
func (t *Trace) Sessions() int {
	n := t.Initial
	for _, ev := range t.Events {
		if ev.Session >= n {
			n = ev.Session + 1
		}
	}
	return n
}

// Joins returns the number of Join events.
func (t *Trace) Joins() int {
	n := 0
	for _, ev := range t.Events {
		if ev.Op == Join {
			n++
		}
	}
	return n
}

// Leaves returns the number of Leave events.
func (t *Trace) Leaves() int {
	n := 0
	for _, ev := range t.Events {
		if ev.Op == Leave {
			n++
		}
	}
	return n
}

// SizeAt returns the population after all events with T <= at have been
// applied to the initial population.
func (t *Trace) SizeAt(at float64) int {
	n := t.Initial
	for _, ev := range t.Events {
		if ev.T > at {
			break
		}
		if ev.Op == Join {
			n++
		} else {
			n--
		}
	}
	return n
}

// aliveAt returns the sorted session ids alive just after time at.
func (t *Trace) aliveAt(at float64) []int {
	alive := make(map[int]bool, t.Initial)
	for s := 0; s < t.Initial; s++ {
		alive[s] = true
	}
	for _, ev := range t.Events {
		if ev.T > at {
			break
		}
		alive[ev.Session] = ev.Op == Join
	}
	out := make([]int, 0, len(alive))
	for s, ok := range alive {
		if ok {
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// ToScenario down-converts the trace to a churn.Scenario over the given
// number of steps: step s covers the time window (s·dt, (s+1)·dt] with
// dt = Horizon/steps, and receives one discrete churn.Event carrying the
// exact join and leave counts of that window. The conversion preserves
// aggregate volume per step but drops session identity — which peer
// leaves is re-drawn by the churn runner — so it suits harnesses built
// on churn.Scenario, while Player preserves the trace exactly.
func (t *Trace) ToScenario(steps int) (churn.Scenario, error) {
	if steps < 1 {
		return churn.Scenario{}, errors.New("trace: ToScenario needs steps >= 1")
	}
	if err := t.Validate(); err != nil {
		return churn.Scenario{}, err
	}
	dt := t.Horizon / float64(steps)
	adds := make([]int, steps)
	drops := make([]int, steps)
	for _, ev := range t.Events {
		s := int(ev.T / dt)
		if s >= steps {
			s = steps - 1
		}
		if ev.Op == Join {
			adds[s]++
		} else {
			drops[s]++
		}
	}
	sc := churn.Scenario{Name: t.Name + "-scenario", TotalSteps: steps}
	for s := 0; s < steps; s++ {
		if adds[s] == 0 && drops[s] == 0 {
			continue
		}
		sc.Events = append(sc.Events, churn.Event{
			Step:        s,
			AddCount:    adds[s],
			RemoveCount: drops[s],
		})
	}
	return sc, nil
}
