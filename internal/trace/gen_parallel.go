package trace

// Parallel trace generation. Generate draws every session length from
// one sequential rng, which caps a 1M-node, multi-turnover trace (~10M
// events) at single-core speed. GenerateParallel removes the bottleneck
// by restructuring the randomness: the arrival *schedule* stays a
// sequential Poisson chain (one Exp draw per candidate — cheap), but
// every session's lifetime comes from its own (seed, session) stream,
// so the expensive part — drawing lifetimes and materializing events —
// fans out over fixed-size session chunks on the worker pool. Each
// chunk sorts its events locally and the chunks are merged
// deterministically by (time, session, op), the same canonical order
// Normalize produces.
//
// Determinism contract: chunk boundaries are a pure function of the
// session count, per-session streams are a pure function of (seed,
// session id), and the merge order is fixed — so equal (Config, seed)
// give byte-identical traces at every workers setting. The draw scheme
// differs from Generate's single-stream sequence, so the two generators
// produce different (equally distributed) traces for the same seed;
// callers pick one and stay with it.

import (
	"math"
	"sort"

	"p2psize/internal/parallel"
	"p2psize/internal/xrand"
)

// genChunk is the fixed session-chunk size of the parallel generator —
// part of nothing: since the merged output is fully sorted, the chunk
// size only shapes scheduling granularity. It is a constant anyway so
// the per-chunk sort/merge pattern never depends on the machine.
const genChunk = 8192

// eventLess is the canonical (T, Session, Op) order; Normalize sorts by
// it and the parallel generator's merge depends on sharing exactly it.
func eventLess(a, b Event) bool {
	if a.T != b.T {
		return a.T < b.T
	}
	if a.Session != b.Session {
		return a.Session < b.Session
	}
	return a.Op < b.Op
}

// GenerateParallel builds a trace of the same workload model as
// Generate with the session work fanned out across workers (0 = all
// CPUs). Output is byte-identical at every workers setting; see the
// package comment above for how that squares with parallelism.
func GenerateParallel(cfg Config, seed uint64, workers int) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tr := &Trace{Name: cfg.Name, Initial: cfg.Initial, Horizon: cfg.Horizon}
	if tr.Name == "" {
		tr.Name = cfg.Session.Kind.String()
	}
	// Phase 1, sequential: the Poisson arrival chain (inhomogeneous
	// arrivals by thinning, like Generate). One Exp draw plus at most
	// one Float64 per candidate — microseconds per million arrivals.
	rate := cfg.ArrivalRate
	if rate == 0 {
		rate = float64(cfg.Initial) / cfg.Session.Mean
	}
	period := cfg.DiurnalPeriod
	if period == 0 {
		period = cfg.Horizon / 2
	}
	var arrivals []float64
	if rate > 0 {
		rng := xrand.NewStream(seed, 0)
		peak := rate * (1 + cfg.DiurnalAmplitude)
		for t := rng.Exp(peak); t < cfg.Horizon; t += rng.Exp(peak) {
			if cfg.DiurnalAmplitude > 0 {
				cur := rate * (1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*t/period))
				if rng.Float64() >= cur/peak {
					continue
				}
			}
			arrivals = append(arrivals, t)
		}
	}
	// Phase 2, parallel: session lifetimes and events, chunked by
	// session id. Sessions 0..Initial-1 are the steady-state residuals
	// (a Leave if the residual lifetime ends inside the horizon);
	// session Initial+i joins at arrivals[i].
	sessions := cfg.Initial + len(arrivals)
	chunks := (sessions + genChunk - 1) / genChunk
	if chunks == 0 {
		tr.Normalize()
		return tr, nil
	}
	sorted, err := parallel.Map(workers, chunks, func(c int) ([]Event, error) {
		lo, hi := c*genChunk, min((c+1)*genChunk, sessions)
		out := make([]Event, 0, 2*(hi-lo))
		for s := lo; s < hi; s++ {
			rng := xrand.NewStream(seed+1, uint64(s))
			d := cfg.Session.Draw(rng)
			if s < cfg.Initial {
				if d < cfg.Horizon {
					out = append(out, Event{T: d, Session: s, Op: Leave})
				}
				continue
			}
			t := arrivals[s-cfg.Initial]
			out = append(out, Event{T: t, Session: s, Op: Join})
			if end := t + d; end < cfg.Horizon {
				out = append(out, Event{T: end, Session: s, Op: Leave})
			}
		}
		sort.Slice(out, func(i, j int) bool { return eventLess(out[i], out[j]) })
		return out, nil
	})
	if err != nil {
		return nil, err // unreachable: chunk fns never fail
	}
	// Phase 3: merge the sorted runs pairwise, rounds of disjoint pairs
	// running on the pool, until one canonical run remains. The pairing
	// is fixed by run count alone, so the merge tree — and the output —
	// never depends on workers.
	for len(sorted) > 1 {
		half := (len(sorted) + 1) / 2
		next := make([][]Event, half)
		_ = parallel.ForEach(workers, half, func(i int) error {
			if 2*i+1 == len(sorted) {
				next[i] = sorted[2*i]
				return nil
			}
			next[i] = mergeEvents(sorted[2*i], sorted[2*i+1])
			return nil
		})
		sorted = next
	}
	tr.Events = sorted[0]
	return tr, nil
}

// mergeEvents merges two canonically sorted event runs.
func mergeEvents(a, b []Event) []Event {
	out := make([]Event, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if eventLess(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
