package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// fuzzSeed renders a small valid trace in both wire formats for the
// seed corpus, plus hand-written malformed inputs targeting the parser
// edges (bad ops, non-finite numbers, truncated rows, header games).
func fuzzSeed(f *testing.F, toWire func(*Trace) string) {
	t := &Trace{
		Name:    "seed",
		Initial: 3,
		Horizon: 10,
		Events: []Event{
			{T: 1, Session: 3, Op: Join},
			{T: 2.5, Session: 0, Op: Leave},
			{T: 9.75, Session: 3, Op: Leave},
		},
	}
	f.Add(toWire(t))
	f.Add("")
	f.Add("t,session,op\n")
	f.Add("#horizon NaN\n1,0,leave\n")
	f.Add("#initial 99999999999999999999\n")
	f.Add("1,2\n")
	f.Add("Inf,0,join\n")
	f.Add("1e309,0,j\n")
	f.Add("1,-3,l\n")
	f.Add(`{"schema":"p2psize-trace/v1","initial":1,"horizon":1e999}`)
	f.Add(`{"schema":"p2psize-trace/v1","initial":-1,"horizon":5,"events":[{"t":"x"}]}`)
}

// roundTrip checks a successfully parsed trace is stable under
// re-serialization: write → read gives the identical trace. (NaN can
// never appear here — Validate rejects non-finite values — so plain
// equality is sound.)
func roundTrip(t *testing.T, tr *Trace,
	write func(*Trace, *bytes.Buffer) error, read func(*bytes.Buffer) (*Trace, error)) {
	t.Helper()
	var buf bytes.Buffer
	if err := write(tr, &buf); err != nil {
		t.Fatalf("re-serialize valid trace: %v", err)
	}
	again, err := read(&buf)
	if err != nil {
		t.Fatalf("re-parse own output: %v\n%s", err, buf.String())
	}
	if again.Name != tr.Name || again.Initial != tr.Initial ||
		math.Float64bits(again.Horizon) != math.Float64bits(tr.Horizon) ||
		len(again.Events) != len(tr.Events) {
		t.Fatalf("round trip changed the trace: %+v vs %+v", tr, again)
	}
	for i := range tr.Events {
		if tr.Events[i] != again.Events[i] {
			t.Fatalf("round trip changed event %d: %+v vs %+v", i, tr.Events[i], again.Events[i])
		}
	}
}

func FuzzReadTraceCSV(f *testing.F) {
	fuzzSeed(f, func(tr *Trace) string {
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.String()
	})
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejected input; only panics and bad accepts count
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadCSV accepted an invalid trace: %v", err)
		}
		roundTrip(t, tr,
			func(tr *Trace, buf *bytes.Buffer) error { return tr.WriteCSV(buf) },
			func(buf *bytes.Buffer) (*Trace, error) { return ReadCSV(buf) })
	})
}

func FuzzReadTraceJSON(f *testing.F) {
	fuzzSeed(f, func(tr *Trace) string {
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.String()
	})
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted an invalid trace: %v", err)
		}
		roundTrip(t, tr,
			func(tr *Trace, buf *bytes.Buffer) error { return tr.WriteJSON(buf) },
			func(buf *bytes.Buffer) (*Trace, error) { return ReadJSON(buf) })
	})
}
