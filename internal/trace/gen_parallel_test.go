package trace

import (
	"math"
	"testing"

	"p2psize/internal/xrand"
)

func parallelCfg(initial int) Config {
	return Config{
		Name:             "par-test",
		Initial:          initial,
		Horizon:          1000,
		Session:          trSessionDist(),
		DiurnalAmplitude: 0.4,
	}
}

func trSessionDist() SessionDist {
	return SessionDist{Kind: Weibull, Mean: 400, Shape: 0.6}
}

// TestGenerateParallelWorkerInvariance is the generator's determinism
// contract: equal (Config, seed) give byte-identical traces at every
// workers setting, across enough sessions to span several chunks (and
// therefore several merge rounds).
func TestGenerateParallelWorkerInvariance(t *testing.T) {
	cfg := parallelCfg(3 * genChunk) // ~6 chunks incl. arrivals
	ref, err := GenerateParallel(cfg, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Events) == 0 {
		t.Fatal("empty trace")
	}
	for _, workers := range []int{2, 8} {
		got, err := GenerateParallel(cfg, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Events) != len(ref.Events) {
			t.Fatalf("workers=%d: %d events vs %d", workers, len(got.Events), len(ref.Events))
		}
		for i := range ref.Events {
			if got.Events[i] != ref.Events[i] {
				t.Fatalf("workers=%d: event %d differs: %+v vs %+v", workers, i, got.Events[i], ref.Events[i])
			}
		}
	}
}

// TestGenerateParallelCanonical checks the merged output satisfies the
// same invariants Normalize+Validate enforce — sorted by (T, Session,
// Op), structurally sound — without a post-hoc Normalize pass.
func TestGenerateParallelCanonical(t *testing.T) {
	tr, err := GenerateParallel(parallelCfg(2000), 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tr.Events); i++ {
		if eventLess(tr.Events[i], tr.Events[i-1]) {
			t.Fatalf("events %d and %d out of canonical order", i-1, i)
		}
	}
}

// TestGenerateParallelMatchesSequentialStatistically compares the
// parallel generator against the sequential reference: the two draw
// schemes differ bitwise by design, so the equivalence is statistical —
// same expected arrival volume, same session-length distribution, same
// population trajectory within a few percent at this scale.
func TestGenerateParallelMatchesSequentialStatistically(t *testing.T) {
	cfg := parallelCfg(8000)
	seqTr, err := Generate(cfg, xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	parTr, err := GenerateParallel(cfg, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	relDiff := func(a, b int) float64 {
		return math.Abs(float64(a)-float64(b)) / math.Max(float64(a), 1)
	}
	if d := relDiff(seqTr.Joins(), parTr.Joins()); d > 0.10 {
		t.Fatalf("join volumes diverge %.1f%%: seq %d, par %d", 100*d, seqTr.Joins(), parTr.Joins())
	}
	if d := relDiff(seqTr.Leaves(), parTr.Leaves()); d > 0.10 {
		t.Fatalf("leave volumes diverge %.1f%%: seq %d, par %d", 100*d, seqTr.Leaves(), parTr.Leaves())
	}
	for _, at := range []float64{250, 500, 750, 1000} {
		if d := relDiff(seqTr.SizeAt(at), parTr.SizeAt(at)); d > 0.10 {
			t.Fatalf("population at t=%g diverges %.1f%%: seq %d, par %d",
				at, 100*d, seqTr.SizeAt(at), parTr.SizeAt(at))
		}
	}
}

func TestGenerateParallelSeedSensitivity(t *testing.T) {
	cfg := parallelCfg(2000)
	a, err := GenerateParallel(cfg, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateParallel(cfg, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) == len(b.Events) {
		same := true
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 produced identical traces")
		}
	}
}

func TestGenerateParallelRejectsBadConfig(t *testing.T) {
	bad := parallelCfg(100)
	bad.Horizon = -1
	if _, err := GenerateParallel(bad, 1, 1); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

func TestGenerateParallelEmpty(t *testing.T) {
	cfg := Config{Initial: 0, Horizon: 10, ArrivalRate: 0,
		Session: SessionDist{Kind: Exponential, Mean: 5}}
	tr, err := GenerateParallel(cfg, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 0 || tr.Initial != 0 {
		t.Fatalf("empty config produced %d events", len(tr.Events))
	}
}

// BenchmarkGenerate compares the sequential and parallel generators on
// a million-session-scale workload (the ROADMAP item's regime).
func BenchmarkGenerate(b *testing.B) {
	cfg := Config{
		Name:    "bench",
		Initial: 300000,
		Horizon: 1000,
		Session: SessionDist{Kind: Weibull, Mean: 250, Shape: 0.5},
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Generate(cfg, xrand.New(uint64(i+1))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := GenerateParallel(cfg, uint64(i+1), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
