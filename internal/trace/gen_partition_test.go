package trace

import (
	"strings"
	"testing"

	"p2psize/internal/xrand"
)

func TestAddPartitionHealWindowErrors(t *testing.T) {
	for _, tc := range []struct {
		split, heal, frac float64
		want              string
	}{
		{-1, 500, 0.5, "window"},
		{100, 2000, 0.5, "window"},
		{600, 400, 0.5, "window"},
		{500, 500, 0.5, "window"},
		{100, 500, 1.5, "fraction"},
		{100, 500, -0.1, "fraction"},
	} {
		tr := mustGenerate(t, testConfig(), 1)
		err := tr.AddPartitionHeal(tc.split, tc.heal, tc.frac, xrand.New(2))
		if err == nil {
			t.Fatalf("AddPartitionHeal(%g, %g, %g) accepted", tc.split, tc.heal, tc.frac)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("AddPartitionHeal(%g, %g, %g) = %v, want mention of %q",
				tc.split, tc.heal, tc.frac, err, tc.want)
		}
	}
}

func TestAddPartitionHealSizeProfile(t *testing.T) {
	tr := mustGenerate(t, testConfig(), 1)
	const split, heal = 400.0, 600.0
	before := tr.SizeAt(split - 1)
	aliveAtSplit := tr.SizeAt(split)
	if err := tr.AddPartitionHeal(split, heal, 0.5, xrand.New(2)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid after partition: %v", err)
	}
	if got := tr.SizeAt(split - 1); got != before {
		t.Fatalf("size before the split changed: %d vs %d", got, before)
	}
	during := tr.SizeAt((split + heal) / 2)
	// Half the population vanished at the split; churn moves the number
	// a little inside the window, so assert a generous envelope.
	if during > int(0.7*float64(aliveAtSplit)) {
		t.Fatalf("mid-partition size %d, want well below the pre-split %d", during, aliveAtSplit)
	}
	after := tr.SizeAt(heal + 1)
	if after <= during {
		t.Fatalf("heal did not restore anyone: %d during, %d after", during, after)
	}
	// Survivors rejoin; only victims whose own session ended inside the
	// window stay gone, so the healed size must recover most of the gap.
	if after < during+(aliveAtSplit-during)/2 {
		t.Fatalf("heal recovered too little: %d at split, %d during, %d after",
			aliveAtSplit, during, after)
	}
}

func TestAddPartitionHealDeterministic(t *testing.T) {
	mk := func() *Trace {
		tr := mustGenerate(t, testConfig(), 1)
		if err := tr.AddPartitionHeal(300, 700, 0.4, xrand.New(9)); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := mk(), mk()
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}
