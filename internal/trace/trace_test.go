package trace

import (
	"bytes"
	"math"
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

func testDist() SessionDist {
	return SessionDist{Kind: Weibull, Mean: 200, Shape: 0.5}
}

func testConfig() Config {
	return Config{
		Name:    "test",
		Initial: 500,
		Horizon: 1000,
		Session: testDist(),
	}
}

func mustGenerate(t *testing.T, cfg Config, seed uint64) *Trace {
	t.Helper()
	tr, err := Generate(cfg, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	return tr
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, testConfig(), 1)
	b := mustGenerate(t, testConfig(), 1)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	c := mustGenerate(t, testConfig(), 2)
	same := len(a.Events) == len(c.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical traces")
	}
}

func TestGenerateStationaryPopulation(t *testing.T) {
	// With the default (stationary) arrival rate the population should
	// stay near Initial throughout; exponential sessions make the
	// renewal approximation exact.
	cfg := testConfig()
	cfg.Initial = 2000
	cfg.Session = SessionDist{Kind: Exponential, Mean: 200}
	tr := mustGenerate(t, cfg, 3)
	for _, at := range []float64{250, 500, 750, 1000} {
		n := tr.SizeAt(at)
		if n < cfg.Initial*7/10 || n > cfg.Initial*13/10 {
			t.Fatalf("population at t=%g is %d, want within 30%% of %d", at, n, cfg.Initial)
		}
	}
}

func TestGenerateDiurnal(t *testing.T) {
	cfg := testConfig()
	cfg.Initial = 0
	cfg.ArrivalRate = 20
	cfg.DiurnalAmplitude = 0.9
	cfg.DiurnalPeriod = 1000
	cfg.Session = SessionDist{Kind: Exponential, Mean: 1e9} // nobody leaves
	tr := mustGenerate(t, cfg, 4)
	// sin is positive on the first half-period and negative on the
	// second, so arrivals must concentrate in the first half.
	first, second := 0, 0
	for _, ev := range tr.Events {
		if ev.Op != Join {
			continue
		}
		if ev.T < 500 {
			first++
		} else {
			second++
		}
	}
	if first < 2*second {
		t.Fatalf("diurnal modulation had no effect: %d joins in peak half vs %d in trough half", first, second)
	}
}

func TestSessionDistMeans(t *testing.T) {
	rng := xrand.New(5)
	for _, d := range []SessionDist{
		{Kind: Exponential, Mean: 100},
		{Kind: Weibull, Mean: 100, Shape: 0.5},
		{Kind: LogNormal, Mean: 100, Shape: 1.2},
		{Kind: Pareto, Mean: 100, Shape: 2.5},
	} {
		sum := 0.0
		const draws = 300000
		for i := 0; i < draws; i++ {
			v := d.Draw(rng)
			if v < 0 {
				t.Fatalf("%s drew negative %g", d, v)
			}
			sum += v
		}
		mean := sum / draws
		if math.Abs(mean-d.Mean) > 0.1*d.Mean {
			t.Fatalf("%s mean = %g, want ~%g", d, mean, d.Mean)
		}
	}
}

func TestFlashCrowd(t *testing.T) {
	tr := mustGenerate(t, testConfig(), 6)
	before := tr.SizeAt(600)
	if err := tr.AddFlashCrowd(600, 300, SessionDist{Kind: Pareto, Mean: 20, Shape: 2}, xrand.New(7)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.SizeAt(600); got != before+300 {
		t.Fatalf("size right after flash crowd = %d, want %d", got, before+300)
	}
}

func TestMassFailure(t *testing.T) {
	tr := mustGenerate(t, testConfig(), 8)
	before := tr.SizeAt(500)
	if err := tr.AddMassFailure(500, 0.5, xrand.New(9)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	want := before - before/2
	if got := tr.SizeAt(500); got != want {
		t.Fatalf("size right after mass failure = %d, want %d", got, want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := mustGenerate(t, testConfig(), 10)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, back)
}

func TestCSVRoundTrip(t *testing.T) {
	tr := mustGenerate(t, testConfig(), 11)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, back)
}

func tracesEqual(t *testing.T, a, b *Trace) {
	t.Helper()
	if a.Name != b.Name || a.Initial != b.Initial ||
		math.Float64bits(a.Horizon) != math.Float64bits(b.Horizon) {
		t.Fatalf("metadata differs: {%s %d %g} vs {%s %d %g}",
			a.Name, a.Initial, a.Horizon, b.Name, b.Initial, b.Horizon)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i].Session != b.Events[i].Session || a.Events[i].Op != b.Events[i].Op ||
			math.Float64bits(a.Events[i].T) != math.Float64bits(b.Events[i].T) {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString(`{"schema":"nope"}`)); err == nil {
		t.Fatal("bad JSON schema accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("#horizon 10\n1,0,dance\n")); err == nil {
		t.Fatal("bad CSV op accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("#initial 1\n#horizon 10\n5,0,join\n")); err == nil {
		t.Fatal("initial session joining accepted")
	}
}

func TestValidateCatchesStructureErrors(t *testing.T) {
	for name, tr := range map[string]*Trace{
		"leave before join": {Horizon: 10, Events: []Event{{T: 1, Session: 0, Op: Leave}}},
		"double join": {Horizon: 10, Events: []Event{
			{T: 1, Session: 0, Op: Join}, {T: 2, Session: 0, Op: Join}}},
		"event past horizon": {Horizon: 10, Events: []Event{{T: 11, Session: 0, Op: Join}}},
		"unsorted": {Horizon: 10, Events: []Event{
			{T: 5, Session: 0, Op: Join}, {T: 1, Session: 1, Op: Join}}},
		"zero horizon": {},
	} {
		if err := tr.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted invalid trace", name)
		}
	}
}

func newNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

func TestPlayerReplaysSizes(t *testing.T) {
	cfg := testConfig()
	tr := mustGenerate(t, cfg, 12)
	net := newNet(cfg.Initial, 13)
	p, err := NewPlayer(tr, net)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(14)
	for _, at := range []float64{100, 400, 700, 1000} {
		p.AdvanceTo(net, at, rng)
		if got, want := net.Size(), tr.SizeAt(at); got != want {
			t.Fatalf("overlay size at t=%g is %d, trace says %d", at, got, want)
		}
	}
	if !p.Done() {
		t.Fatal("player not done after advancing to the horizon")
	}
}

func TestPlayerDeterministicReplay(t *testing.T) {
	cfg := testConfig()
	cfg.Initial = 300
	tr := mustGenerate(t, cfg, 15)
	base := newNet(cfg.Initial, 16)

	run := func() *overlay.Network {
		net := base.Clone()
		p, err := NewPlayer(tr, net)
		if err != nil {
			t.Fatal(err)
		}
		p.Finish(net, xrand.New(17))
		return net
	}
	a, b := run(), run()
	if a.Size() != b.Size() {
		t.Fatalf("replay sizes differ: %d vs %d", a.Size(), b.Size())
	}
	ga, gb := a.Graph(), b.Graph()
	if ga.NumIDs() != gb.NumIDs() || ga.NumEdges() != gb.NumEdges() {
		t.Fatalf("replay graphs differ: %d/%d ids, %d/%d edges",
			ga.NumIDs(), gb.NumIDs(), ga.NumEdges(), gb.NumEdges())
	}
}

func TestPlayerRejectsSizeMismatch(t *testing.T) {
	tr := mustGenerate(t, testConfig(), 18)
	if _, err := NewPlayer(tr, newNet(7, 19)); err == nil {
		t.Fatal("player accepted an overlay smaller than the initial population")
	}
}

func TestToScenarioPreservesVolume(t *testing.T) {
	tr := mustGenerate(t, testConfig(), 20)
	sc, err := tr.ToScenario(50)
	if err != nil {
		t.Fatal(err)
	}
	adds, drops := 0, 0
	for _, ev := range sc.Events {
		adds += ev.AddCount
		drops += ev.RemoveCount
	}
	if adds != tr.Joins() || drops != tr.Leaves() {
		t.Fatalf("scenario volume %d joins / %d leaves, trace has %d / %d",
			adds, drops, tr.Joins(), tr.Leaves())
	}
	if sc.TotalSteps != 50 {
		t.Fatalf("TotalSteps = %d", sc.TotalSteps)
	}
}
