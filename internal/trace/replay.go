package trace

import (
	"fmt"

	"p2psize/internal/graph"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

// Player replays a trace onto an overlay, mapping trace sessions to
// overlay peers. Joins wire new peers with the overlay's usual random-
// degree rule (drawing from the caller's rng) and departures use the
// paper's non-repairing Leave, so a replayed trace exercises exactly the
// membership dynamics the comparative study simulates — only the
// schedule comes from the trace instead of per-step rates.
//
// A Player advances monotonically; build a fresh Player (and an
// identically seeded rng) to replay the same trace again. Replays are
// deterministic: equal (trace, overlay, rng seed) give byte-identical
// overlay states at every point in time, which is what lets concurrent
// monitoring instances replay one trace on per-instance clones.
type Player struct {
	tr     *Trace
	next   int
	nodes  map[int]graph.NodeID
	joins  int
	leaves int
}

// NewPlayer validates the trace against the overlay and binds the
// initial sessions: session i maps to the overlay's i-th live peer, so
// the overlay must hold exactly tr.Initial peers.
func NewPlayer(tr *Trace, net *overlay.Network) (*Player, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if net.Size() != tr.Initial {
		return nil, fmt.Errorf("trace: overlay has %d peers, trace expects %d initial sessions",
			net.Size(), tr.Initial)
	}
	p := &Player{tr: tr, nodes: make(map[int]graph.NodeID, tr.Initial)}
	g := net.Graph()
	for s := 0; s < tr.Initial; s++ {
		p.nodes[s] = g.AliveAt(s)
	}
	return p, nil
}

// AdvanceTo applies every event with T <= t (that has not been applied
// yet) to the overlay and returns the join and leave counts of this
// advance. Leaves of already-dead peers (or when only one peer remains)
// are skipped, mirroring the churn runner's floor.
func (p *Player) AdvanceTo(net *overlay.Network, t float64, rng *xrand.Rand) (joins, leaves int) {
	for p.next < len(p.tr.Events) && p.tr.Events[p.next].T <= t {
		ev := p.tr.Events[p.next]
		p.next++
		switch ev.Op {
		case Join:
			p.nodes[ev.Session] = net.JoinRandomDegree(rng)
			joins++
		case Leave:
			id, ok := p.nodes[ev.Session]
			if !ok || !net.Alive(id) || net.Size() <= 1 {
				continue
			}
			net.Leave(id)
			delete(p.nodes, ev.Session)
			leaves++
		}
	}
	p.joins += joins
	p.leaves += leaves
	return joins, leaves
}

// Finish applies all remaining events (AdvanceTo the horizon).
func (p *Player) Finish(net *overlay.Network, rng *xrand.Rand) (joins, leaves int) {
	return p.AdvanceTo(net, p.tr.Horizon, rng)
}

// Done reports whether every event has been applied.
func (p *Player) Done() bool { return p.next >= len(p.tr.Events) }

// TotalJoins returns the number of peers added so far.
func (p *Player) TotalJoins() int { return p.joins }

// TotalLeaves returns the number of peers removed so far.
func (p *Player) TotalLeaves() int { return p.leaves }
