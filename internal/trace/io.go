package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// JSONSchema identifies the JSON trace layout; bump it when the shape
// changes so tooling can detect incompatible files.
const JSONSchema = "p2psize-trace/v1"

// jsonEvent is the on-disk event form: op as a string for readability
// and hand-editing of empirical traces.
type jsonEvent struct {
	T       float64 `json:"t"`
	Session int     `json:"session"`
	Op      string  `json:"op"`
}

// jsonTrace is the on-disk trace form.
type jsonTrace struct {
	Schema  string      `json:"schema"`
	Name    string      `json:"name,omitempty"`
	Initial int         `json:"initial"`
	Horizon float64     `json:"horizon"`
	Events  []jsonEvent `json:"events"`
}

// WriteJSON serializes the trace as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	out := jsonTrace{
		Schema:  JSONSchema,
		Name:    t.Name,
		Initial: t.Initial,
		Horizon: t.Horizon,
		Events:  make([]jsonEvent, len(t.Events)),
	}
	for i, ev := range t.Events {
		out.Events[i] = jsonEvent{T: ev.T, Session: ev.Session, Op: ev.Op.String()}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a trace written by WriteJSON (or authored by hand from
// an empirical measurement), normalizes and validates it.
func ReadJSON(r io.Reader) (*Trace, error) {
	var in jsonTrace
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decode JSON: %w", err)
	}
	if in.Schema != JSONSchema {
		return nil, fmt.Errorf("trace: unknown schema %q (want %q)", in.Schema, JSONSchema)
	}
	t := &Trace{
		Name:    in.Name,
		Initial: in.Initial,
		Horizon: in.Horizon,
		Events:  make([]Event, len(in.Events)),
	}
	for i, ev := range in.Events {
		op, err := parseOp(ev.Op)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		t.Events[i] = Event{T: ev.T, Session: ev.Session, Op: op}
	}
	t.Normalize()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteCSV serializes the trace as CSV: metadata in "#key value" header
// comments, then a "t,session,op" column header and one event per line.
// The format round-trips through ReadCSV and is the interchange form for
// empirical traces exported from other tools.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t.Name != "" {
		fmt.Fprintf(bw, "#name %s\n", t.Name)
	}
	fmt.Fprintf(bw, "#initial %d\n", t.Initial)
	fmt.Fprintf(bw, "#horizon %s\n", strconv.FormatFloat(t.Horizon, 'g', -1, 64))
	fmt.Fprintln(bw, "t,session,op")
	for _, ev := range t.Events {
		fmt.Fprintf(bw, "%s,%d,%s\n",
			strconv.FormatFloat(ev.T, 'g', -1, 64), ev.Session, ev.Op)
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV, normalizes and validates
// it. Unknown "#" metadata lines are ignored so exporters can annotate
// files freely.
func ReadCSV(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text == "t,session,op" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			key, val, _ := strings.Cut(strings.TrimPrefix(text, "#"), " ")
			var err error
			switch key {
			case "name":
				t.Name = val
			case "initial":
				t.Initial, err = strconv.Atoi(val)
			case "horizon":
				t.Horizon, err = strconv.ParseFloat(val, 64)
			}
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad #%s value %q: %w", line, key, val, err)
			}
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", line, len(fields))
		}
		ts, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time %q: %w", line, fields[0], err)
		}
		session, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad session %q: %w", line, fields[1], err)
		}
		op, err := parseOp(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t.Events = append(t.Events, Event{T: ts, Session: session, Op: op})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read CSV: %w", err)
	}
	t.Normalize()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadFile loads a trace from path. Gzip compression is detected by
// the stream's magic bytes (1f 8b), never by a ".gz" suffix — a
// gzipped trace under any name decompresses transparently, and a
// misnamed plain file is read as-is instead of failing with a gzip
// header error. The CSV/JSON form is then sniffed from the first
// non-whitespace byte ('{' opens the JSON form; '#', the column
// header, and digits open the CSV form), with the file extension of
// the path (a trailing ".gz" stripped) as the tiebreak for content
// neither opener matches: ".csv" reads CSV, everything else JSON.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	// cr is the reader the form sniff and parsers consume: br itself
	// for plain files, a fresh buffer over the gzip stream otherwise
	// (only the decompressed bytes need new buffering).
	cr := br
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: %s: %w", path, err)
		}
		defer gz.Close()
		cr = bufio.NewReader(gz)
	}
	// The tiebreak extension ignores a trailing ".gz" whether or not
	// the content was actually compressed ("x.csv.gz" means CSV either
	// way).
	name := path
	if strings.EqualFold(filepath.Ext(name), ".gz") {
		name = strings.TrimSuffix(name, filepath.Ext(name))
	}
	switch first := firstContentByte(cr); {
	case first == '{':
		return ReadJSON(cr)
	case first == '#' || first == 't' || (first >= '0' && first <= '9'):
		return ReadCSV(cr)
	case strings.EqualFold(filepath.Ext(name), ".csv"):
		return ReadCSV(cr)
	default:
		return ReadJSON(cr)
	}
}

// firstContentByte peeks past leading whitespace and returns the first
// content byte without consuming the reader (0 when the stream is
// empty or unreadable — the caller's extension tiebreak then decides).
func firstContentByte(br *bufio.Reader) byte {
	for n := 64; ; n *= 2 {
		buf, err := br.Peek(n)
		for _, b := range buf {
			switch b {
			case ' ', '\t', '\r', '\n':
				continue
			default:
				return b
			}
		}
		// Peek returns what is available alongside the error, so a
		// short (or empty) stream of pure whitespace lands here.
		if err != nil || len(buf) < n {
			return 0
		}
	}
}

func parseOp(s string) (Op, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "join", "j":
		return Join, nil
	case "leave", "l":
		return Leave, nil
	default:
		return 0, fmt.Errorf("unknown op %q (want join or leave)", s)
	}
}
