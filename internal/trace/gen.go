package trace

import (
	"errors"
	"fmt"
	"math"

	"p2psize/internal/xrand"
)

// SessionKind selects the session-length distribution family.
type SessionKind int

const (
	// Exponential sessions are the memoryless baseline.
	Exponential SessionKind = iota
	// Weibull sessions with shape < 1 are the heavy-tailed fit measured
	// for deployed peer-to-peer systems (many very short sessions, a few
	// very long ones).
	Weibull
	// LogNormal sessions are the other common empirical fit.
	LogNormal
	// Pareto sessions have the heaviest (power-law) tail; Shape is the
	// tail index alpha and must exceed 1 for the mean to exist.
	Pareto
)

// String returns the distribution family name.
func (k SessionKind) String() string {
	switch k {
	case Exponential:
		return "exponential"
	case Weibull:
		return "weibull"
	case LogNormal:
		return "lognormal"
	case Pareto:
		return "pareto"
	default:
		return fmt.Sprintf("sessionkind(%d)", int(k))
	}
}

// SessionDist is a mean-parameterized session-length distribution: Mean
// fixes the expected session duration; Shape is the family's tail
// parameter (Weibull shape k, LogNormal sigma, Pareto alpha; ignored by
// Exponential). Parameterizing by the mean keeps workloads comparable
// across families — equal Mean means equal steady-state churn volume.
type SessionDist struct {
	Kind  SessionKind
	Mean  float64
	Shape float64
}

func (d SessionDist) validate() error {
	if d.Mean <= 0 {
		return errors.New("trace: SessionDist.Mean must be positive")
	}
	switch d.Kind {
	case Exponential:
	case Weibull, LogNormal:
		if d.Shape <= 0 {
			return fmt.Errorf("trace: %s sessions need Shape > 0", d.Kind)
		}
	case Pareto:
		if d.Shape <= 1 {
			return errors.New("trace: pareto sessions need Shape (tail index) > 1 for a finite mean")
		}
	default:
		return fmt.Errorf("trace: unknown session kind %d", int(d.Kind))
	}
	return nil
}

// Draw samples one session length.
func (d SessionDist) Draw(rng *xrand.Rand) float64 {
	switch d.Kind {
	case Weibull:
		scale := d.Mean / math.Gamma(1+1/d.Shape)
		return rng.Weibull(d.Shape, scale)
	case LogNormal:
		mu := math.Log(d.Mean) - d.Shape*d.Shape/2
		return rng.LogNormal(mu, d.Shape)
	case Pareto:
		xm := d.Mean * (d.Shape - 1) / d.Shape
		return rng.Pareto(xm, d.Shape)
	default: // Exponential
		return rng.Exp(1 / d.Mean)
	}
}

// String renders the distribution for names and notes, e.g.
// "weibull(mean=1000, shape=0.5)".
func (d SessionDist) String() string {
	if d.Kind == Exponential {
		return fmt.Sprintf("exponential(mean=%g)", d.Mean)
	}
	return fmt.Sprintf("%s(mean=%g, shape=%g)", d.Kind, d.Mean, d.Shape)
}

// Config describes a synthetic churn workload: a population of Initial
// sessions at time 0, Poisson arrivals at ArrivalRate (optionally
// diurnally modulated), and session lengths drawn from Session.
type Config struct {
	// Name labels the generated trace.
	Name string
	// Initial is the population at time 0. Each initial session gets a
	// residual lifetime drawn from Session — the renewal-theory
	// approximation of a system already in steady state.
	Initial int
	// Horizon is the trace duration in simulated time units.
	Horizon float64
	// ArrivalRate is the expected number of joins per time unit. Zero
	// selects the stationary rate Initial/Session.Mean, which keeps the
	// expected population flat at Initial.
	ArrivalRate float64
	// Session is the session-length distribution.
	Session SessionDist
	// DiurnalAmplitude in [0, 1) modulates the arrival rate as
	// rate·(1 + A·sin(2πt/DiurnalPeriod)) — the day/night load swing of
	// real deployments. Zero disables modulation.
	DiurnalAmplitude float64
	// DiurnalPeriod is the modulation period; zero means Horizon/2
	// (two "days" per trace).
	DiurnalPeriod float64
}

func (c Config) validate() error {
	if c.Initial < 0 {
		return errors.New("trace: Config.Initial must be >= 0")
	}
	if c.Horizon <= 0 {
		return errors.New("trace: Config.Horizon must be positive")
	}
	if c.ArrivalRate < 0 {
		return errors.New("trace: Config.ArrivalRate must be >= 0")
	}
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
		return errors.New("trace: Config.DiurnalAmplitude must be in [0, 1)")
	}
	if c.DiurnalPeriod < 0 {
		return errors.New("trace: Config.DiurnalPeriod must be >= 0")
	}
	return c.Session.validate()
}

// Generate builds a trace from the config, drawing all randomness from
// rng: equal (Config, seed) pairs give byte-identical traces.
//
// Arrivals follow a Poisson process. With diurnal modulation the process
// is inhomogeneous and is sampled by thinning: candidate arrivals are
// generated at the peak rate and accepted with probability
// rate(t)/peak — exact, and still a single deterministic draw sequence.
func Generate(cfg Config, rng *xrand.Rand) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tr := &Trace{Name: cfg.Name, Initial: cfg.Initial, Horizon: cfg.Horizon}
	if tr.Name == "" {
		tr.Name = cfg.Session.Kind.String()
	}
	// Initial population: residual lifetimes.
	for s := 0; s < cfg.Initial; s++ {
		if d := cfg.Session.Draw(rng); d < cfg.Horizon {
			tr.Events = append(tr.Events, Event{T: d, Session: s, Op: Leave})
		}
	}
	rate := cfg.ArrivalRate
	if rate == 0 {
		rate = float64(cfg.Initial) / cfg.Session.Mean
	}
	period := cfg.DiurnalPeriod
	if period == 0 {
		period = cfg.Horizon / 2
	}
	next := cfg.Initial
	if rate > 0 {
		peak := rate * (1 + cfg.DiurnalAmplitude)
		for t := rng.Exp(peak); t < cfg.Horizon; t += rng.Exp(peak) {
			if cfg.DiurnalAmplitude > 0 {
				cur := rate * (1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*t/period))
				if rng.Float64() >= cur/peak {
					continue
				}
			}
			tr.Events = append(tr.Events, Event{T: t, Session: next, Op: Join})
			if end := t + cfg.Session.Draw(rng); end < cfg.Horizon {
				tr.Events = append(tr.Events, Event{T: end, Session: next, Op: Leave})
			}
			next++
		}
	}
	tr.Normalize()
	return tr, nil
}

// AddFlashCrowd composes a flash crowd onto the trace: count sessions
// join together at time at, with lifetimes drawn from d (flash-crowd
// visitors typically stay briefly — pass a short-mean distribution).
// New sessions are numbered after all existing ones; events are
// re-normalized.
func (t *Trace) AddFlashCrowd(at float64, count int, d SessionDist, rng *xrand.Rand) error {
	if at < 0 || at > t.Horizon {
		return fmt.Errorf("trace: flash crowd at t=%g outside [0, %g]", at, t.Horizon)
	}
	if count < 0 {
		return errors.New("trace: flash crowd count must be >= 0")
	}
	if err := d.validate(); err != nil {
		return err
	}
	next := t.Sessions()
	for i := 0; i < count; i++ {
		t.Events = append(t.Events, Event{T: at, Session: next, Op: Join})
		if end := at + d.Draw(rng); end < t.Horizon {
			t.Events = append(t.Events, Event{T: end, Session: next, Op: Leave})
		}
		next++
	}
	t.Normalize()
	return nil
}

// AddMassFailure composes a correlated failure onto the trace: the given
// fraction of the sessions alive at time at leave at that instant
// (their original departures, if any, are dropped). Victims are drawn
// uniformly from the alive set via rng; events are re-normalized.
func (t *Trace) AddMassFailure(at, fraction float64, rng *xrand.Rand) error {
	if at < 0 || at > t.Horizon {
		return fmt.Errorf("trace: mass failure at t=%g outside [0, %g]", at, t.Horizon)
	}
	if fraction < 0 || fraction > 1 {
		return errors.New("trace: mass failure fraction must be in [0, 1]")
	}
	alive := t.aliveAt(at)
	k := int(fraction * float64(len(alive)))
	if k == 0 {
		return nil
	}
	victims := make(map[int]bool, k)
	for _, idx := range rng.SampleK(len(alive), k) {
		victims[alive[idx]] = true
	}
	// Drop the victims' scheduled departures after the failure instant,
	// then fail them at it.
	kept := t.Events[:0]
	for _, ev := range t.Events {
		if ev.Op == Leave && ev.T > at && victims[ev.Session] {
			continue
		}
		kept = append(kept, ev)
	}
	t.Events = kept
	for _, s := range alive {
		if victims[s] {
			t.Events = append(t.Events, Event{T: at, Session: s, Op: Leave})
		}
	}
	t.Normalize()
	return nil
}

// AddPartitionHeal composes a network partition, as one side of the cut
// observes it, onto the trace: at splitAt the given fraction of the
// alive sessions vanishes together (the peers behind the partition),
// and at healAt the cohort's survivors — victims whose original
// departure lies beyond healAt, or who never left — rejoin together.
// Sessions join at most once (Validate's rule), so each survivor
// rejoins as a fresh session whose departure keeps the victim's original
// schedule; victims that would have left during the window simply stay
// gone. Victims are drawn uniformly from the alive set via rng; events
// are re-normalized.
func (t *Trace) AddPartitionHeal(splitAt, healAt, fraction float64, rng *xrand.Rand) error {
	if splitAt < 0 || healAt > t.Horizon || splitAt >= healAt {
		return fmt.Errorf("trace: partition window [%g, %g] outside [0, %g]", splitAt, healAt, t.Horizon)
	}
	if fraction < 0 || fraction > 1 {
		return errors.New("trace: partition fraction must be in [0, 1]")
	}
	alive := t.aliveAt(splitAt)
	k := int(fraction * float64(len(alive)))
	if k == 0 {
		return nil
	}
	victims := make(map[int]bool, k)
	for _, idx := range rng.SampleK(len(alive), k) {
		victims[alive[idx]] = true
	}
	// Each victim's scheduled departure, if any, decides its fate: gone
	// for good when it falls inside the window, a survivor otherwise.
	leaveOf := make(map[int]float64, k)
	kept := t.Events[:0]
	for _, ev := range t.Events {
		if ev.Op == Leave && ev.T > splitAt && victims[ev.Session] {
			leaveOf[ev.Session] = ev.T
			continue
		}
		kept = append(kept, ev)
	}
	t.Events = kept
	next := t.Sessions()
	for _, s := range alive {
		if !victims[s] {
			continue
		}
		t.Events = append(t.Events, Event{T: splitAt, Session: s, Op: Leave})
		end, scheduled := leaveOf[s]
		if scheduled && end <= healAt {
			continue // departed behind the partition; never comes back
		}
		t.Events = append(t.Events, Event{T: healAt, Session: next, Op: Join})
		if scheduled {
			t.Events = append(t.Events, Event{T: end, Session: next, Op: Leave})
		}
		next++
	}
	t.Normalize()
	return nil
}
