package idspace

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

func hetNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

func TestRingOrderInvariant(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%50 + 2
		net := hetNet(n, seed)
		rng := xrand.New(seed + 1)
		r := NewRing(net, rng)
		if r.Size() != n {
			return false
		}
		// Walking successors from any node must visit every node exactly
		// once before returning.
		start := net.Graph().AliveAt(0)
		cur := start
		visited := map[graph.NodeID]bool{start: true}
		for i := 0; i < n-1; i++ {
			next, ok := r.Successor(cur)
			if !ok || visited[next] {
				return false
			}
			visited[next] = true
			cur = next
		}
		next, ok := r.Successor(cur)
		return ok && next == start
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRingJoinLeave(t *testing.T) {
	net := hetNet(10, 1)
	rng := xrand.New(2)
	r := NewRing(net, rng)
	id := net.Graph().AliveAt(3)
	r.Leave(id)
	if r.Size() != 9 {
		t.Fatalf("Size = %d", r.Size())
	}
	if _, ok := r.ID(id); ok {
		t.Fatal("left node still has an ID")
	}
	r.Join(id, rng)
	if r.Size() != 10 {
		t.Fatalf("Size = %d after rejoin", r.Size())
	}
}

func TestRingDoubleJoinPanics(t *testing.T) {
	net := hetNet(5, 3)
	r := NewRing(net, xrand.New(4))
	defer func() {
		if recover() == nil {
			t.Fatal("double join did not panic")
		}
	}()
	r.Join(net.Graph().AliveAt(0), xrand.New(5))
}

func TestRingLeaveAbsentPanics(t *testing.T) {
	net := hetNet(5, 6)
	r := NewRing(net, xrand.New(7))
	r.Leave(0)
	defer func() {
		if recover() == nil {
			t.Fatal("double leave did not panic")
		}
	}()
	r.Leave(0)
}

func TestEstimatorValidation(t *testing.T) {
	net := hetNet(5, 8)
	r := NewRing(net, xrand.New(9))
	for name, fn := range map[string]func(){
		"nil ring": func() { New(nil, 10, xrand.New(1)) },
		"k=0":      func() { New(r, 0, xrand.New(1)) },
		"nil rng":  func() { New(r, 10, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDensityEstimateAccuracy(t *testing.T) {
	// k = 100 successors: relative error ~ 1/sqrt(100) = 10%; the mean
	// over several starts should be well within that.
	const n = 5000
	net := hetNet(n, 10)
	r := NewRing(net, xrand.New(11))
	e := New(r, 100, xrand.New(12))
	sum := 0.0
	const runs = 20
	for i := 0; i < runs; i++ {
		est, err := e.Estimate(net)
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	if mean := sum / runs; math.Abs(mean-n)/n > 0.08 {
		t.Fatalf("mean estimate %.0f, truth %d", mean, n)
	}
}

func TestAccuracyImprovesWithK(t *testing.T) {
	const n = 5000
	spread := func(k int) float64 {
		net := hetNet(n, 13)
		r := NewRing(net, xrand.New(14))
		e := New(r, k, xrand.New(15))
		var worst float64
		for i := 0; i < 15; i++ {
			est, err := e.Estimate(net)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(est-n) / n; d > worst {
				worst = d
			}
		}
		return worst
	}
	if s10, s200 := spread(10), spread(200); s200 >= s10 {
		t.Fatalf("k=200 worst error %.2f not below k=10's %.2f", s200, s10)
	}
}

func TestCostIsKMessages(t *testing.T) {
	const n = 1000
	net := hetNet(n, 16)
	r := NewRing(net, xrand.New(17))
	e := New(r, 50, xrand.New(18))
	if _, err := e.Estimate(net); err != nil {
		t.Fatal(err)
	}
	if got := net.Counter().Count(metrics.KindWalk); got != 50 {
		t.Fatalf("cost = %d messages, want k = 50", got)
	}
}

func TestKClampedToRingSize(t *testing.T) {
	net := hetNet(5, 19)
	r := NewRing(net, xrand.New(20))
	e := New(r, 100, xrand.New(21))
	est, err := e.Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	// With k clamped to N-1 the walk covers almost the whole space, so
	// the estimate is close to N even on a tiny ring.
	if est < 2 || est > 15 {
		t.Fatalf("tiny ring estimate %.1f", est)
	}
}

func TestSingleNodeRing(t *testing.T) {
	g := graph.NewWithNodes(1)
	net := overlay.New(g, 10, nil)
	r := NewRing(net, xrand.New(22))
	e := New(r, 10, xrand.New(23))
	est, err := e.Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	if est != 1 {
		t.Fatalf("single-node estimate %.1f", est)
	}
}

func TestEstimateTracksChurn(t *testing.T) {
	const n = 2000
	net := hetNet(n, 24)
	rng := xrand.New(25)
	r := NewRing(net, xrand.New(26))
	e := New(r, 100, xrand.New(27))
	// Remove half the peers from both overlay and ring.
	for i := 0; i < n/2; i++ {
		id, ok := net.Graph().RandomAlive(rng)
		if !ok {
			break
		}
		r.Leave(id)
		net.Leave(id)
	}
	sum := 0.0
	const runs = 10
	for i := 0; i < runs; i++ {
		est, err := e.Estimate(net)
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	if mean := sum / runs; math.Abs(mean-float64(n/2))/float64(n/2) > 0.12 {
		t.Fatalf("post-churn mean estimate %.0f, truth %d", mean, n/2)
	}
}

func TestEstimateFromUnknownNode(t *testing.T) {
	net := hetNet(10, 28)
	r := NewRing(net, xrand.New(29))
	id := net.Graph().AliveAt(0)
	r.Leave(id)
	e := New(r, 5, xrand.New(30))
	if _, err := e.EstimateFrom(net, id); err == nil {
		t.Fatal("estimate from off-ring node accepted")
	}
}

func TestEmptyOverlay(t *testing.T) {
	g := graph.NewWithNodes(1)
	g.RemoveNode(0)
	net := overlay.New(g, 10, nil)
	r := &Ring{ids: map[graph.NodeID]uint64{}}
	e := New(r, 5, xrand.New(31))
	if _, err := e.Estimate(net); !errors.Is(err, ErrEmptyOverlay) {
		t.Fatalf("err = %v", err)
	}
}
