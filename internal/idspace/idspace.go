// Package idspace implements the identifier-density size estimator that
// the comparative study's introduction positions as the structured-
// overlay alternative ([17], [11], [13], [14]): when node identifiers
// are assigned uniformly at random in a circular ID space, "the size
// estimation may then be directly inferred from the observation of the
// density of identifiers that fall into a given subset of the global
// identifier space". The study excludes this class from its head-to-head
// because it only works on identifier-based overlays; this package
// provides it anyway as a reference baseline, together with the minimal
// structured substrate it needs (a sorted ring with successor pointers).
//
// The estimator at node x walks its k clockwise successors (one message
// per hop, as a Chord-style successor traversal would) and measures the
// fraction f of the ID space they span; k successors spanning fraction f
// of the space imply N̂ = k/f. Gap lengths between uniform IDs are
// exponential, so the relative error decays as 1/sqrt(k).
package idspace

import (
	"errors"
	"fmt"
	"sort"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

// Ring is the structured substrate: every live peer owns a uniformly
// random 64-bit identifier, and the ring orders peers by identifier with
// wraparound. Join and Leave keep the order updated, mirroring a DHT's
// successor-list maintenance.
type Ring struct {
	ids    map[graph.NodeID]uint64
	sorted []ringEntry // sorted by id
}

type ringEntry struct {
	id   uint64
	node graph.NodeID
}

// NewRing assigns identifiers to every live peer of the overlay.
func NewRing(net *overlay.Network, rng *xrand.Rand) *Ring {
	r := &Ring{ids: make(map[graph.NodeID]uint64, net.Size())}
	g := net.Graph()
	for i := 0; i < g.NumAlive(); i++ {
		r.Join(g.AliveAt(i), rng)
	}
	return r
}

// Size returns the number of peers on the ring.
func (r *Ring) Size() int { return len(r.sorted) }

// ID returns the identifier of a peer (ok=false if absent).
func (r *Ring) ID(node graph.NodeID) (uint64, bool) {
	id, ok := r.ids[node]
	return id, ok
}

// Join assigns a fresh uniform identifier to node and inserts it.
// Joining an already-present node panics.
func (r *Ring) Join(node graph.NodeID, rng *xrand.Rand) uint64 {
	if _, dup := r.ids[node]; dup {
		panic(fmt.Sprintf("idspace: node %d already on the ring", node))
	}
	id := rng.Uint64()
	for {
		// Identifier collisions are ~impossible in 64 bits but cheap to
		// rule out, keeping the k/f estimator well-defined.
		if _, taken := r.lookup(id); !taken {
			break
		}
		id = rng.Uint64()
	}
	r.ids[node] = id
	i := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i].id >= id })
	r.sorted = append(r.sorted, ringEntry{})
	copy(r.sorted[i+1:], r.sorted[i:])
	r.sorted[i] = ringEntry{id: id, node: node}
	return id
}

// Leave removes node from the ring. Removing an absent node panics.
func (r *Ring) Leave(node graph.NodeID) {
	id, ok := r.ids[node]
	if !ok {
		panic(fmt.Sprintf("idspace: node %d not on the ring", node))
	}
	delete(r.ids, node)
	i, _ := r.lookup(id)
	r.sorted = append(r.sorted[:i], r.sorted[i+1:]...)
}

// lookup returns the index of id in the sorted ring and whether it is
// present (otherwise the index is the insertion point).
func (r *Ring) lookup(id uint64) (int, bool) {
	i := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i].id >= id })
	return i, i < len(r.sorted) && r.sorted[i].id == id
}

// Successor returns the next peer clockwise from node (wrapping), or
// ok=false when node is absent or alone.
func (r *Ring) Successor(node graph.NodeID) (graph.NodeID, bool) {
	id, ok := r.ids[node]
	if !ok || len(r.sorted) < 2 {
		return graph.None, false
	}
	i, _ := r.lookup(id)
	return r.sorted[(i+1)%len(r.sorted)].node, true
}

// Estimator computes density-based size estimates over a Ring. It
// satisfies the core.Estimator contract when bound to a ring via New.
type Estimator struct {
	ring *Ring
	k    int
	rng  *xrand.Rand
}

// New builds a density estimator reading k successors per estimate.
func New(ring *Ring, k int, rng *xrand.Rand) *Estimator {
	if ring == nil {
		panic("idspace: nil ring")
	}
	if k < 1 {
		panic("idspace: k must be >= 1")
	}
	if rng == nil {
		panic("idspace: nil rng")
	}
	return &Estimator{ring: ring, k: k, rng: rng}
}

// Name identifies the estimator in reports.
func (e *Estimator) Name() string { return fmt.Sprintf("id-density(k=%d)", e.k) }

// MutatesOverlay reports false: identifier-density estimation reads its
// own ring, never the overlay graph (core.OverlayMutator).
func (e *Estimator) MutatesOverlay() bool { return false }

// ErrEmptyOverlay is returned when no live peer can initiate.
var ErrEmptyOverlay = errors.New("idspace: empty overlay")

// Estimate walks k successors from a random peer and returns k/f, where
// f is the fraction of the identifier space the walk covered. Each
// successor hop is metered as one walk message.
func (e *Estimator) Estimate(net *overlay.Network) (float64, error) {
	start, ok := net.RandomPeer(e.rng)
	if !ok {
		return 0, ErrEmptyOverlay
	}
	return e.EstimateFrom(net, start)
}

// EstimateFrom walks k successors from the given peer.
func (e *Estimator) EstimateFrom(net *overlay.Network, start graph.NodeID) (float64, error) {
	startID, ok := e.ring.ID(start)
	if !ok {
		return 0, fmt.Errorf("idspace: node %d is not on the ring", start)
	}
	if e.ring.Size() == 1 {
		return 1, nil
	}
	k := e.k
	if k > e.ring.Size()-1 {
		k = e.ring.Size() - 1
	}
	cur := start
	var last uint64
	for i := 0; i < k; i++ {
		next, ok := e.ring.Successor(cur)
		if !ok {
			return 0, fmt.Errorf("idspace: ring broken at node %d", cur)
		}
		net.Send(metrics.KindWalk)
		cur = next
		last, _ = e.ring.ID(cur)
	}
	// Wraparound distance in the 64-bit space; uint64 subtraction is
	// already modular.
	span := last - startID
	if span == 0 {
		return float64(e.ring.Size()), nil
	}
	frac := float64(span) / float64(1<<63) / 2 // span / 2^64
	return float64(k) / frac, nil
}
