// Package churn drives the dynamic scenarios of §IV-D: gradually growing
// (+50%) and shrinking (−50%) networks, and catastrophic failures (−25%
// shocks), applied to an overlay as a function of simulated time.
//
// A Scenario is a declarative description (per-step arrival/departure
// rates plus discrete shock events); a Runner applies it step by step,
// carrying fractional-rate accumulators so that e.g. 0.05 arrivals/step
// yields one join every 20 steps deterministically in expectation.
package churn

import (
	"sort"

	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

// Event is a discrete shock at a given step.
type Event struct {
	// Step at which the event fires (0-based; fires before that step's
	// continuous churn).
	Step int
	// RemoveFraction of the *current* live peers to remove, in [0, 1].
	RemoveFraction float64
	// RemoveCount peers to remove (applied after RemoveFraction). An
	// absolute count is what trace down-conversion produces: a replayed
	// trace knows exactly how many peers left in a step.
	RemoveCount int
	// AddCount peers to add.
	AddCount int
}

// Scenario describes a churn workload over a fixed horizon.
type Scenario struct {
	// Name for reports, e.g. "catastrophic".
	Name string
	// TotalSteps is the experiment horizon in steps (estimations, time
	// units, or rounds — whatever the caller's clock is).
	TotalSteps int
	// ArrivalsPerStep is the expected number of joins per step.
	ArrivalsPerStep float64
	// DeparturesPerStep is the expected number of leaves per step.
	DeparturesPerStep float64
	// Events are discrete shocks, applied in Step order.
	Events []Event
	// Repair, when true, uses LeaveWithRepair instead of the paper's
	// non-repairing Leave (ablation only).
	Repair bool
}

// Static returns the no-churn scenario.
func Static(totalSteps int) Scenario {
	return Scenario{Name: "static", TotalSteps: totalSteps}
}

// Growing returns the paper's growing scenario: the overlay gains
// fraction×n0 peers spread uniformly over totalSteps (the figures use
// +50%: fraction = 0.5).
func Growing(n0, totalSteps int, fraction float64) Scenario {
	return Scenario{
		Name:            "growing",
		TotalSteps:      totalSteps,
		ArrivalsPerStep: fraction * float64(n0) / float64(totalSteps),
	}
}

// Shrinking returns the paper's shrinking scenario: the overlay loses
// fraction×n0 peers spread uniformly over totalSteps (figures use −50%).
func Shrinking(n0, totalSteps int, fraction float64) Scenario {
	return Scenario{
		Name:              "shrinking",
		TotalSteps:        totalSteps,
		DeparturesPerStep: fraction * float64(n0) / float64(totalSteps),
	}
}

// Catastrophic returns a generic catastrophic-failure scenario: −25%
// shocks at 30% and 60% of the horizon, and a +25%-of-n0 recovery wave at
// 80%, echoing the shape of the paper's Figures 9/12/15.
func Catastrophic(n0, totalSteps int) Scenario {
	return Scenario{
		Name:       "catastrophic",
		TotalSteps: totalSteps,
		Events: []Event{
			{Step: totalSteps * 3 / 10, RemoveFraction: 0.25},
			{Step: totalSteps * 6 / 10, RemoveFraction: 0.25},
			{Step: totalSteps * 8 / 10, AddCount: n0 / 4},
		},
	}
}

// AggregationCatastrophic reproduces Fig 15's exact schedule on a
// round-based clock: "100,000 nodes at beginning, −25% of nodes at 100
// and 500, +25000 nodes at 700" over a 10000-round horizon. All
// parameters scale linearly with n0/100000 and steps/10000.
func AggregationCatastrophic(n0, totalSteps int) Scenario {
	return Scenario{
		Name:       "catastrophic-fig15",
		TotalSteps: totalSteps,
		Events: []Event{
			{Step: totalSteps / 100, RemoveFraction: 0.25},
			{Step: totalSteps / 20, RemoveFraction: 0.25},
			{Step: totalSteps * 7 / 100, AddCount: n0 / 4},
		},
	}
}

// Runner applies a Scenario to an overlay, one step at a time.
type Runner struct {
	S Scenario

	rng        *xrand.Rand
	arriveAcc  float64
	departAcc  float64
	nextEvent  int
	events     []Event
	totalJoins int
	totalDrops int
}

// NewRunner prepares a runner; events are sorted by step.
func NewRunner(s Scenario, rng *xrand.Rand) *Runner {
	events := make([]Event, len(s.Events))
	copy(events, s.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Step < events[j].Step })
	return &Runner{S: s, rng: rng, events: events}
}

// Step applies the churn due at the given step to the network:
// first any discrete events scheduled at that step, then the continuous
// arrival/departure rates. Returns the net change in size.
func (r *Runner) Step(net *overlay.Network, step int) int {
	before := net.Size()
	for r.nextEvent < len(r.events) && r.events[r.nextEvent].Step <= step {
		ev := r.events[r.nextEvent]
		r.nextEvent++
		if ev.RemoveFraction > 0 {
			r.removeN(net, int(ev.RemoveFraction*float64(net.Size())))
		}
		if ev.RemoveCount > 0 {
			r.removeN(net, ev.RemoveCount)
		}
		for i := 0; i < ev.AddCount; i++ {
			net.JoinRandomDegree(r.rng)
			r.totalJoins++
		}
	}
	r.arriveAcc += r.S.ArrivalsPerStep
	for r.arriveAcc >= 1 {
		r.arriveAcc--
		net.JoinRandomDegree(r.rng)
		r.totalJoins++
	}
	r.departAcc += r.S.DeparturesPerStep
	drops := 0
	for r.departAcc >= 1 {
		r.departAcc--
		drops++
	}
	r.removeN(net, drops)
	return net.Size() - before
}

func (r *Runner) removeN(net *overlay.Network, n int) {
	for i := 0; i < n && net.Size() > 1; i++ {
		id, ok := net.Graph().RandomAlive(r.rng)
		if !ok {
			return
		}
		if r.S.Repair {
			net.LeaveWithRepair(id, r.rng)
		} else {
			net.Leave(id)
		}
		r.totalDrops++
	}
}

// TotalJoins returns the number of peers added so far.
func (r *Runner) TotalJoins() int { return r.totalJoins }

// TotalDrops returns the number of peers removed so far.
func (r *Runner) TotalDrops() int { return r.totalDrops }
