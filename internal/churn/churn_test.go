package churn

import (
	"math"
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

func newNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

func runAll(s Scenario, net *overlay.Network, seed uint64) *Runner {
	r := NewRunner(s, xrand.New(seed))
	for step := 0; step < s.TotalSteps; step++ {
		r.Step(net, step)
	}
	return r
}

func TestStaticScenario(t *testing.T) {
	net := newNet(200, 1)
	runAll(Static(100), net, 2)
	if net.Size() != 200 {
		t.Fatalf("static scenario changed size to %d", net.Size())
	}
}

func TestGrowingReachesTarget(t *testing.T) {
	const n0, steps = 1000, 100
	net := newNet(n0, 3)
	r := runAll(Growing(n0, steps, 0.5), net, 4)
	want := int(1.5 * n0)
	if math.Abs(float64(net.Size()-want)) > 0.02*float64(want) {
		t.Fatalf("grew to %d, want ≈%d", net.Size(), want)
	}
	if r.TotalDrops() != 0 {
		t.Fatalf("growing scenario dropped %d peers", r.TotalDrops())
	}
	if err := net.Graph().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkingReachesTarget(t *testing.T) {
	const n0, steps = 1000, 100
	net := newNet(n0, 5)
	r := runAll(Shrinking(n0, steps, 0.5), net, 6)
	want := n0 / 2
	if math.Abs(float64(net.Size()-want)) > 0.02*float64(want) {
		t.Fatalf("shrank to %d, want ≈%d", net.Size(), want)
	}
	if r.TotalJoins() != 0 {
		t.Fatalf("shrinking scenario joined %d peers", r.TotalJoins())
	}
}

func TestCatastrophicShocks(t *testing.T) {
	const n0, steps = 1000, 100
	net := newNet(n0, 7)
	s := Catastrophic(n0, steps)
	r := NewRunner(s, xrand.New(8))
	sizes := make([]int, steps)
	for step := 0; step < steps; step++ {
		r.Step(net, step)
		sizes[step] = net.Size()
	}
	// After the first shock (step 30): ≈750. After the second (step 60):
	// ≈562. After the recovery (step 80): ≈812.
	if got := sizes[35]; math.Abs(float64(got)-750) > 20 {
		t.Fatalf("after first shock size = %d, want ≈750", got)
	}
	if got := sizes[65]; math.Abs(float64(got)-562) > 20 {
		t.Fatalf("after second shock size = %d, want ≈562", got)
	}
	if got := sizes[85]; math.Abs(float64(got)-812) > 25 {
		t.Fatalf("after recovery size = %d, want ≈812", got)
	}
}

func TestAggregationCatastrophicSchedule(t *testing.T) {
	s := AggregationCatastrophic(100000, 10000)
	if len(s.Events) != 3 {
		t.Fatalf("events = %v", s.Events)
	}
	if s.Events[0].Step != 100 || s.Events[1].Step != 500 || s.Events[2].Step != 700 {
		t.Fatalf("steps = %d,%d,%d", s.Events[0].Step, s.Events[1].Step, s.Events[2].Step)
	}
	if s.Events[2].AddCount != 25000 {
		t.Fatalf("AddCount = %d", s.Events[2].AddCount)
	}
}

func TestEventsSortedAndApplied(t *testing.T) {
	net := newNet(100, 9)
	s := Scenario{
		Name:       "outoforder",
		TotalSteps: 10,
		Events: []Event{
			{Step: 5, AddCount: 10},
			{Step: 1, AddCount: 5},
		},
	}
	r := NewRunner(s, xrand.New(10))
	r.Step(net, 0)
	if net.Size() != 100 {
		t.Fatalf("size after step 0 = %d", net.Size())
	}
	r.Step(net, 1)
	if net.Size() != 105 {
		t.Fatalf("size after step 1 = %d", net.Size())
	}
	for step := 2; step <= 5; step++ {
		r.Step(net, step)
	}
	if net.Size() != 115 {
		t.Fatalf("size after step 5 = %d", net.Size())
	}
}

func TestMissedEventsCatchUp(t *testing.T) {
	// If the caller skips steps, pending events still fire.
	net := newNet(100, 11)
	s := Scenario{TotalSteps: 100, Events: []Event{{Step: 3, AddCount: 7}}}
	r := NewRunner(s, xrand.New(12))
	r.Step(net, 50)
	if net.Size() != 107 {
		t.Fatalf("size = %d, want 107", net.Size())
	}
}

func TestFractionalRatesAccumulate(t *testing.T) {
	net := newNet(100, 13)
	s := Scenario{TotalSteps: 40, ArrivalsPerStep: 0.25}
	r := NewRunner(s, xrand.New(14))
	for step := 0; step < 40; step++ {
		r.Step(net, step)
	}
	if net.Size() != 110 {
		t.Fatalf("size = %d, want 110 (0.25 × 40 arrivals)", net.Size())
	}
}

func TestShrinkNeverBelowOne(t *testing.T) {
	net := newNet(10, 15)
	s := Scenario{TotalSteps: 5, DeparturesPerStep: 100}
	r := NewRunner(s, xrand.New(16))
	for step := 0; step < 5; step++ {
		r.Step(net, step)
	}
	if net.Size() < 1 {
		t.Fatalf("size = %d, runner must keep at least one peer", net.Size())
	}
}

func TestRepairFlagUsesRepairingLeave(t *testing.T) {
	// With repair, average degree should stay near its starting value even
	// after heavy departures; without, it must drop.
	const n0 = 2000
	deg := func(repair bool) float64 {
		net := newNet(n0, 17)
		s := Shrinking(n0, 100, 0.5)
		s.Repair = repair
		runAll(s, net, 18)
		return graph.AvgDegree(net.Graph())
	}
	without := deg(false)
	with := deg(true)
	if with <= without {
		t.Fatalf("repair did not help: avg degree %g (repair) vs %g (none)", with, without)
	}
}

func TestFractionalRatesNonDividing(t *testing.T) {
	// Rates that don't divide the step count must carry their remainder
	// in the accumulator, not round per step: 0.3 × 7 = 2.1 → exactly 2
	// joins, with 0.1 left pending.
	net := newNet(100, 21)
	s := Scenario{TotalSteps: 7, ArrivalsPerStep: 0.3}
	r := NewRunner(s, xrand.New(22))
	for step := 0; step < 7; step++ {
		r.Step(net, step)
	}
	if net.Size() != 102 {
		t.Fatalf("size = %d, want 102 (floor of 0.3 × 7 arrivals)", net.Size())
	}
	// Both accumulators at once, neither dividing the horizon: 11 steps
	// of +0.7/−0.4 → 7 joins, 4 drops.
	net2 := newNet(100, 23)
	s2 := Scenario{TotalSteps: 11, ArrivalsPerStep: 0.7, DeparturesPerStep: 0.4}
	r2 := NewRunner(s2, xrand.New(24))
	for step := 0; step < 11; step++ {
		r2.Step(net2, step)
	}
	if r2.TotalJoins() != 7 || r2.TotalDrops() != 4 {
		t.Fatalf("joins/drops = %d/%d, want 7/4", r2.TotalJoins(), r2.TotalDrops())
	}
	if net2.Size() != 103 {
		t.Fatalf("size = %d, want 103", net2.Size())
	}
}

func TestShockAtStepZero(t *testing.T) {
	// An event scheduled at step 0 fires before that step's continuous
	// churn, on the untouched initial overlay.
	net := newNet(100, 25)
	s := Scenario{TotalSteps: 10, Events: []Event{{Step: 0, RemoveFraction: 0.25}}}
	r := NewRunner(s, xrand.New(26))
	if d := r.Step(net, 0); d != -25 {
		t.Fatalf("step-0 shock delta = %d, want -25", d)
	}
	if net.Size() != 75 {
		t.Fatalf("size after step-0 shock = %d, want 75", net.Size())
	}
}

func TestRemoveToEmptyFloorsAtOne(t *testing.T) {
	// A RemoveFraction of 1.0 (and any follow-up churn) must leave at
	// least one peer: the overlay floor is part of the runner contract.
	net := newNet(50, 27)
	s := Scenario{
		TotalSteps:        5,
		DeparturesPerStep: 10,
		Events:            []Event{{Step: 0, RemoveFraction: 1.0}},
	}
	r := NewRunner(s, xrand.New(28))
	for step := 0; step < 5; step++ {
		r.Step(net, step)
	}
	if net.Size() != 1 {
		t.Fatalf("size = %d, want exactly 1 after remove-to-empty", net.Size())
	}
	if r.TotalDrops() != 49 {
		t.Fatalf("drops = %d, want 49", r.TotalDrops())
	}
}

func TestRemoveCountEvent(t *testing.T) {
	// RemoveCount removes an absolute number of peers (after any
	// RemoveFraction) — the form trace down-conversion produces.
	net := newNet(100, 29)
	s := Scenario{TotalSteps: 2, Events: []Event{
		{Step: 0, RemoveCount: 10, AddCount: 3},
		{Step: 1, RemoveFraction: 0.5, RemoveCount: 6},
	}}
	r := NewRunner(s, xrand.New(30))
	r.Step(net, 0)
	if net.Size() != 93 {
		t.Fatalf("size after step 0 = %d, want 93", net.Size())
	}
	r.Step(net, 1)
	// 0.5 × 93 → 46 removed, then 6 more.
	if net.Size() != 41 {
		t.Fatalf("size after step 1 = %d, want 41", net.Size())
	}
}

func TestStepReturnsNetChange(t *testing.T) {
	net := newNet(100, 19)
	s := Scenario{TotalSteps: 1, Events: []Event{{Step: 0, AddCount: 3}}}
	r := NewRunner(s, xrand.New(20))
	if d := r.Step(net, 0); d != 3 {
		t.Fatalf("Step delta = %d, want 3", d)
	}
}
