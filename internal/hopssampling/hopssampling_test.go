package hopssampling

import (
	"errors"
	"math"
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

func hetNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{GossipTo: 0, GossipFor: 1, GossipUntil: 1, MinHopsReporting: 5},
		{GossipTo: 2, GossipFor: 0, GossipUntil: 1, MinHopsReporting: 5},
		{GossipTo: 2, GossipFor: 1, GossipUntil: 0, MinHopsReporting: 5},
		{GossipTo: 2, GossipFor: 1, GossipUntil: 1, MinHopsReporting: 0},
		{GossipTo: 2, GossipFor: 1, GossipUntil: 1, MinHopsReporting: 5, MaxRounds: -1},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg, xrand.New(1))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil rng did not panic")
			}
		}()
		New(Default(), nil)
	}()
}

func TestDefaultMatchesPaper(t *testing.T) {
	cfg := Default()
	if cfg.GossipTo != 2 || cfg.GossipFor != 1 || cfg.GossipUntil != 1 || cfg.MinHopsReporting != 5 {
		t.Fatalf("defaults = %+v, want the paper's gossipTo=2 gossipFor=1 gossipUntil=1 minHops=5", cfg)
	}
	if !cfg.RoutedReplies {
		t.Fatal("default should use routed replies (Table I accounting)")
	}
}

func TestName(t *testing.T) {
	e := New(Default(), xrand.New(1))
	if e.Name() != "hops-sampling(minHops=5)" {
		t.Fatalf("Name = %q", e.Name())
	}
	if e.Config().GossipTo != 2 {
		t.Fatal("Config not returned")
	}
}

func TestSpreadReachesMostNodes(t *testing.T) {
	// Branching factor 2 with collisions reaches the fraction ρ solving
	// ρ = 1 - e^{-2ρ} ≈ 0.80 on a random graph; allow a generous band.
	net := hetNet(20000, 2)
	e := New(Default(), xrand.New(3))
	initiator, _ := net.RandomPeer(xrand.New(4))
	frac, err := e.ReachedFraction(net, initiator)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.6 || frac > 0.98 {
		t.Fatalf("reached fraction = %.2f, want ≈0.8", frac)
	}
}

func TestUnderEstimationBiasMatchesReachedFraction(t *testing.T) {
	// The estimate should track reached/|N| (paper: consistent
	// under-estimation ≈ -20%).
	const n = 20000
	net := hetNet(n, 5)
	e := New(Default(), xrand.New(6))
	initiator, _ := net.RandomPeer(xrand.New(7))
	est, diag, err := e.EstimateFrom(net, initiator)
	if err != nil {
		t.Fatal(err)
	}
	reachedFrac := float64(diag.Reached) / n
	estFrac := est / n
	if math.Abs(estFrac-reachedFrac) > 0.15 {
		t.Fatalf("estimate fraction %.2f vs reached fraction %.2f", estFrac, reachedFrac)
	}
	if estFrac > 1.05 {
		t.Fatalf("HopsSampling over-estimated: %.2f", estFrac)
	}
}

func TestOracleDistancesUnbiased(t *testing.T) {
	// §V's probe: with exact BFS distances the extrapolation recovers the
	// true size. Average over several runs to wash out reply randomness.
	const n = 10000
	net := hetNet(n, 8)
	e := New(Default(), xrand.New(9))
	initiator, _ := net.RandomPeer(xrand.New(10))
	sum := 0.0
	const runs = 20
	for i := 0; i < runs; i++ {
		est, err := e.EstimateWithOracleDistances(net, initiator)
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	mean := sum / runs
	if math.Abs(mean-n)/n > 0.1 {
		t.Fatalf("oracle-distance mean estimate %.0f, truth %d (polling should be unbiased)", mean, n)
	}
}

func TestCloseNodesAlwaysReply(t *testing.T) {
	// With minHopsReporting far above any gossip distance, every reached
	// node replies with probability 1 and weight 1, so the estimate equals
	// the reached count exactly.
	g := graph.Clique(30)
	net := overlay.New(g, 29, nil)
	cfg := Default()
	cfg.MinHopsReporting = 1000
	e := New(cfg, xrand.New(11))
	est, diag, err := e.EstimateFrom(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Fan-out-2 gossip reaches ρ ≈ 0.8 of the nodes even on a clique.
	if diag.Reached < 15 {
		t.Fatalf("reached only %d of 30 on a clique", diag.Reached)
	}
	if diag.Replies != diag.Reached-1 {
		t.Fatalf("replies = %d, want %d", diag.Replies, diag.Reached-1)
	}
	if est != float64(diag.Reached) {
		t.Fatalf("estimate = %g, want %d", est, diag.Reached)
	}
}

func TestReplyCostRoutedVsDirect(t *testing.T) {
	// Routed replies must cost strictly more than direct ones on a graph
	// with diameter > minHops... any graph with distances >= 2 works.
	const n = 10000
	run := func(routed bool) uint64 {
		net := hetNet(n, 12)
		cfg := Default()
		cfg.RoutedReplies = routed
		e := New(cfg, xrand.New(13))
		initiator, _ := net.RandomPeer(xrand.New(14))
		if _, _, err := e.EstimateFrom(net, initiator); err != nil {
			t.Fatal(err)
		}
		return net.Counter().Count(metrics.KindReply)
	}
	direct := run(false)
	routed := run(true)
	if routed <= direct {
		t.Fatalf("routed reply cost %d not above direct %d", routed, direct)
	}
}

func TestOverheadOrderN(t *testing.T) {
	// Text: a single shot costs O(2N) with direct replies. Check the
	// spread alone stays within a small multiple of N.
	const n = 20000
	net := hetNet(n, 15)
	cfg := Default()
	cfg.RoutedReplies = false
	e := New(cfg, xrand.New(16))
	initiator, _ := net.RandomPeer(xrand.New(17))
	if _, _, err := e.EstimateFrom(net, initiator); err != nil {
		t.Fatal(err)
	}
	total := float64(net.Counter().Total())
	if total < 0.5*n || total > 4*n {
		t.Fatalf("single-shot cost = %.0f messages, want O(2N) with N=%d", total, n)
	}
}

func TestEmptyOverlay(t *testing.T) {
	g := graph.NewWithNodes(1)
	g.RemoveNode(0)
	net := overlay.New(g, 10, nil)
	e := New(Default(), xrand.New(18))
	if _, err := e.Estimate(net); !errors.Is(err, ErrEmptyOverlay) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeadInitiator(t *testing.T) {
	net := hetNet(10, 19)
	id, _ := net.RandomPeer(xrand.New(20))
	net.Leave(id)
	e := New(Default(), xrand.New(21))
	if _, _, err := e.EstimateFrom(net, id); err == nil {
		t.Fatal("dead initiator accepted")
	}
	if _, err := e.EstimateWithOracleDistances(net, id); err == nil {
		t.Fatal("dead initiator accepted by oracle probe")
	}
	if _, err := e.ReachedFraction(net, id); err == nil {
		t.Fatal("dead initiator accepted by ReachedFraction")
	}
}

func TestIsolatedInitiator(t *testing.T) {
	g := graph.NewWithNodes(5)
	g.AddEdge(1, 2)
	net := overlay.New(g, 10, nil)
	e := New(Default(), xrand.New(22))
	est, diag, err := e.EstimateFrom(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est != 1 || diag.Reached != 1 {
		t.Fatalf("isolated initiator: est=%g reached=%d, want 1/1", est, diag.Reached)
	}
}

func TestSpreadStaysInComponent(t *testing.T) {
	g := graph.NewWithNodes(20)
	for i := graph.NodeID(0); i < 9; i++ {
		g.AddEdge(i, i+1) // component 0..9 (path)
	}
	for i := graph.NodeID(10); i < 19; i++ {
		g.AddEdge(i, i+1) // component 10..19
	}
	net := overlay.New(g, 10, nil)
	e := New(Default(), xrand.New(23))
	_, diag, err := e.EstimateFrom(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Reached > 10 {
		t.Fatalf("spread leaked across components: reached %d", diag.Reached)
	}
}

func TestScratchReuseAcrossRuns(t *testing.T) {
	// Two estimations on the same estimator must not contaminate each
	// other through the versioned scratch arrays.
	net := hetNet(2000, 24)
	e := New(Default(), xrand.New(25))
	a, err := e.Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	// Both estimates must be plausible (within a factor 2 of the truth);
	// stale state would typically produce near-zero or absurd values.
	for _, est := range []float64{a, b} {
		if est < 500 || est > 5000 {
			t.Fatalf("implausible estimate %g on 2000-node overlay", est)
		}
	}
}

func TestScratchGrowsWithJoins(t *testing.T) {
	net := hetNet(100, 26)
	e := New(Default(), xrand.New(27))
	if _, err := e.Estimate(net); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(28)
	for i := 0; i < 500; i++ {
		net.JoinRandomDegree(rng)
	}
	if _, err := e.Estimate(net); err != nil {
		t.Fatal(err)
	}
}

func TestInversePow(t *testing.T) {
	cases := []struct {
		base, exp int
		want      float64
	}{
		{2, 0, 1}, {2, 1, 0.5}, {2, 3, 0.125}, {3, 2, 1.0 / 9},
	}
	for _, c := range cases {
		if got := inversePow(c.base, c.exp); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("inversePow(%d,%d) = %g, want %g", c.base, c.exp, got, c.want)
		}
	}
}

func TestHigherFanoutReachesMore(t *testing.T) {
	const n = 5000
	frac := func(fanout int) float64 {
		net := hetNet(n, 29)
		cfg := Default()
		cfg.GossipTo = fanout
		e := New(cfg, xrand.New(30))
		initiator, _ := net.RandomPeer(xrand.New(31))
		f, err := e.ReachedFraction(net, initiator)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if f2, f4 := frac(2), frac(4); f4 <= f2 {
		t.Fatalf("fanout 4 reached %.2f, not above fanout 2's %.2f", f4, f2)
	}
}
