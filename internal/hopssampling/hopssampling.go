// Package hopssampling implements the HopsSampling size estimator
// (§III-B of the comparative study), the representative of the
// probabilistic-polling class, using the minHopsReporting heuristic of
// Kostoulas, Psaltoulis, Gupta, Birman & Demers (PODC'04 / NCA'05).
//
// The protocol has two phases:
//
//  1. Distance spread. The initiator gossips a poll message carrying a
//     hop counter (gossipTo targets per gossiping node, each infected
//     node gossips for gossipFor rounds). Every node remembers the
//     lowest hop count it received — its estimated distance from the
//     initiator — and the neighbor that delivered it (its parent for
//     routed replies).
//
//  2. Probabilistic reporting. A node at distance h replies with
//     probability 1 when h < minHopsReporting, else with probability
//     gossipTo^-(h - minHopsReporting), which throttles the reply flood
//     from the (exponentially many) far nodes. The initiator multiplies
//     each reply by the inverse of its reporting probability and sums,
//     plus one for itself.
//
// The paper's parameters ([17], [16]): gossipTo=2, gossipFor=1,
// gossipUntil=1, minHopsReporting=5. The under-estimation the paper
// observes (≈ -20%, amplified on scale-free graphs) comes from the
// spread phase missing nodes ("approximatively 11% of non reached nodes
// out of 100,000") — the extrapolation itself is unbiased, which
// Diagnostics lets tests verify directly.
//
// Reply transport is configurable because the paper is ambiguous about
// it: the text prices an estimation at O(2N) messages (direct replies)
// while Table I's 5M figure and the "message flood towards the
// initiator ... may overload the initiator's neighbors" remark imply
// replies routed hop-by-hop through the overlay. RoutedReplies selects
// the Table I behaviour and is the default in the experiments.
package hopssampling

import (
	"errors"
	"fmt"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

// Config parameterizes HopsSampling. Zero values are invalid; use
// Default() for the paper's setting.
type Config struct {
	// GossipTo is the gossip fan-out per round (paper: 2).
	GossipTo int
	// GossipFor is how many rounds an infected node gossips (paper: 1).
	GossipFor int
	// GossipUntil is how many consecutive rounds without any new
	// infection the spread tolerates before stopping (paper: 1).
	GossipUntil int
	// MinHopsReporting is the distance below which nodes always reply
	// (paper: 5).
	MinHopsReporting int
	// RoutedReplies routes responses hop-by-hop along gossip parents
	// (costing distance messages each) instead of directly (1 message).
	RoutedReplies bool
	// MaxRounds bounds the spread phase (safety valve; 0 means 10000).
	MaxRounds int
}

// Default returns the paper's configuration with routed replies.
func Default() Config {
	return Config{
		GossipTo:         2,
		GossipFor:        1,
		GossipUntil:      1,
		MinHopsReporting: 5,
		RoutedReplies:    true,
	}
}

func (c *Config) validate() error {
	if c.GossipTo < 1 {
		return errors.New("hopssampling: GossipTo must be >= 1")
	}
	if c.GossipFor < 1 {
		return errors.New("hopssampling: GossipFor must be >= 1")
	}
	if c.GossipUntil < 1 {
		return errors.New("hopssampling: GossipUntil must be >= 1")
	}
	if c.MinHopsReporting < 1 {
		return errors.New("hopssampling: MinHopsReporting must be >= 1")
	}
	if c.MaxRounds < 0 {
		return errors.New("hopssampling: MaxRounds must be >= 0")
	}
	return nil
}

func (c *Config) maxRounds() int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return 10000
}

// Diagnostics reports per-estimation internals used by the evaluation
// (§V discusses reached fraction and distance accuracy).
type Diagnostics struct {
	// Reached is the number of nodes that received the poll (initiator
	// included).
	Reached int
	// Rounds is the number of spread rounds executed.
	Rounds int
	// Replies is the number of nodes that reported back.
	Replies int
	// Estimate is the extrapolated size (duplicated for convenience).
	Estimate float64
}

// Estimator runs HopsSampling estimations. It satisfies the
// core.Estimator contract.
type Estimator struct {
	cfg Config
	rng *xrand.Rand

	// Per-run scratch, reused across estimations to avoid re-allocating
	// million-entry slices: dist and parent are indexed by node ID and
	// versioned by stamp so clearing is O(1).
	dist   []int32
	parent []graph.NodeID
	stamp  []uint32
	gen    uint32
}

// New builds an Estimator; it panics on invalid configuration.
func New(cfg Config, rng *xrand.Rand) *Estimator {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("hopssampling: nil rng")
	}
	return &Estimator{cfg: cfg, rng: rng}
}

// Name identifies the estimator in reports.
func (e *Estimator) Name() string {
	return fmt.Sprintf("hops-sampling(minHops=%d)", e.cfg.MinHopsReporting)
}

// MutatesOverlay reports false: hops sampling only floods and observes
// (core.OverlayMutator), so the monitor may run it on a shared clone.
func (e *Estimator) MutatesOverlay() bool { return false }

// Config returns the estimator's configuration.
func (e *Estimator) Config() Config { return e.cfg }

// ErrEmptyOverlay is returned when no live peer can initiate.
var ErrEmptyOverlay = errors.New("hopssampling: empty overlay")

// Estimate runs one poll from a random initiator.
func (e *Estimator) Estimate(net *overlay.Network) (float64, error) {
	initiator, ok := net.RandomPeer(e.rng)
	if !ok {
		return 0, ErrEmptyOverlay
	}
	est, _, err := e.EstimateFrom(net, initiator)
	return est, err
}

// EstimateFrom runs one poll from the given initiator and returns the
// estimate together with spread diagnostics.
func (e *Estimator) EstimateFrom(net *overlay.Network, initiator graph.NodeID) (float64, Diagnostics, error) {
	if !net.Alive(initiator) {
		return 0, Diagnostics{}, fmt.Errorf("hopssampling: initiator %d is not alive", initiator)
	}
	e.resetScratch(net.Graph().NumIDs())
	rounds := e.spread(net, initiator)
	est, reached, replies := e.collect(net, initiator)
	d := Diagnostics{Reached: reached, Rounds: rounds, Replies: replies, Estimate: est}
	return est, d, nil
}

func (e *Estimator) resetScratch(numIDs int) {
	if len(e.dist) < numIDs {
		e.dist = make([]int32, numIDs)
		e.parent = make([]graph.NodeID, numIDs)
		e.stamp = make([]uint32, numIDs)
		e.gen = 0
	}
	e.gen++
}

// seen reports whether id has a distance in the current run.
func (e *Estimator) seen(id graph.NodeID) bool { return e.stamp[id] == e.gen }

func (e *Estimator) setDist(id graph.NodeID, d int32, parent graph.NodeID) {
	e.dist[id] = d
	e.parent[id] = parent
	e.stamp[id] = e.gen
}

// maxActivations bounds how many times one node is re-armed to gossip
// during a single poll (first infection plus distance-improvement
// relays). The cap keeps the spread at O(2N) total messages and is what
// leaves a tail of unreached nodes and partially inaccurate distances —
// the two under-estimation sources the paper analyses in §V. Unbounded
// re-arming floods the overlay until reach is ≈100% and the estimate is
// unbiased, which is NOT the algorithm the paper measured.
const maxActivations = 2

// spread runs the bounded gossip dissemination and returns the number of
// rounds executed. A node gossips for GossipFor rounds after its first
// receipt and re-arms when its recorded hop count improves ("the lowest
// hopCount value received by a node is remembered"): relaying
// improvements relaxes recorded distances toward BFS distances, which
// the minHopsReporting extrapolation needs — with pure first-receipt
// relaying, recorded distances would be fan-out-2 tree depths (~log2 N),
// putting nearly every node past minHopsReporting and making the
// inverse-probability weights explode. Relaxation also flows backward:
// links are bidirectional, so a contacted node holding a better distance
// corrects the sender with one response message. The spread stops once
// GossipUntil consecutive rounds infect no new node.
func (e *Estimator) spread(net *overlay.Network, initiator graph.NodeID) int {
	// Asymmetric (NAT-limited) connectivity: a gossip message to a fated
	// peer is sent — and metered — but lost at the NAT, so the peer is
	// never infected, never relays and never replies; the tail of
	// unreached nodes grows by the fated fraction. The bidirectional
	// correction below is exempt: it answers a contact the corrected
	// sender itself initiated, so it rides the established path. Benign
	// policies answer false with zero extra draws.
	pol := net.FaultPolicy()
	numIDs := net.Graph().NumIDs()
	budget := make([]int8, numIDs) // remaining gossip rounds
	acts := make([]int8, numIDs)   // activations consumed
	queued := make([]bool, numIDs) // already in next round's queue
	e.setDist(initiator, 0, graph.None)
	budget[initiator] = int8(e.cfg.GossipFor)
	acts[initiator] = 1
	active := []graph.NodeID{initiator}
	var next []graph.NodeID
	quiet := 0
	rounds := 0
	for len(active) > 0 && quiet < e.cfg.GossipUntil && rounds < e.cfg.maxRounds() {
		rounds++
		next = next[:0]
		infected := 0
		enqueue := func(id graph.NodeID) {
			if !queued[id] {
				queued[id] = true
				next = append(next, id)
			}
		}
		arm := func(id graph.NodeID) {
			if acts[id] >= maxActivations {
				return
			}
			acts[id]++
			budget[id] = int8(e.cfg.GossipFor)
			enqueue(id)
		}
		for _, id := range active {
			for k := 0; k < e.cfg.GossipTo; k++ {
				h := e.dist[id]
				target, ok := net.RandomNeighbor(id, e.rng)
				if !ok {
					break
				}
				net.SendTo(target, metrics.KindGossipSpread)
				if pol != nil && pol.Unreachable(target) {
					continue // sent, lost at the target's NAT
				}
				nd := h + 1
				switch {
				case !e.seen(target):
					e.setDist(target, nd, id)
					infected++
					acts[target] = 1
					budget[target] = int8(e.cfg.GossipFor)
					enqueue(target)
				case nd < e.dist[target]:
					// Better distance: remember it and re-arm the target
					// so the improvement propagates.
					e.setDist(target, nd, id)
					arm(target)
				case e.dist[target]+1 < h:
					// Bidirectional link: the target corrects the sender
					// with its better distance (one response message).
					net.SendTo(id, metrics.KindGossipSpread)
					e.setDist(id, e.dist[target]+1, target)
					arm(id)
				}
			}
			budget[id]--
			if budget[id] > 0 {
				enqueue(id)
			}
		}
		active, next = next, active
		for _, id := range active {
			queued[id] = false
		}
		// Quiescence counts only new infections: once no fresh node was
		// reached for GossipUntil rounds the poll stops, even though
		// distance improvements may still be circulating.
		if infected == 0 {
			quiet++
		} else {
			quiet = 0
		}
	}
	return rounds
}

// collect runs the probabilistic reporting phase and extrapolates the
// size estimate.
func (e *Estimator) collect(net *overlay.Network, initiator graph.NodeID) (est float64, reached, replies int) {
	g := net.Graph()
	total := 1.0 // the initiator counts itself
	reached = 0
	minHops := int32(e.cfg.MinHopsReporting)
	for i := 0; i < g.NumAlive(); i++ {
		id := g.AliveAt(i)
		if !e.seen(id) {
			continue
		}
		reached++
		if id == initiator {
			continue
		}
		h := e.dist[id]
		p := 1.0
		if h >= minHops {
			p = inversePow(e.cfg.GossipTo, int(h-minHops))
		}
		if !e.rng.Bernoulli(p) {
			continue
		}
		replies++
		if e.cfg.RoutedReplies {
			// The response retraces the gossip path: h hops.
			net.SendN(metrics.KindReply, uint64(h))
		} else {
			net.Send(metrics.KindReply)
		}
		total += 1 / p
	}
	return total, reached, replies
}

// inversePow returns base^-exp for small non-negative integer exponents.
func inversePow(base, exp int) float64 {
	p := 1.0
	for i := 0; i < exp; i++ {
		p /= float64(base)
	}
	return p
}

// ReachedFraction runs only the spread phase and returns the fraction of
// live nodes reached — the quantity behind the paper's −20% bias
// discussion. Exposed for experiments and tests.
func (e *Estimator) ReachedFraction(net *overlay.Network, initiator graph.NodeID) (float64, error) {
	if !net.Alive(initiator) {
		return 0, fmt.Errorf("hopssampling: initiator %d is not alive", initiator)
	}
	e.resetScratch(net.Graph().NumIDs())
	e.spread(net, initiator)
	g := net.Graph()
	reached := 0
	for i := 0; i < g.NumAlive(); i++ {
		if e.seen(g.AliveAt(i)) {
			reached++
		}
	}
	return float64(reached) / float64(g.NumAlive()), nil
}

// EstimateWithOracleDistances runs the reporting phase against exact BFS
// distances instead of gossip-derived ones. §V uses exactly this probe
// ("we verified our intuition by giving the accurate distance from the
// initiator to all nodes in the overlay, and the resulting size
// estimation was correct") to show the polling extrapolation itself is
// unbiased.
func (e *Estimator) EstimateWithOracleDistances(net *overlay.Network, initiator graph.NodeID) (float64, error) {
	if !net.Alive(initiator) {
		return 0, fmt.Errorf("hopssampling: initiator %d is not alive", initiator)
	}
	e.resetScratch(net.Graph().NumIDs())
	dist := graph.BFSDistances(net.Graph(), initiator)
	for id, d := range dist {
		if d >= 0 {
			e.setDist(graph.NodeID(id), d, graph.None)
		}
	}
	est, _, _ := e.collect(net, initiator)
	return est, nil
}
