package samplecollide

import (
	"errors"
	"math"
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

func hetNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{T: 0, L: 10},
		{T: -1, L: 10},
		{T: 10, L: 0},
		{T: 10, L: 10, MaxSamples: -1},
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg, xrand.New(1))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil rng did not panic")
			}
		}()
		New(Default(), nil)
	}()
}

func TestName(t *testing.T) {
	e := New(Config{T: 10, L: 42}, xrand.New(1))
	if e.Name() != "sample&collide(l=42)" {
		t.Fatalf("Name = %q", e.Name())
	}
	if e.Config().L != 42 {
		t.Fatal("Config not returned")
	}
}

func TestSamplingUniformityOnHeterogeneousGraph(t *testing.T) {
	// The whole point of the CTRW sampler: despite heterogeneous degrees
	// (1..10), samples must be near-uniform. Chi-squared over 100 nodes,
	// 20000 samples; 99.9% quantile of chi2(99) ≈ 148.2, use slack.
	const n = 100
	net := hetNet(n, 1)
	e := New(Config{T: 10, L: 1}, xrand.New(2))
	initiator, _ := net.RandomPeer(xrand.New(3))
	counts := make([]int, n)
	const draws = 20000
	for i := 0; i < draws; i++ {
		s, err := e.Sample(net, initiator)
		if err != nil {
			t.Fatal(err)
		}
		counts[s]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 160 {
		t.Fatalf("sampling not uniform: chi2 = %.1f over %d cells", chi2, n)
	}
}

func TestSamplingBiasWithTinyT(t *testing.T) {
	// With T near zero the walk stops at the first hop, so samples are
	// neighbors of the initiator only — grossly non-uniform. This guards
	// against the test above passing vacuously.
	const n = 100
	net := hetNet(n, 4)
	e := New(Config{T: 1e-9, L: 1}, xrand.New(5))
	initiator, _ := net.RandomPeer(xrand.New(6))
	seen := map[graph.NodeID]bool{}
	for i := 0; i < 2000; i++ {
		s, _ := e.Sample(net, initiator)
		seen[s] = true
	}
	if len(seen) > net.Degree(initiator)+1 {
		t.Fatalf("T→0 sampled %d distinct nodes, expected ≈ degree(initiator)=%d",
			len(seen), net.Degree(initiator))
	}
}

func TestEstimateConcentration(t *testing.T) {
	// With l = 50 on a 2000-node overlay the relative error of a single
	// estimate is ~1/sqrt(50) ≈ 14%; the mean over 10 runs should be well
	// within that of the truth.
	const n = 2000
	net := hetNet(n, 7)
	e := New(Config{T: 10, L: 50}, xrand.New(8))
	sum := 0.0
	const runs = 10
	for i := 0; i < runs; i++ {
		est, err := e.Estimate(net)
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	mean := sum / runs
	if math.Abs(mean-n)/n > 0.15 {
		t.Fatalf("mean estimate %.0f, truth %d", mean, n)
	}
}

func TestSampleCountMatchesBirthdayParadox(t *testing.T) {
	// X ≈ sqrt(2·l·N): with N = 1000 and l = 20, X ≈ 200.
	const n, l = 1000, 20
	net := hetNet(n, 9)
	e := New(Config{T: 10, L: l}, xrand.New(10))
	if _, err := e.Estimate(net); err != nil {
		t.Fatal(err)
	}
	// The number of samples equals the sample-return message count.
	x := float64(net.Counter().Count(metrics.KindSampleReturn))
	want := math.Sqrt(2 * l * n)
	if x < want/2 || x > want*2 {
		t.Fatalf("samples = %.0f, want ≈%.0f", x, want)
	}
}

func TestWalkLengthMatchesTheory(t *testing.T) {
	// Expected hops per sample ≈ T · avgDegree (each hop decrements the
	// timer by Exp(deg), mean 1/deg).
	const n = 3000
	net := hetNet(n, 11)
	avgDeg := graph.AvgDegree(net.Graph())
	e := New(Config{T: 10, L: 5}, xrand.New(12))
	if _, err := e.Estimate(net); err != nil {
		t.Fatal(err)
	}
	walks := float64(net.Counter().Count(metrics.KindWalk))
	samples := float64(net.Counter().Count(metrics.KindSampleReturn))
	hopsPerSample := walks / samples
	want := 10 * avgDeg
	if hopsPerSample < 0.6*want || hopsPerSample > 1.4*want {
		t.Fatalf("hops/sample = %.1f, want ≈%.1f (T·d̄)", hopsPerSample, want)
	}
}

func TestOverheadScalesWithL(t *testing.T) {
	// Paper §IV-E: cost(l=100) ≈ 3.27 × cost(l=10); generally cost ~ sqrt(l).
	const n = 5000
	cost := func(l int) float64 {
		net := hetNet(n, 13)
		e := New(Config{T: 10, L: l}, xrand.New(14))
		if _, err := e.Estimate(net); err != nil {
			t.Fatal(err)
		}
		return float64(net.Counter().Total())
	}
	ratio := cost(100) / cost(10)
	if ratio < 2 || ratio > 5 {
		t.Fatalf("cost(l=100)/cost(l=10) = %.2f, want ≈3.2", ratio)
	}
}

func TestEstimateEmptyOverlay(t *testing.T) {
	g := graph.NewWithNodes(1)
	g.RemoveNode(0)
	net := overlay.New(g, 10, nil)
	e := New(Default(), xrand.New(15))
	if _, err := e.Estimate(net); !errors.Is(err, ErrEmptyOverlay) {
		t.Fatalf("err = %v, want ErrEmptyOverlay", err)
	}
}

func TestEstimateFromDeadInitiator(t *testing.T) {
	net := hetNet(10, 16)
	id, _ := net.RandomPeer(xrand.New(17))
	net.Leave(id)
	e := New(Default(), xrand.New(18))
	if _, err := e.EstimateFrom(net, id); err == nil {
		t.Fatal("dead initiator accepted")
	}
}

func TestIsolatedInitiatorSamplesItself(t *testing.T) {
	g := graph.NewWithNodes(3)
	g.AddEdge(1, 2) // node 0 isolated
	net := overlay.New(g, 10, nil)
	e := New(Config{T: 10, L: 3}, xrand.New(19))
	est, err := e.EstimateFrom(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every sample collides with node 0 itself: X = l+1 = 4, N̂ = 16/6.
	if est > 4 {
		t.Fatalf("isolated initiator estimate = %g, want tiny", est)
	}
}

func TestEstimateSeesOnlyOwnComponent(t *testing.T) {
	// Two disjoint 500-node components; the estimator must report the
	// initiator's component size, not the global size.
	rng := xrand.New(20)
	g := graph.NewWithNodes(1000)
	for c := 0; c < 2; c++ {
		base := graph.NodeID(c * 500)
		for i := graph.NodeID(0); i < 500; i++ {
			for k := 0; k < 4; k++ {
				v := base + graph.NodeID(rng.Intn(500))
				if u := base + i; u != v {
					g.AddEdge(u, v)
				}
			}
		}
	}
	net := overlay.New(g, 10, nil)
	e := New(Config{T: 10, L: 50}, xrand.New(21))
	est, err := e.EstimateFrom(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est > 800 {
		t.Fatalf("estimate %.0f leaked across components (component size 500)", est)
	}
}

func TestBudgetExhausted(t *testing.T) {
	net := hetNet(1000, 22)
	e := New(Config{T: 10, L: 50, MaxSamples: 3}, xrand.New(23))
	if _, err := e.Estimate(net); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
}

func TestMLECloseToBasic(t *testing.T) {
	const n = 2000
	basic := New(Config{T: 10, L: 100}, xrand.New(24))
	mle := New(Config{T: 10, L: 100, Kind: MLE}, xrand.New(24))
	netA := hetNet(n, 25)
	netB := hetNet(n, 25)
	a, err := basic.Estimate(netA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mle.Estimate(netB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b)/float64(n) > 0.25 {
		t.Fatalf("basic %.0f and MLE %.0f disagree wildly", a, b)
	}
	if math.Abs(b-n)/n > 0.25 {
		t.Fatalf("MLE estimate %.0f far from truth %d", b, n)
	}
}

func TestMLEDegenerate(t *testing.T) {
	// No collisions recorded: falls back to the distinct count.
	if got := mleEstimate([]int32{0, 1, 2}, 3); got != 3 {
		t.Fatalf("degenerate MLE = %g", got)
	}
}

func TestDeterministicGivenSeeds(t *testing.T) {
	run := func() float64 {
		net := hetNet(500, 26)
		e := New(Config{T: 10, L: 30}, xrand.New(27))
		est, err := e.Estimate(net)
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("estimates differ across identical runs: %g vs %g", a, b)
	}
}
