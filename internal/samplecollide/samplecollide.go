// Package samplecollide implements the Sample&Collide size estimator
// (§III-A of the comparative study; Massoulié, Le Merrer, Kermarrec,
// Ganesh, PODC'06), the representative of the random-walk class.
//
// It has two parts:
//
//  1. A uniform peer sampler. The initiator sets a timer T > 0 and sends
//     it on a random walk; each node decrements the timer by an
//     exponential variate -log(U)/degree and forwards the message to a
//     uniformly random neighbor while T > 0. The node at which the timer
//     expires reports itself to the initiator. Because the decrement rate
//     is proportional to degree, this emulates a continuous-time random
//     walk whose stationary distribution is uniform on arbitrary graphs,
//     removing the degree bias of plain random-walk sampling.
//
//  2. The inverted-birthday-paradox estimator. Samples are drawn until l
//     of them hit already-seen nodes ("collisions"); if X samples were
//     needed, the size estimate is N̂ = X²/(2l). Larger l buys accuracy
//     (relative error ~ 1/sqrt(l)) at proportionally larger cost
//     (X ≈ sqrt(2lN) samples of ~T·d̄ hops each).
package samplecollide

import (
	"errors"
	"fmt"
	"math"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/xrand"
)

// EstimatorKind selects the size formula applied to the collision record.
type EstimatorKind int

const (
	// Basic is the paper's N̂ = X²/(2l).
	Basic EstimatorKind = iota
	// MLE numerically maximizes the exact collision likelihood; an
	// extension used in the ablation study.
	MLE
)

// Config parameterizes Sample&Collide. The paper's defaults are T = 10
// and l = 200 (Figs 1, 2, 8-11) or l = 10 for the cheap variant (Fig 18).
type Config struct {
	// T is the sampling timer. The paper sets 10: "this value is
	// sufficient for an accurate sampling".
	T float64
	// L is the number of collisions to wait for.
	L int
	// MaxSamples bounds a single estimation (safety valve on pathological
	// topologies). 0 means 100·sqrt(2·L·maxN) with maxN = 2^31.
	MaxSamples int
	// Kind selects the estimator formula (default Basic).
	Kind EstimatorKind
}

// Default returns the paper's configuration (T=10, l=200).
func Default() Config { return Config{T: 10, L: 200} }

func (c *Config) validate() error {
	if c.T <= 0 {
		return errors.New("samplecollide: T must be > 0")
	}
	if c.L < 1 {
		return errors.New("samplecollide: L must be >= 1")
	}
	if c.MaxSamples < 0 {
		return errors.New("samplecollide: MaxSamples must be >= 0")
	}
	return nil
}

func (c *Config) maxSamples() int {
	if c.MaxSamples > 0 {
		return c.MaxSamples
	}
	return 100 * int(math.Sqrt(2*float64(c.L)*float64(1<<31)))
}

// Estimator runs Sample&Collide estimations on an overlay. It satisfies
// the core.Estimator contract.
type Estimator struct {
	cfg Config
	rng *xrand.Rand
}

// New builds an Estimator; it panics on invalid configuration (programmer
// error, caught in tests).
func New(cfg Config, rng *xrand.Rand) *Estimator {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("samplecollide: nil rng")
	}
	return &Estimator{cfg: cfg, rng: rng}
}

// Name identifies the estimator in reports, e.g. "sample&collide(l=200)".
func (e *Estimator) Name() string {
	return fmt.Sprintf("sample&collide(l=%d)", e.cfg.L)
}

// MutatesOverlay reports false: sample & collide only walks the overlay
// (core.OverlayMutator), so the monitor may run it on a shared clone.
func (e *Estimator) MutatesOverlay() bool { return false }

// Config returns the estimator's configuration.
func (e *Estimator) Config() Config { return e.cfg }

// ErrEmptyOverlay is returned when no live peer can initiate.
var ErrEmptyOverlay = errors.New("samplecollide: empty overlay")

// ErrBudgetExhausted is returned when MaxSamples walks did not produce L
// collisions.
var ErrBudgetExhausted = errors.New("samplecollide: sample budget exhausted before l collisions")

// Estimate runs one full estimation from a random initiator and returns
// the estimated overlay size. Message costs (walk hops and sample
// returns) are metered on the network's counter.
func (e *Estimator) Estimate(net *overlay.Network) (float64, error) {
	initiator, ok := net.RandomPeer(e.rng)
	if !ok {
		return 0, ErrEmptyOverlay
	}
	return e.EstimateFrom(net, initiator)
}

// EstimateFrom runs one full estimation from the given initiator.
func (e *Estimator) EstimateFrom(net *overlay.Network, initiator graph.NodeID) (float64, error) {
	if !net.Alive(initiator) {
		return 0, fmt.Errorf("samplecollide: initiator %d is not alive", initiator)
	}
	seen := make(map[graph.NodeID]struct{}, 4*e.cfg.L)
	collisions := 0
	samples := 0
	// collisionAt[k] is how many collisions happened while k distinct
	// nodes were known; kept for the MLE refinement.
	var distinctWhenDrawn []int32
	budget := e.cfg.maxSamples()
	for collisions < e.cfg.L {
		if samples >= budget {
			return 0, ErrBudgetExhausted
		}
		s := e.sample(net, initiator)
		samples++
		if e.cfg.Kind == MLE {
			distinctWhenDrawn = append(distinctWhenDrawn, int32(len(seen)))
		}
		if _, dup := seen[s]; dup {
			collisions++
		} else {
			seen[s] = struct{}{}
		}
	}
	switch e.cfg.Kind {
	case MLE:
		return mleEstimate(distinctWhenDrawn, len(seen)), nil
	default:
		x := float64(samples)
		return x * x / (2 * float64(e.cfg.L)), nil
	}
}

// sample performs one timer-driven random walk from the initiator and
// returns the sampled node. An isolated initiator samples itself (the
// walk cannot leave), which keeps degenerate overlays well-defined.
// Hops are addressed sends, so a live transport routes each one to the
// next peer's real socket; the sample return rides the walk's reverse
// path back to the initiator.
func (e *Estimator) sample(net *overlay.Network, initiator graph.NodeID) graph.NodeID {
	pol := net.FaultPolicy()
	cur, ok := net.RandomNeighbor(initiator, e.rng)
	if !ok {
		net.SendTo(initiator, metrics.KindSampleReturn)
		return initiator
	}
	cur = natHop(net, pol, initiator, cur, e.rng)
	net.SendTo(cur, metrics.KindWalk)
	t := e.cfg.T
	for {
		// Arriving via an edge guarantees degree >= 1 here.
		t -= e.rng.Exp(float64(net.Degree(cur)))
		if t <= 0 {
			break
		}
		next, _ := net.RandomNeighbor(cur, e.rng)
		next = natHop(net, pol, cur, next, e.rng)
		net.SendTo(next, metrics.KindWalk)
		cur = next
	}
	net.SendTo(initiator, metrics.KindSampleReturn)
	return cur
}

// natAttempts bounds the forwarding retries a walk holder spends on
// NAT-unreachable neighbors before falling back to relayed delivery.
const natAttempts = 4

// natHop resolves one forward hop under asymmetric (NAT-limited)
// connectivity: a hop addressed to an unreachable peer is still sent —
// and metered — but times out at the NAT, so the holder redraws another
// neighbor. After natAttempts fated picks in a row the walk proceeds to
// the last pick anyway, modeling relayed delivery through an already-
// established connection (the standard NAT-traversal fallback), which
// bounds the perturbation and guarantees termination. Under a benign
// policy (or none) this is a no-op with zero extra draws, so fault-free
// streams are untouched.
func natHop(net *overlay.Network, pol overlay.FaultPolicy, from, to graph.NodeID, rng *xrand.Rand) graph.NodeID {
	if pol == nil || !pol.Unreachable(to) {
		return to
	}
	for i := 0; i < natAttempts; i++ {
		net.SendTo(to, metrics.KindWalk) // sent, lost at the NAT
		alt, ok := net.RandomNeighbor(from, rng)
		if !ok {
			return to
		}
		to = alt
		if !pol.Unreachable(to) {
			return to
		}
	}
	return to
}

// Sample exposes one uniform sample draw (used by the sampling-uniformity
// tests and by downstream applications that need unbiased peers rather
// than a size estimate).
func (e *Estimator) Sample(net *overlay.Network, initiator graph.NodeID) (graph.NodeID, error) {
	if !net.Alive(initiator) {
		return graph.None, fmt.Errorf("samplecollide: initiator %d is not alive", initiator)
	}
	return e.sample(net, initiator), nil
}

// mleEstimate solves the likelihood equation for N given the collision
// history: at each draw the probability of a collision is s/N with s the
// number of distinct nodes seen so far. The score equation is
//
//	l = Σ_{non-collision draws} s/(N-s)  =  Σ_{k=0}^{D-1} k/(N-k)
//
// with D distinct nodes total, and its right side is strictly decreasing
// in N, so bisection converges.
func mleEstimate(distinctWhenDrawn []int32, distinct int) float64 {
	l := len(distinctWhenDrawn) - distinct // collisions
	if l <= 0 {
		return float64(distinct)
	}
	score := func(n float64) float64 {
		sum := 0.0
		for k := 1; k < distinct; k++ {
			sum += float64(k) / (n - float64(k))
		}
		return sum
	}
	lo := float64(distinct) + 1 // score(lo) is huge
	hi := lo
	for score(hi) > float64(l) {
		hi *= 2
		if hi > 1e15 {
			break
		}
	}
	for i := 0; i < 100 && hi-lo > 0.5; i++ {
		mid := (lo + hi) / 2
		if score(mid) > float64(l) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
