// Package msfix is the meterseam fixture: direct transport calls that
// bypass the overlay's metering-before-delivery seam.
package msfix

import (
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/transport"
)

// Direct calls the transport interface without metering first.
func Direct(t transport.Transport) {
	_ = t.Deliver(1, metrics.KindPush, 1) // want "direct transport Deliver call bypasses the overlay metering seam"
	_, _ = t.Request(1, "op", nil)        // want "direct transport Request call bypasses the overlay metering seam"
}

// ViaOverlayInterface bypasses the seam through the overlay-side
// interface declaration instead; same violation.
func ViaOverlayInterface(t overlay.Transport) {
	_ = t.Deliver(2, metrics.KindPull, 3) // want "direct transport Deliver call bypasses the overlay metering seam"
}

// homonym has a Deliver method that has nothing to do with transports.
type homonym struct{}

func (homonym) Deliver(a, b, c int) int { return a + b + c }

// HomonymOK: unrelated Deliver methods stay quiet.
func HomonymOK(h homonym) int { return h.Deliver(1, 2, 3) }

// MeteredOK is the sanctioned path: the overlay meters, then forwards.
func MeteredOK(n *overlay.Network) { n.Send(metrics.KindPush) }

// SuppressedControlPlane documents a reviewed control-plane RPC.
func SuppressedControlPlane(t transport.Transport) {
	//detlint:allow meterseam — fixture: control-plane RPC, not metered protocol traffic
	_, _ = t.Request(1, "ping", nil)
}
