// Package b is the other half of the cross-package clash with ../a.
package b

import "p2psize/internal/registry"

// Pair collides with its twin in ../a.
var Pair = registry.Descriptor{Name: "pair-b", StreamOffset: 8888} // want "stream offset 8888 of .pair-b. collides with .pair-a. declared at .*sopair/a/a.go"
