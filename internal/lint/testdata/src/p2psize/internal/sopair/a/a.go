// Package a holds one half of a CROSS-PACKAGE stream-offset clash:
// the registry's runtime check only sees descriptors a test happens to
// register together, but the analyzer aggregates literals repo-wide.
package a

import "p2psize/internal/registry"

// Pair collides with its twin in ../b.
var Pair = registry.Descriptor{Name: "pair-a", StreamOffset: 8888} // want "stream offset 8888 of .pair-a. collides with .pair-b. declared at .*sopair/b/b.go"
