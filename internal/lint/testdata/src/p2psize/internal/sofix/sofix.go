// Package sofix is the streamoffset fixture: colliding and
// non-constant registry.Descriptor stream offsets, against the real
// registry type.
package sofix

import "p2psize/internal/registry"

const dupOffset = 7777

// A and B collide; both ends of the clash are reported, each naming
// the other's declaration site.
var A = registry.Descriptor{Name: "so-a", StreamOffset: dupOffset} // want "stream offset 7777 of .so-a. collides with .so-b. declared at"
var B = registry.Descriptor{Name: "so-b", StreamOffset: 7777}      // want "stream offset 7777 of .so-b. collides with .so-a. declared at"

// C is unique: quiet.
var C = registry.Descriptor{Name: "so-c", StreamOffset: 7778}

// Dyn's offset cannot be audited statically.
func Dyn(n uint64) registry.Descriptor {
	return registry.Descriptor{Name: "so-dyn", StreamOffset: n} // want "not a compile-time constant"
}

// DynAllowed documents a reviewed dynamic-offset scheme.
func DynAllowed(n uint64) registry.Descriptor {
	//detlint:allow streamoffset — fixture: runtime-allocated block audited by the registry itself
	return registry.Descriptor{Name: "so-dyn2", StreamOffset: n}
}
