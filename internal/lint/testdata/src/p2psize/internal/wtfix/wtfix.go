// Package wtfix is the walltime fixture: wall-clock reads in a
// deterministic package, plus the clock uses that stay legal.
package wtfix

import "time"

// Stamp reads the wall clock into simulation state.
func Stamp() int64 {
	t := time.Now() // want "wall-clock read time.Now"
	return t.UnixNano()
}

// Elapsed folds a wall-clock interval into a result.
func Elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want "wall-clock read time.Since"
}

// SleepOK: pacing is not a clock *read*; only Now/Since leak wall time
// into results.
func SleepOK() { time.Sleep(time.Millisecond) }

// DurationsOK: time.Duration arithmetic carries no wall-clock value.
func DurationsOK(d time.Duration) time.Duration { return d * 2 }

// SuppressedStamp documents an intentional read.
func SuppressedStamp() time.Time {
	//detlint:allow walltime — fixture: log decoration only, never enters results
	return time.Now()
}
