// Package mrfix is the maprange fixture: the PR-1 bug class
// (map-ordered iteration feeding rng draws, metered sends, or escaping
// slices) plus the sanctioned shapes that must stay quiet.
package mrfix

import (
	"slices"
	"sort"

	"p2psize/internal/metrics"
	"p2psize/internal/xrand"
)

// DrawPerEntry is the PR-1 shape in miniature: one rng draw per map
// entry means the draw sequence follows Go's randomized map order.
func DrawPerEntry(m map[int]int, rng *xrand.Rand) uint64 {
	var acc uint64
	for range m { // want "map iteration order reaches the rng"
		acc += rng.Uint64()
	}
	return acc
}

// HandOff passes the stream to a callee instead of drawing directly;
// the draws still happen in map order.
func HandOff(m map[int]bool, rng *xrand.Rand) {
	for k := range m { // want "map iteration order reaches the rng"
		sink(k, rng)
	}
}

func sink(int, *xrand.Rand) {}

// MeterPerEntry meters one message per map entry: the per-kind series
// diverge run to run.
func MeterPerEntry(m map[int]int, c *metrics.Counter) {
	for range m { // want "map iteration order reaches the message meter"
		c.Inc(metrics.KindPush)
	}
}

// ExportKeys is exactly cyclon.ExportGraph before PR 1: the collected
// slice leaves the loop in map order.
func ExportKeys(m map[int]int) []int {
	var keys []int
	for k := range m { // want "appends to .keys., which outlives the loop in map order"
		keys = append(keys, k)
	}
	return keys
}

// SortedKeys is the PR-1 fix: the accumulated slice is sorted before
// it can influence anything, so map order is scrubbed.
func SortedKeys(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// SortedBySlices scrubs map order with the slices package instead.
func SortedBySlices(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// LocalAccumulator appends to a slice that dies with the iteration:
// order cannot escape.
func LocalAccumulator(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		tmp := []int{}
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}

// OrderFreeSum reduces the map commutatively; no trigger.
func OrderFreeSum(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// SliceLoop draws per entry over a slice — iteration order is
// deterministic, so no finding.
func SliceLoop(xs []int, rng *xrand.Rand) uint64 {
	var acc uint64
	for range xs {
		acc += rng.Uint64()
	}
	return acc
}

// Suppressed documents an intentionally order-exposed loop.
func Suppressed(m map[int]int, rng *xrand.Rand) uint64 {
	var acc uint64
	//detlint:allow maprange — fixture: the draw count, not the order, matters here
	for range m {
		acc += rng.Uint64()
	}
	return acc
}
