// Package scopefix sits under the transport subtree, which the
// deterministic analyzers allowlist wholesale: this layer owns real
// clocks and sockets. Violations of maprange and walltime below must
// produce no findings.
package scopefix

import (
	"time"

	"p2psize/internal/xrand"
)

// Busy commits every deterministic sin at once — legally, here.
func Busy(m map[int]int, rng *xrand.Rand) uint64 {
	acc := uint64(time.Now().UnixNano())
	for range m {
		acc += rng.Uint64()
	}
	return acc
}
