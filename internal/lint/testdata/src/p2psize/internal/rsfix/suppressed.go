package rsfix

import (
	//detlint:allow rngsource — fixture: documenting the directive form for a reviewed exception
	randv2 "math/rand/v2"
)

// V2Allowed rides the reviewed exception above.
func V2Allowed() uint64 { return randv2.Uint64() }
