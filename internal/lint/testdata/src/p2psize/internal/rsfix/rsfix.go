// Package rsfix is the rngsource fixture: every stdlib randomness
// import is banned — the seeded xrand streams are the contract.
package rsfix

import (
	crand "crypto/rand" // want "import of .crypto/rand. is forbidden"
	mrand "math/rand"   // want "import of .math/rand. is forbidden"

	"p2psize/internal/xrand"
)

// Read uses the banned crypto source.
func Read(p []byte) { _, _ = crand.Read(p) }

// Intn uses the banned math source.
func Intn(n int) int { return mrand.Intn(n) }

// SeededOK draws from the sanctioned stream.
func SeededOK(rng *xrand.Rand) uint64 { return rng.Uint64() }
