package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// StreamOffset statically extracts every registry.Descriptor composite
// literal in the module and checks the seed-stream offset contract:
// offsets must be compile-time constants (a dynamic offset cannot be
// audited for collisions) and unique across the whole repo. The
// runtime check in registry.Register only fires for rosters a test
// happens to load; this analyzer sees every literal, loaded or not,
// and a collision finding carries BOTH declaration sites so each end
// of the clash is clickable.
var StreamOffset = &Analyzer{
	Name:   "streamoffset",
	Doc:    "registry.Descriptor stream offsets must be constant and collision-free repo-wide",
	Run:    runStreamOffset,
	Finish: finishStreamOffset,
}

// offsetSite is one constant StreamOffset field occurrence.
type offsetSite struct {
	val   uint64
	owner string // Descriptor.Name when it is a constant string, else "?"
	pos   token.Position
}

func runStreamOffset(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if t := info.TypeOf(lit); t == nil || !isNamedFrom(t, pkgRegistry, "Descriptor") {
				return true
			}
			var (
				offKV *ast.KeyValueExpr
				owner = "?"
			)
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				switch key.Name {
				case "StreamOffset":
					offKV = kv
				case "Name":
					if tv, ok := info.Types[kv.Value]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
						owner = constant.StringVal(tv.Value)
					}
				}
			}
			if offKV == nil {
				return true
			}
			tv, ok := info.Types[offKV.Value]
			if !ok || tv.Value == nil {
				pass.Reportf(offKV.Value.Pos(), "registry.Descriptor StreamOffset is not a compile-time constant: dynamic offsets cannot be audited for seed-stream collisions")
				return true
			}
			val, ok := constant.Uint64Val(constant.ToInt(tv.Value))
			if !ok {
				pass.Reportf(offKV.Value.Pos(), "registry.Descriptor StreamOffset does not fit uint64")
				return true
			}
			pass.Suite.offsetSites = append(pass.Suite.offsetSites, offsetSite{
				val:   val,
				owner: owner,
				pos:   pass.Position(offKV.Value.Pos()),
			})
			return true
		})
	}
}

func finishStreamOffset(s *Suite) {
	byVal := map[uint64][]offsetSite{}
	for _, site := range s.offsetSites {
		byVal[site.val] = append(byVal[site.val], site)
	}
	for val, sites := range byVal {
		if len(sites) < 2 {
			continue
		}
		for i, site := range sites {
			other := sites[(i+1)%len(sites)]
			s.report(Diagnostic{
				Pos:      site.pos,
				Analyzer: "streamoffset",
				Message:  formatCollision(val, site, other),
			})
		}
	}
}

func formatCollision(val uint64, site, other offsetSite) string {
	return "stream offset " + utoa(val) + " of " + quoteOwner(site.owner) +
		" collides with " + quoteOwner(other.owner) + " declared at " + other.pos.String()
}

func quoteOwner(owner string) string {
	if owner == "?" {
		return "a descriptor with a non-constant name"
	}
	return "\"" + owner + "\""
}

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
