package lint

import (
	"go/ast"
)

// MeterSeam flags direct calls to the transport's Deliver/Request
// surface outside internal/overlay (and the transport package itself).
// PR 7's contract is metering-before-delivery: overlay.Send/SendTo/
// SendN meter first and then hand the message to the installed
// transport, which is what keeps live and simulated runs bit-identical
// — a protocol that talks to the transport directly moves unmetered
// traffic and skews every overhead comparison. Control-plane RPC in
// the cluster coordinator is an intentional exception and carries
// reviewed //detlint:allow directives.
var MeterSeam = &Analyzer{
	Name:      "meterseam",
	Doc:       "transport Deliver/Request may only be called behind the overlay metering seam",
	Allowlist: []string{pkgOverlay + "/...", pkgTransport + "/..."},
	Run:       runMeterSeam,
}

func runMeterSeam(pass *Pass) {
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Pkg.Info, call)
			if fn == nil || fn.Signature().Recv() == nil {
				return true
			}
			pkg := funcPkgPath(fn)
			if pkg != pkgTransport && pkg != pkgOverlay {
				return true
			}
			switch fn.Name() {
			case "Deliver", "Request":
				pass.Reportf(call.Pos(), "direct transport %s call bypasses the overlay metering seam (meter protocol traffic through overlay.Send/SendTo/SendN so live and simulated runs stay bit-identical)", fn.Name())
			}
			return true
		})
	}
}
