// Package lint is detlint: a suite of static analyzers that enforce
// the repo's determinism and metering invariants at lint time instead
// of (only) at runtime. Every PR since the seed has re-proven the same
// property — byte-identical output at any worker count — with checksum
// tests that catch nondeterminism only after the fact; the three
// map-iteration bugs fixed in PR 1 (graph.BarabasiAlbert,
// cyclon.ExportGraph, cyclon.Join) are the canonical failure class.
// These analyzers flag that class (and its cousins: wall-clock reads,
// stray rng sources, seed-stream offset collisions, metering-seam
// bypasses) while the diff is still on screen.
//
// The framework mirrors the golang.org/x/tools/go/analysis shape —
// one Analyzer value per invariant, a Pass carrying one type-checked
// package, Reportf for diagnostics — but is built purely on the
// standard library (go/ast, go/types, go/importer) so the module stays
// dependency-free: packages are loaded from source with imports
// resolved through `go list -export` compiler export data (see
// load.go). Migrating an analyzer onto the real x/tools multichecker
// is mechanical: the Run signature and diagnostic positions carry over
// unchanged.
//
// Suppression: a finding is intentionally kept by placing a line
// directive
//
//	//detlint:allow <analyzer>[,<analyzer>...]  <justification>
//
// either at the end of the flagged line or on the line directly above
// it. The justification is free text and is required by review policy,
// not by the tool. Test files are not analyzed: the invariants guard
// shipped simulation code, and tests legitimately read wall clocks and
// construct colliding descriptors on purpose.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, resolved to a concrete source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Package is one loaded, type-checked package: the unit an analyzer
// Run sees. Files holds the absolute file names parallel to Syntax.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []string
	Syntax     []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Analyzer is one invariant checker. Scope is decided by the driver
// before Run is called: InternalOnly restricts the analyzer to
// packages under <module>/internal, and Allowlist exempts packages
// (import-path entries, trailing "/..." for subtrees) or single files
// (path-suffix entries containing ".go"). Run reports per-package
// findings; the optional Finish hook runs once after every package and
// is where cross-package facts (e.g. stream-offset collisions) turn
// into diagnostics.
type Analyzer struct {
	Name         string
	Doc          string
	InternalOnly bool
	Allowlist    []string
	Run          func(*Pass)
	Finish       func(*Suite)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Suite    *Suite
}

// Reportf records a finding at pos. Allowlisted files and
// //detlint:allow directives are honored by the suite afterwards, so
// analyzers report unconditionally.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Suite.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Position resolves a token.Pos against the package's file set; used
// by analyzers that embed a second source position in a message (the
// stream-offset collision findings link both literals).
func (p *Pass) Position(pos token.Pos) token.Position { return p.Pkg.Fset.Position(pos) }

// Suite runs a set of analyzers over a set of packages and owns the
// cross-cutting state: the module path for scope decisions, directive
// suppression, and per-analyzer cross-package facts.
type Suite struct {
	Analyzers  []*Analyzer
	ModulePath string

	diags []Diagnostic
	// allows maps file name -> line -> analyzer names allowed there.
	allows map[string]map[int]map[string]bool
	// offsetSites accumulates streamoffset facts across packages.
	offsetSites []offsetSite
	// finishPkg lets Finish hooks report without a Pass.
	finish *Pass
}

func (s *Suite) report(d Diagnostic) { s.diags = append(s.diags, d) }

// Run analyzes every package with every in-scope analyzer, runs the
// Finish hooks, filters suppressed findings, and returns the surviving
// diagnostics sorted by position.
func (s *Suite) Run(pkgs []*Package) []Diagnostic {
	s.diags = nil
	s.allows = map[string]map[int]map[string]bool{}
	s.offsetSites = nil
	for _, pkg := range pkgs {
		s.scanDirectives(pkg)
	}
	for _, pkg := range pkgs {
		for _, a := range s.Analyzers {
			if !s.inScope(a, pkg.ImportPath) {
				continue
			}
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Suite: s})
		}
	}
	for _, a := range s.Analyzers {
		if a.Finish != nil {
			a.Finish(s)
		}
	}
	kept := s.diags[:0:0]
	for _, d := range s.diags {
		if s.suppressed(d) || s.fileAllowlisted(d) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// inScope reports whether the analyzer covers the import path at the
// package level. File-level allowlist entries are applied later, per
// diagnostic.
func (s *Suite) inScope(a *Analyzer, importPath string) bool {
	if s.ModulePath == "" || (importPath != s.ModulePath && !strings.HasPrefix(importPath, s.ModulePath+"/")) {
		return false // outside the module entirely
	}
	if a.InternalOnly && !strings.Contains("/"+strings.TrimPrefix(importPath, s.ModulePath), "/internal/") &&
		!strings.HasSuffix(importPath, "/internal") {
		return false
	}
	for _, entry := range a.Allowlist {
		if strings.Contains(entry, ".go") {
			continue // file entry; handled per diagnostic
		}
		if sub, ok := strings.CutSuffix(entry, "/..."); ok {
			if importPath == sub || strings.HasPrefix(importPath, sub+"/") {
				return false
			}
		} else if importPath == entry {
			return false
		}
	}
	return true
}

// fileAllowlisted reports whether the diagnostic's file is exempted by
// a ".go" allowlist entry (matched as a path suffix, so entries are
// written module-relative: "internal/experiments/suite.go").
func (s *Suite) fileAllowlisted(d Diagnostic) bool {
	var a *Analyzer
	for _, cand := range s.Analyzers {
		if cand.Name == d.Analyzer {
			a = cand
			break
		}
	}
	if a == nil {
		return false
	}
	for _, entry := range a.Allowlist {
		if strings.Contains(entry, ".go") && strings.HasSuffix(d.Pos.Filename, entry) {
			return true
		}
	}
	return false
}

// scanDirectives indexes every //detlint:allow comment in the package.
func (s *Suite) scanDirectives(pkg *Package) {
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//detlint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := s.allows[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					s.allows[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = map[string]bool{}
					byLine[pos.Line] = names
				}
				for _, n := range strings.Split(fields[0], ",") {
					names[strings.TrimSpace(n)] = true
				}
			}
		}
	}
}

// suppressed reports whether an allow directive for the diagnostic's
// analyzer sits on the flagged line or the line directly above it.
func (s *Suite) suppressed(d Diagnostic) bool {
	byLine := s.allows[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if names := byLine[line]; names[d.Analyzer] || names["all"] {
			return true
		}
	}
	return false
}

// NewSuite builds a suite over the given analyzers (nil means All).
func NewSuite(modulePath string, analyzers []*Analyzer) *Suite {
	if analyzers == nil {
		analyzers = All()
	}
	return &Suite{Analyzers: analyzers, ModulePath: modulePath}
}

// All returns the five shipped analyzers in stable order.
func All() []*Analyzer {
	return []*Analyzer{MapRange, WallTime, RNGSource, StreamOffset, MeterSeam}
}

// ByName resolves analyzer names (comma-separated, case-insensitive)
// against All; unknown names error.
func ByName(spec string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(Names(), ", "))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty analyzer selection")
	}
	return out, nil
}

// Names lists the shipped analyzer names in stable order.
func Names() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}
