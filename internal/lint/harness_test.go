package lint

// The analysistest-style harness: fixtures live under testdata/src at
// the directory mirroring the import path they claim (the GOPATH-shaped
// layout golang.org/x/tools/go/analysis/analysistest uses), and every
// line expecting a finding carries a `// want "regexp"` comment. The
// harness loads the fixture package with the real loader — imports
// resolve against the actual module, so fixtures exercise the real
// xrand/overlay/registry/transport types — runs the suite, and matches
// findings against expectations both ways: an unmatched finding and an
// unsatisfied want are both failures. //detlint:allow suppression runs
// through the same path, so "suppressed" fixtures verify absence.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRE = regexp.MustCompile(`// want (.+)$`)
var wantArgRE = regexp.MustCompile(`"([^"]*)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// runFixture analyzes the testdata/src/<importPath> packages with the
// given analyzers — all in ONE suite, so cross-package facts like
// stream-offset collisions aggregate — and checks the // want
// expectations in their files.
func runFixture(t *testing.T, analyzers []*Analyzer, importPaths ...string) {
	t.Helper()
	loader := NewLoader("")
	var pkgs []*Package
	var wants []*expectation
	for _, importPath := range importPaths {
		dir := filepath.Join("testdata", "src", filepath.FromSlash(importPath))
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", importPath, err)
		}
		pkgs = append(pkgs, pkg)
		for _, file := range pkg.Files {
			wants = append(wants, scanWants(t, file)...)
		}
	}
	suite := NewSuite("p2psize", analyzers)
	diags := suite.Run(pkgs)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// scanWants extracts the // want expectations of one fixture file.
func scanWants(t *testing.T, file string) []*expectation {
	t.Helper()
	f, err := os.Open(file)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wants []*expectation
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		m := wantRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		args := wantArgRE.FindAllStringSubmatch(m[1], -1)
		if len(args) == 0 {
			t.Fatalf("%s:%d: malformed want comment (need quoted regexps)", file, line)
		}
		for _, a := range args {
			re, err := regexp.Compile(a[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", file, line, a[1], err)
			}
			wants = append(wants, &expectation{file: file, line: line, pattern: re})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return wants
}

// writeFile drops one source file into a synthesized fixture dir.
func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// fixturePath builds the fixture import paths used below; fixtures sit
// under the module's internal tree so the InternalOnly analyzers see
// them as in scope.
func fixturePath(name string) string {
	return fmt.Sprintf("p2psize/internal/%s", strings.TrimPrefix(name, "/"))
}
