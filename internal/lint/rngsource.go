package lint

import "strings"

// RNGSource forbids importing math/rand, math/rand/v2 and crypto/rand
// anywhere in the module. Every random draw must come from a seeded
// p2psize/internal/xrand stream: the split-stream discipline (one
// *xrand.Rand per component, derived from the experiment seed) is what
// makes runs byte-identical across worker counts and machines, and a
// single stray stdlib draw silently breaks it. Unlike the other
// analyzers this one covers cmd/ and the public API too — an rng
// smuggled in at the CLI boundary corrupts reproducibility just as
// thoroughly.
var RNGSource = &Analyzer{
	Name: "rngsource",
	Doc:  "all randomness must come from p2psize/internal/xrand streams",
	Run:  runRNGSource,
}

var bannedRNGImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

func runRNGSource(pass *Pass) {
	for _, file := range pass.Pkg.Syntax {
		for _, spec := range file.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if bannedRNGImports[path] {
				pass.Reportf(spec.Pos(), "import of %q is forbidden: derive all randomness from seeded p2psize/internal/xrand streams (Split/NewStream) so runs stay byte-identical", path)
			}
		}
	}
}
