// Shared plumbing for the five analyzers: the repo package paths the
// invariants are phrased in, and small go/types helpers. The paths are
// spelled as constants (not derived from the module path) because the
// invariants are about THESE packages — the xrand streams, the overlay
// meter, the transport seam — and the analysistest fixtures import the
// real ones.
package lint

import (
	"go/ast"
	"go/types"
)

const (
	pkgXrand     = "p2psize/internal/xrand"
	pkgOverlay   = "p2psize/internal/overlay"
	pkgMetrics   = "p2psize/internal/metrics"
	pkgTransport = "p2psize/internal/transport"
	pkgRegistry  = "p2psize/internal/registry"
	pkgCluster   = "p2psize/internal/cluster"
)

// walltimeAllowlist are the reviewed wall-clock sites: suite timing
// reports wall-clock cost (it never feeds estimator arithmetic), the
// transport owns RTO/retry timers, and the cluster daemons are the
// deployment edge.
var walltimeAllowlist = []string{
	pkgTransport + "/...",
	pkgCluster + "/...",
	"internal/experiments/suite.go",
}

// deterministicAllowlist are the packages outside the determinism
// contract entirely: the transport and cluster layers sit below the
// metering seam and talk to real sockets and clocks.
var deterministicAllowlist = []string{
	pkgTransport + "/...",
	pkgCluster + "/...",
}

// calleeFunc resolves a call's callee to its function or method object,
// looking through selectors and parenthesization. Returns nil for
// builtins, type conversions and indirect calls through non-selector
// expressions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcPkgPath returns the import path of the package the function or
// method is declared in ("" for builtins and error.Error).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isNamedFrom reports whether t (possibly behind pointers) is the
// named type pkgPath.name.
func isNamedFrom(t types.Type, pkgPath, name string) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// identObj resolves an identifier to its object through Uses/Defs.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// isAppendCall reports whether the call is the append builtin.
func isAppendCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := identObj(info, id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// mentionsObj reports whether the expression tree mentions an
// identifier bound to obj.
func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && identObj(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}
