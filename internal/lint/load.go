// Package loading for detlint. The analyzers need fully type-checked
// packages (map-ness of a ranged expression, the *xrand.Rand-ness of a
// call argument, constant evaluation of StreamOffset fields), and the
// module deliberately has no dependency on golang.org/x/tools, so the
// loader does what go/packages would do, with the standard library
// only: one `go list -e -export -deps -json` invocation resolves the
// pattern set and yields compiler export data for every dependency
// (stdlib included — the go command builds it into the build cache on
// demand, no network), target packages are parsed from source, and
// go/types checks them with an importer that reads the export data.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Loader loads and type-checks packages of the enclosing module.
// It is not safe for concurrent use (the underlying gc importer is
// stateful); detlint runs are sequential.
type Loader struct {
	// Dir is where `go list` runs; any directory inside the module.
	Dir string

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
	module  string
}

// NewLoader returns a loader rooted at dir ("" for the process cwd).
func NewLoader(dir string) *Loader {
	l := &Loader{Dir: dir, fset: token.NewFileSet(), exports: map[string]string{}}
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("detlint: no export data for %q (not reachable from the listed patterns)", path)
		}
		return os.Open(f)
	})
	return l
}

// Module returns the enclosing module's path (cached).
func (l *Loader) Module() (string, error) {
	if l.module != "" {
		return l.module, nil
	}
	out, err := l.goList("-m", "-f", "{{.Path}}")
	if err != nil {
		return "", err
	}
	l.module = strings.TrimSpace(string(out))
	if l.module == "" {
		return "", fmt.Errorf("detlint: no module found at %q", l.Dir)
	}
	return l.module, nil
}

// ModuleDir returns the enclosing module's root directory; the
// repo-self-check test anchors its ./... pattern there rather than at
// the test's own package directory.
func (l *Loader) ModuleDir() (string, error) {
	out, err := l.goList("-m", "-f", "{{.Dir}}")
	if err != nil {
		return "", err
	}
	dir := strings.TrimSpace(string(out))
	if dir == "" {
		return "", fmt.Errorf("detlint: no module found at %q", l.Dir)
	}
	return dir, nil
}

// Load resolves the patterns and returns the matched module packages,
// parsed and type-checked. Test files are not loaded: the invariants
// guard shipped code, and tests read wall clocks and build colliding
// descriptors on purpose.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, p := range listed {
		if p.Standard || p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := l.check(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads one directory of Go files as a package under the given
// import path, without requiring it to be part of the build — this is
// how the analysistest fixtures under testdata/src (which mirror the
// import path they claim) are brought up. Imports are resolved against
// the real module and standard library.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("detlint: no Go files in %s", dir)
	}
	// Pre-resolve the fixture's imports so the export-data table covers
	// them (the fixture itself is outside the module graph).
	var imports []string
	for _, f := range files {
		af, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, f), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range af.Imports {
			imports = append(imports, strings.Trim(spec.Path.Value, `"`))
		}
	}
	if len(imports) > 0 {
		if _, err := l.list(imports); err != nil {
			return nil, err
		}
	}
	return l.check(importPath, dir, files)
}

// list runs go list over the patterns, records every export data file
// it reports, and returns the listed packages.
func (l *Loader) list(patterns []string) ([]listPackage, error) {
	args := append([]string{"-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Module,Error"}, patterns...)
	out, err := l.goList(args...)
	if err != nil {
		return nil, err
	}
	var listed []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("detlint: decoding go list output: %w", err)
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("detlint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		listed = append(listed, p)
	}
	return listed, nil
}

func (l *Loader) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("detlint: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// check parses and type-checks one package from source.
func (l *Loader) check(importPath, dir string, fileNames []string) (*Package, error) {
	var (
		syntax []*ast.File
		files  []string
	)
	for _, name := range fileNames {
		full := filepath.Join(dir, name)
		af, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
		files = append(files, full)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("detlint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Syntax:     syntax,
		Types:      tpkg,
		Info:       info,
	}, nil
}
