package lint

// Unit coverage for the framework pieces the fixtures exercise only
// implicitly: scope resolution, the file-suffix allowlist, directive
// suppression placement, and analyzer name resolution.

import (
	"go/token"
	"strings"
	"testing"
)

func TestInScope(t *testing.T) {
	a := &Analyzer{
		Name:         "probe",
		InternalOnly: true,
		Allowlist:    []string{"p2psize/internal/transport/...", "p2psize/internal/cluster/...", "internal/experiments/suite.go"},
	}
	s := NewSuite("p2psize", []*Analyzer{a})
	cases := []struct {
		path string
		want bool
	}{
		{"p2psize/internal/xrand", true},
		{"p2psize/internal/experiments", true}, // file entry must not exempt the package
		{"p2psize/internal/transport", false},
		{"p2psize/internal/transport/scopefix", false}, // /... covers the subtree
		{"p2psize/internal/cluster", false},
		{"p2psize", false},              // InternalOnly excludes the module root
		{"p2psize/cmd/figures", false},  // ...and cmd
		{"other/internal/thing", false}, // outside the module
	}
	for _, c := range cases {
		if got := s.inScope(a, c.path); got != c.want {
			t.Errorf("inScope(%q) = %v, want %v", c.path, got, c.want)
		}
	}

	wide := &Analyzer{Name: "wide"}
	sw := NewSuite("p2psize", []*Analyzer{wide})
	for _, path := range []string{"p2psize", "p2psize/cmd/figures", "p2psize/internal/xrand"} {
		if !sw.inScope(wide, path) {
			t.Errorf("module-wide analyzer out of scope for %q", path)
		}
	}
}

func TestExactAllowlistEntry(t *testing.T) {
	a := &Analyzer{Name: "probe", Allowlist: []string{"p2psize/internal/overlay"}}
	s := NewSuite("p2psize", []*Analyzer{a})
	if s.inScope(a, "p2psize/internal/overlay") {
		t.Error("exact allowlist entry not honored")
	}
	if !s.inScope(a, "p2psize/internal/overlaytools") {
		t.Error("exact entry must not cover sibling prefixes")
	}
}

func TestFileAllowlist(t *testing.T) {
	a := &Analyzer{Name: "probe", Allowlist: []string{"internal/experiments/suite.go"}}
	s := NewSuite("p2psize", []*Analyzer{a})
	d := Diagnostic{Analyzer: "probe", Pos: token.Position{Filename: "/root/repo/internal/experiments/suite.go", Line: 3}}
	if !s.fileAllowlisted(d) {
		t.Error("suffix file entry not honored")
	}
	d.Pos.Filename = "/root/repo/internal/experiments/static.go"
	if s.fileAllowlisted(d) {
		t.Error("file entry leaked onto a sibling file")
	}
}

func TestDirectivePlacement(t *testing.T) {
	src := `package p

import "time"

func SameLine() int64 {
	return time.Now().UnixNano() //detlint:allow walltime — same-line directive
}

func LineAbove() int64 {
	//detlint:allow walltime — directive on the line above
	return time.Now().UnixNano()
}

func WrongName() int64 {
	//detlint:allow maprange — names another analyzer; no suppression
	return time.Now().UnixNano()
}

func TooFar() int64 {
	//detlint:allow walltime — two lines up does not count

	return time.Now().UnixNano()
}
`
	dir := t.TempDir()
	writeFile(t, dir, "p.go", src)
	pkg, err := NewLoader("").LoadDir(dir, "p2psize/internal/dirfix")
	if err != nil {
		t.Fatal(err)
	}
	diags := NewSuite("p2psize", []*Analyzer{WallTime}).Run([]*Package{pkg})
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (WrongName and TooFar): %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "walltime" {
			t.Errorf("unexpected analyzer %q", d.Analyzer)
		}
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("maprange, WALLTIME")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0] != MapRange || as[1] != WallTime {
		t.Fatalf("ByName resolved %v", as)
	}
	if _, err := ByName("nope"); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("expected unknown-analyzer error, got %v", err)
	}
	if _, err := ByName(" , "); err == nil {
		t.Fatal("expected error on empty selection")
	}
	if len(Names()) != 5 {
		t.Fatalf("expected 5 analyzers, have %v", Names())
	}
}
