package lint

import (
	"go/ast"
)

// WallTime forbids reading the wall clock (time.Now, time.Since) in
// deterministic packages. Estimator arithmetic, churn replay and the
// monitor timeline all advance on the seeded discrete event clock;
// a wall-clock read that leaks into any of them makes runs diverge
// between machines and between worker counts. The reviewed wall-time
// sites are allowlisted: experiments/suite.go (wall-time *reporting*,
// never fed back into results), the transport (RTO/retry timers) and
// the cluster daemons (deployment edge).
var WallTime = &Analyzer{
	Name:         "walltime",
	Doc:          "no time.Now/time.Since outside the allowlisted wall-time sites",
	InternalOnly: true,
	Allowlist:    walltimeAllowlist,
	Run:          runWallTime,
}

func runWallTime(pass *Pass) {
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Pkg.Info, call)
			if fn == nil || funcPkgPath(fn) != "time" {
				return true
			}
			switch fn.Name() {
			case "Now", "Since":
				pass.Reportf(call.Pos(), "wall-clock read time.%s in a deterministic package (drive logic from the seeded timeline; wall time is reserved to suite timing, transport timers and cluster daemons)", fn.Name())
			}
			return true
		})
	}
}
