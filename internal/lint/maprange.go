package lint

import (
	"go/ast"
	"go/types"
)

// MapRange flags `for range` over a map in deterministic packages when
// the loop body makes the nondeterministic iteration order observable:
// it draws from an *xrand.Rand stream (the order of draws becomes the
// map order), sends on the overlay meter or a transport (message
// series diverge run to run), or appends to a slice that outlives the
// loop without being sorted afterwards (the PR-1 bug class:
// graph.BarabasiAlbert, cyclon.ExportGraph and cyclon.Join all
// accumulated map-ordered slices that fed later draws). Loops whose
// accumulated slice is passed to sort/slices before use are the
// sanctioned fix and are not flagged.
var MapRange = &Analyzer{
	Name:         "maprange",
	Doc:          "map iteration order must not reach rng draws, metered sends, or escaping slices",
	InternalOnly: true,
	Allowlist:    deterministicAllowlist,
	Run:          runMapRange,
}

func runMapRange(pass *Pass) {
	for _, file := range pass.Pkg.Syntax {
		// Track the innermost enclosing function body so the
		// append-then-sort suppression can look past the loop.
		var stack []ast.Node
		var bodies []*ast.BlockStmt
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				switch stack[len(stack)-1].(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					bodies = bodies[:len(bodies)-1]
				}
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch v := n.(type) {
			case *ast.FuncDecl:
				bodies = append(bodies, v.Body)
			case *ast.FuncLit:
				bodies = append(bodies, v.Body)
			case *ast.RangeStmt:
				var encl *ast.BlockStmt
				if len(bodies) > 0 {
					encl = bodies[len(bodies)-1]
				}
				checkMapRange(pass, v, encl)
			}
			return true
		})
	}
}

func checkMapRange(pass *Pass, loop *ast.RangeStmt, encl *ast.BlockStmt) {
	info := pass.Pkg.Info
	t := info.TypeOf(loop.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if why := rngDraw(info, call); why != "" {
			pass.Reportf(loop.For, "map iteration order reaches the rng: %s inside `for range` over a map (PR-1 bug class; iterate a sorted snapshot instead)", why)
			return false
		}
		if why := meteredSend(info, call); why != "" {
			pass.Reportf(loop.For, "map iteration order reaches the message meter: %s inside `for range` over a map (series diverge run to run; iterate a sorted snapshot instead)", why)
			return false
		}
		if obj := escapingAppend(info, call, loop); obj != nil && !sortedAfter(info, encl, loop, obj) {
			pass.Reportf(loop.For, "`for range` over a map appends to %q, which outlives the loop in map order (PR-1 bug class; sort %q afterwards or iterate a sorted snapshot)", obj.Name(), obj.Name())
			return false
		}
		return true
	})
}

// rngDraw reports a call that draws from (or hands off) an *xrand.Rand.
func rngDraw(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil && funcPkgPath(fn) == pkgXrand {
		if sig := fn.Signature(); sig.Recv() != nil {
			return "(*xrand.Rand)." + fn.Name() + " draw"
		}
	}
	for _, arg := range call.Args {
		if at := info.TypeOf(arg); at != nil && isNamedFrom(at, pkgXrand, "Rand") {
			name := "a call"
			if fn := calleeFunc(info, call); fn != nil {
				name = fn.Name()
			}
			return "*xrand.Rand passed to " + name
		}
	}
	return ""
}

// meteredSend reports a call that meters messages: the overlay Send
// surface, the raw metrics counter, or a transport delivery.
func meteredSend(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	switch funcPkgPath(fn) {
	case pkgOverlay:
		switch fn.Name() {
		case "Send", "SendTo", "SendN", "Deliver":
			return "overlay." + fn.Name()
		}
	case pkgMetrics:
		switch fn.Name() {
		case "Inc", "Add":
			return "metrics.Counter." + fn.Name()
		}
	case pkgTransport:
		switch fn.Name() {
		case "Deliver", "Request":
			return "transport." + fn.Name()
		}
	}
	return ""
}

// escapingAppend returns the object of a slice appended to inside the
// loop but declared outside it, or nil.
func escapingAppend(info *types.Info, call *ast.CallExpr, loop *ast.RangeStmt) types.Object {
	if !isAppendCall(info, call) || len(call.Args) == 0 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := identObj(info, id)
	if obj == nil || obj.Pos() == 0 {
		return nil
	}
	if obj.Pos() >= loop.Pos() && obj.Pos() <= loop.End() {
		return nil // loop-local accumulator, dies with the iteration
	}
	return obj
}

// sortedAfter reports whether, after the loop inside the enclosing
// function body, the object is handed to the sort or slices package —
// the sanctioned way to scrub map order from an accumulated slice.
func sortedAfter(info *types.Info, encl *ast.BlockStmt, loop *ast.RangeStmt, obj types.Object) bool {
	if encl == nil {
		return false
	}
	sorted := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < loop.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObj(info, arg, obj) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
