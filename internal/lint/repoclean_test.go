package lint

import "testing"

// TestRepoClean runs the full analyzer suite over the whole module —
// the same gate CI applies with `go run ./cmd/detlint ./...` — so a
// determinism regression fails `go test ./...` locally, not just CI.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	dir, err := NewLoader("").ModuleDir()
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(dir)
	module, err := loader.Module()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	// Guard against the suite silently analyzing nothing: the module
	// has dozens of packages and must keep having them.
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from %s; loader lost the module", len(pkgs), dir)
	}
	diags := NewSuite(module, nil).Run(pkgs)
	for _, d := range diags {
		t.Errorf("detlint finding in clean repo: %s", d)
	}
}
