package lint

import "testing"

// One fixture tree per analyzer: flagged, quiet and suppressed shapes
// side by side, checked by the analysistest-style harness.

func TestMapRangeFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{MapRange}, fixturePath("mrfix"))
}

func TestWallTimeFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{WallTime}, fixturePath("wtfix"))
}

func TestRNGSourceFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{RNGSource}, fixturePath("rsfix"))
}

func TestStreamOffsetFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{StreamOffset}, fixturePath("sofix"))
}

func TestMeterSeamFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{MeterSeam}, fixturePath("msfix"))
}

// TestStreamOffsetCrossPackage pins the analyzer's reason to exist
// over the runtime registry check: the two halves of the collision
// live in different packages, and each finding names the other file.
func TestStreamOffsetCrossPackage(t *testing.T) {
	runFixture(t, []*Analyzer{StreamOffset},
		fixturePath("sopair/a"), fixturePath("sopair/b"))
}

// TestAllowlistedScope runs the FULL suite over a fixture living in
// the transport subtree: wall-clock reads and map-order rng draws are
// legal below the metering seam, so nothing may be reported.
func TestAllowlistedScope(t *testing.T) {
	runFixture(t, All(), "p2psize/internal/transport/scopefix")
}
