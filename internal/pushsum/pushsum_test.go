package pushsum

import (
	"math"
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/overlay"
	"p2psize/internal/parallel"
	"p2psize/internal/stats"
	"p2psize/internal/xrand"
)

func hetNet(n int, seed uint64) *overlay.Network {
	return overlay.New(graph.Heterogeneous(n, 10, xrand.New(seed)), 10, nil)
}

func TestEstimateConvergesStatic(t *testing.T) {
	const n = 2000
	net := hetNet(n, 1)
	e := NewEstimator(Default(), xrand.New(2))
	est, err := e.Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est/n-1) > 0.05 {
		t.Fatalf("estimate %.1f not within 5%% of %d after %d rounds", est, n, Default().RoundsPerEpoch)
	}
	if net.Counter().Total() == 0 {
		t.Fatal("no messages metered")
	}
}

// TestStatisticalEnvelope is the paper-style bias check: over 30 seeded
// one-epoch estimations on fresh overlays, the mean estimate sits
// within a tight envelope of the truth and the spread is small — the
// same shape of assertion the Aggregation shard tests make.
func TestStatisticalEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("30 full epochs at n=2000")
	}
	const n, runs = 2000, 30
	var r stats.Running
	for i := 0; i < runs; i++ {
		net := hetNet(n, uint64(300+i))
		e := NewEstimator(Default(), xrand.New(uint64(700+i)))
		est, err := e.Estimate(net)
		if err != nil {
			t.Fatal(err)
		}
		r.Add(est)
	}
	if math.Abs(r.Mean()/n-1) > 0.03 {
		t.Fatalf("mean estimate %.1f off truth %d by more than 3%%", r.Mean(), n)
	}
	if r.StdDev()/r.Mean() > 0.10 {
		t.Fatalf("relative spread %.3f too wide for a converged epidemic", r.StdDev()/r.Mean())
	}
}

func TestMassConservation(t *testing.T) {
	const n = 1500
	net := hetNet(n, 5)
	p := New(Config{RoundsPerEpoch: 60, Shards: 4, Workers: 2}, xrand.New(6))
	if err := p.StartEpoch(net); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 60; r++ {
		p.RunRound(net)
		sum, weight := p.MassInEpoch(net)
		if math.Abs(weight-1) > 1e-9 {
			t.Fatalf("round %d: weight mass = %g, want 1", r, weight)
		}
		// Sum mass equals the participant count: every join adds
		// exactly 1, and pushes only move mass around.
		participants := 0.0
		g := net.Graph()
		for i := 0; i < g.NumAlive(); i++ {
			if p.participant(g.AliveAt(i)) {
				participants++
			}
		}
		if math.Abs(sum-participants) > 1e-6 {
			t.Fatalf("round %d: sum mass %g, participants %g", r, sum, participants)
		}
	}
}

// epochState runs one epoch and returns the full (sums, weights)
// vectors plus the metered message total — the complete observable
// state a round sweep produces.
func epochState(t *testing.T, n int, cfg Config, seed uint64, rounds int) ([]float64, []float64, uint64) {
	t.Helper()
	net := hetNet(n, seed)
	p := New(cfg, xrand.New(seed+1))
	if err := p.StartEpoch(net); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		p.RunRound(net)
	}
	return append([]float64(nil), p.sums...), append([]float64(nil), p.weights...), net.Counter().Total()
}

// TestShardedRoundWorkerCountInvariance mirrors the Aggregation shard
// tests: at a fixed shard count the full state vectors and the message
// total are byte-identical at workers 1, 2 and 8. Run under -race in CI
// this also proves the parallel phase writes no pair from two
// goroutines.
func TestShardedRoundWorkerCountInvariance(t *testing.T) {
	const n, rounds = 3000, 12
	for _, shardsCfg := range []int{2, 4, 7} {
		cfg := Config{RoundsPerEpoch: rounds, Shards: shardsCfg, Workers: 1}
		refS, refW, refMsgs := epochState(t, n, cfg, 91, rounds)
		for _, workers := range []int{2, 8} {
			cfg.Workers = workers
			gotS, gotW, gotMsgs := epochState(t, n, cfg, 91, rounds)
			if gotMsgs != refMsgs {
				t.Fatalf("shards=%d: messages differ at workers=%d: %d vs %d",
					shardsCfg, workers, gotMsgs, refMsgs)
			}
			for id := range refS {
				if math.Float64bits(refS[id]) != math.Float64bits(gotS[id]) ||
					math.Float64bits(refW[id]) != math.Float64bits(gotW[id]) {
					t.Fatalf("shards=%d: state of node %d differs at workers=%d",
						shardsCfg, id, workers)
				}
			}
		}
	}
}

func TestShardCountIsPartOfTheAlgorithm(t *testing.T) {
	// Guard against the opposite failure: a sweep that ignored its
	// shard streams entirely would also pass the invariance test.
	aS, _, _ := epochState(t, 3000, Config{RoundsPerEpoch: 10, Shards: 1, Workers: 1}, 92, 10)
	bS, _, _ := epochState(t, 3000, Config{RoundsPerEpoch: 10, Shards: 4, Workers: 1}, 92, 10)
	same := true
	for id := range aS {
		if aS[id] != bS[id] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("1-shard and 4-shard sweeps produced identical state")
	}
}

// TestLocalShuffleWorkerCountInvariance extends the invariance to the
// engine's ShuffleLocal mode: different draws from the global shuffle,
// same worker-count independence.
func TestLocalShuffleWorkerCountInvariance(t *testing.T) {
	const n, rounds = 3000, 12
	cfg := Config{RoundsPerEpoch: rounds, Shards: 4, Workers: 1, Shuffle: parallel.ShuffleLocal}
	refS, refW, refMsgs := epochState(t, n, cfg, 93, rounds)
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		gotS, gotW, gotMsgs := epochState(t, n, cfg, 93, rounds)
		if gotMsgs != refMsgs {
			t.Fatalf("messages differ at workers=%d: %d vs %d", workers, gotMsgs, refMsgs)
		}
		for id := range refS {
			if math.Float64bits(refS[id]) != math.Float64bits(gotS[id]) ||
				math.Float64bits(refW[id]) != math.Float64bits(gotW[id]) {
				t.Fatalf("state of node %d differs at workers=%d", id, workers)
			}
		}
	}
}

// TestLocalShuffleStatisticalEquivalence is the acceptance gate for the
// localshuffle knob: over 30 seeded one-epoch estimations the
// local-shuffle estimator matches the global-shuffle one's mean and
// spread within the family's statistical envelopes.
func TestLocalShuffleStatisticalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("30 full epochs at n=2000")
	}
	const n, runs = 2000, 30
	distribution := func(mode parallel.ShuffleMode) (mean, sd float64) {
		var r stats.Running
		for i := 0; i < runs; i++ {
			net := hetNet(n, uint64(400+i))
			cfg := Default()
			cfg.Shards = 8
			cfg.Workers = 1
			cfg.Shuffle = mode
			e := NewEstimator(cfg, xrand.New(uint64(800+i)))
			est, err := e.Estimate(net)
			if err != nil {
				t.Fatal(err)
			}
			r.Add(est)
		}
		return r.Mean(), r.StdDev()
	}
	gMean, gSD := distribution(parallel.ShuffleGlobal)
	lMean, lSD := distribution(parallel.ShuffleLocal)
	if math.Abs(gMean/n-1) > 0.03 || math.Abs(lMean/n-1) > 0.03 {
		t.Fatalf("means off truth: global %.1f, local %.1f (n=%d)", gMean, lMean, n)
	}
	if math.Abs(lMean-gMean)/n > 0.03 {
		t.Fatalf("means diverge: global %.1f vs local %.1f", gMean, lMean)
	}
	if gSD/gMean > 0.10 || lSD/lMean > 0.10 {
		t.Fatalf("spread too wide: global sd %.1f, local sd %.1f", gSD, lSD)
	}
}

func TestEmptyOverlayErrors(t *testing.T) {
	net := overlay.New(graph.New(0), 10, nil)
	e := NewEstimator(Default(), xrand.New(1))
	if _, err := e.Estimate(net); err != ErrEmptyOverlay {
		t.Fatalf("err = %v, want ErrEmptyOverlay", err)
	}
}

func TestInitiatorSurvivesRedraw(t *testing.T) {
	// When the initiator departs between epochs, the next StartEpoch
	// redraws one instead of failing — the monitoring contract.
	net := hetNet(200, 7)
	e := NewEstimator(Config{RoundsPerEpoch: 30}, xrand.New(8))
	if _, err := e.Estimate(net); err != nil {
		t.Fatal(err)
	}
	net.Leave(e.Protocol().Initiator())
	est, err := e.Estimate(net)
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 {
		t.Fatalf("estimate %g after initiator redraw", est)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{RoundsPerEpoch: 0},
		{RoundsPerEpoch: 1, Shards: -1},
		{RoundsPerEpoch: 1, Shards: parallel.MaxConfigShards + 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, xrand.New(1))
		}()
	}
}
