// Package pushsum implements the Push-Sum size estimator (Kempe, Dobra
// & Gehrke, FOCS'03), the second representative of the epidemic class
// alongside Aggregation's push-pull averaging.
//
// Every participant holds a (sum, weight) pair. An epoch starts with
// the initiator holding weight 1; a node reached by an epoch message
// joins with sum 1 and weight 0, so the epoch-wide totals are
// Σsum = #participants and Σweight = 1. Each round, every participating
// node keeps half of its pair and pushes the other half to one
// uniformly random neighbor (one message per node per round — half the
// per-round price of push-pull). Both totals are conserved by
// construction, the local ratio sum/weight converges to Σsum/Σweight at
// every node with positive weight, and the initiator reads the size
// estimate sum/weight after RoundsPerEpoch rounds.
//
// Compared to Aggregation the protocol is asymmetric (push only, no
// reply), which halves the round cost but roughly doubles the rounds to
// a given dispersion; under churn it shares Aggregation's epoch
// semantics — departures remove mass, arrivals join on first contact —
// and the same fragmentation failure mode in shrinking scenarios.
//
// The round sweep runs on the shared sharded-round engine
// (parallel.RoundEngine), exactly like aggregation.RunRound: the sweep
// order is cut into Config.Shards segments, each drawing from its own
// per-round xrand stream, and pushes whose target lives in another
// shard are deferred to the engine's fixed round-robin tournament of
// shard pairs. The shard count and Config.Shuffle are part of the
// algorithm; Config.Workers only schedules the shards and never
// changes output.
package pushsum

import (
	"errors"
	"fmt"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/overlay"
	"p2psize/internal/parallel"
	"p2psize/internal/xrand"
)

// Config parameterizes the Push-Sum protocol.
type Config struct {
	// RoundsPerEpoch is how many push rounds each counting epoch runs
	// before the estimate is read and the process restarts. The default
	// matches Aggregation's 50 so the two epidemic families are
	// compared at equal reactivity.
	RoundsPerEpoch int
	// Shards splits each round's shuffled sweep into this many
	// segments, each on its own per-round xrand stream; cross-shard
	// pushes are deferred to an ordered fix-up pass. Part of the
	// output, unlike Workers. 0 auto-sizes (see parallel.Shards).
	Shards int
	// Workers caps the goroutines executing one round's shards:
	// 0 means runtime.NumCPU(), 1 forces sequential execution. Workers
	// only changes wall time, never output.
	Workers int
	// Shuffle selects the sweep-order randomization: the default
	// ShuffleGlobal reproduces the frozen serial-shuffle draw order,
	// ShuffleLocal shuffles per shard inside the parallel phase. Part of
	// the output, like Shards.
	Shuffle parallel.ShuffleMode
}

// engine projects the sharded-round knobs onto the engine's config.
func (c Config) engine() parallel.EngineConfig {
	return parallel.EngineConfig{Shards: c.Shards, Workers: c.Workers, Shuffle: c.Shuffle}
}

// Default returns the 50-round configuration.
func Default() Config { return Config{RoundsPerEpoch: 50} }

func (c *Config) validate() error {
	if c.RoundsPerEpoch < 1 {
		return errors.New("pushsum: RoundsPerEpoch must be >= 1")
	}
	if err := c.engine().Validate(); err != nil {
		return fmt.Errorf("pushsum: %w", err)
	}
	return nil
}

// Protocol is a running Push-Sum instance. Several instances can share
// an overlay; each owns its (sum, weight) vectors.
type Protocol struct {
	cfg Config
	rng *xrand.Rand

	sums      []float64 // per node ID
	weights   []float64 // per node ID
	epochOf   []uint32  // epoch tag a node participates in
	epoch     uint32
	initiator graph.NodeID
	engine    parallel.RoundEngine[push] // owns all sharded-sweep scratch
}

// push is one deferred cross-shard delivery: half of u's pair headed
// for v, already debited from u during the parallel phase.
type push struct {
	v    graph.NodeID
	s, w float64
}

// New builds a Protocol; it panics on invalid configuration.
func New(cfg Config, rng *xrand.Rand) *Protocol {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("pushsum: nil rng")
	}
	return &Protocol{cfg: cfg, rng: rng, initiator: graph.None}
}

// Name identifies the estimator in reports.
func (p *Protocol) Name() string {
	return fmt.Sprintf("push-sum(rounds=%d)", p.cfg.RoundsPerEpoch)
}

// Config returns the protocol configuration.
func (p *Protocol) Config() Config { return p.cfg }

// ErrEmptyOverlay is returned when no live peer can initiate.
var ErrEmptyOverlay = errors.New("pushsum: empty overlay")

// Initiator returns the current epoch's initiator (graph.None before
// the first epoch).
func (p *Protocol) Initiator() graph.NodeID { return p.initiator }

// Epoch returns the current epoch tag (0 before the first epoch).
func (p *Protocol) Epoch() uint32 { return p.epoch }

// StartEpoch begins a new counting process: the epoch tag is bumped and
// the initiator (kept from the previous epoch when still alive,
// otherwise re-drawn uniformly) joins with sum 1 and the epoch's entire
// weight mass of 1.
func (p *Protocol) StartEpoch(net *overlay.Network) error {
	if p.initiator == graph.None || !net.Alive(p.initiator) {
		id, ok := net.RandomPeer(p.rng)
		if !ok {
			return ErrEmptyOverlay
		}
		p.initiator = id
	}
	p.grow(net.Graph().NumIDs())
	p.epoch++
	p.sums[p.initiator] = 1
	p.weights[p.initiator] = 1
	p.epochOf[p.initiator] = p.epoch
	return nil
}

func (p *Protocol) grow(numIDs int) {
	for len(p.sums) < numIDs {
		p.sums = append(p.sums, 0)
		p.weights = append(p.weights, 0)
		p.epochOf = append(p.epochOf, 0)
	}
}

// participant reports whether id has joined the current epoch.
func (p *Protocol) participant(id graph.NodeID) bool {
	return int(id) < len(p.epochOf) && p.epochOf[id] == p.epoch
}

// deliver credits a pushed half-pair to v, joining it first when it is
// new to the epoch ("a node reached by a counting message with a new
// tag" contributes its own sum of 1).
func (p *Protocol) deliver(v graph.NodeID, s, w float64) {
	if !p.participant(v) {
		p.sums[v] = 1
		p.weights[v] = 0
		p.epochOf[v] = p.epoch
	}
	p.sums[v] += s
	p.weights[v] += w
}

// halve debits half of u's pair and returns it; the caller delivers it
// to the drawn target.
func (p *Protocol) halve(u graph.NodeID) (s, w float64) {
	s = p.sums[u] / 2
	w = p.weights[u] / 2
	p.sums[u] = s
	p.weights[u] = w
	return s, w
}

// RunRound executes one synchronous push cycle: every live node, in
// fresh random order, draws one uniformly random neighbor (the epidemic
// substrate runs on all nodes — a round is priced at exactly one push
// message per node); participants of the current epoch send half of
// their pair to the drawn neighbor, which joins the epoch on first
// contact. It panics if called before StartEpoch.
//
// The sweep runs on the shared sharded-round engine, like
// aggregation.RunRound: a shard debits and delivers immediately when
// the drawn neighbor lies in its own segment and defers the (already
// debited) delivery otherwise; deferred pushes are applied in the
// engine's fixed round-robin tournament of shard pairs, so the result
// depends only on (seed, config, overlay), never on Config.Workers or
// scheduling.
func (p *Protocol) RunRound(net *overlay.Network) {
	if p.epoch == 0 {
		panic("pushsum: RunRound before StartEpoch")
	}
	g := net.Graph()
	p.grow(g.NumIDs())
	n := g.NumAlive()
	if n == 0 {
		return
	}
	// Pushes are fire-and-forget: under a fault policy a lost push is
	// still metered and the sender still halves, but the half-pair
	// evaporates in transit — the mass-conservation failure drop causes.
	// A lying sender scales the sum it pushes; its own half stays honest.
	// Fate draws happen only under a positive drop probability, so the
	// benign draw sequence is untouched by the fault layer's existence.
	pol := net.FaultPolicy()
	dropP := 0.0
	if pol != nil {
		dropP = pol.DropProb()
	}
	// Asymmetric (NAT-limited) connectivity: a push to a fated target is
	// sent — and metered — but lost at the NAT, the same evaporation as
	// a dropped push. Pure salted-hash consultation: no draws, so benign
	// and NAT-free streams are untouched.
	natLost := func(v graph.NodeID) bool {
		return pol != nil && pol.Unreachable(v)
	}

	sw := parallel.Sweep[push]{
		N:       n,
		NumKeys: g.NumIDs(),
		// Mutating churn never happens mid-round; the alive list is
		// stable, so position->ID is a pure mapping all round.
		Key: func(elem int32) int32 { return g.AliveAt(int(elem)) },
		Visit: func(sh *parallel.Shard[push], elem int32, rng *xrand.Rand) error {
			u := g.AliveAt(int(elem))
			v, ok := g.RandomNeighbor(u, rng)
			if !ok {
				return nil
			}
			lost := (dropP > 0 && rng.Bernoulli(dropP)) || natLost(v)
			sh.Meters[0]++ // push sent
			if !p.participant(u) {
				return nil
			}
			ds, dw := p.halve(u)
			if lost {
				return nil
			}
			if pol != nil {
				ds *= pol.ReportScale(u)
			}
			if t := sh.Owner(v); t == sh.Index {
				p.deliver(v, ds, dw)
			} else {
				sh.Defer(t, push{v: v, s: ds, w: dw})
			}
			return nil
		},
		Merge: func(sh *parallel.Shard[push]) {
			net.SendN(metrics.KindPush, sh.Meters[0])
		},
		Resolve: func(pr push, _ *xrand.Rand) error {
			p.deliver(pr.v, pr.s, pr.w)
			return nil
		},
	}
	if err := p.engine.Round(p.rng, p.cfg.engine(), &sw); err != nil {
		panic(fmt.Sprintf("pushsum: round sweep failed: %v", err))
	}
}

// EstimateAt returns the size estimate sum/weight held at the given
// node, and false when the node holds no usable value (not a
// participant, dead, or zero weight — a node that joined but never
// received weight mass cannot estimate yet).
func (p *Protocol) EstimateAt(net *overlay.Network, id graph.NodeID) (float64, bool) {
	if !net.Alive(id) || !p.participant(id) {
		return 0, false
	}
	w := p.weights[id]
	if w <= 0 {
		return 0, false
	}
	return p.sums[id] / w, true
}

// Estimate returns the current estimate at the initiator.
func (p *Protocol) Estimate(net *overlay.Network) (float64, bool) {
	if p.initiator == graph.None {
		return 0, false
	}
	return p.EstimateAt(net, p.initiator)
}

// MassInEpoch returns the totals held by live participants: the sum
// mass (one per participant in a static network) and the weight mass
// (exactly 1; under churn the deficit measures departures).
func (p *Protocol) MassInEpoch(net *overlay.Network) (sum, weight float64) {
	g := net.Graph()
	for i := 0; i < g.NumAlive(); i++ {
		id := g.AliveAt(i)
		if p.participant(id) {
			sum += p.sums[id]
			weight += p.weights[id]
		}
	}
	return sum, weight
}

// Estimator adapts Protocol to the one-shot core.Estimator contract:
// each Estimate call runs a full epoch (StartEpoch + RoundsPerEpoch
// rounds) and reads the initiator's ratio.
type Estimator struct {
	p *Protocol
}

// NewEstimator builds the one-shot adapter.
func NewEstimator(cfg Config, rng *xrand.Rand) *Estimator {
	return &Estimator{p: New(cfg, rng)}
}

// Name identifies the estimator in reports.
func (e *Estimator) Name() string { return e.p.Name() }

// MutatesOverlay reports true (core.OverlayMutator): like Aggregation,
// push-sum belongs to the cyclon-backed epidemic class whose deployed
// exchanges rewire views, so it keeps a private overlay clone.
func (e *Estimator) MutatesOverlay() bool { return true }

// Protocol exposes the underlying protocol instance.
func (e *Estimator) Protocol() *Protocol { return e.p }

// Estimate runs one full epoch and returns the initiator's estimate.
func (e *Estimator) Estimate(net *overlay.Network) (float64, error) {
	if err := e.p.StartEpoch(net); err != nil {
		return 0, err
	}
	for r := 0; r < e.p.cfg.RoundsPerEpoch; r++ {
		e.p.RunRound(net)
	}
	est, ok := e.p.Estimate(net)
	if !ok {
		return 0, errors.New("pushsum: initiator lost during epoch")
	}
	return est, nil
}
