package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"p2psize/internal/xrand"
)

func roundTrip(t *testing.T, g *Graph) *Graph {
	t.Helper()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got
}

func sameGraph(a, b *Graph) bool {
	if a.NumIDs() != b.NumIDs() || a.NumAlive() != b.NumAlive() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for id := NodeID(0); int(id) < a.NumIDs(); id++ {
		if a.Alive(id) != b.Alive(id) {
			return false
		}
		if !a.Alive(id) {
			continue
		}
		if a.Degree(id) != b.Degree(id) {
			return false
		}
		for _, v := range a.Neighbors(id) {
			if !b.HasEdge(id, v) {
				return false
			}
		}
	}
	return true
}

func TestRoundTripSimple(t *testing.T) {
	g := NewWithNodes(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	g.RemoveNode(2) // leave a dead node in the ID space
	got := roundTrip(t, g)
	if !sameGraph(g, got) {
		t.Fatal("round trip lost structure")
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripRandom(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := Heterogeneous(100, 6, rng)
		for i := 0; i < 20; i++ {
			randomMutation(g, rng)
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return sameGraph(g, got) && got.CheckInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	_, err := Read(strings.NewReader("NOPE garbage"))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	g := NewWithNodes(1)
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // clobber version
	_, err := Read(bytes.NewReader(b))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	g := Ring(10)
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := Read(bytes.NewReader(b[:len(b)-3])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestReadEmptyGraph(t *testing.T) {
	g := New(0)
	got := roundTrip(t, g)
	if got.NumIDs() != 0 || got.NumAlive() != 0 {
		t.Fatal("empty graph round trip wrong")
	}
}
