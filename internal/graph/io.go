package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary snapshot format:
//
//	magic   [4]byte "P2PG"
//	version uint32 (1)
//	numIDs  uint32
//	alive   bitmap, ceil(numIDs/8) bytes, LSB first
//	edges   uint32
//	pairs   edges × (uint32 u, uint32 v) with u < v
//
// Snapshots let expensive topologies (million-node heterogeneous graphs)
// be built once and replayed across experiments.

var magic = [4]byte{'P', '2', 'P', 'G'}

const formatVersion = 1

// WriteTo serializes the graph and returns the number of bytes written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		n += int64(binary.Size(data))
		return nil
	}
	if err := write(magic); err != nil {
		return n, err
	}
	if err := write(uint32(formatVersion)); err != nil {
		return n, err
	}
	if err := write(uint32(g.NumIDs())); err != nil {
		return n, err
	}
	bitmap := make([]byte, (g.NumIDs()+7)/8)
	g.ForEachAlive(func(id NodeID) {
		bitmap[id/8] |= 1 << (id % 8)
	})
	if err := write(bitmap); err != nil {
		return n, err
	}
	if err := write(uint32(g.edges)); err != nil {
		return n, err
	}
	for u := 0; u < g.NumIDs(); u++ {
		for _, v := range g.adj.get(u) {
			if NodeID(u) < v {
				if err := write([2]uint32{uint32(u), uint32(v)}); err != nil {
					return n, err
				}
			}
		}
	}
	return n, bw.Flush()
}

// Read deserializes a graph snapshot previously produced by WriteTo.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("graph: bad magic %q", m)
	}
	var version, numIDs uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("graph: reading version: %w", err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("graph: unsupported format version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &numIDs); err != nil {
		return nil, fmt.Errorf("graph: reading node count: %w", err)
	}
	g := NewWithNodes(int(numIDs))
	bitmap := make([]byte, (numIDs+7)/8)
	if _, err := io.ReadFull(br, bitmap); err != nil {
		return nil, fmt.Errorf("graph: reading alive bitmap: %w", err)
	}
	var edges uint32
	if err := binary.Read(br, binary.LittleEndian, &edges); err != nil {
		return nil, fmt.Errorf("graph: reading edge count: %w", err)
	}
	pair := make([]uint32, 2)
	for i := uint32(0); i < edges; i++ {
		if err := binary.Read(br, binary.LittleEndian, &pair); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		u, v := NodeID(pair[0]), NodeID(pair[1])
		if !g.Alive(u) || !g.Alive(v) {
			return nil, fmt.Errorf("graph: edge %d references invalid node", i)
		}
		if !g.AddEdge(u, v) {
			return nil, fmt.Errorf("graph: duplicate or self edge %d-%d", u, v)
		}
	}
	// Kill dead nodes last so edge insertion above only sees live ones;
	// the format guarantees dead nodes have no edges.
	for id := uint32(0); id < numIDs; id++ {
		if bitmap[id/8]&(1<<(id%8)) == 0 {
			g.RemoveNode(NodeID(id))
		}
	}
	return g, nil
}
