package graph

import (
	"testing"
	"testing/quick"

	"p2psize/internal/xrand"
)

func TestAddNodesAndEdges(t *testing.T) {
	g := New(4)
	a, b, c := g.AddNode(), g.AddNode(), g.AddNode()
	if g.NumAlive() != 3 || g.NumIDs() != 3 {
		t.Fatalf("NumAlive=%d NumIDs=%d", g.NumAlive(), g.NumIDs())
	}
	if !g.AddEdge(a, b) || !g.AddEdge(b, c) {
		t.Fatal("AddEdge failed")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Fatal("edge not symmetric")
	}
	if g.HasEdge(a, c) {
		t.Fatal("phantom edge")
	}
	if g.Degree(b) != 2 || g.Degree(a) != 1 {
		t.Fatalf("degrees: a=%d b=%d", g.Degree(a), g.Degree(b))
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeRejectsSelfAndDuplicate(t *testing.T) {
	g := NewWithNodes(2)
	if g.AddEdge(0, 0) {
		t.Fatal("self-loop accepted")
	}
	if !g.AddEdge(0, 1) {
		t.Fatal("first edge rejected")
	}
	if g.AddEdge(1, 0) {
		t.Fatal("duplicate (reversed) edge accepted")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := NewWithNodes(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge on existing edge returned false")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge on missing edge returned true")
	}
	if g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.NumEdges() != 1 {
		t.Fatal("edge state wrong after removal")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveNode(t *testing.T) {
	g := NewWithNodes(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	g.RemoveNode(0)
	if g.Alive(0) {
		t.Fatal("node 0 still alive")
	}
	if g.NumAlive() != 3 {
		t.Fatalf("NumAlive = %d", g.NumAlive())
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.Degree(1) != 0 || g.Degree(2) != 1 {
		t.Fatal("neighbor degrees not updated")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveDeadNodePanics(t *testing.T) {
	g := NewWithNodes(1)
	g.RemoveNode(0)
	defer func() {
		if recover() == nil {
			t.Fatal("double RemoveNode did not panic")
		}
	}()
	g.RemoveNode(0)
}

func TestAddEdgeDeadEndpointPanics(t *testing.T) {
	g := NewWithNodes(2)
	g.RemoveNode(1)
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge to dead node did not panic")
		}
	}()
	g.AddEdge(0, 1)
}

func TestAliveSampling(t *testing.T) {
	rng := xrand.New(1)
	g := NewWithNodes(10)
	for i := 0; i < 5; i++ {
		g.RemoveNode(NodeID(i))
	}
	counts := map[NodeID]int{}
	for i := 0; i < 20000; i++ {
		id, ok := g.RandomAlive(rng)
		if !ok {
			t.Fatal("RandomAlive failed on non-empty graph")
		}
		if !g.Alive(id) {
			t.Fatalf("sampled dead node %d", id)
		}
		counts[id]++
	}
	if len(counts) != 5 {
		t.Fatalf("sampled %d distinct nodes, want 5", len(counts))
	}
	for id, c := range counts {
		f := float64(c) / 20000
		if f < 0.15 || f > 0.25 {
			t.Fatalf("node %d sampled with frequency %g, want ~0.2", id, f)
		}
	}
}

func TestRandomAliveEmpty(t *testing.T) {
	g := NewWithNodes(1)
	g.RemoveNode(0)
	if _, ok := g.RandomAlive(xrand.New(1)); ok {
		t.Fatal("RandomAlive on empty graph returned ok")
	}
}

func TestRandomNeighbor(t *testing.T) {
	rng := xrand.New(2)
	g := NewWithNodes(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	seen := map[NodeID]bool{}
	for i := 0; i < 1000; i++ {
		v, ok := g.RandomNeighbor(0, rng)
		if !ok {
			t.Fatal("RandomNeighbor failed")
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("neighbors seen: %v", seen)
	}
	if _, ok := g.RandomNeighbor(1, rng); !ok {
		t.Fatal("degree-1 node has a neighbor")
	}
	g.RemoveEdge(0, 1)
	g.RemoveEdge(0, 2)
	g.RemoveEdge(0, 3)
	if _, ok := g.RandomNeighbor(0, rng); ok {
		t.Fatal("isolated node returned a neighbor")
	}
}

func TestAliveIDsAndForEach(t *testing.T) {
	g := NewWithNodes(5)
	g.RemoveNode(2)
	ids := g.AliveIDs()
	if len(ids) != 4 {
		t.Fatalf("AliveIDs len = %d", len(ids))
	}
	count := 0
	g.ForEachAlive(func(id NodeID) {
		if id == 2 {
			t.Fatal("dead node visited")
		}
		count++
	})
	if count != 4 {
		t.Fatalf("visited %d nodes", count)
	}
	for i := 0; i < g.NumAlive(); i++ {
		if !g.Alive(g.AliveAt(i)) {
			t.Fatal("AliveAt returned dead node")
		}
	}
}

func TestAliveBoundsChecks(t *testing.T) {
	g := NewWithNodes(1)
	if g.Alive(-1) || g.Alive(5) {
		t.Fatal("out-of-range IDs reported alive")
	}
	if g.HasEdge(0, 99) || g.HasEdge(99, 0) {
		t.Fatal("HasEdge out-of-range true")
	}
}

// randomMutation drives a graph through a random operation sequence and
// is the workhorse of the invariant property test.
func randomMutation(g *Graph, rng *xrand.Rand) {
	switch rng.Intn(4) {
	case 0:
		g.AddNode()
	case 1:
		if u, ok := g.RandomAlive(rng); ok {
			if v, ok := g.RandomAlive(rng); ok {
				g.AddEdge(u, v)
			}
		}
	case 2:
		if u, ok := g.RandomAlive(rng); ok {
			if v, ok := g.RandomNeighbor(u, rng); ok {
				g.RemoveEdge(u, v)
			}
		}
	case 3:
		if g.NumAlive() > 1 {
			if u, ok := g.RandomAlive(rng); ok {
				g.RemoveNode(u)
			}
		}
	}
}

func TestInvariantsUnderRandomMutation(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := NewWithNodes(8)
		for op := 0; op < 300; op++ {
			randomMutation(g, rng)
		}
		return g.CheckInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckInvariantsDetectsAsymmetry(t *testing.T) {
	g := NewWithNodes(2)
	g.AddEdge(0, 1)
	// Corrupt deliberately.
	g.adj.set(0, g.adj.get(0)[:0])
	if err := g.CheckInvariants(); err == nil {
		t.Fatal("asymmetric edge not detected")
	}
}

func TestCheckInvariantsDetectsSelfLoop(t *testing.T) {
	g := NewWithNodes(1)
	g.adj.set(0, append(g.adj.get(0), 0))
	if err := g.CheckInvariants(); err == nil {
		t.Fatal("self-loop not detected")
	}
}

func TestCloneDeepAndIndependent(t *testing.T) {
	g := Heterogeneous(500, 10, xrand.New(42))
	g.RemoveNode(g.AliveAt(0)) // a dead node must survive the copy
	c := g.Clone()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.NumAlive() != g.NumAlive() || c.NumEdges() != g.NumEdges() || c.NumIDs() != g.NumIDs() {
		t.Fatalf("clone shape differs: alive %d/%d edges %d/%d ids %d/%d",
			c.NumAlive(), g.NumAlive(), c.NumEdges(), g.NumEdges(), c.NumIDs(), g.NumIDs())
	}
	for id := NodeID(0); int(id) < g.NumIDs(); id++ {
		if g.Alive(id) != c.Alive(id) {
			t.Fatalf("alive bit differs at %d", id)
		}
		if g.Degree(id) != c.Degree(id) {
			t.Fatalf("degree differs at %d", id)
		}
	}
	// Mutating the clone must not touch the original, and vice versa.
	beforeAlive, beforeEdges := g.NumAlive(), g.NumEdges()
	c.RemoveNode(c.AliveAt(0))
	if g.NumAlive() != beforeAlive || g.NumEdges() != beforeEdges {
		t.Fatal("clone mutation leaked into original")
	}
	g.RemoveNode(g.AliveAt(1))
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("original mutation corrupted clone: %v", err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneReplaysIdentically(t *testing.T) {
	// The property the parallel dynamic engine relies on: the same churn
	// applied with identically seeded rngs to a graph and its clone gives
	// identical trajectories.
	g := Heterogeneous(300, 10, xrand.New(7))
	c := g.Clone()
	ra, rb := xrand.New(99), xrand.New(99)
	for i := 0; i < 100; i++ {
		if a, ok := g.RandomAlive(ra); ok {
			g.RemoveNode(a)
		}
		if b, ok := c.RandomAlive(rb); ok {
			c.RemoveNode(b)
		}
		if g.NumAlive() != c.NumAlive() || g.NumEdges() != c.NumEdges() {
			t.Fatalf("step %d: trajectories diverged", i)
		}
	}
}
