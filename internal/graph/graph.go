// Package graph implements the overlay topologies of the comparative
// study: a dynamic undirected graph with O(1) uniform node and neighbor
// sampling, the paper's heterogeneous random-graph construction (§IV-A),
// homogeneous random graphs, Barabási–Albert scale-free graphs (Fig 7),
// plus the analysis routines (BFS, components, degree statistics) used to
// validate inputs and explain results.
//
// Node identifiers are dense int32 indices; a million-node overlay with
// average degree 7.2 fits in a few hundred megabytes. All mutation keeps
// the undirected invariant: v appears in adj[u] exactly when u appears in
// adj[v], and never twice.
//
// The bookkeeping arrays live in fixed-size pages (paged.go) shared
// between a graph and its CloneCOW clones until a page's first mutation,
// so cloning costs O(N/pageSize) page headers instead of O(N) entries and
// replayed churn pays only for the pages it touches.
package graph

import (
	"fmt"

	"p2psize/internal/xrand"
)

// NodeID identifies a node. IDs are dense and never reused within one
// Graph; dead nodes keep their ID but drop out of the alive set.
type NodeID = int32

// None is the sentinel returned when no node qualifies.
const None NodeID = -1

// Graph is a mutable undirected graph with an explicit alive set.
// It is not safe for concurrent mutation.
type Graph struct {
	adj      pages[[]NodeID]
	aliveIDs pages[NodeID] // compact list of alive nodes for O(1) sampling
	alivePos pages[int32]  // alivePos[id] = index into aliveIDs, -1 when dead
	edges    int

	// Copy-on-write state for the adjacency lists themselves (the paged
	// arrays above handle their own chunk-level sharing; each node's
	// list additionally needs per-node ownership so an untouched list is
	// never copied): cow marks the graph a CloneCOW clone; ids >= cowBase
	// were created after the clone and always own their list; ownedAdj
	// is a packed bitset over ids < cowBase with a set bit once the list
	// was copied (or dropped); sharedAdj counts the lists still shared
	// with the base, kept up to date on every first mutation so the
	// diagnostic is O(1).
	cow       bool
	cowBase   int
	ownedAdj  []uint64
	sharedAdj int
}

// New returns an empty graph with capacity hint n.
func New(n int) *Graph {
	return &Graph{
		adj:      newPages[[]NodeID](n),
		aliveIDs: newPages[NodeID](n),
		alivePos: newPages[int32](n),
	}
}

// NewWithNodes returns a graph with n alive, unconnected nodes 0..n-1.
func NewWithNodes(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	return g
}

// AddNode creates a new alive node and returns its ID.
func (g *Graph) AddNode() NodeID {
	id := NodeID(g.adj.len())
	g.adj.append(nil)
	g.alivePos.append(int32(g.aliveIDs.len()))
	g.aliveIDs.append(id)
	return id
}

// adjOwned reports whether id's adjacency list belongs to this graph.
func (g *Graph) adjOwned(id NodeID) bool {
	return !g.cow || int(id) >= g.cowBase ||
		g.ownedAdj[id>>6]&(1<<uint(id&63)) != 0
}

// markAdjOwned flips id's ownership bit and maintains the shared-list
// counter. The caller guarantees the list was shared.
func (g *Graph) markAdjOwned(id NodeID) {
	g.ownedAdj[id>>6] |= 1 << uint(id&63)
	g.sharedAdj--
}

// own makes id's adjacency list writable: lists still shared with a
// CloneCOW base are copied on their first mutation.
func (g *Graph) own(id NodeID) {
	if g.adjOwned(id) {
		return
	}
	g.markAdjOwned(id)
	g.adj.set(int(id), append([]NodeID(nil), g.adj.get(int(id))...))
}

// RemoveNode kills a node: all incident edges are removed and the node
// leaves the alive set. Neighbors are NOT rewired — the paper's churn
// rule is that "nodes that have lost one or several neighbors do not
// create new links". Removing a dead node panics.
func (g *Graph) RemoveNode(id NodeID) {
	g.mustAlive(id)
	for _, nb := range g.adj.get(int(id)) {
		g.removeHalfEdge(nb, id)
		g.edges--
	}
	if !g.adjOwned(id) {
		// Shared list: drop the reference instead of truncating in place
		// (a later append must not scribble over the base's array).
		g.markAdjOwned(id)
		g.adj.set(int(id), nil)
	} else {
		g.adj.set(int(id), g.adj.get(int(id))[:0])
	}
	// Swap-delete from the alive list.
	pos := g.alivePos.get(int(id))
	last := g.aliveIDs.get(g.aliveIDs.len() - 1)
	g.aliveIDs.set(int(pos), last)
	g.alivePos.set(int(last), pos)
	g.aliveIDs.truncate(g.aliveIDs.len() - 1)
	g.alivePos.set(int(id), -1)
}

// removeHalfEdge deletes v from adj[u] (swap-delete). The caller
// guarantees presence.
func (g *Graph) removeHalfEdge(u, v NodeID) {
	g.own(u)
	au := g.adj.slot(int(u))
	a := *au
	for i, w := range a {
		if w == v {
			a[i] = a[len(a)-1]
			*au = a[:len(a)-1]
			return
		}
	}
	panic(fmt.Sprintf("graph: half-edge %d->%d missing", u, v))
}

// AddEdge links u and v bidirectionally. It reports false (and does
// nothing) for self-loops and already-present edges. Dead endpoints panic.
func (g *Graph) AddEdge(u, v NodeID) bool {
	g.mustAlive(u)
	g.mustAlive(v)
	if u == v || g.HasEdge(u, v) {
		return false
	}
	g.own(u)
	g.own(v)
	au := g.adj.slot(int(u))
	*au = append(*au, v)
	av := g.adj.slot(int(v))
	*av = append(*av, u)
	g.edges++
	return true
}

// RemoveEdge unlinks u and v and reports whether the edge existed.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	g.mustAlive(u)
	g.mustAlive(v)
	if !g.HasEdge(u, v) {
		return false
	}
	g.removeHalfEdge(u, v)
	g.removeHalfEdge(v, u)
	g.edges--
	return true
}

// HasEdge reports whether u and v are linked. The scan runs over the
// smaller adjacency list, which matters on scale-free hubs.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if int(u) >= g.adj.len() || int(v) >= g.adj.len() {
		return false
	}
	au, av := g.adj.get(int(u)), g.adj.get(int(v))
	if len(au) > len(av) {
		au, v = av, u
	}
	for _, w := range au {
		if w == v {
			return true
		}
	}
	return false
}

// Degree returns the number of live links of id (0 for dead nodes).
func (g *Graph) Degree(id NodeID) int { return len(g.adj.get(int(id))) }

// Neighbors returns the adjacency list of id as a shared view; callers
// must not modify it and must not hold it across mutations.
func (g *Graph) Neighbors(id NodeID) []NodeID { return g.adj.get(int(id)) }

// RandomNeighbor returns a uniformly random neighbor of id, or (None,
// false) for an isolated node.
func (g *Graph) RandomNeighbor(id NodeID, rng *xrand.Rand) (NodeID, bool) {
	a := g.adj.get(int(id))
	if len(a) == 0 {
		return None, false
	}
	return a[rng.Intn(len(a))], true
}

// RandomAlive returns a uniformly random alive node, or (None, false) for
// an empty graph.
func (g *Graph) RandomAlive(rng *xrand.Rand) (NodeID, bool) {
	if g.aliveIDs.len() == 0 {
		return None, false
	}
	return g.aliveIDs.get(rng.Intn(g.aliveIDs.len())), true
}

// Alive reports whether id is a live node.
func (g *Graph) Alive(id NodeID) bool {
	return id >= 0 && int(id) < g.alivePos.len() && g.alivePos.get(int(id)) >= 0
}

// NumAlive returns the number of live nodes — the quantity every
// algorithm in the study tries to estimate.
func (g *Graph) NumAlive() int { return g.aliveIDs.len() }

// NumEdges returns the number of live undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// NumIDs returns the total number of IDs ever allocated (alive + dead).
func (g *Graph) NumIDs() int { return g.adj.len() }

// AliveIDs returns a copy of the live node list.
func (g *Graph) AliveIDs() []NodeID {
	n := g.aliveIDs.len()
	out := make([]NodeID, n)
	for pg, off := 0, 0; off < n; pg, off = pg+1, off+pageSize {
		copy(out[off:], g.aliveIDs.tbl[pg][:min(pageSize, n-off)])
	}
	return out
}

// ForEachAlive calls fn for every live node in unspecified (but
// deterministic) order. fn must not mutate the graph.
func (g *Graph) ForEachAlive(fn func(id NodeID)) {
	n := g.aliveIDs.len()
	for pg, off := 0, 0; off < n; pg, off = pg+1, off+pageSize {
		for _, id := range g.aliveIDs.tbl[pg][:min(pageSize, n-off)] {
			fn(id)
		}
	}
}

// AliveAt returns the i-th entry of the internal alive list; together with
// NumAlive it allows allocation-free sweeps. Order is unspecified and
// changes across mutations.
func (g *Graph) AliveAt(i int) NodeID { return g.aliveIDs.get(i) }

// Clone returns a deep copy of g sharing no mutable state with it. The
// parallel experiment engine clones one overlay per concurrent estimation
// instance so identical churn replays stay independent across goroutines.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		adj:      g.adj.clone(),
		aliveIDs: g.aliveIDs.clone(),
		alivePos: g.alivePos.clone(),
		edges:    g.edges,
	}
	for i := 0; i < ng.adj.len(); i++ {
		if a := ng.adj.get(i); len(a) > 0 {
			ng.adj.set(i, append([]NodeID(nil), a...))
		}
	}
	return ng
}

// CloneCOW returns a copy-on-write copy of g: the paged bookkeeping
// arrays share every page with g until the clone first writes into it
// (O(N/pageSize) page headers copied, nothing per node) and every
// adjacency list is shared until its first mutation. Replaying churn on
// a clone therefore costs memory proportional to the pages and lists
// the churn touches, not to the whole overlay — the contract the
// parallel run loops rely on when they fan one clone per estimation
// instance at paper scale.
//
// The receiver acts as the immutable base: it must not be mutated while
// any COW clone of it is alive (clones of clones extend the freeze to
// every ancestor). Clones are independent of each other and safe to
// mutate concurrently from different goroutines.
func (g *Graph) CloneCOW() *Graph {
	n := g.adj.len()
	return &Graph{
		adj:       g.adj.cloneCOW(),
		aliveIDs:  g.aliveIDs.cloneCOW(),
		alivePos:  g.alivePos.cloneCOW(),
		edges:     g.edges,
		cow:       true,
		cowBase:   n,
		ownedAdj:  make([]uint64, (n+63)/64),
		sharedAdj: n,
	}
}

// SharedAdjacency reports how many adjacency lists are still shared
// with the CloneCOW base (0 for graphs that are not COW clones) — the
// delta-size diagnostic the footprint tests assert on. O(1): the count
// is maintained on every first-mutation copy.
func (g *Graph) SharedAdjacency() int { return g.sharedAdj }

// SharedPages reports how many fixed-size bookkeeping pages (adjacency
// headers, alive list, alive positions) are still shared with the
// CloneCOW base (0 for non-clones) — the chunk-level sibling of
// SharedAdjacency: clone cost is proportional to TotalPages minus
// SharedPages, not to N.
func (g *Graph) SharedPages() int {
	return g.adj.sharedPages() + g.aliveIDs.sharedPages() + g.alivePos.sharedPages()
}

// TotalPages reports how many fixed-size bookkeeping pages the graph
// spans, the denominator for SharedPages ratios.
func (g *Graph) TotalPages() int {
	return len(g.adj.tbl) + len(g.aliveIDs.tbl) + len(g.alivePos.tbl)
}

func (g *Graph) mustAlive(id NodeID) {
	if !g.Alive(id) {
		panic(fmt.Sprintf("graph: node %d is not alive", id))
	}
}

// CheckInvariants validates structural consistency (adjacency symmetry,
// no self-loops or duplicates, alive bookkeeping, edge count, COW
// ownership counters) and returns an error describing the first
// violation. Intended for tests.
func (g *Graph) CheckInvariants() error {
	if g.adj.len() != g.alivePos.len() {
		return fmt.Errorf("graph: parallel slice lengths diverge")
	}
	halfEdges := 0
	alive := 0
	for u := 0; u < g.adj.len(); u++ {
		uid := NodeID(u)
		adjU := g.adj.get(u)
		pos := g.alivePos.get(u)
		if pos < 0 {
			if len(adjU) != 0 {
				return fmt.Errorf("graph: dead node %d has edges", u)
			}
			if pos != -1 {
				return fmt.Errorf("graph: dead node %d has corrupt alive position %d", u, pos)
			}
			continue
		}
		alive++
		if int(pos) >= g.aliveIDs.len() || g.aliveIDs.get(int(pos)) != uid {
			return fmt.Errorf("graph: alive bookkeeping broken for %d", u)
		}
		seen := make(map[NodeID]bool, len(adjU))
		for _, v := range adjU {
			if v == uid {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			if seen[v] {
				return fmt.Errorf("graph: duplicate edge %d-%d", u, v)
			}
			seen[v] = true
			if !g.Alive(v) {
				return fmt.Errorf("graph: %d links to dead node %d", u, v)
			}
			found := false
			for _, w := range g.adj.get(int(v)) {
				if w == uid {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph: asymmetric edge %d-%d", u, v)
			}
		}
		halfEdges += len(adjU)
	}
	if halfEdges != 2*g.edges {
		return fmt.Errorf("graph: edge count %d does not match %d half-edges", g.edges, halfEdges)
	}
	if g.aliveIDs.len() != alive {
		return fmt.Errorf("graph: alive list holds %d entries, %d nodes are alive", g.aliveIDs.len(), alive)
	}
	if g.cow {
		shared := 0
		for id := 0; id < g.cowBase; id++ {
			if g.ownedAdj[id>>6]&(1<<uint(id&63)) == 0 {
				shared++
			}
		}
		if shared != g.sharedAdj {
			return fmt.Errorf("graph: shared-adjacency counter %d, recount %d", g.sharedAdj, shared)
		}
	} else if g.sharedAdj != 0 {
		return fmt.Errorf("graph: non-clone has shared-adjacency counter %d", g.sharedAdj)
	}
	return nil
}
