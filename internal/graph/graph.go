// Package graph implements the overlay topologies of the comparative
// study: a dynamic undirected graph with O(1) uniform node and neighbor
// sampling, the paper's heterogeneous random-graph construction (§IV-A),
// homogeneous random graphs, Barabási–Albert scale-free graphs (Fig 7),
// plus the analysis routines (BFS, components, degree statistics) used to
// validate inputs and explain results.
//
// Node identifiers are dense int32 indices; a million-node overlay with
// average degree 7.2 fits in a few hundred megabytes. All mutation keeps
// the undirected invariant: v appears in adj[u] exactly when u appears in
// adj[v], and never twice.
package graph

import (
	"fmt"

	"p2psize/internal/xrand"
)

// NodeID identifies a node. IDs are dense and never reused within one
// Graph; dead nodes keep their ID but drop out of the alive set.
type NodeID = int32

// None is the sentinel returned when no node qualifies.
const None NodeID = -1

// Graph is a mutable undirected graph with an explicit alive set.
// It is not safe for concurrent mutation.
type Graph struct {
	adj      [][]NodeID
	alive    []bool
	aliveIDs []NodeID // compact list of alive nodes for O(1) sampling
	alivePos []int32  // alivePos[id] = index into aliveIDs, -1 when dead
	edges    int
	// owned tracks copy-on-write adjacency state: nil means every
	// adjacency list belongs to this graph (the normal case); non-nil
	// means lists with owned[id] == false are shared with the base graph
	// of a CloneCOW and must be copied before their first mutation.
	owned []bool
}

// New returns an empty graph with capacity hint n.
func New(n int) *Graph {
	return &Graph{
		adj:      make([][]NodeID, 0, n),
		alive:    make([]bool, 0, n),
		aliveIDs: make([]NodeID, 0, n),
		alivePos: make([]int32, 0, n),
	}
}

// NewWithNodes returns a graph with n alive, unconnected nodes 0..n-1.
func NewWithNodes(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	return g
}

// AddNode creates a new alive node and returns its ID.
func (g *Graph) AddNode() NodeID {
	id := NodeID(len(g.adj))
	g.adj = append(g.adj, nil)
	g.alive = append(g.alive, true)
	g.alivePos = append(g.alivePos, int32(len(g.aliveIDs)))
	g.aliveIDs = append(g.aliveIDs, id)
	if g.owned != nil {
		g.owned = append(g.owned, true)
	}
	return id
}

// own makes id's adjacency list writable: lists still shared with a
// CloneCOW base are copied on their first mutation.
func (g *Graph) own(id NodeID) {
	if g.owned == nil || g.owned[id] {
		return
	}
	g.adj[id] = append([]NodeID(nil), g.adj[id]...)
	g.owned[id] = true
}

// RemoveNode kills a node: all incident edges are removed and the node
// leaves the alive set. Neighbors are NOT rewired — the paper's churn
// rule is that "nodes that have lost one or several neighbors do not
// create new links". Removing a dead node panics.
func (g *Graph) RemoveNode(id NodeID) {
	g.mustAlive(id)
	for _, nb := range g.adj[id] {
		g.removeHalfEdge(nb, id)
		g.edges--
	}
	if g.owned != nil && !g.owned[id] {
		// Shared list: drop the reference instead of truncating in place
		// (a later append must not scribble over the base's array).
		g.adj[id] = nil
		g.owned[id] = true
	} else {
		g.adj[id] = g.adj[id][:0]
	}
	g.alive[id] = false
	// Swap-delete from the alive list.
	pos := g.alivePos[id]
	last := g.aliveIDs[len(g.aliveIDs)-1]
	g.aliveIDs[pos] = last
	g.alivePos[last] = pos
	g.aliveIDs = g.aliveIDs[:len(g.aliveIDs)-1]
	g.alivePos[id] = -1
}

// removeHalfEdge deletes v from adj[u] (swap-delete). The caller
// guarantees presence.
func (g *Graph) removeHalfEdge(u, v NodeID) {
	g.own(u)
	a := g.adj[u]
	for i, w := range a {
		if w == v {
			a[i] = a[len(a)-1]
			g.adj[u] = a[:len(a)-1]
			return
		}
	}
	panic(fmt.Sprintf("graph: half-edge %d->%d missing", u, v))
}

// AddEdge links u and v bidirectionally. It reports false (and does
// nothing) for self-loops and already-present edges. Dead endpoints panic.
func (g *Graph) AddEdge(u, v NodeID) bool {
	g.mustAlive(u)
	g.mustAlive(v)
	if u == v || g.HasEdge(u, v) {
		return false
	}
	g.own(u)
	g.own(v)
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.edges++
	return true
}

// RemoveEdge unlinks u and v and reports whether the edge existed.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	g.mustAlive(u)
	g.mustAlive(v)
	if !g.HasEdge(u, v) {
		return false
	}
	g.removeHalfEdge(u, v)
	g.removeHalfEdge(v, u)
	g.edges--
	return true
}

// HasEdge reports whether u and v are linked. The scan runs over the
// smaller adjacency list, which matters on scale-free hubs.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if int(u) >= len(g.adj) || int(v) >= len(g.adj) {
		return false
	}
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Degree returns the number of live links of id (0 for dead nodes).
func (g *Graph) Degree(id NodeID) int { return len(g.adj[id]) }

// Neighbors returns the adjacency list of id as a shared view; callers
// must not modify it and must not hold it across mutations.
func (g *Graph) Neighbors(id NodeID) []NodeID { return g.adj[id] }

// RandomNeighbor returns a uniformly random neighbor of id, or (None,
// false) for an isolated node.
func (g *Graph) RandomNeighbor(id NodeID, rng *xrand.Rand) (NodeID, bool) {
	a := g.adj[id]
	if len(a) == 0 {
		return None, false
	}
	return a[rng.Intn(len(a))], true
}

// RandomAlive returns a uniformly random alive node, or (None, false) for
// an empty graph.
func (g *Graph) RandomAlive(rng *xrand.Rand) (NodeID, bool) {
	if len(g.aliveIDs) == 0 {
		return None, false
	}
	return g.aliveIDs[rng.Intn(len(g.aliveIDs))], true
}

// Alive reports whether id is a live node.
func (g *Graph) Alive(id NodeID) bool {
	return id >= 0 && int(id) < len(g.alive) && g.alive[id]
}

// NumAlive returns the number of live nodes — the quantity every
// algorithm in the study tries to estimate.
func (g *Graph) NumAlive() int { return len(g.aliveIDs) }

// NumEdges returns the number of live undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// NumIDs returns the total number of IDs ever allocated (alive + dead).
func (g *Graph) NumIDs() int { return len(g.adj) }

// AliveIDs returns a copy of the live node list.
func (g *Graph) AliveIDs() []NodeID {
	out := make([]NodeID, len(g.aliveIDs))
	copy(out, g.aliveIDs)
	return out
}

// ForEachAlive calls fn for every live node in unspecified (but
// deterministic) order. fn must not mutate the graph.
func (g *Graph) ForEachAlive(fn func(id NodeID)) {
	for _, id := range g.aliveIDs {
		fn(id)
	}
}

// AliveAt returns the i-th entry of the internal alive list; together with
// NumAlive it allows allocation-free sweeps. Order is unspecified and
// changes across mutations.
func (g *Graph) AliveAt(i int) NodeID { return g.aliveIDs[i] }

// Clone returns a deep copy of g sharing no mutable state with it. The
// parallel experiment engine clones one overlay per concurrent estimation
// instance so identical churn replays stay independent across goroutines.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		adj:      make([][]NodeID, len(g.adj)),
		alive:    append([]bool(nil), g.alive...),
		aliveIDs: append([]NodeID(nil), g.aliveIDs...),
		alivePos: append([]int32(nil), g.alivePos...),
		edges:    g.edges,
	}
	for i, a := range g.adj {
		if len(a) > 0 {
			ng.adj[i] = append([]NodeID(nil), a...)
		}
	}
	return ng
}

// CloneCOW returns a copy-on-write copy of g: the compact bookkeeping
// arrays are flat-copied (three memcpys, no per-node allocation) while
// every adjacency list is shared with g until the clone first mutates
// it. Replaying churn on a clone therefore costs memory proportional to
// the nodes the churn touches, not to the whole overlay — the contract
// the parallel run loops rely on when they fan one clone per estimation
// instance at paper scale.
//
// The receiver acts as the immutable base: it must not be mutated while
// any COW clone of it is alive (clones of clones extend the freeze to
// every ancestor). Clones are independent of each other and safe to
// mutate concurrently from different goroutines.
func (g *Graph) CloneCOW() *Graph {
	ng := &Graph{
		adj:      append([][]NodeID(nil), g.adj...),
		alive:    append([]bool(nil), g.alive...),
		aliveIDs: append([]NodeID(nil), g.aliveIDs...),
		alivePos: append([]int32(nil), g.alivePos...),
		edges:    g.edges,
		owned:    make([]bool, len(g.adj)),
	}
	return ng
}

// SharedAdjacency reports how many adjacency lists are still shared
// with the CloneCOW base (0 for graphs that are not COW clones) — the
// delta-size diagnostic the footprint tests assert on.
func (g *Graph) SharedAdjacency() int {
	shared := 0
	for _, owned := range g.owned {
		if !owned {
			shared++
		}
	}
	return shared
}

func (g *Graph) mustAlive(id NodeID) {
	if !g.Alive(id) {
		panic(fmt.Sprintf("graph: node %d is not alive", id))
	}
}

// CheckInvariants validates structural consistency (adjacency symmetry,
// no self-loops or duplicates, alive bookkeeping, edge count) and returns
// an error describing the first violation. Intended for tests.
func (g *Graph) CheckInvariants() error {
	if len(g.adj) != len(g.alive) || len(g.adj) != len(g.alivePos) {
		return fmt.Errorf("graph: parallel slice lengths diverge")
	}
	halfEdges := 0
	for u := range g.adj {
		uid := NodeID(u)
		if !g.alive[u] {
			if len(g.adj[u]) != 0 {
				return fmt.Errorf("graph: dead node %d has edges", u)
			}
			if g.alivePos[u] != -1 {
				return fmt.Errorf("graph: dead node %d has alive position", u)
			}
			continue
		}
		pos := g.alivePos[u]
		if pos < 0 || int(pos) >= len(g.aliveIDs) || g.aliveIDs[pos] != uid {
			return fmt.Errorf("graph: alive bookkeeping broken for %d", u)
		}
		seen := make(map[NodeID]bool, len(g.adj[u]))
		for _, v := range g.adj[u] {
			if v == uid {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			if seen[v] {
				return fmt.Errorf("graph: duplicate edge %d-%d", u, v)
			}
			seen[v] = true
			if !g.Alive(v) {
				return fmt.Errorf("graph: %d links to dead node %d", u, v)
			}
			found := false
			for _, w := range g.adj[v] {
				if w == uid {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph: asymmetric edge %d-%d", u, v)
			}
		}
		halfEdges += len(g.adj[u])
	}
	if halfEdges != 2*g.edges {
		return fmt.Errorf("graph: edge count %d does not match %d half-edges", g.edges, halfEdges)
	}
	if len(g.aliveIDs) > len(g.adj) {
		return fmt.Errorf("graph: more alive entries than nodes")
	}
	return nil
}
