package graph

import "math/bits"

// The bookkeeping arrays of a Graph (adjacency headers, the compact
// alive list, the alive-position index) are stored in fixed-size chunks
// ("pages") so that CloneCOW can share whole pages with its base: a
// clone copies only the page-pointer table up front — O(N/pageSize)
// headers instead of O(N) entries — and pays for a page only when it
// first writes into it. A million-node overlay's clone therefore costs
// kilobytes of headers, and replaying churn on it costs memory
// proportional to the pages the churn touches.
const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// pages is a paged array with copy-on-write cloning. The zero value is
// an empty, fully owned array.
type pages[T any] struct {
	tbl [][]T
	// owned is a packed bitset over page indices: nil means every page
	// belongs to this value (the normal, non-clone case); a zero bit
	// marks a page still shared with the cloneCOW base, to be copied on
	// its first write.
	owned []uint64
	n     int
}

// newPages returns an empty paged array with capacity hint n.
func newPages[T any](n int) pages[T] {
	return pages[T]{tbl: make([][]T, 0, (n+pageMask)/pageSize)}
}

func (p *pages[T]) len() int { return p.n }

func (p *pages[T]) get(i int) T { return p.tbl[i>>pageShift][i&pageMask] }

// slot returns a writable pointer to entry i, copying the page first
// when it is still shared with the base. The pointer is invalidated by
// any other slot/set/append call (it may copy the same page).
func (p *pages[T]) slot(i int) *T {
	pg := i >> pageShift
	p.ownPage(pg)
	return &p.tbl[pg][i&pageMask]
}

func (p *pages[T]) set(i int, v T) { *p.slot(i) = v }

func (p *pages[T]) pageOwned(pg int) bool {
	return p.owned == nil || p.owned[pg>>6]&(1<<uint(pg&63)) != 0
}

func (p *pages[T]) ownPage(pg int) {
	if p.pageOwned(pg) {
		return
	}
	np := make([]T, pageSize)
	copy(np, p.tbl[pg])
	p.tbl[pg] = np
	p.owned[pg>>6] |= 1 << uint(pg&63)
}

// markOwned records a freshly allocated page as owned, growing the
// bitset when appends extend a clone past its cloned prefix.
func (p *pages[T]) markOwned(pg int) {
	if p.owned == nil {
		return
	}
	for len(p.owned) <= pg>>6 {
		p.owned = append(p.owned, 0)
	}
	p.owned[pg>>6] |= 1 << uint(pg&63)
}

func (p *pages[T]) append(v T) {
	pg := p.n >> pageShift
	if pg == len(p.tbl) {
		p.tbl = append(p.tbl, make([]T, pageSize))
		p.markOwned(pg)
	} else {
		// Appending into an existing page: after a truncation the slot
		// may live in a page still shared with the base, whose array
		// must not be scribbled over.
		p.ownPage(pg)
	}
	p.tbl[pg][p.n&pageMask] = v
	p.n++
}

// truncate shortens the logical length. Header-only: no page is
// touched, so truncating on a clone never copies anything.
func (p *pages[T]) truncate(n int) { p.n = n }

// cloneCOW returns a copy sharing every page with p until its first
// write: O(pages) pointer copies and O(pages/64) bitset words, nothing
// per entry. p becomes the immutable base (the Graph-level contract).
func (p *pages[T]) cloneCOW() pages[T] {
	return pages[T]{
		tbl:   append([][]T(nil), p.tbl...),
		owned: make([]uint64, (len(p.tbl)+63)/64),
		n:     p.n,
	}
}

// clone returns a deep, fully owned copy.
func (p *pages[T]) clone() pages[T] {
	tbl := make([][]T, len(p.tbl))
	for i, page := range p.tbl {
		np := make([]T, pageSize)
		copy(np, page)
		tbl[i] = np
	}
	return pages[T]{tbl: tbl, n: p.n}
}

// sharedPages reports how many pages are still shared with the base
// (0 for values that are not clones) — the chunk-level footprint
// diagnostic, O(pages/64).
func (p *pages[T]) sharedPages() int {
	if p.owned == nil {
		return 0
	}
	shared := len(p.tbl)
	for _, w := range p.owned {
		shared -= bits.OnesCount64(w)
	}
	return shared
}
