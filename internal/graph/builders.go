package graph

import "p2psize/internal/xrand"

// maxWireAttempts bounds the rejection sampling in the random-graph
// builders; a node that cannot find an eligible partner after this many
// draws keeps its current (smaller) degree, mirroring the paper's
// best-effort wiring ("otherwise other random nodes are chosen").
const maxWireAttempts = 200

// Heterogeneous builds the paper's default test topology (§IV-A
// "Graphs construction"): all n nodes exist up front; nodes are wired one
// by one; each draws a target degree uniformly in [1, maxDeg] and fills
// its view with uniformly random partners that are not yet at maxDeg.
// Links are bidirectional. With maxDeg = 10 the resulting average degree
// is ≈ 7.2, matching the paper.
func Heterogeneous(n, maxDeg int, rng *xrand.Rand) *Graph {
	if n <= 0 {
		panic("graph: Heterogeneous with n <= 0")
	}
	if maxDeg < 1 {
		panic("graph: Heterogeneous with maxDeg < 1")
	}
	g := NewWithNodes(n)
	for u := NodeID(0); int(u) < n; u++ {
		target := rng.IntRange(1, maxDeg)
		wireUpTo(g, u, target, maxDeg, rng)
	}
	return g
}

// Homogeneous builds the homogeneous variant mentioned in §IV-A, in which
// every node aims for exactly degree k (subject to feasibility at the end
// of the process).
func Homogeneous(n, k int, rng *xrand.Rand) *Graph {
	if n <= 0 {
		panic("graph: Homogeneous with n <= 0")
	}
	if k < 1 || k >= n {
		panic("graph: Homogeneous needs 1 <= k < n")
	}
	g := NewWithNodes(n)
	for u := NodeID(0); int(u) < n; u++ {
		wireUpTo(g, u, k, k, rng)
	}
	return g
}

// wireUpTo adds random links to u until its degree reaches target,
// choosing partners uniformly among nodes with degree < cap.
func wireUpTo(g *Graph, u NodeID, target, cap int, rng *xrand.Rand) {
	attempts := 0
	for g.Degree(u) < target && attempts < maxWireAttempts {
		v, ok := g.RandomAlive(rng)
		if !ok {
			return
		}
		if v == u || g.Degree(v) >= cap || g.HasEdge(u, v) {
			attempts++
			continue
		}
		g.AddEdge(u, v)
	}
}

// BarabasiAlbert builds a scale-free graph by growth and preferential
// attachment [Albert & Barabási 2002], the topology of Fig 7: each
// arriving node attaches to m distinct existing nodes chosen with
// probability proportional to their degree. The seed is an (m+1)-clique,
// so every node has at least m links and the average degree approaches 2m
// (the paper uses m = 3: "3 neighbors min per node", average ≈ 6).
func BarabasiAlbert(n, m int, rng *xrand.Rand) *Graph {
	if m < 1 {
		panic("graph: BarabasiAlbert with m < 1")
	}
	if n < m+1 {
		panic("graph: BarabasiAlbert needs n >= m+1")
	}
	g := NewWithNodes(n)
	// endpoints holds every edge endpoint twice over; uniform sampling
	// from it is degree-proportional sampling.
	endpoints := make([]NodeID, 0, 2*m*n)
	for u := NodeID(0); int(u) <= m; u++ {
		for v := u + 1; int(v) <= m; v++ {
			g.AddEdge(u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	// chosen is a slice, not a set: edges must be added in draw order.
	// Ranging over a map here would let Go's randomized iteration order
	// decide adjacency order — and with it every later neighbor draw —
	// making the "same seed, same graph" guarantee silently false.
	chosen := make([]NodeID, 0, m)
	for u := NodeID(m + 1); int(u) < n; u++ {
		chosen = chosen[:0]
		for len(chosen) < m {
			v := endpoints[rng.Intn(len(endpoints))]
			if v != u && !contains(chosen, v) {
				chosen = append(chosen, v)
			}
		}
		for _, v := range chosen {
			g.AddEdge(u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	return g
}

func contains(s []NodeID, v NodeID) bool {
	for _, w := range s {
		if w == v {
			return true
		}
	}
	return false
}

// ErdosRenyi builds G(n, p) using geometric skipping, so the cost is
// proportional to the number of edges rather than n². Used as a reference
// topology in tests and ablations.
func ErdosRenyi(n int, p float64, rng *xrand.Rand) *Graph {
	if n <= 0 {
		panic("graph: ErdosRenyi with n <= 0")
	}
	if p < 0 || p > 1 {
		panic("graph: ErdosRenyi with p outside [0,1]")
	}
	g := NewWithNodes(n)
	if p == 0 {
		return g
	}
	if p == 1 {
		for u := NodeID(0); int(u) < n; u++ {
			for v := u + 1; int(v) < n; v++ {
				g.AddEdge(u, v)
			}
		}
		return g
	}
	// Batagelj–Brandes: iterate candidate pairs (w, v) with w < v and jump
	// ahead by geometrically distributed gaps, so cost is O(edges).
	v, w := 1, -1
	for v < n {
		w += 1 + rng.Geometric(p)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			g.AddEdge(NodeID(w), NodeID(v))
		}
	}
	return g
}

// Ring builds a cycle of n nodes — the worst-case expander used in the
// random-walk mixing tests. Panics for n < 3.
func Ring(n int) *Graph {
	if n < 3 {
		panic("graph: Ring needs n >= 3")
	}
	g := NewWithNodes(n)
	for u := 0; u < n; u++ {
		g.AddEdge(NodeID(u), NodeID((u+1)%n))
	}
	return g
}

// Clique builds the complete graph on n nodes (tests only; quadratic).
func Clique(n int) *Graph {
	if n < 1 {
		panic("graph: Clique needs n >= 1")
	}
	g := NewWithNodes(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(NodeID(u), NodeID(v))
		}
	}
	return g
}

// WattsStrogatz builds a small-world graph: a ring lattice where every
// node links to its k nearest clockwise neighbors, with each lattice edge
// rewired to a uniform random endpoint with probability beta. At beta = 0
// it is the pure lattice (high clustering, huge diameter); at beta = 1 it
// approaches a random graph; small beta gives the small-world regime
// (high clustering AND small diameter) — a realistic middle ground
// between the paper's random graphs and its scale-free topology for
// exercising the estimators.
func WattsStrogatz(n, k int, beta float64, rng *xrand.Rand) *Graph {
	if n < 3 {
		panic("graph: WattsStrogatz needs n >= 3")
	}
	if k < 1 || 2*k >= n {
		panic("graph: WattsStrogatz needs 1 <= k < n/2")
	}
	if beta < 0 || beta > 1 {
		panic("graph: WattsStrogatz needs beta in [0,1]")
	}
	g := NewWithNodes(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if !rng.Bernoulli(beta) {
				g.AddEdge(NodeID(u), NodeID(v))
				continue
			}
			// Rewire: keep u, draw a fresh endpoint (best effort — on
			// failure the lattice edge is kept, preserving degree mass).
			added := false
			for attempt := 0; attempt < maxWireAttempts; attempt++ {
				w := NodeID(rng.Intn(n))
				if w != NodeID(u) && !g.HasEdge(NodeID(u), w) {
					g.AddEdge(NodeID(u), w)
					added = true
					break
				}
			}
			if !added {
				g.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return g
}
