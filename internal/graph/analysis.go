package graph

import (
	"p2psize/internal/stats"
	"p2psize/internal/xrand"
)

// Unreachable marks nodes with no path from the BFS source.
const Unreachable int32 = -1

// BFSDistances returns hop distances from src to every node ID
// (Unreachable for dead or disconnected nodes). The returned slice is
// indexed by NodeID.
func BFSDistances(g *Graph, src NodeID) []int32 {
	dist := make([]int32, g.NumIDs())
	for i := range dist {
		dist[i] = Unreachable
	}
	if !g.Alive(src) {
		return dist
	}
	dist[src] = 0
	queue := make([]NodeID, 0, g.NumAlive())
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ComponentSizes returns the sizes of the connected components of the
// alive subgraph, in discovery order; use LargestComponent for the
// maximum.
func ComponentSizes(g *Graph) []int {
	visited := make([]bool, g.NumIDs())
	var sizes []int
	queue := make([]NodeID, 0, 1024)
	g.ForEachAlive(func(id NodeID) {
		if visited[id] {
			return
		}
		size := 0
		visited[id] = true
		queue = append(queue[:0], id)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, v := range g.Neighbors(u) {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
		sizes = append(sizes, size)
	})
	return sizes
}

// LargestComponent returns the size of the largest connected component
// (0 for an empty graph).
func LargestComponent(g *Graph) int {
	best := 0
	for _, s := range ComponentSizes(g) {
		if s > best {
			best = s
		}
	}
	return best
}

// IsConnected reports whether all alive nodes form a single component.
// The empty graph counts as connected.
func IsConnected(g *Graph) bool {
	n := g.NumAlive()
	return n == 0 || LargestComponent(g) == n
}

// DegreeHistogram tallies the degree of every alive node — the data
// behind the paper's Fig 7 log-log degree plot.
func DegreeHistogram(g *Graph) *stats.IntHistogram {
	var h stats.IntHistogram
	g.ForEachAlive(func(id NodeID) { h.Add(g.Degree(id)) })
	return &h
}

// AvgDegree returns the mean degree over alive nodes (0 if empty).
func AvgDegree(g *Graph) float64 {
	n := g.NumAlive()
	if n == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(n)
}

// MaxDegree returns the largest degree over alive nodes (0 if empty).
func MaxDegree(g *Graph) int {
	best := 0
	g.ForEachAlive(func(id NodeID) {
		if d := g.Degree(id); d > best {
			best = d
		}
	})
	return best
}

// ApproxDiameter estimates the diameter of the largest component with a
// double BFS sweep: BFS from a random alive node, then BFS again from the
// farthest node found. The result lower-bounds the true diameter and is
// exact on trees.
func ApproxDiameter(g *Graph, rng *xrand.Rand) int {
	src, ok := g.RandomAlive(rng)
	if !ok {
		return 0
	}
	far, _ := farthest(g, src)
	_, d := farthest(g, far)
	return int(d)
}

func farthest(g *Graph, src NodeID) (NodeID, int32) {
	dist := BFSDistances(g, src)
	best, bestD := src, int32(0)
	for id, d := range dist {
		if d > bestD {
			best, bestD = NodeID(id), d
		}
	}
	return best, bestD
}

// ClusteringCoefficient estimates the average local clustering coefficient
// by sampling up to sampleCap alive nodes (all of them if the graph is
// smaller). Nodes of degree < 2 contribute 0, as is conventional.
func ClusteringCoefficient(g *Graph, sampleCap int, rng *xrand.Rand) float64 {
	n := g.NumAlive()
	if n == 0 {
		return 0
	}
	var ids []NodeID
	if n <= sampleCap {
		ids = g.AliveIDs()
	} else {
		ids = make([]NodeID, sampleCap)
		for i := range ids {
			id, _ := g.RandomAlive(rng)
			ids[i] = id
		}
	}
	total := 0.0
	for _, id := range ids {
		total += localClustering(g, id)
	}
	return total / float64(len(ids))
}

func localClustering(g *Graph, id NodeID) float64 {
	nbrs := g.Neighbors(id)
	d := len(nbrs)
	if d < 2 {
		return 0
	}
	links := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if g.HasEdge(nbrs[i], nbrs[j]) {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(d*(d-1))
}

// DistanceHistogram returns a histogram of hop distances from src over
// reachable alive nodes (src itself excluded). Used to validate the
// HopsSampling extrapolation weights.
func DistanceHistogram(g *Graph, src NodeID) *stats.IntHistogram {
	var h stats.IntHistogram
	for id, d := range BFSDistances(g, src) {
		if d > 0 && NodeID(id) != src {
			h.Add(int(d))
		}
	}
	return &h
}
