package graph

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"p2psize/internal/xrand"
)

// churnSequence applies a deterministic mix of removals, additions and
// re-wirings to g — the same operations overlay churn replay performs.
func churnSequence(g *Graph, seed uint64, ops int) {
	rng := xrand.New(seed)
	for i := 0; i < ops; i++ {
		switch rng.Intn(3) {
		case 0:
			if id, ok := g.RandomAlive(rng); ok {
				g.RemoveNode(id)
			}
		case 1:
			id := g.AddNode()
			for j := 0; j < 3; j++ {
				if v, ok := g.RandomAlive(rng); ok && v != id {
					g.AddEdge(id, v)
				}
			}
		default:
			if u, ok := g.RandomAlive(rng); ok {
				if v, ok := g.RandomAlive(rng); ok {
					if !g.AddEdge(u, v) {
						g.RemoveEdge(u, v)
					}
				}
			}
		}
	}
}

// graphsEqual compares the full observable structure, including
// adjacency order (identical operation sequences must give identical
// iteration order, which later seeded draws depend on).
func graphsEqual(a, b *Graph) error {
	if a.NumIDs() != b.NumIDs() || a.NumAlive() != b.NumAlive() || a.NumEdges() != b.NumEdges() {
		return fmt.Errorf("shape differs: ids %d/%d alive %d/%d edges %d/%d",
			a.NumIDs(), b.NumIDs(), a.NumAlive(), b.NumAlive(), a.NumEdges(), b.NumEdges())
	}
	for id := NodeID(0); int(id) < a.NumIDs(); id++ {
		if a.Alive(id) != b.Alive(id) {
			return fmt.Errorf("alive state differs at %d", id)
		}
		na, nb := a.Neighbors(id), b.Neighbors(id)
		if len(na) != len(nb) {
			return fmt.Errorf("degree differs at %d: %d vs %d", id, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				return fmt.Errorf("adjacency order differs at node %d slot %d", id, i)
			}
		}
	}
	for i := 0; i < a.NumAlive(); i++ {
		if a.AliveAt(i) != b.AliveAt(i) {
			return fmt.Errorf("alive list order differs at slot %d", i)
		}
	}
	return nil
}

func TestCloneCOWEquivalentToClone(t *testing.T) {
	base := Heterogeneous(2000, 10, xrand.New(1))
	deep := base.Clone()
	cow := base.CloneCOW()
	churnSequence(deep, 42, 1500)
	churnSequence(cow, 42, 1500)
	if err := graphsEqual(deep, cow); err != nil {
		t.Fatalf("COW clone diverged from deep clone: %v", err)
	}
	if err := cow.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneCOWIsolation(t *testing.T) {
	base := Heterogeneous(1000, 10, xrand.New(2))
	want := base.Clone() // frozen reference copy of the base
	a := base.CloneCOW()
	b := base.CloneCOW()
	churnSequence(a, 7, 800)
	churnSequence(b, 8, 800)
	if err := graphsEqual(base, want); err != nil {
		t.Fatalf("mutating COW clones leaked into the base: %v", err)
	}
	if err := graphsEqual(a, b); err == nil {
		t.Fatal("differently churned clones ended identical — isolation test is vacuous")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneCOWConcurrentClones(t *testing.T) {
	// Clones of one base mutate concurrently; run under -race this proves
	// the shared-base scheme has no hidden write sharing.
	base := Heterogeneous(2000, 10, xrand.New(3))
	var wg sync.WaitGroup
	clones := make([]*Graph, 4)
	for k := range clones {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := base.CloneCOW()
			churnSequence(c, uint64(100+k), 1000)
			clones[k] = c
		}(k)
	}
	wg.Wait()
	for k, c := range clones {
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("clone %d: %v", k, err)
		}
	}
	// Same seed in a fresh goroutine-free run gives the same result.
	ref := base.CloneCOW()
	churnSequence(ref, 100, 1000)
	if err := graphsEqual(ref, clones[0]); err != nil {
		t.Fatalf("concurrent clone 0 not deterministic: %v", err)
	}
}

func TestCloneCOWRemovedNodeCannotScribbleBase(t *testing.T) {
	// Regression shape: RemoveNode on a shared list must not leave a
	// truncated shared array behind that a later AddEdge appends into.
	base := NewWithNodes(4)
	base.AddEdge(0, 1)
	base.AddEdge(0, 2)
	cow := base.CloneCOW()
	cow.RemoveNode(0)
	id := cow.AddNode()
	cow.AddEdge(id, 1)
	if got := base.Neighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("base adjacency corrupted: %v", got)
	}
}

func heapInUse() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

func TestCloneCOWFootprint100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node footprint measurement")
	}
	const n = 100000
	base := Heterogeneous(n, 10, xrand.New(4))

	before := heapInUse()
	deep := base.Clone()
	deepBytes := heapInUse() - before

	before = heapInUse()
	cow := base.CloneCOW()
	cowBytes := heapInUse() - before

	// The deep clone duplicates every adjacency list; the COW clone pays
	// only the flat bookkeeping arrays (~70% of a deep clone's bytes at
	// degree ~7, and five allocations instead of one per node).
	if cowBytes > deepBytes*7/10 {
		t.Fatalf("COW clone costs %d bytes, deep clone %d; base not shared", cowBytes, deepBytes)
	}
	if allocs := testing.AllocsPerRun(1, func() { base.CloneCOW() }); allocs > 10 {
		t.Fatalf("CloneCOW made %.0f allocations; want O(1), not one per node", allocs)
	}

	// Touch 1% of the overlay; the delta must stay proportional to the
	// churn, not the overlay: every untouched node keeps the shared list.
	rng := xrand.New(5)
	for i := 0; i < n/100; i++ {
		if id, ok := cow.RandomAlive(rng); ok {
			cow.RemoveNode(id)
		}
	}
	if shared := cow.SharedAdjacency(); shared < n*9/10 {
		t.Fatalf("only %d of %d adjacency lists still shared after 1%% churn", shared, n)
	}
	if err := cow.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Keep both clones reachable so the GC between measurements cannot
	// collect the one measured first.
	runtime.KeepAlive(deep)
	runtime.KeepAlive(base)
}

func TestCOWFootprint1M(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-node footprint measurement")
	}
	const n = 1000000
	base := Heterogeneous(n, 10, xrand.New(6))

	// Up-front clone cost is O(N/pageSize) page headers plus the packed
	// per-list ownership bitset (N/8 bytes) — a constant number of
	// allocations and well under a megabyte at 1M, where the flat copy
	// it replaced cost ~33MB.
	if allocs := testing.AllocsPerRun(1, func() { base.CloneCOW() }); allocs > 10 {
		t.Fatalf("CloneCOW made %.0f allocations; want O(1), not one per node", allocs)
	}
	before := heapInUse()
	cow := base.CloneCOW()
	cowBytes := heapInUse() - before
	if cowBytes > n {
		t.Fatalf("1M-node CloneCOW costs %d bytes up front; want O(N/pageSize) headers (~%d)", cowBytes, n/8)
	}

	// Thereafter the cost is O(touched pages): a light touch owns only
	// the pages its writes land in.
	rng := xrand.New(7)
	for i := 0; i < 4; i++ {
		if id, ok := cow.RandomAlive(rng); ok {
			cow.RemoveNode(id)
		}
	}
	total := cow.TotalPages()
	if shared := cow.SharedPages(); shared < total*85/100 {
		t.Fatalf("%d of %d bookkeeping pages shared after 4 removals; want >= 85%%", shared, total)
	}

	// 1% churn still leaves the overwhelming majority of adjacency lists
	// shared, and the O(1) counter agrees with an explicit recount
	// (CheckInvariants performs it).
	for i := 0; i < n/100; i++ {
		if id, ok := cow.RandomAlive(rng); ok {
			cow.RemoveNode(id)
		}
	}
	if shared := cow.SharedAdjacency(); shared < n*9/10 {
		t.Fatalf("only %d of %d adjacency lists still shared after 1%% churn", shared, n)
	}
	if err := cow.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	runtime.KeepAlive(base)
}
