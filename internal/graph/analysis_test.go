package graph

import (
	"math"
	"testing"

	"p2psize/internal/xrand"
)

// pathGraph builds 0-1-2-...-n-1.
func pathGraph(n int) *Graph {
	g := NewWithNodes(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1))
	}
	return g
}

func TestBFSDistancesPath(t *testing.T) {
	g := pathGraph(5)
	dist := BFSDistances(g, 0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
}

func TestBFSDistancesDisconnected(t *testing.T) {
	g := NewWithNodes(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	dist := BFSDistances(g, 0)
	if dist[1] != 1 || dist[2] != Unreachable || dist[3] != Unreachable {
		t.Fatalf("dist = %v", dist)
	}
}

func TestBFSFromDeadNode(t *testing.T) {
	g := NewWithNodes(3)
	g.AddEdge(0, 1)
	g.RemoveNode(2)
	dist := BFSDistances(g, 2)
	for _, d := range dist {
		if d != Unreachable {
			t.Fatal("BFS from dead source reached nodes")
		}
	}
}

func TestComponents(t *testing.T) {
	g := NewWithNodes(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	// 5, 6 isolated.
	sizes := ComponentSizes(g)
	if len(sizes) != 4 {
		t.Fatalf("components = %v", sizes)
	}
	if LargestComponent(g) != 3 {
		t.Fatalf("largest = %d", LargestComponent(g))
	}
	if IsConnected(g) {
		t.Fatal("disconnected graph reported connected")
	}
	g2 := Ring(5)
	if !IsConnected(g2) {
		t.Fatal("ring reported disconnected")
	}
}

func TestComponentsEmptyGraph(t *testing.T) {
	g := NewWithNodes(1)
	g.RemoveNode(0)
	if !IsConnected(g) {
		t.Fatal("empty graph should count as connected")
	}
	if LargestComponent(g) != 0 {
		t.Fatal("empty graph largest component != 0")
	}
}

func TestDegreeHistogramAndAvg(t *testing.T) {
	g := NewWithNodes(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	h := DegreeHistogram(g)
	if h.Count(3) != 1 || h.Count(1) != 3 {
		t.Fatalf("degree histogram wrong: deg3=%d deg1=%d", h.Count(3), h.Count(1))
	}
	if got := AvgDegree(g); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("AvgDegree = %g", got)
	}
	if MaxDegree(g) != 3 {
		t.Fatalf("MaxDegree = %d", MaxDegree(g))
	}
	empty := NewWithNodes(1)
	empty.RemoveNode(0)
	if AvgDegree(empty) != 0 || MaxDegree(empty) != 0 {
		t.Fatal("empty graph degree stats nonzero")
	}
}

func TestApproxDiameterPath(t *testing.T) {
	g := pathGraph(9)
	if d := ApproxDiameter(g, xrand.New(1)); d != 8 {
		t.Fatalf("path diameter = %d, want 8", d)
	}
	empty := NewWithNodes(1)
	empty.RemoveNode(0)
	if ApproxDiameter(empty, xrand.New(1)) != 0 {
		t.Fatal("empty diameter nonzero")
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle with a pendant: nodes 0,1,2 form a triangle; 3 hangs off 0.
	g := NewWithNodes(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	// local: node0 = 1/3 (one closed pair of three), node1 = 1, node2 = 1,
	// node3 = 0 (degree 1). Average = (1/3 + 1 + 1 + 0)/4 = 7/12.
	got := ClusteringCoefficient(g, 100, xrand.New(1))
	if math.Abs(got-7.0/12) > 1e-9 {
		t.Fatalf("clustering = %g, want %g", got, 7.0/12)
	}
}

func TestClusteringSampled(t *testing.T) {
	g := BarabasiAlbert(2000, 3, xrand.New(2))
	full := ClusteringCoefficient(g, 1<<30, xrand.New(3))
	sampled := ClusteringCoefficient(g, 500, xrand.New(3))
	if math.Abs(full-sampled) > 0.05 {
		t.Fatalf("sampled clustering %g too far from full %g", sampled, full)
	}
}

func TestDistanceHistogram(t *testing.T) {
	g := pathGraph(4)
	h := DistanceHistogram(g, 0)
	if h.Total() != 3 || h.Count(1) != 1 || h.Count(2) != 1 || h.Count(3) != 1 {
		t.Fatalf("distance histogram wrong: total=%d", h.Total())
	}
}

func TestRandomGraphSmallDiameter(t *testing.T) {
	// A heterogeneous graph with average degree ~7 over 10k nodes should
	// have diameter around log(n)/log(avgDeg) ≈ 5, certainly under 12.
	g := Heterogeneous(10000, 10, xrand.New(13))
	if d := ApproxDiameter(g, xrand.New(14)); d > 12 {
		t.Fatalf("diameter = %d, expected small-world", d)
	}
}
