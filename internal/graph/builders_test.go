package graph

import (
	"math"
	"testing"

	"p2psize/internal/stats"
	"p2psize/internal/xrand"
)

func TestHeterogeneousMatchesPaperParameters(t *testing.T) {
	// §IV-A: max 10 neighbors leads to an average of approximately 7.2.
	rng := xrand.New(1)
	g := Heterogeneous(20000, 10, rng)
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if g.NumAlive() != 20000 {
		t.Fatalf("NumAlive = %d", g.NumAlive())
	}
	avg := AvgDegree(g)
	if avg < 6.2 || avg > 8.2 {
		t.Fatalf("average degree = %.2f, paper reports ≈7.2", avg)
	}
	if max := MaxDegree(g); max > 10 {
		t.Fatalf("max degree = %d, cap is 10", max)
	}
	// Every node got at least its minimum of one neighbor; the graph
	// should be overwhelmingly one component.
	if lc := LargestComponent(g); float64(lc) < 0.99*20000 {
		t.Fatalf("largest component %d of 20000", lc)
	}
	minDeg := 11
	g.ForEachAlive(func(id NodeID) {
		if d := g.Degree(id); d < minDeg {
			minDeg = d
		}
	})
	if minDeg < 1 {
		t.Fatalf("isolated node in heterogeneous graph")
	}
}

func TestHeterogeneousDeterministic(t *testing.T) {
	a := Heterogeneous(500, 10, xrand.New(7))
	b := Heterogeneous(500, 10, xrand.New(7))
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edges: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for id := NodeID(0); int(id) < 500; id++ {
		if a.Degree(id) != b.Degree(id) {
			t.Fatalf("node %d degree differs", id)
		}
	}
}

func TestHeterogeneousPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n=0":      func() { Heterogeneous(0, 10, xrand.New(1)) },
		"maxDeg=0": func() { Heterogeneous(10, 0, xrand.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHomogeneous(t *testing.T) {
	rng := xrand.New(3)
	g := Homogeneous(2000, 8, rng)
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Nearly every node should reach exactly degree 8.
	atTarget := 0
	g.ForEachAlive(func(id NodeID) {
		d := g.Degree(id)
		if d > 8 {
			t.Fatalf("degree %d exceeds cap", d)
		}
		if d == 8 {
			atTarget++
		}
	})
	if float64(atTarget) < 0.95*2000 {
		t.Fatalf("only %d/2000 nodes at target degree", atTarget)
	}
	if !IsConnected(g) {
		t.Fatal("homogeneous k=8 graph disconnected")
	}
}

func TestHomogeneousPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Homogeneous(5, 5) did not panic")
		}
	}()
	Homogeneous(5, 5, xrand.New(1))
}

func TestBarabasiAlbertShape(t *testing.T) {
	rng := xrand.New(5)
	const n, m = 20000, 3
	g := BarabasiAlbert(n, m, rng)
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Average degree ≈ 2m (paper Fig 7: m=3, average ≈6).
	avg := AvgDegree(g)
	if math.Abs(avg-2*m) > 0.5 {
		t.Fatalf("BA average degree = %.2f, want ≈%d", avg, 2*m)
	}
	// Minimum degree m.
	g.ForEachAlive(func(id NodeID) {
		if g.Degree(id) < m {
			t.Fatalf("node %d has degree %d < m", id, g.Degree(id))
		}
	})
	// Heavy tail: the hub should be far above average (paper: 1177 at
	// n=100k; at 20k expect several hundred).
	if max := MaxDegree(g); max < 100 {
		t.Fatalf("BA max degree = %d, expected a heavy-tailed hub", max)
	}
	if !IsConnected(g) {
		t.Fatal("BA graph disconnected")
	}
}

func TestBarabasiAlbertPowerLawTail(t *testing.T) {
	// The CCDF of a BA graph follows P(D >= d) ~ d^-2. Fit the log-log
	// slope over the mid range and check it is clearly negative and in a
	// plausible band.
	g := BarabasiAlbert(30000, 3, xrand.New(9))
	values, frac := DegreeHistogram(g).CCDF()
	var lx, ly []float64
	for i, v := range values {
		if v >= 3 && v <= 100 && frac[i] > 0 {
			lx = append(lx, math.Log(float64(v)))
			ly = append(ly, math.Log(frac[i]))
		}
	}
	if len(lx) < 10 {
		t.Fatalf("too few tail points: %d", len(lx))
	}
	slope := fitSlope(lx, ly)
	if slope > -1.2 || slope < -3.0 {
		t.Fatalf("CCDF log-log slope = %.2f, want ≈ -2", slope)
	}
}

func fitSlope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

func TestBarabasiAlbertPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"m=0":   func() { BarabasiAlbert(10, 0, xrand.New(1)) },
		"n<m+1": func() { BarabasiAlbert(3, 3, xrand.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := xrand.New(11)
	const n = 3000
	p := 0.003
	g := ErdosRenyi(n, p, rng)
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	wantEdges := p * float64(n) * float64(n-1) / 2
	got := float64(g.NumEdges())
	if math.Abs(got-wantEdges) > 0.15*wantEdges {
		t.Fatalf("G(n,p) edges = %.0f, want ≈%.0f", got, wantEdges)
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	if g := ErdosRenyi(50, 0, xrand.New(1)); g.NumEdges() != 0 {
		t.Fatal("p=0 produced edges")
	}
	g := ErdosRenyi(20, 1, xrand.New(1))
	if g.NumEdges() != 20*19/2 {
		t.Fatalf("p=1 edges = %d", g.NumEdges())
	}
}

func TestRing(t *testing.T) {
	g := Ring(10)
	if g.NumEdges() != 10 {
		t.Fatalf("ring edges = %d", g.NumEdges())
	}
	g.ForEachAlive(func(id NodeID) {
		if g.Degree(id) != 2 {
			t.Fatalf("ring node %d degree %d", id, g.Degree(id))
		}
	})
	if !IsConnected(g) {
		t.Fatal("ring disconnected")
	}
	if d := ApproxDiameter(g, xrand.New(1)); d != 5 {
		t.Fatalf("ring(10) diameter = %d, want 5", d)
	}
}

func TestClique(t *testing.T) {
	g := Clique(6)
	if g.NumEdges() != 15 {
		t.Fatalf("clique edges = %d", g.NumEdges())
	}
	if c := ClusteringCoefficient(g, 100, xrand.New(1)); math.Abs(c-1) > 1e-9 {
		t.Fatalf("clique clustering = %g", c)
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0: pure ring lattice, every node has degree exactly 2k,
	// clustering is high, diameter is ~n/(2k).
	g := WattsStrogatz(200, 3, 0, xrand.New(20))
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	g.ForEachAlive(func(id NodeID) {
		if g.Degree(id) != 6 {
			t.Fatalf("lattice node %d degree %d, want 6", id, g.Degree(id))
		}
	})
	if !IsConnected(g) {
		t.Fatal("lattice disconnected")
	}
	cLattice := ClusteringCoefficient(g, 1<<30, xrand.New(21))
	// Ring lattice with k=3: local clustering = 3(k-1)/(2(2k-1)) = 0.6.
	if math.Abs(cLattice-0.6) > 0.01 {
		t.Fatalf("lattice clustering = %.3f, want 0.6", cLattice)
	}
}

func TestWattsStrogatzSmallWorldRegime(t *testing.T) {
	// Small beta: clustering stays near the lattice value while the
	// diameter collapses — the defining small-world property.
	const n, k = 1000, 3
	lattice := WattsStrogatz(n, k, 0, xrand.New(22))
	small := WattsStrogatz(n, k, 0.1, xrand.New(23))
	if err := small.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	dLattice := ApproxDiameter(lattice, xrand.New(24))
	dSmall := ApproxDiameter(small, xrand.New(25))
	if dSmall*4 > dLattice {
		t.Fatalf("diameter %d not far below lattice's %d", dSmall, dLattice)
	}
	cSmall := ClusteringCoefficient(small, 500, xrand.New(26))
	cRandom := ClusteringCoefficient(WattsStrogatz(n, k, 1, xrand.New(27)), 500, xrand.New(28))
	if cSmall < 3*cRandom {
		t.Fatalf("small-world clustering %.3f not well above random's %.3f", cSmall, cRandom)
	}
}

func TestWattsStrogatzDegreeMassPreserved(t *testing.T) {
	// Rewiring moves edges but never loses them (best-effort fallback
	// keeps the lattice edge), so |E| = n·k at any beta.
	for _, beta := range []float64{0, 0.3, 1} {
		g := WattsStrogatz(400, 2, beta, xrand.New(29))
		// A rewired edge can collide with a later lattice edge, losing a
		// handful of edges; require > 99.5% of the nominal n·k.
		if g.NumEdges() < 796 || g.NumEdges() > 800 {
			t.Fatalf("beta=%g edges = %d, want ≈800", beta, g.NumEdges())
		}
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n<3":    func() { WattsStrogatz(2, 1, 0.1, xrand.New(1)) },
		"k=0":    func() { WattsStrogatz(10, 0, 0.1, xrand.New(1)) },
		"2k>=n":  func() { WattsStrogatz(10, 5, 0.1, xrand.New(1)) },
		"beta<0": func() { WattsStrogatz(10, 2, -0.1, xrand.New(1)) },
		"beta>1": func() { WattsStrogatz(10, 2, 1.1, xrand.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEstimatorsOnSmallWorld(t *testing.T) {
	// The generally-applicable claim: Sample&Collide needs no topology
	// assumptions, so it should be accurate on the small-world graph too.
	g := WattsStrogatz(3000, 4, 0.2, xrand.New(30))
	var hist stats.IntHistogram
	g.ForEachAlive(func(id NodeID) { hist.Add(g.Degree(id)) })
	if math.Abs(hist.Mean()-8) > 0.05 {
		t.Fatalf("average degree %.2f, want ≈8", hist.Mean())
	}
}

func TestBarabasiAlbertRunToRunDeterminism(t *testing.T) {
	// Regression: edge insertion once followed map iteration order, so two
	// identically seeded builds produced different adjacency orders (and
	// therefore different neighbor draws downstream).
	a := BarabasiAlbert(2000, 3, xrand.New(21))
	b := BarabasiAlbert(2000, 3, xrand.New(21))
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for id := NodeID(0); int(id) < a.NumIDs(); id++ {
		na, nb := a.Neighbors(id), b.Neighbors(id)
		if len(na) != len(nb) {
			t.Fatalf("degree differs at %d", id)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("adjacency order differs at node %d slot %d", id, i)
			}
		}
	}
}
