// Package cluster is the real-network runtime: node daemons that hold a
// live overlay membership over UDP sockets, and a coordinator that
// bootstraps a cluster, drives the registry's transport-capable
// estimator families against it through internal/monitor, and
// cross-validates every live estimate against a simulated run on the
// identical topology.
//
// The paper's evaluation is simulation-only; this package is the step
// from reproduction to deployment. The correctness argument is the
// transport seam's: metering happens before delivery and delivery
// errors never reach estimator arithmetic, so a benign live run is
// bit-equal to the simulated oracle under equal seeds — divergence can
// only enter through liveness-driven membership changes, which is
// exactly what the coordinator's tolerance check bounds.
package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"p2psize/internal/graph"
	"p2psize/internal/metrics"
	"p2psize/internal/transport"
)

// NeighborInfo is one entry of a node's neighbor table: the peer's
// overlay ID and its transport address.
type NeighborInfo struct {
	ID   transport.NodeID `json:"id"`
	Addr string           `json:"addr"`
}

// RPC payloads (JSON-encoded in Frame.Payload). The coordinator speaks
// these ops; ping and shutdown carry no payload.
type assignPayload struct {
	// ID is the overlay ID the coordinator assigns to the daemon.
	ID transport.NodeID `json:"id"`
	// Neighbors is the daemon's full neighbor table per the plan topology.
	Neighbors []NeighborInfo `json:"neighbors"`
}

type joinPayload struct {
	ID   transport.NodeID `json:"id"`
	Addr string           `json:"addr"`
}

type leavePayload struct {
	ID transport.NodeID `json:"id"`
}

type neighborsPayload struct {
	ID        transport.NodeID `json:"id"`
	Neighbors []NeighborInfo   `json:"neighbors"`
}

// Node is one daemon: a UDP transport endpoint plus the neighbor
// bookkeeping the coordinator's RPCs maintain. It serves the cluster
// control plane (assign/join/leave/neighbors/ping/shutdown) and absorbs
// the estimators' one-way protocol traffic, counting it per kind.
type Node struct {
	tr *transport.UDP

	mu        sync.Mutex
	id        transport.NodeID
	neighbors map[transport.NodeID]string

	received atomic.Uint64
	done     chan struct{}
	stopOnce sync.Once
}

// NewNode opens a daemon on addr ("127.0.0.1:0" for an ephemeral port)
// and starts serving. The overlay ID arrives later via the "assign" RPC.
func NewNode(addr string) (*Node, error) {
	n := &Node{
		id:        graph.None,
		neighbors: make(map[transport.NodeID]string),
		done:      make(chan struct{}),
	}
	tr, err := transport.NewUDP(transport.UDPConfig{Addr: addr, Self: graph.None})
	if err != nil {
		return nil, err
	}
	n.tr = tr
	tr.SetHandler(n)
	return n, nil
}

// Addr returns the daemon's bound socket address.
func (n *Node) Addr() string { return n.tr.LocalAddr() }

// ID returns the assigned overlay ID (graph.None before assignment).
func (n *Node) ID() transport.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.id
}

// Neighbors returns the current neighbor table, sorted by ID.
func (n *Node) Neighbors() []NeighborInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.neighborList()
}

// neighborList snapshots the table sorted by ID; callers hold n.mu.
func (n *Node) neighborList() []NeighborInfo {
	out := make([]NeighborInfo, 0, len(n.neighbors))
	for id, addr := range n.neighbors {
		out = append(out, NeighborInfo{ID: id, Addr: addr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Received returns how many one-way protocol messages landed here.
func (n *Node) Received() uint64 { return n.received.Load() }

// Done is closed when a shutdown RPC arrives, so a daemon process can
// wait on it for graceful termination.
func (n *Node) Done() <-chan struct{} { return n.done }

// Close releases the daemon's socket. Idempotent.
func (n *Node) Close() error {
	n.stopOnce.Do(func() { close(n.done) })
	return n.tr.Close()
}

// ServeOneway implements transport.Handler: protocol traffic is counted
// and absorbed (the estimator arithmetic runs at the coordinator; the
// daemons are the network it exercises).
func (n *Node) ServeOneway(from transport.NodeID, kind metrics.Kind, count uint64) {
	n.received.Add(count)
}

// ServeRequest implements transport.Handler: the cluster control plane.
func (n *Node) ServeRequest(from transport.NodeID, op string, payload []byte) ([]byte, error) {
	switch op {
	case "ping":
		return []byte("pong"), nil
	case "assign":
		var req assignPayload
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("assign: %w", err)
		}
		n.mu.Lock()
		n.id = req.ID
		n.neighbors = make(map[transport.NodeID]string, len(req.Neighbors))
		for _, nb := range req.Neighbors {
			n.neighbors[nb.ID] = nb.Addr
		}
		n.mu.Unlock()
		n.tr.SetSelf(req.ID)
		for _, nb := range req.Neighbors {
			if err := n.tr.SetPeer(nb.ID, nb.Addr); err != nil {
				return nil, fmt.Errorf("assign: %w", err)
			}
		}
		return nil, nil
	case "join":
		var req joinPayload
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("join: %w", err)
		}
		if err := n.tr.SetPeer(req.ID, req.Addr); err != nil {
			return nil, fmt.Errorf("join: %w", err)
		}
		n.mu.Lock()
		n.neighbors[req.ID] = req.Addr
		n.mu.Unlock()
		return nil, nil
	case "leave":
		var req leavePayload
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("leave: %w", err)
		}
		n.mu.Lock()
		delete(n.neighbors, req.ID)
		n.mu.Unlock()
		return nil, nil
	case "neighbors":
		n.mu.Lock()
		resp := neighborsPayload{ID: n.id, Neighbors: n.neighborList()}
		n.mu.Unlock()
		return json.Marshal(resp)
	case "shutdown":
		n.stopOnce.Do(func() { close(n.done) })
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown op %q", op)
	}
}
