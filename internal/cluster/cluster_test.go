package cluster

import (
	"math"
	"strings"
	"testing"

	"p2psize/internal/graph"
	"p2psize/internal/registry"
	"p2psize/internal/transport"
	"p2psize/internal/xrand"
)

// newTestClient opens a coordinator-style UDP endpoint with the daemon
// bound as peer 0.
func newTestClient(daemonAddr string) (*transport.UDP, error) {
	cl, err := transport.NewUDP(transport.UDPConfig{Addr: "127.0.0.1:0", Self: graph.None})
	if err != nil {
		return nil, err
	}
	if err := cl.SetPeer(0, daemonAddr); err != nil {
		cl.Close()
		return nil, err
	}
	return cl, nil
}

func roster8(t *testing.T) []registry.Descriptor {
	t.Helper()
	ds, err := registry.Resolve([]string{"samplecollide", "hopssampling", "aggregation"})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestLiveVsSimulatedAgreement is the runtime's headline assertion: an
// 8-node live cluster over real UDP sockets produces, for every family,
// estimates that agree with a simulated run on the identical topology
// within tolerance. With no daemon failures the agreement is exact —
// the transport seam never feeds back into estimator arithmetic — so
// the observed divergence must be zero, well inside any tolerance.
func TestLiveVsSimulatedAgreement(t *testing.T) {
	plan := graph.Heterogeneous(8, 4, xrand.New(7))
	rep, err := Run(Config{
		Plan:       plan,
		MaxDeg:     4,
		Estimators: roster8(t),
		Seed:       11,
		Samples:    2,
		Tolerance:  0.05,
		Teardown:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 8 {
		t.Fatalf("nodes = %d, want 8", rep.Nodes)
	}
	if !rep.Within {
		t.Fatalf("live run diverged beyond tolerance: %+v", rep.Families)
	}
	if len(rep.Departed) != 0 {
		t.Fatalf("daemons departed in a benign run: %v", rep.Departed)
	}
	for _, f := range rep.Families {
		if len(f.Live) != 2 || len(f.Sim) != 2 {
			t.Fatalf("%s: %d live / %d sim samples, want 2", f.Name, len(f.Live), len(f.Sim))
		}
		if f.MaxDivergence != 0 {
			t.Fatalf("%s: divergence %g, want exact agreement (live %v vs sim %v)",
				f.Name, f.MaxDivergence, f.Live, f.Sim)
		}
		for i := range f.Live {
			if math.IsNaN(f.Live[i]) {
				t.Fatalf("%s: live sample %d failed", f.Name, i)
			}
		}
	}
	// The protocol traffic actually crossed the coordinator's socket.
	if rep.Transport.Delivered == 0 {
		t.Fatalf("transport stats = %+v, want delivered traffic", rep.Transport)
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	plan := graph.Heterogeneous(4, 3, xrand.New(1))
	roster := roster8(t)

	if _, err := Run(Config{Estimators: roster}); err == nil {
		t.Fatal("nil plan accepted")
	}
	if _, err := Run(Config{Plan: plan}); err == nil {
		t.Fatal("empty roster accepted")
	}
	if _, err := Run(Config{Plan: plan, Estimators: roster, Addrs: []string{"127.0.0.1:1"}}); err == nil ||
		!strings.Contains(err.Error(), "addresses") {
		t.Fatal("address/plan size mismatch accepted")
	}
	if d, ok := registry.Get("idspace"); ok {
		if _, err := Run(Config{Plan: plan, Estimators: []registry.Descriptor{d}}); err == nil ||
			!strings.Contains(err.Error(), "transport") {
			t.Fatalf("snapshot-based family accepted into a live roster: %v", err)
		}
	}
	sparse := graph.NewWithNodes(3)
	sparse.RemoveNode(1)
	if _, err := Run(Config{Plan: sparse, Estimators: roster}); err == nil {
		t.Fatal("non-dense plan accepted")
	}
}

// TestNodeControlPlane drives one daemon's RPC surface directly through
// a second UDP endpoint, the way the coordinator does.
func TestNodeControlPlane(t *testing.T) {
	nd, err := NewNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()

	cl, err := newTestClient(nd.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if resp, err := cl.Request(0, "ping", nil); err != nil || string(resp) != "pong" {
		t.Fatalf("ping = %q, %v", resp, err)
	}
	if _, err := cl.Request(0, "bogus", nil); err == nil {
		t.Fatal("unknown op accepted")
	}
	assign := `{"id":3,"neighbors":[{"id":1,"addr":"127.0.0.1:9"},{"id":2,"addr":"127.0.0.1:10"}]}`
	if _, err := cl.Request(0, "assign", []byte(assign)); err != nil {
		t.Fatal(err)
	}
	if nd.ID() != 3 {
		t.Fatalf("id = %d, want 3", nd.ID())
	}
	if _, err := cl.Request(0, "join", []byte(`{"id":5,"addr":"127.0.0.1:11"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Request(0, "leave", []byte(`{"id":1}`)); err != nil {
		t.Fatal(err)
	}
	nbs := nd.Neighbors()
	if len(nbs) != 2 || nbs[0].ID != 2 || nbs[1].ID != 5 {
		t.Fatalf("neighbors after join/leave = %+v, want [2 5]", nbs)
	}
	if _, err := cl.Request(0, "shutdown", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-nd.Done():
	default:
		t.Fatal("shutdown RPC did not close Done")
	}
}
